// Package opinions' root benchmark harness: one benchmark per paper
// artifact (Table 1, Figures 1a–c, 3a–b) and per extension experiment
// (E1–E6), plus ablations for the design knobs DESIGN.md calls out.
//
// Run them all:
//
//	go test -bench=. -benchmem
//
// The expensive substrates (the crawled universe, the simulated
// deployment) are built once per process and shared; each benchmark
// times the analysis that regenerates its artifact from that substrate,
// so the numbers reflect the experiment pipeline, not world generation.
package opinions

import (
	"io"
	"sync"
	"testing"
	"time"

	"opinions/internal/aggregate"
	"opinions/internal/experiments"
	"opinions/internal/fraud"
	"opinions/internal/history"
	"opinions/internal/inference"
	"opinions/internal/world"
)

var (
	univOnce sync.Once
	univ     *experiments.CrawlUniverse
	univErr  error

	depOnce sync.Once
	dep     *experiments.Deployment
	depErr  error
)

func benchUniverse(b *testing.B) *experiments.CrawlUniverse {
	b.Helper()
	univOnce.Do(func() {
		univ, univErr = experiments.BuildCrawlUniverse(world.TestDirectoryConfig())
	})
	if univErr != nil {
		b.Fatal(univErr)
	}
	return univ
}

func benchDeployment(b *testing.B) *experiments.Deployment {
	b.Helper()
	depOnce.Do(func() {
		dep, depErr = experiments.RunDeployment(experiments.DeployConfig{
			Seed: 5, Users: 100, Days: 60, KeyBits: 512,
		})
	})
	if depErr != nil {
		b.Fatal(depErr)
	}
	return dep
}

// BenchmarkTable1Crawl regenerates Table 1 (entity totals per service)
// from the crawled universe.
func BenchmarkTable1Crawl(b *testing.B) {
	u := benchUniverse(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.RunTable1(u)
		res.Render(io.Discard)
	}
}

// BenchmarkFig1aCDF regenerates Figure 1(a): per-entity review CDFs.
func BenchmarkFig1aCDF(b *testing.B) {
	u := benchUniverse(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunFig1a(u).Render(io.Discard)
	}
}

// BenchmarkFig1bCDF regenerates Figure 1(b): per-query ≥50-review CDFs.
func BenchmarkFig1bCDF(b *testing.B) {
	u := benchUniverse(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunFig1b(u).Render(io.Discard)
	}
}

// BenchmarkFig1c regenerates Figure 1(c): interaction/feedback gap.
func BenchmarkFig1c(b *testing.B) {
	u := benchUniverse(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunFig1c(u).Render(io.Discard)
	}
}

// BenchmarkFig3 regenerates both panels of Figure 3 (dentist selection,
// histograms, distance correlations) from the deployment's anonymous
// histories.
func BenchmarkFig3(b *testing.B) {
	d := benchDeployment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3(d)
		if err != nil {
			b.Skip(err)
		}
		res.Render(io.Discard)
	}
}

// BenchmarkE1Coverage regenerates E1 (opinions-per-entity coverage).
func BenchmarkE1Coverage(b *testing.B) {
	d := benchDeployment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunE1(d).Render(io.Discard)
	}
}

// BenchmarkE2Inference regenerates E2 (inference accuracy vs naive).
func BenchmarkE2Inference(b *testing.B) {
	d := benchDeployment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE2(d)
		if err != nil {
			b.Fatal(err)
		}
		res.Render(io.Discard)
	}
}

// BenchmarkE3Fraud regenerates E3 (attack detection + attacker cost).
func BenchmarkE3Fraud(b *testing.B) {
	d := benchDeployment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunE3(d, []int{1, 5, 10}).Render(io.Discard)
	}
}

// BenchmarkE4Privacy regenerates E4 (timing-linkage vs mix window).
func BenchmarkE4Privacy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunE4(experiments.DefaultE4Config()).Render(io.Discard)
	}
}

// BenchmarkE5Energy regenerates E5 (sensing energy/recall sweep).
func BenchmarkE5Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunE5(experiments.E5Config{Seed: 3, Users: 10, Days: 7}).Render(io.Discard)
	}
}

// BenchmarkE6Groups regenerates E6 (group dedup inflation).
func BenchmarkE6Groups(b *testing.B) {
	d := benchDeployment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunE6(d).Render(io.Discard)
	}
}

// BenchmarkE7CF regenerates E7 (collaborative filtering vs search-based
// inferred opinions).
func BenchmarkE7CF(b *testing.B) {
	d := benchDeployment(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunE7(d).Render(io.Discard)
	}
}

// BenchmarkE8Incentives regenerates E8 (reminder campaigns vs implicit
// inference); this one builds three small deployments per iteration.
func BenchmarkE8Incentives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE8(experiments.E8Config{Seed: 21, Users: 30, Days: 20, Boost: 3})
		if err != nil {
			b.Fatal(err)
		}
		res.Render(io.Discard)
	}
}

// BenchmarkE9Retention regenerates E9 (retention privacy/utility sweep);
// builds one small deployment per retention setting per iteration.
func BenchmarkE9Retention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE9(experiments.E9Config{
			Seed: 31, Users: 30, Days: 20,
			Retentions: []time.Duration{7 * 24 * time.Hour, 30 * 24 * time.Hour},
		})
		if err != nil {
			b.Fatal(err)
		}
		res.Render(io.Discard)
	}
}

// ---------------------------------------------------------------------
// Ablations: the design knobs DESIGN.md calls out.
// ---------------------------------------------------------------------

// BenchmarkAblationGroupWindow sweeps the co-arrival window of §4.1's
// group dedup over the deployment's restaurant histories.
func BenchmarkAblationGroupWindow(b *testing.B) {
	d := benchDeployment(b)
	_, _, hists := d.Server.Stores()
	var all []*history.EntityHistory
	for _, key := range hists.Entities() {
		if e := d.Server.Engine().Entity(key); e != nil && e.Category == "restaurant" {
			all = append(all, hists.ByEntity(key)...)
		}
	}
	for _, window := range []time.Duration{2 * time.Minute, 12 * time.Minute, time.Hour} {
		b.Run(window.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				aggregate.DedupGroups(all, window)
			}
		})
	}
}

// BenchmarkAblationFraudThreshold sweeps the §4.3 detector threshold.
func BenchmarkAblationFraudThreshold(b *testing.B) {
	d := benchDeployment(b)
	_, _, hists := d.Server.Stores()
	var all []*history.EntityHistory
	for _, key := range hists.Entities() {
		all = append(all, hists.ByEntity(key)...)
	}
	profile := fraud.BuildProfile(all)
	for _, thr := range []float64{0.75, 1.5, 3.0} {
		b.Run(thrName(thr), func(b *testing.B) {
			det := &fraud.Detector{Profile: profile, Threshold: thr}
			for i := 0; i < b.N; i++ {
				det.Filter(all)
			}
		})
	}
}

func thrName(thr float64) string {
	switch {
	case thr < 1:
		return "strict"
	case thr < 2:
		return "default"
	default:
		return "lenient"
	}
}

// BenchmarkAblationAbstention sweeps the predictor's evidence floor.
func BenchmarkAblationAbstention(b *testing.B) {
	d := benchDeployment(b)
	if !d.ModelTrained {
		b.Skip("no model")
	}
	m := d.Server.Model()
	// Collect evidence once.
	var evs []inference.EntityEvidence
	for _, agent := range d.Agents {
		for _, v := range agent.Inferences() {
			evs = append(evs, agent.Evidence(v.Entity))
		}
	}
	for _, minEv := range []int{2, 3, 6} {
		b.Run(minName(minEv), func(b *testing.B) {
			p := inference.NewPredictor(m)
			p.MinInteractions = minEv
			for i := 0; i < b.N; i++ {
				for _, ev := range evs {
					p.Infer(ev)
				}
			}
		})
	}
}

func minName(n int) string {
	switch n {
	case 2:
		return "min2"
	case 3:
		return "min3"
	default:
		return "min6"
	}
}
