// Command rspd runs the Recommendation Sharing Provider service over
// HTTP.
//
// Two synthetic universes are available:
//
//	rspd -world city                 # behavioural city (device agents connect)
//	rspd -world directory -scale 0.1 # the five measured services (crawler connects)
//
// Endpoints are documented in internal/rspserver.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"opinions/internal/core"
	"opinions/internal/faultinject"
	"opinions/internal/rspserver"
	"opinions/internal/storage"
	"opinions/internal/world"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		universe    = flag.String("world", "city", "universe to serve: city | directory")
		scale       = flag.Float64("scale", 0.2, "directory scale (1.0 = paper scale, ~75k entities)")
		seed        = flag.Int64("seed", 1, "world seed")
		users       = flag.Int("users", 400, "city users (city world only)")
		keyBits     = flag.Int("keybits", 2048, "blind-signature RSA key size")
		dataPath    = flag.String("data", "", "snapshot file: loaded on start, saved on shutdown and every -save-every")
		saveEvr     = flag.Duration("save-every", 5*time.Minute, "periodic snapshot interval (with -data)")
		epsilon     = flag.Float64("privacy-epsilon", 0, "when >0, release inference aggregates with ε-differential privacy")
		rateLim     = flag.Int("rate-limit", 600, "per-host HTTP requests per minute (0 disables)")
		quiet       = flag.Bool("quiet", false, "disable per-request logging")
		reqTimeout  = flag.Duration("request-timeout", 30*time.Second, "per-request handler timeout (0 disables)")
		maxInFlight = flag.Int("max-inflight", 256, "max concurrent requests before shedding with 503 (0 disables)")
		chaos       = flag.Bool("chaos", false, "inject faults (latency, 5xx bursts, resets, truncation) for resilience testing")
		chaosSeed   = flag.Int64("chaos-seed", 1, "fault-injection RNG seed (with -chaos)")
	)
	flag.Parse()

	var catalog []*world.Entity
	var zips []string
	switch *universe {
	case "city":
		city := world.BuildCity(world.CityConfig{Seed: *seed, NumUsers: *users})
		catalog = city.Entities
	case "directory":
		dir := world.BuildDirectory(world.DirectoryConfig{Seed: *seed, NumZips: 50, Scale: *scale, InteractionEntities: 1000})
		for _, kind := range world.ReviewServices {
			catalog = append(catalog, dir.Entities[kind]...)
		}
		for _, kind := range world.InteractionServices {
			catalog = append(catalog, dir.Entities[kind]...)
		}
		for _, z := range dir.Zips {
			zips = append(zips, z.Code)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown -world %q (want city or directory)\n", *universe)
		os.Exit(2)
	}

	repo, err := core.Open(core.Config{Catalog: catalog, KeyBits: *keyBits, Zips: zips, PrivacyEpsilon: *epsilon})
	if err != nil {
		log.Fatalf("opening repository: %v", err)
	}

	if *dataPath != "" {
		if snap, err := storage.LoadFile(*dataPath); err == nil {
			if err := repo.Server().RestoreSnapshot(snap); err != nil {
				log.Fatalf("restoring %s: %v", *dataPath, err)
			}
			log.Printf("rspd: restored snapshot from %s (saved %s)", *dataPath, snap.SavedAt.Format(time.RFC3339))
		} else if !errors.Is(err, os.ErrNotExist) {
			log.Fatalf("loading %s: %v", *dataPath, err)
		}
	}

	// Recovery is outermost so a panic anywhere below it — including an
	// injected connection reset — becomes a logged 500, not a dead
	// process. The chaos injector is innermost: faults fire instead of
	// the real handler, behind the same shedding the real traffic sees.
	handler := repo.Handler()
	mws := []rspserver.Middleware{rspserver.WithRecovery(nil)}
	if !*quiet {
		mws = append(mws, rspserver.WithLogging(nil))
	}
	if *rateLim > 0 {
		mws = append(mws, rspserver.WithRateLimit(*rateLim, time.Minute, nil))
	}
	mws = append(mws, rspserver.WithTimeout(*reqTimeout))
	mws = append(mws, rspserver.WithMaxInFlight(*maxInFlight, time.Second))
	if *chaos {
		inj := faultinject.New(faultinject.Config{
			Seed:         *chaosSeed,
			ErrorRate:    0.20,
			ErrorBurst:   2,
			ResetRate:    0.05,
			TruncateRate: 0.05,
			LatencyMin:   10 * time.Millisecond,
			LatencyMax:   250 * time.Millisecond,
		})
		mws = append(mws, inj.Middleware)
		log.Printf("rspd: CHAOS MODE — injecting faults (seed %d); not for production", *chaosSeed)
	}
	handler = rspserver.Chain(handler, mws...)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	save := func(reason string) {
		if *dataPath == "" {
			return
		}
		if err := storage.SaveFile(*dataPath, repo.Server().Snapshot()); err != nil {
			log.Printf("rspd: snapshot (%s) failed: %v", reason, err)
			return
		}
		log.Printf("rspd: snapshot saved to %s (%s)", *dataPath, reason)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(*saveEvr)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				save("periodic")
			case <-stop:
				// Drain in-flight requests BEFORE the final snapshot:
				// an upload accepted during the drain must be in the
				// snapshot, or a restart silently loses it.
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				if err := srv.Shutdown(ctx); err != nil {
					log.Printf("rspd: shutdown: %v", err)
				}
				save("shutdown")
				return
			}
		}
	}()

	log.Printf("rspd: serving %d entities (%s world) on %s", len(catalog), *universe, *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("rspd: %v", err)
	}
	<-done
}
