// Command rspd runs the Recommendation Sharing Provider service over
// HTTP.
//
// Two synthetic universes are available:
//
//	rspd -world city                 # behavioural city (device agents connect)
//	rspd -world directory -scale 0.1 # the five measured services (crawler connects)
//
// Endpoints are documented in internal/rspserver. Observability rides
// the public listener at /metrics (Prometheus text format),
// /debug/vars (expvar JSON), and /debug/requests (recent traced
// spans); profiling via net/http/pprof is opt-in behind -debug-addr so
// it never shares the public listener.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"opinions/internal/cluster"
	"opinions/internal/core"
	"opinions/internal/faultinject"
	"opinions/internal/obs"
	"opinions/internal/replication"
	"opinions/internal/rspserver"
	"opinions/internal/storage"
	"opinions/internal/store"
	"opinions/internal/world"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		debugAddr   = flag.String("debug-addr", "", "optional private listener for pprof profiling (plus metrics/vars/requests); empty disables")
		universe    = flag.String("world", "city", "universe to serve: city | directory")
		scale       = flag.Float64("scale", 0.2, "directory scale (1.0 = paper scale, ~75k entities)")
		seed        = flag.Int64("seed", 1, "world seed")
		users       = flag.Int("users", 400, "city users (city world only)")
		keyBits     = flag.Int("keybits", 2048, "blind-signature RSA key size")
		dataPath    = flag.String("data", "", "snapshot file: loaded on start, saved on shutdown and every -save-every (mutually exclusive with -wal-dir)")
		walDir      = flag.String("wal-dir", "", "durability directory: write-ahead log + snapshot; every mutation is fsynced before it is acknowledged, and recovery on boot replays the log tail")
		compactEvr  = flag.Int("compact-every", 0, "fold the WAL into a snapshot every N records (with -wal-dir; 0 = default 4096, negative disables auto-compaction)")
		commStripes = flag.Int("commit-stripes", 0, "commit pipeline stripes: per-stripe WAL segments, sequence spaces, and group-commit syncers (with -wal-dir; 0 = match the read stripes)")
		saveEvr     = flag.Duration("save-every", 5*time.Minute, "periodic snapshot interval (with -data) or compaction interval (with -wal-dir)")
		epsilon     = flag.Float64("privacy-epsilon", 0, "when >0, release inference aggregates with ε-differential privacy")
		rateLim     = flag.Int("rate-limit", 600, "per-host HTTP requests per minute (0 disables)")
		quiet       = flag.Bool("quiet", false, "disable per-request logging")
		reqTimeout  = flag.Duration("request-timeout", 30*time.Second, "per-request handler timeout (0 disables)")
		maxInFlight = flag.Int("max-inflight", 256, "max concurrent requests before shedding with 503 (0 disables)")
		spans       = flag.Int("trace-spans", 256, "recent request spans retained for /debug/requests")
		chaos       = flag.Bool("chaos", false, "inject faults (latency, 5xx bursts, resets, truncation) for resilience testing")
		chaosSeed   = flag.Int64("chaos-seed", 1, "fault-injection RNG seed (with -chaos)")
		replAddr    = flag.String("replication-addr", "", "listen address for the WAL replication stream (leader mode; a follower with this set starts leading on promotion)")
		replFrom    = flag.String("replicate-from", "", "leader replication address to follow (follower mode: mutating routes answer 503 until promotion)")
		replSync    = flag.Bool("replication-sync", true, "semi-synchronous commits: acknowledge a mutation only after an attached follower has it (with -replication-addr)")
		failAfter   = flag.Duration("failover-after", 10*time.Second, "follower auto-promotes after this long without leader contact (with -replicate-from; 0 = explicit /promote only)")
		leaderURL   = flag.String("leader-url", "", "leader's public HTTP URL, returned as X-Leader on follower-gate 503s")
		clusterCfg  = flag.String("cluster-config", "", "cluster ring descriptor (JSON); the node serves one partition of a multi-node deployment")
		partition   = flag.Int("partition", -1, "this node's partition id in the -cluster-config ring")
	)
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, slog.LevelInfo)
	slog.SetDefault(logger)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	var catalog []*world.Entity
	var zips []string
	switch *universe {
	case "city":
		// The server only serves the entity catalog; opening the city
		// streaming means -users 1000000 costs the same memory as 400.
		city := world.OpenCity(world.CityConfig{Seed: *seed, NumUsers: *users})
		catalog = city.Entities
	case "directory":
		dir := world.BuildDirectory(world.DirectoryConfig{Seed: *seed, NumZips: 50, Scale: *scale, InteractionEntities: 1000})
		for _, kind := range world.ReviewServices {
			catalog = append(catalog, dir.Entities[kind]...)
		}
		for _, kind := range world.InteractionServices {
			catalog = append(catalog, dir.Entities[kind]...)
		}
		for _, z := range dir.Zips {
			zips = append(zips, z.Code)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown -world %q (want city or directory)\n", *universe)
		os.Exit(2)
	}

	if *dataPath != "" && *walDir != "" {
		fmt.Fprintln(os.Stderr, "-data and -wal-dir are mutually exclusive: the WAL directory owns its own snapshot")
		os.Exit(2)
	}

	// Cluster mode: load the ring, keep only this partition's slice of
	// the (deterministically shared) catalog. Every node builds the same
	// full catalog from the same seed, so the partitions' slices union
	// to exactly the whole directory with no coordination.
	var ringCfg *cluster.Ring
	if *clusterCfg != "" {
		var err error
		ringCfg, err = cluster.Load(*clusterCfg)
		if err != nil {
			fatal("loading cluster config", "path", *clusterCfg, "err", err)
		}
		if *partition < 0 || *partition >= ringCfg.NumPartitions() {
			fmt.Fprintf(os.Stderr, "-partition %d outside ring of %d partitions (need -partition with -cluster-config)\n",
				*partition, ringCfg.NumPartitions())
			os.Exit(2)
		}
		full := len(catalog)
		catalog = rspserver.FilterCatalog(ringCfg, *partition, catalog)
		logger.Info("cluster partition", "partition", *partition, "of", ringCfg.NumPartitions(),
			"entities", len(catalog), "full_catalog", full)
	} else if *partition >= 0 {
		fmt.Fprintln(os.Stderr, "-partition requires -cluster-config")
		os.Exit(2)
	}

	// With -wal-dir, opening the store IS recovery: load the snapshot,
	// replay the log tail past it, repair a torn final record. Every
	// subsequent mutation is applied, logged, and fsynced before its
	// HTTP response goes out.
	var st *store.Store
	if *walDir != "" {
		var err error
		st, err = store.Open(store.Options{Dir: *walDir, Stripes: *commStripes, CompactEvery: *compactEvr, Logger: logger})
		if err != nil {
			fatal("opening durable store", "dir", *walDir, "err", err)
		}
		logger.Info("durable store open", "dir", *walDir, "seq", st.Seq(), "commit_stripes", st.NumStripes())
	}

	repo, err := core.Open(core.Config{Catalog: catalog, KeyBits: *keyBits, Zips: zips, PrivacyEpsilon: *epsilon, Store: st})
	if err != nil {
		fatal("opening repository", "err", err)
	}

	if *dataPath != "" {
		if snap, err := storage.LoadFile(*dataPath); err == nil {
			if err := repo.Server().RestoreSnapshot(snap); err != nil {
				fatal("restoring snapshot", "path", *dataPath, "err", err)
			}
			logger.Info("restored snapshot", "path", *dataPath, "saved_at", snap.SavedAt.Format(time.RFC3339))
		} else if !errors.Is(err, os.ErrNotExist) {
			fatal("loading snapshot", "path", *dataPath, "err", err)
		}
	}

	// Replication. The leader streams every WAL commit to followers over
	// -replication-addr; a follower tails -replicate-from, applies the
	// stream through its own store, and refuses local mutations until it
	// is promoted — explicitly via POST /promote, or automatically after
	// -failover-after without leader contact. A follower that also has
	// -replication-addr set starts serving the stream itself the moment
	// it is promoted, so the survivor of a failover can take followers
	// of its own. Works with a memory-only store too (the stream is the
	// durability), though -wal-dir is the intended pairing.
	stateStore := repo.Server().Store()
	var (
		repMu     sync.Mutex
		repLeader *replication.Leader
	)
	startLeading := func() {
		repMu.Lock()
		defer repMu.Unlock()
		if repLeader != nil {
			return
		}
		ln, err := net.Listen("tcp", *replAddr)
		if err != nil {
			logger.Error("replication listener failed", "addr", *replAddr, "err", err)
			return
		}
		l := replication.NewLeader(stateStore, replication.LeaderOptions{SyncCommit: *replSync, Logger: logger})
		repLeader = l
		go func() {
			if err := l.Serve(ln); err != nil {
				logger.Error("replication serve failed", "err", err)
			}
		}()
		logger.Info("replication leader serving", "addr", *replAddr, "sync", *replSync)
	}
	var follower *replication.Follower
	switch {
	case *replFrom != "":
		follower = replication.StartFollower(stateStore, *replFrom, replication.FollowerOptions{
			FailoverAfter: *failAfter,
			OnPromote: func(reason string) {
				logger.Warn("promoted to leader", "reason", reason)
				if *replAddr != "" {
					startLeading()
				}
			},
			Logger: logger,
		})
		logger.Info("following leader", "addr", *replFrom, "failover_after", *failAfter)
	case *replAddr != "":
		startLeading()
	}

	// Recovery is outermost so a panic anywhere below it — including an
	// injected connection reset — becomes a logged 500, not a dead
	// process. Tracing sits directly inside recovery so every log line
	// and metric below runs in trace context; metrics wrap the shedding
	// middlewares so shed 503s and rate-limit 429s are counted as such.
	// The chaos injector is innermost: faults fire instead of the real
	// handler, behind the same shedding the real traffic sees.
	ring := obs.NewSpanRing(*spans)
	handler := repo.Handler()
	mws := []rspserver.Middleware{
		rspserver.WithRecovery(logger),
		rspserver.WithTracing(ring),
	}
	if !*quiet {
		mws = append(mws, rspserver.WithLogging(logger))
	}
	mws = append(mws, rspserver.WithMetrics())
	if *rateLim > 0 {
		mws = append(mws, rspserver.WithRateLimit(*rateLim, time.Minute, nil))
	}
	mws = append(mws, rspserver.WithTimeout(*reqTimeout))
	mws = append(mws, rspserver.WithMaxInFlight(*maxInFlight, time.Second))
	if *chaos {
		inj := faultinject.New(faultinject.Config{
			Seed:         *chaosSeed,
			ErrorRate:    0.20,
			ErrorBurst:   2,
			ResetRate:    0.05,
			TruncateRate: 0.05,
			LatencyMin:   10 * time.Millisecond,
			LatencyMax:   250 * time.Millisecond,
		})
		mws = append(mws, inj.Middleware)
		logger.Warn("CHAOS MODE — injecting faults; not for production", "seed", *chaosSeed)
	}
	if follower != nil {
		fol := follower
		mws = append(mws, rspserver.WithFollowerGate(func() bool { return !fol.Promoted() }, *leaderURL))
	}
	if ringCfg != nil {
		// Innermost: the gather's local leg re-enters below the shedding
		// and chaos layers (one client request stays one in-flight slot),
		// and the ownership gate refuses foreign keys only after the
		// request has paid the same tolls as an owned one.
		mws = append(mws,
			rspserver.WithScatterGather(ringCfg, *partition, rspserver.GatherOptions{}),
			rspserver.WithOwnershipGate(ringCfg, *partition),
		)
	}
	handler = rspserver.Chain(handler, mws...)

	// Observability endpoints share the public listener but sit outside
	// the middleware chain: a scrape must not burn the rate limit, be
	// shed, or have chaos injected into it.
	obs.RegisterProcessMetrics(obs.Default)
	expvar.Publish("obs", expvar.Func(func() any { return obs.Default.Snapshot() }))
	mux := http.NewServeMux()
	mux.Handle("/", handler)
	mux.Handle("/metrics", obs.Default.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/debug/requests", ring.Handler())

	// Liveness, readiness, and the operator promotion lever share the
	// public listener but bypass the middleware chain: a probe must not
	// burn the rate limit or be shed, and /promote must work while the
	// follower gate is refusing everything else.
	health := &rspserver.Health{Store: stateStore}
	if ringCfg != nil {
		health.Partition = *partition
		health.Partitions = ringCfg.NumPartitions()
	}
	switch {
	case follower != nil:
		fol := follower
		health.Role = func() string {
			if fol.Promoted() {
				return "promoted"
			}
			return "follower"
		}
		health.CaughtUp = fol.CaughtUp
	case *replAddr != "":
		health.Role = func() string { return "leader" }
	}
	if follower != nil {
		fol := follower
		health.AddReadyCheck("replication", func() (bool, string) {
			if fol.CaughtUp() {
				return true, ""
			}
			return false, fmt.Sprintf("follower %d records behind leader", fol.Lag())
		})
	}
	mux.HandleFunc("/healthz", health.Healthz())
	mux.HandleFunc("/readyz", health.Readyz())
	mux.HandleFunc("/promote", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		if follower == nil {
			http.Error(w, "not a replication follower", http.StatusConflict)
			return
		}
		did := follower.Promote("operator request")
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]bool{"promoted": did})
	})

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *debugAddr != "" {
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dbg.Handle("/metrics", obs.Default.Handler())
		dbg.Handle("/debug/vars", expvar.Handler())
		dbg.Handle("/debug/requests", ring.Handler())
		go func() {
			logger.Info("debug listener up (pprof enabled)", "addr", *debugAddr)
			dsrv := &http.Server{Addr: *debugAddr, Handler: dbg, ReadHeaderTimeout: 10 * time.Second}
			if err := dsrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "err", err)
			}
		}()
	}

	save := func(reason string) {
		switch {
		case st != nil:
			// WAL mode: a "save" is a compaction — fold the log into the
			// store's own snapshot and drop the superseded segments.
			if err := st.Compact(); err != nil {
				logger.Error("compaction failed", "reason", reason, "err", err)
				return
			}
			logger.Info("wal compacted", "dir", *walDir, "reason", reason)
		case *dataPath != "":
			if err := storage.SaveFile(*dataPath, repo.Server().Snapshot()); err != nil {
				logger.Error("snapshot failed", "reason", reason, "err", err)
				return
			}
			logger.Info("snapshot saved", "path", *dataPath, "reason", reason)
		}
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(*saveEvr)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				save("periodic")
			case <-stop:
				// Drain in-flight requests BEFORE the final snapshot:
				// an upload accepted during the drain must be in the
				// snapshot, or a restart silently loses it.
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				if err := srv.Shutdown(ctx); err != nil {
					logger.Error("shutdown", "err", err)
				}
				// Stop replication before the final save: the follower's
				// tail loop and the leader's sessions must not race the
				// compaction or the store close.
				if follower != nil {
					follower.Close()
				}
				repMu.Lock()
				if repLeader != nil {
					repLeader.Close()
				}
				repMu.Unlock()
				save("shutdown")
				if st != nil {
					if err := st.Close(); err != nil {
						logger.Error("closing durable store", "err", err)
					}
				}
				return
			}
		}
	}()

	logger.Info("serving", "entities", len(catalog), "world", *universe, "addr", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("serve failed", "err", err)
	}
	<-done
}
