// Command benchjson converts `go test -bench` text output into a JSON
// report. It reads bench output on stdin, echoes it unchanged to stdout
// (so the human-readable stream survives the pipe), and writes the
// structured report to -out.
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./cmd/benchjson -out BENCH_PR4.json
//
// The report groups results by package (from the "pkg:" header lines Go
// emits) and parses the measurement pairs each line carries — ns/op,
// B/op, allocs/op, and any custom ReportMetric units — without assuming
// a fixed column layout.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line, e.g.
// BenchmarkCounterInc-8  228203818  5.26 ns/op  0 B/op  0 allocs/op
type Result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the whole run.
type Report struct {
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Generated  string   `json:"generated"`
	Benchmarks []Result `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+(.*)$`)

func parse(r io.Reader, echo io.Writer) ([]Result, error) {
	var out []Result
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			continue
		}
		res := Result{
			Name:       strings.TrimPrefix(m[1], "Benchmark"),
			Package:    pkg,
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		if m[2] != "" {
			res.Procs, _ = strconv.Atoi(m[2])
		}
		// The tail is value/unit pairs: "5.26 ns/op 0 B/op 0 allocs/op".
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			res.Metrics[fields[i+1]] = v
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

func main() {
	outPath := flag.String("out", "", "path for the JSON report (required)")
	flag.Parse()
	if *outPath == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -out is required")
		os.Exit(2)
	}

	results, err := parse(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	report := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Benchmarks: results,
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*outPath, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *outPath)
}
