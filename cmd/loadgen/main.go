// Command loadgen is the closed-loop load generator for the serving
// path. N workers each run a request loop against a live rspd —
// weighted mix of search / entity / reviews / directory GETs and
// review / upload POSTs — and the run reports per-route p50/p99/p999
// latency, throughput, error and shed rates.
//
// Modes:
//
//	loadgen -addr http://localhost:8080            # drive a running rspd
//	loadgen -selfhost -scale 0.05 -duration 5s     # spin up an in-process server
//	loadgen -cluster ring.json                     # drive a running cluster
//	loadgen -selfhost -cluster-nodes 3             # in-process 3-partition cluster
//	loadgen -cluster ring.json -stream-users 1000000  # persona-driven workload
//
// With -stream-users N the write side of the workload is drawn from a
// streaming world population instead of synthetic strings: each
// post-review / upload derives one of N deterministic users on demand
// (never materializing the population), rates one of the handful of
// entities that user frequents (a seed-stable affinity set over the
// discovered directory), and posts persona-shaped review text. Reads
// follow the same affinities, so cache behaviour sees realistic skew.
//
// Self-host builds the directory universe and serves it from the same
// process over a loopback listener — no external setup, rate limiting
// off, read cache togglable with -readcache — which is what the bench
// pipeline and the CI smoke use.
//
// In cluster mode the generator routes exactly as the cluster-aware
// client does: keyed requests (entity, reviews, uploads) go to the
// partition owning the entity key via the shared ring hash, unkeyed
// reads (search, directory) go to the coordinator chosen by hashing
// the request URI — query-affinity routing that concentrates each
// node's gathered-result cache. Tokens are fetched from the node the
// upload lands
// on, so per-node issuers work without shared key distribution.
//
// Results go to stdout in `go test -bench` text format so the existing
// cmd/benchjson pipeline converts them to JSON:
//
//	loadgen -selfhost -label cache=on | go run ./cmd/benchjson -out BENCH.json
//
// The human-readable summary goes to stderr. -assert-min-rps and
// -assert-no-5xx turn the run into a smoke test with a nonzero exit
// code on violation.
package main

import (
	"bytes"
	"crypto/rand"
	"crypto/rsa"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/big"
	mrand "math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"opinions/internal/blindsig"
	"opinions/internal/cluster"
	"opinions/internal/obs"
	"opinions/internal/rspserver"
	"opinions/internal/stripe"
	"opinions/internal/world"
)

// targets is where requests go: one base URL, or a cluster ring routed
// the same way rspclient.Router routes — keyed requests to the owner
// partition's preferred node, unkeyed reads to any node (every node
// coordinates cluster-wide reads).
type targets struct {
	base  string        // single-node mode
	ring  *cluster.Ring // cluster mode
	nodes []string      // preferred node per partition
}

func newTargets(base string, ring *cluster.Ring) *targets {
	t := &targets{base: base, ring: ring}
	if ring != nil {
		for p := 0; p < ring.NumPartitions(); p++ {
			t.nodes = append(t.nodes, ring.Preferred(p))
		}
	}
	return t
}

// forKey returns the node owning an entity key.
func (t *targets) forKey(key string) string {
	if t.ring == nil {
		return t.base
	}
	return t.nodes[t.ring.Partition(key)]
}

// coordinator returns the node that coordinates an unkeyed
// cluster-wide read. The choice hashes the request URI rather than
// picking at random: any node can coordinate, but sending identical
// queries to the same coordinator concentrates its gathered-result
// cache (query-affinity routing) while distinct queries still spread
// across the ring.
func (t *targets) coordinator(uri string) string {
	if t.ring == nil {
		return t.base
	}
	return t.nodes[stripe.IndexN(uri, len(t.nodes))]
}

// all returns every node (setup, metrics scrapes).
func (t *targets) all() []string {
	if t.ring == nil {
		return []string{t.base}
	}
	return t.nodes
}

func main() {
	var (
		addr     = flag.String("addr", "", "base URL of a running rspd (e.g. http://localhost:8080); empty requires -selfhost or -cluster")
		selfhost = flag.Bool("selfhost", false, "serve an in-process directory-world rspd on loopback and drive that")
		clusPath = flag.String("cluster", "", "cluster ring descriptor (JSON): drive a running multi-node cluster, routing by entity key")
		clusN    = flag.Int("cluster-nodes", 0, "with -selfhost: serve an in-process N-partition cluster instead of one node")
		scale    = flag.Float64("scale", 0.02, "directory scale for -selfhost")
		keyBits  = flag.Int("keybits", 768, "blind-signature key size for -selfhost (small: this measures serving, not RSA)")
		readch   = flag.Bool("readcache", true, "enable the read cache in -selfhost mode")
		workers  = flag.Int("workers", 16, "concurrent closed-loop workers")
		duration = flag.Duration("duration", 10*time.Second, "measurement window")
		mix      = flag.String("mix", "entity=35,search=20,reviews=20,directory=15,post-review=7,upload=3", "route weights")
		seed     = flag.Int64("seed", 1, "workload RNG seed")
		streamN  = flag.Int("stream-users", 0, "draw writes from N streamed world users (0 = synthetic workload)")
		streamS  = flag.Int64("stream-seed", 1, "world seed for -stream-users")
		label    = flag.String("label", "run", "benchmark sub-name (e.g. cache=on)")
		minRPS   = flag.Float64("assert-min-rps", 0, "exit 1 if overall throughput falls below this")
		no5xx    = flag.Bool("assert-no-5xx", false, "exit 1 if any request returns a 5xx")
	)
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
		os.Exit(1)
	}

	var (
		tg       *targets
		shutdown func()
	)
	switch {
	case *selfhost && *clusN > 1:
		ring, stop, err := startSelfhostCluster(*scale, *seed, *keyBits, *readch, *clusN)
		if err != nil {
			fail("selfhost cluster: %v", err)
		}
		shutdown = stop
		defer shutdown()
		tg = newTargets("", ring)
	case *selfhost:
		base, stop, err := startSelfhost(*scale, *seed, *keyBits, *readch)
		if err != nil {
			fail("selfhost: %v", err)
		}
		shutdown = stop
		defer shutdown()
		tg = newTargets(base, nil)
	case *clusPath != "":
		ring, err := cluster.Load(*clusPath)
		if err != nil {
			fail("%v", err)
		}
		tg = newTargets("", ring)
	case *addr != "":
		tg = newTargets(strings.TrimRight(*addr, "/"), nil)
	default:
		fail("need -addr, -cluster, or -selfhost")
	}

	weights, err := parseMix(*mix)
	if err != nil {
		fail("%v", err)
	}

	tr := &http.Transport{MaxIdleConns: *workers * 2, MaxIdleConnsPerHost: *workers * 2}
	client := &http.Client{Transport: tr, Timeout: 30 * time.Second}

	setup, err := discover(client, tg, *seed)
	if err != nil {
		fail("setup: %v", err)
	}
	fmt.Fprintf(os.Stderr, "loadgen: targets %v — %d entities, %d services, %d review targets seeded\n",
		tg.all(), len(setup.entityKeys), len(setup.services), len(setup.reviewKeys))

	if *streamN > 0 {
		setup.users = newStreamUsers(*streamS, *streamN)
		fmt.Fprintf(os.Stderr, "loadgen: persona workload from %d streamed users (seed %d)\n", *streamN, *streamS)
	}

	before := scrapeCacheCounters(client, tg)

	agg := newAggregate()
	var wg sync.WaitGroup
	stopAt := time.Now().Add(*duration)
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			runWorker(client, tg, setup, weights, mrand.New(mrand.NewSource(*seed+int64(w)*7919)), w, stopAt, agg)
		}(w)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	after := scrapeCacheCounters(client, tg)
	if shutdown != nil {
		shutdown()
		shutdown = nil
	}

	report(os.Stdout, os.Stderr, *label, *workers, elapsed, agg, before, after)

	total, errs5xx := agg.totals()
	rps := float64(total) / elapsed.Seconds()
	if *minRPS > 0 && rps < *minRPS {
		fail("throughput %.1f req/s below -assert-min-rps %.1f", rps, *minRPS)
	}
	if *no5xx && errs5xx > 0 {
		fail("%d requests answered 5xx with -assert-no-5xx", errs5xx)
	}
}

// routeStats collects one route's closed-loop samples. Latencies are
// recorded per request and sorted once at report time; at loadgen
// scales (≤ a few million samples) the memory is cheap and exact
// percentiles beat a sketch.
type routeStats struct {
	mu        sync.Mutex
	latencies []time.Duration
	count     int64
	errs      int64 // transport errors + 5xx other than 503
	errs5xx   int64 // actual 5xx responses other than 503 — the -assert-no-5xx gate
	shed      int64 // 503: load shed / follower gate
	rejected  int64 // 4xx: client-side refusals (rate limits, validation)
}

type aggregate struct {
	mu     sync.Mutex
	routes map[string]*routeStats
}

func newAggregate() *aggregate { return &aggregate{routes: make(map[string]*routeStats)} }

func (a *aggregate) route(name string) *routeStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	rs := a.routes[name]
	if rs == nil {
		rs = &routeStats{}
		a.routes[name] = rs
	}
	return rs
}

func (a *aggregate) record(route string, d time.Duration, status int, err error) {
	rs := a.route(route)
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.count++
	switch {
	case err != nil:
		rs.errs++
	case status == http.StatusServiceUnavailable:
		rs.shed++
	case status >= 500:
		rs.errs++
		rs.errs5xx++
	case status >= 400:
		rs.rejected++
	default:
		rs.latencies = append(rs.latencies, d)
	}
}

// totals backs the smoke assertions: errs5xx counts only actual 5xx
// status codes (excluding 503 sheds and transport errors), so
// -assert-no-5xx is a strict no-5xx check rather than flaking on a
// connection blip or deliberate load shedding.
func (a *aggregate) totals() (total, errs5xx int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, rs := range a.routes {
		rs.mu.Lock()
		total += rs.count
		errs5xx += rs.errs5xx
		rs.mu.Unlock()
	}
	return total, errs5xx
}

// parseMix parses "entity=35,search=20,..." into a weighted route
// table, expanded so a uniform draw in [0, total) lands on a route.
func parseMix(s string) ([]string, error) {
	known := map[string]bool{"entity": true, "search": true, "reviews": true,
		"directory": true, "post-review": true, "upload": true}
	var table []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad -mix element %q (want route=weight)", part)
		}
		if !known[name] {
			return nil, fmt.Errorf("unknown route %q in -mix", name)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad weight in -mix element %q", part)
		}
		for i := 0; i < w; i++ {
			table = append(table, name)
		}
	}
	if len(table) == 0 {
		return nil, fmt.Errorf("-mix selects no routes")
	}
	return table, nil
}

// setupState is what a worker needs to form requests: the query
// surface from /api/meta, entity keys from /api/directory, and the
// token issuers' public keys (per node — a cluster without shared key
// distribution has one issuer per node) for the upload protocol.
type setupState struct {
	services   []rspserver.MetaService
	entityKeys []string
	reviewKeys []string // subset with freshly posted reviews, so GETs page real data
	pubKeys    map[string]*rsa.PublicKey
	users      *streamUsers // nil = synthetic workload
}

// streamUsers draws workload actors from a streaming world population.
// Each draw derives one user on demand from the seed (O(1) memory in
// n), so -stream-users 1000000 costs no more resident memory than 100.
type streamUsers struct {
	city *world.City
}

func newStreamUsers(seed int64, n int) *streamUsers {
	return &streamUsers{city: world.OpenCity(world.CityConfig{Seed: seed, NumUsers: n})}
}

// affinityKeys is how many directory entities one user frequents —
// the locality knob that makes the persona workload skew reads and
// writes the way a real population does.
const affinityKeys = 8

// draw derives a random user for this request.
func (su *streamUsers) draw(rng *mrand.Rand) *world.User {
	return su.city.UserAt(rng.Intn(su.city.NumUsers()))
}

// affinity picks one of u's frequented entities. The mapping hashes
// (user, slot) into the discovered key space, so it is seed-stable per
// user across workers and runs but different across users.
func affinity(u *world.User, slot int, keys []string) string {
	return keys[stripe.IndexN(fmt.Sprintf("%s/aff/%d", u.ID, slot), len(keys))]
}

// streamQuality is the assumed quality prior for entities the user only
// knows by key; ratings then come from the user's private taste offset
// around it, the same ExplicitRatingFor path the trace simulator uses.
const streamQuality = 3.4

func discover(client *http.Client, tg *targets, seed int64) (*setupState, error) {
	st := &setupState{pubKeys: make(map[string]*rsa.PublicKey)}
	first := tg.all()[0]
	var meta rspserver.MetaResponse
	if err := getJSON(client, first+"/api/meta", &meta); err != nil {
		return nil, fmt.Errorf("/api/meta: %w", err)
	}
	st.services = meta.Services

	// In cluster mode any node answers with the gathered cluster-wide
	// directory, so one fetch discovers every partition's entities.
	var dir []rspserver.WireEntity
	if err := getJSON(client, first+"/api/directory", &dir); err != nil {
		return nil, fmt.Errorf("/api/directory: %w", err)
	}
	if len(dir) == 0 {
		return nil, fmt.Errorf("empty directory — nothing to load")
	}
	for _, e := range dir {
		st.entityKeys = append(st.entityKeys, e.Key)
	}

	for _, node := range tg.all() {
		var keyResp rspserver.TokenKeyResponse
		if err := getJSON(client, node+"/api/token/key", &keyResp); err != nil {
			return nil, fmt.Errorf("%s/api/token/key: %w", node, err)
		}
		n, ok := new(big.Int).SetString(keyResp.N, 10)
		if !ok {
			return nil, fmt.Errorf("token key modulus not a number")
		}
		st.pubKeys[node] = &rsa.PublicKey{N: n, E: keyResp.E}
	}

	// Seed a handful of reviews so paginated GET /api/reviews reads
	// non-empty pages from the first request. Each seed routes to its
	// entity's owner, like the workload it primes.
	rng := mrand.New(mrand.NewSource(seed))
	nSeed := 8
	if nSeed > len(st.entityKeys) {
		nSeed = len(st.entityKeys)
	}
	for i := 0; i < nSeed; i++ {
		key := st.entityKeys[rng.Intn(len(st.entityKeys))]
		body := rspserver.PostReviewRequest{Entity: key, Author: fmt.Sprintf("loadgen-seed-%d", i), Rating: float64(rng.Intn(11)) / 2, Text: "loadgen seed review"}
		status, err := postJSONStatus(client, tg.forKey(key)+"/api/reviews", body)
		if err == nil && status < 300 {
			st.reviewKeys = append(st.reviewKeys, key)
		}
	}
	if len(st.reviewKeys) == 0 {
		st.reviewKeys = st.entityKeys[:1]
	}
	return st, nil
}

func runWorker(client *http.Client, tg *targets, st *setupState, mix []string, rng *mrand.Rand, worker int, stopAt time.Time, agg *aggregate) {
	uploads := 0
	for time.Now().Before(stopAt) {
		route := mix[rng.Intn(len(mix))]
		switch route {
		case "entity":
			key := st.entityKeys[rng.Intn(len(st.entityKeys))]
			if st.users != nil {
				// Persona mode: users look up the places they frequent.
				key = affinity(st.users.draw(rng), rng.Intn(affinityKeys), st.entityKeys)
			}
			doGet(client, agg, route, tg.forKey(key)+"/api/entity?key="+key)
		case "search":
			svc := st.services[rng.Intn(len(st.services))]
			q := "service=" + svc.Kind + "&limit=20"
			if len(svc.Categories) > 0 {
				q += "&category=" + svc.Categories[rng.Intn(len(svc.Categories))]
			}
			if len(svc.Zips) > 0 {
				q += "&zip=" + svc.Zips[rng.Intn(len(svc.Zips))]
			}
			uri := "/api/search?" + q
			doGet(client, agg, route, tg.coordinator(uri)+uri)
		case "reviews":
			key := st.reviewKeys[rng.Intn(len(st.reviewKeys))]
			offset := rng.Intn(3) * 5
			doGet(client, agg, route, fmt.Sprintf("%s/api/reviews?entity=%s&offset=%d&limit=20", tg.forKey(key), key, offset))
		case "directory":
			q := ""
			if rng.Intn(2) == 0 {
				q = "?service=" + st.services[rng.Intn(len(st.services))].Kind
			}
			uri := "/api/directory" + q
			doGet(client, agg, route, tg.coordinator(uri)+uri)
		case "post-review":
			req := rspserver.PostReviewRequest{
				Entity: st.entityKeys[rng.Intn(len(st.entityKeys))],
				Author: fmt.Sprintf("loadgen-w%d", worker),
				Rating: float64(rng.Intn(11)) / 2,
				Text:   "loadgen review",
			}
			if st.users != nil {
				// Persona mode: a derived user reviews one of their own
				// haunts with their taste-offset rating and class-shaped
				// text — realistic author cardinality, payload sizes, and
				// per-entity write skew.
				u := st.users.draw(rng)
				req.Entity = affinity(u, rng.Intn(affinityKeys), st.entityKeys)
				req.Author = string(u.ID)
				req.Rating = u.ExplicitRatingFor(req.Entity, streamQuality)
				req.Text = world.ReviewText(u, req.Entity, req.Rating)
			}
			doPost(client, agg, route, tg.forKey(req.Entity)+"/api/reviews", req)
		case "upload":
			uploads++
			doUpload(client, agg, tg, st, rng, worker, uploads)
		}
	}
}

func doGet(client *http.Client, agg *aggregate, route, url string) {
	t0 := time.Now()
	resp, err := client.Get(url)
	d := time.Since(t0)
	status := 0
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		status = resp.StatusCode
	}
	agg.record(route, d, status, err)
}

func doPost(client *http.Client, agg *aggregate, route, url string, body any) (int, error) {
	buf, _ := json.Marshal(body)
	t0 := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	d := time.Since(t0)
	status := 0
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		status = resp.StatusCode
	}
	agg.record(route, d, status, err)
	return status, err
}

// doUpload runs the full anonymous upload protocol: blind a fresh
// serial, have the issuer sign it (each upload uses a fresh device ID
// so per-device token rate limits don't throttle the generator),
// unblind, then deliver a rating under the one-time token. Token
// issuance and the upload itself are timed as separate routes — RSA
// signing has a different cost profile than the commit path. The
// entity is drawn first so token and upload both go to its owner
// node: the token must be redeemed where it was issued.
func doUpload(client *http.Client, agg *aggregate, tg *targets, st *setupState, rng *mrand.Rand, worker, n int) {
	key := st.entityKeys[rng.Intn(len(st.entityKeys))]
	rating := float64(rng.Intn(11)) / 2
	if st.users != nil {
		// Persona mode: the anonymous rating is still a real user's
		// taste for a place they frequent — the upload stays unlinkable
		// (token + anon id), but the value distribution is the
		// population's.
		u := st.users.draw(rng)
		key = affinity(u, rng.Intn(affinityKeys), st.entityKeys)
		rating = u.ExplicitRatingFor(key, streamQuality)
	}
	base := tg.forKey(key)
	serial := make([]byte, 32)
	if _, err := rand.Read(serial); err != nil {
		agg.record("upload", 0, 0, err)
		return
	}
	blinded, unblind, err := blindsig.Blind(st.pubKeys[base], serial, rand.Reader)
	if err != nil {
		agg.record("upload", 0, 0, err)
		return
	}
	device := fmt.Sprintf("lg-%d-%d", worker, n)
	buf, _ := json.Marshal(rspserver.TokenSignRequest{Device: device, Blinded: blinded.String()})
	t0 := time.Now()
	resp, err := client.Post(base+"/api/token", "application/json", bytes.NewReader(buf))
	d := time.Since(t0)
	if err != nil {
		agg.record("token", d, 0, err)
		return
	}
	var signResp rspserver.TokenSignResponse
	decErr := json.NewDecoder(resp.Body).Decode(&signResp)
	resp.Body.Close()
	agg.record("token", d, resp.StatusCode, nil)
	if resp.StatusCode != http.StatusOK || decErr != nil {
		return
	}
	blindSig, ok := new(big.Int).SetString(signResp.BlindSig, 10)
	if !ok {
		return
	}
	token := rspserver.FromToken(blindsig.Token{Msg: serial, Sig: unblind(blindSig)})

	doPost(client, agg, "upload", base+"/api/upload", rspserver.UploadRequest{
		AnonID: fmt.Sprintf("anon-%d-%d", worker, n),
		Entity: key,
		Rating: &rating,
		Token:  token,
		Key:    fmt.Sprintf("lg-%d-%d", worker, n),
	})
}

// cacheCounters is a scrape of the read cache's /metrics counters.
type cacheCounters struct {
	hits, misses uint64
	ok           bool
}

// scrapeCacheCounters sums the read-cache counters over every node.
// In-process cluster nodes share one registry, so the first scrape is
// the total; distinct processes each contribute their own counters —
// scraping the set and keeping the max per counter handles both
// without double-counting the shared-registry case.
func scrapeCacheCounters(client *http.Client, tg *targets) cacheCounters {
	var out cacheCounters
	seen := make(map[string]bool)
	for _, node := range tg.all() {
		c := scrapeOne(client, node)
		if !c.ok {
			continue
		}
		sig := fmt.Sprintf("%d/%d", c.hits, c.misses)
		if seen[sig] {
			continue // same shared registry answered twice
		}
		seen[sig] = true
		out.hits += c.hits
		out.misses += c.misses
		out.ok = true
	}
	return out
}

func scrapeOne(client *http.Client, base string) cacheCounters {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return cacheCounters{}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return cacheCounters{}
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return cacheCounters{}
	}
	var c cacheCounters
	for _, line := range strings.Split(string(body), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		switch fields[0] {
		case "readcache_hits_total":
			c.hits, c.ok = uint64(v), true
		case "readcache_misses_total":
			c.misses, c.ok = uint64(v), true
		}
	}
	return c
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// report writes the machine-readable bench lines to benchOut and the
// human summary to human.
func report(benchOut, human io.Writer, label string, workers int, elapsed time.Duration, agg *aggregate, before, after cacheCounters) {
	fmt.Fprintf(benchOut, "goos: %s\n", runtime.GOOS)
	fmt.Fprintf(benchOut, "goarch: %s\n", runtime.GOARCH)
	fmt.Fprintln(benchOut, "pkg: opinions/cmd/loadgen")

	routeNames := make([]string, 0, len(agg.routes))
	for name := range agg.routes {
		routeNames = append(routeNames, name)
	}
	sort.Strings(routeNames)

	fmt.Fprintf(human, "loadgen: %s — %d workers, %.1fs\n", label, workers, elapsed.Seconds())
	var total, totalErrs, totalShed int64
	for _, name := range routeNames {
		rs := agg.routes[name]
		rs.mu.Lock()
		sort.Slice(rs.latencies, func(i, j int) bool { return rs.latencies[i] < rs.latencies[j] })
		p50 := percentile(rs.latencies, 0.50)
		p99 := percentile(rs.latencies, 0.99)
		p999 := percentile(rs.latencies, 0.999)
		rps := float64(rs.count) / elapsed.Seconds()
		errRate := float64(rs.errs) / float64(rs.count)
		shedRate := float64(rs.shed) / float64(rs.count)
		total += rs.count
		totalErrs += rs.errs
		totalShed += rs.shed
		fmt.Fprintf(benchOut, "BenchmarkLoadgen/%s/route=%s-%d %d %d p50-ns/op %d p99-ns/op %d p999-ns/op %.1f req/s %.4f err-rate %.4f shed-rate\n",
			label, name, workers, rs.count, p50.Nanoseconds(), p99.Nanoseconds(), p999.Nanoseconds(), rps, errRate, shedRate)
		fmt.Fprintf(human, "  %-12s %7d reqs  %8.1f req/s  p50 %-10v p99 %-10v p999 %-10v errs %d shed %d rejected %d\n",
			name, rs.count, rps, p50, p99, p999, rs.errs, rs.shed, rs.rejected)
		rs.mu.Unlock()
	}

	rps := float64(total) / elapsed.Seconds()
	line := fmt.Sprintf("BenchmarkLoadgen/%s/total-%d %d %.1f req/s %.4f err-rate %.4f shed-rate",
		label, workers, total, rps, float64(totalErrs)/float64(max64(total, 1)), float64(totalShed)/float64(max64(total, 1)))
	summary := fmt.Sprintf("loadgen: total %d reqs, %.1f req/s, %d errors, %d shed", total, rps, totalErrs, totalShed)
	if before.ok && after.ok {
		dh := after.hits - before.hits
		dm := after.misses - before.misses
		ratio := 0.0
		if dh+dm > 0 {
			ratio = float64(dh) / float64(dh+dm)
		}
		line += fmt.Sprintf(" %.4f cache-hit-ratio", ratio)
		summary += fmt.Sprintf(", cache hit ratio %.1f%% (%d hits / %d misses)", ratio*100, dh, dm)
	}
	fmt.Fprintln(benchOut, line)
	fmt.Fprintln(human, summary)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func postJSONStatus(client *http.Client, url string, body any) (int, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// startSelfhost builds the directory universe and serves it in-process
// on a loopback listener: recovery, metrics, timeout, and an
// in-flight cap, but no rate limiting — the generator IS the abusive
// client. /metrics rides the same listener, outside the chain, so the
// cache-hit scrape works against selfhost exactly as against rspd.
func startSelfhost(scale float64, seed int64, keyBits int, readCache bool) (string, func(), error) {
	dir := world.BuildDirectory(world.DirectoryConfig{Seed: seed, NumZips: 10, Scale: scale, InteractionEntities: 200})
	var catalog []*world.Entity
	for _, kind := range world.ReviewServices {
		catalog = append(catalog, dir.Entities[kind]...)
	}
	for _, kind := range world.InteractionServices {
		catalog = append(catalog, dir.Entities[kind]...)
	}
	var zips []string
	for _, z := range dir.Zips {
		zips = append(zips, z.Code)
	}
	srv, err := rspserver.New(rspserver.Config{
		Catalog:          catalog,
		KeyBits:          keyBits,
		Zips:             zips,
		TokenRate:        1 << 30, // uncapped: fresh device per upload anyway
		TokenPeriod:      time.Hour,
		DisableReadCache: !readCache,
	})
	if err != nil {
		return "", nil, err
	}
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	handler := rspserver.Chain(srv.Handler(),
		rspserver.WithRecovery(logger),
		rspserver.WithMetrics(),
		rspserver.WithTimeout(30*time.Second),
		rspserver.WithMaxInFlight(1024, time.Second),
	)
	mux := http.NewServeMux()
	mux.Handle("/", handler)
	mux.Handle("/metrics", obs.Default.Handler())
	ts := httptest.NewServer(mux)

	var once sync.Once
	var closed atomic.Bool
	stop := func() {
		once.Do(func() {
			closed.Store(true)
			ts.Close()
		})
	}
	return ts.URL, stop, nil
}

// startSelfhostCluster serves an n-partition cluster in-process: one
// listener per partition, each fronting its slice of the shared
// directory universe behind the ownership gate and the scatter-gather
// coordinator — the same layering a real multi-node deployment runs,
// minus the network between machines.
func startSelfhostCluster(scale float64, seed int64, keyBits int, readCache bool, n int) (*cluster.Ring, func(), error) {
	dir := world.BuildDirectory(world.DirectoryConfig{Seed: seed, NumZips: 10, Scale: scale, InteractionEntities: 200})
	var catalog []*world.Entity
	for _, kind := range world.ReviewServices {
		catalog = append(catalog, dir.Entities[kind]...)
	}
	for _, kind := range world.InteractionServices {
		catalog = append(catalog, dir.Entities[kind]...)
	}
	var zips []string
	for _, z := range dir.Zips {
		zips = append(zips, z.Code)
	}

	// Listeners first: the ring needs every node's URL before the
	// handlers can be built, so each server delegates via a late-bound
	// slot.
	handlers := make([]atomic.Pointer[http.Handler], n)
	servers := make([]*httptest.Server, n)
	parts := make([]cluster.Partition, n)
	for p := 0; p < n; p++ {
		p := p
		servers[p] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			(*handlers[p].Load()).ServeHTTP(w, r)
		}))
		parts[p] = cluster.Partition{Nodes: []string{servers[p].URL}}
	}
	stopAll := func() {
		for _, ts := range servers {
			ts.Close()
		}
	}
	ring, err := cluster.New(cluster.Config{Partitions: parts})
	if err != nil {
		stopAll()
		return nil, nil, err
	}

	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	for p := 0; p < n; p++ {
		srv, err := rspserver.New(rspserver.Config{
			Catalog:          rspserver.FilterCatalog(ring, p, catalog),
			KeyBits:          keyBits,
			Zips:             zips,
			TokenRate:        1 << 30,
			TokenPeriod:      time.Hour,
			DisableReadCache: !readCache,
		})
		if err != nil {
			stopAll()
			return nil, nil, err
		}
		handler := rspserver.Chain(srv.Handler(),
			rspserver.WithRecovery(logger),
			rspserver.WithMetrics(),
			rspserver.WithTimeout(30*time.Second),
			rspserver.WithMaxInFlight(1024, time.Second),
			rspserver.WithScatterGather(ring, p, rspserver.GatherOptions{}),
			rspserver.WithOwnershipGate(ring, p),
		)
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.Handle("/metrics", obs.Default.Handler())
		h := http.Handler(mux)
		handlers[p].Store(&h)
	}

	var once sync.Once
	stop := func() { once.Do(stopAll) }
	return ring, stop, nil
}
