// Command worldgen generates a synthetic universe and dumps a summary,
// streams it as JSONL, or emits partitioned shards for the cluster.
//
//	worldgen -world city -users 100
//	worldgen -world city -users 1000000 -json            # streamed, O(1) memory
//	worldgen -world city -users 1000000 -shards 3 -out shards/
//	worldgen -world city -users 1000000 -shards 3 -shard 1 -out shards/
//	worldgen -world directory -scale 0.1 -json > directory.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"opinions/internal/stats"
	"opinions/internal/stripe"
	"opinions/internal/world"
)

func main() {
	var (
		universe = flag.String("world", "city", "city | directory")
		users    = flag.Int("users", 400, "city users")
		scale    = flag.Float64("scale", 0.2, "directory scale")
		seed     = flag.Int64("seed", 1, "seed")
		asJSON   = flag.Bool("json", false, "stream records as JSONL instead of a summary")
		shards   = flag.Int("shards", 0, "partition the city into N shards aligned with the cluster ring")
		shard    = flag.Int("shard", -1, "emit only this shard index (default: all)")
		outDir   = flag.String("out", "", "output directory for shard files")
	)
	flag.Parse()

	switch *universe {
	case "city":
		city := world.OpenCity(world.CityConfig{Seed: *seed, NumUsers: *users})
		if *shards > 0 {
			if *outDir == "" {
				log.Fatal("-shards requires -out DIR")
			}
			if err := emitShards(city, *shards, *shard, *outDir); err != nil {
				log.Fatal(err)
			}
			return
		}
		if *asJSON {
			// Stream one record per line; the city's population is never
			// resident, so this works at any -users.
			enc := json.NewEncoder(os.Stdout)
			for _, e := range city.Entities {
				if err := enc.Encode(e); err != nil {
					log.Fatal(err)
				}
			}
			return
		}
		fmt.Printf("city: %d users, %d entities\n", city.NumUsers(), len(city.Entities))
		for _, cat := range world.PhysicalCategories {
			fmt.Printf("  %-12s %4d entities\n", cat, len(city.EntitiesByCategory(cat)))
		}
		classes := map[world.ParticipationClass]int{}
		city.EachUser(func(_ int, u *world.User) bool {
			classes[u.Class]++
			return true
		})
		fmt.Printf("  participation: %d heavy / %d occasional / %d lurkers (1/9/90 rule)\n",
			classes[world.HeavyContributor], classes[world.OccasionalContributor], classes[world.Lurker])
	case "directory":
		dir := world.BuildDirectory(world.DirectoryConfig{Seed: *seed, NumZips: 50, Scale: *scale, InteractionEntities: 1000})
		if *asJSON {
			// One record per Encode call: nothing accumulates, whatever
			// the directory scale.
			enc := json.NewEncoder(os.Stdout)
			for _, kind := range world.ReviewServices {
				for _, e := range dir.Entities[kind] {
					if err := enc.Encode(e); err != nil {
						log.Fatal(err)
					}
				}
			}
			return
		}
		fmt.Printf("directory: %d zips\n", len(dir.Zips))
		for _, kind := range world.ReviewServices {
			med, _ := stats.Median(dir.ReviewCounts(kind))
			fmt.Printf("  %-14s %6d entities, median %3.0f reviews, %d categories\n",
				kind, len(dir.Entities[kind]), med, len(dir.Profiles[kind].Categories))
		}
		for _, kind := range world.InteractionServices {
			fmt.Printf("  %-14s %6d entities (interaction service)\n", kind, len(dir.Entities[kind]))
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown -world %q\n", *universe)
		os.Exit(2)
	}
}

// shardManifest describes a shard emission so downstream consumers
// (agents, loadgen) can re-derive the exact same world.
type shardManifest struct {
	Seed     int64 `json:"seed"`
	Users    int   `json:"users"`
	Shards   int   `json:"shards"`
	Entities int   `json:"entities"`
}

// userRecord is one line of a users shard file. It is membership, not
// state: the full user is regenerable from (seed, index), so shards
// stay small at any population size.
type userRecord struct {
	Index int          `json:"i"`
	ID    world.UserID `json:"id"`
	Class int          `json:"class"`
}

// emitShards writes per-partition JSONL shard files under dir. Users go
// to shard stripe.IndexN(id, n) and entities to stripe.IndexN(key, n) —
// the same modulo placement cluster.Ring.Partition routes by, so shard
// p contains exactly the records cluster node p owns. Records stream
// one at a time; memory is O(1) in the population.
func emitShards(city *world.City, n, only int, dir string) error {
	if only >= n {
		return fmt.Errorf("-shard %d out of range for %d shards", only, n)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	type sink struct {
		users, entities *json.Encoder
		uw, ew          *bufio.Writer
		files           []*os.File
		nUsers, nEnts   int
	}
	sinks := make([]*sink, n)
	for p := 0; p < n; p++ {
		if only >= 0 && p != only {
			continue
		}
		uf, err := os.Create(filepath.Join(dir, fmt.Sprintf("shard-%03d.users.jsonl", p)))
		if err != nil {
			return err
		}
		ef, err := os.Create(filepath.Join(dir, fmt.Sprintf("shard-%03d.entities.jsonl", p)))
		if err != nil {
			uf.Close()
			return err
		}
		uw, ew := bufio.NewWriter(uf), bufio.NewWriter(ef)
		sinks[p] = &sink{
			users: json.NewEncoder(uw), entities: json.NewEncoder(ew),
			uw: uw, ew: ew, files: []*os.File{uf, ef},
		}
	}

	var emitErr error
	city.EachUser(func(i int, u *world.User) bool {
		p := stripe.IndexN(string(u.ID), n)
		s := sinks[p]
		if s == nil {
			return true
		}
		if err := s.users.Encode(userRecord{Index: i, ID: u.ID, Class: int(u.Class)}); err != nil {
			emitErr = err
			return false
		}
		s.nUsers++
		return true
	})
	if emitErr != nil {
		return emitErr
	}
	for _, e := range city.Entities {
		p := stripe.IndexN(e.Key(), n)
		s := sinks[p]
		if s == nil {
			continue
		}
		if err := s.entities.Encode(e); err != nil {
			return err
		}
		s.nEnts++
	}

	for p, s := range sinks {
		if s == nil {
			continue
		}
		for _, w := range []*bufio.Writer{s.uw, s.ew} {
			if err := w.Flush(); err != nil {
				return err
			}
		}
		for _, f := range s.files {
			if err := f.Close(); err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "shard %03d: %d users, %d entities\n", p, s.nUsers, s.nEnts)
	}

	mf, err := os.Create(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return err
	}
	defer mf.Close()
	enc := json.NewEncoder(mf)
	enc.SetIndent("", "  ")
	return enc.Encode(shardManifest{
		Seed: city.Seed(), Users: city.NumUsers(), Shards: n, Entities: len(city.Entities),
	})
}
