// Command worldgen generates a synthetic universe and dumps a summary
// (or full JSON) for inspection.
//
//	worldgen -world city -users 100
//	worldgen -world directory -scale 0.1 -json > directory.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"opinions/internal/stats"
	"opinions/internal/world"
)

func main() {
	var (
		universe = flag.String("world", "city", "city | directory")
		users    = flag.Int("users", 400, "city users")
		scale    = flag.Float64("scale", 0.2, "directory scale")
		seed     = flag.Int64("seed", 1, "seed")
		asJSON   = flag.Bool("json", false, "dump entities as JSON instead of a summary")
	)
	flag.Parse()

	switch *universe {
	case "city":
		city := world.BuildCity(world.CityConfig{Seed: *seed, NumUsers: *users})
		if *asJSON {
			dump(city.Entities)
			return
		}
		fmt.Printf("city: %d users, %d entities\n", len(city.Users), len(city.Entities))
		for _, cat := range world.PhysicalCategories {
			fmt.Printf("  %-12s %4d entities\n", cat, len(city.EntitiesByCategory(cat)))
		}
		classes := map[world.ParticipationClass]int{}
		for _, u := range city.Users {
			classes[u.Class]++
		}
		fmt.Printf("  participation: %d heavy / %d occasional / %d lurkers (1/9/90 rule)\n",
			classes[world.HeavyContributor], classes[world.OccasionalContributor], classes[world.Lurker])
	case "directory":
		dir := world.BuildDirectory(world.DirectoryConfig{Seed: *seed, NumZips: 50, Scale: *scale, InteractionEntities: 1000})
		if *asJSON {
			var all []*world.Entity
			for _, kind := range world.ReviewServices {
				all = append(all, dir.Entities[kind]...)
			}
			dump(all)
			return
		}
		fmt.Printf("directory: %d zips\n", len(dir.Zips))
		for _, kind := range world.ReviewServices {
			med, _ := stats.Median(dir.ReviewCounts(kind))
			fmt.Printf("  %-14s %6d entities, median %3.0f reviews, %d categories\n",
				kind, len(dir.Entities[kind]), med, len(dir.Profiles[kind].Categories))
		}
		for _, kind := range world.InteractionServices {
			fmt.Printf("  %-14s %6d entities (interaction service)\n", kind, len(dir.Entities[kind]))
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown -world %q\n", *universe)
		os.Exit(2)
	}
}

func dump(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Fatal(err)
	}
}
