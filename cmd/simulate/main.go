// Command simulate runs a full deployment — city, device agents,
// reviews, anonymous uploads, model training — and saves the resulting
// RSP state as a snapshot that rspd can serve:
//
//	simulate -users 300 -days 180 -out state.gz
//	rspd -world city -users 300 -seed 1 -data state.gz
//
// The snapshot contains only what a real RSP would hold: reviews,
// anonymous histories, inferred opinions, the trained model. No user
// identities exist in it (§4.2).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"opinions/internal/experiments"
	"opinions/internal/storage"
)

func main() {
	var (
		users = flag.Int("users", 300, "city users")
		days  = flag.Int("days", 180, "days to simulate")
		seed  = flag.Int64("seed", 1, "seed (must match rspd's -seed to share the catalog)")
		out   = flag.String("out", "state.gz", "snapshot output path")
		sweep = flag.Bool("sweep", true, "run the §4.3 fraud sweep before saving")
	)
	flag.Parse()

	start := time.Now()
	dep, err := experiments.RunDeployment(experiments.DeployConfig{
		Seed: *seed, Users: *users, Days: *days, KeyBits: 1024,
	})
	if err != nil {
		log.Fatalf("simulate: %v", err)
	}
	fmt.Fprintf(os.Stderr, "simulated %d users × %d days in %v\n",
		*users, *days, time.Since(start).Round(time.Second))

	if *sweep {
		scanned, discarded, err := dep.Server.FraudSweep()
		if err != nil {
			log.Fatalf("simulate: fraud sweep: %v", err)
		}
		fmt.Fprintf(os.Stderr, "fraud sweep: %d scanned, %d discarded\n", scanned, discarded)
	}

	snap := dep.Server.Snapshot()
	if err := storage.SaveFile(*out, snap); err != nil {
		log.Fatalf("simulate: saving: %v", err)
	}
	rev, ops, hists := dep.Server.Stores()
	hs := hists.Stats()
	fmt.Printf("saved %s: %d reviews, %d inferred opinions, %d histories (%d records), model trained: %v\n",
		*out, rev.TotalReviews(), ops.Total(), hs.Histories, hs.Records, dep.ModelTrained)
}
