// Command crawl runs the §2 measurement study against an RSP.
//
// Self-contained (spins up an in-process directory server):
//
//	crawl -selfhost -scale 1.0
//
// Or against a live rspd started with -world directory:
//
//	crawl -server http://localhost:8080
//
// It prints Table 1 and the Figure 1(a)/(b)/(c) series.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"opinions/internal/crawler"
	"opinions/internal/experiments"
	"opinions/internal/stats"
	"opinions/internal/world"
)

func main() {
	var (
		server   = flag.String("server", "", "rspd base URL (mutually exclusive with -selfhost)")
		selfhost = flag.Bool("selfhost", false, "build and crawl an in-process directory server")
		scale    = flag.Float64("scale", 1.0, "directory scale for -selfhost (1.0 = paper scale)")
		seed     = flag.Int64("seed", 1, "world seed for -selfhost")
	)
	flag.Parse()

	if *selfhost == (*server != "") {
		fmt.Fprintln(os.Stderr, "exactly one of -selfhost or -server is required")
		os.Exit(2)
	}

	if *selfhost {
		u, err := experiments.BuildCrawlUniverse(world.DirectoryConfig{
			Seed: *seed, NumZips: 50, Scale: *scale, InteractionEntities: 1000,
		})
		if err != nil {
			log.Fatalf("crawl: %v", err)
		}
		experiments.RunTable1(u).Render(os.Stdout)
		fmt.Println()
		experiments.RunFig1a(u).Render(os.Stdout)
		fmt.Println()
		experiments.RunFig1b(u).Render(os.Stdout)
		fmt.Println()
		experiments.RunFig1c(u).Render(os.Stdout)
		return
	}

	c := &crawler.Client{BaseURL: *server, Workers: 8}
	meta, err := c.Meta()
	if err != nil {
		log.Fatalf("crawl: fetching meta: %v", err)
	}
	fmt.Printf("%-14s %12s %10s %12s %16s\n", "Service", "#Categories", "#Queries", "#Entities", "median reviews")
	for _, ms := range meta.Services {
		kind := world.ServiceKind(ms.Kind)
		switch kind {
		case world.GooglePlay, world.YouTube:
			s, err := crawler.CrawlInteractions(c, ms.Kind, 1000)
			if err != nil {
				log.Fatalf("crawl: %s: %v", ms.Kind, err)
			}
			mr, _ := stats.Median(s.Ratios())
			fmt.Printf("%-14s %12d %10s %12d  interaction/feedback ratio %.0f×\n",
				ms.Kind, len(ms.Categories), "-", len(s.Interactions), mr)
		default:
			m, err := crawler.CrawlService(c, ms)
			if err != nil {
				log.Fatalf("crawl: %s: %v", ms.Kind, err)
			}
			med, _ := stats.Median(m.ReviewCounts)
			fmt.Printf("%-14s %12d %10d %12d %16.0f\n",
				ms.Kind, m.Categories, len(m.Queries), m.TotalEntities(), med)
		}
	}
}
