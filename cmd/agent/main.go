// Command agent simulates one user's device running the RSP client
// against a live rspd server (started with -world city and the same
// seed, so both sides share the entity directory).
//
//	rspd -world city -seed 1 &
//	agent -server http://localhost:8080 -seed 1 -user 3 -days 30
//
// The agent prints what it detected, inferred, and uploaded, then shows
// the transparency screen (§5). With -dump-metrics it also writes the
// client-side observability counters (retries, breaker transitions,
// spool depth) to stderr in Prometheus text format on exit.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"opinions/internal/obs"
	"opinions/internal/resilience"
	"opinions/internal/rspclient"
	"opinions/internal/trace"
	"opinions/internal/world"
)

func main() {
	var (
		server      = flag.String("server", "http://localhost:8080", "rspd base URL")
		seed        = flag.Int64("seed", 1, "world seed (must match rspd's)")
		users       = flag.Int("users", 400, "city users (must match rspd's)")
		userIdx     = flag.Int("user", 0, "which simulated user this device belongs to")
		days        = flag.Int("days", 30, "days of life to simulate")
		dumpMetrics = flag.Bool("dump-metrics", false, "write client metrics to stderr on exit")
	)
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, slog.LevelInfo)
	slog.SetDefault(logger)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	city := world.BuildCity(world.CityConfig{Seed: *seed, NumUsers: *users})
	if *userIdx < 0 || *userIdx >= len(city.Users) {
		fatal("user index out of range", "user", *userIdx, "users", len(city.Users))
	}
	u := city.Users[*userIdx]
	sim := trace.New(city, trace.Config{Seed: *seed + 1, Days: *days})

	agent := rspclient.NewAgent(rspclient.Config{
		DeviceID: fmt.Sprintf("device-%s", u.ID),
		Author:   string(u.ID),
		Seed:     *seed + int64(*userIdx),
		MixMax:   6 * time.Hour,
	}, &rspclient.HTTPTransport{
		BaseURL: *server,
		Breaker: &resilience.Breaker{},
	})
	if err := agent.Bootstrap(); err != nil {
		fatal("bootstrap", "err", err)
	}
	logger.Info("device up",
		"user", u.ID, "class", u.Class,
		"directory_entities", agent.Resolver().Len(), "model", agent.HasModel())

	var detected, reviews, pairs int
	for d := 0; d < sim.Days(); d++ {
		for _, dl := range sim.SimulateDate(d) {
			if dl.User != u.ID {
				continue
			}
			res, err := agent.ProcessDay(dl)
			if err != nil {
				fatal("processing day", "day", d, "err", err)
			}
			detected += res.Detected
			reviews += res.ReviewsPosted
			pairs += res.TrainingPairs
		}
		// Nightly inference + flush.
		night := sim.Start().AddDate(0, 0, d+1).Add(2 * time.Hour)
		agent.InferOpinions(night)
		if _, err := agent.FlushUploads(night); err != nil {
			logger.Warn("flush failed, will retry tomorrow", "err", err, "spooled", agent.SpooledUploads())
		}
	}
	sent, err := agent.FlushUploads(sim.Start().AddDate(0, 0, *days+1))
	if err != nil {
		logger.Warn("final flush", "err", err)
	}
	logger.Info("done",
		"detected", detected, "reviews_posted", reviews,
		"training_pairs", pairs, "final_flush_uploads", sent,
		"pending_uploads", agent.PendingUploads())

	fmt.Println("\nTransparency screen (§5): what this app believes about you")
	for _, v := range agent.Inferences() {
		if v.HasInference {
			fmt.Printf("  %-40s %2d records  inferred %.1f★\n", v.Entity, v.Records, v.Rating)
		} else {
			fmt.Printf("  %-40s %2d records  (no inference)\n", v.Entity, v.Records)
		}
	}

	if *dumpMetrics {
		fmt.Fprintln(os.Stderr, "\n# client metrics")
		_ = obs.Default.WritePrometheus(os.Stderr)
	}
}
