// Command agent simulates user devices running the RSP client against a
// live rspd server (started with -world city and the same seed, so both
// sides share the entity directory).
//
// Single-device mode — one user, transparency screen at the end:
//
//	rspd -world city -seed 1 &
//	agent -server http://localhost:8080 -seed 1 -user 3 -days 30
//
// Cohort mode — multiplex every user of one cluster shard through the
// horizon, K devices at a time, in bounded memory. The shard layout
// matches worldgen -shards / the cluster ring, so each agent process
// animates exactly the users one partition owns:
//
//	agent -server http://localhost:8080 -seed 1 -users 100000 \
//	      -shards 3 -shard 0 -cohort-size 64 -days 7 -max-heap-mb 512
//
// Both modes derive users and traces on demand from the seed; the
// population is never materialized. With -dump-metrics the client-side
// observability counters go to stderr in Prometheus text format on exit.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"time"

	"opinions/internal/obs"
	"opinions/internal/resilience"
	"opinions/internal/rspclient"
	"opinions/internal/stripe"
	"opinions/internal/trace"
	"opinions/internal/world"
)

func main() {
	var (
		server      = flag.String("server", "http://localhost:8080", "rspd base URL")
		seed        = flag.Int64("seed", 1, "world seed (must match rspd's)")
		users       = flag.Int("users", 400, "city users (must match rspd's)")
		userIdx     = flag.Int("user", -1, "single-device mode: which user this device belongs to")
		days        = flag.Int("days", 30, "days of life to simulate")
		shards      = flag.Int("shards", 0, "cohort mode: total cluster shards")
		shardIdx    = flag.Int("shard", 0, "cohort mode: which shard this process animates")
		cohortSize  = flag.Int("cohort-size", 64, "cohort mode: devices multiplexed at once")
		maxUsers    = flag.Int("max-users", 0, "cohort mode: stop after this many users (0 = whole shard)")
		maxHeapMB   = flag.Int("max-heap-mb", 0, "fail if live heap exceeds this budget (0 = no gate)")
		dumpMetrics = flag.Bool("dump-metrics", false, "write client metrics to stderr on exit")
	)
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, slog.LevelInfo)
	slog.SetDefault(logger)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	// Streaming city: entities materialized, users derived on demand.
	city := world.OpenCity(world.CityConfig{Seed: *seed, NumUsers: *users})
	sim := trace.New(city, trace.Config{Seed: *seed + 1, Days: *days})

	switch {
	case *shards > 0:
		if *shardIdx < 0 || *shardIdx >= *shards {
			fatal("shard index out of range", "shard", *shardIdx, "shards", *shards)
		}
		if err := runShard(logger, city, sim, *server, *seed, *shards, *shardIdx,
			*cohortSize, *maxUsers, *maxHeapMB); err != nil {
			fatal("shard run", "err", err)
		}
	case *userIdx >= 0:
		if *userIdx >= city.NumUsers() {
			fatal("user index out of range", "user", *userIdx, "users", city.NumUsers())
		}
		runSingle(logger, city, sim, *server, *seed, *userIdx, fatal)
	default:
		fatal("pass -user N for one device or -shards N -shard P for a cohort run")
	}

	if *dumpMetrics {
		fmt.Fprintln(os.Stderr, "\n# client metrics")
		_ = obs.Default.WritePrometheus(os.Stderr)
	}
}

// newDevice builds the client agent for one simulated user.
func newDevice(server string, seed int64, i int, u *world.User) *rspclient.Agent {
	return rspclient.NewAgent(rspclient.Config{
		DeviceID: fmt.Sprintf("device-%s", u.ID),
		Author:   string(u.ID),
		Seed:     seed + int64(i),
		MixMax:   6 * time.Hour,
	}, &rspclient.HTTPTransport{
		BaseURL: server,
		Breaker: &resilience.Breaker{},
	})
}

// checkHeap enforces the memory budget that makes the streaming claim
// falsifiable: a regression that materializes the population trips it.
func checkHeap(maxMB int) error {
	if maxMB <= 0 {
		return nil
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if heap := ms.HeapAlloc >> 20; heap > uint64(maxMB) {
		return fmt.Errorf("live heap %d MB exceeds budget %d MB", heap, maxMB)
	}
	return nil
}

// runSingle is the original one-device mode, now O(1) in the city size:
// the user's days regenerate in isolation instead of simulating the
// whole city and filtering.
func runSingle(logger *slog.Logger, city *world.City, sim *trace.Simulator,
	server string, seed int64, idx int, fatal func(string, ...any)) {
	u := city.UserAt(idx)
	agent := newDevice(server, seed, idx, u)
	if err := agent.Bootstrap(); err != nil {
		fatal("bootstrap", "err", err)
	}
	logger.Info("device up",
		"user", u.ID, "class", u.Class,
		"directory_entities", agent.Resolver().Len(), "model", agent.HasModel())

	var detected, reviews, pairs int
	for d := 0; d < sim.Days(); d++ {
		res, err := agent.ProcessDay(sim.UserDay(idx, d))
		if err != nil {
			fatal("processing day", "day", d, "err", err)
		}
		detected += res.Detected
		reviews += res.ReviewsPosted
		pairs += res.TrainingPairs
		// Nightly inference + flush.
		night := sim.Start().AddDate(0, 0, d+1).Add(2 * time.Hour)
		agent.InferOpinions(night)
		if _, err := agent.FlushUploads(night); err != nil {
			logger.Warn("flush failed, will retry tomorrow", "err", err, "spooled", agent.SpooledUploads())
		}
	}
	sent, err := agent.FlushUploads(sim.Start().AddDate(0, 0, sim.Days()+1))
	if err != nil {
		logger.Warn("final flush", "err", err)
	}
	logger.Info("done",
		"detected", detected, "reviews_posted", reviews,
		"training_pairs", pairs, "final_flush_uploads", sent,
		"pending_uploads", agent.PendingUploads())

	fmt.Println("\nTransparency screen (§5): what this app believes about you")
	for _, v := range agent.Inferences() {
		if v.HasInference {
			fmt.Printf("  %-40s %2d records  inferred %.1f★\n", v.Entity, v.Records, v.Rating)
		} else {
			fmt.Printf("  %-40s %2d records  (no inference)\n", v.Entity, v.Records)
		}
	}
}

// runShard animates every user of one cluster shard, cohortSize devices
// at a time. Each cohort derives its members' state, steps them through
// the horizon day by day (uploading nightly), then drops them before
// the next cohort starts — live memory is O(cohortSize), whatever the
// shard's population.
func runShard(logger *slog.Logger, city *world.City, sim *trace.Simulator,
	server string, seed int64, shards, shardIdx, cohortSize, maxUsers, maxHeapMB int) error {
	if cohortSize <= 0 {
		cohortSize = 64
	}
	var (
		batch      []int
		done       int
		detected   int
		reviews    int
		uploads    int
		cohortRuns int
	)
	flushBatch := func() error {
		if len(batch) == 0 {
			return nil
		}
		d, r, u, err := runCohort(sim, server, seed, batch)
		if err != nil {
			return err
		}
		cohortRuns++
		detected += d
		reviews += r
		uploads += u
		done += len(batch)
		batch = batch[:0]
		if err := checkHeap(maxHeapMB); err != nil {
			return err
		}
		logger.Info("cohort done", "cohorts", cohortRuns, "users_done", done,
			"detected", detected, "reviews_posted", reviews, "uploads", uploads)
		return nil
	}

	var loopErr error
	city.EachUser(func(i int, u *world.User) bool {
		if stripe.IndexN(string(u.ID), shards) != shardIdx {
			return true
		}
		if maxUsers > 0 && done+len(batch) >= maxUsers {
			return false
		}
		batch = append(batch, i)
		if len(batch) >= cohortSize {
			if loopErr = flushBatch(); loopErr != nil {
				return false
			}
		}
		return true
	})
	if loopErr != nil {
		return loopErr
	}
	if err := flushBatch(); err != nil {
		return err
	}
	logger.Info("shard done", "shard", shardIdx, "shards", shards,
		"users", done, "cohorts", cohortRuns,
		"detected", detected, "reviews_posted", reviews, "uploads", uploads)
	return nil
}

// runCohort multiplexes one cohort of devices through the horizon.
func runCohort(sim *trace.Simulator, server string, seed int64, indexes []int) (detected, reviews, uploads int, err error) {
	co := sim.Cohort(indexes)
	members := co.Users()
	agents := make(map[world.UserID]*rspclient.Agent, len(members))
	for k, u := range members {
		a := newDevice(server, seed, indexes[k], u)
		if err := a.Bootstrap(); err != nil {
			return 0, 0, 0, fmt.Errorf("bootstrap %s: %w", u.ID, err)
		}
		agents[u.ID] = a
	}
	var dayErr error
	co.Run(func(d int, _ time.Time, logs []trace.DayLog) bool {
		night := sim.Start().AddDate(0, 0, d+1).Add(2 * time.Hour)
		for _, lg := range logs {
			a := agents[lg.User]
			res, err := a.ProcessDay(lg)
			if err != nil {
				dayErr = fmt.Errorf("user %s day %d: %w", lg.User, d, err)
				return false
			}
			detected += res.Detected
			reviews += res.ReviewsPosted
			a.InferOpinions(night)
			if n, err := a.FlushUploads(night); err == nil {
				uploads += n
			}
		}
		return true
	})
	if dayErr != nil {
		return 0, 0, 0, dayErr
	}
	final := sim.Start().AddDate(0, 0, sim.Days()+1)
	for _, a := range agents {
		if n, err := a.FlushUploads(final); err == nil {
			uploads += n
		}
	}
	return detected, reviews, uploads, nil
}
