// Command experiments regenerates every table and figure in the paper
// plus the extension experiments E1–E6 (see DESIGN.md's per-experiment
// index).
//
//	experiments -run all                # everything, test scale
//	experiments -run table1 -scale full # one artifact at paper scale
//	experiments -run e3 -users 200 -days 120
//
// Crawl-backed artifacts (table1, fig1a, fig1b, fig1c) use the directory
// universe; the rest run a behavioural deployment.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"opinions/internal/experiments"
	"opinions/internal/world"
)

func main() {
	var (
		run   = flag.String("run", "all", "experiment id: all | table1 | fig1a | fig1b | fig1c | fig3 | e1 | e2 | e3 | e4 | e5 | e6 | e7 | e8 | e9")
		scale = flag.String("scale", "test", "crawl universe scale: test | full")
		seed  = flag.Int64("seed", 5, "seed for the deployment / universe")
		users = flag.Int("users", 150, "deployment users")
		days  = flag.Int("days", 90, "deployment days")
		plot  = flag.Bool("plot", false, "render figures as terminal plots")
		csv   = flag.String("csv", "", "also export figure series as CSV into this directory")
	)
	flag.Parse()

	ids := strings.Split(*run, ",")
	want := func(id string) bool {
		for _, x := range ids {
			if x == "all" || x == id {
				return true
			}
		}
		return false
	}

	crawlIDs := []string{"table1", "fig1a", "fig1b", "fig1c"}
	needCrawl := false
	for _, id := range crawlIDs {
		if want(id) {
			needCrawl = true
		}
	}
	deployIDs := []string{"fig3", "e1", "e2", "e3", "e6", "e7"}
	needDeploy := false
	for _, id := range deployIDs {
		if want(id) {
			needDeploy = true
		}
	}

	var univ *experiments.CrawlUniverse
	if needCrawl {
		cfg := world.TestDirectoryConfig()
		if *scale == "full" {
			cfg = world.DefaultDirectoryConfig()
		}
		cfg.Seed = *seed
		start := time.Now()
		var err error
		univ, err = experiments.BuildCrawlUniverse(cfg)
		if err != nil {
			log.Fatalf("experiments: building crawl universe: %v", err)
		}
		fmt.Fprintf(os.Stderr, "[crawl universe built and crawled in %v]\n", time.Since(start).Round(time.Millisecond))
	}

	var dep *experiments.Deployment
	if needDeploy {
		start := time.Now()
		var err error
		dep, err = experiments.RunDeployment(experiments.DeployConfig{
			Seed: *seed, Users: *users, Days: *days, KeyBits: 1024,
		})
		if err != nil {
			log.Fatalf("experiments: running deployment: %v", err)
		}
		fmt.Fprintf(os.Stderr, "[deployment of %d users × %d days simulated in %v]\n",
			*users, *days, time.Since(start).Round(time.Millisecond))
	}

	section := func(f func()) {
		f()
		fmt.Println()
	}
	if want("table1") {
		section(func() { experiments.RunTable1(univ).Render(os.Stdout) })
	}
	if want("fig1a") {
		section(func() {
			res := experiments.RunFig1a(univ)
			res.Render(os.Stdout)
			if *plot {
				experiments.PlotFig1a(res, os.Stdout)
			}
			if *csv != "" {
				if err := experiments.ExportCSV(*csv, "fig1a", res.VizSeries()); err != nil {
					log.Fatal(err)
				}
			}
		})
	}
	if want("fig1b") {
		section(func() {
			res := experiments.RunFig1b(univ)
			res.Render(os.Stdout)
			experiments.RenderAnecdotes(univ, os.Stdout)
			if *plot {
				experiments.PlotFig1b(res, os.Stdout)
			}
			if *csv != "" {
				if err := experiments.ExportCSV(*csv, "fig1b", res.VizSeries()); err != nil {
					log.Fatal(err)
				}
			}
		})
	}
	if want("fig1c") {
		section(func() { experiments.RunFig1c(univ).Render(os.Stdout) })
	}
	if want("fig3") {
		section(func() {
			res, err := experiments.RunFig3(dep)
			if err != nil {
				fmt.Printf("fig3: %v\n", err)
				return
			}
			res.Render(os.Stdout)
		})
	}
	if want("e1") {
		section(func() { experiments.RunE1(dep).Render(os.Stdout) })
	}
	if want("e2") {
		section(func() {
			res, err := experiments.RunE2(dep)
			if err != nil {
				fmt.Printf("e2: %v\n", err)
				return
			}
			res.Render(os.Stdout)
		})
	}
	if want("e3") {
		section(func() { experiments.RunE3(dep, []int{1, 5, 10}).Render(os.Stdout) })
	}
	if want("e4") {
		section(func() { experiments.RunE4(experiments.DefaultE4Config()).Render(os.Stdout) })
	}
	if want("e5") {
		section(func() {
			res := experiments.RunE5(experiments.DefaultE5Config())
			res.Render(os.Stdout)
			if *plot {
				experiments.PlotE5(res, os.Stdout)
			}
		})
	}
	if want("e6") {
		section(func() { experiments.RunE6(dep).Render(os.Stdout) })
	}
	if want("e7") {
		section(func() { experiments.RunE7(dep).Render(os.Stdout) })
	}
	if want("e8") {
		section(func() {
			res, err := experiments.RunE8(experiments.DefaultE8Config())
			if err != nil {
				fmt.Printf("e8: %v\n", err)
				return
			}
			res.Render(os.Stdout)
		})
	}
	if want("e9") {
		section(func() {
			res, err := experiments.RunE9(experiments.DefaultE9Config())
			if err != nil {
				fmt.Printf("e9: %v\n", err)
				return
			}
			res.Render(os.Stdout)
		})
	}
}
