// Fraudaudit: demonstrates §4.3's defense end to end. A deployment
// produces honest anonymous histories; three attackers try to
// manufacture recommendations (back-to-back calls, employee presence,
// patient mimicry); the typical-user sweep catches the cheap attacks
// and prices the expensive one.
//
//	go run ./examples/fraudaudit
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"opinions/internal/experiments"
	"opinions/internal/fraud"
	"opinions/internal/stats"
)

func main() {
	fmt.Println("simulating an honest deployment...")
	dep, err := experiments.RunDeployment(experiments.DeployConfig{
		Seed: 17, Users: 100, Days: 60, KeyBits: 512, SkipInference: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	_, _, hists := dep.Server.Stores()
	before := hists.Stats()
	fmt.Printf("honest store: %d histories, %d records\n\n", before.Histories, before.Records)

	// Attackers target the first restaurant with real traffic.
	target := ""
	for _, key := range hists.Entities() {
		if e := dep.Server.Engine().Entity(key); e != nil && e.Category == "restaurant" {
			target = key
			break
		}
	}
	if target == "" {
		log.Fatal("no restaurant with traffic")
	}
	fmt.Printf("attackers target %s\n", target)
	rng := stats.NewRNG(99)
	start := dep.Sim.Start().Add(48 * time.Hour)
	var injected []string
	for _, attack := range fraud.AllAttacks() {
		id, recs, err := fraud.InjectAttack(hists, attack, rng, target, []byte("attacker-"+attack.Name()), start)
		if err != nil {
			log.Fatal(err)
		}
		injected = append(injected, id)
		fmt.Printf("  %-10s injected %2d fake records (cost to attacker: %.1f hours)\n",
			attack.Name(), len(recs), attack.CostHours(recs))
	}

	fmt.Println("\nrunning the §4.3 typical-user sweep...")
	scanned, discarded, err := dep.Server.FraudSweep()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scanned %d histories, discarded %d\n", scanned, discarded)

	still := map[string]bool{}
	for _, h := range hists.ByEntity(target) {
		still[h.AnonID] = true
	}
	fmt.Println("\nverdicts:")
	for i, attack := range fraud.AllAttacks() {
		verdict := "CAUGHT"
		if still[injected[i]] {
			verdict = "survived (the paper concedes the patient mimic can — at real-world cost)"
		}
		fmt.Printf("  %-10s %s\n", attack.Name(), verdict)
	}
	after := hists.Stats()
	honestLost := before.Histories - (after.Histories - countSurvivors(still, injected))
	fmt.Printf("\nhonest collateral: %d of %d honest histories discarded\n", honestLost, before.Histories)
	os.Exit(0)
}

func countSurvivors(still map[string]bool, injected []string) int {
	n := 0
	for _, id := range injected {
		if still[id] {
			n++
		}
	}
	return n
}
