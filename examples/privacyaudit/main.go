// Privacyaudit: demonstrates the §4.2 privacy properties concretely.
// It shows (1) that a user's anonymous IDs are unlinkable across
// entities, (2) that the server store is update-only, (3) that stolen
// devices leak only the recent snapshot, and (4) that upload mixing
// defeats a timing adversary.
//
//	go run ./examples/privacyaudit
package main

import (
	"fmt"
	"time"

	"opinions/internal/experiments"
	"opinions/internal/history"
	"opinions/internal/interaction"
)

func main() {
	ru := []byte("this-device's-secret-Ru-never-leaves-the-phone")

	fmt.Println("1. Unlinkable anonymous IDs: hash(Ru, entity) per (user, entity) pair")
	for _, entity := range []string{"yelp/golden-wok", "yelp/dr-chen-dds", "yelp/ac-plumbing"} {
		fmt.Printf("   %-22s -> %s\n", entity, history.AnonID(ru, entity)[:32]+"…")
	}
	fmt.Println("   (the RSP cannot tell these belong to the same person)")

	fmt.Println("\n2. Update-only server store: histories can be appended, never fetched")
	store := history.NewServerStore()
	id := history.AnonID(ru, "yelp/golden-wok")
	_ = store.Append(id, "yelp/golden-wok", recordAt(time.Now()))
	fmt.Println("   ServerStore's API: Append, ByEntity (internal aggregation), Drop.")
	fmt.Println("   There is no Get(anonID): leaking Ru reveals nothing retrievable.")

	fmt.Println("\n3. Bounded device snapshot: a stolen phone leaks only recent history")
	cs := history.NewClientStore(7 * 24 * time.Hour)
	now := time.Now()
	cs.Add(recordAt(now.Add(-30 * 24 * time.Hour))) // a month ago
	cs.Add(recordAt(now.Add(-2 * 24 * time.Hour)))  // recent
	dropped := cs.Purge(now)
	fmt.Printf("   after purge: %d records dropped, %d retained (retention 7 days)\n", dropped, cs.Len())

	fmt.Println("\n4. Timing adversary vs upload mixing (experiment E4):")
	res := experiments.RunE4(experiments.DefaultE4Config())
	for _, row := range res.Rows {
		bar := ""
		for i := 0; i < int(row.Accuracy*40); i++ {
			bar += "#"
		}
		fmt.Printf("   mix window %-8v linkage accuracy %.2f %s\n", row.Window, row.Accuracy, bar)
	}
	fmt.Println("   asynchronous upload (§4.2) drives the adversary to chance.")
}

func recordAt(t time.Time) interaction.Record {
	return interaction.Record{
		Entity: "yelp/golden-wok", Kind: interaction.VisitKind,
		Start: t, Duration: 45 * time.Minute,
	}
}
