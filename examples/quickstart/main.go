// Quickstart: open a repository of opinions, feed it one device's life,
// and search with both explicit and inferred evidence.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"opinions/internal/core"
	"opinions/internal/rspclient"
	"opinions/internal/search"
	"opinions/internal/simclock"
	"opinions/internal/trace"
	"opinions/internal/world"
)

func main() {
	// 1. A synthetic city: entities with locations, phones, latent
	// quality; users with homes, workplaces, and personas.
	city := world.BuildCity(world.CityConfig{Seed: 42, NumUsers: 40})

	// 2. The repository: reviews + anonymous histories + inferred
	// opinions + token issuance behind one handle.
	repo, err := core.Open(core.Config{
		Catalog:   city.Entities,
		Clock:     simclock.NewSim(simclock.Epoch),
		KeyBits:   1024,
		TokenRate: 1 << 16,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. A classic explicit review — what today's RSPs collect.
	best := city.EntitiesByCategory("restaurant")[0]
	if err := repo.PostReview(best.Key(), "alice", 4.5, "wonderful noodles"); err != nil {
		log.Fatal(err)
	}

	// 4. One user's device runs the agent for a month: sensing, local
	// entity mapping, anonymous uploads.
	sim := trace.New(city, trace.Config{Seed: 43, Days: 30})
	agent, err := repo.NewDeviceAgent(rspclient.Config{
		DeviceID: "demo-device", Author: "u0", Seed: 7, MixMax: time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	u := city.Users[0]
	detected := 0
	for d := 0; d < sim.Days(); d++ {
		for _, dl := range sim.SimulateDate(d) {
			if dl.User != u.ID {
				continue
			}
			res, err := agent.ProcessDay(dl)
			if err != nil {
				log.Fatal(err)
			}
			detected += res.Detected
		}
	}
	if _, err := agent.FlushUploads(sim.Start().AddDate(0, 0, 31)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device detected %d interactions in 30 days; repository now holds:\n", detected)
	fmt.Printf("  %+v\n\n", repo.Stats())

	// 5. Search: results carry review counts AND interaction summaries.
	results := repo.Search(search.Query{Service: world.Yelp, Zip: "48104", Category: "restaurant", Limit: 5})
	fmt.Println("top restaurants:")
	for i, r := range results {
		fmt.Printf("  %d. %-28s score %.2f  reviews %d  inferred %d  users-observed %d\n",
			i+1, r.Entity.Name, r.Score, r.ReviewCount, r.InferredCount, usersObserved(r))
	}

	// 6. Transparency (§5): the user can always see what the app knows.
	fmt.Println("\ndevice transparency screen:")
	for _, v := range agent.Inferences() {
		fmt.Printf("  %-40s %d records\n", v.Entity, v.Records)
	}
}

func usersObserved(r search.Result) int {
	if r.Aggregate == nil {
		return 0
	}
	return r.Aggregate.Users
}
