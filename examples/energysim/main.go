// Energysim: the §5 "Location tracking" trade-off. Runs the three
// sensing policies over the same simulated lives and prints battery cost
// against visit-detection recall, plus a sweep over duty-cycling
// parameters.
//
//	go run ./examples/energysim
package main

import (
	"fmt"
	"os"
	"time"

	"opinions/internal/experiments"
	"opinions/internal/interaction"
	"opinions/internal/mapping"
	"opinions/internal/sensing"
	"opinions/internal/stats"
	"opinions/internal/trace"
	"opinions/internal/world"
)

func main() {
	fmt.Println("comparing sensing policies (experiment E5)...")
	experiments.RunE5(experiments.E5Config{Seed: 3, Users: 30, Days: 14}).Render(os.Stdout)

	fmt.Println("\nablation: duty-cycle resample interval vs recall")
	city := world.BuildCity(world.CityConfig{Seed: 3, NumUsers: 20})
	sim := trace.New(city, trace.Config{Seed: 4, Days: 10})
	resolver := mapping.NewResolver(city.Entities)
	detector := interaction.NewDetector(resolver, interaction.Config{})
	logs := sim.Run()

	fmt.Printf("%-12s %12s %10s\n", "resample", "mAh/day", "recall")
	for _, every := range []time.Duration{5 * time.Minute, 10 * time.Minute, 20 * time.Minute, 40 * time.Minute} {
		policy := sensing.DutyCycled{ResampleEvery: every}
		rng := stats.NewRNG(9)
		var energy sensing.Energy
		var tp, total int
		for _, dl := range logs {
			samples, e := policy.SampleDay(rng, dl.Segments)
			energy += e
			detected := detector.DetectVisits(samples)
			for _, v := range dl.Visits {
				if v.Depart.Sub(v.Arrive) < 10*time.Minute {
					continue
				}
				total++
				for _, rec := range detected {
					if rec.Entity == v.Entity && rec.Start.Before(v.Depart) && v.Arrive.Before(rec.Start.Add(rec.Duration)) {
						tp++
						break
					}
				}
			}
		}
		recall := 0.0
		if total > 0 {
			recall = float64(tp) / float64(total)
		}
		fmt.Printf("%-12v %12.1f %10.2f\n", every, float64(energy)/float64(len(logs)), recall)
	}
	fmt.Println("\ntakeaway: 10-minute resampling keeps recall while spending a fraction")
	fmt.Println("of always-on GPS; beyond ~20 minutes short visits start slipping through.")
}
