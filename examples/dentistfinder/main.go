// Dentistfinder: the paper's motivating scenario. Most dentists have a
// handful of reviews (Fig 1a); a user picking one needs more. This
// example runs a full simulated deployment, then searches for a dentist
// and shows what the redesigned RSP adds: inferred-opinion summaries and
// the comparative visualizations of Figure 3.
//
//	go run ./examples/dentistfinder
package main

import (
	"fmt"
	"log"
	"sort"

	"opinions/internal/experiments"
	"opinions/internal/rspclient"
	"opinions/internal/rspserver"
	"opinions/internal/search"
	"opinions/internal/world"
)

func main() {
	fmt.Println("simulating a 120-user, 75-day deployment (this takes a few seconds)...")
	dep, err := experiments.RunDeployment(experiments.DeployConfig{
		Seed: 11, Users: 120, Days: 75, KeyBits: 512,
	})
	if err != nil {
		log.Fatal(err)
	}

	results := dep.Server.Engine().Search(search.Query{
		Service: world.Yelp, Zip: "48104", Category: "dentist",
	})
	fmt.Printf("\n%d dentists found. With explicit reviews only, you would see:\n", len(results))
	withReviews := 0
	for _, r := range results {
		if r.ReviewCount > 0 {
			withReviews++
		}
	}
	fmt.Printf("  %d of %d have ANY review — the paucity the paper measures.\n", withReviews, len(results))

	fmt.Println("\nWith implicit inference, the same search shows:")
	sort.Slice(results, func(i, j int) bool { return results[i].Score > results[j].Score })
	shown := 0
	for _, r := range results {
		if r.Aggregate == nil {
			continue
		}
		fmt.Printf("  %-26s score %.2f | reviews %d | inferred opinions %d | observed patients %d (repeat frac %.2f)\n",
			r.Entity.Name, r.Score, r.ReviewCount, r.InferredCount, r.Aggregate.Users, r.Aggregate.RepeatFraction)
		shown++
		if shown == 5 {
			break
		}
	}

	fmt.Println("\nComparative visualizations (Figure 3) for three dentists:")
	fig3, err := experiments.RunFig3(dep)
	if err != nil {
		fmt.Printf("  (not enough dentist traffic at this scale: %v)\n", err)
	} else {
		fig3.Render(logWriter{})
	}

	// §5 incentives: the same search, personalized client-side by one
	// user's local history. The server never sees the profile.
	var anyAgent *rspclient.Agent
	for _, a := range dep.Agents {
		if len(a.Inferences()) >= 3 {
			anyAgent = a
			break
		}
	}
	if anyAgent == nil {
		return
	}
	global := dep.Server.Engine().Search(search.Query{
		Service: world.Yelp, Zip: "48104", Category: "restaurant", Limit: 8,
	})
	wire := make([]rspserver.WireResult, len(global))
	for i, r := range global {
		wire[i] = rspserver.FromResult(r)
	}
	personal := anyAgent.Personalize(wire)
	fmt.Println("\nPersonalized search (§5 incentives) — global vs this user's ranking:")
	for i := 0; i < 5 && i < len(wire); i++ {
		fmt.Printf("  %d. %-26s | %-26s\n", i+1, wire[i].Entity.Name, personal[i].Entity.Name)
	}
}

// logWriter adapts fmt printing to the example's stdout.
type logWriter struct{}

func (logWriter) Write(p []byte) (int, error) {
	fmt.Print(string(p))
	return len(p), nil
}
