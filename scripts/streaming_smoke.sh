#!/bin/sh
# streaming_smoke.sh — end-to-end streaming-world smoke at 100k users:
# emit cluster-aligned world shards with worldgen, boot an rspd serving
# the same 100k-user city, then run a cohort of device agents from one
# shard against it, uploading as they go. The whole pipeline runs under
# a hard heap budget (GOMEMLIMIT plus the agent's own MemStats gate), so
# any regression that materializes the population — in worldgen, the
# server, the simulator, or the agent — fails the smoke instead of
# silently costing O(N) memory. Run via verify.sh or directly.
set -eu

cd "$(dirname "$0")/.."

USERS=100000
SEED=1
PORT=18441
TMP=$(mktemp -d)

PIDS=""
cleanup() {
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

go build -o "$TMP/worldgen" ./cmd/worldgen
go build -o "$TMP/rspd" ./cmd/rspd
go build -o "$TMP/agent" ./cmd/agent

echo "==> worldgen: $USERS users into 3 cluster-aligned shards (streamed)"
GOMEMLIMIT=128MiB "$TMP/worldgen" -world city -users "$USERS" -seed "$SEED" \
    -shards 3 -out "$TMP/shards" 2>"$TMP/worldgen.log"
for p in 0 1 2; do
    f="$TMP/shards/shard-00$p.users.jsonl"
    [ -s "$f" ] || { echo "streaming_smoke: empty or missing $f" >&2; exit 1; }
done
total=$(cat "$TMP"/shards/shard-*.users.jsonl | wc -l)
if [ "$total" -ne "$USERS" ]; then
    echo "streaming_smoke: shards hold $total users, want $USERS" >&2
    exit 1
fi

echo "==> rspd serving the $USERS-user city (streaming open, 128MiB limit)"
GOMEMLIMIT=128MiB "$TMP/rspd" -addr "127.0.0.1:$PORT" -world city \
    -users "$USERS" -seed "$SEED" -keybits 1024 -quiet -rate-limit 0 \
    >"$TMP/rspd.log" 2>&1 &
PIDS="$PIDS $!"
i=0
until curl -sf "http://127.0.0.1:$PORT/readyz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "streaming_smoke: rspd never became ready" >&2
        cat "$TMP/rspd.log" >&2
        exit 1
    fi
    sleep 0.1
done

echo "==> agent cohort from shard 0 (48 users, 2 days, 96MB heap gate)"
GOMEMLIMIT=128MiB "$TMP/agent" -server "http://127.0.0.1:$PORT" \
    -seed "$SEED" -users "$USERS" -shards 3 -shard 0 \
    -cohort-size 24 -max-users 48 -days 2 -max-heap-mb 96 \
    2>"$TMP/agent.log"
grep -q "shard done" "$TMP/agent.log" || {
    echo "streaming_smoke: agent did not finish its shard" >&2
    cat "$TMP/agent.log" >&2
    exit 1
}

echo "streaming_smoke: OK"
