#!/bin/sh
# verify.sh — the full pre-merge gate: build, vet, tests, race tests,
# and gofmt cleanliness. Run via `make verify` or directly.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -shuffle=on ./..."
go test -shuffle=on ./...

echo "==> go test -race -shuffle=on ./..."
go test -race -shuffle=on ./...

echo "==> bench smoke (commit pipeline, 1 iteration)"
go test -run '^$' -bench=Commit -benchtime=1x ./internal/store/...

echo "==> loadgen smoke (selfhost, 2s, nonzero throughput, zero 5xx)"
go run ./cmd/loadgen -selfhost -duration 2s -workers 8 -scale 0.01 \
    -label smoke -assert-min-rps 50 -assert-no-5xx > /dev/null

echo "==> cluster smoke (3 rspd nodes behind a ring, loadgen -cluster)"
sh scripts/cluster_smoke.sh

echo "==> streaming smoke (100k-user world: shards -> rspd -> agent cohort, heap-gated)"
sh scripts/streaming_smoke.sh

echo "==> gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "verify: OK"
