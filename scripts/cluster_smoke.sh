#!/bin/sh
# cluster_smoke.sh — end-to-end 3-node cluster smoke: write a ring
# descriptor, boot three real rspd processes (one per partition, each
# filtering its slice of the same seeded directory world), wait for
# readiness, then drive the mixed loadgen workload through the ring
# with zero-5xx and minimum-throughput assertions. Run via verify.sh
# or directly.
set -eu

cd "$(dirname "$0")/.."

P0=18431
P1=18432
P2=18433
TMP=$(mktemp -d)
RING="$TMP/ring.json"

cat > "$RING" <<EOF
{
  "partitions": [
    {"nodes": ["http://127.0.0.1:$P0"]},
    {"nodes": ["http://127.0.0.1:$P1"]},
    {"nodes": ["http://127.0.0.1:$P2"]}
  ]
}
EOF

PIDS=""
cleanup() {
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

go build -o "$TMP/rspd" ./cmd/rspd
for p in 0 1 2; do
    eval "port=\$P$p"
    "$TMP/rspd" -addr "127.0.0.1:$port" -world directory -scale 0.01 -seed 7 \
        -keybits 1024 -quiet -rate-limit 0 \
        -cluster-config "$RING" -partition "$p" >"$TMP/rspd-$p.log" 2>&1 &
    PIDS="$PIDS $!"
done

# Wait for every node to answer /readyz.
for p in 0 1 2; do
    eval "port=\$P$p"
    i=0
    until curl -sf "http://127.0.0.1:$port/readyz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "cluster_smoke: node $p never became ready" >&2
            cat "$TMP/rspd-$p.log" >&2
            exit 1
        fi
        sleep 0.1
    done
done

echo "==> loadgen against the 3-node ring (2s, nonzero throughput, zero 5xx)"
go run ./cmd/loadgen -cluster "$RING" -duration 2s -workers 8 \
    -label cluster-smoke -assert-min-rps 50 -assert-no-5xx >/dev/null

echo "cluster_smoke: OK"
