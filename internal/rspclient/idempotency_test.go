package rspclient

// The duplicate-delivery regression test for exactly-once uploads: the
// server accepts an upload but the 202 acknowledgement is truncated in
// flight, so the client retries, exhausts its attempts, spools, restarts,
// and redelivers under a fresh token. Before the idempotency ledger this
// sequence double-counted the opinion (retry → ErrTokenSpent → spool →
// fresh-token redelivery → second apply); now every path must converge
// on exactly one server-side application.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"opinions/internal/anonymity"
	"opinions/internal/history"
	"opinions/internal/resilience"
	"opinions/internal/rspserver"
)

// truncatingUploadMiddleware runs the real handler for POST /api/upload
// and then, while enabled, forwards only half of the response body —
// the applied-but-unacknowledged failure mode.
type truncatingUploadMiddleware struct {
	next    http.Handler
	enabled atomic.Bool
	hits    atomic.Int64
}

func (m *truncatingUploadMiddleware) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !m.enabled.Load() || r.Method != http.MethodPost || r.URL.Path != "/api/upload" {
		m.next.ServeHTTP(w, r)
		return
	}
	m.hits.Add(1)
	rec := httptest.NewRecorder()
	m.next.ServeHTTP(rec, r)
	body := rec.Body.Bytes()
	for k, vs := range rec.Header() {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(rec.Code)
	_, _ = w.Write(body[:len(body)/2])
}

func TestUploadExactlyOnceAcrossRetrySpoolRestart(t *testing.T) {
	city, _ := testWorld(t)
	srv := testServerFor(t, city)
	mw := &truncatingUploadMiddleware{next: srv.Handler()}
	mw.enabled.Store(true)
	ts := httptest.NewServer(mw)
	defer ts.Close()

	retry := &resilience.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, Sleep: func(time.Duration) {}}
	spoolPath := filepath.Join(t.TempDir(), "spool.json")
	mkAgent := func() *Agent {
		// Same seed: the reborn agent derives the same Ru.
		return NewAgent(Config{
			DeviceID: "dev-once", Author: "uo", Seed: 5,
			MixMax: time.Minute, SpoolPath: spoolPath,
		}, &HTTPTransport{BaseURL: ts.URL, Retry: retry})
	}

	a1 := mkAgent()
	if err := a1.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	entity := city.Entities[0].Key()
	rating := 4.5
	t0 := time.Unix(1_600_000_000, 0)
	a1.mix.Submit(anonymity.Upload{
		AnonID: history.AnonID(a1.Ru(), entity),
		Entity: entity,
		Rating: &rating,
		Key:    anonymity.NewUploadKey(),
	}, t0)

	// Every delivery attempt is applied server-side but acknowledged
	// with a truncated body: the flush must fail and spool the upload.
	if _, err := a1.FlushUploads(t0.Add(2 * time.Minute)); err == nil {
		t.Fatal("flush with every acknowledgement truncated reported success")
	}
	if mw.hits.Load() < 2 {
		t.Fatalf("only %d upload attempts reached the server; retry did not fire", mw.hits.Load())
	}
	if a1.SpooledUploads() != 1 {
		t.Fatalf("%d uploads spooled, want 1", a1.SpooledUploads())
	}
	_, ops, _ := srv.Stores()
	if got := ops.Total(); got != 1 {
		t.Fatalf("opinions.Total() = %d after truncated-ack retries, want 1 (retry double-counted)", got)
	}

	// "Restart": a fresh agent process on the same spool file; the
	// truncation clears; the redelivery travels under a fresh blind
	// token but the original idempotency key.
	mw.enabled.Store(false)
	a2 := mkAgent()
	if err := a2.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	if a2.SpooledUploads() != 1 {
		t.Fatalf("restart recovered %d spooled uploads, want 1", a2.SpooledUploads())
	}
	sent, err := a2.FlushUploads(t0.Add(time.Hour))
	if err != nil {
		t.Fatalf("post-restart drain: %v", err)
	}
	if sent != 1 {
		t.Fatalf("drained %d, want 1", sent)
	}
	if got := ops.Total(); got != 1 {
		t.Fatalf("opinions.Total() = %d after spool redelivery, want 1 (redelivery double-counted)", got)
	}
	if got := ops.Count(entity); got != 1 {
		t.Fatalf("opinions.Count(%q) = %d, want 1", entity, got)
	}
}

// TestSpoolPersistsIdempotencyKey: the key is the upload's identity
// across deliveries, so the spool file must carry it through a restart.
func TestSpoolPersistsIdempotencyKey(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spool.json")
	s1, err := NewSpool(path)
	if err != nil {
		t.Fatal(err)
	}
	rating := 3.0
	key := anonymity.NewUploadKey()
	s1.Put(anonymity.Upload{AnonID: "anon", Entity: "yelp/e", Rating: &rating, Key: key})

	s2, err := NewSpool(path)
	if err != nil {
		t.Fatal(err)
	}
	got := s2.TakeAll()
	if len(got) != 1 {
		t.Fatalf("reloaded %d uploads, want 1", len(got))
	}
	if got[0].Key != key {
		t.Fatalf("reloaded key %q, want %q", got[0].Key, key)
	}
}

// TestNewUploadKeyUnique: keys are fresh randomness, never repeated —
// a repeat would make the server silently drop a genuine upload.
func TestNewUploadKeyUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		k := anonymity.NewUploadKey()
		if len(k) != 32 {
			t.Fatalf("key %q has length %d, want 32 hex chars", k, len(k))
		}
		if seen[k] {
			t.Fatalf("duplicate key %q after %d draws", k, i)
		}
		seen[k] = true
	}
}

// TestIsStatusMatchesStructurally: status detection must survive
// wrapping (retry/breaker layers) and must NOT fire on server messages
// that merely contain status-like text.
func TestIsStatusMatchesStructurally(t *testing.T) {
	base := &StatusError{Code: 404, Message: "no model trained yet"}
	wrapped := fmt.Errorf("attempt 3: %w", resilience.Permanent(base))
	if !isStatus(wrapped, 404) {
		t.Fatal("wrapped StatusError(404) not detected")
	}
	if isStatus(wrapped, 500) {
		t.Fatal("StatusError(404) matched 500")
	}
	spoofed := &StatusError{Code: 500, Message: `entity "returned 404" missing`}
	if isStatus(spoofed, 404) {
		t.Fatal("message text spoofed a 404 match")
	}
	if isStatus(errors.New("rspclient: server returned 404"), 404) {
		t.Fatal("plain text error matched as a status")
	}
}

// TestFetchModelNoModel: the 404 → ErrNoModel mapping works end to end
// over the wire through the retry layer.
func TestFetchModelNoModel(t *testing.T) {
	city, _ := testWorld(t)
	srv := testServerFor(t, city)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	tr := &HTTPTransport{BaseURL: ts.URL, Retry: &resilience.Policy{MaxAttempts: 1}}
	if _, err := tr.FetchModel(); err != ErrNoModel {
		t.Fatalf("FetchModel on untrained server: %v, want ErrNoModel", err)
	}
}

// TestEntityFromWireRejectsMalformedKeys: a directory key that does not
// carry the advertised service prefix must fail loudly, not silently
// mis-derive an entity ID.
func TestEntityFromWireRejectsMalformedKeys(t *testing.T) {
	good := rspserver.WireEntity{Key: "yelp/abc", Service: "yelp", Name: "ok"}
	e, err := entityFromWire(good)
	if err != nil || string(e.ID) != "abc" {
		t.Fatalf("good key: entity %+v, err %v", e, err)
	}
	for _, w := range []rspserver.WireEntity{
		{Key: "angieslist/abc", Service: "yelp"}, // wrong service
		{Key: "yelp/", Service: "yelp"},          // empty ID
		{Key: "yelp", Service: "yelp"},           // no separator
		{Key: "elp/abc", Service: "yelp"},        // prefix shorter than service
	} {
		if _, err := entityFromWire(w); err == nil {
			t.Errorf("key %q service %q: no error", w.Key, w.Service)
		}
	}
}

// TestUploadRequestCarriesKey: the idempotency key survives the JSON
// round trip the wire imposes.
func TestUploadRequestCarriesKey(t *testing.T) {
	rating := 2.0
	req := rspserver.UploadRequest{AnonID: "a", Entity: "e", Rating: &rating, Key: "k-123"}
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf, []byte(`"key":"k-123"`)) {
		t.Fatalf("wire form %s does not carry the key", buf)
	}
	var back rspserver.UploadRequest
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Key != "k-123" {
		t.Fatalf("key %q after round trip", back.Key)
	}
}
