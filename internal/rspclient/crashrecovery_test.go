package rspclient

// The crash-recovery soak: the RSP process dies mid-WAL-append — its
// active segment ends in a torn, never-acknowledged record — and a
// successor recovers from the same directory. The device agent, which
// spooled everything the dying process refused, drains against the
// successor. The bar is the same as the network-chaos soak: zero lost
// AND zero duplicated uploads, end to end. Durable acknowledgements
// (fsync before 2xx) rule out loss; the replayed idempotency ledger
// rules out double-counting of uploads the dying process applied but
// whose responses never arrived intact.

import (
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
	"time"

	"opinions/internal/faultinject"
	"opinions/internal/obs"
	"opinions/internal/resilience"
	"opinions/internal/rspserver"
	"opinions/internal/simclock"
	"opinions/internal/stats"
	"opinions/internal/store"
)

func TestCrashMidWALAppendRecoversExactly(t *testing.T) {
	city, sim := testWorld(t)
	walDir := t.TempDir()

	newServer := func(st *store.Store) *rspserver.Server {
		srv, err := rspserver.New(rspserver.Config{
			Catalog:   city.Entities,
			Clock:     simclock.NewSim(simclock.Epoch),
			KeyBits:   1024,
			TokenRate: 100000, TokenPeriod: 24 * time.Hour,
			Store: st,
		})
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}

	// Process #1: one of its per-stripe WAL segments tears halfway
	// through that file's 6th write and the store latches unavailable —
	// the moment of death. Four commit stripes keep each lane busy
	// enough to reach the fault ordinal while still exercising the
	// striped recovery path; auto-compaction is off so the crash lands
	// in a populated segment.
	crashOpen := func(path string) (store.File, error) {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, err
		}
		return faultinject.NewCrashFile(f, 6), nil
	}
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	st1, err := store.Open(store.Options{Dir: walDir, Stripes: 4, CompactEvery: -1, OpenFile: crashOpen, Logger: quiet})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := newServer(st1)
	// Applied-then-truncated responses force retries of uploads the
	// server already committed — the duplicates the replayed ledger
	// must absorb after the restart.
	inj := faultinject.New(faultinject.Config{Seed: 5, TruncateAppliedRate: 0.2})
	ts1 := httptest.NewServer(rspserver.Chain(srv1.Handler(),
		rspserver.WithRecovery(quiet), inj.Middleware))

	jitter := stats.NewRNG(9)
	retry := &resilience.Policy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		MaxDelay:    4 * time.Millisecond,
		Jitter:      jitter.Float64,
		Sleep:       func(time.Duration) {},
	}
	spoolPath := filepath.Join(t.TempDir(), "spool.json")
	mkAgent := func(baseURL string) *Agent {
		// Same seed: the reborn agent derives the same Ru, so its
		// anonymous IDs line up with uploads spooled before the crash.
		return NewAgent(Config{
			DeviceID: "dev-crash", Author: "ucr", Seed: 41,
			MixMax: time.Hour, SpoolPath: spoolPath,
		}, &HTTPTransport{BaseURL: baseURL, Retry: retry})
	}
	agent := mkAgent(ts1.URL)
	if err := agent.Bootstrap(); err != nil {
		t.Fatal(err)
	}

	u := city.Users[1]
	totalDetected := 0
	crashDay := -1
	for d := 0; d < sim.Days(); d++ {
		for _, dl := range sim.SimulateDate(d) {
			if dl.User != u.ID {
				continue
			}
			res, err := agent.ProcessDay(dl)
			totalDetected += res.Detected
			if err != nil {
				t.Logf("day %d degraded: %v", d, err)
			}
		}
		night := sim.Start().AddDate(0, 0, d+1).Add(2 * time.Hour)
		if _, err := agent.FlushUploads(night); err != nil {
			t.Logf("nightly flush %d degraded: %v", d, err)
		}
		if st1.Failed() {
			crashDay = d
			break
		}
	}
	if crashDay < 0 {
		t.Fatal("crash fault never fired; lower the crash write ordinal")
	}
	if totalDetected == 0 {
		t.Fatal("nothing detected before the crash")
	}
	ackedPreCrash := st1.Seq() // in-memory may exceed disk; bounded below by recovery

	// Unclean kill: listener gone, process state abandoned — no Close,
	// no compaction, no final snapshot. The device also reboots and
	// suspends its mixing queue to the durable spool.
	ts1.Close()
	moved := agent.Suspend()
	t.Logf("crash at day %d: seq %d in memory, %d uploads suspended to spool",
		crashDay, ackedPreCrash, moved)

	// Process #2 recovers from the directory: snapshot (none here) plus
	// WAL replay, truncating the torn tail the crash left.
	st2, err := store.Open(store.Options{Dir: walDir, Stripes: 4, CompactEvery: -1, Logger: quiet})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer st2.Close()
	recovered := st2.Histories().Stats().Records
	if st2.Seq() > ackedPreCrash {
		t.Fatalf("recovered seq %d exceeds pre-crash seq %d", st2.Seq(), ackedPreCrash)
	}
	t.Logf("recovered %d records at seq %d", recovered, st2.Seq())

	srv2 := newServer(st2)
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	agent = mkAgent(ts2.URL)
	if err := agent.Bootstrap(); err != nil {
		t.Fatalf("re-bootstrap after restart: %v", err)
	}
	for d := crashDay + 1; d < sim.Days(); d++ {
		for _, dl := range sim.SimulateDate(d) {
			if dl.User != u.ID {
				continue
			}
			res, err := agent.ProcessDay(dl)
			totalDetected += res.Detected
			if err != nil {
				t.Fatalf("post-restart day %d: %v", d, err)
			}
		}
		night := sim.Start().AddDate(0, 0, d+1).Add(2 * time.Hour)
		if _, err := agent.FlushUploads(night); err != nil {
			t.Fatalf("post-restart flush %d: %v", d, err)
		}
	}
	drainAt := sim.Start().AddDate(0, 0, sim.Days()+1)
	for i := 0; agent.PendingUploads() > 0; i++ {
		if i >= 50 {
			t.Fatalf("spool not drained after %d extra flushes: %d pending (%d spooled)",
				i, agent.PendingUploads(), agent.SpooledUploads())
		}
		if _, err := agent.FlushUploads(drainAt); err != nil {
			t.Fatalf("drain flush: %v", err)
		}
		drainAt = drainAt.Add(time.Hour)
	}

	// Zero lost, zero duplicated: what the WAL replay reconstructed plus
	// what the agent redelivered is exactly what the device detected.
	if got := st2.Histories().Stats().Records; got != totalDetected {
		verb, n := "lost", totalDetected-got
		if got > totalDetected {
			verb, n = "duplicated", got-totalDetected
		}
		t.Fatalf("server has %d records, agent detected %d — %d uploads %s across the crash",
			got, totalDetected, n, verb)
	}
	if agent.SpooledUploads() != 0 {
		t.Fatalf("%d uploads stuck in the spool", agent.SpooledUploads())
	}

	// Fold the recovered log, then check the wire-visible metrics the
	// acceptance bar names: nonzero appends and compactions on /metrics.
	if err := st2.Compact(); err != nil {
		t.Fatalf("post-recovery compaction: %v", err)
	}
	ms := httptest.NewServer(obs.Default.Handler())
	defer ms.Close()
	resp, err := http.Get(ms.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	// wal_appends_total is labeled by commit stripe; sum the series.
	appendRe := regexp.MustCompile(`(?m)^wal_appends_total\{stripe="[0-9]+"\} ([0-9]+)$`)
	var appends int
	for _, m := range appendRe.FindAllSubmatch(body, -1) {
		n, err := strconv.Atoi(string(m[1]))
		if err != nil {
			t.Fatal(err)
		}
		appends += n
	}
	if appends == 0 {
		t.Fatal("wal_appends_total is zero (or unexposed) after the soak")
	}
	compactRe := regexp.MustCompile(`(?m)^wal_compactions_total ([0-9]+)$`)
	m := compactRe.FindSubmatch(body)
	if m == nil {
		t.Fatal("/metrics does not expose wal_compactions_total")
	}
	if string(m[1]) == "0" {
		t.Fatal("wal_compactions_total is zero after the soak")
	}
}
