package rspclient

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"opinions/internal/blindsig"
	"opinions/internal/cluster"
	"opinions/internal/rspserver"
	"opinions/internal/simclock"
	"opinions/internal/stripe"
	"opinions/internal/world"
)

// TestTransportReprobesPreferredAfterCooldown: once the cooldown
// passes, a failed-over transport sends one probe back to the
// preferred target; a recovered preferred target regains the traffic,
// a still-dead one costs exactly one probe per cooldown.
func TestTransportReprobesPreferredAfterCooldown(t *testing.T) {
	var primaryHits, fallbackHits atomic.Int32
	primaryDown := atomic.Bool{}
	primaryDown.Store(true)
	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		primaryHits.Add(1)
		if primaryDown.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"down"}`))
			return
		}
		w.Write([]byte("{}"))
	}))
	defer primary.Close()
	fallback := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fallbackHits.Add(1)
		w.Write([]byte("{}"))
	}))
	defer fallback.Close()

	now := time.Unix(1000, 0)
	tr := &HTTPTransport{
		BaseURL: primary.URL, Fallbacks: []string{fallback.URL},
		Retry: fastRetry(4), ReprobeAfter: time.Minute,
		now: func() time.Time { return now },
	}

	// First call: primary 503s once, rotates, fallback serves.
	if err := tr.getJSON("/api/meta", nil); err != nil {
		t.Fatal(err)
	}
	if p := primaryHits.Load(); p != 1 {
		t.Fatalf("primary hits = %d, want 1", p)
	}

	// Inside the cooldown the transport stays on the fallback.
	if err := tr.getJSON("/api/meta", nil); err != nil {
		t.Fatal(err)
	}
	if p := primaryHits.Load(); p != 1 {
		t.Fatalf("primary probed inside the cooldown (%d hits)", p)
	}

	// Cooldown expires while the primary is still down: one probe, then
	// back to the fallback — and the cooldown restarts.
	now = now.Add(61 * time.Second)
	before := metricReprobes.Value()
	if err := tr.getJSON("/api/meta", nil); err != nil {
		t.Fatal(err)
	}
	if p := primaryHits.Load(); p != 2 {
		t.Fatalf("primary hits after failed re-probe = %d, want 2", p)
	}
	if metricReprobes.Value() != before+1 {
		t.Fatalf("reprobe metric = %d, want +1", metricReprobes.Value()-before)
	}
	if err := tr.getJSON("/api/meta", nil); err != nil {
		t.Fatal(err)
	}
	if p := primaryHits.Load(); p != 2 {
		t.Fatalf("primary probed again before the next cooldown (%d hits)", p)
	}

	// The primary recovers; the next post-cooldown probe wins it back
	// for good.
	primaryDown.Store(false)
	now = now.Add(61 * time.Second)
	fb := fallbackHits.Load()
	for i := 0; i < 3; i++ {
		if err := tr.getJSON("/api/meta", nil); err != nil {
			t.Fatal(err)
		}
	}
	if p := primaryHits.Load(); p != 5 {
		t.Fatalf("recovered primary served %d total hits, want 5 (probe + 2 sticky)", p)
	}
	if fallbackHits.Load() != fb {
		t.Fatal("fallback still serving after the preferred target recovered")
	}
}

func TestTransportReprobeDisabled(t *testing.T) {
	var primaryHits atomic.Int32
	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		primaryHits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"down"}`))
	}))
	defer primary.Close()
	fallback := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("{}"))
	}))
	defer fallback.Close()

	now := time.Unix(1000, 0)
	tr := &HTTPTransport{
		BaseURL: primary.URL, Fallbacks: []string{fallback.URL},
		Retry: fastRetry(4), ReprobeAfter: -1,
		now: func() time.Time { return now },
	}
	if err := tr.getJSON("/api/meta", nil); err != nil {
		t.Fatal(err)
	}
	now = now.Add(24 * time.Hour)
	if err := tr.getJSON("/api/meta", nil); err != nil {
		t.Fatal(err)
	}
	if p := primaryHits.Load(); p != 1 {
		t.Fatalf("primary hits = %d, want 1 (re-probe disabled)", p)
	}
}

// routerCluster stands up an n-partition cluster of real servers with
// the ownership gate and scatter-gather installed, sharing one issuer.
func routerCluster(t *testing.T, n int) (*Router, []*rspserver.Server, []*world.Entity) {
	t.Helper()
	clock := simclock.NewSim(simclock.Epoch)
	issuer, err := blindsig.NewIssuer(1024, 100000, 24*time.Hour, clock)
	if err != nil {
		t.Fatal(err)
	}
	catalog := make([]*world.Entity, 0, 24)
	for i := 0; i < 24; i++ {
		catalog = append(catalog, &world.Entity{
			ID: world.EntityID(fmt.Sprintf("r%02d", i)), Service: world.Yelp,
			Zip: "48104", Category: "cafe", Name: fmt.Sprintf("Cafe %02d", i),
			Quality: 1 + float64(i%5),
		})
	}

	handlers := make([]atomic.Pointer[http.Handler], n)
	parts := make([]cluster.Partition, n)
	for p := 0; p < n; p++ {
		p := p
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			(*handlers[p].Load()).ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		parts[p] = cluster.Partition{Nodes: []string{ts.URL}}
	}
	ring, err := cluster.New(cluster.Config{Partitions: parts})
	if err != nil {
		t.Fatal(err)
	}
	servers := make([]*rspserver.Server, n)
	for p := 0; p < n; p++ {
		srv, err := rspserver.New(rspserver.Config{
			Catalog: rspserver.FilterCatalog(ring, p, catalog),
			Clock:   clock, Issuer: issuer,
		})
		if err != nil {
			t.Fatal(err)
		}
		servers[p] = srv
		h := rspserver.Chain(srv.Handler(),
			rspserver.WithScatterGather(ring, p, rspserver.GatherOptions{Timeout: 500 * time.Millisecond}),
			rspserver.WithOwnershipGate(ring, p),
		)
		handlers[p].Store(&h)
	}
	return NewRouter(ring, RouterOptions{Retry: fastRetry(2)}), servers, catalog
}

func TestRouterRoutesWritesToOwners(t *testing.T) {
	router, servers, catalog := routerCluster(t, 3)
	for _, e := range catalog {
		if err := router.PostReview(e.Key(), "author-1", 4, "solid"); err != nil {
			t.Fatalf("PostReview(%s): %v", e.Key(), err)
		}
	}
	// Every review landed on its owner: per-node review counts must sum
	// to the catalog with no node holding a foreign entity's review.
	total := 0
	for p, srv := range servers {
		rev, _, _ := srv.Stores()
		n := rev.TotalReviews()
		total += n
		if n == 0 {
			t.Fatalf("partition %d holds no reviews; routing never reached it", p)
		}
	}
	if total != len(catalog) {
		t.Fatalf("cluster holds %d reviews, want %d", total, len(catalog))
	}
}

func TestRouterDirectoryIsClusterWide(t *testing.T) {
	router, _, catalog := routerCluster(t, 3)
	dir, err := router.FetchDirectory()
	if err != nil {
		t.Fatal(err)
	}
	if len(dir) != len(catalog) {
		t.Fatalf("directory has %d entities, want %d", len(dir), len(catalog))
	}
}

func TestRouterTokenKeyAndSignRouting(t *testing.T) {
	router, _, _ := routerCluster(t, 3)
	// The shared issuer means the key is identical wherever it is
	// fetched; SignToken routes by device hash (the full blind-sign +
	// redeem round trip across partitions runs in the cluster soak).
	key, err := router.FetchTokenKey()
	if err != nil {
		t.Fatal(err)
	}
	p0key, err := router.Partition(0).FetchTokenKey()
	if err != nil {
		t.Fatal(err)
	}
	p2key, err := router.Partition(2).FetchTokenKey()
	if err != nil {
		t.Fatal(err)
	}
	if key.N.Cmp(p0key.N) != 0 || key.N.Cmp(p2key.N) != 0 {
		t.Fatal("token keys differ across partitions; cluster must share one issuer")
	}
	if p := stripe.IndexN("dev-router", 3); p < 0 || p > 2 {
		t.Fatalf("device partition out of range: %d", p)
	}
}

func TestRouterRetriesMisrouteOnStaleRing(t *testing.T) {
	router, servers, catalog := routerCluster(t, 3)
	// A stale one-partition ring aims everything at partition 0; the
	// gate's 421 hint must redirect each call to its true owner.
	staleRing, err := cluster.New(cluster.Config{Partitions: []cluster.Partition{
		{Nodes: router.Ring().Nodes(0)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	stale := NewRouter(staleRing, RouterOptions{Retry: fastRetry(2)})
	before := metricMisrouteRetries.Value()
	for _, e := range catalog {
		if err := stale.PostReview(e.Key(), "author-2", 3, "ok"); err != nil {
			t.Fatalf("stale-ring PostReview(%s): %v", e.Key(), err)
		}
	}
	if metricMisrouteRetries.Value() == before {
		t.Fatal("no misroute retries counted despite a stale ring")
	}
	total := 0
	for _, srv := range servers {
		rev, _, _ := srv.Stores()
		total += rev.TotalReviews()
	}
	if total != len(catalog) {
		t.Fatalf("cluster holds %d reviews after stale-ring writes, want %d", total, len(catalog))
	}
}
