package rspclient

import (
	"opinions/internal/obs"
	"opinions/internal/resilience"
)

// Client-side instruments, shared by every agent/transport in the
// process and registered on the process-wide registry. Counters are
// additive across instances; the spool depth gauge is maintained by
// deltas for the same reason.
var (
	metricCalls = obs.Default.CounterVec("rsp_client_requests_total",
		"Transport calls by path and outcome (ok or error, after retries).",
		"path", "outcome")
	metricRetries = obs.Default.Counter("rsp_client_retries_total",
		"Individual retry attempts beyond the first try, across all transport calls.")
	metricBreaker = obs.Default.CounterVec("rsp_client_breaker_transitions_total",
		"Circuit-breaker state transitions, labeled from->to.",
		"from", "to")
	metricBreakerFastFail = obs.Default.Counter("rsp_client_breaker_fastfails_total",
		"Calls refused immediately because the circuit was open.")
	metricFailovers = obs.Default.Counter("rsp_client_failovers_total",
		"Transport target rotations after a connection failure or 503.")
	metricReprobes = obs.Default.Counter("rsp_client_reprobes_total",
		"Cooldown-driven probes of the preferred target after a failover.")
	metricMisrouteRetries = obs.Default.Counter("rsp_client_misroute_retries_total",
		"Calls retried against the owner named by a 421 misroute refusal.")
	metricSpoolDepth = obs.Default.Gauge("rsp_client_spool_depth",
		"Uploads currently spooled awaiting redelivery, summed across spools.")
	metricSpooled = obs.Default.Counter("rsp_client_spooled_total",
		"Uploads put into a spool after a failed delivery (or a suspend).")
	metricDrained = obs.Default.Counter("rsp_client_spool_drained_total",
		"Uploads taken back out of a spool for a delivery attempt.")
)

// InstrumentBreaker wires a breaker's state-change hook into the
// transition counter, chaining (not replacing) any hook already set.
// Call once per breaker, before traffic.
func InstrumentBreaker(b *resilience.Breaker) {
	prev := b.OnStateChange
	b.OnStateChange = func(from, to resilience.State) {
		metricBreaker.With(from.String(), to.String()).Inc()
		if prev != nil {
			prev(from, to)
		}
	}
}
