package rspclient

import (
	"time"

	"opinions/internal/inference"
	"opinions/internal/interaction"
	"opinions/internal/simclock"
	"opinions/internal/stats"
)

func newTestRNG() *stats.RNG { return stats.NewRNG(99) }

// syntheticPair fabricates one (features, rating) training pair where
// the rating genuinely depends on effort and exploration — the same
// behaviour model the inference package's own tests use.
func syntheticPair(rng *stats.RNG) ([]float64, float64) {
	opinion := rng.Float64() * 5
	nVisits := 1 + int(opinion*1.2) + rng.Intn(2)
	var recs []interaction.Record
	cur := simclock.Epoch
	for i := 0; i < nVisits; i++ {
		effort := 0.3 + opinion*0.5 + rng.Normal(0, 0.2)
		if effort < 0.1 {
			effort = 0.1
		}
		recs = append(recs, interaction.Record{
			Entity: "yelp/train", Kind: interaction.VisitKind,
			Start:        cur,
			Duration:     time.Duration(40+rng.Intn(40)) * time.Minute,
			DistanceFrom: effort * 1000,
		})
		cur = cur.Add(time.Duration(3+rng.Intn(10)) * 24 * time.Hour)
	}
	ev := inference.EntityEvidence{
		Records:           recs,
		AlternativesTried: int(opinion) + rng.Intn(2),
		ChoiceSetSize:     3 + rng.Intn(8),
	}
	y := opinion + rng.Normal(0, 0.3)
	if y < 0 {
		y = 0
	}
	if y > 5 {
		y = 5
	}
	return inference.ExtractFeatures(ev), y
}
