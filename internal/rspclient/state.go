package rspclient

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"opinions/internal/interaction"
)

// AgentState is the persisted device state: everything the app must keep
// across restarts. Ru is the critical piece — §4.2's anonymous IDs are
// hash(Ru, entity), so losing Ru would fragment the user's server-side
// histories into orphans; the snapshot and inference caches just avoid
// rework.
//
// This is exactly the data a stolen device exposes (§4.2's threat
// model): Ru plus the bounded recent snapshot. The design already
// accounts for both — Ru retrieves nothing from the update-only server,
// and the snapshot is retention-bounded.
type AgentState struct {
	Version  int                  `json:"version"`
	Ru       []byte               `json:"ru"`
	Inferred map[string]float64   `json:"inferred"`
	OptedOut []string             `json:"opted_out"`
	Records  []interaction.Record `json:"records"`
}

// stateVersion guards the persisted schema.
const stateVersion = 1

// SaveState writes the agent's durable state to w as JSON.
func (a *Agent) SaveState(w io.Writer) error {
	st := AgentState{
		Version:  stateVersion,
		Ru:       a.Ru(),
		Inferred: a.InferredOpinions(),
		Records:  a.store.Dump(),
	}
	for k := range a.optedOut {
		st.OptedOut = append(st.OptedOut, k)
	}
	sort.Strings(st.OptedOut)
	if err := json.NewEncoder(w).Encode(&st); err != nil {
		return fmt.Errorf("rspclient: saving state: %w", err)
	}
	return nil
}

// LoadState restores durable state saved by SaveState. It must be called
// after Bootstrap and replaces Ru, the snapshot, the inference cache,
// and the opt-out list.
func (a *Agent) LoadState(r io.Reader) error {
	var st AgentState
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("rspclient: loading state: %w", err)
	}
	if st.Version != stateVersion {
		return fmt.Errorf("rspclient: state version %d, want %d", st.Version, stateVersion)
	}
	if len(st.Ru) < 16 {
		return errors.New("rspclient: state has a malformed device secret")
	}
	a.ru = append([]byte(nil), st.Ru...)
	a.inferred = make(map[string]float64, len(st.Inferred))
	for k, v := range st.Inferred {
		a.inferred[k] = v
	}
	a.optedOut = make(map[string]bool, len(st.OptedOut))
	for _, k := range st.OptedOut {
		a.optedOut[k] = true
	}
	a.store.Restore(st.Records)
	return nil
}
