package rspclient

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"opinions/internal/anonymity"
	"opinions/internal/blindsig"
)

// Spool is the agent's durable holding area for uploads that cleared
// the mixing window but could not be delivered — the RSP was down,
// token issuance was out, the radio dropped. Spooled uploads re-drain
// on the next flush tick instead of being lost, which is what makes
// the repository's coverage claim survive real networks: §4.2's "upload
// all of its inferences asynchronously" silently assumes the uploads
// eventually arrive.
//
// With a backing path the spool persists across process restarts
// (written atomically on every mutation: temp file + rename). Tokens
// are never spooled — a fresh blind token is acquired at delivery time,
// so a spool file leaks nothing a captured device would not already
// reveal, and never wastes issued tokens. Idempotency keys ARE spooled:
// the key is the upload's identity across deliveries, and redelivering
// under a fresh token with the original key is exactly what lets the
// server absorb the duplicate when the first delivery was applied but
// its response never arrived.
type Spool struct {
	mu    sync.Mutex
	path  string
	items []anonymity.Upload
	// oldestSince is the wall-clock time the oldest current entry was
	// spooled — the spool-age signal. Zero when empty. Wall clock, not
	// sim time: age is an operational how-stale-is-durability metric,
	// not simulation state.
	oldestSince time.Time
}

// NewSpool returns an in-memory spool (path "") or a durable one backed
// by path. An existing well-formed file is loaded; a missing file is an
// empty spool; a corrupt file is an error.
func NewSpool(path string) (*Spool, error) {
	s := &Spool{path: path}
	if path == "" {
		return s, nil
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("rspclient: reading spool %s: %w", path, err)
	}
	if len(data) > 0 {
		if err := json.Unmarshal(data, &s.items); err != nil {
			return nil, fmt.Errorf("rspclient: corrupt spool %s: %w", path, err)
		}
	}
	// Spooled entries must never carry tokens (see type comment); clear
	// any a hand-edited file might hold.
	for i := range s.items {
		s.items[i].Token = blindsig.Token{}
	}
	if len(s.items) > 0 {
		s.oldestSince = time.Now()
		metricSpoolDepth.Add(int64(len(s.items)))
	}
	return s, nil
}

// Put appends one upload and persists.
func (s *Spool) Put(u anonymity.Upload) {
	s.PutAll([]anonymity.Upload{u})
}

// PutAll appends uploads and persists. Tokens are stripped; delivery
// always acquires fresh ones.
func (s *Spool) PutAll(us []anonymity.Upload) {
	if len(us) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.items) == 0 {
		s.oldestSince = time.Now()
	}
	for _, u := range us {
		u.Token = blindsig.Token{}
		s.items = append(s.items, u)
	}
	metricSpooled.Add(uint64(len(us)))
	metricSpoolDepth.Add(int64(len(us)))
	s.persistLocked()
}

// TakeAll removes and returns everything spooled, persisting the now
// empty state. The caller owns delivery; anything it cannot deliver it
// must Put back.
func (s *Spool) TakeAll() []anonymity.Upload {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.items
	s.items = nil
	s.oldestSince = time.Time{}
	metricDrained.Add(uint64(len(out)))
	metricSpoolDepth.Add(int64(-len(out)))
	s.persistLocked()
	return out
}

// OldestAge reports how long the oldest spooled upload has been
// waiting for redelivery (zero when the spool is empty). This is the
// per-instance spool-age signal; the process-wide depth rides the
// rsp_client_spool_depth gauge.
func (s *Spool) OldestAge() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.items) == 0 || s.oldestSince.IsZero() {
		return 0
	}
	return time.Since(s.oldestSince)
}

// Len reports the number of spooled uploads.
func (s *Spool) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// persistLocked writes the spool atomically. Callers hold s.mu.
// Persistence is best-effort: a write failure (disk full, read-only
// FS) degrades to in-memory durability rather than crashing the agent.
func (s *Spool) persistLocked() {
	if s.path == "" {
		return
	}
	data, err := json.Marshal(s.items)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(s.path), ".spool-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, s.path); err != nil {
		os.Remove(name)
	}
}
