package rspclient

import (
	"math/big"
	"os"
	"path/filepath"
	"testing"
	"time"

	"opinions/internal/anonymity"
	"opinions/internal/blindsig"
	"opinions/internal/interaction"
)

func sampleUploads() []anonymity.Upload {
	rating := 4.5
	return []anonymity.Upload{
		{AnonID: "anon-1", Entity: "yelp/a", Record: &interaction.Record{
			Entity: "yelp/a", Kind: interaction.VisitKind,
			Start: time.Date(2016, 3, 1, 12, 0, 0, 0, time.UTC), Duration: 40 * time.Minute,
		}},
		{AnonID: "anon-2", Entity: "yelp/b", Rating: &rating},
	}
}

func TestSpoolInMemoryPutTake(t *testing.T) {
	s, err := NewSpool("")
	if err != nil {
		t.Fatal(err)
	}
	s.PutAll(sampleUploads())
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	got := s.TakeAll()
	if len(got) != 2 || s.Len() != 0 {
		t.Fatalf("take returned %d, left %d", len(got), s.Len())
	}
	if got[0].AnonID != "anon-1" || got[1].Entity != "yelp/b" {
		t.Fatalf("order not preserved: %+v", got)
	}
	if got[1].Rating == nil || *got[1].Rating != 4.5 {
		t.Fatal("rating lost")
	}
}

func TestSpoolSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spool.json")
	s, err := NewSpool(path)
	if err != nil {
		t.Fatal(err)
	}
	s.PutAll(sampleUploads())

	// A second spool on the same path — the app restarting — sees the
	// undelivered uploads.
	s2, err := NewSpool(path)
	if err != nil {
		t.Fatal(err)
	}
	got := s2.TakeAll()
	if len(got) != 2 {
		t.Fatalf("restart recovered %d uploads, want 2", len(got))
	}
	if got[0].Record == nil || got[0].Record.Kind != interaction.VisitKind {
		t.Fatalf("record did not round-trip: %+v", got[0].Record)
	}
	if got[1].Rating == nil || *got[1].Rating != 4.5 {
		t.Fatal("rating did not round-trip")
	}

	// TakeAll persisted the empty state: a third open sees nothing.
	s3, err := NewSpool(path)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Len() != 0 {
		t.Fatalf("drained spool reloaded %d items", s3.Len())
	}
}

func TestSpoolStripsTokens(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spool.json")
	s, err := NewSpool(path)
	if err != nil {
		t.Fatal(err)
	}
	u := sampleUploads()[0]
	u.Token = blindsig.Token{Msg: []byte("secret"), Sig: big.NewInt(42)}
	s.Put(u)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) == "" {
		t.Fatal("nothing persisted")
	}
	s2, err := NewSpool(path)
	if err != nil {
		t.Fatal(err)
	}
	got := s2.TakeAll()
	if len(got) != 1 {
		t.Fatal("lost the upload")
	}
	if got[0].Token.Msg != nil || got[0].Token.Sig != nil {
		t.Fatalf("token leaked into the spool: %+v", got[0].Token)
	}
}

func TestSpoolMissingFileIsEmpty(t *testing.T) {
	s, err := NewSpool(filepath.Join(t.TempDir(), "never-written.json"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatal("phantom items")
	}
}

func TestSpoolCorruptFileErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spool.json")
	if err := os.WriteFile(path, []byte(`{"not":"a list`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSpool(path); err == nil {
		t.Fatal("corrupt spool accepted")
	}
	// The agent constructor degrades to an empty spool on the same
	// path instead of failing.
	a := NewAgent(Config{DeviceID: "d", Seed: 1, SpoolPath: path}, &HTTPTransport{})
	if a.SpooledUploads() != 0 {
		t.Fatal("agent inherited corrupt state")
	}
}
