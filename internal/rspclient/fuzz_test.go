package rspclient

import (
	"strings"
	"testing"

	"opinions/internal/rspserver"
	"opinions/internal/world"
)

// FuzzLoadState: arbitrary persisted-state bytes must never panic the
// agent and never install a weak device secret.
func FuzzLoadState(f *testing.F) {
	f.Add(`{"version":1,"ru":"QUFBQUFBQUFBQUFBQUFBQUFBQUFBQUFBQUFBQUFBQUE=","inferred":{"yelp/a":4.5}}`)
	f.Add(`{}`)
	f.Add(`{"version":1,"ru":"AA=="}`)
	f.Add(`garbage`)
	srv, err := rspserver.New(rspserver.Config{
		Catalog: []*world.Entity{{ID: "a", Service: world.Yelp, Zip: "z", Category: "c"}},
		KeyBits: 512,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data string) {
		a := NewAgent(Config{DeviceID: "d", Seed: 1}, &LocalTransport{Server: srv})
		if err := a.Bootstrap(); err != nil {
			t.Fatal(err)
		}
		if err := a.LoadState(strings.NewReader(data)); err != nil {
			return
		}
		if len(a.Ru()) < 16 {
			t.Fatal("loaded a weak device secret")
		}
	})
}
