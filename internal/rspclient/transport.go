package rspclient

import (
	"bytes"
	"context"
	"crypto/rsa"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/big"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"opinions/internal/attest"
	"opinions/internal/geo"
	"opinions/internal/inference"
	"opinions/internal/obs"
	"opinions/internal/resilience"
	"opinions/internal/rspserver"
	"opinions/internal/simclock"
	"opinions/internal/world"
)

// Transport is the client's view of the RSP service. Two implementations
// exist: HTTPTransport speaks the real wire protocol; LocalTransport
// binds directly to an in-process server for large-scale experiments.
type Transport interface {
	// FetchDirectory downloads the on-device POI directory.
	FetchDirectory() ([]*world.Entity, error)
	// FetchModel downloads the current inference model set; ErrNoModel
	// when the server has not trained one yet.
	FetchModel() (*inference.ModelSet, error)
	// FetchTokenKey downloads the issuer's public key.
	FetchTokenKey() (*rsa.PublicKey, error)
	// SignToken asks the issuer to blind-sign for this device.
	SignToken(device string, blinded *big.Int) (*big.Int, error)
	// Upload delivers one anonymous upload.
	Upload(req rspserver.UploadRequest) error
	// PostReview posts an explicit review under the user's public
	// pseudonym.
	PostReview(entity, author string, rating float64, text string) error
	// SubmitTraining volunteers one (features, rating) pair, optionally
	// labelled with the entity's category.
	SubmitTraining(features []float64, rating float64, category string) error
}

// ErrNoModel indicates the server has no trained model yet.
var ErrNoModel = errors.New("rspclient: server has no model")

// DefaultRetry is the retry schedule HTTPTransport uses when none is
// configured: 4 attempts, 100ms jittered exponential backoff, 10s per
// attempt. A phone on a flaky mobile link recovers from transient 5xx,
// resets, and garbled bodies without user-visible failure.
var DefaultRetry = resilience.Policy{
	MaxAttempts:       4,
	BaseDelay:         100 * time.Millisecond,
	MaxDelay:          5 * time.Second,
	PerAttemptTimeout: 10 * time.Second,
}

// defaultHTTPClient bounds whole-call time even when the caller supplied
// no client — http.DefaultClient's zero timeout would hang forever on a
// stalled connection.
var defaultHTTPClient = &http.Client{Timeout: 30 * time.Second}

// HTTPTransport talks to an RSP over its HTTP API, retrying transient
// failures (network errors, 5xx, 429, malformed bodies) under a
// resilience.Policy. 4xx responses are permanent and surface
// immediately.
type HTTPTransport struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// Client defaults to a client with a 30s overall timeout.
	Client *http.Client
	// Retry overrides DefaultRetry. Set &resilience.Policy{MaxAttempts: 1}
	// for single-shot behaviour.
	Retry *resilience.Policy
	// Breaker, when set, fails calls fast while the RSP is down instead
	// of burning the device's radio on retries.
	Breaker *resilience.Breaker
	// Fallbacks lists alternate server roots — the followers of a
	// replicated deployment. When the current target refuses the
	// connection or answers 503, the transport rotates to the next root
	// in [BaseURL, Fallbacks...] and the retry policy's next attempt
	// lands there. The choice is sticky: once a target works, every
	// later call starts on it, so after a failover the client stays on
	// the promoted follower instead of hammering the dead leader.
	Fallbacks []string
	// ReprobeAfter bounds the stickiness: once this long has passed
	// since the last rotation, the next call probes BaseURL again, so a
	// recovered (or restarted) preferred target regains traffic instead
	// of idling forever while the fallback carries the load. If the
	// probe fails the normal failover path rotates away again and the
	// cooldown restarts. Zero means DefaultReprobeAfter; negative
	// disables re-probing.
	ReprobeAfter time.Duration

	// target indexes the sticky entry of [BaseURL, Fallbacks...].
	target atomic.Int32
	// rotatedAt is the wall-clock nanosecond of the last rotation (or
	// abandoned re-probe); the re-probe cooldown counts from here.
	rotatedAt atomic.Int64
	// now is stubbed by tests; nil means time.Now.
	now func() time.Time

	// obsOnce instruments the breaker's state-change hook exactly once,
	// lazily, so literal construction keeps working.
	obsOnce sync.Once
}

// DefaultReprobeAfter is how long a transport stays on a fallback
// before probing the preferred target again.
const DefaultReprobeAfter = 15 * time.Second

func (t *HTTPTransport) timeNow() time.Time {
	if t.now != nil {
		return t.now()
	}
	return time.Now()
}

func (t *HTTPTransport) reprobeAfter() time.Duration {
	if t.ReprobeAfter != 0 {
		return t.ReprobeAfter
	}
	return DefaultReprobeAfter
}

// currentTarget returns the sticky base URL and its ring index. When
// the transport has sat on a fallback for the re-probe cooldown it
// snaps back to the preferred target first — one call pays the probe;
// if the preferred target is still dead that call's failover rotates
// away again.
func (t *HTTPTransport) currentTarget() (int, string) {
	n := 1 + len(t.Fallbacks)
	i := int(t.target.Load()) % n
	if cooldown := t.reprobeAfter(); i != 0 && cooldown > 0 {
		if last := t.rotatedAt.Load(); t.timeNow().Sub(time.Unix(0, last)) >= cooldown {
			// The CAS elects one winner among concurrent callers; the
			// stamp below keeps losers (and the winner's own retries)
			// from re-electing until the next cooldown expires.
			t.rotatedAt.CompareAndSwap(last, t.timeNow().UnixNano())
			if t.target.CompareAndSwap(int32(i), 0) {
				metricReprobes.Inc()
				i = 0
			} else {
				i = int(t.target.Load()) % n
			}
		}
	}
	if i == 0 {
		return i, t.BaseURL
	}
	return i, t.Fallbacks[i-1]
}

// failover rotates the sticky target past idx. The compare-and-swap
// makes concurrent failures of the same target advance it once — two
// goroutines seeing the dead leader must not leapfrog the follower.
func (t *HTTPTransport) failover(idx int) {
	n := 1 + len(t.Fallbacks)
	if n < 2 {
		return
	}
	if t.target.CompareAndSwap(int32(idx), int32((idx+1)%n)) {
		t.rotatedAt.Store(t.timeNow().UnixNano())
		metricFailovers.Inc()
	}
}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return defaultHTTPClient
}

func (t *HTTPTransport) retry() resilience.Policy {
	if t.Retry != nil {
		return *t.Retry
	}
	return DefaultRetry
}

// drainClose consumes what remains of a response body before closing so
// the connection returns to the keep-alive pool, on success and error
// paths alike.
func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, 1<<20))
	_ = body.Close()
}

// transientStatus reports whether a response status is worth retrying.
func transientStatus(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// roundTrip performs one HTTP exchange with retries: GET when body is
// nil, POST otherwise. The request body is marshalled once and replayed
// per attempt; the response decodes into out when non-nil.
//
// Every logical call gets one fresh trace ID shared by all its retry
// attempts, sent as X-Trace-Id, with the 0-based attempt number on
// X-Retry-Attempt — the server sees a retry storm as repeats of one
// trace, not as unrelated traffic. The ID is minted here, at delivery
// time: it identifies this HTTP exchange only and never rides an
// upload through the mix or the spool (see DESIGN.md, Observability).
func (t *HTTPTransport) roundTrip(method, path string, body []byte, out any) error {
	t.obsOnce.Do(func() {
		if t.Breaker != nil {
			InstrumentBreaker(t.Breaker)
		}
	})
	trace := obs.NewTraceID()
	attempt := 0
	op := func(ctx context.Context) error {
		var reader io.Reader
		if body != nil {
			reader = bytes.NewReader(body)
		}
		idx, base := t.currentTarget()
		req, err := http.NewRequestWithContext(ctx, method, base+path, reader)
		if err != nil {
			return resilience.Permanent(err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		req.Header.Set(obs.TraceHeader, string(trace))
		req.Header.Set(obs.RetryHeader, strconv.Itoa(attempt))
		if attempt++; attempt > 1 {
			metricRetries.Inc()
		}
		resp, err := t.client().Do(req)
		if err != nil {
			// A connection-level failure — refused, reset, timed out —
			// is what a dead leader looks like; aim the next attempt at
			// the fallback.
			t.failover(idx)
			return err
		}
		defer drainClose(resp.Body)
		if resp.StatusCode >= 300 {
			err := httpError(resp)
			if resp.StatusCode == http.StatusServiceUnavailable {
				// The node is up but refusing service: a latched store,
				// a replication-lagged leader, or an unpromoted
				// follower's gate. Rotate; if the whole ring says 503
				// the retries just walk it until somebody takes writes.
				t.failover(idx)
			}
			if !transientStatus(resp.StatusCode) {
				return resilience.Permanent(err)
			}
			return err
		}
		// The API answers every 2xx with a JSON body. Parse it even when
		// the caller ignores it: a body that does not parse means the
		// response was truncated or garbled in flight, and treating it
		// as success would count an undelivered upload as delivered.
		target := out
		if target == nil {
			var sink json.RawMessage
			target = &sink
		}
		if err := json.NewDecoder(resp.Body).Decode(target); err != nil {
			// A truncated or garbled body is a transport fault: retry
			// it like any other flaky-network symptom.
			return fmt.Errorf("rspclient: decoding %s: %w", path, err)
		}
		return nil
	}
	if t.Breaker != nil {
		guarded := op
		op = func(ctx context.Context) error {
			if err := t.Breaker.Allow(); err != nil {
				// An open circuit fails fast; retrying inside the
				// cooldown is pointless.
				metricBreakerFastFail.Inc()
				return resilience.Permanent(err)
			}
			err := guarded(ctx)
			t.Breaker.Observe(err)
			return err
		}
	}
	err := t.retry().Do(context.Background(), op)
	outcome := "ok"
	if err != nil {
		outcome = "error"
	}
	metricCalls.With(path, outcome).Inc()
	return err
}

func (t *HTTPTransport) getJSON(path string, out any) error {
	return t.roundTrip(http.MethodGet, path, nil, out)
}

func (t *HTTPTransport) postJSON(path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return t.roundTrip(http.MethodPost, path, buf, out)
}

// StatusError is a non-2xx response from the server, carrying the
// status code structurally so callers can match it with errors.As even
// through resilience wrappers — never by sniffing digits out of the
// message, which a server error string like `entity "returned 404"
// missing` would spoof.
type StatusError struct {
	// Code is the HTTP status code.
	Code int
	// Message is the server's JSON error body, when it sent one.
	Message string
	// PartitionNode is the owning node a clustered server named in
	// X-Partition-Node on a 421 misroute; the Router retries there.
	PartitionNode string
}

func (e *StatusError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("rspclient: server returned %d: %s", e.Code, e.Message)
	}
	return fmt.Sprintf("rspclient: server returned %d", e.Code)
}

func httpError(resp *http.Response) error {
	var e rspserver.ErrorResponse
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	se := &StatusError{
		Code:          resp.StatusCode,
		PartitionNode: resp.Header.Get(rspserver.PartitionNodeHeader),
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		se.Message = e.Error
	}
	return se
}

// FetchDirectory implements Transport.
func (t *HTTPTransport) FetchDirectory() ([]*world.Entity, error) {
	var wire []rspserver.WireEntity
	if err := t.getJSON("/api/directory", &wire); err != nil {
		return nil, err
	}
	out := make([]*world.Entity, len(wire))
	for i, w := range wire {
		e, err := entityFromWire(w)
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}

// entityFromWire rebuilds the client-side directory entry. The latent
// quality is not on the wire; the zero value is correct — clients never
// use it. A key that does not carry the advertised "service/" prefix is
// a malformed directory entry and fails loudly: deriving an ID from the
// wrong offset would silently fragment the client's histories.
func entityFromWire(w rspserver.WireEntity) (*world.Entity, error) {
	id, ok := strings.CutPrefix(w.Key, w.Service+"/")
	if !ok || id == "" {
		return nil, fmt.Errorf("rspclient: directory key %q does not match service %q", w.Key, w.Service)
	}
	return &world.Entity{
		ID:         world.EntityID(id),
		Service:    world.ServiceKind(w.Service),
		Category:   w.Category,
		Zip:        w.Zip,
		Name:       w.Name,
		Loc:        geo.Point{Lat: w.Lat, Lon: w.Lon},
		Phone:      w.Phone,
		PriceLevel: w.PriceLevel,
	}, nil
}

// FetchModel implements Transport.
func (t *HTTPTransport) FetchModel() (*inference.ModelSet, error) {
	var m inference.ModelSet
	err := t.getJSON("/api/model", &m)
	if err != nil {
		if isStatus(err, http.StatusNotFound) {
			return nil, ErrNoModel
		}
		return nil, err
	}
	return &m, nil
}

// isStatus reports whether err is (or wraps, at any depth — breaker and
// retry wrappers included) a StatusError with the given code.
func isStatus(err error, code int) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == code
}

// FetchTokenKey implements Transport.
func (t *HTTPTransport) FetchTokenKey() (*rsa.PublicKey, error) {
	var kr rspserver.TokenKeyResponse
	if err := t.getJSON("/api/token/key", &kr); err != nil {
		return nil, err
	}
	n, ok := new(big.Int).SetString(kr.N, 10)
	if !ok {
		return nil, errors.New("rspclient: bad modulus from server")
	}
	return &rsa.PublicKey{N: n, E: kr.E}, nil
}

// SignToken implements Transport.
func (t *HTTPTransport) SignToken(device string, blinded *big.Int) (*big.Int, error) {
	var out rspserver.TokenSignResponse
	err := t.postJSON("/api/token", rspserver.TokenSignRequest{Device: device, Blinded: blinded.String()}, &out)
	if err != nil {
		return nil, err
	}
	sig, ok := new(big.Int).SetString(out.BlindSig, 10)
	if !ok {
		return nil, errors.New("rspclient: bad blind signature from server")
	}
	return sig, nil
}

// Upload implements Transport.
func (t *HTTPTransport) Upload(req rspserver.UploadRequest) error {
	return t.postJSON("/api/upload", req, nil)
}

// PostReview implements Transport.
func (t *HTTPTransport) PostReview(entity, author string, rating float64, text string) error {
	return t.postJSON("/api/reviews", rspserver.PostReviewRequest{
		Entity: entity, Author: author, Rating: rating, Text: text,
	}, nil)
}

// SubmitTraining implements Transport.
func (t *HTTPTransport) SubmitTraining(features []float64, rating float64, category string) error {
	return t.postJSON("/api/train", rspserver.TrainRequest{Features: features, Rating: rating, Category: category}, nil)
}

// Attest runs the §4.3 remote-attestation round trip for a device:
// fetch a nonce, produce the quote over the build the device runs, and
// submit it. Call before requesting tokens when the RSP enforces
// attestation.
func (t *HTTPTransport) Attest(device *attest.Device) error {
	var ch rspserver.AttestChallengeResponse
	if err := t.postJSON("/api/attest/challenge", struct{}{}, &ch); err != nil {
		return fmt.Errorf("rspclient: attest challenge: %w", err)
	}
	nonce, err := hex.DecodeString(ch.Nonce)
	if err != nil {
		return fmt.Errorf("rspclient: attest nonce: %w", err)
	}
	if err := t.postJSON("/api/attest/verify", rspserver.FromQuote(device.Attest(nonce)), nil); err != nil {
		return fmt.Errorf("rspclient: attest verify: %w", err)
	}
	return nil
}

// LocalTransport binds a client directly to an in-process server,
// bypassing HTTP. Experiments simulating hundreds of devices over
// hundreds of days use this; the wire types and validation paths are
// identical.
type LocalTransport struct {
	Server *rspserver.Server
	// Clock stamps locally posted reviews; defaults to the real clock.
	Clock simclock.Clock
}

// FetchDirectory implements Transport.
func (t *LocalTransport) FetchDirectory() ([]*world.Entity, error) {
	return t.Server.Catalog(), nil
}

// FetchModel implements Transport.
func (t *LocalTransport) FetchModel() (*inference.ModelSet, error) {
	m := t.Server.Models()
	if m == nil {
		return nil, ErrNoModel
	}
	return m, nil
}

// FetchTokenKey implements Transport.
func (t *LocalTransport) FetchTokenKey() (*rsa.PublicKey, error) {
	return t.Server.Issuer().PublicKey(), nil
}

// SignToken implements Transport.
func (t *LocalTransport) SignToken(device string, blinded *big.Int) (*big.Int, error) {
	return t.Server.Issuer().Sign(device, blinded)
}

// Upload implements Transport.
func (t *LocalTransport) Upload(req rspserver.UploadRequest) error {
	return t.Server.AcceptUpload(req)
}

// PostReview implements Transport. It goes through the server's commit
// path — never straight to the review store — so locally posted
// reviews hit the write-ahead log like everything else.
func (t *LocalTransport) PostReview(entity, author string, rating float64, text string) error {
	if t.Server.Engine().Entity(entity) == nil {
		return fmt.Errorf("rspclient: no entity %q", entity)
	}
	_, err := t.Server.PostReview(entity, author, rating, text)
	return err
}

// SubmitTraining implements Transport.
func (t *LocalTransport) SubmitTraining(features []float64, rating float64, category string) error {
	return t.Server.AddTrainingPair(features, rating, category)
}

// Attest runs the remote-attestation round trip in-process. It fails
// when the server has no verifier configured.
func (t *LocalTransport) Attest(device *attest.Device) error {
	v := t.Server.Attestor()
	if v == nil {
		return errors.New("rspclient: server does not require attestation")
	}
	nonce, err := v.Challenge(nil)
	if err != nil {
		return err
	}
	return v.Verify(device.Attest(nonce))
}
