package rspclient

import (
	"crypto/rsa"
	"errors"
	"fmt"
	"math/big"
	"net/http"
	"strings"
	"time"

	"opinions/internal/cluster"
	"opinions/internal/inference"
	"opinions/internal/resilience"
	"opinions/internal/rspserver"
	"opinions/internal/stripe"
	"opinions/internal/world"
)

// Router is the cluster-aware Transport: one failover HTTPTransport per
// partition (the partition's preferred node as BaseURL, its followers
// as Fallbacks), with every call routed to the partition that owns its
// key. Keyed calls — uploads, reviews — go to the entity's home;
// unkeyed reads go to any partition (the server's scatter-gather makes
// every node a whole-cluster coordinator); token signing routes by
// device so per-device rate accounting stays on one node; training
// pairs route by category so each partition accumulates the corpus for
// the categories it owns.
//
// The ring can go stale — a resharded cluster, a hand-edited config —
// and the server's ownership gate is the safety net: a 421 refusal
// carries the owner's address, and the Router retries the call there
// once before giving up. The retry is deliberately not sticky: the
// next call trusts the ring again, so a transient disagreement heals
// while a persistent one keeps surfacing (and counting) misroutes.
type Router struct {
	ring  *cluster.Ring
	parts []*HTTPTransport
	opts  RouterOptions
}

// RouterOptions tunes the per-partition transports.
type RouterOptions struct {
	// Client is shared by all partition transports; nil uses the
	// package default (30s overall timeout).
	Client *http.Client
	// Retry overrides DefaultRetry on every partition transport.
	Retry *resilience.Policy
	// ReprobeAfter is passed through to each partition transport.
	ReprobeAfter time.Duration
}

// NewRouter builds a Router over a validated ring.
func NewRouter(ring *cluster.Ring, opts RouterOptions) *Router {
	parts := make([]*HTTPTransport, ring.NumPartitions())
	for p := range parts {
		nodes := ring.Nodes(p)
		parts[p] = &HTTPTransport{
			BaseURL:      nodes[0],
			Fallbacks:    nodes[1:],
			Client:       opts.Client,
			Retry:        opts.Retry,
			ReprobeAfter: opts.ReprobeAfter,
		}
	}
	return &Router{ring: ring, parts: parts, opts: opts}
}

// Ring returns the routing descriptor.
func (r *Router) Ring() *cluster.Ring { return r.ring }

// Partition returns the transport for one partition — loadgen and the
// crawler use it to pin unkeyed reads to a chosen coordinator.
func (r *Router) Partition(p int) *HTTPTransport { return r.parts[p] }

// forKey returns the transport owning an entity key.
func (r *Router) forKey(key string) *HTTPTransport {
	return r.parts[r.ring.Partition(key)]
}

// redirected retries a call once against the owner a 421 refusal
// named. Any other error (including a second 421) passes through.
func (r *Router) redirected(err error, call func(t *HTTPTransport) error) error {
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusMisdirectedRequest || se.PartitionNode == "" {
		return err
	}
	metricMisrouteRetries.Inc()
	owner := &HTTPTransport{
		BaseURL: se.PartitionNode,
		Client:  r.opts.Client,
		Retry:   r.opts.Retry,
	}
	return call(owner)
}

// anyPartition tries a call on each partition in order until one
// succeeds; with the scatter-gather coordinator on every node the first
// live partition answers for the whole cluster.
func anyPartition[T any](r *Router, call func(t *HTTPTransport) (T, error)) (T, error) {
	var (
		out  T
		errs []string
	)
	for _, t := range r.parts {
		v, err := call(t)
		if err == nil {
			return v, nil
		}
		errs = append(errs, err.Error())
	}
	return out, fmt.Errorf("rspclient: all %d partitions failed: %s",
		len(r.parts), strings.Join(errs, "; "))
}

// FetchDirectory implements Transport. Any node coordinates the
// cluster-wide directory.
func (r *Router) FetchDirectory() ([]*world.Entity, error) {
	return anyPartition(r, func(t *HTTPTransport) ([]*world.Entity, error) {
		return t.FetchDirectory()
	})
}

// FetchModel implements Transport. Models are trained per partition on
// the training pairs it owns; the first live partition's model set
// serves — fleet-wide inference tolerates per-partition skew the same
// way it tolerates model staleness between retrains.
func (r *Router) FetchModel() (*inference.ModelSet, error) {
	return anyPartition(r, func(t *HTTPTransport) (*inference.ModelSet, error) {
		return t.FetchModel()
	})
}

// FetchTokenKey implements Transport. A cluster shares one issuer key
// (every node must redeem every node's tokens), so any partition
// answers.
func (r *Router) FetchTokenKey() (*rsa.PublicKey, error) {
	return anyPartition(r, func(t *HTTPTransport) (*rsa.PublicKey, error) {
		return t.FetchTokenKey()
	})
}

// SignToken implements Transport, routing by device so one node sees a
// device's whole token stream and its rate limit holds.
func (r *Router) SignToken(device string, blinded *big.Int) (*big.Int, error) {
	t := r.parts[stripe.IndexN(device, len(r.parts))]
	return t.SignToken(device, blinded)
}

// Upload implements Transport, routing by the upload's entity key.
func (r *Router) Upload(req rspserver.UploadRequest) error {
	err := r.forKey(req.Entity).Upload(req)
	if err == nil {
		return nil
	}
	return r.redirected(err, func(t *HTTPTransport) error { return t.Upload(req) })
}

// PostReview implements Transport, routing by entity key.
func (r *Router) PostReview(entity, author string, rating float64, text string) error {
	err := r.forKey(entity).PostReview(entity, author, rating, text)
	if err == nil {
		return nil
	}
	return r.redirected(err, func(t *HTTPTransport) error {
		return t.PostReview(entity, author, rating, text)
	})
}

// SubmitTraining implements Transport, routing by category so each
// partition trains per-category models from a complete slice.
func (r *Router) SubmitTraining(features []float64, rating float64, category string) error {
	t := r.parts[stripe.IndexN(category, len(r.parts))]
	return t.SubmitTraining(features, rating, category)
}

// Retrain fans the retrain to every partition. Each node's retrain is
// already a barrier commit in its own log (all lanes drain before the
// model installs), so the cluster-wide operation is N independent
// barriers; partitions that fail are reported together and can be
// retried — retraining is idempotent on a quiet corpus.
func (r *Router) Retrain() error {
	var errs []string
	for p, t := range r.parts {
		var m inference.ModelSet
		if err := t.postJSON("/api/model/retrain", struct{}{}, &m); err != nil {
			errs = append(errs, fmt.Sprintf("partition %d: %v", p, err))
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("rspclient: retrain: %s", strings.Join(errs, "; "))
	}
	return nil
}

// FraudSweep fans the §4.3 fraud sweep to every partition and sums the
// per-partition results. Like Retrain, each leg is a local barrier
// commit; a failed partition fails the whole call so the operator
// re-runs it rather than trusting a half-swept cluster.
func (r *Router) FraudSweep() (scanned, discarded int, err error) {
	var errs []string
	for p, t := range r.parts {
		var resp rspserver.SweepResponse
		if err := t.postJSON("/api/fraud/sweep", struct{}{}, &resp); err != nil {
			errs = append(errs, fmt.Sprintf("partition %d: %v", p, err))
			continue
		}
		scanned += resp.Scanned
		discarded += resp.Discarded
	}
	if len(errs) > 0 {
		return scanned, discarded, fmt.Errorf("rspclient: fraud sweep: %s", strings.Join(errs, "; "))
	}
	return scanned, discarded, nil
}
