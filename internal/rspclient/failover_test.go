package rspclient

// The kill-the-leader soak: a leader/follower pair runs under
// connection chaos while a device agent uploads its days; mid-soak the
// leader dies uncleanly — client connections severed, replication
// stream cut, no shutdown — and the follower auto-promotes. The agent's
// transport retargets onto the promoted follower and drains its spool.
// The bar generalizes TestCrashMidWALAppendRecoversExactly across two
// nodes: zero lost AND zero duplicated uploads, proven against the
// FOLLOWER's state — records the dead leader acknowledged must already
// be there (the semi-sync barrier), records it refused must arrive via
// the spool (idempotency keys absorb the retries of both chaos layers).

import (
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"regexp"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"opinions/internal/blindsig"
	"opinions/internal/faultinject"
	"opinions/internal/obs"
	"opinions/internal/replication"
	"opinions/internal/resilience"
	"opinions/internal/rspserver"
	"opinions/internal/simclock"
	"opinions/internal/store"
)

func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestTransportFailsOverOnConnectionRefused(t *testing.T) {
	var hits atomic.Int32
	fallback := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte("{}"))
	}))
	defer fallback.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // port now refuses connections

	before := metricFailovers.Value()
	tr := &HTTPTransport{BaseURL: dead.URL, Fallbacks: []string{fallback.URL}, Retry: fastRetry(4)}
	if err := tr.getJSON("/api/meta", nil); err != nil {
		t.Fatalf("call with live fallback failed: %v", err)
	}
	if metricFailovers.Value() != before+1 {
		t.Fatalf("failovers = %d, want exactly one rotation", metricFailovers.Value()-before)
	}
	// Sticky: the next call must go straight to the fallback, not probe
	// the dead primary again.
	if err := tr.getJSON("/api/meta", nil); err != nil {
		t.Fatalf("second call: %v", err)
	}
	if got := hits.Load(); got != 2 {
		t.Fatalf("fallback served %d requests, want 2", got)
	}
	if metricFailovers.Value() != before+1 {
		t.Fatal("second call rotated targets again despite a healthy sticky target")
	}
}

func TestTransportFailsOverOn503(t *testing.T) {
	var primaryHits, fallbackHits atomic.Int32
	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		primaryHits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"read-only replication follower"}`))
	}))
	defer primary.Close()
	fallback := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fallbackHits.Add(1)
		w.Write([]byte("{}"))
	}))
	defer fallback.Close()

	tr := &HTTPTransport{BaseURL: primary.URL, Fallbacks: []string{fallback.URL}, Retry: fastRetry(4)}
	if err := tr.getJSON("/api/meta", nil); err != nil {
		t.Fatalf("call failed despite healthy fallback: %v", err)
	}
	if p, f := primaryHits.Load(), fallbackHits.Load(); p != 1 || f != 1 {
		t.Fatalf("primary/fallback hits = %d/%d, want 1/1 (one 503, one success)", p, f)
	}
	if err := tr.getJSON("/api/meta", nil); err != nil {
		t.Fatalf("second call: %v", err)
	}
	if p := primaryHits.Load(); p != 1 {
		t.Fatalf("primary probed again (%d hits) despite sticky failover", p)
	}
}

// TestTransportWithoutFallbacksUnchanged pins the single-node behaviour:
// no rotation, errors surface as before.
func TestTransportWithoutFallbacksUnchanged(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close()
	before := metricFailovers.Value()
	tr := &HTTPTransport{BaseURL: dead.URL, Retry: fastRetry(4)}
	if err := tr.getJSON("/api/meta", nil); err == nil {
		t.Fatal("call against a dead server with no fallback succeeded")
	}
	if metricFailovers.Value() != before {
		t.Fatal("failover metric moved with no fallbacks configured")
	}
}

func TestKillTheLeaderFailoverSoak(t *testing.T) {
	city, sim := testWorld(t)
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	clock := simclock.NewSim(simclock.Epoch)

	// One issuer for both nodes: tokens fetched from the leader stay
	// redeemable on the promoted follower.
	issuer, err := blindsig.NewIssuer(1024, 100000, 24*time.Hour, clock)
	if err != nil {
		t.Fatal(err)
	}
	newNode := func(st *store.Store) *rspserver.Server {
		srv, err := rspserver.New(rspserver.Config{
			Catalog: city.Entities, Clock: clock, Issuer: issuer, Store: st,
		})
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	leaderSt, err := store.Open(store.Options{Dir: t.TempDir(), CompactEvery: -1, NoSync: true, Logger: quiet})
	if err != nil {
		t.Fatal(err)
	}
	followerSt, err := store.Open(store.Options{Dir: t.TempDir(), CompactEvery: -1, NoSync: true, Logger: quiet})
	if err != nil {
		t.Fatal(err)
	}
	defer followerSt.Close()

	// Leader: semi-sync replication plus the applied-then-truncated HTTP
	// injector, so some uploads are committed but never acknowledged —
	// the duplicates the follower's replicated ledger must absorb.
	leader := replication.NewLeader(leaderSt, replication.LeaderOptions{
		SyncCommit: true, AckTimeout: 2 * time.Second, HeartbeatEvery: 20 * time.Millisecond, Logger: quiet,
	})
	repLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go leader.Serve(repLn)

	srvL := newNode(leaderSt)
	inj := faultinject.New(faultinject.Config{Seed: 5, TruncateAppliedRate: 0.15})
	ts1 := httptest.NewServer(rspserver.Chain(srvL.Handler(), rspserver.WithRecovery(quiet), inj.Middleware))

	// Follower: the replication link runs under front-loaded connection
	// chaos — the first sessions get a flaky conn that drops mid-stream,
	// later redials are clean, so the pre-kill window can quiesce.
	var dials atomic.Int32
	chaosDial := func(addr string) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			return nil, err
		}
		if n := dials.Add(1); n <= 3 {
			return faultinject.NewFlakyConn(c, faultinject.FlakyConnConfig{
				Seed: int64(n) * 17, ReadDropRate: 0.05, SkipOps: 8, MaxFaults: 1,
			}), nil
		}
		return c, nil
	}
	promoted := make(chan string, 1)
	fol := replication.StartFollower(followerSt, repLn.Addr().String(), replication.FollowerOptions{
		Dial:          chaosDial,
		Retry:         resilience.Policy{BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
		Breaker:       &resilience.Breaker{FailureThreshold: 1000, Cooldown: 10 * time.Millisecond},
		FailoverAfter: 400 * time.Millisecond,
		ReadTimeout:   100 * time.Millisecond,
		OnPromote:     func(reason string) { promoted <- reason },
		Logger:        quiet,
	})
	defer fol.Close()

	srvF := newNode(followerSt)
	ts2 := httptest.NewServer(rspserver.Chain(srvF.Handler(),
		rspserver.WithFollowerGate(func() bool { return !fol.Promoted() }, ts1.URL)))
	defer ts2.Close()

	// The device: primary aimed at the leader, the follower as fallback.
	spoolPath := filepath.Join(t.TempDir(), "spool.json")
	agent := NewAgent(Config{
		DeviceID: "dev-failover", Author: "ufo", Seed: 43,
		MixMax: time.Hour, SpoolPath: spoolPath,
	}, &HTTPTransport{BaseURL: ts1.URL, Fallbacks: []string{ts2.URL}, Retry: fastRetry(4)})
	if err := agent.Bootstrap(); err != nil {
		t.Fatal(err)
	}

	u := city.Users[1]
	totalDetected := 0
	runDay := func(d int, required bool) {
		for _, dl := range sim.SimulateDate(d) {
			if dl.User != u.ID {
				continue
			}
			res, err := agent.ProcessDay(dl)
			totalDetected += res.Detected
			if err != nil && required {
				t.Fatalf("day %d: %v", d, err)
			}
		}
		night := sim.Start().AddDate(0, 0, d+1).Add(2 * time.Hour)
		if _, err := agent.FlushUploads(night); err != nil {
			if required {
				t.Fatalf("flush %d: %v", d, err)
			}
			t.Logf("flush %d degraded: %v", d, err)
		}
	}

	killDay := sim.Days() / 2
	for d := 0; d < killDay; d++ {
		runDay(d, false)
	}

	// Quiesce: the follower must be attached and fully caught up before
	// the kill — everything the leader acknowledged, the follower holds.
	waitUntil(t, 10*time.Second, "follower catch-up", func() bool {
		return leader.Attached() > 0 && fol.Connected() && leader.FollowerAck() >= leaderSt.Seq()
	})
	preKillSeq := leaderSt.Seq()
	if preKillSeq == 0 || totalDetected == 0 {
		t.Fatal("nothing uploaded before the kill; soak proves nothing")
	}

	// Kill the leader uncleanly: sever every client connection, stop the
	// HTTP listener, cut the replication stream. The store is abandoned
	// mid-flight — never compacted, never closed.
	ts1.CloseClientConnections()
	ts1.Close()
	leader.Close()
	repLn.Close()

	select {
	case reason := <-promoted:
		t.Logf("follower promoted (%s) at leader seq %d", reason, preKillSeq)
	case <-time.After(10 * time.Second):
		t.Fatal("follower never auto-promoted after leader loss")
	}
	if followerSt.Seq() < preKillSeq {
		t.Fatalf("follower promoted at seq %d, behind the leader's acknowledged %d", followerSt.Seq(), preKillSeq)
	}

	// Life goes on against the promoted follower; the transport finds it
	// through the fallback ring.
	for d := killDay; d < sim.Days(); d++ {
		runDay(d, false)
	}
	drainAt := sim.Start().AddDate(0, 0, sim.Days()+1)
	for i := 0; agent.PendingUploads() > 0; i++ {
		if i >= 50 {
			t.Fatalf("spool not drained after %d extra flushes: %d pending (%d spooled)",
				i, agent.PendingUploads(), agent.SpooledUploads())
		}
		if _, err := agent.FlushUploads(drainAt); err != nil {
			t.Logf("drain flush %d: %v", i, err)
		}
		drainAt = drainAt.Add(time.Hour)
	}

	// Zero lost, zero duplicated — judged against the surviving node.
	if got := followerSt.Histories().Stats().Records; got != totalDetected {
		verb, n := "lost", totalDetected-got
		if got > totalDetected {
			verb, n = "duplicated", got-totalDetected
		}
		t.Fatalf("follower has %d records, device detected %d — %d uploads %s across the failover",
			got, totalDetected, n, verb)
	}
	if agent.SpooledUploads() != 0 {
		t.Fatalf("%d uploads stuck in the spool", agent.SpooledUploads())
	}

	// The acceptance bar's wire-visible metrics: frames streamed, the
	// follower-lag gauge exported, and the promotion counted.
	ms := httptest.NewServer(obs.Default.Handler())
	defer ms.Close()
	resp, err := http.Get(ms.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	mustMetric := func(name string, wantNonzero bool) {
		re := regexp.MustCompile(`(?m)^` + name + ` ([0-9]+)$`)
		m := re.FindSubmatch(body)
		if m == nil {
			t.Fatalf("/metrics does not expose %s", name)
		}
		if v, _ := strconv.Atoi(string(m[1])); wantNonzero && v == 0 {
			t.Fatalf("%s = 0, want nonzero", name)
		}
	}
	mustMetric("replication_frames_total", true)
	mustMetric("replication_applied_total", true)
	mustMetric("replication_promotions_total", true)
	mustMetric("replication_follower_lag_records", false) // gauge must exist; 0 is the healthy value
	_ = fmt.Sprintf                                       // keep fmt imported if assertions above change
}
