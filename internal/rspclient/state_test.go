package rspclient

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"opinions/internal/history"
	"opinions/internal/interaction"
	"opinions/internal/rspserver"
	"opinions/internal/simclock"
	"opinions/internal/world"
)

func stateAgent(t *testing.T) (*Agent, *rspserver.Server) {
	t.Helper()
	catalog := []*world.Entity{
		{ID: "a", Service: world.Yelp, Zip: "z", Category: "cafe", Name: "A"},
		{ID: "b", Service: world.Yelp, Zip: "z", Category: "cafe", Name: "B"},
	}
	srv, err := rspserver.New(rspserver.Config{Catalog: catalog, KeyBits: 512, Clock: simclock.NewSim(simclock.Epoch)})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAgent(Config{DeviceID: "d", Seed: 7}, &LocalTransport{Server: srv})
	if err := a.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	return a, srv
}

func TestSaveLoadStatePreservesRu(t *testing.T) {
	a, srv := stateAgent(t)
	a.store.Add(interaction.Record{Entity: "yelp/a", Kind: interaction.VisitKind, Start: simclock.Epoch, Duration: time.Hour})
	a.inferred["yelp/a"] = 4.2
	a.Correct("yelp/b")

	var buf bytes.Buffer
	if err := a.SaveState(&buf); err != nil {
		t.Fatal(err)
	}

	// A "reinstalled" agent on the same device restores state and keeps
	// producing the same anonymous IDs.
	b := NewAgent(Config{DeviceID: "d", Seed: 99}, &LocalTransport{Server: srv})
	if err := b.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	if err := b.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	if history.AnonID(b.Ru(), "yelp/a") != history.AnonID(a.Ru(), "yelp/a") {
		t.Fatal("Ru changed across restore; anonymous histories would fragment")
	}
	if got := b.InferredOpinions()["yelp/a"]; got != 4.2 {
		t.Fatalf("inference cache = %v", got)
	}
	if !b.optedOut["yelp/b"] {
		t.Fatal("opt-out lost")
	}
	if len(b.store.ForEntity("yelp/a")) != 1 {
		t.Fatal("snapshot records lost")
	}
}

func TestLoadStateValidation(t *testing.T) {
	a, _ := stateAgent(t)
	if err := a.LoadState(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage state loaded")
	}
	if err := a.LoadState(strings.NewReader(`{"version":9,"ru":"AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA="}`)); err == nil {
		t.Fatal("bad version loaded")
	}
	if err := a.LoadState(strings.NewReader(`{"version":1,"ru":"AA=="}`)); err == nil {
		t.Fatal("short Ru loaded")
	}
}
