package rspclient

import (
	"net/url"
	"sort"
	"strconv"

	"opinions/internal/rspserver"
)

// Personalize reranks search results using the device's local history —
// the §5 incentive for installing the app at all: "for any search query
// issued by a user, the RSP could tailor results based on the user's
// history."
//
// Everything happens client-side: the server returns its global ranking
// and never learns which categories or price points this user favours.
// The personal signal added to each result's score is
//
//   - category affinity: how much of the user's retained history is in
//     the result's category, and
//   - price affinity: whether the result's price level matches the
//     price level the user actually patronizes in that category.
func (a *Agent) Personalize(results []rspserver.WireResult) []rspserver.WireResult {
	if a.resolver == nil || len(results) == 0 {
		return results
	}
	// Profile the local history: records per category, and record-count
	// per (category, price level).
	catCount := map[string]int{}
	pricePref := map[string]map[int]int{}
	for _, key := range a.store.Entities() {
		e := a.resolver.Entity(key)
		if e == nil {
			continue
		}
		n := len(a.store.ForEntity(key))
		catCount[e.Category] += n
		if pricePref[e.Category] == nil {
			pricePref[e.Category] = map[int]int{}
		}
		pricePref[e.Category][e.PriceLevel] += n
	}

	type scored struct {
		r rspserver.WireResult
		s float64
	}
	out := make([]scored, len(results))
	for i, r := range results {
		s := r.Score
		cat := r.Entity.Category
		if n := catCount[cat]; n > 0 {
			frac := float64(n) / 10
			if frac > 1 {
				frac = 1
			}
			s += 0.35 * frac
			// Price affinity: modal patronized price in this category.
			modal, best := 0, 0
			for price, cnt := range pricePref[cat] {
				if cnt > best || (cnt == best && price < modal) {
					modal, best = price, cnt
				}
			}
			if best > 0 {
				d := r.Entity.PriceLevel - modal
				if d < 0 {
					d = -d
				}
				if d <= 1 {
					s += 0.25
				}
			}
		}
		out[i] = scored{r: r, s: s}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].s > out[j].s })
	ranked := make([]rspserver.WireResult, len(out))
	for i, sc := range out {
		ranked[i] = sc.r
	}
	return ranked
}

// Search fetches the server's global ranking over HTTP. It is a
// convenience for pairing with Personalize; LocalTransport users can
// query the engine directly.
func (t *HTTPTransport) Search(service, zip, category string, limit int) ([]rspserver.WireResult, error) {
	q := url.Values{}
	q.Set("service", service)
	q.Set("zip", zip)
	q.Set("category", category)
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	var out []rspserver.WireResult
	err := t.getJSON("/api/search?"+q.Encode(), &out)
	return out, err
}
