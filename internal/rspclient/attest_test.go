package rspclient

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"opinions/internal/anonymity"
	"opinions/internal/attest"
	"opinions/internal/history"
	"opinions/internal/interaction"
	"opinions/internal/rspserver"
	"opinions/internal/simclock"
	"opinions/internal/world"
)

// attestedEnv builds an attestation-enforcing server plus two devices.
func attestedEnv(t *testing.T) (*rspserver.Server, *attest.Device, *attest.Device) {
	t.Helper()
	clock := simclock.NewSim(simclock.Epoch)
	good := []byte("official build")
	verifier := attest.NewVerifier(clock, attest.MeasureBuild(good))
	honest := attest.NewDevice("dev-honest", []byte("ak1"), good)
	verifier.Provision("dev-honest", []byte("ak1"))
	tampered := attest.NewDevice("dev-tampered", []byte("ak2"), good)
	verifier.Provision("dev-tampered", []byte("ak2"))
	tampered.Tamper([]byte("patched"))

	srv, err := rspserver.New(rspserver.Config{
		Catalog:     []*world.Entity{{ID: "a", Service: world.Yelp, Zip: "z", Category: "c"}},
		Clock:       clock,
		KeyBits:     512,
		Attestation: verifier,
		TokenRate:   1000, TokenPeriod: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv, honest, tampered
}

func TestAgentAttestsThenUploadsOverHTTP(t *testing.T) {
	srv, honest, _ := attestedEnv(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	transport := &HTTPTransport{BaseURL: ts.URL}

	agent := NewAgent(Config{DeviceID: "dev-honest", Seed: 1, MixMax: time.Minute}, transport)
	if err := agent.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	// Without attestation the token request (and so the flush) fails.
	rec := interaction.Record{
		Entity: "yelp/a", Kind: interaction.VisitKind,
		Start: simclock.Epoch, Duration: time.Hour,
	}
	agent.store.Add(rec)
	agent.mix.Submit(anonymity.Upload{
		AnonID: history.AnonID(agent.Ru(), "yelp/a"),
		Entity: "yelp/a",
		Record: &rec,
	}, simclock.Epoch)
	if _, err := agent.FlushUploads(simclock.Epoch.Add(time.Hour)); err == nil {
		t.Fatal("unattested flush succeeded")
	}
	// Attest; the requeued upload now flows.
	if err := transport.Attest(honest); err != nil {
		t.Fatal(err)
	}
	sent, err := agent.FlushUploads(simclock.Epoch.Add(2 * time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if sent != 1 {
		t.Fatalf("sent = %d", sent)
	}
}

func TestTamperedDeviceCannotAttest(t *testing.T) {
	srv, _, tampered := attestedEnv(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	transport := &HTTPTransport{BaseURL: ts.URL}
	err := transport.Attest(tampered)
	if err == nil {
		t.Fatal("tampered build attested")
	}
	if !strings.Contains(err.Error(), "known-good") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestLocalTransportAttest(t *testing.T) {
	srv, honest, tampered := attestedEnv(t)
	lt := &LocalTransport{Server: srv}
	if err := lt.Attest(honest); err != nil {
		t.Fatal(err)
	}
	if err := lt.Attest(tampered); err == nil {
		t.Fatal("tampered build attested locally")
	}
	// Server without verifier.
	plain, err := rspserver.New(rspserver.Config{KeyBits: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := (&LocalTransport{Server: plain}).Attest(honest); err == nil {
		t.Fatal("attested against a server without a verifier")
	}
}
