// Package rspclient is the device agent of Figure 2: the RSP's client
// running on the user's phone. It senses the day (via a sensing.Policy),
// maps raw observations to entities locally, maintains the recent
// snapshot store, infers opinions with the downloaded model, and uploads
// records and inferred opinions over anonymous, delayed, token-gated
// channels.
//
// Invariants the agent maintains, mirroring §4.2 and §5:
//
//   - Ru, the device secret, never appears in any Transport call.
//   - Every upload for entity e uses AnonID = hash(Ru, e); uploads for
//     different entities are unlinkable.
//   - Uploads are smeared over a mixing window, never sent in real time.
//   - Each upload spends a fresh blind-signed token.
//   - The user can list every inference (Inferences) and erase any
//     entity (Correct) — the §5 transparency surface.
package rspclient

import (
	"crypto/rand"
	"crypto/rsa"
	"fmt"
	"sort"
	"time"

	"opinions/internal/anonymity"
	"opinions/internal/blindsig"
	"opinions/internal/history"
	"opinions/internal/inference"
	"opinions/internal/interaction"
	"opinions/internal/mapping"
	"opinions/internal/rspserver"
	"opinions/internal/sensing"
	"opinions/internal/stats"
	"opinions/internal/trace"
)

// Config configures an agent.
type Config struct {
	// DeviceID identifies the device to the token issuer (the one
	// non-anonymous interaction).
	DeviceID string
	// Author is the user's public pseudonym for explicit reviews.
	Author string
	// Seed drives all client-side randomness deterministically.
	Seed int64
	// Policy is the location sampling policy (default DutyCycled).
	Policy sensing.Policy
	// Retention bounds the on-device snapshot (default 30 days).
	Retention time.Duration
	// MixMin/MixMax bound the upload smearing delay (defaults 0 / 6h).
	MixMin, MixMax time.Duration
	// MinInferenceEvidence is the evidence floor before inferring
	// (default 3 interactions).
	MinInferenceEvidence int
	// SpoolPath, when set, backs the failed-upload spool with a file so
	// undelivered uploads survive an app restart. Empty keeps the spool
	// in memory only.
	SpoolPath string
}

// Agent is one device. Construct with NewAgent, then Bootstrap.
type Agent struct {
	cfg       Config
	transport Transport
	ru        []byte
	rng       *stats.RNG

	resolver *mapping.Resolver
	detector *interaction.Detector
	store    *history.ClientStore
	mix      *anonymity.Mix
	spool    *Spool
	tokenKey *rsa.PublicKey
	models   *inference.ModelSet

	optedOut map[string]bool
	// inferred tracks the last uploaded rating per entity so opinions
	// are re-uploaded only when they change materially.
	inferred map[string]float64
}

// NewAgent creates an agent bound to a transport. Call Bootstrap before
// processing days.
func NewAgent(cfg Config, transport Transport) *Agent {
	if cfg.Policy == nil {
		cfg.Policy = sensing.DutyCycled{}
	}
	rng := stats.NewRNG(cfg.Seed)
	ru := make([]byte, 32)
	// Ru is drawn from the deterministic stream so experiments
	// reproduce; a production build would use crypto/rand.
	for i := range ru {
		ru[i] = byte(rng.Intn(256))
	}
	spool, err := NewSpool(cfg.SpoolPath)
	if err != nil {
		// A corrupt spool file must not brick the agent: start empty
		// but keep the path so new uploads overwrite the bad file.
		// Callers that need the error can construct via NewSpool first.
		spool = &Spool{path: cfg.SpoolPath}
	}
	return &Agent{
		cfg:       cfg,
		transport: transport,
		ru:        ru,
		rng:       rng,
		store:     history.NewClientStore(cfg.Retention),
		mix:       anonymity.NewMix(cfg.MixMin, cfg.MixMax, rng.Split("mix")),
		spool:     spool,
		optedOut:  make(map[string]bool),
		inferred:  make(map[string]float64),
	}
}

// Bootstrap downloads the directory, token key, and (if available) the
// inference model.
func (a *Agent) Bootstrap() error {
	dir, err := a.transport.FetchDirectory()
	if err != nil {
		return fmt.Errorf("rspclient: fetching directory: %w", err)
	}
	a.resolver = mapping.NewResolver(dir)
	a.detector = interaction.NewDetector(a.resolver, interaction.Config{})
	a.tokenKey, err = a.transport.FetchTokenKey()
	if err != nil {
		return fmt.Errorf("rspclient: fetching token key: %w", err)
	}
	if m, err := a.transport.FetchModel(); err == nil {
		a.models = m
	} else if err != ErrNoModel {
		return fmt.Errorf("rspclient: fetching model: %w", err)
	}
	return nil
}

// RefreshModel re-downloads the inference model.
func (a *Agent) RefreshModel() error {
	m, err := a.transport.FetchModel()
	if err != nil {
		return err
	}
	a.models = m
	return nil
}

// HasModel reports whether the agent can currently infer opinions.
func (a *Agent) HasModel() bool { return a.models != nil }

// DayResult summarizes one processed day.
type DayResult struct {
	Energy        sensing.Energy
	Detected      int // interaction records detected
	ReviewsPosted int
	TrainingPairs int
}

// ProcessDay observes one day of the user's life: sample the timeline
// under the sensing policy, detect interactions, record them locally,
// queue anonymous record uploads, and handle the user's explicit
// reviews (posting them publicly and volunteering training pairs).
func (a *Agent) ProcessDay(day trace.DayLog) (DayResult, error) {
	if a.resolver == nil {
		return DayResult{}, fmt.Errorf("rspclient: agent not bootstrapped")
	}
	var res DayResult

	samples, energy := a.cfg.Policy.SampleDay(a.rng.Split("sense/"+day.Date.Format("2006-01-02")), day.Segments)
	res.Energy = energy

	var recs []interaction.Record
	recs = append(recs, a.detector.DetectVisits(samples)...)
	calls := make([]interaction.CallObservation, len(day.Calls))
	for i, c := range day.Calls {
		calls[i] = interaction.CallObservation{Phone: c.Phone, Time: c.Time, Duration: c.Duration}
	}
	recs = append(recs, a.detector.FromCalls(calls)...)
	pays := make([]interaction.PaymentObservation, len(day.Payments))
	for i, p := range day.Payments {
		pays[i] = interaction.PaymentObservation{Merchant: p.Entity, Time: p.Time, Amount: p.Amount}
	}
	recs = append(recs, a.detector.FromPayments(pays)...)

	dayEnd := day.Date.Add(24 * time.Hour)
	for _, r := range recs {
		if a.optedOut[r.Entity] {
			continue
		}
		a.store.Add(r)
		rec := r
		a.mix.Submit(anonymity.Upload{
			AnonID: history.AnonID(a.ru, r.Entity),
			Entity: r.Entity,
			Record: &rec,
			// The idempotency key is stamped once here, at creation; it
			// rides through the mix, the wire, and the spool unchanged,
			// so every delivery attempt of this upload is recognizably
			// the same upload to the server.
			Key: anonymity.NewUploadKey(),
		}, r.Start)
	}
	res.Detected = len(recs)

	// Explicit reviews: post publicly, and volunteer a training pair
	// when the device has observational evidence to pair the rating
	// with.
	for _, rv := range day.Reviews {
		if err := a.transport.PostReview(rv.Entity, a.cfg.Author, rv.Rating, ""); err != nil {
			return res, fmt.Errorf("rspclient: posting review: %w", err)
		}
		res.ReviewsPosted++
		if ev := a.evidenceFor(rv.Entity); ev.InteractionCount() > 0 {
			category := ""
			if ent := a.resolver.Entity(rv.Entity); ent != nil {
				category = ent.Category
			}
			if err := a.transport.SubmitTraining(inference.ExtractFeatures(ev), rv.Rating, category); err != nil {
				return res, fmt.Errorf("rspclient: submitting training pair: %w", err)
			}
			res.TrainingPairs++
		}
	}

	a.store.Purge(dayEnd)
	return res, nil
}

// evidenceFor assembles the local evidence for one entity, including the
// cross-entity exploration feature and the choice-set feature.
func (a *Agent) evidenceFor(entityKey string) inference.EntityEvidence {
	ev := inference.EntityEvidence{Records: a.store.ForEntity(entityKey)}
	ent := a.resolver.Entity(entityKey)
	if ent == nil {
		return ev
	}
	for _, other := range a.store.Entities() {
		if other == entityKey {
			continue
		}
		if oe := a.resolver.Entity(other); oe != nil && oe.Category == ent.Category {
			ev.AlternativesTried++
		}
	}
	ev.ChoiceSetSize = a.resolver.SimilarNearby(entityKey, 3000)
	return ev
}

// InferOpinions runs the predictor over every entity in the snapshot and
// queues opinion uploads for inferences that are new or changed by at
// least half a star. Returns the number queued. No-op without a model.
func (a *Agent) InferOpinions(now time.Time) int {
	if a.models == nil {
		return 0
	}
	queued := 0
	for _, key := range a.store.Entities() {
		if a.optedOut[key] {
			continue
		}
		category := ""
		if ent := a.resolver.Entity(key); ent != nil {
			category = ent.Category
		}
		pred := inference.NewPredictor(a.models.For(category))
		if a.cfg.MinInferenceEvidence > 0 {
			pred.MinInteractions = a.cfg.MinInferenceEvidence
		}
		rating, ok := pred.Infer(a.evidenceFor(key))
		if !ok {
			continue
		}
		if prev, seen := a.inferred[key]; seen && abs(prev-rating) < 0.5 {
			continue
		}
		a.inferred[key] = rating
		r := rating
		a.mix.Submit(anonymity.Upload{
			AnonID: history.AnonID(a.ru, key),
			Entity: key,
			Rating: &r,
			Key:    anonymity.NewUploadKey(),
		}, now)
		queued++
	}
	return queued
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// FlushUploads delivers every upload whose mixing delay has elapsed —
// spooled leftovers from earlier failed flushes first — acquiring a
// fresh blind token for each. Returns the number delivered.
//
// Failure never loses an upload. When token issuance is down or
// rate-limited, the current upload and everything behind it go to the
// spool and re-drain next flush. When an individual delivery fails
// after its retries, that upload is spooled (tokenless; a fresh token
// is fetched at redelivery) and the flush continues with the rest. The
// first error is returned so callers can log it, but the agent
// degrades by queueing, not by crashing or dropping.
func (a *Agent) FlushUploads(now time.Time) (int, error) {
	due := append(a.spool.TakeAll(), a.mix.Flush(now)...)
	sent := 0
	var firstErr error
	for i, u := range due {
		if u.Key == "" {
			// Uploads spooled by a pre-idempotency build carry no key;
			// stamp one now so this and every later delivery attempt of
			// the entry share it.
			u.Key = anonymity.NewUploadKey()
			due[i] = u
		}
		tok, err := a.fetchToken()
		if err != nil {
			// Token issuance is unavailable for this period; spool
			// everything undelivered and try again next flush.
			a.spool.PutAll(due[i:])
			if firstErr == nil {
				firstErr = fmt.Errorf("rspclient: acquiring token: %w", err)
			}
			return sent, firstErr
		}
		req := rspserver.UploadRequest{
			AnonID: u.AnonID,
			Entity: u.Entity,
			Rating: u.Rating,
			Token:  rspserver.FromToken(tok),
			Key:    u.Key,
		}
		if u.Record != nil {
			w := rspserver.FromRecord(*u.Record)
			req.Record = &w
		}
		if err := a.transport.Upload(req); err != nil {
			a.spool.Put(u)
			if firstErr == nil {
				firstErr = fmt.Errorf("rspclient: uploading: %w", err)
			}
			continue
		}
		sent++
	}
	return sent, firstErr
}

// fetchToken runs the blind-signature protocol once.
func (a *Agent) fetchToken() (blindsig.Token, error) {
	serial := make([]byte, 32)
	if _, err := rand.Read(serial); err != nil {
		return blindsig.Token{}, err
	}
	blinded, unblind, err := blindsig.Blind(a.tokenKey, serial, rand.Reader)
	if err != nil {
		return blindsig.Token{}, err
	}
	sig, err := a.transport.SignToken(a.cfg.DeviceID, blinded)
	if err != nil {
		return blindsig.Token{}, err
	}
	return blindsig.Token{Msg: serial, Sig: unblind(sig)}, nil
}

// InferenceView is one row of the transparency screen (§5): what the app
// currently believes about one entity.
type InferenceView struct {
	Entity       string
	Records      int
	Rating       float64
	HasInference bool
}

// Inferences lists the app's current beliefs, sorted by entity key.
func (a *Agent) Inferences() []InferenceView {
	var out []InferenceView
	for _, key := range a.store.Entities() {
		v := InferenceView{Entity: key, Records: len(a.store.ForEntity(key))}
		if r, ok := a.inferred[key]; ok {
			v.Rating, v.HasInference = r, true
		}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Entity < out[j].Entity })
	return out
}

// Correct erases everything the app holds about an entity and stops
// future inference for it — the user telling the app "that inference is
// wrong / none of your business" (§5).
func (a *Agent) Correct(entityKey string) {
	a.store.Forget(entityKey)
	delete(a.inferred, entityKey)
	a.optedOut[entityKey] = true
}

// Suspend moves every upload still waiting in the mixing queue into the
// durable spool — the app's "about to be killed" hook. Spooled entries
// skip the remainder of their mixing delay on redelivery, a deliberate
// trade: across a restart, durability (and the exactly-once accounting
// that the idempotency keys provide) outranks the last hours of timing
// smear. Returns the number of uploads moved.
func (a *Agent) Suspend() int {
	pending := a.mix.Drain()
	a.spool.PutAll(pending)
	return len(pending)
}

// PendingUploads reports the number of undelivered uploads: still in
// the mixing queue or spooled after a failed delivery.
func (a *Agent) PendingUploads() int { return a.mix.Pending() + a.spool.Len() }

// SpooledUploads reports only the uploads held back by delivery
// failures (past their mixing delay, awaiting redelivery).
func (a *Agent) SpooledUploads() int { return a.spool.Len() }

// SnapshotLen reports the number of records in the on-device snapshot.
func (a *Agent) SnapshotLen() int { return a.store.Len() }

// Resolver exposes the on-device directory (read-only use).
func (a *Agent) Resolver() *mapping.Resolver { return a.resolver }

// Ru returns a copy of the device secret; only tests and the privacy
// experiments use it (to compute expected anonymous IDs).
func (a *Agent) Ru() []byte { return append([]byte(nil), a.ru...) }

// InferredOpinions returns a copy of the agent's current inferred
// ratings by entity key. Experiment scorers compare these against the
// simulator's ground truth; the RSP never can (it sees them only
// anonymously).
func (a *Agent) InferredOpinions() map[string]float64 {
	out := make(map[string]float64, len(a.inferred))
	for k, v := range a.inferred {
		out[k] = v
	}
	return out
}

// Evidence exposes the evidence the predictor sees for one entity, so
// experiments can run baseline predictors over identical inputs.
func (a *Agent) Evidence(entityKey string) inference.EntityEvidence {
	return a.evidenceFor(entityKey)
}
