package rspclient

// The chaos soak test: a device agent lives a simulated fortnight
// against an RSP behind the fault injector — 20% injected 5xx, 5%
// connection resets, 5% truncated bodies, 5% applied-then-truncated
// responses, a token-issuance outage in the middle of the run, and one
// process restart — and must finish with zero lost AND zero duplicated
// uploads. This is the acceptance bar for the resilience layer plus the
// exactly-once ledger: the paper's "comprehensive repository" is only
// trustworthy if flaky mobile networks neither silently eat opinions
// (§4.2) nor double-count them under retry.

import (
	"io"
	"log/slog"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"opinions/internal/faultinject"
	"opinions/internal/resilience"
	"opinions/internal/rspserver"
	"opinions/internal/simclock"
	"opinions/internal/stats"
)

func TestChaosSoakZeroLostUploads(t *testing.T) {
	city, sim := testWorld(t)
	srv := testServerFor(t, city)

	inj := faultinject.New(faultinject.Config{
		Seed:         7,
		ErrorRate:    0.20,
		ErrorBurst:   2,
		ResetRate:    0.05,
		TruncateRate: 0.05,
		// Applied-then-truncated responses are the duplicate generator:
		// the handler runs, the client cannot tell, and only the
		// idempotency ledger keeps the retry from counting twice. The
		// rate is higher than the pure-truncation rate because it is
		// rolled last (the earlier faults eat most requests) and the
		// soak only makes a few hundred requests in total.
		TruncateAppliedRate: 0.15,
	})
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	handler := rspserver.Chain(srv.Handler(),
		rspserver.WithRecovery(quiet),
		inj.Middleware,
	)
	ts := httptest.NewServer(handler)
	defer ts.Close()

	// A patient retry policy with a deterministic jitter stream and no
	// real sleeping: the soak exercises schedules, not wall clocks.
	jitter := stats.NewRNG(3)
	retry := &resilience.Policy{
		MaxAttempts: 8,
		BaseDelay:   time.Millisecond,
		MaxDelay:    4 * time.Millisecond,
		Jitter:      jitter.Float64,
		Sleep:       func(time.Duration) {},
	}
	transport := &HTTPTransport{BaseURL: ts.URL, Retry: retry}

	spoolPath := filepath.Join(t.TempDir(), "spool.json")
	mkAgent := func() *Agent {
		// Same seed: a reborn agent derives the same Ru, so its
		// anonymous IDs line up with the uploads spooled by its
		// predecessor.
		return NewAgent(Config{
			DeviceID: "dev-chaos", Author: "uc", Seed: 11,
			MixMax: time.Hour, SpoolPath: spoolPath,
		}, transport)
	}
	agent := mkAgent()
	if err := agent.Bootstrap(); err != nil {
		t.Fatalf("bootstrap through chaos: %v", err)
	}

	u := city.Users[0]
	totalDetected := 0
	flushErrs := 0
	for d := 0; d < sim.Days(); d++ {
		for _, dl := range sim.SimulateDate(d) {
			if dl.User != u.ID {
				continue
			}
			res, err := agent.ProcessDay(dl)
			// Interaction records are queued before review posting, so
			// Detected is valid even when a review POST exhausted its
			// retries; the day's opinions are already in the mix.
			totalDetected += res.Detected
			if err != nil {
				t.Logf("day %d degraded: %v", d, err)
			}
		}
		// Token issuance goes down for the middle of the run and the
		// nightly flushes must degrade to spooling, not lose data.
		if d == 5 {
			inj.SetTokenOutage(true)
		}
		if d == 8 {
			inj.SetTokenOutage(false)
		}
		// One process restart, mid-outage, before the nightly flush so
		// the mixing queue still holds the day's uploads: the dying
		// process suspends them into the durable spool; its successor
		// picks everything up from the file. Spooled uploads keep their
		// idempotency keys, so redelivery of anything the server
		// already applied cannot double-count.
		if d == 6 {
			moved := agent.Suspend()
			t.Logf("restart at day %d: %d uploads suspended to spool", d, moved)
			agent = mkAgent()
			if err := agent.Bootstrap(); err != nil {
				t.Fatalf("re-bootstrap after restart: %v", err)
			}
		}
		night := sim.Start().AddDate(0, 0, d+1).Add(2 * time.Hour)
		if _, err := agent.FlushUploads(night); err != nil {
			flushErrs++
			t.Logf("nightly flush %d degraded: %v", d, err)
		}
	}
	if totalDetected == 0 {
		t.Fatal("nothing detected; soak exercised nothing")
	}

	// Drain: keep flushing past the mixing window until the spool and
	// mix are empty. Bounded so a delivery bug fails instead of hanging.
	drainAt := sim.Start().AddDate(0, 0, sim.Days()+1)
	for i := 0; agent.PendingUploads() > 0; i++ {
		if i >= 50 {
			t.Fatalf("spool not drained after %d extra flushes: %d pending (%d spooled)",
				i, agent.PendingUploads(), agent.SpooledUploads())
		}
		if _, err := agent.FlushUploads(drainAt); err != nil {
			t.Logf("drain flush degraded: %v", err)
		}
		drainAt = drainAt.Add(time.Hour)
	}
	// The mix check runs after the drain, where the bulk of the upload
	// traffic (and therefore most chances to fire each fault) lives.
	if s := inj.Stats(); s.Errors == 0 || s.Resets == 0 || s.TokenRefusals == 0 || s.TruncationsApplied == 0 {
		t.Fatalf("fault mix did not fire: %+v", s)
	}

	// Zero lost AND zero duplicated uploads: every detected record made
	// it into the server's anonymous history store exactly once. Losing
	// one would leave records < detected; double-applying one (the
	// applied-then-truncated responses guarantee redeliveries of
	// already-applied uploads happened) would leave records > detected.
	_, _, hists := srv.Stores()
	if got := hists.Stats().Records; got != totalDetected {
		verb := "lost"
		n := totalDetected - got
		if got > totalDetected {
			verb, n = "duplicated", got-totalDetected
		}
		t.Fatalf("server has %d records, agent detected %d — %d uploads %s",
			got, totalDetected, n, verb)
	}
	if agent.SpooledUploads() != 0 {
		t.Fatalf("%d uploads stuck in the spool", agent.SpooledUploads())
	}
	if flushErrs == 0 {
		t.Fatal("no flush ever degraded; the outage window did not bite")
	}
}

// TestChaosSpoolSurvivesRestart reboots the agent mid-outage: uploads
// spooled by the first process must drain from the second.
func TestChaosSpoolSurvivesRestart(t *testing.T) {
	city, sim := testWorld(t)
	srv := testServerFor(t, city)
	inj := faultinject.New(faultinject.Config{Seed: 1, TokenOutage: true})
	ts := httptest.NewServer(inj.Middleware(srv.Handler()))
	defer ts.Close()

	retry := &resilience.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, Sleep: func(time.Duration) {}}
	spoolPath := filepath.Join(t.TempDir(), "spool.json")
	mkAgent := func() *Agent {
		// Same seed: the reborn agent derives the same Ru, so its
		// anonymous IDs still line up with the spooled uploads.
		return NewAgent(Config{
			DeviceID: "dev-r", Author: "ur", Seed: 21,
			MixMax: time.Minute, SpoolPath: spoolPath,
		}, &HTTPTransport{BaseURL: ts.URL, Retry: retry})
	}

	a1 := mkAgent()
	if err := a1.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	u := city.Users[2]
	for d := 0; d < 5; d++ {
		for _, dl := range sim.SimulateDate(d) {
			if dl.User == u.ID {
				_, _ = a1.ProcessDay(dl)
			}
		}
	}
	flushAt := sim.Start().AddDate(0, 0, 6)
	if _, err := a1.FlushUploads(flushAt); err == nil {
		t.Fatal("flush during a token outage reported success")
	}
	spooled := a1.SpooledUploads()
	if spooled == 0 {
		t.Skip("user produced no uploads in 5 days")
	}

	// "Restart": a fresh agent process on the same spool file, after
	// the outage clears.
	inj.SetTokenOutage(false)
	a2 := mkAgent()
	if err := a2.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	if a2.SpooledUploads() != spooled {
		t.Fatalf("restart recovered %d spooled uploads, want %d", a2.SpooledUploads(), spooled)
	}
	sent, err := a2.FlushUploads(flushAt)
	if err != nil {
		t.Fatalf("post-restart drain: %v", err)
	}
	if sent != spooled {
		t.Fatalf("drained %d, want %d", sent, spooled)
	}
	_, _, hists := srv.Stores()
	if hists.Stats().Records == 0 {
		t.Fatal("server stored nothing after the drain")
	}
}

// TestFlushDegradesWhenServerDown: with the RSP entirely unreachable,
// a flush must queue everything and report the failure — not crash,
// not lose.
func TestFlushDegradesWhenServerDown(t *testing.T) {
	city, sim := testWorld(t)
	srv := testServerFor(t, city)

	// Bootstrap against a live server, then yank it away.
	ts := httptest.NewServer(srv.Handler())
	retry := &resilience.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, Sleep: func(time.Duration) {}}
	agent := NewAgent(Config{DeviceID: "dev-down", Author: "ud", Seed: 31, MixMax: time.Minute},
		&HTTPTransport{BaseURL: ts.URL, Retry: retry})
	if err := agent.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	u := city.Users[3]
	for d := 0; d < 5; d++ {
		for _, dl := range sim.SimulateDate(d) {
			if dl.User == u.ID {
				_, _ = agent.ProcessDay(dl)
			}
		}
	}
	pending := agent.PendingUploads()
	if pending == 0 {
		t.Skip("no uploads produced")
	}
	ts.Close()

	flushAt := sim.Start().AddDate(0, 0, 6)
	sent, err := agent.FlushUploads(flushAt)
	if err == nil {
		t.Fatal("flush against a dead server reported success")
	}
	if sent != 0 {
		t.Fatalf("sent = %d against a dead server", sent)
	}
	if agent.PendingUploads() != pending {
		t.Fatalf("pending %d → %d: uploads lost to a dead server", pending, agent.PendingUploads())
	}
}

// TestTransportBreakerFailsFast: with a breaker installed, repeated
// failures open the circuit and subsequent calls are refused without
// touching the network.
func TestTransportBreakerFailsFast(t *testing.T) {
	clock := simclock.NewSim(simclock.Epoch)
	br := &resilience.Breaker{FailureThreshold: 2, Cooldown: time.Minute, Clock: clock}
	retry := &resilience.Policy{MaxAttempts: 1}
	tr := &HTTPTransport{BaseURL: "http://127.0.0.1:1", Retry: retry, Breaker: br}
	for i := 0; i < 2; i++ {
		if _, err := tr.FetchDirectory(); err == nil {
			t.Fatal("dead server served a directory")
		}
	}
	if br.State() != resilience.Open {
		t.Fatalf("breaker state = %v after %d failures", br.State(), 2)
	}
	if _, err := tr.FetchDirectory(); err == nil {
		t.Fatal("open breaker allowed a call")
	}
}
