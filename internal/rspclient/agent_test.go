package rspclient

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"opinions/internal/history"
	"opinions/internal/rspserver"
	"opinions/internal/simclock"
	"opinions/internal/trace"
	"opinions/internal/world"
)

func testWorld(t *testing.T) (*world.City, *trace.Simulator) {
	t.Helper()
	city := world.BuildCity(world.CityConfig{Seed: 21, NumUsers: 30, SpanMeters: 10000})
	sim := trace.New(city, trace.Config{Seed: 21, Days: 14})
	return city, sim
}

func testServerFor(t *testing.T, city *world.City) *rspserver.Server {
	t.Helper()
	srv, err := rspserver.New(rspserver.Config{
		Catalog: city.Entities,
		Clock:   simclock.NewSim(simclock.Epoch),
		KeyBits: 1024,
		// Generous token budget so integration flows are not throttled.
		TokenRate: 100000, TokenPeriod: 24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestAgentEndToEndLocal(t *testing.T) {
	city, sim := testWorld(t)
	srv := testServerFor(t, city)
	transport := &LocalTransport{Server: srv, Clock: simclock.NewSim(simclock.Epoch)}

	u := city.Users[0]
	agent := NewAgent(Config{DeviceID: "dev-0", Author: "user0", Seed: 1, MixMax: time.Hour}, transport)
	if _, err := agent.ProcessDay(trace.DayLog{}); err == nil {
		t.Fatal("ProcessDay before Bootstrap should fail")
	}
	if err := agent.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	if agent.HasModel() {
		t.Fatal("model exists before any training")
	}

	totalDetected := 0
	for d := 0; d < sim.Days(); d++ {
		for _, dl := range sim.SimulateDate(d) {
			if dl.User != u.ID {
				continue
			}
			res, err := agent.ProcessDay(dl)
			if err != nil {
				t.Fatal(err)
			}
			totalDetected += res.Detected
			if res.Energy <= 0 && len(dl.Segments) > 0 {
				t.Fatal("no energy charged for a sensed day")
			}
		}
	}
	if totalDetected == 0 {
		t.Fatal("agent detected no interactions in 14 days")
	}
	if agent.PendingUploads() == 0 {
		t.Fatal("nothing queued for upload")
	}

	// Flush well past the mixing window: everything must deliver.
	flushAt := sim.Start().AddDate(0, 0, sim.Days()+1)
	sent, err := agent.FlushUploads(flushAt)
	if err != nil {
		t.Fatal(err)
	}
	if sent == 0 {
		t.Fatal("flush delivered nothing")
	}
	_, _, hists := srv.Stores()
	if hists.Stats().Records == 0 {
		t.Fatal("server stored no records")
	}

	// Every anonymous ID on the server matches hash(Ru, entity) and the
	// device ID never appears.
	for _, key := range hists.Entities() {
		for _, h := range hists.ByEntity(key) {
			if h.AnonID != history.AnonID(agent.Ru(), key) {
				t.Fatalf("unexpected anon ID for %s", key)
			}
			if strings.Contains(h.AnonID, "dev-0") {
				t.Fatal("device ID leaked into anonymous ID")
			}
		}
	}
}

func TestAgentEndToEndHTTP(t *testing.T) {
	city, sim := testWorld(t)
	srv := testServerFor(t, city)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	transport := &HTTPTransport{BaseURL: ts.URL}

	agent := NewAgent(Config{DeviceID: "dev-http", Author: "u", Seed: 2, MixMax: time.Minute}, transport)
	if err := agent.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	if agent.Resolver().Len() != len(city.Entities) {
		t.Fatalf("directory size = %d, want %d", agent.Resolver().Len(), len(city.Entities))
	}
	u := city.Users[1]
	for d := 0; d < 7; d++ {
		for _, dl := range sim.SimulateDate(d) {
			if dl.User == u.ID {
				if _, err := agent.ProcessDay(dl); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	sent, err := agent.FlushUploads(sim.Start().AddDate(0, 0, 8))
	if err != nil {
		t.Fatal(err)
	}
	_, _, hists := srv.Stores()
	if sent == 0 || hists.Stats().Records == 0 {
		t.Fatalf("HTTP path delivered %d uploads, server has %d records", sent, hists.Stats().Records)
	}
}

func TestAgentReviewsAndTraining(t *testing.T) {
	city, sim := testWorld(t)
	srv := testServerFor(t, city)
	transport := &LocalTransport{Server: srv, Clock: simclock.NewSim(simclock.Epoch)}

	// Run agents for every user so the vocal minority posts reviews.
	agents := map[world.UserID]*Agent{}
	for i, u := range city.Users {
		a := NewAgent(Config{DeviceID: string(u.ID), Author: string(u.ID), Seed: int64(i), MixMax: time.Hour}, transport)
		if err := a.Bootstrap(); err != nil {
			t.Fatal(err)
		}
		agents[u.ID] = a
	}
	reviewsPosted := 0
	trainingPairs := 0
	for d := 0; d < sim.Days(); d++ {
		for _, dl := range sim.SimulateDate(d) {
			res, err := agents[dl.User].ProcessDay(dl)
			if err != nil {
				t.Fatal(err)
			}
			reviewsPosted += res.ReviewsPosted
			trainingPairs += res.TrainingPairs
		}
	}
	rev, _, _ := srv.Stores()
	if rev.TotalReviews() != reviewsPosted {
		t.Fatalf("server reviews %d != posted %d", rev.TotalReviews(), reviewsPosted)
	}
	if srv.TrainingPairs() != trainingPairs {
		t.Fatalf("server pairs %d != submitted %d", srv.TrainingPairs(), trainingPairs)
	}
}

func TestAgentInferenceFlow(t *testing.T) {
	city, sim := testWorld(t)
	srv := testServerFor(t, city)
	transport := &LocalTransport{Server: srv, Clock: simclock.NewSim(simclock.Epoch)}

	// Pre-train a model from synthetic pairs so the agent can infer.
	seedTraining(t, srv)

	u := city.Users[2]
	agent := NewAgent(Config{DeviceID: "dev-2", Author: "u2", Seed: 3, MixMax: time.Minute}, transport)
	if err := agent.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	if !agent.HasModel() {
		t.Fatal("agent did not pick up the model")
	}
	for d := 0; d < sim.Days(); d++ {
		for _, dl := range sim.SimulateDate(d) {
			if dl.User == u.ID {
				if _, err := agent.ProcessDay(dl); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	queued := agent.InferOpinions(sim.Start().AddDate(0, 0, sim.Days()))
	if queued == 0 {
		t.Skip("no entity accumulated enough evidence in 14 days for this user")
	}
	if _, err := agent.FlushUploads(sim.Start().AddDate(0, 0, sim.Days()+1)); err != nil {
		t.Fatal(err)
	}
	_, ops, _ := srv.Stores()
	if ops.Total() != queued {
		t.Fatalf("server opinions %d != queued %d", ops.Total(), queued)
	}
	// Re-inferring immediately must not duplicate uploads.
	if again := agent.InferOpinions(sim.Start().AddDate(0, 0, sim.Days())); again != 0 {
		t.Fatalf("unchanged inference re-queued %d", again)
	}
}

// seedTraining installs a model trained on synthetic effort-correlated
// pairs.
func seedTraining(t *testing.T, srv *rspserver.Server) {
	t.Helper()
	rng := newTestRNG()
	for i := 0; i < 200; i++ {
		x, y := syntheticPair(rng)
		if err := srv.AddTrainingPair(x, y, "cafe"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := srv.Retrain(); err != nil {
		t.Fatal(err)
	}
}

func TestAgentTransparencyAndCorrection(t *testing.T) {
	city, sim := testWorld(t)
	srv := testServerFor(t, city)
	transport := &LocalTransport{Server: srv, Clock: simclock.NewSim(simclock.Epoch)}
	u := city.Users[3]
	agent := NewAgent(Config{DeviceID: "dev-3", Author: "u3", Seed: 4, MixMax: time.Hour}, transport)
	if err := agent.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < sim.Days(); d++ {
		for _, dl := range sim.SimulateDate(d) {
			if dl.User == u.ID {
				_, _ = agent.ProcessDay(dl)
			}
		}
	}
	views := agent.Inferences()
	if len(views) == 0 {
		t.Fatal("transparency screen empty after two weeks")
	}
	target := views[0].Entity
	agent.Correct(target)
	for _, v := range agent.Inferences() {
		if v.Entity == target {
			t.Fatal("corrected entity still listed")
		}
	}
	// Records for the corrected entity must no longer be collected.
	before := agent.SnapshotLen()
	for d := 0; d < 3; d++ {
		for _, dl := range sim.SimulateDate(d) {
			if dl.User == u.ID {
				_, _ = agent.ProcessDay(dl)
			}
		}
	}
	for _, v := range agent.Inferences() {
		if v.Entity == target {
			t.Fatal("opted-out entity re-appeared")
		}
	}
	_ = before
}

func TestAgentTokenRateLimitRequeues(t *testing.T) {
	city, sim := testWorld(t)
	srv, err := rspserver.New(rspserver.Config{
		Catalog: city.Entities, Clock: simclock.NewSim(simclock.Epoch),
		KeyBits: 1024, TokenRate: 2, TokenPeriod: 24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	transport := &LocalTransport{Server: srv, Clock: simclock.NewSim(simclock.Epoch)}
	u := city.Users[4]
	agent := NewAgent(Config{DeviceID: "dev-4", Author: "u4", Seed: 5, MixMax: time.Minute}, transport)
	if err := agent.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 10; d++ {
		for _, dl := range sim.SimulateDate(d) {
			if dl.User == u.ID {
				_, _ = agent.ProcessDay(dl)
			}
		}
	}
	pendingBefore := agent.PendingUploads()
	if pendingBefore <= 2 {
		t.Skip("too few uploads to exercise the rate limit")
	}
	sent, err := agent.FlushUploads(sim.Start().AddDate(0, 0, 11))
	if err == nil {
		t.Fatal("expected rate-limit error")
	}
	if sent != 2 {
		t.Fatalf("sent %d, want exactly the token budget (2)", sent)
	}
	if agent.PendingUploads() != pendingBefore-2 {
		t.Fatalf("pending = %d, want %d requeued", agent.PendingUploads(), pendingBefore-2)
	}
}

func TestSnapshotRetentionBoundsDeviceExposure(t *testing.T) {
	city, sim := testWorld(t)
	srv := testServerFor(t, city)
	transport := &LocalTransport{Server: srv, Clock: simclock.NewSim(simclock.Epoch)}
	u := city.Users[5]
	agent := NewAgent(Config{
		DeviceID: "dev-5", Author: "u5", Seed: 6,
		Retention: 5 * 24 * time.Hour, MixMax: time.Minute,
	}, transport)
	if err := agent.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < sim.Days(); d++ {
		for _, dl := range sim.SimulateDate(d) {
			if dl.User == u.ID {
				_, _ = agent.ProcessDay(dl)
			}
		}
	}
	// Everything on the device must be younger than retention.
	cutoff := sim.Start().AddDate(0, 0, sim.Days()).Add(-5 * 24 * time.Hour)
	for _, key := range agentEntities(agent) {
		for _, r := range agentRecords(agent, key) {
			if r.Start.Before(cutoff.Add(-24 * time.Hour)) {
				t.Fatalf("record from %v survived a 5-day retention", r.Start)
			}
		}
	}
}

func agentEntities(a *Agent) []string {
	var out []string
	for _, v := range a.Inferences() {
		out = append(out, v.Entity)
	}
	return out
}

func agentRecords(a *Agent, key string) []interactionRecord {
	var out []interactionRecord
	for _, r := range a.store.ForEntity(key) {
		out = append(out, interactionRecord{Start: r.Start})
	}
	return out
}

type interactionRecord struct{ Start time.Time }
