package rspclient

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"opinions/internal/obs"
	"opinions/internal/resilience"
)

// headerLog records the trace headers of every attempt a test server
// sees, so tests can assert on the wire-level retry/tracing protocol.
type headerLog struct {
	mu       sync.Mutex
	traces   []string
	attempts []string
}

func (l *headerLog) record(r *http.Request) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.traces = append(l.traces, r.Header.Get(obs.TraceHeader))
	l.attempts = append(l.attempts, r.Header.Get(obs.RetryHeader))
}

func fastRetry(attempts int) *resilience.Policy {
	return &resilience.Policy{
		MaxAttempts: attempts,
		BaseDelay:   time.Millisecond,
		MaxDelay:    2 * time.Millisecond,
	}
}

func TestTransportSendsOneTraceAcrossRetries(t *testing.T) {
	var log headerLog
	var calls int
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		log.record(r)
		mu.Lock()
		calls++
		first := calls == 1
		mu.Unlock()
		if first {
			http.Error(w, `{"error":"transient"}`, http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`[]`)) // empty directory
	}))
	defer srv.Close()

	retriesBefore := metricRetries.Value()
	okBefore := metricCalls.With("/api/directory", "ok").Value()

	tr := &HTTPTransport{BaseURL: srv.URL, Retry: fastRetry(3)}
	if _, err := tr.FetchDirectory(); err != nil {
		t.Fatalf("FetchDirectory after one transient failure: %v", err)
	}

	log.mu.Lock()
	defer log.mu.Unlock()
	if len(log.traces) != 2 {
		t.Fatalf("server saw %d attempts, want 2", len(log.traces))
	}
	if _, ok := obs.ParseTraceID(log.traces[0]); !ok {
		t.Fatalf("attempt 0 carried invalid trace id %q", log.traces[0])
	}
	if log.traces[0] != log.traces[1] {
		t.Fatalf("retry changed trace id: %q then %q — a retry storm must look like one trace", log.traces[0], log.traces[1])
	}
	if log.attempts[0] != "0" || log.attempts[1] != "1" {
		t.Fatalf("retry attempts on the wire = %v, want [0 1]", log.attempts)
	}
	if got := metricRetries.Value() - retriesBefore; got != 1 {
		t.Fatalf("retry counter delta = %d, want 1", got)
	}
	if got := metricCalls.With("/api/directory", "ok").Value() - okBefore; got != 1 {
		t.Fatalf("ok-call counter delta = %d, want 1", got)
	}
}

func TestTransportMintsFreshTracePerCall(t *testing.T) {
	var log headerLog
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		log.record(r)
		w.Write([]byte(`[]`))
	}))
	defer srv.Close()

	tr := &HTTPTransport{BaseURL: srv.URL, Retry: fastRetry(1)}
	tr.FetchDirectory()
	tr.FetchDirectory()

	log.mu.Lock()
	defer log.mu.Unlock()
	if len(log.traces) != 2 || log.traces[0] == log.traces[1] {
		t.Fatalf("two logical calls shared a trace id: %v", log.traces)
	}
}

func TestTransportCountsErrorOutcome(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"nope"}`, http.StatusForbidden)
	}))
	defer srv.Close()

	before := metricCalls.With("/api/directory", "error").Value()
	tr := &HTTPTransport{BaseURL: srv.URL, Retry: fastRetry(1)}
	if _, err := tr.FetchDirectory(); err == nil {
		t.Fatal("403 did not surface as an error")
	}
	if got := metricCalls.With("/api/directory", "error").Value() - before; got != 1 {
		t.Fatalf("error-call counter delta = %d, want 1", got)
	}
}

func TestInstrumentBreakerCountsTransitionsAndChains(t *testing.T) {
	b := &resilience.Breaker{FailureThreshold: 1}
	var chained []string
	b.OnStateChange = func(from, to resilience.State) {
		chained = append(chained, from.String()+"->"+to.String())
	}
	InstrumentBreaker(b)

	before := metricBreaker.With("closed", "open").Value()
	b.Allow()
	b.Failure()

	if got := metricBreaker.With("closed", "open").Value() - before; got != 1 {
		t.Fatalf("transition counter delta = %d, want 1", got)
	}
	if len(chained) != 1 || chained[0] != "closed->open" {
		t.Fatalf("prior hook not chained: %v", chained)
	}
}

func TestTransportCountsBreakerFastFails(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}))
	defer srv.Close()

	fastBefore := metricBreakerFastFail.Value()
	tr := &HTTPTransport{
		BaseURL: srv.URL,
		Retry:   fastRetry(1),
		Breaker: &resilience.Breaker{FailureThreshold: 1, Cooldown: time.Hour},
	}
	// First call trips the breaker; second fails fast without touching
	// the network.
	tr.FetchDirectory()
	if _, err := tr.FetchDirectory(); err == nil {
		t.Fatal("open breaker let a call through")
	}
	if got := metricBreakerFastFail.Value() - fastBefore; got != 1 {
		t.Fatalf("fast-fail counter delta = %d, want 1", got)
	}
}
