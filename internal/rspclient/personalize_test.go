package rspclient

import (
	"net/http/httptest"
	"testing"
	"time"

	"opinions/internal/interaction"
	"opinions/internal/rspserver"
	"opinions/internal/simclock"
	"opinions/internal/world"
)

// personalizeAgent builds an agent whose local history shows a strong
// cheap-chinese habit.
func personalizeAgent(t *testing.T) (*Agent, []rspserver.WireResult) {
	t.Helper()
	catalog := []*world.Entity{
		{ID: "cheap-ch", Service: world.Yelp, Zip: "z", Category: "chinese", PriceLevel: 1, Name: "Cheap Chinese"},
		{ID: "fancy-ch", Service: world.Yelp, Zip: "z", Category: "chinese", PriceLevel: 4, Name: "Fancy Chinese"},
		{ID: "thai", Service: world.Yelp, Zip: "z", Category: "thai", PriceLevel: 1, Name: "Thai"},
	}
	srv, err := rspserver.New(rspserver.Config{Catalog: catalog, KeyBits: 512, Clock: simclock.NewSim(simclock.Epoch)})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAgent(Config{DeviceID: "d", Seed: 1}, &LocalTransport{Server: srv})
	if err := a.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	// Seed local history: many records at the cheap chinese place.
	for i := 0; i < 8; i++ {
		a.store.Add(interaction.Record{
			Entity: "yelp/cheap-ch", Kind: interaction.VisitKind,
			Start: simclock.Epoch.Add(time.Duration(i) * 24 * time.Hour), Duration: time.Hour,
		})
	}
	// Identical global scores so only affinity separates them.
	results := []rspserver.WireResult{
		{Entity: rspserver.FromEntity(catalog[2]), Score: 3.0}, // thai
		{Entity: rspserver.FromEntity(catalog[1]), Score: 3.0}, // fancy chinese
		{Entity: rspserver.FromEntity(catalog[0]), Score: 3.0}, // cheap chinese
	}
	return a, results
}

func TestPersonalizePrefersHabitCategoryAndPrice(t *testing.T) {
	a, results := personalizeAgent(t)
	ranked := a.Personalize(results)
	if ranked[0].Entity.Key != "yelp/cheap-ch" {
		t.Fatalf("top = %s, want the habitual cheap chinese", ranked[0].Entity.Key)
	}
	// Fancy chinese gets category affinity but not price affinity, so it
	// should still beat thai (no affinity at all).
	if ranked[1].Entity.Key != "yelp/fancy-ch" {
		t.Fatalf("second = %s, want fancy chinese", ranked[1].Entity.Key)
	}
}

func TestPersonalizeRespectsLargeScoreGaps(t *testing.T) {
	a, results := personalizeAgent(t)
	// A globally far-better thai place must stay on top: affinity nudges
	// (≤0.6) must not override a full star of evidence.
	results[0].Score = 4.5
	ranked := a.Personalize(results)
	if ranked[0].Entity.Key != "yelp/thai" {
		t.Fatalf("top = %s, want the 4.5-score thai", ranked[0].Entity.Key)
	}
}

func TestPersonalizeNoHistoryIsStable(t *testing.T) {
	catalog := []*world.Entity{
		{ID: "a", Service: world.Yelp, Zip: "z", Category: "c", Name: "A"},
		{ID: "b", Service: world.Yelp, Zip: "z", Category: "c", Name: "B"},
	}
	srv, err := rspserver.New(rspserver.Config{Catalog: catalog, KeyBits: 512})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAgent(Config{DeviceID: "d", Seed: 1}, &LocalTransport{Server: srv})
	if err := a.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	results := []rspserver.WireResult{
		{Entity: rspserver.WireEntity{Key: "yelp/a", Category: "c"}, Score: 3.2},
		{Entity: rspserver.WireEntity{Key: "yelp/b", Category: "c"}, Score: 3.1},
	}
	ranked := a.Personalize(results)
	if ranked[0].Entity.Key != "yelp/a" || ranked[1].Entity.Key != "yelp/b" {
		t.Fatal("order changed without any local history")
	}
	if got := a.Personalize(nil); got != nil {
		t.Fatal("nil results not passed through")
	}
}

func TestHTTPTransportSearch(t *testing.T) {
	catalog := []*world.Entity{
		{ID: "a", Service: world.Yelp, Zip: "48104", Category: "chinese", Name: "A"},
		{ID: "b", Service: world.Yelp, Zip: "48104", Category: "chinese", Name: "B"},
	}
	srv, err := rspserver.New(rspserver.Config{Catalog: catalog, KeyBits: 512})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	tr := &HTTPTransport{BaseURL: ts.URL}
	results, err := tr.Search("yelp", "48104", "chinese", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
}
