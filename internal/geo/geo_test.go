package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistanceZero(t *testing.T) {
	p := Point{Lat: 42.28, Lon: -83.74}
	if d := Distance(p, p); d != 0 {
		t.Fatalf("Distance(p,p) = %v", d)
	}
}

func TestDistanceKnown(t *testing.T) {
	// One degree of latitude is about 111.2 km.
	a := Point{Lat: 40, Lon: -75}
	b := Point{Lat: 41, Lon: -75}
	d := Distance(a, b)
	if d < 110000 || d > 112500 {
		t.Fatalf("1 degree latitude = %v m", d)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{Lat: clampLat(lat1), Lon: clampLon(lon1)}
		b := Point{Lat: clampLat(lat2), Lon: clampLon(lon2)}
		d1 := Distance(a, b)
		d2 := Distance(b, a)
		return math.Abs(d1-d2) < 1e-6 && d1 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func clampLat(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 90)
}

func clampLon(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 180)
}

func TestOffsetRoundTrip(t *testing.T) {
	p := Point{Lat: 42.28, Lon: -83.74}
	q := Offset(p, 1000, 500)
	d := Distance(p, q)
	want := math.Sqrt(1000*1000 + 500*500)
	if math.Abs(d-want) > want*0.01 {
		t.Fatalf("offset distance = %v, want ~%v", d, want)
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{MinLat: 0, MinLon: 0, MaxLat: 1, MaxLon: 1}
	if !r.Contains(Point{0.5, 0.5}) {
		t.Error("center not contained")
	}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{1, 1}) {
		t.Error("edges not contained")
	}
	if r.Contains(Point{1.01, 0.5}) {
		t.Error("outside point contained")
	}
}

func TestRectAroundContainsCenter(t *testing.T) {
	p := Point{Lat: 42.28, Lon: -83.74}
	r := RectAround(p, 2000)
	if !r.Contains(p) {
		t.Fatal("RectAround does not contain its center")
	}
	c := r.Center()
	if Distance(p, c) > 50 {
		t.Fatalf("center drifted %v m", Distance(p, c))
	}
}

func TestIndexNearest(t *testing.T) {
	ix := NewIndex(500)
	base := Point{Lat: 42.28, Lon: -83.74}
	ix.Insert("far", Offset(base, 3000, 0))
	ix.Insert("near", Offset(base, 100, 0))
	ix.Insert("mid", Offset(base, 800, 0))
	got, ok := ix.Nearest(base, 5000)
	if !ok || got.ID != "near" {
		t.Fatalf("Nearest = %+v, %v", got, ok)
	}
	if math.Abs(got.Distance-100) > 2 {
		t.Fatalf("distance = %v, want ~100", got.Distance)
	}
}

func TestIndexNearestNoneWithinRadius(t *testing.T) {
	ix := NewIndex(500)
	base := Point{Lat: 42.28, Lon: -83.74}
	ix.Insert("far", Offset(base, 3000, 0))
	if _, ok := ix.Nearest(base, 1000); ok {
		t.Fatal("found neighbor outside radius")
	}
}

func TestIndexWithinSortedAndComplete(t *testing.T) {
	ix := NewIndex(250)
	base := Point{Lat: 42.28, Lon: -83.74}
	dists := []float64{50, 150, 350, 700, 1500}
	for i, d := range dists {
		ix.Insert(string(rune('a'+i)), Offset(base, d, 0))
	}
	got := ix.Within(base, 800)
	if len(got) != 4 {
		t.Fatalf("Within returned %d items, want 4", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Distance < got[i-1].Distance {
			t.Fatal("results not sorted by distance")
		}
	}
}

func TestIndexWithinCrossesCells(t *testing.T) {
	// Items in adjacent cells must still be found.
	ix := NewIndex(100)
	base := Point{Lat: 42.28, Lon: -83.74}
	ix.Insert("x", Offset(base, 0, 99))
	ix.Insert("y", Offset(base, 0, -99))
	if n := ix.CountWithin(base, 120); n != 2 {
		t.Fatalf("CountWithin = %d, want 2", n)
	}
}

func TestIndexEmptyAndNegativeRadius(t *testing.T) {
	ix := NewIndex(100)
	if got := ix.Within(Point{}, 100); got != nil {
		t.Fatalf("Within on empty index = %v", got)
	}
	ix.Insert("a", Point{})
	if got := ix.Within(Point{}, -1); got != nil {
		t.Fatalf("negative radius = %v", got)
	}
	if ix.Len() != 1 {
		t.Fatalf("Len = %d", ix.Len())
	}
}

func TestIndexDeterministicTieBreak(t *testing.T) {
	ix := NewIndex(100)
	p := Point{Lat: 42.28, Lon: -83.74}
	ix.Insert("b", p)
	ix.Insert("a", p)
	got, ok := ix.Nearest(p, 100)
	if !ok || got.ID != "a" {
		t.Fatalf("tie break = %+v", got)
	}
}

func TestNewIndexPanicsOnBadCell(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewIndex(0)
}
