package geo_test

import (
	"fmt"

	"opinions/internal/geo"
)

// Resolve a location sample against a small POI index — the core of
// the client's map-location-to-restaurant step.
func Example() {
	index := geo.NewIndex(250)
	restaurant := geo.Point{Lat: 42.280, Lon: -83.740}
	index.Insert("yelp/golden-wok", restaurant)
	index.Insert("yelp/far-away", geo.Offset(restaurant, 5000, 0))

	// A GPS fix ~40 m from the restaurant resolves to it.
	fix := geo.Offset(restaurant, 40, 0)
	nearest, ok := index.Nearest(fix, 100)
	fmt.Println(ok, nearest.ID)

	// The effort feature: distance from home to the restaurant.
	home := geo.Offset(restaurant, 2000, 1000)
	fmt.Printf("%.0f m\n", geo.Distance(home, restaurant))
	// Output:
	// true yelp/golden-wok
	// 2236 m
}
