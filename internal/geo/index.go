package geo

import (
	"math"
	"sort"
)

// Index is a uniform-grid spatial index over identified points. It
// supports the two queries the RSP pipeline needs: the nearest item to a
// location sample (entity resolution) and all items within a radius
// (choice-set features, §4.1). The zero value is not usable; construct
// with NewIndex.
type Index struct {
	cellDeg float64
	cells   map[cellKey][]item
	n       int
}

type cellKey struct{ lat, lon int32 }

type item struct {
	id string
	pt Point
}

// Neighbor is one result of a proximity query.
type Neighbor struct {
	ID       string
	Point    Point
	Distance float64 // meters from the query point
}

// NewIndex returns an index whose grid cells are approximately
// cellMeters on a side. Typical use is cellMeters ≈ the largest radius
// queried. It panics if cellMeters <= 0.
func NewIndex(cellMeters float64) *Index {
	if cellMeters <= 0 {
		panic("geo: NewIndex with non-positive cell size")
	}
	// 1 degree latitude ≈ 111,320 m.
	return &Index{
		cellDeg: cellMeters / 111320,
		cells:   make(map[cellKey][]item),
	}
}

// Len returns the number of indexed items.
func (ix *Index) Len() int { return ix.n }

func (ix *Index) key(p Point) cellKey {
	return cellKey{
		lat: int32(math.Floor(p.Lat / ix.cellDeg)),
		lon: int32(math.Floor(p.Lon / ix.cellDeg)),
	}
}

// Insert adds an item with the given id at point p. Multiple items may
// share an id; the index does not deduplicate.
func (ix *Index) Insert(id string, p Point) {
	k := ix.key(p)
	ix.cells[k] = append(ix.cells[k], item{id: id, pt: p})
	ix.n++
}

// Within returns all items within radius meters of p, sorted by
// ascending distance (ties broken by id for determinism).
func (ix *Index) Within(p Point, radius float64) []Neighbor {
	if radius < 0 || ix.n == 0 {
		return nil
	}
	// The grid is indexed in degrees of latitude; near the poles a cell
	// covers less longitude, so widen the lon ring accordingly.
	ringLat := int32(math.Ceil(radius/111320/ix.cellDeg)) + 1
	cosLat := math.Cos(p.Lat * math.Pi / 180)
	if cosLat < 0.1 {
		cosLat = 0.1
	}
	ringLon := int32(math.Ceil(radius/(111320*cosLat)/ix.cellDeg)) + 1
	center := ix.key(p)
	var out []Neighbor
	for dLat := -ringLat; dLat <= ringLat; dLat++ {
		for dLon := -ringLon; dLon <= ringLon; dLon++ {
			k := cellKey{lat: center.lat + dLat, lon: center.lon + dLon}
			for _, it := range ix.cells[k] {
				d := Distance(p, it.pt)
				if d <= radius {
					out = append(out, Neighbor{ID: it.id, Point: it.pt, Distance: d})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Nearest returns the closest item to p within maxRadius meters and true,
// or a zero Neighbor and false if none exists. When several items tie, the
// smallest id wins, keeping resolution deterministic.
func (ix *Index) Nearest(p Point, maxRadius float64) (Neighbor, bool) {
	// Expand the search ring geometrically so the common case (a match in
	// the immediate cell neighborhood) stays cheap.
	for r := math.Min(maxRadius, 200.0); ; r *= 4 {
		if r > maxRadius {
			r = maxRadius
		}
		if res := ix.Within(p, r); len(res) > 0 {
			return res[0], true
		}
		if r >= maxRadius {
			return Neighbor{}, false
		}
	}
}

// CountWithin returns the number of items within radius meters of p.
func (ix *Index) CountWithin(p Point, radius float64) int {
	return len(ix.Within(p, radius))
}
