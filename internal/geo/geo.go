// Package geo provides the geometric substrate for the synthetic world:
// points on the earth, haversine distances, rectangular regions standing
// in for zip codes, and a uniform-grid spatial index used to resolve a
// device's location samples to nearby entities.
//
// The paper's client "map[s] location to restaurant" and its inference
// features include "the distance traveled by a user to visit a dentist"
// and "the number of other similar options" nearby (§4.1); all three need
// fast proximity queries, which Index provides.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean earth radius used by Distance.
const EarthRadiusMeters = 6371000

// Point is a position on the earth in degrees.
type Point struct {
	Lat float64
	Lon float64
}

// String renders the point as "lat,lon" with 6 decimal places.
func (p Point) String() string { return fmt.Sprintf("%.6f,%.6f", p.Lat, p.Lon) }

// Distance returns the haversine great-circle distance between a and b in
// meters.
func Distance(a, b Point) float64 {
	const degToRad = math.Pi / 180
	la1 := a.Lat * degToRad
	la2 := b.Lat * degToRad
	dLat := (b.Lat - a.Lat) * degToRad
	dLon := (b.Lon - a.Lon) * degToRad
	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLon / 2)
	h := s1*s1 + math.Cos(la1)*math.Cos(la2)*s2*s2
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusMeters * math.Asin(math.Sqrt(h))
}

// Offset returns the point reached by moving dNorth meters north and
// dEast meters east of p, using a local flat-earth approximation that is
// accurate for the city-scale distances in this repository.
func Offset(p Point, dNorth, dEast float64) Point {
	const degToRad = math.Pi / 180
	dLat := dNorth / EarthRadiusMeters / degToRad
	dLon := dEast / (EarthRadiusMeters * math.Cos(p.Lat*degToRad)) / degToRad
	return Point{Lat: p.Lat + dLat, Lon: p.Lon + dLon}
}

// Rect is an axis-aligned region in degrees, used to model the area a zip
// code covers.
type Rect struct {
	MinLat, MinLon float64
	MaxLat, MaxLon float64
}

// Contains reports whether p lies in r (inclusive on all edges).
func (r Rect) Contains(p Point) bool {
	return p.Lat >= r.MinLat && p.Lat <= r.MaxLat &&
		p.Lon >= r.MinLon && p.Lon <= r.MaxLon
}

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{Lat: (r.MinLat + r.MaxLat) / 2, Lon: (r.MinLon + r.MaxLon) / 2}
}

// RectAround returns a Rect approximately centered on p whose half-width
// and half-height are radius meters.
func RectAround(p Point, radius float64) Rect {
	ne := Offset(p, radius, radius)
	sw := Offset(p, -radius, -radius)
	return Rect{MinLat: sw.Lat, MinLon: sw.Lon, MaxLat: ne.Lat, MaxLon: ne.Lon}
}
