package geo

import (
	"fmt"
	"testing"
)

func benchIndex(n int) (*Index, []Point) {
	ix := NewIndex(250)
	base := Point{Lat: 42.28, Lon: -83.74}
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		p := Offset(base, float64((i*131)%8000)-4000, float64((i*257)%8000)-4000)
		pts[i] = p
		ix.Insert(fmt.Sprintf("e%d", i), p)
	}
	return ix, pts
}

func BenchmarkDistance(b *testing.B) {
	a := Point{Lat: 42.28, Lon: -83.74}
	c := Point{Lat: 42.30, Lon: -83.70}
	for i := 0; i < b.N; i++ {
		Distance(a, c)
	}
}

func BenchmarkIndexInsert(b *testing.B) {
	base := Point{Lat: 42.28, Lon: -83.74}
	ix := NewIndex(250)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Insert("e", Offset(base, float64(i%8000), float64(i%8000)))
	}
}

func BenchmarkIndexNearest(b *testing.B) {
	ix, pts := benchIndex(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Nearest(pts[i%len(pts)], 1000)
	}
}

func BenchmarkIndexWithin(b *testing.B) {
	ix, pts := benchIndex(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Within(pts[i%len(pts)], 500)
	}
}
