// Package fraud implements §4.3: detecting fake activity aimed at
// manufacturing implicit recommendations.
//
// The defense is the one the paper prescribes: "since the history of
// interactions for every (user, entity) pair is stored on an RSP's
// servers, it can merge these individual histories to generate a profile
// of the typical user" and then discard "interaction histories that
// significantly deviate from the activity patterns of the typical user."
//
// A Profile captures quantile envelopes of inter-interaction gaps,
// interaction durations, and daily intensity across the honest
// population; Score measures how far one history falls outside the
// envelope; a Detector flags histories above a threshold. The package
// also ships the attack generators used by experiment E3 — the paper's
// own examples: back-to-back phone calls to an electrician, an employee
// clocking daily presence at a restaurant, and the costly "mimic" attack
// that spaces fake visits like a real patron (which the paper concedes
// raises attacker cost rather than eliminating fraud).
package fraud

import (
	"math"
	"sort"

	"opinions/internal/history"
	"opinions/internal/interaction"
	"opinions/internal/stats"
)

// Profile is the typical-user activity envelope, built by merging the
// anonymous histories of (assumed mostly honest) users.
//
// The profile must survive pollution: attackers contribute histories to
// the very store it is built from. Two defenses bound their influence:
// each history contributes at most profileCapPerHistory samples per
// statistic, and the envelope is a median ± k·MAD band computed in log
// space — median and MAD have a 50% breakdown point, so even a large
// attacker minority cannot drag the envelope around its own behaviour.
type Profile struct {
	// GapLo/GapHi bound typical inter-interaction gaps in hours; GapMed
	// is the median.
	GapLo, GapMed, GapHi float64
	// VisitMinLo/Hi bound typical visit durations in minutes.
	VisitMinLo, VisitMinHi float64
	// CallSecLo/Hi bound typical call durations in seconds.
	CallSecLo, CallSecHi float64
	// MaxPerDayHi bounds typical interactions per day within one
	// history.
	MaxPerDayHi float64
	// N is the number of histories the profile was built from.
	N int
}

// profileCapPerHistory bounds one history's influence on the profile.
const profileCapPerHistory = 12

// envelopeK is the robust-z half-width of the envelope.
const envelopeK = 2.5

// BuildProfile merges histories into a typical-user profile. Histories
// with fewer than 2 records contribute durations but not gaps.
func BuildProfile(hists []*history.EntityHistory) *Profile {
	var gaps, visitMins, callSecs, perDayMax []float64
	for _, h := range hists {
		recs := append([]interaction.Record(nil), h.Records...)
		sort.Slice(recs, func(i, j int) bool { return recs[i].Start.Before(recs[j].Start) })
		days := map[string]int{}
		var g, v, c int
		for i, r := range recs {
			if i > 0 && g < profileCapPerHistory {
				gaps = append(gaps, r.Start.Sub(recs[i-1].Start).Hours())
				g++
			}
			switch r.Kind {
			case interaction.VisitKind:
				if v < profileCapPerHistory {
					visitMins = append(visitMins, r.Duration.Minutes())
					v++
				}
			case interaction.CallKind:
				if c < profileCapPerHistory {
					callSecs = append(callSecs, r.Duration.Seconds())
					c++
				}
			}
			days[r.Start.Format("2006-01-02")]++
		}
		maxDay := 0
		for _, n := range days {
			if n > maxDay {
				maxDay = n
			}
		}
		if maxDay > 0 {
			perDayMax = append(perDayMax, float64(maxDay))
		}
	}
	p := &Profile{N: len(hists)}
	p.GapLo, p.GapHi = logEnvelope(gaps, envelopeK)
	p.GapMed = med(gaps)
	p.VisitMinLo, p.VisitMinHi = logEnvelope(visitMins, envelopeK)
	p.CallSecLo, p.CallSecHi = logEnvelope(callSecs, envelopeK)
	_, p.MaxPerDayHi = logEnvelope(perDayMax, envelopeK)
	return p
}

func med(xs []float64) float64 {
	v, err := stats.Median(xs)
	if err != nil {
		return 0
	}
	return v
}

// logEnvelope returns [exp(m−k·s), exp(m+k·s)] where m is the median of
// log(x) and s the normal-consistent MAD of log(x). A floor on s keeps
// degenerate (near-constant) samples from producing a zero-width band.
func logEnvelope(xs []float64, k float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	logs := make([]float64, len(xs))
	for i, x := range xs {
		if x < 1e-6 {
			x = 1e-6
		}
		logs[i] = math.Log(x)
	}
	m := med(logs)
	dev := make([]float64, len(logs))
	for i, l := range logs {
		dev[i] = math.Abs(l - m)
	}
	s := 1.4826 * med(dev)
	if s < 0.25 {
		s = 0.25
	}
	return math.Exp(m - k*s), math.Exp(m + k*s)
}

// Score returns an anomaly score ≥ 0 for one history under the profile:
// 0 means entirely typical; each unit roughly means one strong
// deviation. Histories too short to judge score 0 — the paper notes
// such histories "will have limited influence on others" anyway.
func (p *Profile) Score(h *history.EntityHistory) float64 {
	recs := append([]interaction.Record(nil), h.Records...)
	if len(recs) < 3 {
		return 0
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Start.Before(recs[j].Start) })

	var score float64

	// Gap violations: fraction of gaps implausibly small or large.
	var gaps []float64
	days := map[string]int{}
	for i, r := range recs {
		if i > 0 {
			gaps = append(gaps, r.Start.Sub(recs[i-1].Start).Hours())
		}
		days[r.Start.Format("2006-01-02")]++
	}
	if len(gaps) > 0 && p.GapHi > p.GapLo {
		bad := 0
		for _, g := range gaps {
			if g < p.GapLo || g > p.GapHi {
				bad++
			}
		}
		score += 3 * float64(bad) / float64(len(gaps))
	}

	// Duration violations, per kind.
	var visitBad, visitN, callBad, callN int
	for _, r := range recs {
		switch r.Kind {
		case interaction.VisitKind:
			visitN++
			m := r.Duration.Minutes()
			if m < p.VisitMinLo || m > p.VisitMinHi {
				visitBad++
			}
		case interaction.CallKind:
			callN++
			s := r.Duration.Seconds()
			if s < p.CallSecLo || s > p.CallSecHi {
				callBad++
			}
		}
	}
	if visitN > 0 {
		score += 2 * float64(visitBad) / float64(visitN)
	}
	if callN > 0 {
		score += 2 * float64(callBad) / float64(callN)
	}

	// Intensity: many interactions crammed into single days.
	maxDay := 0
	for _, n := range days {
		if n > maxDay {
			maxDay = n
		}
	}
	if p.MaxPerDayHi > 0 && float64(maxDay) > p.MaxPerDayHi {
		score += math.Log2(float64(maxDay) / p.MaxPerDayHi)
	}

	return score
}

// Detector flags histories whose anomaly score exceeds Threshold.
type Detector struct {
	Profile   *Profile
	Threshold float64
}

// NewDetector returns a detector with the default threshold of 1.5 —
// roughly "more than one strong deviation and a half".
func NewDetector(p *Profile) *Detector { return &Detector{Profile: p, Threshold: 1.5} }

// Flag reports whether the history should be discarded before
// aggregation.
func (d *Detector) Flag(h *history.EntityHistory) bool {
	thr := d.Threshold
	if thr <= 0 {
		thr = 1.5
	}
	return d.Profile.Score(h) > thr
}

// Filter partitions histories into kept and discarded.
func (d *Detector) Filter(hists []*history.EntityHistory) (kept, discarded []*history.EntityHistory) {
	for _, h := range hists {
		if d.Flag(h) {
			discarded = append(discarded, h)
		} else {
			kept = append(kept, h)
		}
	}
	return kept, discarded
}
