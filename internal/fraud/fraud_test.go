package fraud

import (
	"fmt"
	"testing"
	"time"

	"opinions/internal/history"
	"opinions/internal/interaction"
	"opinions/internal/stats"
)

var t0 = time.Date(2016, 2, 1, 12, 0, 0, 0, time.UTC)

// honestHistory fabricates a plausible patron: visits every 3–15 days,
// 30–110 minutes each, occasional 1–4 minute calls.
func honestHistory(rng *stats.RNG, id, entity string, n int) *history.EntityHistory {
	h := &history.EntityHistory{AnonID: id, Entity: entity}
	cur := t0.Add(time.Duration(rng.Intn(96)) * time.Hour)
	for i := 0; i < n; i++ {
		h.Records = append(h.Records, interaction.Record{
			Entity: entity, Kind: interaction.VisitKind,
			Start:        cur,
			Duration:     time.Duration(30+rng.Intn(80)) * time.Minute,
			DistanceFrom: 500 + rng.Float64()*4000,
		})
		if rng.Bool(0.25) {
			h.Records = append(h.Records, interaction.Record{
				Entity: entity, Kind: interaction.CallKind,
				Start:    cur.Add(-48 * time.Hour),
				Duration: time.Duration(60+rng.Intn(180)) * time.Second,
			})
		}
		cur = cur.Add(time.Duration(3+rng.Intn(12)) * 24 * time.Hour)
	}
	return h
}

func honestPopulation(rng *stats.RNG, n int) []*history.EntityHistory {
	out := make([]*history.EntityHistory, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, honestHistory(rng, fmt.Sprintf("h%d", i), "yelp/e", 2+rng.Intn(8)))
	}
	return out
}

func TestBuildProfileSane(t *testing.T) {
	rng := stats.NewRNG(1)
	p := BuildProfile(honestPopulation(rng, 200))
	if p.N != 200 {
		t.Fatalf("N = %d", p.N)
	}
	if p.GapLo <= 0 || p.GapHi <= p.GapLo {
		t.Fatalf("gap envelope = [%v, %v]", p.GapLo, p.GapHi)
	}
	// The robust envelope extends beyond the honest sample range (30–110
	// min) by design; it must bracket it without being absurdly wide.
	if p.VisitMinLo > 30 || p.VisitMinLo < 5 {
		t.Fatalf("visit envelope lo = %v", p.VisitMinLo)
	}
	if p.VisitMinHi < 110 || p.VisitMinHi > 420 {
		t.Fatalf("visit envelope hi = %v", p.VisitMinHi)
	}
	if p.MaxPerDayHi <= 0 {
		t.Fatalf("MaxPerDayHi = %v", p.MaxPerDayHi)
	}
}

func TestHonestHistoriesScoreLow(t *testing.T) {
	rng := stats.NewRNG(2)
	pop := honestPopulation(rng, 300)
	p := BuildProfile(pop)
	d := NewDetector(p)
	flagged := 0
	for _, h := range pop {
		if d.Flag(h) {
			flagged++
		}
	}
	// False positive rate must be small.
	if frac := float64(flagged) / float64(len(pop)); frac > 0.08 {
		t.Fatalf("false positive rate = %v", frac)
	}
}

func TestCallSpamDetected(t *testing.T) {
	rng := stats.NewRNG(3)
	p := BuildProfile(honestPopulation(rng, 300))
	d := NewDetector(p)
	recs := CallSpam{}.Generate(rng, "yelp/e", t0)
	h := &history.EntityHistory{AnonID: "attacker", Entity: "yelp/e", Records: recs}
	if !d.Flag(h) {
		t.Fatalf("call-spam history not flagged; score = %v", p.Score(h))
	}
}

func TestEmployeeDetected(t *testing.T) {
	rng := stats.NewRNG(4)
	p := BuildProfile(honestPopulation(rng, 300))
	d := NewDetector(p)
	recs := Employee{}.Generate(rng, "yelp/e", t0)
	h := &history.EntityHistory{AnonID: "employee", Entity: "yelp/e", Records: recs}
	if !d.Flag(h) {
		t.Fatalf("employee history not flagged; score = %v", p.Score(h))
	}
}

func TestMimicEvadesButCosts(t *testing.T) {
	rng := stats.NewRNG(5)
	p := BuildProfile(honestPopulation(rng, 300))
	d := NewDetector(p)
	attack := Mimic{}
	recs := attack.Generate(rng, "yelp/e", t0)
	h := &history.EntityHistory{AnonID: "mimic", Entity: "yelp/e", Records: recs}
	if d.Flag(h) {
		t.Logf("note: mimic flagged with score %v (acceptable but unexpected)", p.Score(h))
	}
	// The point of §4.3: the surviving attack is expensive.
	mimicCost := attack.CostHours(recs)
	spam := CallSpam{}
	spamCost := spam.CostHours(spam.Generate(rng, "yelp/e", t0))
	if mimicCost < 5 {
		t.Fatalf("mimic cost = %v hours, implausibly cheap", mimicCost)
	}
	if mimicCost <= spamCost*10 {
		t.Fatalf("mimic cost %v not dramatically above spam cost %v", mimicCost, spamCost)
	}
}

func TestProfilePoisoningResistance(t *testing.T) {
	// A coordinated gang of employee attackers (≈12% of histories, far
	// more records each than honest users) must not shift the envelope
	// enough to whitelist themselves: the per-history contribution cap
	// bounds their influence on the merged profile.
	rng := stats.NewRNG(11)
	pop := honestPopulation(rng, 300)
	var fakes []*history.EntityHistory
	for i := 0; i < 40; i++ {
		fakes = append(fakes, &history.EntityHistory{
			AnonID: fmt.Sprintf("emp%d", i), Entity: "yelp/e",
			Records: Employee{}.Generate(rng, "yelp/e", t0),
		})
	}
	all := append(append([]*history.EntityHistory{}, pop...), fakes...)
	d := NewDetector(BuildProfile(all))
	caught := 0
	for _, f := range fakes {
		if d.Flag(f) {
			caught++
		}
	}
	if frac := float64(caught) / float64(len(fakes)); frac < 0.8 {
		t.Fatalf("only %.0f%% of poisoning employees caught", frac*100)
	}
}

func TestShortHistoryNotJudged(t *testing.T) {
	rng := stats.NewRNG(6)
	p := BuildProfile(honestPopulation(rng, 100))
	h := &history.EntityHistory{AnonID: "x", Entity: "yelp/e", Records: []interaction.Record{
		{Entity: "yelp/e", Kind: interaction.CallKind, Start: t0, Duration: time.Second},
		{Entity: "yelp/e", Kind: interaction.CallKind, Start: t0.Add(time.Minute), Duration: time.Second},
	}}
	if s := p.Score(h); s != 0 {
		t.Fatalf("2-record history scored %v, want 0 (too short to judge)", s)
	}
}

func TestFilterPartitions(t *testing.T) {
	rng := stats.NewRNG(7)
	pop := honestPopulation(rng, 100)
	p := BuildProfile(pop)
	d := NewDetector(p)
	spamRecs := CallSpam{}.Generate(rng, "yelp/e", t0)
	attacker := &history.EntityHistory{AnonID: "attacker", Entity: "yelp/e", Records: spamRecs}
	all := append(append([]*history.EntityHistory{}, pop...), attacker)
	kept, discarded := d.Filter(all)
	if len(kept)+len(discarded) != len(all) {
		t.Fatal("filter lost histories")
	}
	foundAttacker := false
	for _, h := range discarded {
		if h.AnonID == "attacker" {
			foundAttacker = true
		}
	}
	if !foundAttacker {
		t.Fatal("attacker survived the filter")
	}
}

func TestDetectorDefaultThreshold(t *testing.T) {
	rng := stats.NewRNG(8)
	p := BuildProfile(honestPopulation(rng, 50))
	d := &Detector{Profile: p} // zero threshold → default
	h := honestHistory(rng, "h", "yelp/e", 5)
	_ = d.Flag(h) // must not panic; behaviour covered above
}

func TestInjectAttack(t *testing.T) {
	rng := stats.NewRNG(9)
	store := history.NewServerStore()
	id, recs, err := InjectAttack(store, CallSpam{Calls: 5}, rng, "yelp/e", []byte("attacker-ru"), t0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("generated %d records", len(recs))
	}
	hists := store.ByEntity("yelp/e")
	if len(hists) != 1 || hists[0].AnonID != id || len(hists[0].Records) != 5 {
		t.Fatalf("store state wrong: %d histories", len(hists))
	}
}

func TestAttackNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range AllAttacks() {
		if seen[a.Name()] {
			t.Fatalf("duplicate attack name %s", a.Name())
		}
		seen[a.Name()] = true
	}
}

func TestAttackDefaults(t *testing.T) {
	rng := stats.NewRNG(10)
	if got := len(CallSpam{}.Generate(rng, "e", t0)); got != 12 {
		t.Fatalf("CallSpam default = %d", got)
	}
	if got := len(Employee{}.Generate(rng, "e", t0)); got != 30 {
		t.Fatalf("Employee default = %d", got)
	}
	if got := len(Mimic{}.Generate(rng, "e", t0)); got != 6 {
		t.Fatalf("Mimic default = %d", got)
	}
	if (Employee{}).CostHours(nil) != 0 {
		t.Fatal("employee marginal cost should be 0")
	}
}
