package fraud

import (
	"time"

	"opinions/internal/history"
	"opinions/internal/interaction"
	"opinions/internal/stats"
)

// Attack generates a fraudulent interaction history targeting an entity.
// Implementations are the paper's §4.3 examples.
type Attack interface {
	// Name identifies the attack in experiment output.
	Name() string
	// Generate returns the fake history's records starting at start.
	Generate(rng *stats.RNG, entityKey string, start time.Time) []interaction.Record
	// CostHours estimates the real-world time the attacker must invest
	// to produce the records — the currency §4.3 argues the defense
	// raises.
	CostHours(recs []interaction.Record) float64
}

// CallSpam is "a user could simply make several back-to-back phone calls
// to the electrician, hanging up immediately after calling" (§4.3).
type CallSpam struct {
	// Calls is how many calls to fake (default 12).
	Calls int
}

// Name implements Attack.
func (CallSpam) Name() string { return "call-spam" }

// Generate implements Attack.
func (a CallSpam) Generate(rng *stats.RNG, entityKey string, start time.Time) []interaction.Record {
	n := a.Calls
	if n <= 0 {
		n = 12
	}
	out := make([]interaction.Record, 0, n)
	cur := start
	for i := 0; i < n; i++ {
		out = append(out, interaction.Record{
			Entity: entityKey, Kind: interaction.CallKind,
			Start:    cur,
			Duration: time.Duration(2+rng.Intn(8)) * time.Second, // hang up immediately
		})
		cur = cur.Add(time.Duration(30+rng.Intn(90)) * time.Second)
	}
	return out
}

// CostHours implements Attack: spam calls are nearly free.
func (CallSpam) CostHours(recs []interaction.Record) float64 {
	var d time.Duration
	for _, r := range recs {
		d += r.Duration
	}
	return d.Hours() + float64(len(recs))*30/3600 // dialing overhead
}

// Employee is "any employee at a restaurant can use his presence at the
// restaurant daily as evidence of his approval" (§4.3).
type Employee struct {
	// Days of daily presence to fake (default 30).
	Days int
}

// Name implements Attack.
func (Employee) Name() string { return "employee" }

// Generate implements Attack.
func (a Employee) Generate(rng *stats.RNG, entityKey string, start time.Time) []interaction.Record {
	days := a.Days
	if days <= 0 {
		days = 30
	}
	out := make([]interaction.Record, 0, days)
	for d := 0; d < days; d++ {
		arrive := start.AddDate(0, 0, d).Add(time.Duration(9*60+rng.Intn(30)) * time.Minute)
		out = append(out, interaction.Record{
			Entity: entityKey, Kind: interaction.VisitKind,
			Start:    arrive,
			Duration: time.Duration(7*60+rng.Intn(120)) * time.Minute, // a shift
			// The commute is short and constant; no dining effort.
			DistanceFrom: 500 + rng.Float64()*200,
		})
	}
	return out
}

// CostHours implements Attack: the employee is there anyway, so the
// *marginal* cost is zero; we report it as such.
func (Employee) CostHours([]interaction.Record) float64 { return 0 }

// Mimic is the concerted attacker the paper concedes can survive: fake
// visits "appropriately spaced apart and of reasonable duration" — e.g.
// being "at the dentist's office for reasonable periods of time over
// several years." Detection is not expected; the point is the cost.
type Mimic struct {
	// Visits to fake (default 6).
	Visits int
	// MeanGapDays between fake visits (default 12).
	MeanGapDays float64
}

// Name implements Attack.
func (Mimic) Name() string { return "mimic" }

// Generate implements Attack.
func (a Mimic) Generate(rng *stats.RNG, entityKey string, start time.Time) []interaction.Record {
	n := a.Visits
	if n <= 0 {
		n = 6
	}
	gap := a.MeanGapDays
	if gap <= 0 {
		gap = 12
	}
	out := make([]interaction.Record, 0, n)
	cur := start
	for i := 0; i < n; i++ {
		out = append(out, interaction.Record{
			Entity: entityKey, Kind: interaction.VisitKind,
			Start:        cur,
			Duration:     time.Duration(45+rng.Intn(45)) * time.Minute,
			DistanceFrom: 1500 + rng.Float64()*4000,
		})
		cur = cur.Add(time.Duration((gap*0.6 + rng.Float64()*gap*0.8) * 24 * float64(time.Hour)))
	}
	return out
}

// CostHours implements Attack: the attacker must actually be present for
// every visit, plus travel.
func (Mimic) CostHours(recs []interaction.Record) float64 {
	var h float64
	for _, r := range recs {
		h += r.Duration.Hours()
		h += (r.DistanceFrom / 1000) / 30 * 2 // 30 km/h, round trip
	}
	return h
}

// AllAttacks returns the §4.3 attack suite.
func AllAttacks() []Attack { return []Attack{CallSpam{}, Employee{}, Mimic{}} }

// InjectAttack fabricates a fraudulent anonymous history for an entity
// and appends it to the store, returning its anonymous ID so experiments
// can score detection.
func InjectAttack(store *history.ServerStore, attack Attack, rng *stats.RNG, entityKey string, deviceSecret []byte, start time.Time) (string, []interaction.Record, error) {
	id := history.AnonID(deviceSecret, entityKey)
	recs := attack.Generate(rng, entityKey, start)
	for _, r := range recs {
		if err := store.Append(id, entityKey, r); err != nil {
			return "", nil, err
		}
	}
	return id, recs, nil
}
