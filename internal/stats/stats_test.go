package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("Summarize(nil) err = %v, want ErrEmpty", err)
	}
}

func TestSummarizeBasics(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("bad extremes: %+v", s)
	}
	if s.Mean != 3 || s.Median != 3 {
		t.Fatalf("mean/median: %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("stddev = %v, want sqrt(2.5)", s.Stddev)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	for _, tc := range []struct {
		q, want float64
	}{
		{0, 10}, {1, 40}, {0.5, 25}, {0.25, 17.5},
	} {
		got, err := Quantile(xs, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestQuantileRejectsBadQ(t *testing.T) {
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := Quantile([]float64{1}, q); err == nil {
			t.Errorf("Quantile(q=%v) did not error", q)
		}
	}
}

func TestQuantileSingleElement(t *testing.T) {
	got, err := Quantile([]float64{7}, 0.99)
	if err != nil || got != 7 {
		t.Fatalf("Quantile single = %v, %v", got, err)
	}
}

func TestMedianOddEven(t *testing.T) {
	if m, _ := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v", m)
	}
	if m, _ := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
}

func TestCDFShape(t *testing.T) {
	pts := CDF([]float64{1, 1, 2, 5})
	if len(pts) != 3 {
		t.Fatalf("CDF has %d points, want 3 distinct", len(pts))
	}
	if pts[0].Value != 1 || math.Abs(pts[0].Fraction-0.5) > 1e-12 {
		t.Fatalf("first point %+v", pts[0])
	}
	last := pts[len(pts)-1]
	if last.Fraction != 1 {
		t.Fatalf("last fraction = %v, want 1", last.Fraction)
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(xs []float64) bool {
		pts := CDF(xs)
		for i := 1; i < len(pts); i++ {
			if pts[i].Value <= pts[i-1].Value || pts[i].Fraction < pts[i-1].Fraction {
				return false
			}
		}
		return len(xs) == 0 || pts[len(pts)-1].Fraction == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFAt(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := CDFAt(xs, 2.5); got != 0.5 {
		t.Fatalf("CDFAt = %v", got)
	}
	if got := CDFAt(nil, 1); got != 0 {
		t.Fatalf("CDFAt(nil) = %v", got)
	}
}

func TestFractionAtLeast(t *testing.T) {
	xs := []float64{10, 60, 70}
	if got := FractionAtLeast(xs, 50); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("FractionAtLeast = %v", got)
	}
}

func TestKSIdenticalIsZero(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	d, err := KS(a, a)
	if err != nil || d != 0 {
		t.Fatalf("KS(a,a) = %v, %v", d, err)
	}
}

func TestKSDisjointIsOne(t *testing.T) {
	d, err := KS([]float64{1, 2}, []float64{10, 20})
	if err != nil || math.Abs(d-1) > 1e-12 {
		t.Fatalf("KS disjoint = %v, %v", d, err)
	}
}

func TestKSSymmetricProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		d1, err1 := KS(a, b)
		d2, err2 := KS(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(d1-d2) < 1e-12 && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	r, err := Pearson(xs, ys)
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Fatalf("Pearson = %v, %v", r, err)
	}
	neg := []float64{8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if math.Abs(r+1) > 1e-12 {
		t.Fatalf("negative Pearson = %v", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch not rejected")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("zero variance not rejected")
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram([]float64{0, 0.5, 1, 1.5, 2}, 0, 2, 2)
	// Bins: [0,1) and [1,2]; 2 falls in the closed last bin.
	if h.Counts[0] != 2 || h.Counts[1] != 3 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.Underflow != 0 || h.Overflow != 0 {
		t.Fatalf("under/over = %d/%d", h.Underflow, h.Overflow)
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram([]float64{-1, 3}, 0, 2, 2)
	if h.Underflow != 1 || h.Overflow != 1 {
		t.Fatalf("under/over = %d/%d", h.Underflow, h.Overflow)
	}
	if h.Total() != 0 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestHistogramConservesSamples(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		h := NewHistogram(xs, -100, 100, 13)
		return h.Total()+h.Underflow+h.Overflow == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogHistogramEdges(t *testing.T) {
	h := NewLogHistogram([]float64{1, 10, 100, 1000}, 1, 1024, 10)
	if h.Edges[0] != 1 || h.Edges[len(h.Edges)-1] != 1024 {
		t.Fatalf("edges = %v", h.Edges)
	}
	if h.Total() != 4 {
		t.Fatalf("total = %d", h.Total())
	}
	for i := 1; i < len(h.Edges); i++ {
		if h.Edges[i] <= h.Edges[i-1] {
			t.Fatalf("edges not increasing: %v", h.Edges)
		}
	}
}

func TestHistogramFractionsSumToOne(t *testing.T) {
	h := NewHistogram([]float64{0.1, 0.4, 0.9, 1.2}, 0, 2, 4)
	var sum float64
	for _, f := range h.Fractions() {
		sum += f
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("fractions sum = %v", sum)
	}
}

func TestIntCounts(t *testing.T) {
	m := IntCounts([]float64{1, 1.2, 2, 2.6})
	if m[1] != 2 || m[2] != 1 || m[3] != 1 {
		t.Fatalf("counts = %v", m)
	}
}

func TestMAEAndRMSE(t *testing.T) {
	pred := []float64{1, 2, 3}
	truth := []float64{2, 2, 5}
	mae, err := MAE(pred, truth)
	if err != nil || math.Abs(mae-1) > 1e-12 {
		t.Fatalf("MAE = %v, %v", mae, err)
	}
	rmse, err := RMSE(pred, truth)
	want := math.Sqrt((1.0 + 0 + 4) / 3)
	if err != nil || math.Abs(rmse-want) > 1e-12 {
		t.Fatalf("RMSE = %v, %v", rmse, err)
	}
	if _, err := MAE([]float64{1}, []float64{}); err == nil {
		t.Error("MAE length mismatch not rejected")
	}
}

func TestQuantileMatchesSortedExtremes(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		lo, _ := Quantile(xs, 0)
		hi, _ := Quantile(xs, 1)
		return lo == sorted[0] && hi == sorted[len(sorted)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
