package stats

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random source with samplers for the
// distributions this repository's synthetic workloads use. It wraps
// math/rand with an explicit seed so every experiment is reproducible.
//
// RNG is not safe for concurrent use; give each goroutine its own via
// Split.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns an RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent RNG from this one, keyed by label, so
// sub-simulations stay deterministic regardless of how much randomness
// their siblings consume.
//
// Split consumes state from the parent, so the derived stream depends
// on the order of Split calls. When a stream must be reconstructible
// from the seed and labels alone — the streaming world's per-user
// regenerability contract — use Derive instead.
func (g *RNG) Split(label string) *RNG {
	var h int64 = 1469598103934665603
	for i := 0; i < len(label); i++ {
		h ^= int64(label[i])
		h *= 1099511628211
	}
	return NewRNG(h ^ g.r.Int63())
}

// DeriveSeed hashes a base seed and a label path into an independent
// seed. Unlike Split it is a pure function — no parent state is
// consumed — so DeriveSeed(s, "user", "17") is the same value no matter
// how many sibling streams were derived before it, in what order, or in
// which process. This is the primitive behind O(1)-memory streaming
// generation: any user, day, or shard is regenerable in isolation.
func DeriveSeed(seed int64, labels ...string) int64 {
	// FNV-1a over the seed's 8 bytes, then each label with a 0xFF
	// separator (0xFF never appears in UTF-8 text, so label boundaries
	// cannot collide: ("ab","c") hashes differently from ("a","bc")).
	const (
		offset64 = 1469598103934665603
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(seed >> (8 * i)))
		h *= prime64
	}
	for _, label := range labels {
		h ^= 0xFF
		h *= prime64
		for i := 0; i < len(label); i++ {
			h ^= uint64(label[i])
			h *= prime64
		}
	}
	return int64(h)
}

// Derive returns an RNG seeded with DeriveSeed(seed, labels...): a
// stream that is a pure function of its seed and label path.
func Derive(seed int64, labels ...string) *RNG {
	return NewRNG(DeriveSeed(seed, labels...))
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Normal returns a sample from N(mean, sd²).
func (g *RNG) Normal(mean, sd float64) float64 {
	return mean + sd*g.r.NormFloat64()
}

// LogNormal returns a sample whose logarithm is N(mu, sigma²). Review
// counts and interaction counts on real services are approximately
// log-normal with a heavy right tail, which is why Figure 1 in the paper
// uses log-scaled axes.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.r.NormFloat64())
}

// Exponential returns a sample from Exp(rate); the mean is 1/rate.
// It panics if rate <= 0.
func (g *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exponential with non-positive rate")
	}
	return g.r.ExpFloat64() / rate
}

// Pareto returns a sample from a Pareto distribution with minimum xm and
// shape alpha. It panics if xm <= 0 or alpha <= 0.
func (g *RNG) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("stats: Pareto needs positive xm and alpha")
	}
	u := 1 - g.r.Float64() // in (0, 1]
	return xm / math.Pow(u, 1/alpha)
}

// Zipf returns a sample in [1, n] from a Zipf distribution with exponent
// s ≥ 1. Rank 1 is the most likely outcome. It panics if n < 1.
func (g *RNG) Zipf(n int, s float64) int {
	if n < 1 {
		panic("stats: Zipf with n < 1")
	}
	z := rand.NewZipf(g.r, math.Max(s, 1.0001), 1, uint64(n-1))
	return int(z.Uint64()) + 1
}

// Poisson returns a sample from Poisson(lambda) using Knuth's method for
// small lambda and a normal approximation above 30.
func (g *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := g.Normal(lambda, math.Sqrt(lambda))
		if v < 0 {
			return 0
		}
		return int(math.Round(v))
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= g.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle randomly permutes n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Pick returns a uniformly random index weighted by weights; weights must
// be non-negative with a positive sum, otherwise Pick returns 0.
func (g *RNG) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := g.r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}
