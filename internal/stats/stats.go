// Package stats provides the small statistical toolkit used throughout
// the repository: empirical CDFs and quantiles, histograms with linear or
// logarithmic bins, correlation, Kolmogorov–Smirnov distance, streaming
// moments, and deterministic samplers for the heavy-tailed distributions
// that review counts and user activity follow.
//
// Everything here is pure computation over float64 slices; no package in
// this repository does statistics any other way, so experiment outputs
// are reproducible bit-for-bit given a seed.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by reductions that are undefined on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Summary holds the basic descriptive statistics of a sample.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	P25    float64
	P75    float64
	P90    float64
	P99    float64
	Stddev float64
}

// Summarize computes a Summary of xs. It returns ErrEmpty when xs is
// empty.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = quantileSorted(sorted, 0.5)
	s.P25 = quantileSorted(sorted, 0.25)
	s.P75 = quantileSorted(sorted, 0.75)
	s.P90 = quantileSorted(sorted, 0.90)
	s.P99 = quantileSorted(sorted, 0.99)
	return s, nil
}

// String renders the summary as a single human-readable line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3g p25=%.3g med=%.3g p75=%.3g p90=%.3g p99=%.3g max=%.3g mean=%.3g sd=%.3g",
		s.N, s.Min, s.P25, s.Median, s.P75, s.P90, s.P99, s.Max, s.Mean, s.Stddev)
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It returns ErrEmpty for empty
// input and an error for q outside [0, 1].
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v outside [0,1]", q)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}

// Median returns the median of xs, or ErrEmpty.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or ErrEmpty.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// CDFPoint is one point of an empirical CDF: Fraction of the sample is ≤
// Value.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// CDF computes the empirical cumulative distribution of xs, returning one
// point per distinct value in ascending order. The final point always has
// Fraction == 1.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var out []CDFPoint
	for i := 0; i < len(sorted); i++ {
		// Emit a point at the last occurrence of each distinct value so
		// Fraction is P(X <= v).
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] {
			continue
		}
		out = append(out, CDFPoint{Value: sorted[i], Fraction: float64(i+1) / n})
	}
	return out
}

// CDFAt evaluates the empirical CDF of xs at v: the fraction of samples ≤ v.
func CDFAt(xs []float64, v float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x <= v {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// FractionAtLeast returns the fraction of samples ≥ v.
func FractionAtLeast(xs []float64, v float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x >= v {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// KS returns the Kolmogorov–Smirnov distance between the empirical
// distributions of a and b: the maximum absolute difference between their
// CDFs. It returns ErrEmpty if either sample is empty.
func KS(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, ErrEmpty
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	var i, j int
	var d float64
	for i < len(sa) && j < len(sb) {
		var v float64
		if sa[i] <= sb[j] {
			v = sa[i]
		} else {
			v = sb[j]
		}
		for i < len(sa) && sa[i] <= v {
			i++
		}
		for j < len(sb) && sb[j] <= v {
			j++
		}
		fa := float64(i) / float64(len(sa))
		fb := float64(j) / float64(len(sb))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d, nil
}

// Pearson returns the Pearson correlation coefficient of the paired
// samples xs and ys. It returns an error if the lengths differ, the
// input is shorter than 2, or either sample has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, _ := Mean(xs)
	my, _ := Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Histogram is a binned count of a sample.
type Histogram struct {
	// Edges has len(Counts)+1 entries; bin i covers [Edges[i], Edges[i+1]).
	// The final bin is closed on the right.
	Edges  []float64
	Counts []int
	// Underflow and Overflow count samples outside [Edges[0], Edges[last]].
	Underflow int
	Overflow  int
}

// NewHistogram bins xs into nbins equal-width bins spanning [lo, hi].
// It panics if nbins < 1 or hi <= lo, which are programming errors.
func NewHistogram(xs []float64, lo, hi float64, nbins int) *Histogram {
	if nbins < 1 {
		panic("stats: NewHistogram with nbins < 1")
	}
	if hi <= lo {
		panic("stats: NewHistogram with hi <= lo")
	}
	h := &Histogram{
		Edges:  make([]float64, nbins+1),
		Counts: make([]int, nbins),
	}
	w := (hi - lo) / float64(nbins)
	for i := range h.Edges {
		h.Edges[i] = lo + w*float64(i)
	}
	h.Edges[nbins] = hi // avoid accumulation error on the last edge
	for _, x := range xs {
		h.Add(x)
	}
	return h
}

// NewLogHistogram bins positive xs into nbins log-spaced bins spanning
// [lo, hi]; lo must be > 0.
func NewLogHistogram(xs []float64, lo, hi float64, nbins int) *Histogram {
	if nbins < 1 {
		panic("stats: NewLogHistogram with nbins < 1")
	}
	if lo <= 0 || hi <= lo {
		panic("stats: NewLogHistogram needs 0 < lo < hi")
	}
	h := &Histogram{
		Edges:  make([]float64, nbins+1),
		Counts: make([]int, nbins),
	}
	llo, lhi := math.Log(lo), math.Log(hi)
	w := (lhi - llo) / float64(nbins)
	for i := range h.Edges {
		h.Edges[i] = math.Exp(llo + w*float64(i))
	}
	h.Edges[0] = lo
	h.Edges[nbins] = hi
	for _, x := range xs {
		h.Add(x)
	}
	return h
}

// Add counts one sample.
func (h *Histogram) Add(x float64) {
	n := len(h.Counts)
	if x < h.Edges[0] {
		h.Underflow++
		return
	}
	if x > h.Edges[n] {
		h.Overflow++
		return
	}
	// Binary search for the bin; the final edge closes the last bin.
	i := sort.SearchFloat64s(h.Edges, x)
	// SearchFloat64s returns the first index with Edges[i] >= x.
	if i < len(h.Edges) && h.Edges[i] == x {
		// x sits exactly on an edge: it belongs to the bin starting at x,
		// except the final edge which closes the last bin.
		if i == n {
			i = n - 1
		}
	} else {
		i--
	}
	if i < 0 {
		i = 0
	}
	h.Counts[i]++
}

// Total returns the number of in-range samples counted.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Fractions returns Counts normalized by Total. Bins of an empty
// histogram are all zero.
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	t := h.Total()
	if t == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(t)
	}
	return out
}

// IntCounts tallies non-negative integer observations (e.g. number of
// visits) into a map from value to count. Values are rounded to the
// nearest integer.
func IntCounts(xs []float64) map[int]int {
	m := make(map[int]int, len(xs))
	for _, x := range xs {
		m[int(math.Round(x))]++
	}
	return m
}

// MAE returns the mean absolute error between predictions and truth.
func MAE(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(pred), len(truth))
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - truth[i])
	}
	return s / float64(len(pred)), nil
}

// RMSE returns the root mean squared error between predictions and truth.
func RMSE(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(pred), len(truth))
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred))), nil
}
