package stats

import (
	"fmt"
	"math"
	"testing"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGSplitIndependentButDeterministic(t *testing.T) {
	mk := func() (*RNG, *RNG) {
		g := NewRNG(7)
		return g.Split("alpha"), g.Split("beta")
	}
	a1, b1 := mk()
	a2, b2 := mk()
	if a1.Float64() != a2.Float64() || b1.Float64() != b2.Float64() {
		t.Fatal("Split not deterministic")
	}
	// Different labels from the same parent state should not produce the
	// same stream (labels hash differently).
	g := NewRNG(7)
	x := g.Split("alpha")
	g2 := NewRNG(7)
	y := g2.Split("gamma")
	same := true
	for i := 0; i < 8; i++ {
		if x.Float64() != y.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different labels produced identical streams")
	}
}

func TestLogNormalPositive(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if v := g.LogNormal(2, 1.5); v <= 0 {
			t.Fatalf("LogNormal produced %v", v)
		}
	}
}

func TestLogNormalMedianNearExpMu(t *testing.T) {
	g := NewRNG(2)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = g.LogNormal(math.Log(8), 1.2)
	}
	med, _ := Median(xs)
	if med < 6 || med > 10 {
		t.Fatalf("median = %v, want near 8", med)
	}
}

func TestExponentialMean(t *testing.T) {
	g := NewRNG(3)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = g.Exponential(0.5) // mean 2
	}
	m, _ := Mean(xs)
	if m < 1.8 || m > 2.2 {
		t.Fatalf("mean = %v, want ~2", m)
	}
}

func TestExponentialPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewRNG(1).Exponential(0)
}

func TestParetoBounds(t *testing.T) {
	g := NewRNG(4)
	for i := 0; i < 1000; i++ {
		if v := g.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto below xm: %v", v)
		}
	}
}

func TestZipfRange(t *testing.T) {
	g := NewRNG(5)
	counts := make(map[int]int)
	for i := 0; i < 5000; i++ {
		v := g.Zipf(10, 1.3)
		if v < 1 || v > 10 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[1] <= counts[10] {
		t.Fatalf("Zipf not skewed: rank1=%d rank10=%d", counts[1], counts[10])
	}
}

func TestPoissonMean(t *testing.T) {
	g := NewRNG(6)
	for _, lambda := range []float64{0.5, 4, 50} {
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += float64(g.Poisson(lambda))
		}
		m := sum / n
		if math.Abs(m-lambda) > 0.1*lambda+0.1 {
			t.Fatalf("Poisson(%v) mean = %v", lambda, m)
		}
	}
	if v := g.Poisson(0); v != 0 {
		t.Fatalf("Poisson(0) = %d", v)
	}
}

func TestBoolProbability(t *testing.T) {
	g := NewRNG(7)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if g.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.22 || frac > 0.28 {
		t.Fatalf("Bool(0.25) hit rate = %v", frac)
	}
}

func TestPickRespectsWeights(t *testing.T) {
	g := NewRNG(8)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[g.Pick([]float64{1, 0, 3})]++
	}
	if counts[1] != 0 {
		t.Fatalf("picked zero-weight index %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}

func TestPickDegenerate(t *testing.T) {
	g := NewRNG(9)
	if got := g.Pick([]float64{0, 0}); got != 0 {
		t.Fatalf("Pick all-zero = %d", got)
	}
	if got := g.Pick([]float64{-1, -2}); got != 0 {
		t.Fatalf("Pick negative = %d", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := NewRNG(10)
	p := g.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
}

func TestDeriveSeedPureAndOrderIndependent(t *testing.T) {
	// Pure: same inputs, same seed — regardless of what else was derived.
	a := DeriveSeed(42, "user", "17")
	_ = DeriveSeed(42, "user", "16")
	_ = DeriveSeed(42, "day", "3", "u00017")
	b := DeriveSeed(42, "user", "17")
	if a != b {
		t.Fatal("DeriveSeed not pure")
	}
	// The derived RNG streams match too.
	x := Derive(42, "user", "17")
	y := Derive(42, "user", "17")
	for i := 0; i < 50; i++ {
		if x.Float64() != y.Float64() {
			t.Fatal("Derive streams diverged")
		}
	}
}

func TestDeriveSeedLabelBoundaries(t *testing.T) {
	// Concatenation across label boundaries must not collide.
	if DeriveSeed(1, "ab", "c") == DeriveSeed(1, "a", "bc") {
		t.Fatal("label boundary collision")
	}
	if DeriveSeed(1, "user") == DeriveSeed(1, "user", "") {
		t.Fatal("trailing empty label collides")
	}
	if DeriveSeed(1, "user", "1") == DeriveSeed(2, "user", "1") {
		t.Fatal("seed ignored")
	}
}

func TestDeriveSeedSpreads(t *testing.T) {
	// Nearby label values should produce visibly different streams.
	seen := make(map[int64]bool)
	for i := 0; i < 10000; i++ {
		s := DeriveSeed(7, "user", fmt.Sprintf("%d", i))
		if seen[s] {
			t.Fatalf("seed collision at %d", i)
		}
		seen[s] = true
	}
}
