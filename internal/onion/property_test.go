package onion

import (
	"bytes"
	"crypto/rand"
	"testing"
	"testing/quick"
)

// Property: any payload round-trips through any circuit length 1..4,
// and the onion never contains the plaintext payload (for payloads long
// enough that containment is meaningful).
func TestOnionRoundTripProperty(t *testing.T) {
	n, err := NewNetwork(4, rand.Reader, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := func(payload []byte, hopSeed uint8) bool {
		hops := int(hopSeed)%4 + 1
		var got []byte
		n.Exit = func(p []byte) error { got = append([]byte(nil), p...); return nil }
		circuit, err := n.PickCircuit(hops, rand.Reader)
		if err != nil {
			return false
		}
		onion, err := Wrap(circuit, payload, rand.Reader)
		if err != nil {
			return false
		}
		if len(payload) >= 8 && bytes.Contains(onion, payload) {
			return false
		}
		if err := n.Route(circuit[0].ID, onion); err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	cfg := &quick.Config{MaxCount: 40} // each check does real crypto
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: flipping any single byte of an onion makes the entry relay
// reject it.
func TestOnionTamperProperty(t *testing.T) {
	n, err := NewNetwork(2, rand.Reader, nil)
	if err != nil {
		t.Fatal(err)
	}
	dir := n.Directory()
	f := func(payload []byte, pos uint16, bit uint8) bool {
		onion, err := Wrap([]RelayInfo{dir[0], dir[1]}, payload, rand.Reader)
		if err != nil {
			return false
		}
		i := int(pos) % len(onion)
		onion[i] ^= 1 << (bit % 8)
		_, err = n.relays[dir[0].ID].Peel(onion)
		return err != nil
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
