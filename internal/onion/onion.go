// Package onion implements the anonymity-network substrate §4.2 assumes:
// "the underlying anonymity network ensures that any two anonymous
// channels are unlinkable."
//
// It is a deliberately small onion-routing layer in the Tor mold, built
// on stdlib crypto only: the client picks a circuit of relays, wraps the
// payload in one encryption layer per hop (ephemeral X25519 key
// agreement + AES-256-GCM), and each relay peels exactly one layer,
// learning only its predecessor and successor. The entry relay sees who
// is sending but not what or to where beyond the next hop; the exit
// relay sees the payload but not the sender. No single relay can link
// sender to payload.
//
// The upload discipline in package anonymity (per-entity channels,
// randomized delay) composes with this transport: the Mix decides *when*
// an upload leaves the device; a fresh onion circuit decides *how* it
// reaches the RSP.
package onion

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// RelayInfo is a relay's public directory entry.
type RelayInfo struct {
	ID     string
	PubKey *ecdh.PublicKey
}

// Relay is one onion router.
type Relay struct {
	ID   string
	priv *ecdh.PrivateKey
}

// NewRelay generates a relay with a fresh X25519 key.
func NewRelay(id string, rng io.Reader) (*Relay, error) {
	if rng == nil {
		rng = rand.Reader
	}
	priv, err := ecdh.X25519().GenerateKey(rng)
	if err != nil {
		return nil, fmt.Errorf("onion: generating relay key: %w", err)
	}
	return &Relay{ID: id, priv: priv}, nil
}

// Info returns the relay's directory entry.
func (r *Relay) Info() RelayInfo {
	return RelayInfo{ID: r.ID, PubKey: r.priv.PublicKey()}
}

// ExitID is the next-hop label marking the final layer: the peeled
// payload is for the destination service, not another relay.
const ExitID = "@exit"

// layer wire format (per hop):
//
//	[32B ephemeral X25519 pub][12B nonce][ciphertext]
//
// plaintext format inside:
//
//	[2B next-hop length][next-hop][inner bytes]

// Wrap builds the onion for payload over the circuit (first element =
// entry relay). The final layer's next-hop is ExitID.
func Wrap(circuit []RelayInfo, payload []byte, rng io.Reader) ([]byte, error) {
	if len(circuit) == 0 {
		return nil, errors.New("onion: empty circuit")
	}
	if rng == nil {
		rng = rand.Reader
	}
	inner := payload
	// Wrap from the exit inward.
	for i := len(circuit) - 1; i >= 0; i-- {
		next := ExitID
		if i < len(circuit)-1 {
			next = circuit[i+1].ID
		}
		var err error
		inner, err = seal(circuit[i].PubKey, next, inner, rng)
		if err != nil {
			return nil, err
		}
	}
	return inner, nil
}

func seal(pub *ecdh.PublicKey, nextHop string, inner []byte, rng io.Reader) ([]byte, error) {
	eph, err := ecdh.X25519().GenerateKey(rng)
	if err != nil {
		return nil, fmt.Errorf("onion: ephemeral key: %w", err)
	}
	shared, err := eph.ECDH(pub)
	if err != nil {
		return nil, fmt.Errorf("onion: key agreement: %w", err)
	}
	key := deriveKey(shared)
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := io.ReadFull(rng, nonce); err != nil {
		return nil, fmt.Errorf("onion: nonce: %w", err)
	}
	var pt bytes.Buffer
	var lenBuf [2]byte
	if len(nextHop) > 0xffff {
		return nil, errors.New("onion: next hop name too long")
	}
	binary.BigEndian.PutUint16(lenBuf[:], uint16(len(nextHop)))
	pt.Write(lenBuf[:])
	pt.WriteString(nextHop)
	pt.Write(inner)

	ct := gcm.Seal(nil, nonce, pt.Bytes(), eph.PublicKey().Bytes())
	var out bytes.Buffer
	out.Write(eph.PublicKey().Bytes())
	out.Write(nonce)
	out.Write(ct)
	return out.Bytes(), nil
}

// deriveKey expands the raw shared secret into an AES-256 key (HKDF
// reduced to a single HMAC extract-and-expand step, which is sound for
// one fixed-length output).
func deriveKey(shared []byte) []byte {
	mac := hmac.New(sha256.New, []byte("opinions-onion-v1"))
	mac.Write(shared)
	return mac.Sum(nil)
}

// Peeled is the result of removing one layer.
type Peeled struct {
	// NextHop is the relay ID to forward Inner to, or ExitID.
	NextHop string
	Inner   []byte
}

// ErrMalformed is returned for onions that cannot be parsed or
// authenticated at this relay.
var ErrMalformed = errors.New("onion: malformed or tampered layer")

// Peel removes this relay's layer.
func (r *Relay) Peel(onion []byte) (Peeled, error) {
	const pubLen = 32
	if len(onion) < pubLen+12+16 {
		return Peeled{}, ErrMalformed
	}
	ephPub, err := ecdh.X25519().NewPublicKey(onion[:pubLen])
	if err != nil {
		return Peeled{}, ErrMalformed
	}
	shared, err := r.priv.ECDH(ephPub)
	if err != nil {
		return Peeled{}, ErrMalformed
	}
	block, err := aes.NewCipher(deriveKey(shared))
	if err != nil {
		return Peeled{}, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return Peeled{}, err
	}
	nonce := onion[pubLen : pubLen+gcm.NonceSize()]
	ct := onion[pubLen+gcm.NonceSize():]
	pt, err := gcm.Open(nil, nonce, ct, onion[:pubLen])
	if err != nil {
		return Peeled{}, ErrMalformed
	}
	if len(pt) < 2 {
		return Peeled{}, ErrMalformed
	}
	hopLen := int(binary.BigEndian.Uint16(pt[:2]))
	if len(pt) < 2+hopLen {
		return Peeled{}, ErrMalformed
	}
	return Peeled{
		NextHop: string(pt[2 : 2+hopLen]),
		Inner:   pt[2+hopLen:],
	}, nil
}

// Network is an in-process relay mesh used by simulations and tests.
type Network struct {
	relays map[string]*Relay
	// Exit delivers fully peeled payloads to the destination service.
	Exit func(payload []byte) error
}

// NewNetwork creates a mesh of n relays.
func NewNetwork(n int, rng io.Reader, exit func([]byte) error) (*Network, error) {
	if n < 1 {
		return nil, errors.New("onion: need at least one relay")
	}
	net := &Network{relays: make(map[string]*Relay, n), Exit: exit}
	for i := 0; i < n; i++ {
		r, err := NewRelay(fmt.Sprintf("relay-%d", i), rng)
		if err != nil {
			return nil, err
		}
		net.relays[r.ID] = r
	}
	return net, nil
}

// Directory lists the mesh's relays in ID order.
func (n *Network) Directory() []RelayInfo {
	out := make([]RelayInfo, 0, len(n.relays))
	for i := 0; i < len(n.relays); i++ {
		id := fmt.Sprintf("relay-%d", i)
		out = append(out, n.relays[id].Info())
	}
	return out
}

// PickCircuit selects hops distinct relays uniformly at random.
func (n *Network) PickCircuit(hops int, rng io.Reader) ([]RelayInfo, error) {
	if hops < 1 || hops > len(n.relays) {
		return nil, fmt.Errorf("onion: cannot pick %d hops from %d relays", hops, len(n.relays))
	}
	if rng == nil {
		rng = rand.Reader
	}
	dir := n.Directory()
	// Fisher–Yates over the directory using rejection-free random bytes.
	for i := len(dir) - 1; i > 0; i-- {
		var b [8]byte
		if _, err := io.ReadFull(rng, b[:]); err != nil {
			return nil, err
		}
		j := int(binary.BigEndian.Uint64(b[:]) % uint64(i+1))
		dir[i], dir[j] = dir[j], dir[i]
	}
	return dir[:hops], nil
}

// Route injects an onion at the entry relay and forwards it hop by hop
// until the exit delivers the payload.
func (n *Network) Route(entryID string, onion []byte) error {
	cur := entryID
	msg := onion
	for depth := 0; depth <= len(n.relays); depth++ {
		relay, ok := n.relays[cur]
		if !ok {
			return fmt.Errorf("onion: no relay %q", cur)
		}
		peeled, err := relay.Peel(msg)
		if err != nil {
			return fmt.Errorf("onion: at %s: %w", cur, err)
		}
		if peeled.NextHop == ExitID {
			if n.Exit == nil {
				return errors.New("onion: no exit configured")
			}
			return n.Exit(peeled.Inner)
		}
		cur = peeled.NextHop
		msg = peeled.Inner
	}
	return errors.New("onion: routing loop")
}

// Send wraps payload over a fresh circuit of the given length and routes
// it. This is the one-call client API.
func (n *Network) Send(payload []byte, hops int, rng io.Reader) error {
	circuit, err := n.PickCircuit(hops, rng)
	if err != nil {
		return err
	}
	onion, err := Wrap(circuit, payload, rng)
	if err != nil {
		return err
	}
	return n.Route(circuit[0].ID, onion)
}
