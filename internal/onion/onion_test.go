package onion

import (
	"bytes"
	"crypto/rand"
	"encoding/json"
	"errors"
	"testing"

	"opinions/internal/blindsig"
	"opinions/internal/rspserver"
	"opinions/internal/simclock"
	"opinions/internal/world"
)

func testNetwork(t *testing.T, relays int) *Network {
	t.Helper()
	var delivered [][]byte
	n, err := NewNetwork(relays, rand.Reader, func(p []byte) error {
		delivered = append(delivered, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = delivered })
	return n
}

func TestThreeHopRoundTrip(t *testing.T) {
	var got []byte
	n, err := NewNetwork(5, rand.Reader, func(p []byte) error {
		got = append([]byte(nil), p...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"anon_id":"abc","entity":"yelp/x"}`)
	if err := n.Send(payload, 3, rand.Reader); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("delivered %q, want %q", got, payload)
	}
}

func TestEveryHopCountRoundTrips(t *testing.T) {
	for hops := 1; hops <= 5; hops++ {
		var got []byte
		n, err := NewNetwork(5, rand.Reader, func(p []byte) error { got = p; return nil })
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Send([]byte("hi"), hops, rand.Reader); err != nil {
			t.Fatalf("hops=%d: %v", hops, err)
		}
		if string(got) != "hi" {
			t.Fatalf("hops=%d delivered %q", hops, got)
		}
	}
}

func TestRelaySeesNoPayload(t *testing.T) {
	n := testNetwork(t, 4)
	dir := n.Directory()
	circuit := []RelayInfo{dir[0], dir[1], dir[2]}
	payload := []byte("SECRET-OPINION-UPLOAD")
	onion, err := Wrap(circuit, payload, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// The raw onion must not contain the payload.
	if bytes.Contains(onion, payload) {
		t.Fatal("payload visible in onion")
	}
	// After the entry relay peels, the middle hop's view still hides it.
	p1, err := n.relays[dir[0].ID].Peel(onion)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(p1.Inner, payload) {
		t.Fatal("payload visible after one peel")
	}
	if p1.NextHop != dir[1].ID {
		t.Fatalf("entry forwards to %s, want %s", p1.NextHop, dir[1].ID)
	}
	// Only after the exit peel does the payload appear.
	p2, _ := n.relays[dir[1].ID].Peel(p1.Inner)
	p3, _ := n.relays[dir[2].ID].Peel(p2.Inner)
	if p3.NextHop != ExitID || !bytes.Equal(p3.Inner, payload) {
		t.Fatal("exit layer wrong")
	}
}

func TestWrongRelayCannotPeel(t *testing.T) {
	n := testNetwork(t, 3)
	dir := n.Directory()
	onion, err := Wrap([]RelayInfo{dir[0]}, []byte("x"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.relays[dir[1].ID].Peel(onion); !errors.Is(err, ErrMalformed) {
		t.Fatalf("wrong relay peeled: %v", err)
	}
}

func TestTamperDetected(t *testing.T) {
	n := testNetwork(t, 3)
	dir := n.Directory()
	onion, err := Wrap([]RelayInfo{dir[0]}, []byte("x"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	onion[len(onion)-1] ^= 1
	if _, err := n.relays[dir[0].ID].Peel(onion); !errors.Is(err, ErrMalformed) {
		t.Fatalf("tampered onion accepted: %v", err)
	}
}

func TestTruncatedOnionRejected(t *testing.T) {
	n := testNetwork(t, 1)
	if _, err := n.relays["relay-0"].Peel([]byte("short")); !errors.Is(err, ErrMalformed) {
		t.Fatalf("short onion: %v", err)
	}
}

func TestPickCircuitDistinctHops(t *testing.T) {
	n := testNetwork(t, 6)
	for i := 0; i < 20; i++ {
		c, err := n.PickCircuit(3, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, hop := range c {
			if seen[hop.ID] {
				t.Fatal("duplicate relay in circuit")
			}
			seen[hop.ID] = true
		}
	}
	if _, err := n.PickCircuit(7, rand.Reader); err == nil {
		t.Fatal("over-long circuit accepted")
	}
	if _, err := n.PickCircuit(0, rand.Reader); err == nil {
		t.Fatal("zero-hop circuit accepted")
	}
}

func TestWrapValidation(t *testing.T) {
	if _, err := Wrap(nil, []byte("x"), rand.Reader); err == nil {
		t.Fatal("empty circuit accepted")
	}
}

func TestNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(0, rand.Reader, nil); err == nil {
		t.Fatal("zero relays accepted")
	}
	n := testNetwork(t, 2)
	if err := n.Route("nope", []byte("x")); err == nil {
		t.Fatal("unknown entry accepted")
	}
}

// TestUploadThroughOnionToRSP is the full composition: an anonymous
// upload travels through the onion network and lands in the RSP's
// history store — the complete §4.2 transport path.
func TestUploadThroughOnionToRSP(t *testing.T) {
	catalog := []*world.Entity{{ID: "a", Service: world.Yelp, Zip: "z", Category: "c"}}
	srv, err := rspserver.New(rspserver.Config{Catalog: catalog, KeyBits: 1024, Clock: simclock.NewSim(simclock.Epoch)})
	if err != nil {
		t.Fatal(err)
	}
	// Exit node delivers decoded payloads to the RSP's upload endpoint.
	n, err := NewNetwork(5, rand.Reader, func(p []byte) error {
		var req rspserver.UploadRequest
		if err := json.Unmarshal(p, &req); err != nil {
			return err
		}
		return srv.AcceptUpload(req)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Obtain a real token, build a real upload, send it as an onion.
	tok, err := requestToken(srv)
	if err != nil {
		t.Fatal(err)
	}
	req := rspserver.UploadRequest{
		AnonID: "anon-onion", Entity: "yelp/a",
		Record: &rspserver.WireRecord{Kind: "visit", Start: simclock.Epoch, DurationS: 1800, DistanceM: 700},
		Token:  tok,
	}
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Send(payload, 3, rand.Reader); err != nil {
		t.Fatal(err)
	}
	_, _, hists := srv.Stores()
	if hists.Stats().Records != 1 {
		t.Fatal("upload did not arrive through the onion network")
	}
}

// requestToken runs the blind-token protocol in-process.
func requestToken(srv *rspserver.Server) (rspserver.WireToken, error) {
	tok, err := blindRequest(srv)
	if err != nil {
		return rspserver.WireToken{}, err
	}
	return rspserver.FromToken(tok), nil
}

// blindRequest obtains one blind-signed token from the server's issuer.
func blindRequest(srv *rspserver.Server) (blindsig.Token, error) {
	return blindsig.RequestToken(srv.Issuer(), "onion-device", rand.Reader)
}

func TestSendInvalidHops(t *testing.T) {
	n := testNetwork(t, 3)
	if err := n.Send([]byte("x"), 9, rand.Reader); err == nil {
		t.Fatal("over-long circuit sent")
	}
}

func TestRouteToMissingNextHop(t *testing.T) {
	// An onion whose inner layer names a nonexistent relay must error,
	// not loop.
	n := testNetwork(t, 2)
	dir := n.Directory()
	// Hand-build: outer layer for relay-0 with NextHop "ghost".
	inner, err := Wrap([]RelayInfo{dir[0]}, []byte("x"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	_ = inner
	// Simpler: route a single-layer onion through the wrong entry name.
	if err := n.Route("ghost", inner); err == nil {
		t.Fatal("missing relay accepted")
	}
	// Exit without handler.
	n.Exit = nil
	if err := n.Route(dir[0].ID, inner); err == nil {
		t.Fatal("nil exit accepted")
	}
}
