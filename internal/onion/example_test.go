package onion_test

import (
	"crypto/rand"
	"fmt"

	"opinions/internal/onion"
)

// Send one payload through a 3-hop circuit; the exit is the only place
// the plaintext reappears.
func Example() {
	network, err := onion.NewNetwork(5, rand.Reader, func(payload []byte) error {
		fmt.Println("exit delivered:", string(payload))
		return nil
	})
	if err != nil {
		panic(err)
	}
	if err := network.Send([]byte("anonymous upload"), 3, rand.Reader); err != nil {
		panic(err)
	}
	// Output:
	// exit delivered: anonymous upload
}
