package onion

import (
	"crypto/rand"
	"testing"
)

func BenchmarkWrap3Hop(b *testing.B) {
	n, err := NewNetwork(5, rand.Reader, nil)
	if err != nil {
		b.Fatal(err)
	}
	circuit, err := n.PickCircuit(3, rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Wrap(circuit, payload, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPeel(b *testing.B) {
	n, err := NewNetwork(1, rand.Reader, nil)
	if err != nil {
		b.Fatal(err)
	}
	relay := n.relays["relay-0"]
	onion, err := Wrap([]RelayInfo{relay.Info()}, make([]byte, 512), rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := relay.Peel(onion); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSendEndToEnd(b *testing.B) {
	n, err := NewNetwork(5, rand.Reader, func([]byte) error { return nil })
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.Send(payload, 3, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}
