package onion

import (
	"crypto/rand"
	"testing"
)

// FuzzPeel: arbitrary bytes must never panic a relay; they either parse
// (only for genuine onions) or return ErrMalformed.
func FuzzPeel(f *testing.F) {
	relay, err := NewRelay("r", rand.Reader)
	if err != nil {
		f.Fatal(err)
	}
	// Seed with a genuine onion and mutations of it.
	genuine, err := Wrap([]RelayInfo{relay.Info()}, []byte("payload"), rand.Reader)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(genuine)
	f.Add([]byte{})
	f.Add([]byte("short"))
	mutated := append([]byte(nil), genuine...)
	mutated[0] ^= 0xff
	f.Add(mutated)
	f.Fuzz(func(t *testing.T, data []byte) {
		peeled, err := relay.Peel(data)
		if err == nil && peeled.NextHop == "" && len(peeled.Inner) == 0 {
			// Peel succeeded on something degenerate; acceptable only if
			// it authenticated, which requires a real onion — GCM makes
			// forgery computationally infeasible for the fuzzer.
			_ = peeled
		}
	})
}
