// Package storage persists the RSP's state — reviews, anonymous
// histories, inferred opinions, training pairs, and the trained model —
// as an atomic, compressed JSON snapshot.
//
// A snapshot is the whole-store format: the paper's privacy design
// (§4.2) means the server state is already free of user identities, so
// a snapshot leaks nothing a live server would not. Snapshots are
// written via a temp file + rename, so a crash mid-save never corrupts
// the previous snapshot.
package storage

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"opinions/internal/history"
	"opinions/internal/inference"
	"opinions/internal/reviews"
)

// FormatVersion identifies the snapshot schema; bump on breaking change.
const FormatVersion = 1

// Snapshot is the serializable server state.
type Snapshot struct {
	Version int       `json:"version"`
	SavedAt time.Time `json:"saved_at"`

	Reviews   []reviews.Review        `json:"reviews"`
	Opinions  map[string][]float64    `json:"opinions"`
	Histories []history.EntityHistory `json:"histories"`

	TrainX    [][]float64         `json:"train_x"`
	TrainY    []float64           `json:"train_y"`
	TrainCats []string            `json:"train_cats,omitempty"`
	Models    *inference.ModelSet `json:"models,omitempty"`
}

// Write serializes the snapshot to w (gzip-compressed JSON).
func Write(w io.Writer, s *Snapshot) error {
	if s.Version == 0 {
		s.Version = FormatVersion
	}
	gz := gzip.NewWriter(w)
	enc := json.NewEncoder(gz)
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("storage: encoding snapshot: %w", err)
	}
	if err := gz.Close(); err != nil {
		return fmt.Errorf("storage: flushing snapshot: %w", err)
	}
	return nil
}

// Read deserializes a snapshot from r.
func Read(r io.Reader) (*Snapshot, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("storage: opening snapshot: %w", err)
	}
	defer gz.Close()
	var s Snapshot
	if err := json.NewDecoder(gz).Decode(&s); err != nil {
		return nil, fmt.Errorf("storage: decoding snapshot: %w", err)
	}
	if s.Version != FormatVersion {
		return nil, fmt.Errorf("storage: snapshot version %d, want %d", s.Version, FormatVersion)
	}
	return &s, nil
}

// SaveFile writes the snapshot to path atomically (temp file + rename).
func SaveFile(path string, s *Snapshot) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*")
	if err != nil {
		return fmt.Errorf("storage: creating temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := Write(tmp, s); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("storage: closing temp file: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("storage: installing snapshot: %w", err)
	}
	return nil
}

// LoadFile reads a snapshot from path.
func LoadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: opening %s: %w", path, err)
	}
	defer f.Close()
	return Read(f)
}
