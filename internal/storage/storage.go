// Package storage persists the RSP's state — reviews, anonymous
// histories, inferred opinions, training pairs, and the trained model —
// as an atomic, compressed JSON snapshot.
//
// A snapshot is the whole-store format: the paper's privacy design
// (§4.2) means the server state is already free of user identities, so
// a snapshot leaks nothing a live server would not. Snapshots are
// written via a temp file + rename, so a crash mid-save never corrupts
// the previous snapshot.
package storage

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"opinions/internal/history"
	"opinions/internal/inference"
	"opinions/internal/reviews"
)

// FormatVersion identifies the snapshot schema; bump on breaking change.
// Version history:
//
//	1 — initial schema.
//	2 — adds DedupKeys, the exactly-once upload ledger. Version-1
//	    snapshots load with an empty ledger (uploads accepted before the
//	    upgrade predate idempotency keys, so there is nothing to migrate).
//	3 — adds WALSeq, the sequence number of the last write-ahead-log
//	    record folded into this snapshot. Recovery loads the snapshot and
//	    replays only WAL records with a higher sequence. Version-1 and -2
//	    snapshots load with WALSeq 0 (they predate the WAL, so every
//	    surviving log record replays on top of them).
//	4 — adds WALSeqs, the per-stripe sequence vector of the sharded
//	    commit pipeline: WALSeqs[i] is the last record of commit stripe i
//	    folded into this snapshot. Version-3 snapshots load with a nil
//	    vector; the store treats their scalar WALSeq as the baseline of
//	    every stripe (the pre-sharding log was a single stripe, so all
//	    per-stripe spaces begin where it ended).
const FormatVersion = 4

// minReadVersion is the oldest snapshot schema Read still accepts.
const minReadVersion = 1

// Snapshot is the serializable server state.
type Snapshot struct {
	Version int       `json:"version"`
	SavedAt time.Time `json:"saved_at"`
	// WALSeq is the sequence number of the last write-ahead-log record
	// whose effects this snapshot contains (since version 3; 0 = no WAL,
	// or a snapshot taken before any record was logged). Snapshots from
	// a sharded store (version 4) leave it zero and fill WALSeqs.
	WALSeq uint64 `json:"wal_seq,omitempty"`
	// WALSeqs is the per-commit-stripe sequence vector (since version 4):
	// WALSeqs[i] is the last record of stripe i whose effects this
	// snapshot contains. Its length records the stripe geometry the
	// snapshot was cut under. Nil on pre-sharding snapshots.
	WALSeqs []uint64 `json:"wal_seqs,omitempty"`

	Reviews   []reviews.Review        `json:"reviews"`
	Opinions  map[string][]float64    `json:"opinions"`
	Histories []history.EntityHistory `json:"histories"`
	// DedupKeys is the exactly-once upload ledger: idempotency keys of
	// already-applied uploads, oldest first (since version 2).
	DedupKeys []string `json:"dedup_keys,omitempty"`

	TrainX    [][]float64         `json:"train_x"`
	TrainY    []float64           `json:"train_y"`
	TrainCats []string            `json:"train_cats,omitempty"`
	Models    *inference.ModelSet `json:"models,omitempty"`
}

// Write serializes the snapshot to w (gzip-compressed JSON). The caller's
// snapshot is not mutated; a zero Version is stamped FormatVersion on the
// wire only.
func Write(w io.Writer, s *Snapshot) error {
	out := *s
	if out.Version == 0 {
		out.Version = FormatVersion
	}
	gz := gzip.NewWriter(w)
	enc := json.NewEncoder(gz)
	if err := enc.Encode(&out); err != nil {
		return fmt.Errorf("storage: encoding snapshot: %w", err)
	}
	if err := gz.Close(); err != nil {
		return fmt.Errorf("storage: flushing snapshot: %w", err)
	}
	return nil
}

// Read deserializes a snapshot from r, migrating older supported schema
// versions forward.
func Read(r io.Reader) (*Snapshot, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("storage: opening snapshot: %w", err)
	}
	defer gz.Close()
	var s Snapshot
	if err := json.NewDecoder(gz).Decode(&s); err != nil {
		return nil, fmt.Errorf("storage: decoding snapshot: %w", err)
	}
	if s.Version < minReadVersion || s.Version > FormatVersion {
		return nil, fmt.Errorf("storage: snapshot version %d, want %d..%d",
			s.Version, minReadVersion, FormatVersion)
	}
	// v1 → v2: no dedup ledger on disk; start empty.
	// v2 → v3: no WAL sequence on disk; WALSeq stays 0, so a recovery
	// replays every surviving log record on top of the snapshot.
	// v3 → v4: no per-stripe vector on disk; WALSeqs stays nil and the
	// store seeds every commit stripe from the scalar WALSeq.
	s.Version = FormatVersion
	return &s, nil
}

// SaveFile writes the snapshot to path atomically and durably: temp
// file, fsync, rename, then fsync of the directory. Without the syncs a
// power loss shortly after rename can leave either an empty file (data
// never flushed) or the old name (rename never journaled) — the classic
// rename-without-fsync hole.
func SaveFile(path string, s *Snapshot) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*")
	if err != nil {
		return fmt.Errorf("storage: creating temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := Write(tmp, s); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("storage: syncing temp file: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("storage: closing temp file: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("storage: installing snapshot: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Filesystems that refuse directory fsync (some network mounts) are
// tolerated: the rename itself still happened.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

// LoadFile reads a snapshot from path.
func LoadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: opening %s: %w", path, err)
	}
	defer f.Close()
	return Read(f)
}
