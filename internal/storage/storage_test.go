package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"opinions/internal/history"
	"opinions/internal/interaction"
	"opinions/internal/reviews"
)

var t0 = time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		SavedAt: t0,
		Reviews: []reviews.Review{
			{ID: "rev-1", Entity: "yelp/a", Author: "alice", Rating: 4.5, Time: t0},
			{ID: "rev-2", Entity: "yelp/b", Author: "bob", Rating: 2, Time: t0},
		},
		Opinions: map[string][]float64{"yelp/a": {4.0, 4.5}},
		Histories: []history.EntityHistory{
			{AnonID: "h1", Entity: "yelp/a", Records: []interaction.Record{
				{Entity: "yelp/a", Kind: interaction.VisitKind, Start: t0, Duration: time.Hour, DistanceFrom: 2000},
			}},
		},
		TrainX: [][]float64{{1, 2, 3}},
		TrainY: []float64{4},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != FormatVersion {
		t.Fatalf("version = %d", got.Version)
	}
	if len(got.Reviews) != 2 || got.Reviews[0].Author != "alice" {
		t.Fatalf("reviews = %+v", got.Reviews)
	}
	if len(got.Opinions["yelp/a"]) != 2 {
		t.Fatalf("opinions = %+v", got.Opinions)
	}
	if len(got.Histories) != 1 || got.Histories[0].Records[0].Duration != time.Hour {
		t.Fatalf("histories = %+v", got.Histories)
	}
	if got.TrainY[0] != 4 {
		t.Fatalf("training pairs = %+v", got.TrainY)
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.gz")
	if err := SaveFile(path, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Reviews) != 2 {
		t.Fatalf("reviews = %d", len(got.Reviews))
	}
	// No stray temp files.
	entries, _ := os.ReadDir(filepath.Dir(path))
	for _, e := range entries {
		if e.Name() != "state.gz" {
			t.Fatalf("leftover file %s", e.Name())
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.gz")); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestReadGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not gzip"))); err == nil {
		t.Fatal("garbage read")
	}
}

func TestVersionMismatch(t *testing.T) {
	s := sampleSnapshot()
	s.Version = 99
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("version mismatch accepted")
	}
}

func TestSaveFileBadDirectory(t *testing.T) {
	if err := SaveFile("/nonexistent-dir-xyz/state.gz", sampleSnapshot()); err == nil {
		t.Fatal("impossible path saved")
	}
}

func TestWriteSetsVersion(t *testing.T) {
	var buf bytes.Buffer
	s := sampleSnapshot()
	s.Version = 0
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != FormatVersion {
		t.Fatalf("version = %d", got.Version)
	}
}
