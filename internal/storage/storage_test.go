package storage

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"testing"
	"time"

	"opinions/internal/history"
	"opinions/internal/interaction"
	"opinions/internal/reviews"
)

var t0 = time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC)

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		SavedAt: t0,
		Reviews: []reviews.Review{
			{ID: "rev-1", Entity: "yelp/a", Author: "alice", Rating: 4.5, Time: t0},
			{ID: "rev-2", Entity: "yelp/b", Author: "bob", Rating: 2, Time: t0},
		},
		Opinions: map[string][]float64{"yelp/a": {4.0, 4.5}},
		Histories: []history.EntityHistory{
			{AnonID: "h1", Entity: "yelp/a", Records: []interaction.Record{
				{Entity: "yelp/a", Kind: interaction.VisitKind, Start: t0, Duration: time.Hour, DistanceFrom: 2000},
			}},
		},
		TrainX: [][]float64{{1, 2, 3}},
		TrainY: []float64{4},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != FormatVersion {
		t.Fatalf("version = %d", got.Version)
	}
	if len(got.Reviews) != 2 || got.Reviews[0].Author != "alice" {
		t.Fatalf("reviews = %+v", got.Reviews)
	}
	if len(got.Opinions["yelp/a"]) != 2 {
		t.Fatalf("opinions = %+v", got.Opinions)
	}
	if len(got.Histories) != 1 || got.Histories[0].Records[0].Duration != time.Hour {
		t.Fatalf("histories = %+v", got.Histories)
	}
	if got.TrainY[0] != 4 {
		t.Fatalf("training pairs = %+v", got.TrainY)
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.gz")
	if err := SaveFile(path, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Reviews) != 2 {
		t.Fatalf("reviews = %d", len(got.Reviews))
	}
	// No stray temp files.
	entries, _ := os.ReadDir(filepath.Dir(path))
	for _, e := range entries {
		if e.Name() != "state.gz" {
			t.Fatalf("leftover file %s", e.Name())
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.gz")); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestReadGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not gzip"))); err == nil {
		t.Fatal("garbage read")
	}
}

func TestVersionMismatch(t *testing.T) {
	s := sampleSnapshot()
	s.Version = 99
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("version mismatch accepted")
	}
}

func TestSaveFileBadDirectory(t *testing.T) {
	if err := SaveFile("/nonexistent-dir-xyz/state.gz", sampleSnapshot()); err == nil {
		t.Fatal("impossible path saved")
	}
}

func TestWriteSetsVersion(t *testing.T) {
	var buf bytes.Buffer
	s := sampleSnapshot()
	s.Version = 0
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != FormatVersion {
		t.Fatalf("version = %d", got.Version)
	}
}

// TestWriteDoesNotMutateCaller: stamping the wire version must happen on
// a copy — a server that keeps its Snapshot around (e.g. to diff against
// the next save) must not find it silently rewritten.
func TestWriteDoesNotMutateCaller(t *testing.T) {
	s := sampleSnapshot()
	s.Version = 0
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	if s.Version != 0 {
		t.Fatalf("Write mutated caller's Version to %d", s.Version)
	}
}

// TestReadMigratesV1: a version-1 snapshot (pre-dedup-ledger) loads
// cleanly with an empty ledger and is stamped to the current version.
func TestReadMigratesV1(t *testing.T) {
	s := sampleSnapshot()
	s.Version = 1
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	if got.Version != FormatVersion {
		t.Fatalf("migrated version = %d, want %d", got.Version, FormatVersion)
	}
	if len(got.DedupKeys) != 0 {
		t.Fatalf("v1 migration invented %d dedup keys", len(got.DedupKeys))
	}
	if len(got.Reviews) != 2 {
		t.Fatalf("v1 payload lost: %d reviews", len(got.Reviews))
	}
}

// TestDedupKeysRoundTrip: the exactly-once ledger survives persistence
// in order (the order IS the FIFO eviction order after a restore).
func TestDedupKeysRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	s.DedupKeys = []string{"k-old", "k-mid", "k-new"}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.DedupKeys) != 3 || got.DedupKeys[0] != "k-old" || got.DedupKeys[2] != "k-new" {
		t.Fatalf("dedup keys = %v, want [k-old k-mid k-new]", got.DedupKeys)
	}
}

// TestReadMigratesV1WALSeq / TestReadMigratesV2WALSeq: snapshots from
// before the write-ahead log (schemas 1 and 2) load cleanly, carry WAL
// sequence 0 — so recovery replays every surviving log record on top of
// them — and, once re-saved, round-trip at the current schema.
func TestReadMigratesV1WALSeq(t *testing.T) {
	testMigratesWALSeq(t, 1)
}

func TestReadMigratesV2WALSeq(t *testing.T) {
	testMigratesWALSeq(t, 2)
}

func testMigratesWALSeq(t *testing.T, version int) {
	t.Helper()
	s := sampleSnapshot()
	s.Version = version
	if version >= 2 {
		s.DedupKeys = []string{"k-1", "k-2"}
	}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("v%d snapshot rejected: %v", version, err)
	}
	if got.Version != FormatVersion {
		t.Fatalf("migrated version = %d, want %d", got.Version, FormatVersion)
	}
	if got.WALSeq != 0 {
		t.Fatalf("v%d migration invented WAL sequence %d", version, got.WALSeq)
	}
	if len(got.Reviews) != 2 || len(got.Histories) != 1 {
		t.Fatalf("v%d payload lost: %d reviews, %d histories",
			version, len(got.Reviews), len(got.Histories))
	}
	if version >= 2 && len(got.DedupKeys) != 2 {
		t.Fatalf("v%d ledger lost: %v", version, got.DedupKeys)
	}

	// Round-trip the migrated snapshot: it must re-save at the current
	// schema with identical payload.
	var buf2 bytes.Buffer
	got.Version = 0 // let Write stamp it
	if err := Write(&buf2, got); err != nil {
		t.Fatal(err)
	}
	again, err := Read(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	if again.Version != FormatVersion || again.WALSeq != 0 {
		t.Fatalf("round-trip version=%d walseq=%d", again.Version, again.WALSeq)
	}
	if len(again.Reviews) != 2 || len(again.Histories) != 1 {
		t.Fatal("round-trip lost payload")
	}
}

// TestWALSeqRoundTrip: a v3 snapshot's WAL sequence survives
// persistence — it is the recovery cut point.
func TestWALSeqRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	s.WALSeq = 12345
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.WALSeq != 12345 {
		t.Fatalf("WALSeq = %d, want 12345", got.WALSeq)
	}
}

// TestVersionTooOld: versions below minReadVersion are refused rather
// than misinterpreted. Write stamps zero versions, so the stale snapshot
// is gzipped by hand.
func TestVersionTooOld(t *testing.T) {
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if _, err := gz.Write([]byte(`{"version":0}`)); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("version 0 accepted, want error")
	}
}
