// Package attest implements the remote-attestation skeleton §4.3 calls
// for: "RSPs can employ remote attestation [31, 26] to confirm that the
// client has not been modified."
//
// The trust anchor is simulated (there is no TPM in a simulation), but
// the protocol is the real shape: at provisioning, a device receives an
// attestation key known to the verifier; to attest, the verifier issues
// a single-use nonce and the device returns a quote binding (nonce,
// measurement) under its key, where the measurement is the digest of the
// client build it is running. The verifier accepts only known-good
// measurements, so a modified client — the §4.3 attacker who "modif[ies]
// the RSP's app ... to upload fake information" — cannot obtain a valid
// quote. Freshness of the nonce prevents replay.
package attest

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"opinions/internal/simclock"
)

// Measurement is the digest of a client build.
type Measurement [32]byte

// MeasureBuild digests a client build's contents. In production this is
// the platform's integrity measurement of the app binary; here it is a
// plain SHA-256 over the build bytes.
func MeasureBuild(build []byte) Measurement { return sha256.Sum256(build) }

// String renders the measurement as hex.
func (m Measurement) String() string { return hex.EncodeToString(m[:]) }

// Quote is a device's attestation response.
type Quote struct {
	DeviceID    string
	Nonce       []byte
	Measurement Measurement
	MAC         []byte // HMAC(AK, nonce || measurement)
}

// Device is the client side: it holds the provisioning key and produces
// quotes over the build it actually runs.
type Device struct {
	ID    string
	ak    []byte
	build []byte
}

// NewDevice provisions a device with an attestation key and its build.
func NewDevice(id string, ak, build []byte) *Device {
	return &Device{ID: id, ak: append([]byte(nil), ak...), build: append([]byte(nil), build...)}
}

// Attest produces a quote for the verifier's nonce.
func (d *Device) Attest(nonce []byte) Quote {
	m := MeasureBuild(d.build)
	return Quote{
		DeviceID:    d.ID,
		Nonce:       append([]byte(nil), nonce...),
		Measurement: m,
		MAC:         quoteMAC(d.ak, nonce, m),
	}
}

// Tamper replaces the device's build, modelling a modified client. The
// attestation key survives (the attacker has the phone), but the
// measurement changes.
func (d *Device) Tamper(newBuild []byte) { d.build = append([]byte(nil), newBuild...) }

func quoteMAC(ak, nonce []byte, m Measurement) []byte {
	mac := hmac.New(sha256.New, ak)
	mac.Write(nonce)
	mac.Write(m[:])
	return mac.Sum(nil)
}

// Verifier is the RSP side: it provisions devices, issues nonces, and
// verifies quotes against known-good measurements.
type Verifier struct {
	clock simclock.Clock
	// Validity is how long a successful attestation vouches for a
	// device (default 24h).
	Validity time.Duration

	mu       sync.Mutex
	keys     map[string][]byte // deviceID → AK
	good     map[Measurement]bool
	nonces   map[string]time.Time // outstanding nonce (hex) → issue time
	attested map[string]time.Time // deviceID → last success
}

// NewVerifier returns a verifier trusting the given build measurements.
func NewVerifier(clock simclock.Clock, goodBuilds ...Measurement) *Verifier {
	if clock == nil {
		clock = simclock.Real{}
	}
	v := &Verifier{
		clock:    clock,
		Validity: 24 * time.Hour,
		keys:     make(map[string][]byte),
		good:     make(map[Measurement]bool),
		nonces:   make(map[string]time.Time),
		attested: make(map[string]time.Time),
	}
	for _, m := range goodBuilds {
		v.good[m] = true
	}
	return v
}

// AddGoodBuild trusts an additional build (a new app release).
func (v *Verifier) AddGoodBuild(m Measurement) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.good[m] = true
}

// Provision registers a device's attestation key (done once, at
// install, over the authenticated store channel).
func (v *Verifier) Provision(deviceID string, ak []byte) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.keys[deviceID] = append([]byte(nil), ak...)
}

// nonceTTL bounds how long an issued nonce stays redeemable.
const nonceTTL = 5 * time.Minute

// Challenge issues a fresh single-use nonce. rng defaults to
// crypto/rand.Reader when nil.
func (v *Verifier) Challenge(rng io.Reader) ([]byte, error) {
	if rng == nil {
		rng = rand.Reader
	}
	nonce := make([]byte, 16)
	if _, err := io.ReadFull(rng, nonce); err != nil {
		return nil, fmt.Errorf("attest: drawing nonce: %w", err)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.nonces[hex.EncodeToString(nonce)] = v.clock.Now()
	return nonce, nil
}

// Attestation errors.
var (
	ErrUnknownDevice  = errors.New("attest: device not provisioned")
	ErrStaleNonce     = errors.New("attest: nonce unknown, expired, or reused")
	ErrBadQuote       = errors.New("attest: quote MAC invalid")
	ErrUntrustedBuild = errors.New("attest: measurement is not a known-good build")
)

// Verify checks a quote; on success the device is marked attested until
// Validity elapses.
func (v *Verifier) Verify(q Quote) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	now := v.clock.Now()
	ak, ok := v.keys[q.DeviceID]
	if !ok {
		return ErrUnknownDevice
	}
	nk := hex.EncodeToString(q.Nonce)
	issued, ok := v.nonces[nk]
	if !ok || now.Sub(issued) > nonceTTL {
		delete(v.nonces, nk)
		return ErrStaleNonce
	}
	delete(v.nonces, nk) // single use
	if !hmac.Equal(q.MAC, quoteMAC(ak, q.Nonce, q.Measurement)) {
		return ErrBadQuote
	}
	if !v.good[q.Measurement] {
		return ErrUntrustedBuild
	}
	v.attested[q.DeviceID] = now
	return nil
}

// IsAttested reports whether the device has a valid, unexpired
// attestation.
func (v *Verifier) IsAttested(deviceID string) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	t, ok := v.attested[deviceID]
	if !ok {
		return false
	}
	return v.clock.Now().Sub(t) <= v.Validity
}
