package attest

import (
	"errors"
	"testing"
	"time"

	"opinions/internal/simclock"
)

var (
	goodBuild = []byte("official-client-v1.0")
	akey      = []byte("attestation-key-device-1")
)

func setup(t *testing.T) (*Verifier, *Device, *simclock.Sim) {
	t.Helper()
	clock := simclock.NewSim(simclock.Epoch)
	v := NewVerifier(clock, MeasureBuild(goodBuild))
	d := NewDevice("dev1", akey, goodBuild)
	v.Provision("dev1", akey)
	return v, d, clock
}

func TestHonestClientAttests(t *testing.T) {
	v, d, _ := setup(t)
	nonce, err := v.Challenge(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(d.Attest(nonce)); err != nil {
		t.Fatal(err)
	}
	if !v.IsAttested("dev1") {
		t.Fatal("device not marked attested")
	}
}

func TestModifiedClientRejected(t *testing.T) {
	v, d, _ := setup(t)
	d.Tamper([]byte("patched client that uploads fake recommendations"))
	nonce, _ := v.Challenge(nil)
	err := v.Verify(d.Attest(nonce))
	if !errors.Is(err, ErrUntrustedBuild) {
		t.Fatalf("err = %v, want ErrUntrustedBuild", err)
	}
	if v.IsAttested("dev1") {
		t.Fatal("tampered device marked attested")
	}
}

func TestForgedQuoteRejected(t *testing.T) {
	v, d, _ := setup(t)
	nonce, _ := v.Challenge(nil)
	q := d.Attest(nonce)
	// Attacker claims the good measurement but cannot produce its MAC.
	q.Measurement = MeasureBuild(goodBuild)
	q.MAC[0] ^= 1
	if err := v.Verify(q); !errors.Is(err, ErrBadQuote) {
		t.Fatalf("err = %v, want ErrBadQuote", err)
	}
}

func TestNonceSingleUse(t *testing.T) {
	v, d, _ := setup(t)
	nonce, _ := v.Challenge(nil)
	q := d.Attest(nonce)
	if err := v.Verify(q); err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(q); !errors.Is(err, ErrStaleNonce) {
		t.Fatalf("replayed quote err = %v, want ErrStaleNonce", err)
	}
}

func TestNonceExpiry(t *testing.T) {
	v, d, clock := setup(t)
	nonce, _ := v.Challenge(nil)
	clock.Advance(6 * time.Minute)
	if err := v.Verify(d.Attest(nonce)); !errors.Is(err, ErrStaleNonce) {
		t.Fatalf("expired nonce err = %v", err)
	}
}

func TestUnprovisionedDevice(t *testing.T) {
	v, _, _ := setup(t)
	ghost := NewDevice("ghost", []byte("self-chosen key"), goodBuild)
	nonce, _ := v.Challenge(nil)
	if err := v.Verify(ghost.Attest(nonce)); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("err = %v, want ErrUnknownDevice", err)
	}
}

func TestAttestationExpires(t *testing.T) {
	v, d, clock := setup(t)
	nonce, _ := v.Challenge(nil)
	if err := v.Verify(d.Attest(nonce)); err != nil {
		t.Fatal(err)
	}
	clock.Advance(25 * time.Hour)
	if v.IsAttested("dev1") {
		t.Fatal("attestation did not expire")
	}
}

func TestNewReleaseTrustedAfterAddGoodBuild(t *testing.T) {
	v, d, _ := setup(t)
	v2build := []byte("official-client-v2.0")
	d.Tamper(v2build) // device upgraded
	nonce, _ := v.Challenge(nil)
	if err := v.Verify(d.Attest(nonce)); !errors.Is(err, ErrUntrustedBuild) {
		t.Fatalf("unreleased build err = %v", err)
	}
	v.AddGoodBuild(MeasureBuild(v2build))
	nonce, _ = v.Challenge(nil)
	if err := v.Verify(d.Attest(nonce)); err != nil {
		t.Fatalf("released build rejected: %v", err)
	}
}

func TestMeasurementStringStable(t *testing.T) {
	a := MeasureBuild([]byte("x"))
	b := MeasureBuild([]byte("x"))
	if a.String() != b.String() || len(a.String()) != 64 {
		t.Fatal("measurement string unstable")
	}
}
