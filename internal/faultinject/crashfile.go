package faultinject

import (
	"errors"
	"io"
	"sync"
)

// ErrInjectedCrash is the sentinel every operation on a crashed
// CrashFile returns. Durability code must treat it like any other I/O
// error — there is nothing recoverable about a dead process.
var ErrInjectedCrash = errors.New("faultinject: injected crash")

// walFile is the handle shape a CrashFile wraps and presents. It
// matches store.File structurally, so a CrashFile slots into the WAL's
// OpenFile seam without this package importing the store.
type walFile interface {
	io.Writer
	Sync() error
	Close() error
}

// CrashFile simulates a process dying mid-write to a log file: the
// Nth Write persists only the first half of its bytes and then the
// "process" is gone — that write and every later Write, Sync, and
// Close fail with ErrInjectedCrash. The half-written bytes are exactly
// the torn final record a write-ahead log must detect and discard on
// recovery; everything fsynced before the crash is intact.
//
// Deterministic by construction: the crash point is a write ordinal,
// not a probability, so a test replays the same torn byte sequence
// every run.
type CrashFile struct {
	mu      sync.Mutex
	f       walFile
	writes  int
	crashAt int // 1-based ordinal of the Write that tears; 0 = never
	crashed bool
}

// NewCrashFile wraps f so the crashAt-th Write tears and crashes.
func NewCrashFile(f walFile, crashAt int) *CrashFile {
	return &CrashFile{f: f, crashAt: crashAt}
}

// Write passes through until the crash ordinal, then writes half the
// buffer and crashes permanently.
func (c *CrashFile) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return 0, ErrInjectedCrash
	}
	c.writes++
	if c.crashAt > 0 && c.writes >= c.crashAt {
		c.crashed = true
		n, _ := c.f.Write(p[:len(p)/2])
		// Push the torn bytes to disk so recovery really sees them; a
		// crash that loses the whole buffered write is the easy case.
		_ = c.f.Sync()
		_ = c.f.Close()
		return n, ErrInjectedCrash
	}
	return c.f.Write(p)
}

// Sync passes through until crashed.
func (c *CrashFile) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrInjectedCrash
	}
	return c.f.Sync()
}

// Close passes through until crashed.
func (c *CrashFile) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrInjectedCrash
	}
	return c.f.Close()
}

// Crashed reports whether the injected crash has fired.
func (c *CrashFile) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}
