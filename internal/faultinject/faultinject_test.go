package faultinject

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func okJSON() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"ok":true}`))
	})
}

func TestMiddlewareDeterministicSchedule(t *testing.T) {
	run := func() []int {
		in := New(Config{Seed: 7, ErrorRate: 0.3, TruncateRate: 0.2})
		ts := httptest.NewServer(in.Middleware(okJSON()))
		defer ts.Close()
		var codes []int
		for i := 0; i < 40; i++ {
			resp, err := http.Get(ts.URL + "/api/meta")
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes = append(codes, resp.StatusCode)
		}
		return codes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at request %d: %d vs %d", i, a[i], b[i])
		}
	}
	has5xx := false
	for _, c := range a {
		if c == http.StatusServiceUnavailable {
			has5xx = true
		}
	}
	if !has5xx {
		t.Fatal("30% error rate injected no 5xx in 40 requests")
	}
}

func TestMiddlewareErrorBurst(t *testing.T) {
	in := New(Config{Seed: 1, ErrorRate: 0.2, ErrorBurst: 3})
	ts := httptest.NewServer(in.Middleware(okJSON()))
	defer ts.Close()
	var codes []int
	for i := 0; i < 60; i++ {
		resp, err := http.Get(ts.URL + "/x")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		codes = append(codes, resp.StatusCode)
	}
	// Every injected failure must be part of a run of exactly 3 (the
	// final run may be cut off by the end of the request stream).
	for i := 0; i < len(codes); {
		if codes[i] != http.StatusServiceUnavailable {
			i++
			continue
		}
		run := 0
		for i < len(codes) && codes[i] == http.StatusServiceUnavailable {
			run++
			i++
		}
		if run%3 != 0 && i < len(codes) {
			t.Fatalf("burst of %d, want multiples of 3", run)
		}
	}
	if in.Stats().Errors == 0 {
		t.Fatal("no errors recorded")
	}
}

func TestMiddlewareTruncatedBodyIsUnparseable(t *testing.T) {
	in := New(Config{Seed: 3, TruncateRate: 1.0})
	ts := httptest.NewServer(in.Middleware(okJSON()))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/api/directory")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (truncation masquerades as success)", resp.StatusCode)
	}
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err == nil {
		t.Fatal("truncated body parsed cleanly")
	}
}

func TestMiddlewareConnectionReset(t *testing.T) {
	in := New(Config{Seed: 5, ResetRate: 1.0})
	ts := httptest.NewServer(in.Middleware(okJSON()))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/api/search")
	if err == nil {
		resp.Body.Close()
		t.Fatal("reset produced a clean response")
	}
	if s := in.Stats(); s.Resets != 1 {
		t.Fatalf("resets = %d, want 1", s.Resets)
	}
}

func TestTokenOutageTargetsIssuanceOnly(t *testing.T) {
	in := New(Config{Seed: 9, TokenOutage: true})
	ts := httptest.NewServer(in.Middleware(okJSON()))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/api/token", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("token issuance status = %d, want 503 during outage", resp.StatusCode)
	}
	// The key endpoint and everything else stay up.
	for _, path := range []string{"/api/token/key", "/api/meta"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status = %d during token outage, want 200", path, resp.StatusCode)
		}
	}

	in.SetTokenOutage(false)
	resp, err = http.Post(ts.URL+"/api/token", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("issuance still down after outage cleared: %d", resp.StatusCode)
	}
}

func TestRoundTripperInjectsWithoutTouchingServer(t *testing.T) {
	served := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	in := New(Config{Seed: 11, ErrorRate: 1.0})
	client := &http.Client{Transport: in.RoundTripper(nil)}
	resp, err := client.Get(ts.URL + "/api/meta")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want synthesized 503", resp.StatusCode)
	}
	if len(body) == 0 {
		t.Fatal("synthesized response has no body")
	}
	if served != 0 {
		t.Fatalf("server saw %d requests; injected faults must not be delivered", served)
	}
}

func TestRoundTripperReset(t *testing.T) {
	in := New(Config{Seed: 13, ResetRate: 1.0})
	client := &http.Client{Transport: in.RoundTripper(nil)}
	_, err := client.Get("http://127.0.0.1:1/api/meta")
	if err == nil {
		t.Fatal("reset produced a response")
	}
}

func TestLatencyInjection(t *testing.T) {
	in := New(Config{Seed: 17, LatencyMin: 5 * time.Millisecond, LatencyMax: 10 * time.Millisecond})
	ts := httptest.NewServer(in.Middleware(okJSON()))
	defer ts.Close()
	start := time.Now()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("request took %v, want ≥ injected 5ms", elapsed)
	}
	if in.Stats().Delayed != 1 {
		t.Fatalf("delayed = %d, want 1", in.Stats().Delayed)
	}
}
