package faultinject

import (
	"bytes"
	"errors"
	"testing"
)

// memFile is an in-memory walFile recording what "reached disk".
type memFile struct {
	buf    bytes.Buffer
	syncs  int
	closed bool
}

func (m *memFile) Write(p []byte) (int, error) { return m.buf.Write(p) }
func (m *memFile) Sync() error                 { m.syncs++; return nil }
func (m *memFile) Close() error                { m.closed = true; return nil }

func TestCrashFileTearsNthWrite(t *testing.T) {
	under := &memFile{}
	cf := NewCrashFile(under, 3)

	for i := 0; i < 2; i++ {
		if _, err := cf.Write([]byte("12345678")); err != nil {
			t.Fatalf("write %d before the crash ordinal: %v", i+1, err)
		}
	}
	if cf.Crashed() {
		t.Fatal("crashed early")
	}
	n, err := cf.Write([]byte("ABCDEFGH"))
	if !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("crash write returned %v", err)
	}
	if n != 4 {
		t.Fatalf("crash write persisted %d bytes, want half (4)", n)
	}
	if !cf.Crashed() {
		t.Fatal("not crashed after the ordinal")
	}
	// The torn bytes must actually be "on disk": synced and closed.
	if got := under.buf.String(); got != "1234567812345678ABCD" {
		t.Fatalf("underlying bytes = %q", got)
	}
	if under.syncs == 0 || !under.closed {
		t.Fatalf("torn bytes not pushed to disk: syncs=%d closed=%v", under.syncs, under.closed)
	}
}

func TestCrashFileDeadAfterCrash(t *testing.T) {
	cf := NewCrashFile(&memFile{}, 1)
	if _, err := cf.Write([]byte("xx")); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("first write = %v, want crash at ordinal 1", err)
	}
	if _, err := cf.Write([]byte("yy")); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("write after crash = %v", err)
	}
	if err := cf.Sync(); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("sync after crash = %v", err)
	}
	if err := cf.Close(); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("close after crash = %v", err)
	}
}

func TestCrashFileZeroNeverCrashes(t *testing.T) {
	under := &memFile{}
	cf := NewCrashFile(under, 0)
	for i := 0; i < 100; i++ {
		if _, err := cf.Write([]byte("a")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := cf.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := cf.Close(); err != nil {
		t.Fatal(err)
	}
	if cf.Crashed() {
		t.Fatal("crashAt=0 crashed")
	}
}
