package faultinject

import (
	"errors"
	"net"
	"testing"
	"time"
)

// pipeConn returns both ends of an in-memory connection.
func pipeConn(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

// faultSchedule drives writes through a FlakyConn until it drops,
// returning how many writes succeeded first.
func faultSchedule(t *testing.T, cfg FlakyConnConfig) int {
	t.Helper()
	a, b := pipeConn(t)
	fc := NewFlakyConn(a, cfg)
	go func() { // drain the peer so Pipe writes don't block
		buf := make([]byte, 64)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	msg := []byte("0123456789abcdef")
	for i := 0; ; i++ {
		if i > 100000 {
			t.Fatal("no drop within 100k writes")
		}
		if _, err := fc.Write(msg); err != nil {
			if !errors.Is(err, ErrConnDropped) {
				t.Fatalf("write %d failed with %v, want ErrConnDropped", i, err)
			}
			return i
		}
	}
}

func TestFlakyConnDeterministicSchedule(t *testing.T) {
	cfg := FlakyConnConfig{Seed: 7, WriteDropRate: 0.05}
	first := faultSchedule(t, cfg)
	for run := 0; run < 3; run++ {
		if got := faultSchedule(t, cfg); got != first {
			t.Fatalf("run %d dropped after %d writes, first run after %d", run, got, first)
		}
	}
	if other := faultSchedule(t, FlakyConnConfig{Seed: 8, WriteDropRate: 0.05}); other == first {
		t.Logf("seeds 7 and 8 coincided at %d (possible but suspicious)", other)
	}
}

func TestFlakyConnPartialWriteTearsMidFrame(t *testing.T) {
	a, b := pipeConn(t)
	fc := NewFlakyConn(a, FlakyConnConfig{Seed: 1, PartialWriteRate: 1.0})
	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 64)
		n, _ := b.Read(buf)
		got <- buf[:n]
	}()
	frame := []byte("header+payload-frame-bytes")
	n, err := fc.Write(frame)
	if !errors.Is(err, ErrConnDropped) {
		t.Fatalf("partial write error = %v, want ErrConnDropped", err)
	}
	if n != len(frame)/2 {
		t.Fatalf("partial write wrote %d bytes, want %d", n, len(frame)/2)
	}
	select {
	case onWire := <-got:
		if string(onWire) != string(frame[:len(frame)/2]) {
			t.Fatalf("peer saw %q, want the first half %q", onWire, frame[:len(frame)/2])
		}
	case <-time.After(2 * time.Second):
		t.Fatal("peer never received the torn prefix")
	}
	if !fc.Dropped() {
		t.Fatal("partial write did not sever the connection")
	}
	if _, err := fc.Write([]byte("more")); !errors.Is(err, ErrConnDropped) {
		t.Fatalf("write after drop = %v, want ErrConnDropped", err)
	}
	if _, err := fc.Read(make([]byte, 4)); !errors.Is(err, ErrConnDropped) {
		t.Fatalf("read after drop = %v, want ErrConnDropped", err)
	}
}

func TestFlakyConnReadDrop(t *testing.T) {
	a, b := pipeConn(t)
	fc := NewFlakyConn(a, FlakyConnConfig{Seed: 3, ReadDropRate: 1.0})
	go b.Write([]byte("hello"))
	if _, err := fc.Read(make([]byte, 8)); !errors.Is(err, ErrConnDropped) {
		t.Fatalf("read = %v, want ErrConnDropped", err)
	}
	var ne net.Error
	if !errors.As(ErrConnDropped, &ne) || ne.Timeout() {
		t.Fatal("ErrConnDropped should be a non-timeout net.Error")
	}
}

func TestFlakyConnSkipOpsProtectsHandshake(t *testing.T) {
	a, b := pipeConn(t)
	fc := NewFlakyConn(a, FlakyConnConfig{Seed: 2, WriteDropRate: 1.0, SkipOps: 3})
	go func() {
		buf := make([]byte, 64)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 3; i++ {
		if _, err := fc.Write([]byte("handshake")); err != nil {
			t.Fatalf("exempt write %d failed: %v", i, err)
		}
	}
	if _, err := fc.Write([]byte("data")); !errors.Is(err, ErrConnDropped) {
		t.Fatalf("first post-exemption write = %v, want ErrConnDropped", err)
	}
}

func TestFlakyConnMaxFaultsQuiesces(t *testing.T) {
	a, b := pipeConn(t)
	// Delay-only config: every op would roll a fault, but MaxFaults=0
	// faults means we need a droppable config — use read drops capped
	// at 1 on a conn we reopen logically via counting.
	_ = b
	fc := NewFlakyConn(a, FlakyConnConfig{Seed: 5, WriteDropRate: 1.0, MaxFaults: 1})
	if _, err := fc.Write([]byte("x1")); !errors.Is(err, ErrConnDropped) {
		t.Fatalf("first write should drop, got %v", err)
	}
	if fc.Faults() != 1 {
		t.Fatalf("faults = %d, want 1", fc.Faults())
	}
	// The conn is severed for good — MaxFaults matters for multi-fault
	// mixes (delays keep flowing, no new drops); verify no second fault
	// is ever counted.
	fc.Write([]byte("x2"))
	fc.Write([]byte("x3"))
	if fc.Faults() != 1 {
		t.Fatalf("faults after quiesce = %d, want still 1", fc.Faults())
	}
}

func TestFlakyConnDelayBounds(t *testing.T) {
	a, b := pipeConn(t)
	fc := NewFlakyConn(a, FlakyConnConfig{Seed: 9, DelayMin: 2 * time.Millisecond, DelayMax: 6 * time.Millisecond})
	go func() {
		buf := make([]byte, 64)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	const writes = 5
	for i := 0; i < writes; i++ {
		if _, err := fc.Write([]byte("delayed")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if elapsed := time.Since(start); elapsed < writes*2*time.Millisecond {
		t.Fatalf("%d writes took %v, below the injected-delay floor", writes, elapsed)
	}
}
