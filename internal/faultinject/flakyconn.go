package faultinject

import (
	"errors"
	"net"
	"sync"
	"time"

	"opinions/internal/stats"
)

// ErrConnDropped is the error every operation on a FlakyConn returns
// once an injected drop has severed it. It satisfies net.Error as a
// non-timeout so transports classify it like a real peer reset.
var ErrConnDropped = &droppedError{}

type droppedError struct{}

func (*droppedError) Error() string   { return "faultinject: connection dropped" }
func (*droppedError) Timeout() bool   { return false }
func (*droppedError) Temporary() bool { return true }

// FlakyConnConfig describes the fault mix for one wrapped connection.
// All rates are probabilities in [0, 1] evaluated independently per
// operation from one seeded RNG, so a sequential caller sees the same
// fault schedule every run.
type FlakyConnConfig struct {
	// Seed drives the schedule deterministically.
	Seed int64
	// ReadDropRate is the per-Read probability of severing the
	// connection instead of delivering bytes.
	ReadDropRate float64
	// WriteDropRate is the per-Write probability of severing the
	// connection before any byte is written.
	WriteDropRate float64
	// PartialWriteRate is the per-Write probability of a mid-frame
	// partition: half the buffer goes out, then the connection is
	// severed — the peer sees a torn message, the exact artifact WAL
	// framing and replication CRCs must absorb.
	PartialWriteRate float64
	// DelayMin/DelayMax bound a uniform injected delay added to every
	// operation (zero = none).
	DelayMin, DelayMax time.Duration
	// SkipOps exempts the first N operations from faults — long enough
	// to let a handshake through before the chaos starts.
	SkipOps int
	// MaxFaults caps injected faults; after that many the connection
	// behaves perfectly (0 = unlimited). Lets a soak front-load chaos
	// and still guarantee a quiescent tail.
	MaxFaults int
}

// FlakyConn wraps a net.Conn with deterministic fault injection on the
// data path. Deadlines, addresses, and Close pass through untouched.
// Safe for one reader plus one writer, like net.Conn itself.
type FlakyConn struct {
	net.Conn
	cfg FlakyConnConfig

	mu      sync.Mutex
	rng     *stats.RNG
	ops     int
	faults  int
	dropped bool
}

// NewFlakyConn wraps conn; faults follow cfg's seeded schedule.
func NewFlakyConn(conn net.Conn, cfg FlakyConnConfig) *FlakyConn {
	return &FlakyConn{Conn: conn, cfg: cfg, rng: stats.NewRNG(cfg.Seed)}
}

// Dropped reports whether an injected fault has severed the connection.
func (c *FlakyConn) Dropped() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Faults reports how many faults have been injected so far.
func (c *FlakyConn) Faults() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.faults
}

// decide rolls the schedule for one operation: an optional delay plus
// which of the rate-gated faults fires (at most one, the first listed).
// Decisions are serialized under the lock so concurrent read/write
// sides still draw a stable sequence.
func (c *FlakyConn) decide(rates ...float64) (delay time.Duration, fired int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dropped {
		return 0, -1, ErrConnDropped
	}
	c.ops++
	if c.cfg.DelayMax > c.cfg.DelayMin {
		delay = c.cfg.DelayMin + time.Duration(c.rng.Float64()*float64(c.cfg.DelayMax-c.cfg.DelayMin))
	} else {
		delay = c.cfg.DelayMin
	}
	fired = -1
	exempt := c.ops <= c.cfg.SkipOps || (c.cfg.MaxFaults > 0 && c.faults >= c.cfg.MaxFaults)
	for i, rate := range rates {
		// Always draw, so the schedule doesn't depend on exemptions.
		if rate > 0 && c.rng.Float64() < rate && fired < 0 && !exempt {
			fired = i
		}
	}
	if fired >= 0 {
		c.faults++
	}
	return delay, fired, nil
}

// drop severs the connection: the underlying conn closes (the peer
// sees EOF or a reset) and every later operation fails.
func (c *FlakyConn) drop() {
	c.mu.Lock()
	c.dropped = true
	c.mu.Unlock()
	c.Conn.Close()
}

func (c *FlakyConn) Read(p []byte) (int, error) {
	delay, fired, err := c.decide(c.cfg.ReadDropRate)
	if err != nil {
		return 0, err
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if fired == 0 {
		c.drop()
		return 0, ErrConnDropped
	}
	n, err := c.Conn.Read(p)
	if err != nil && c.Dropped() {
		err = ErrConnDropped
	}
	return n, err
}

func (c *FlakyConn) Write(p []byte) (int, error) {
	delay, fired, err := c.decide(c.cfg.WriteDropRate, c.cfg.PartialWriteRate)
	if err != nil {
		return 0, err
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	switch fired {
	case 0: // drop before any byte leaves
		c.drop()
		return 0, ErrConnDropped
	case 1: // mid-frame partition: half the buffer, then sever
		if len(p) > 1 {
			n, werr := c.Conn.Write(p[:len(p)/2])
			c.drop()
			if werr != nil {
				return n, werr
			}
			return n, ErrConnDropped
		}
		c.drop()
		return 0, ErrConnDropped
	}
	n, err := c.Conn.Write(p)
	if err != nil && c.Dropped() {
		err = ErrConnDropped
	}
	return n, err
}

func (c *FlakyConn) Close() error {
	err := c.Conn.Close()
	if errors.Is(err, net.ErrClosed) && c.Dropped() {
		return nil // already severed by an injected fault
	}
	return err
}
