// Package faultinject is the chaos layer the resilience code is tested
// against: a deterministic injector that produces the failures a
// deployed RSP actually sees — added latency, 5xx bursts, connection
// resets, truncated/malformed JSON bodies, and token-issuance outages —
// as both an http.RoundTripper (client-side faults) and a server
// middleware (service-side faults).
//
// Most faults are injected *instead of* running the wrapped handler or
// request, never after it, so an injected failure has no server-side
// effects and the chaos soak can account for uploads exactly. The one
// deliberate exception is TruncateAppliedRate: the handler RUNS and its
// effects stand, but the response is cut off mid-body — the
// applied-but-unacknowledged case that breaks naive retry accounting
// and that the exactly-once upload ledger exists to absorb.
//
// All randomness flows from one seeded RNG behind a mutex, so a
// single-threaded client driving the injector sees the same fault
// schedule on every run.
package faultinject

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"opinions/internal/stats"
)

// Config describes the fault mix. All rates are probabilities in
// [0, 1], evaluated independently per request in the order: token
// outage, reset, 5xx, truncation, latency (at most one fault fires;
// latency composes with anything).
type Config struct {
	// Seed drives the fault schedule deterministically.
	Seed int64
	// ResetRate is the probability of dropping the connection with no
	// response at all.
	ResetRate float64
	// ErrorRate is the probability of answering 503 instead of serving.
	ErrorRate float64
	// ErrorBurst makes injected 5xx come in runs: once one fires, the
	// next ErrorBurst-1 requests fail too (default 1 = independent).
	ErrorBurst int
	// TruncateRate is the probability of answering 200 with a
	// truncated, unparseable JSON body. The handler does NOT run.
	TruncateRate float64
	// TruncateAppliedRate is the probability of running the real
	// handler — its effects stand — and then truncating the response
	// body so the client cannot tell the request was applied. This is
	// the fault that turns at-least-once retry into duplicates unless
	// the server deduplicates by idempotency key.
	TruncateAppliedRate float64
	// LatencyMin/LatencyMax bound a uniform injected delay added to
	// every request (zero = none).
	LatencyMin, LatencyMax time.Duration
	// TokenOutage starts the injector with token issuance down; see
	// SetTokenOutage for flipping it mid-run.
	TokenOutage bool
}

// Stats counts injected faults.
type Stats struct {
	Requests           int
	Resets             int
	Errors             int
	Truncations        int
	TruncationsApplied int
	TokenRefusals      int
	Delayed            int
}

// Injector decides, per request, which fault (if any) to inject.
// Safe for concurrent use; decisions are serialized, so a sequential
// request stream sees a reproducible schedule.
type Injector struct {
	mu          sync.Mutex
	cfg         Config
	rng         *stats.RNG
	burstLeft   int
	tokenOutage bool
	stats       Stats
}

// New builds an injector for the fault mix.
func New(cfg Config) *Injector {
	if cfg.ErrorBurst <= 0 {
		cfg.ErrorBurst = 1
	}
	return &Injector{cfg: cfg, rng: stats.NewRNG(cfg.Seed), tokenOutage: cfg.TokenOutage}
}

// SetTokenOutage flips the token-issuance outage on or off, simulating
// the issuer (or the attestation service gating it) going down mid-run.
func (in *Injector) SetTokenOutage(down bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.tokenOutage = down
}

// Stats returns a snapshot of the fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// fault is one injection decision.
type fault int

const (
	faultNone fault = iota
	faultReset
	faultError
	faultTruncate
	faultTruncateApplied
	faultTokenRefusal
)

// decide rolls the dice for one request. isToken marks requests against
// the token-issuance endpoint, which a token outage rejects outright.
func (in *Injector) decide(isToken bool) (fault, time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Requests++

	var delay time.Duration
	if in.cfg.LatencyMax > in.cfg.LatencyMin {
		delay = in.cfg.LatencyMin +
			time.Duration(in.rng.Float64()*float64(in.cfg.LatencyMax-in.cfg.LatencyMin))
	} else {
		delay = in.cfg.LatencyMin
	}
	if delay > 0 {
		in.stats.Delayed++
	}

	if isToken && in.tokenOutage {
		in.stats.TokenRefusals++
		return faultTokenRefusal, delay
	}
	if in.burstLeft > 0 {
		in.burstLeft--
		in.stats.Errors++
		return faultError, delay
	}
	if in.cfg.ResetRate > 0 && in.rng.Float64() < in.cfg.ResetRate {
		in.stats.Resets++
		return faultReset, delay
	}
	if in.cfg.ErrorRate > 0 && in.rng.Float64() < in.cfg.ErrorRate {
		in.stats.Errors++
		in.burstLeft = in.cfg.ErrorBurst - 1
		return faultError, delay
	}
	if in.cfg.TruncateRate > 0 && in.rng.Float64() < in.cfg.TruncateRate {
		in.stats.Truncations++
		return faultTruncate, delay
	}
	if in.cfg.TruncateAppliedRate > 0 && in.rng.Float64() < in.cfg.TruncateAppliedRate {
		in.stats.TruncationsApplied++
		return faultTruncateApplied, delay
	}
	return faultNone, delay
}

// isTokenIssuance matches the blind-signing endpoint (not the public
// key fetch — an outage of the signer does not unpublish its key).
func isTokenIssuance(method, path string) bool {
	return method == http.MethodPost && path == "/api/token"
}

// truncatedBody is a syntactically broken JSON prefix — what a
// mid-transfer connection loss leaves in the client's buffer.
const truncatedBody = `{"entities":[{"key":"yelp/trunc`

// Middleware returns a server middleware injecting the configured
// faults before the wrapped handler runs. Its type matches
// rspserver.Middleware structurally, so it can join a Chain directly.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, delay := in.decide(isTokenIssuance(r.Method, r.URL.Path))
		if delay > 0 {
			time.Sleep(delay)
		}
		switch f {
		case faultReset:
			// The canonical way to abort the connection mid-response:
			// net/http drops the TCP stream and the client sees
			// EOF/ECONNRESET. Recovery middleware must re-panic this.
			panic(http.ErrAbortHandler)
		case faultError:
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"injected overload"}`, http.StatusServiceUnavailable)
		case faultTokenRefusal:
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"injected token issuance outage"}`, http.StatusServiceUnavailable)
		case faultTruncate:
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte(truncatedBody))
		case faultTruncateApplied:
			// Run the real handler against a buffer, keep its effects,
			// then forward the true status with only a prefix of the
			// body — the client sees an unparseable success.
			rec := &bufferedResponse{header: make(http.Header), status: http.StatusOK}
			next.ServeHTTP(rec, r)
			for k, vs := range rec.header {
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
			w.WriteHeader(rec.status)
			_, _ = w.Write(truncate(rec.body))
		default:
			next.ServeHTTP(w, r)
		}
	})
}

// bufferedResponse captures a handler's response so the injector can
// forward a truncated copy after the handler has fully run.
type bufferedResponse struct {
	header http.Header
	status int
	body   []byte
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(status int) { b.status = status }

func (b *bufferedResponse) Write(p []byte) (int, error) {
	b.body = append(b.body, p...)
	return len(p), nil
}

// truncate cuts a body roughly in half, guaranteeing the result is a
// strict prefix (and therefore unparseable JSON for any object/array
// body the API produces).
func truncate(body []byte) []byte {
	if len(body) < 2 {
		return nil
	}
	return body[:len(body)/2]
}

// resetError is the client-side stand-in for a connection reset.
type resetError struct{}

func (resetError) Error() string   { return "faultinject: connection reset" }
func (resetError) Timeout() bool   { return false }
func (resetError) Temporary() bool { return true }

// roundTripper injects faults on the client side of the wire.
type roundTripper struct {
	in   *Injector
	base http.RoundTripper
}

// RoundTripper wraps base (nil = http.DefaultTransport) so requests
// suffer the configured faults before leaving the process. As with the
// middleware, a faulted request is never delivered, so it has no
// server-side effects.
func (in *Injector) RoundTripper(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &roundTripper{in: in, base: base}
}

func (t *roundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	f, delay := t.in.decide(isTokenIssuance(req.Method, req.URL.Path))
	if delay > 0 {
		time.Sleep(delay)
	}
	synthesize := func(status int, body string) *http.Response {
		return &http.Response{
			Status:     fmt.Sprintf("%d %s", status, http.StatusText(status)),
			StatusCode: status,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          stringBody(body),
			ContentLength: int64(len(body)),
			Request:       req,
		}
	}
	switch f {
	case faultReset:
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, resetError{}
	case faultError:
		if req.Body != nil {
			req.Body.Close()
		}
		return synthesize(http.StatusServiceUnavailable, `{"error":"injected overload"}`), nil
	case faultTokenRefusal:
		if req.Body != nil {
			req.Body.Close()
		}
		return synthesize(http.StatusServiceUnavailable, `{"error":"injected token issuance outage"}`), nil
	case faultTruncate:
		if req.Body != nil {
			req.Body.Close()
		}
		return synthesize(http.StatusOK, truncatedBody), nil
	case faultTruncateApplied:
		// Deliver the request for real, then lose most of the response
		// in "transit": the server applied it, the client cannot tell.
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		cut := truncate(body)
		resp.Body = stringBody(string(cut))
		resp.ContentLength = int64(len(cut))
		return resp, nil
	default:
		return t.base.RoundTrip(req)
	}
}

// stringBody wraps a string as a response body.
func stringBody(s string) *bodyReader { return &bodyReader{r: strings.NewReader(s)} }

type bodyReader struct{ r *strings.Reader }

func (b *bodyReader) Read(p []byte) (int, error) { return b.r.Read(p) }
func (b *bodyReader) Close() error               { return nil }
