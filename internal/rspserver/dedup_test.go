package rspserver

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"opinions/internal/simclock"
	"opinions/internal/world"
)

// uploadFor builds a rating upload for the test catalog's entity "a".
func uploadFor(t *testing.T, ts *httptest.Server, device, key string) UploadRequest {
	t.Helper()
	rating := 4.0
	return UploadRequest{
		AnonID: "anon-" + device,
		Entity: "yelp/a",
		Rating: &rating,
		Token:  fetchToken(t, ts.URL, device),
		Key:    key,
	}
}

// TestUploadReplaySameTokenIsIdempotent is the truncated-2xx retry on
// the wire: the exact same request body (same token, same key) arrives
// twice. The second delivery must answer success and change nothing.
func TestUploadReplaySameTokenIsIdempotent(t *testing.T) {
	srv, ts := testServer(t)
	req := uploadFor(t, ts, "dev-replay", "key-replay-1")

	for attempt := 0; attempt < 3; attempt++ {
		if resp := postJSON(t, ts.URL+"/api/upload", req, nil); resp.StatusCode != 202 {
			t.Fatalf("attempt %d: status %d, want 202", attempt, resp.StatusCode)
		}
	}
	_, ops, _ := srv.Stores()
	if got := ops.Total(); got != 1 {
		t.Fatalf("opinions.Total() = %d after 3 deliveries of one upload, want 1", got)
	}
}

// TestUploadRedeliveryFreshTokenIsIdempotent is the spool-redrain case:
// the first delivery was applied but unacknowledged, the client spooled
// the upload (token stripped) and redelivers under a fresh token with
// the original idempotency key.
func TestUploadRedeliveryFreshTokenIsIdempotent(t *testing.T) {
	srv, ts := testServer(t)
	first := uploadFor(t, ts, "dev-redeliver", "key-redeliver-1")
	if resp := postJSON(t, ts.URL+"/api/upload", first, nil); resp.StatusCode != 202 {
		t.Fatalf("first delivery status %d", resp.StatusCode)
	}

	second := first
	second.Token = fetchToken(t, ts.URL, "dev-redeliver")
	if resp := postJSON(t, ts.URL+"/api/upload", second, nil); resp.StatusCode != 202 {
		t.Fatalf("redelivery status %d, want 202", resp.StatusCode)
	}
	_, ops, hists := srv.Stores()
	if got := ops.Total(); got != 1 {
		t.Fatalf("opinions.Total() = %d after redelivery, want 1", got)
	}
	if got := hists.Stats().Records; got != 0 {
		t.Fatalf("history records = %d for a rating-only upload, want 0", got)
	}
}

// TestUploadSpentTokenUnknownKeyStays403: deduplication must not excuse
// genuine double-spending — a spent token under a *different* key is
// still refused.
func TestUploadSpentTokenUnknownKeyStays403(t *testing.T) {
	srv, ts := testServer(t)
	first := uploadFor(t, ts, "dev-doublespend", "key-ds-1")
	if resp := postJSON(t, ts.URL+"/api/upload", first, nil); resp.StatusCode != 202 {
		t.Fatalf("first delivery status %d", resp.StatusCode)
	}
	second := first
	second.Key = "key-ds-2" // a different upload riding a spent token
	if resp := postJSON(t, ts.URL+"/api/upload", second, nil); resp.StatusCode != 403 {
		t.Fatalf("spent token under new key: status %d, want 403", resp.StatusCode)
	}
	_, ops, _ := srv.Stores()
	if got := ops.Total(); got != 1 {
		t.Fatalf("opinions.Total() = %d, want 1", got)
	}
}

// TestUploadKeylessStaysAtLeastOnce: legacy clients without keys keep
// the old semantics — every delivery counts.
func TestUploadKeylessStaysAtLeastOnce(t *testing.T) {
	srv, ts := testServer(t)
	for i := 0; i < 2; i++ {
		req := uploadFor(t, ts, "dev-legacy", "")
		if resp := postJSON(t, ts.URL+"/api/upload", req, nil); resp.StatusCode != 202 {
			t.Fatalf("delivery %d status %d", i, resp.StatusCode)
		}
	}
	_, ops, _ := srv.Stores()
	if got := ops.Total(); got != 2 {
		t.Fatalf("opinions.Total() = %d for two keyless uploads, want 2", got)
	}
}

// TestDedupLedgerSurvivesSnapshot: exactly-once must hold across a
// server restart — a key accepted before the shutdown snapshot is still
// a duplicate afterward.
func TestDedupLedgerSurvivesSnapshot(t *testing.T) {
	srv, ts := testServer(t)
	req := uploadFor(t, ts, "dev-snap", "key-snap-1")
	if resp := postJSON(t, ts.URL+"/api/upload", req, nil); resp.StatusCode != 202 {
		t.Fatalf("first delivery status %d", resp.StatusCode)
	}
	snap := srv.Snapshot()

	srv2, ts2 := testServer(t)
	if err := srv2.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if srv2.DedupLen() != 1 {
		t.Fatalf("restored ledger holds %d keys, want 1", srv2.DedupLen())
	}
	redeliver := req
	redeliver.Token = fetchToken(t, ts2.URL, "dev-snap")
	if resp := postJSON(t, ts2.URL+"/api/upload", redeliver, nil); resp.StatusCode != 202 {
		t.Fatalf("post-restart redelivery status %d, want 202", resp.StatusCode)
	}
	_, ops, _ := srv2.Stores()
	if got := ops.Total(); got != 1 {
		t.Fatalf("opinions.Total() = %d after restart + redelivery, want 1", got)
	}
}

// TestDedupLedgerBounded: the ledger evicts FIFO at its configured
// capacity instead of growing without bound.
func TestDedupLedgerBounded(t *testing.T) {
	catalog := []*world.Entity{
		{ID: "a", Service: world.Yelp, Zip: "z", Category: "c", Name: "A", Quality: 3},
	}
	srv, err := New(Config{
		Catalog: catalog, Clock: simclock.NewSim(simclock.Epoch),
		KeyBits: 1024, DedupCapacity: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 7; i++ {
		req := uploadFor(t, ts, "dev-bound", fmt.Sprintf("key-bound-%d", i))
		if resp := postJSON(t, ts.URL+"/api/upload", req, nil); resp.StatusCode != 202 {
			t.Fatalf("upload %d status %d", i, resp.StatusCode)
		}
	}
	if got := srv.DedupLen(); got != 4 {
		t.Fatalf("ledger holds %d keys, want capacity 4", got)
	}
	// The newest key is still deduplicated; the evicted oldest one has
	// degraded (by design) to at-least-once.
	newest := uploadFor(t, ts, "dev-bound", "key-bound-6")
	_, ops, _ := srv.Stores()
	before := ops.Total()
	if resp := postJSON(t, ts.URL+"/api/upload", newest, nil); resp.StatusCode != 202 {
		t.Fatalf("redelivery of newest key status %d", resp.StatusCode)
	}
	if got := ops.Total(); got != before {
		t.Fatalf("opinions.Total() = %d after deduplicated redelivery, want %d", got, before)
	}
}

// TestDirectoryEmptyIsJSONArray: a directory query with no matches must
// serialize as [] — a stable array type for clients — not JSON null.
func TestDirectoryEmptyIsJSONArray(t *testing.T) {
	_, ts := testServer(t)
	var out []WireEntity
	resp := getJSON(t, ts.URL+"/api/directory?service=nosuch", &out)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out == nil {
		t.Fatal("empty directory decoded to nil — server sent JSON null, want []")
	}
	if len(out) != 0 {
		t.Fatalf("unexpected %d entities for unknown service", len(out))
	}
}
