package rspserver

// Cluster support: the server-side half of multi-node partitioning.
//
// Two middlewares make one rspd node a well-behaved member of a
// cluster.Ring:
//
//   - WithOwnershipGate refuses keyed requests for entities this
//     partition does not own with 421 Misdirected Request plus an
//     X-Partition-Node header naming the owner, so a client holding a
//     stale or missing ring self-corrects in one round trip.
//
//   - WithScatterGather turns any node into a read coordinator: an
//     incoming GET /api/search or /api/directory fans out to every
//     partition (itself included, served in-process), merges and
//     re-ranks the partial answers, and responds with the cluster-wide
//     view. Fanout legs carry X-Cluster-Local so they are answered
//     from the receiving partition's own slice — never re-fanned.
//     Partitions that fail or miss the per-partition deadline are
//     skipped and named in X-Cluster-Partial: a partial answer now
//     beats a timeout, and the header lets callers decide.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"opinions/internal/cluster"
	"opinions/internal/obs"
	"opinions/internal/world"
)

// Cluster protocol headers.
const (
	// ClusterLocalHeader marks a scatter-gather fanout leg: answer from
	// this partition's own slice, do not coordinate.
	ClusterLocalHeader = "X-Cluster-Local"
	// PartitionNodeHeader names the owning partition's preferred node on
	// a 421 misroute refusal.
	PartitionNodeHeader = "X-Partition-Node"
	// PartialHeader lists the partition ids (comma-separated) missing
	// from a gathered response.
	PartialHeader = "X-Cluster-Partial"
	// FanoutHeader reports how many partitions a gathered response
	// consulted.
	FanoutHeader = "X-Cluster-Fanout"
	// GatherCacheHeader is "hit" when a gathered response was served
	// from the coordinator's bounded-staleness cache.
	GatherCacheHeader = "X-Cluster-Cache"
)

var (
	metricClusterMisroutes = obs.Default.Counter("cluster_misroutes_total",
		"Keyed requests refused with 421 because another partition owns the key.")
	metricClusterFanouts = obs.Default.CounterVec("cluster_fanout_total",
		"Scatter-gather coordinations served, by route.",
		"route")
	metricClusterPartials = obs.Default.Counter("cluster_fanout_partials_total",
		"Gathered responses missing at least one partition.")
	metricClusterFanoutSeconds = obs.Default.HistogramVec("cluster_fanout_partition_seconds",
		"Per-partition scatter-gather leg latency in seconds, by partition.",
		nil, "partition")
	metricClusterGatherCacheHits = obs.Default.Counter("cluster_gather_cache_hits_total",
		"Gathered responses served from the coordinator's bounded-staleness cache.")
)

// WithOwnershipGate refuses keyed requests whose entity another
// partition owns: 421 Misdirected Request, the owner's preferred node
// in X-Partition-Node, and a JSON error naming the partition. Requests
// without an extractable key pass through — the handlers' own
// validation answers those. Reads and writes are both gated: this
// node's stores simply do not hold a foreign entity, so serving the
// read would invent an empty answer, and accepting the write would
// strand it outside the owner's history.
func WithOwnershipGate(ring *cluster.Ring, self int) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			key := requestEntityKey(r)
			if key == "" || ring.Owns(self, key) {
				next.ServeHTTP(w, r)
				return
			}
			p := ring.Partition(key)
			node := ring.Preferred(p)
			metricClusterMisroutes.Inc()
			w.Header().Set(PartitionNodeHeader, node)
			writeJSON(w, http.StatusMisdirectedRequest, ErrorResponse{
				Error: fmt.Sprintf("rspserver: entity %q belongs to partition %d (%s), not this node", key, p, node),
			})
		})
	}
}

// requestEntityKey extracts the routing key from the keyed routes: the
// entity query parameter on reads, the entity field of the JSON body on
// writes. Unkeyed routes return "".
func requestEntityKey(r *http.Request) string {
	switch {
	case r.URL.Path == "/api/entity" && r.Method == http.MethodGet:
		return r.URL.Query().Get("key")
	case r.URL.Path == "/api/reviews" && r.Method == http.MethodGet:
		return r.URL.Query().Get("entity")
	case (r.URL.Path == "/api/reviews" || r.URL.Path == "/api/upload") && r.Method == http.MethodPost:
		return peekEntity(r)
	}
	return ""
}

// peekEntity reads the request body to extract its entity field, then
// restores the body so the handler decodes it unchanged. Oversized or
// malformed bodies return "" — the handler's own MaxBytesReader and
// decoder produce the right error; the gate only needs the key when
// there is one.
func peekEntity(r *http.Request) string {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody+1))
	r.Body.Close()
	r.Body = io.NopCloser(bytes.NewReader(body))
	if err != nil || int64(len(body)) > maxRequestBody {
		return ""
	}
	var probe struct {
		Entity string `json:"entity"`
	}
	if json.Unmarshal(body, &probe) != nil {
		return ""
	}
	return probe.Entity
}

// GatherOptions tunes the scatter-gather coordinator.
type GatherOptions struct {
	// Client performs the remote fanout legs; default is a fresh client
	// with connection pooling sized for the fanout (timeouts come from
	// the per-partition context, not the client).
	Client *http.Client
	// Timeout is the per-partition budget: a partition that has not
	// answered — across however many of its nodes were tried — within
	// this window is reported partial. Default 2s.
	Timeout time.Duration
	// CacheTTL bounds the staleness of the coordinator's gathered-result
	// cache. A complete (every partition answered) merge is reused for
	// identical request URIs within this window, amortizing the fanout
	// the way a single node's commit-invalidated read cache amortizes a
	// directory scan — the coordinator cannot see remote commits, so
	// time, not invalidation, bounds staleness. Partial responses are
	// never cached: an outage must not outlive the node that caused it.
	// Default 500ms; negative disables caching.
	CacheTTL time.Duration
}

// maxGatherBody bounds one fanout leg's response (a paper-scale full
// directory is ~15 MB; 64 MiB leaves headroom without letting a
// misbehaving peer balloon the coordinator).
const maxGatherBody = 64 << 20

// WithScatterGather makes this node a read coordinator for GET
// /api/search and /api/directory: fan the query out to every partition
// (the node's own partition answers in-process), merge, and re-rank.
// Requests carrying ClusterLocalHeader are fanout legs from another
// coordinator and pass straight through to the local slice.
func WithScatterGather(ring *cluster.Ring, self int, opts GatherOptions) Middleware {
	client := opts.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        4 * ring.NumPartitions(),
			MaxIdleConnsPerHost: 4,
		}}
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	var cache *gatherCache
	if opts.CacheTTL >= 0 {
		ttl := opts.CacheTTL
		if ttl == 0 {
			ttl = 500 * time.Millisecond
		}
		cache = &gatherCache{ttl: ttl, entries: map[string]gatherEntry{}}
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			route := r.URL.Path
			if r.Method != http.MethodGet ||
				(route != "/api/search" && route != "/api/directory") ||
				r.Header.Get(ClusterLocalHeader) != "" {
				next.ServeHTTP(w, r)
				return
			}
			gather(w, r, next, ring, self, client, timeout, cache)
		})
	}
}

// gatherCache holds complete gathered responses for a short TTL. The
// entry count is bounded; when full and no entry has expired, new
// results simply go uncached — the coordinator degrades to re-fanning
// rather than growing without bound.
type gatherCache struct {
	mu      sync.Mutex
	ttl     time.Duration
	entries map[string]gatherEntry
}

type gatherEntry struct {
	body    []byte
	expires time.Time
}

const maxGatherCacheEntries = 1024

func (c *gatherCache) get(uri string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[uri]
	if !ok || time.Now().After(e.expires) {
		return nil, false
	}
	return e.body, true
}

func (c *gatherCache) put(uri string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) >= maxGatherCacheEntries {
		now := time.Now()
		for k, e := range c.entries {
			if now.After(e.expires) {
				delete(c.entries, k)
			}
		}
		if len(c.entries) >= maxGatherCacheEntries {
			return
		}
	}
	c.entries[uri] = gatherEntry{body: body, expires: time.Now().Add(c.ttl)}
}

// leg is one partition's contribution to a gathered response.
type leg struct {
	body []byte
	ok   bool
}

func gather(w http.ResponseWriter, r *http.Request, next http.Handler,
	ring *cluster.Ring, self int, client *http.Client, timeout time.Duration,
	cache *gatherCache) {
	n := ring.NumPartitions()
	uri := r.URL.RequestURI()
	if cache != nil {
		if body, ok := cache.get(uri); ok {
			metricClusterGatherCacheHits.Inc()
			w.Header().Set(FanoutHeader, strconv.Itoa(n))
			w.Header().Set(GatherCacheHeader, "hit")
			writeJSONBytes(w, http.StatusOK, body)
			return
		}
	}
	legs := make([]leg, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), timeout)
			defer cancel()
			t0 := time.Now()
			if p == self {
				legs[p] = localLeg(next, r, ctx)
			} else {
				legs[p] = remoteLeg(ctx, client, ring.Nodes(p), uri)
			}
			metricClusterFanoutSeconds.With(strconv.Itoa(p)).Observe(time.Since(t0).Seconds())
		}(p)
	}
	wg.Wait()

	var missed []string
	merge := func(decodeAppend func(body []byte) bool) {
		for p, l := range legs {
			if !l.ok || !decodeAppend(l.body) {
				missed = append(missed, strconv.Itoa(p))
			}
		}
	}

	var payload any
	switch r.URL.Path {
	case "/api/search":
		var all []WireResult
		merge(func(body []byte) bool {
			var rs []WireResult
			if json.Unmarshal(body, &rs) != nil {
				return false
			}
			all = append(all, rs...)
			return true
		})
		payload = mergeSearch(all, r.URL.Query().Get("limit"))
	case "/api/directory":
		all := []WireEntity{}
		merge(func(body []byte) bool {
			var es []WireEntity
			if json.Unmarshal(body, &es) != nil {
				return false
			}
			all = append(all, es...)
			return true
		})
		sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
		payload = all
	}

	metricClusterFanouts.With(strings.TrimPrefix(r.URL.Path, "/api/")).Inc()
	if len(missed) == n {
		writeErr(w, http.StatusServiceUnavailable,
			fmt.Errorf("rspserver: no partition answered within %v", timeout))
		return
	}
	w.Header().Set(FanoutHeader, strconv.Itoa(n))
	if len(missed) > 0 {
		metricClusterPartials.Inc()
		w.Header().Set(PartialHeader, strings.Join(missed, ","))
		writeJSON(w, http.StatusOK, payload)
		return
	}
	body, err := encodeJSON(payload)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if cache != nil {
		cache.put(uri, body)
	}
	writeJSONBytes(w, http.StatusOK, body)
}

// mergeSearch re-ranks the union of per-partition results exactly as
// one node ranks its own: score descending, entity key ascending on
// ties (the engine tie-breaks on entity ID; within one service the
// orders agree, and across services the key prefix makes the order
// deterministic). Partitions own disjoint key ranges, so duplicates
// only appear under a misconfigured ring; the higher-scoring copy wins.
func mergeSearch(all []WireResult, limitStr string) []WireResult {
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].Entity.Key < all[j].Entity.Key
	})
	merged := all[:0]
	seen := make(map[string]bool, len(all))
	for _, res := range all {
		if seen[res.Entity.Key] {
			continue
		}
		seen[res.Entity.Key] = true
		merged = append(merged, res)
	}
	if limit, err := strconv.Atoi(limitStr); err == nil && limit > 0 && limit < len(merged) {
		merged = merged[:limit]
	}
	if merged == nil {
		merged = []WireResult{}
	}
	return merged
}

// localLeg serves a fanout leg from this node's own slice, in-process:
// the cloned request carries ClusterLocalHeader so the inner handler
// answers locally, and the response lands in a buffer instead of the
// client connection. A panic in the local handler fails just this leg
// (the request goroutine's recovery middleware cannot see a gather
// goroutine).
func localLeg(next http.Handler, r *http.Request, ctx context.Context) (l leg) {
	defer func() {
		if recover() != nil {
			l = leg{}
		}
	}()
	req := r.Clone(ctx)
	req.Header.Set(ClusterLocalHeader, "1")
	buf := &bufferedResponse{header: make(http.Header), status: http.StatusOK}
	next.ServeHTTP(buf, req)
	if buf.status != http.StatusOK {
		return leg{}
	}
	return leg{body: buf.buf.Bytes(), ok: true}
}

// remoteLeg fetches one partition's slice, walking its nodes in
// preference order under the partition's shared deadline: a hung
// preferred node consumes the budget (and the partition goes partial),
// while a cleanly refused connection falls through to a follower
// immediately.
func remoteLeg(ctx context.Context, client *http.Client, nodes []string, uri string) leg {
	for _, node := range nodes {
		if ctx.Err() != nil {
			return leg{}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+uri, nil)
		if err != nil {
			continue
		}
		req.Header.Set(ClusterLocalHeader, "1")
		resp, err := client.Do(req)
		if err != nil {
			continue
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxGatherBody+1))
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK || len(body) > maxGatherBody {
			continue
		}
		return leg{body: body, ok: true}
	}
	return leg{}
}

// bufferedResponse captures an in-process handler's response for the
// local fanout leg.
type bufferedResponse struct {
	header http.Header
	status int
	buf    bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(status int) { b.status = status }

func (b *bufferedResponse) Write(p []byte) (int, error) { return b.buf.Write(p) }

// FilterCatalog returns the entities partition p owns — the slice of
// the full catalog a clustered node serves. Every node builds the same
// full catalog deterministically (same world seed) and keeps only its
// share, so the union across partitions is exactly the whole directory.
func FilterCatalog(ring *cluster.Ring, p int, catalog []*world.Entity) []*world.Entity {
	owned := make([]*world.Entity, 0, len(catalog)/ring.NumPartitions()+1)
	for _, e := range catalog {
		if ring.Owns(p, e.Key()) {
			owned = append(owned, e)
		}
	}
	return owned
}
