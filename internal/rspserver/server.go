// Package rspserver is the Recommendation Sharing Provider service of
// Figure 2: the HTTP API that accepts explicit reviews and anonymous
// inference uploads, answers search queries with both review and
// inferred-opinion summaries, issues rate-limited blind-signed upload
// tokens, trains and serves the inference model, and runs the §4.3
// fraud sweep over its anonymous history store.
//
// The API deliberately has no endpoint that retrieves a history by its
// anonymous ID — the store is update-only toward clients (§4.2).
package rspserver

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/big"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"opinions/internal/aggregate"
	"opinions/internal/attest"
	"opinions/internal/blindsig"
	"opinions/internal/dp"
	"opinions/internal/fraud"
	"opinions/internal/history"
	"opinions/internal/inference"
	"opinions/internal/interaction"
	"opinions/internal/readcache"
	"opinions/internal/reviews"
	"opinions/internal/search"
	"opinions/internal/simclock"
	"opinions/internal/stats"
	"opinions/internal/storage"
	"opinions/internal/store"
	"opinions/internal/world"
)

// Config configures a server.
type Config struct {
	// Catalog is the entity directory the service fronts.
	Catalog []*world.Entity
	// Clock defaults to the real clock.
	Clock simclock.Clock
	// TokenRate and TokenPeriod bound per-device token issuance
	// (defaults: 50 per 24h).
	TokenRate   int
	TokenPeriod time.Duration
	// KeyBits sizes the issuer's RSA key (default 2048; tests use less).
	KeyBits int
	// Issuer, when non-nil, is used instead of generating a fresh token
	// key (KeyBits, TokenRate, and TokenPeriod are then ignored). A
	// replicated leader/follower pair is handed the same issuer so
	// tokens clients fetched before a failover stay redeemable after it.
	Issuer *blindsig.Issuer
	// Zips lists the query locations exposed in /api/meta; optional.
	Zips []string
	// Attestation, when non-nil, gates token issuance on remote
	// attestation (§4.3): only devices with a valid, unexpired quote of
	// a known-good client build receive upload tokens.
	Attestation *attest.Verifier
	// PrivacyEpsilon, when positive, releases all inference-derived
	// aggregates (inferred counts/histograms, Figure-3 visualizations)
	// through an ε-differentially-private Laplace mechanism — closing
	// the small-count leakage the paper's cited de-anonymization work
	// [24, 25] warns about. Explicit reviews are public posts and are
	// released exactly.
	PrivacyEpsilon float64
	// PrivacySeed makes the noise deterministic for tests; 0 seeds from
	// the key generation entropy.
	PrivacySeed int64
	// DedupCapacity bounds the exactly-once upload ledger (number of
	// idempotency keys remembered; default 65536). Older keys evict FIFO;
	// an evicted key degrades that upload to at-least-once, never loss.
	// Ignored when Store is supplied (the store owns the ledger).
	DedupCapacity int
	// Store, when non-nil, is the durable state layer every mutation
	// commits through — typically store.Open with a WAL directory, after
	// recovery. Nil builds a memory-only store: same commit interface,
	// no log (tests, simulations, and the legacy -data snapshot mode).
	Store *store.Store
	// DisableReadCache turns off the pre-encoded read-response cache
	// (internal/readcache). The cache is on by default; disabling it is
	// for uncached baselines in benchmarks and for tests that assert on
	// recomputation.
	DisableReadCache bool
}

// Server implements the RSP. Construct with New.
//
// All state lives in the store.Store: every mutation path — uploads,
// reviews, training pairs, retrains, fraud sweeps — builds a
// store.Record and goes through st.Commit, which serializes applies,
// logs them, and (on a durable store) acknowledges after fsync. Reads
// go straight to the store's striped sub-stores and never contend with
// the commit lock.
type Server struct {
	catalog  []*world.Entity
	engine   *search.Engine
	issuer   *blindsig.Issuer
	redeemer *blindsig.Redeemer
	clock    simclock.Clock
	meta     MetaResponse
	attestor *attest.Verifier
	st       *store.Store

	// cache holds pre-encoded entity/directory responses, invalidated
	// by the store's commit hook; nil when disabled. dirKinds is the
	// closed set of cacheable directory filters — attacker-chosen
	// service strings must not mint unbounded cache keys.
	cache    *readcache.Cache
	dirKinds map[string]bool

	dpMu   sync.Mutex
	dpMech *dp.Mechanism
}

// New builds a server over the catalog.
func New(cfg Config) (*Server, error) {
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.TokenRate <= 0 {
		cfg.TokenRate = 50
	}
	if cfg.TokenPeriod <= 0 {
		cfg.TokenPeriod = 24 * time.Hour
	}
	if cfg.KeyBits <= 0 {
		cfg.KeyBits = 2048
	}
	issuer := cfg.Issuer
	if issuer == nil {
		var err error
		issuer, err = blindsig.NewIssuer(cfg.KeyBits, cfg.TokenRate, cfg.TokenPeriod, cfg.Clock)
		if err != nil {
			return nil, fmt.Errorf("rspserver: %w", err)
		}
	}
	st := cfg.Store
	if st == nil {
		var err error
		st, err = store.Open(store.Options{Clock: cfg.Clock, DedupCapacity: cfg.DedupCapacity})
		if err != nil {
			return nil, fmt.Errorf("rspserver: %w", err)
		}
	}
	s := &Server{
		catalog:  cfg.Catalog,
		engine:   search.NewEngine(cfg.Catalog, st.Reviews(), st.Opinions(), st.Histories()),
		issuer:   issuer,
		redeemer: blindsig.NewRedeemer(issuer.PublicKey()),
		clock:    cfg.Clock,
		attestor: cfg.Attestation,
		st:       st,
	}
	if cfg.PrivacyEpsilon > 0 {
		seed := cfg.PrivacySeed
		if seed == 0 {
			seed = issuer.PublicKey().N.Int64() // arbitrary key-derived entropy
		}
		s.dpMech = dp.New(cfg.PrivacyEpsilon, stats.NewRNG(seed))
	}
	s.meta = buildMeta(cfg.Catalog, cfg.Zips)
	if !cfg.DisableReadCache {
		s.cache = readcache.New()
		s.dirKinds = map[string]bool{"": true}
		for _, e := range cfg.Catalog {
			s.dirKinds[string(e.Service)] = true
		}
		st.SetCommitHook(s.invalidateOnCommit)
		// Restores jump timelines, so per-entity invalidation cannot
		// bound what changed. Hooking the store (rather than flushing in
		// RestoreSnapshot) covers every Restore caller — including a
		// replication follower seeding from a leader snapshot, which
		// never goes through the server.
		st.SetRestoreHook(s.cache.Reset)
	}
	return s, nil
}

// Cache namespaces: one per cached route.
const (
	cacheNSEntity    = "entity"
	cacheNSDirectory = "directory"
)

// invalidateOnCommit is the store commit hook: it maps each applied
// record to the cache entries it can stale. Uploads and reviews touch
// exactly one entity's aggregates, so they invalidate that entity's
// stripe only; retrains and fraud sweeps change inference-derived
// state across entities, so they flush everything. Training pairs
// change no served read state. Directory listings derive solely from
// the immutable catalog and are never invalidated by commits.
func (s *Server) invalidateOnCommit(rec *store.Record) {
	switch rec.Kind {
	case store.KindUpload:
		s.cache.Invalidate(rec.Entity, cacheNSEntity)
	case store.KindReview:
		if rec.Review != nil {
			s.cache.Invalidate(rec.Review.Entity, cacheNSEntity)
		}
	case store.KindRetrain, store.KindSweep:
		s.cache.Reset()
	}
}

// ReadCache exposes the response cache for introspection (tests,
// cmd/loadgen's self-hosted mode); nil when disabled.
func (s *Server) ReadCache() *readcache.Cache { return s.cache }

// entityCache returns the cache for the entity-describe route, or nil
// when it must be bypassed: with differential privacy enabled every
// release draws fresh noise, and caching would freeze one sample.
func (s *Server) entityCache() *readcache.Cache {
	if s.dpMech != nil {
		return nil
	}
	return s.cache
}

// releaseResult applies the differential-privacy mechanism (when
// enabled) to every inference-derived field of a result before it leaves
// the server. Explicit-review fields pass through untouched.
func (s *Server) releaseResult(w WireResult) WireResult {
	if s.dpMech == nil {
		return w
	}
	s.dpMu.Lock()
	defer s.dpMu.Unlock()
	m := s.dpMech

	noisedCount := m.Count(w.InferredCount)
	w.InferredCount = int(math.Round(noisedCount))
	if w.InferredCount < 3 {
		// Too few contributors to release a mean or histogram safely.
		w.InferredMean = 0
		w.InferredHistogram = [11]int{}
	} else {
		if mean, ok := m.Mean(w.InferredMean*noisedCount, int(noisedCount), 0, 5); ok {
			w.InferredMean = mean
		} else {
			w.InferredMean = 0
		}
		fh := m.FixedHistogram(w.InferredHistogram)
		for i, v := range fh {
			w.InferredHistogram[i] = int(math.Round(v))
		}
	}

	if w.VisitsPerUser != nil {
		noised := m.Histogram(w.VisitsPerUser)
		out := make(map[int]int, len(noised))
		for k, v := range noised {
			if r := int(math.Round(v)); r > 0 {
				out[k] = r
			}
		}
		w.VisitsPerUser = out
		// Per-bin distance means: suppress bins whose released user
		// count is tiny, noise the rest.
		dist := make(map[int]float64, len(w.MeanDistanceKmByVisits))
		for k, v := range w.MeanDistanceKmByVisits {
			n := out[k]
			if mean, ok := m.Mean(v*float64(n), n, 0, 50); ok {
				dist[k] = mean
			}
		}
		w.MeanDistanceKmByVisits = dist
		w.RawInteractions = int(math.Round(m.Count(w.RawInteractions)))
		w.EffectiveInteractions = m.Count(int(math.Round(w.EffectiveInteractions)))
		if frac, ok := m.Mean(w.RepeatFraction*noisedCount, int(noisedCount), 0, 1); ok {
			w.RepeatFraction = frac
		} else {
			w.RepeatFraction = 0
		}
	}
	return w
}

func buildMeta(catalog []*world.Entity, zips []string) MetaResponse {
	type svcAgg struct {
		cats map[string]bool
		zips map[string]bool
	}
	bySvc := map[world.ServiceKind]*svcAgg{}
	for _, e := range catalog {
		a := bySvc[e.Service]
		if a == nil {
			a = &svcAgg{cats: map[string]bool{}, zips: map[string]bool{}}
			bySvc[e.Service] = a
		}
		a.cats[e.Category] = true
		if e.Zip != "" {
			a.zips[e.Zip] = true
		}
	}
	var meta MetaResponse
	var kinds []string
	for k := range bySvc {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		a := bySvc[world.ServiceKind(k)]
		ms := MetaService{Kind: k, Name: k}
		for c := range a.cats {
			ms.Categories = append(ms.Categories, c)
		}
		sort.Strings(ms.Categories)
		if len(zips) > 0 {
			ms.Zips = zips
		} else {
			for z := range a.zips {
				ms.Zips = append(ms.Zips, z)
			}
			sort.Strings(ms.Zips)
		}
		meta.Services = append(meta.Services, ms)
	}
	return meta
}

// Stores exposes the underlying read stores for in-process composition
// (the experiment harness and the core facade read these directly
// instead of going through HTTP). Mutations must go through the
// server's commit paths, never straight to these stores, or they
// bypass the write-ahead log.
func (s *Server) Stores() (*reviews.Store, *aggregate.OpinionStore, *history.ServerStore) {
	return s.st.Reviews(), s.st.Opinions(), s.st.Histories()
}

// Store returns the durable state layer the server commits through.
func (s *Server) Store() *store.Store { return s.st }

// Engine returns the search engine.
func (s *Server) Engine() *search.Engine { return s.engine }

// Catalog returns the entity directory the server fronts.
func (s *Server) Catalog() []*world.Entity { return s.catalog }

// Issuer returns the token issuer.
func (s *Server) Issuer() *blindsig.Issuer { return s.issuer }

// Redeemer returns the token redeemer.
func (s *Server) Redeemer() *blindsig.Redeemer { return s.redeemer }

// Attestor returns the attestation verifier, or nil when attestation is
// not enforced.
func (s *Server) Attestor() *attest.Verifier { return s.attestor }

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/meta", s.handleMeta)
	mux.HandleFunc("/api/search", s.handleSearch)
	mux.HandleFunc("/api/entity", s.handleEntity)
	mux.HandleFunc("/api/reviews", s.handleReviews)
	mux.HandleFunc("/api/directory", s.handleDirectory)
	mux.HandleFunc("/api/token/key", s.handleTokenKey)
	mux.HandleFunc("/api/token", s.handleTokenSign)
	mux.HandleFunc("/api/attest/challenge", s.handleAttestChallenge)
	mux.HandleFunc("/api/attest/verify", s.handleAttestVerify)
	mux.HandleFunc("/api/upload", s.handleUpload)
	mux.HandleFunc("/api/model", s.handleModel)
	mux.HandleFunc("/api/train", s.handleTrain)
	mux.HandleFunc("/api/model/retrain", s.handleRetrain)
	mux.HandleFunc("/api/fraud/sweep", s.handleFraudSweep)
	mux.HandleFunc("/api/stats", s.handleStats)
	return mux
}

// jsonEncoder is a reusable buffer+encoder pair: the encoder is bound
// to the buffer once, so the hot encode path allocates neither.
type jsonEncoder struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	e := new(jsonEncoder)
	e.enc = json.NewEncoder(&e.buf)
	return e
}}

// maxPooledEncoder bounds the buffers the pool retains: a single huge
// directory response must not pin megabytes in every pool shard.
const maxPooledEncoder = 1 << 20

// release returns e to the pool unless its buffer grew past the cap —
// a partially-written encode counts toward growth too, so every exit
// path (success or error) goes through here.
func (e *jsonEncoder) release() {
	if e.buf.Cap() <= maxPooledEncoder {
		encPool.Put(e)
	}
}

// writeJSON encodes v through a pooled encoder and writes it with an
// exact Content-Length. Encoding into the buffer first (rather than
// streaming into the response) is what lets the same bytes feed the
// read cache and keeps a mid-encode error from escaping as a truncated
// 200.
func writeJSON(w http.ResponseWriter, status int, v any) {
	e := encPool.Get().(*jsonEncoder)
	e.buf.Reset()
	if err := e.enc.Encode(v); err != nil {
		e.release()
		writeJSONBytes(w, http.StatusInternalServerError, []byte(`{"error":"encoding response"}`+"\n"))
		return
	}
	writeJSONBytes(w, status, e.buf.Bytes())
	e.release()
}

// writeJSONBytes writes an already-encoded JSON body.
func writeJSONBytes(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// encodeJSON renders v to a fresh byte slice via the encoder pool —
// the cache-fill path, where the bytes must outlive the pool cycle.
func encodeJSON(v any) ([]byte, error) {
	e := encPool.Get().(*jsonEncoder)
	e.buf.Reset()
	if err := e.enc.Encode(v); err != nil {
		e.release()
		return nil, err
	}
	body := append([]byte(nil), e.buf.Bytes()...)
	e.release()
	return body, nil
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// maxRequestBody bounds every mutating request's body. The load
// shedder caps concurrent requests, but without a per-body bound a
// single oversized POST could still balloon memory past it.
const maxRequestBody = 1 << 20

// decodeBody decodes a JSON request body bounded at maxRequestBody.
// On failure the response is already written — 413 when the body
// exceeded the bound, 400 for malformed JSON — and false is returned.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", mbe.Limit))
			return false
		}
		writeErr(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	writeJSON(w, http.StatusOK, s.meta)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	q := r.URL.Query()
	limit := 0
	if ls := q.Get("limit"); ls != "" {
		var err error
		limit, err = strconv.Atoi(ls)
		if err != nil || limit < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", ls))
			return
		}
	}
	results := s.engine.Search(search.Query{
		Service:  world.ServiceKind(q.Get("service")),
		Zip:      q.Get("zip"),
		Category: q.Get("category"),
		Limit:    limit,
	})
	out := make([]WireResult, len(results))
	for i, res := range results {
		out[i] = s.releaseResult(FromResult(res))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleEntity(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	key := r.URL.Query().Get("key")
	cache := s.entityCache()
	var gen uint64
	if cache != nil {
		// The generation is captured before any store read; a commit
		// landing on this entity between here and the Put bumps it and
		// the fill is dropped rather than installed stale.
		body, g, ok := cache.Get(cacheNSEntity, key)
		if ok {
			writeJSONBytes(w, http.StatusOK, body)
			return
		}
		gen = g
	}
	ent := s.engine.Entity(key)
	if ent == nil {
		// Misses for unknown keys are never cached: the key space is
		// attacker-chosen and would grow the cache without bound.
		writeErr(w, http.StatusNotFound, fmt.Errorf("no entity %q", key))
		return
	}
	res := s.releaseResult(FromResult(s.engine.Describe(ent)))
	if cache != nil {
		if body, err := encodeJSON(res); err == nil {
			cache.Put(cacheNSEntity, key, gen, body)
			writeJSONBytes(w, http.StatusOK, body)
			return
		}
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleReviews(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query()
		entity := q.Get("entity")
		// Malformed paging is a client error, not "page one": silently
		// swallowing a bad offset used to serve the first page under an
		// arbitrary label (the same contract handleSearch enforces).
		offset := 0
		if v := q.Get("offset"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("bad offset %q", v))
				return
			}
			offset = n
		}
		limit := 20
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", v))
				return
			}
			if n > 0 {
				limit = n
			}
		}
		if limit > 100 {
			limit = 100
		}
		writeJSON(w, http.StatusOK, s.st.Reviews().ForEntity(entity, offset, limit))
	case http.MethodPost:
		var req PostReviewRequest
		if !decodeBody(w, r, &req) {
			return
		}
		if s.engine.Entity(req.Entity) == nil {
			writeErr(w, http.StatusNotFound, fmt.Errorf("no entity %q", req.Entity))
			return
		}
		rev, err := s.PostReview(req.Entity, req.Author, req.Rating, req.Text)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, store.ErrUnavailable) {
				status = http.StatusServiceUnavailable
			}
			writeErr(w, status, err)
			return
		}
		writeJSON(w, http.StatusCreated, rev)
	default:
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET or POST"))
	}
}

func (s *Server) handleDirectory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	svc := r.URL.Query().Get("service")
	// Only known service kinds (and the unfiltered listing) are
	// cacheable: arbitrary ?service= strings must not mint cache keys.
	var gen uint64
	cached := s.cache != nil && s.dirKinds[svc]
	if cached {
		body, g, ok := s.cache.Get(cacheNSDirectory, svc)
		if ok {
			writeJSONBytes(w, http.StatusOK, body)
			return
		}
		gen = g
	}
	// Initialized non-nil so an empty directory serializes as [] — a
	// stable array type for clients — rather than JSON null.
	out := []WireEntity{}
	for _, e := range s.catalog {
		if svc == "" || string(e.Service) == svc {
			out = append(out, FromEntity(e))
		}
	}
	if cached {
		if body, err := encodeJSON(out); err == nil {
			s.cache.Put(cacheNSDirectory, svc, gen, body)
			writeJSONBytes(w, http.StatusOK, body)
			return
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleTokenKey(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	pub := s.issuer.PublicKey()
	writeJSON(w, http.StatusOK, TokenKeyResponse{N: pub.N.String(), E: pub.E})
}

func (s *Server) handleTokenSign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req TokenSignRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Device == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing device"))
		return
	}
	blinded, ok := new(big.Int).SetString(req.Blinded, 10)
	if !ok {
		writeErr(w, http.StatusBadRequest, errors.New("blinded not a number"))
		return
	}
	if s.attestor != nil && !s.attestor.IsAttested(req.Device) {
		writeErr(w, http.StatusForbidden, errors.New("device must pass remote attestation before receiving tokens"))
		return
	}
	sig, err := s.issuer.Sign(req.Device, blinded)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, blindsig.ErrRateLimited) {
			status = http.StatusTooManyRequests
			metricTokenRefusals.Inc()
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, TokenSignResponse{BlindSig: sig.String()})
}

func (s *Server) handleAttestChallenge(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	if s.attestor == nil {
		writeErr(w, http.StatusNotFound, errors.New("attestation not enabled"))
		return
	}
	nonce, err := s.attestor.Challenge(nil)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, AttestChallengeResponse{Nonce: hexEncode(nonce)})
}

func (s *Server) handleAttestVerify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	if s.attestor == nil {
		writeErr(w, http.StatusNotFound, errors.New("attestation not enabled"))
		return
	}
	var req AttestVerifyRequest
	if !decodeBody(w, r, &req) {
		return
	}
	quote, err := req.ToQuote()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.attestor.Verify(quote); err != nil {
		writeErr(w, http.StatusForbidden, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req UploadRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := s.AcceptUpload(req); err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, blindsig.ErrTokenInvalid), errors.Is(err, blindsig.ErrTokenSpent):
			status = http.StatusForbidden
		case errors.Is(err, history.ErrEntityMismatch):
			status = http.StatusConflict
		case errors.Is(err, store.ErrUnavailable):
			// Durability is gone; a 503 sends the client back to its
			// spool, exactly like any other outage. Its retry lands
			// after a restart has recovered state from disk.
			status = http.StatusServiceUnavailable
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusAccepted, struct{}{})
}

// AcceptUpload applies an anonymous upload exactly once: validate,
// consult the dedup ledger, redeem the token, then commit one upload
// record — history append, inferred rating, and idempotency-key
// admission as a unit — through the durable store. Exposed for
// in-process composition.
//
// A replayed key — a retry after a truncated 2xx, or a spooled upload
// redelivered under a fresh token after an app restart — returns success
// without touching the stores, and a token-spent refusal on a key the
// ledger already holds is likewise success: the first delivery was
// applied, the client just never heard the answer.
func (s *Server) AcceptUpload(req UploadRequest) error {
	if req.AnonID == "" || req.Entity == "" {
		return errors.New("rspserver: upload missing anon_id or entity")
	}
	if req.Record == nil && req.Rating == nil {
		return errors.New("rspserver: upload carries neither record nor rating")
	}
	if s.engine.Entity(req.Entity) == nil {
		return fmt.Errorf("rspserver: upload for unknown entity %q", req.Entity)
	}
	// Validate the payload fully before spending anything: a malformed
	// upload must neither burn the token nor half-apply.
	var rec interaction.Record
	if req.Record != nil {
		var err error
		rec, err = req.Record.ToRecord(req.Entity)
		if err != nil {
			return err
		}
	}
	if req.Rating != nil && (*req.Rating < 0 || *req.Rating > 5) {
		return errors.New("rspserver: rating outside [0, 5]")
	}
	tok, err := req.Token.ToToken()
	if err != nil {
		return err
	}
	// Refuse before spending anything once durability is gone: the token
	// stays unspent and the key unclaimed, so the retry that lands after
	// a restart applies from scratch.
	if s.st.Failed() {
		return store.ErrUnavailable
	}
	ledger := s.st.Ledger()
	if req.Key != "" {
		done, dup := ledger.Begin(req.Key)
		if done || dup {
			// Already applied (or a racing twin of this very request is
			// mid-apply and owns it): answer success, apply nothing, and
			// leave the token unspent for the fresh-token redelivery case.
			// The replay ack still goes through the replication barrier:
			// if the original commit is not yet follower-acked (its 503
			// was a barrier timeout), acking its replay here would let
			// the client forget an upload a failover could then lose.
			metricDedupReplays.Inc()
			return s.st.AckBarrierAll()
		}
	}
	if err := s.redeemer.Redeem(tok); err != nil {
		if req.Key != "" {
			ledger.Abort(req.Key)
			if errors.Is(err, blindsig.ErrTokenSpent) && ledger.Contains(req.Key) {
				// The same token+key was committed between our ledger
				// check and the redeem — the retry raced its twin. The
				// upload is applied; report success, not 403.
				metricDedupReplays.Inc()
				return s.st.AckBarrierAll()
			}
		}
		return err
	}
	crec := &store.Record{Kind: store.KindUpload, AnonID: req.AnonID, Entity: req.Entity, Key: req.Key}
	if req.Record != nil {
		crec.Visit = &rec
	}
	if req.Rating != nil {
		rating := *req.Rating
		crec.Rating = &rating
	}
	if err := s.st.Commit(crec); err != nil {
		if req.Key != "" && !errors.Is(err, store.ErrReplicationLag) {
			// Whether the apply failed (key still only in flight) or the
			// log failed after the apply (key admitted but the client
			// will see an error, never an ack): erase every trace of the
			// key so the retry — possibly against a restarted server
			// whose fresh redeemer considers the token unspent — applies
			// from scratch rather than being swallowed as a replay.
			//
			// ErrReplicationLag is the exception: the record IS applied
			// and locally durable, only the follower ack is missing.
			// The key must stay in the ledger so the client's retry is
			// absorbed as a replay instead of applying twice.
			ledger.Remove(req.Key)
		}
		return err
	}
	return nil
}

// PostReview validates and commits one explicit review, returning it
// with its assigned ID.
func (s *Server) PostReview(entity, author string, rating float64, text string) (reviews.Review, error) {
	if s.engine.Entity(entity) == nil {
		return reviews.Review{}, fmt.Errorf("rspserver: no entity %q", entity)
	}
	rec := &store.Record{Kind: store.KindReview, Review: &reviews.Review{
		Entity: entity, Author: author, Rating: rating, Text: text, Time: s.clock.Now(),
	}}
	if err := s.st.Commit(rec); err != nil {
		return reviews.Review{}, err
	}
	return rec.Result().(reviews.Review), nil
}

// DedupLen reports the number of idempotency keys the exactly-once
// ledger currently holds (tests and operational introspection).
func (s *Server) DedupLen() int { return s.st.Ledger().Len() }

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	m := s.st.Models()
	if m == nil {
		writeErr(w, http.StatusNotFound, errors.New("no model trained yet"))
		return
	}
	writeJSON(w, http.StatusOK, m)
}

func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req TrainRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := s.AddTrainingPair(req.Features, req.Rating, req.Category); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, store.ErrUnavailable) {
			status = http.StatusServiceUnavailable
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusAccepted, struct{}{})
}

// AddTrainingPair stores one volunteered training example; category may
// be empty (the pair then informs only the global model).
func (s *Server) AddTrainingPair(features []float64, rating float64, category string) error {
	if len(features) != inference.NumFeatures {
		return fmt.Errorf("rspserver: %d features, want %d", len(features), inference.NumFeatures)
	}
	if rating < 0 || rating > 5 {
		return errors.New("rspserver: training rating outside [0, 5]")
	}
	return s.st.Commit(&store.Record{
		Kind:        store.KindTrainPair,
		Features:    append([]float64(nil), features...),
		TrainRating: rating,
		Category:    category,
	})
}

func (s *Server) handleRetrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	m, err := s.Retrain()
	if err != nil {
		status := http.StatusConflict
		if errors.Is(err, store.ErrUnavailable) {
			status = http.StatusServiceUnavailable
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, m)
}

// Retrain fits a fresh model set (global + per-category) on the
// accumulated training pairs and installs it. The retrain is itself a
// logged record: training is deterministic, so replay reproduces the
// exact model from the pairs replayed before it.
func (s *Server) Retrain() (*inference.ModelSet, error) {
	rec := &store.Record{Kind: store.KindRetrain}
	if err := s.st.Commit(rec); err != nil {
		return nil, err
	}
	return rec.Result().(*inference.ModelSet), nil
}

// Models returns the current model set, or nil.
func (s *Server) Models() *inference.ModelSet { return s.st.Models() }

// Model returns the current global model, or nil.
func (s *Server) Model() *inference.Model {
	if m := s.st.Models(); m != nil {
		return m.Global
	}
	return nil
}

// TrainingPairs returns how many volunteered examples are stored.
func (s *Server) TrainingPairs() int { return s.st.TrainingPairs() }

func (s *Server) handleFraudSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	scanned, discarded, err := s.FraudSweep()
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, SweepResponse{Scanned: scanned, Discarded: discarded})
}

// FraudSweep builds the typical-user profile from all stored histories
// and drops the ones the §4.3 detector flags. It returns (scanned,
// discarded). The detection runs against the striped read state; only
// the resulting drops are committed — the log records WHICH histories
// went, not the detector inputs, so replay cannot diverge.
func (s *Server) FraudSweep() (int, int, error) {
	// An explicit latch check: a sweep that finds nothing to drop never
	// reaches Commit, and a degraded store must still answer 503 — not
	// a reassuring "scanned N, dropped 0".
	if s.st.Failed() {
		return 0, 0, store.ErrUnavailable
	}
	hists := s.st.Histories()
	var all []*history.EntityHistory
	for _, entity := range hists.Entities() {
		all = append(all, hists.ByEntity(entity)...)
	}
	if len(all) == 0 {
		return 0, 0, nil
	}
	det := fraud.NewDetector(fraud.BuildProfile(all))
	_, discarded := det.Filter(all)
	if len(discarded) == 0 {
		return len(all), 0, nil
	}
	ids := make([]string, len(discarded))
	for i, h := range discarded {
		ids[i] = h.AnonID
	}
	if err := s.st.Commit(&store.Record{Kind: store.KindSweep, Dropped: ids}); err != nil {
		return len(all), 0, err
	}
	return len(all), len(discarded), nil
}

// Snapshot captures the full server state for persistence. The copy is
// taken under the store's commit lock for a consistent cut; callers
// gzip-encode it (storage.Write/SaveFile) outside any lock.
func (s *Server) Snapshot() *storage.Snapshot { return s.st.Snapshot() }

// RestoreSnapshot replaces the server's state with the snapshot's.
// Every cached read response is flushed via the store's restore hook,
// which fires for any Restore caller (not just this method).
func (s *Server) RestoreSnapshot(snap *storage.Snapshot) error {
	if snap == nil {
		return errors.New("rspserver: nil snapshot")
	}
	return s.st.Restore(snap)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	hs := s.st.Histories().Stats()
	writeJSON(w, http.StatusOK, StatsResponse{
		Entities:         len(s.catalog),
		Reviews:          s.st.Reviews().TotalReviews(),
		Histories:        hs.Histories,
		HistoryRecords:   hs.Records,
		InferredOpinions: s.st.Opinions().Total(),
		TrainingPairs:    s.TrainingPairs(),
	})
}
