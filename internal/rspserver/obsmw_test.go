package rspserver

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"opinions/internal/obs"
)

// The server's instruments live on obs.Default, which is process-wide
// and shared across tests, so every assertion here is a before/after
// delta rather than an absolute value.

func TestWithMetricsRED(t *testing.T) {
	const route = "/api/search"
	reqBefore := metricRequests.With(route, "GET", "201").Value()
	bytesBefore := metricRespBytes.With(route).Value()
	durBefore := metricDuration.With(route).Count()

	var inFlightInside int64
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inFlightInside = metricInFlight.Value()
		w.WriteHeader(201)
		w.Write([]byte("hello, metrics"))
	}), WithMetrics())

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", route, nil))

	if got := metricRequests.With(route, "GET", "201").Value() - reqBefore; got != 1 {
		t.Fatalf("request counter delta = %d, want 1", got)
	}
	if got := metricRespBytes.With(route).Value() - bytesBefore; got != uint64(len("hello, metrics")) {
		t.Fatalf("response bytes delta = %d, want %d", got, len("hello, metrics"))
	}
	if got := metricDuration.With(route).Count() - durBefore; got != 1 {
		t.Fatalf("duration observations delta = %d, want 1", got)
	}
	if inFlightInside < 1 {
		t.Fatalf("in-flight gauge inside handler = %d, want >= 1", inFlightInside)
	}
}

func TestWithMetricsUnknownRouteCollapsesToOther(t *testing.T) {
	before := metricRequests.With("other", "GET", "200").Value()
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}), WithMetrics())
	// Paths an attacker probes must not mint new series.
	for _, p := range []string{"/api/%78", "/admin", "/api/upload/../x"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", p, nil))
	}
	if got := metricRequests.With("other", "GET", "200").Value() - before; got != 3 {
		t.Fatalf("other-route counter delta = %d, want 3", got)
	}
}

func TestWithMetricsRetriedHeader(t *testing.T) {
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}), WithMetrics())
	send := func(attempt string) uint64 {
		before := metricRetried.Value()
		req := httptest.NewRequest("GET", "/api/meta", nil)
		if attempt != "" {
			req.Header.Set(obs.RetryHeader, attempt)
		}
		h.ServeHTTP(httptest.NewRecorder(), req)
		return metricRetried.Value() - before
	}
	if got := send(""); got != 0 {
		t.Fatalf("no header counted as retry: delta %d", got)
	}
	if got := send("0"); got != 0 {
		t.Fatalf("first attempt counted as retry: delta %d", got)
	}
	if got := send("1"); got != 1 {
		t.Fatalf("retry attempt not counted: delta %d", got)
	}
	if got := send("3"); got != 1 {
		t.Fatalf("later retry attempt not counted: delta %d", got)
	}
}

func TestRouteLabel(t *testing.T) {
	if got := routeLabel("/api/upload"); got != "/api/upload" {
		t.Fatalf("known route mapped to %q", got)
	}
	for _, p := range []string{"/api/uploadx", "/", "/metrics", "/api/upload/"} {
		if got := routeLabel(p); got != "other" {
			t.Fatalf("routeLabel(%q) = %q, want other", p, got)
		}
	}
}

func TestWithTracingAdoptsClientTraceID(t *testing.T) {
	ring := obs.NewSpanRing(8)
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The trace must be visible to the handler via context.
		if _, ok := obs.TraceFrom(r.Context()); !ok {
			t.Error("handler context carries no trace")
		}
		w.WriteHeader(202)
		w.Write([]byte("ok"))
	}), WithTracing(ring))
	srv := httptest.NewServer(h)
	defer srv.Close()

	id := obs.NewTraceID()
	req, _ := http.NewRequest("POST", srv.URL+"/api/upload", nil)
	req.Header.Set(obs.TraceHeader, string(id))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if echo := resp.Header.Get(obs.TraceHeader); echo != string(id) {
		t.Fatalf("response echoed trace %q, want %q", echo, id)
	}
	span, ok := ring.Find(id)
	if !ok {
		t.Fatalf("no span recorded for client trace %s", id)
	}
	if span.Method != "POST" || span.Path != "/api/upload" || span.Status != 202 || span.Bytes != 2 {
		t.Fatalf("span = %+v", span)
	}
	if span.Remote == "" {
		t.Fatal("span missing remote host")
	}
}

func TestWithTracingMintsWhenAbsentOrInvalid(t *testing.T) {
	ring := obs.NewSpanRing(8)
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}), WithTracing(ring))

	for _, header := range []string{"", "not-a-trace-id"} {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("GET", "/api/meta", nil)
		if header != "" {
			req.Header.Set(obs.TraceHeader, header)
		}
		h.ServeHTTP(rec, req)
		echo, ok := obs.ParseTraceID(rec.Header().Get(obs.TraceHeader))
		if !ok {
			t.Fatalf("header %q: response trace %q is not a valid minted id", header, rec.Header().Get(obs.TraceHeader))
		}
		if _, ok := ring.Find(echo); !ok {
			t.Fatalf("header %q: minted trace %s not in ring", header, echo)
		}
	}
}

func TestStatusRecorderCountsBytes(t *testing.T) {
	rec := &statusRecorder{ResponseWriter: httptest.NewRecorder(), status: http.StatusOK}
	rec.WriteHeader(418)
	rec.Write([]byte("short"))
	rec.Write([]byte(" and more"))
	if rec.status != 418 {
		t.Fatalf("status = %d", rec.status)
	}
	if want := int64(len("short and more")); rec.bytes != want {
		t.Fatalf("bytes = %d, want %d", rec.bytes, want)
	}
}

func TestWithMaxInFlightCountsSheds(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
	}), WithMaxInFlight(1, 0))

	before := metricSheds.Value()
	go h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/api/meta", nil))
	<-entered

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/meta", nil))
	close(release)

	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("shed request answered %d", rec.Code)
	}
	if got := metricSheds.Value() - before; got != 1 {
		t.Fatalf("shed counter delta = %d, want 1", got)
	}
}
