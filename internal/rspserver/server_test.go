package rspserver

import (
	"bytes"
	"crypto/rand"
	"crypto/rsa"
	"encoding/json"
	"fmt"
	"math/big"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"opinions/internal/blindsig"
	"opinions/internal/inference"
	"opinions/internal/reviews"
	"opinions/internal/simclock"
	"opinions/internal/stats"
	"opinions/internal/world"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	catalog := []*world.Entity{
		{ID: "a", Service: world.Yelp, Zip: "48104", Category: "chinese", Name: "Golden Wok", Quality: 4, Phone: "+17345550001"},
		{ID: "b", Service: world.Yelp, Zip: "48104", Category: "chinese", Name: "Lucky Bamboo", Quality: 3},
		{ID: "v", Service: world.YouTube, Category: "video", Name: "vid", Interactions: 50000, Feedback: 400},
	}
	srv, err := New(Config{Catalog: catalog, Clock: simclock.NewSim(simclock.Epoch), KeyBits: 1024})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

// fetchToken runs the full blind-token protocol over HTTP.
func fetchToken(t *testing.T, base, device string) WireToken {
	t.Helper()
	var keyResp TokenKeyResponse
	if resp := getJSON(t, base+"/api/token/key", &keyResp); resp.StatusCode != 200 {
		t.Fatalf("token key status %d", resp.StatusCode)
	}
	n, _ := new(big.Int).SetString(keyResp.N, 10)
	pub := &rsa.PublicKey{N: n, E: keyResp.E}
	serial := make([]byte, 32)
	if _, err := rand.Read(serial); err != nil {
		t.Fatal(err)
	}
	blinded, unblind, err := blindsig.Blind(pub, serial, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	var signResp TokenSignResponse
	resp := postJSON(t, base+"/api/token", TokenSignRequest{Device: device, Blinded: blinded.String()}, &signResp)
	if resp.StatusCode != 200 {
		t.Fatalf("token sign status %d", resp.StatusCode)
	}
	blindSig, _ := new(big.Int).SetString(signResp.BlindSig, 10)
	return FromToken(blindsig.Token{Msg: serial, Sig: unblind(blindSig)})
}

func TestMetaEndpoint(t *testing.T) {
	_, ts := testServer(t)
	var meta MetaResponse
	if resp := getJSON(t, ts.URL+"/api/meta", &meta); resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(meta.Services) != 2 {
		t.Fatalf("services = %d", len(meta.Services))
	}
}

func TestSearchAndEntityEndpoints(t *testing.T) {
	_, ts := testServer(t)
	var results []WireResult
	resp := getJSON(t, ts.URL+"/api/search?service=yelp&zip=48104&category=chinese", &results)
	if resp.StatusCode != 200 || len(results) != 2 {
		t.Fatalf("status %d, results %d", resp.StatusCode, len(results))
	}
	var one WireResult
	resp = getJSON(t, ts.URL+"/api/entity?key=yelp/a", &one)
	if resp.StatusCode != 200 || one.Entity.Name != "Golden Wok" {
		t.Fatalf("entity status %d, name %q", resp.StatusCode, one.Entity.Name)
	}
	if resp := getJSON(t, ts.URL+"/api/entity?key=yelp/zzz", nil); resp.StatusCode != 404 {
		t.Fatalf("missing entity status %d", resp.StatusCode)
	}
}

func TestEntityExposesInteractionCounts(t *testing.T) {
	_, ts := testServer(t)
	var one WireResult
	getJSON(t, ts.URL+"/api/entity?key=youtube/v", &one)
	if one.Entity.Interactions != 50000 || one.Entity.Feedback != 400 {
		t.Fatalf("interaction counts = %d/%d", one.Entity.Interactions, one.Entity.Feedback)
	}
}

func TestPostAndGetReviews(t *testing.T) {
	_, ts := testServer(t)
	resp := postJSON(t, ts.URL+"/api/reviews", PostReviewRequest{
		Entity: "yelp/a", Author: "alice", Rating: 4.5, Text: "solid dumplings",
	}, nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("post status %d", resp.StatusCode)
	}
	var revs []map[string]any
	getJSON(t, ts.URL+"/api/reviews?entity=yelp/a", &revs)
	if len(revs) != 1 {
		t.Fatalf("reviews = %d", len(revs))
	}
	// Unknown entity and bad rating rejected.
	if resp := postJSON(t, ts.URL+"/api/reviews", PostReviewRequest{Entity: "yelp/zzz", Rating: 3}, nil); resp.StatusCode != 404 {
		t.Fatalf("unknown entity status %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/api/reviews", PostReviewRequest{Entity: "yelp/a", Rating: 9}, nil); resp.StatusCode != 400 {
		t.Fatalf("bad rating status %d", resp.StatusCode)
	}
}

func TestDirectoryEndpoint(t *testing.T) {
	_, ts := testServer(t)
	var ents []WireEntity
	getJSON(t, ts.URL+"/api/directory?service=yelp", &ents)
	if len(ents) != 2 {
		t.Fatalf("directory = %d", len(ents))
	}
	var all []WireEntity
	getJSON(t, ts.URL+"/api/directory", &all)
	if len(all) != 3 {
		t.Fatalf("full directory = %d", len(all))
	}
}

func TestUploadFlow(t *testing.T) {
	srv, ts := testServer(t)
	tok := fetchToken(t, ts.URL, "device-1")
	rating := 4.2
	req := UploadRequest{
		AnonID: "anon-abc", Entity: "yelp/a",
		Record: &WireRecord{Kind: "visit", Start: simclock.Epoch, DurationS: 3600, DistanceM: 2000},
		Rating: &rating,
		Token:  tok,
	}
	resp := postJSON(t, ts.URL+"/api/upload", req, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("upload status %d", resp.StatusCode)
	}
	_, ops, hists := srv.Stores()
	if ops.Count("yelp/a") != 1 {
		t.Fatal("rating not stored")
	}
	if len(hists.ByEntity("yelp/a")) != 1 {
		t.Fatal("history not stored")
	}
	// Replay with the same token must fail.
	resp = postJSON(t, ts.URL+"/api/upload", req, nil)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("replay status %d", resp.StatusCode)
	}
}

func TestUploadValidation(t *testing.T) {
	_, ts := testServer(t)
	tok := fetchToken(t, ts.URL, "device-2")
	// No record, no rating.
	resp := postJSON(t, ts.URL+"/api/upload", UploadRequest{AnonID: "x", Entity: "yelp/a", Token: tok}, nil)
	if resp.StatusCode != 400 {
		t.Fatalf("empty upload status %d", resp.StatusCode)
	}
	// Unknown entity.
	tok2 := fetchToken(t, ts.URL, "device-2")
	r := WireRecord{Kind: "visit", Start: simclock.Epoch, DurationS: 60}
	resp = postJSON(t, ts.URL+"/api/upload", UploadRequest{AnonID: "x", Entity: "yelp/zzz", Record: &r, Token: tok2}, nil)
	if resp.StatusCode != 400 {
		t.Fatalf("unknown entity status %d", resp.StatusCode)
	}
	// Forged token.
	forged := WireToken{Msg: "abcd", Sig: "12345"}
	resp = postJSON(t, ts.URL+"/api/upload", UploadRequest{AnonID: "x", Entity: "yelp/a", Record: &r, Token: forged}, nil)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("forged token status %d", resp.StatusCode)
	}
	// Bad kind.
	tok3 := fetchToken(t, ts.URL, "device-2")
	bad := WireRecord{Kind: "teleport", Start: simclock.Epoch}
	resp = postJSON(t, ts.URL+"/api/upload", UploadRequest{AnonID: "x", Entity: "yelp/a", Record: &bad, Token: tok3}, nil)
	if resp.StatusCode != 400 {
		t.Fatalf("bad kind status %d", resp.StatusCode)
	}
}

func TestUploadEntityMismatchConflict(t *testing.T) {
	_, ts := testServer(t)
	tok1 := fetchToken(t, ts.URL, "d")
	tok2 := fetchToken(t, ts.URL, "d")
	r := WireRecord{Kind: "visit", Start: simclock.Epoch, DurationS: 60}
	resp := postJSON(t, ts.URL+"/api/upload", UploadRequest{AnonID: "same-id", Entity: "yelp/a", Record: &r, Token: tok1}, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first upload status %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/api/upload", UploadRequest{AnonID: "same-id", Entity: "yelp/b", Record: &r, Token: tok2}, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("mismatch status %d", resp.StatusCode)
	}
}

func TestTokenRateLimitOverHTTP(t *testing.T) {
	catalog := []*world.Entity{{ID: "a", Service: world.Yelp, Zip: "z", Category: "c"}}
	srv, err := New(Config{Catalog: catalog, KeyBits: 1024, TokenRate: 1, TokenPeriod: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fetchToken(t, ts.URL, "dev")
	// Second request must be 429.
	var keyResp TokenKeyResponse
	getJSON(t, ts.URL+"/api/token/key", &keyResp)
	resp := postJSON(t, ts.URL+"/api/token", TokenSignRequest{Device: "dev", Blinded: "12345"}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("rate limit status %d", resp.StatusCode)
	}
}

func TestModelTrainingFlow(t *testing.T) {
	_, ts := testServer(t)
	if resp := getJSON(t, ts.URL+"/api/model", nil); resp.StatusCode != 404 {
		t.Fatalf("model before training: %d", resp.StatusCode)
	}
	rng := stats.NewRNG(1)
	for i := 0; i < 60; i++ {
		x := make([]float64, inference.NumFeatures)
		for j := range x {
			x[j] = rng.Float64()
		}
		y := x[0]*3 + 1
		if resp := postJSON(t, ts.URL+"/api/train", TrainRequest{Features: x, Rating: clampRating(y)}, nil); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("train status %d", resp.StatusCode)
		}
	}
	var m inference.ModelSet
	resp := postJSON(t, ts.URL+"/api/model/retrain", nil, &m)
	if resp.StatusCode != 200 {
		t.Fatalf("retrain status %d", resp.StatusCode)
	}
	if m.Global == nil || m.Global.N != 60 {
		t.Fatalf("model set = %+v", m)
	}
	var m2 inference.ModelSet
	if resp := getJSON(t, ts.URL+"/api/model", &m2); resp.StatusCode != 200 {
		t.Fatalf("model fetch status %d", resp.StatusCode)
	}
	if m2.Global.N != m.Global.N || len(m2.Global.Weights) != len(m.Global.Weights) {
		t.Fatal("served model differs from trained model")
	}
}

func clampRating(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 5 {
		return 5
	}
	return v
}

func TestTrainValidationOverHTTP(t *testing.T) {
	_, ts := testServer(t)
	resp := postJSON(t, ts.URL+"/api/train", TrainRequest{Features: []float64{1, 2}, Rating: 3}, nil)
	if resp.StatusCode != 400 {
		t.Fatalf("short features status %d", resp.StatusCode)
	}
	x := make([]float64, inference.NumFeatures)
	resp = postJSON(t, ts.URL+"/api/train", TrainRequest{Features: x, Rating: 9}, nil)
	if resp.StatusCode != 400 {
		t.Fatalf("bad rating status %d", resp.StatusCode)
	}
}

func TestRetrainWithoutDataFails(t *testing.T) {
	_, ts := testServer(t)
	if resp := postJSON(t, ts.URL+"/api/model/retrain", nil, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("retrain empty status %d", resp.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := testServer(t)
	postJSON(t, ts.URL+"/api/reviews", PostReviewRequest{Entity: "yelp/a", Rating: 4}, nil)
	var st StatsResponse
	getJSON(t, ts.URL+"/api/stats", &st)
	if st.Entities != 3 || st.Reviews != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFraudSweepEndpoint(t *testing.T) {
	srv, ts := testServer(t)
	_, _, hists := srv.Stores()
	// A healthy population plus one call-spammer.
	rng := stats.NewRNG(2)
	for i := 0; i < 80; i++ {
		id := fmt.Sprintf("honest-%d", i)
		cur := simclock.Epoch.Add(time.Duration(rng.Intn(72)) * time.Hour)
		for k := 0; k < 3+rng.Intn(5); k++ {
			rec := WireRecord{Kind: "visit", Start: cur, DurationS: float64(1800 + rng.Intn(4800)), DistanceM: 1000}
			r, _ := rec.ToRecord("yelp/a")
			_ = hists.Append(id, "yelp/a", r)
			cur = cur.Add(time.Duration(72+rng.Intn(240)) * time.Hour)
		}
	}
	spam := "spammer"
	cur := simclock.Epoch
	for k := 0; k < 12; k++ {
		rec := WireRecord{Kind: "call", Start: cur, DurationS: 3}
		r, _ := rec.ToRecord("yelp/a")
		_ = hists.Append(spam, "yelp/a", r)
		cur = cur.Add(45 * time.Second)
	}
	var sweep SweepResponse
	resp := postJSON(t, ts.URL+"/api/fraud/sweep", nil, &sweep)
	if resp.StatusCode != 200 {
		t.Fatalf("sweep status %d", resp.StatusCode)
	}
	if sweep.Scanned != 81 {
		t.Fatalf("scanned = %d", sweep.Scanned)
	}
	if sweep.Discarded < 1 {
		t.Fatal("spammer not discarded")
	}
	// Spammer's history must be gone.
	for _, h := range hists.ByEntity("yelp/a") {
		if h.AnonID == spam {
			t.Fatal("spammer history still present")
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := testServer(t)
	for _, ep := range []string{"/api/meta", "/api/search", "/api/entity", "/api/directory", "/api/token/key", "/api/model", "/api/stats"} {
		resp := postJSON(t, ts.URL+ep, struct{}{}, nil)
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s status %d", ep, resp.StatusCode)
		}
	}
	for _, ep := range []string{"/api/token", "/api/upload", "/api/train", "/api/model/retrain", "/api/fraud/sweep"} {
		resp := getJSON(t, ts.URL+ep, nil)
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s status %d", ep, resp.StatusCode)
		}
	}
}

func TestSearchBadLimit(t *testing.T) {
	_, ts := testServer(t)
	if resp := getJSON(t, ts.URL+"/api/search?limit=abc", nil); resp.StatusCode != 400 {
		t.Fatalf("bad limit status %d", resp.StatusCode)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	srv, ts := testServer(t)
	// Populate every store.
	postJSON(t, ts.URL+"/api/reviews", PostReviewRequest{Entity: "yelp/a", Author: "alice", Rating: 4}, nil)
	tok := fetchToken(t, ts.URL, "dev")
	rating := 3.5
	postJSON(t, ts.URL+"/api/upload", UploadRequest{
		AnonID: "anon1", Entity: "yelp/a",
		Record: &WireRecord{Kind: "visit", Start: simclock.Epoch, DurationS: 1800, DistanceM: 900},
		Rating: &rating, Token: tok,
	}, nil)
	rng := stats.NewRNG(4)
	for i := 0; i < 40; i++ {
		x := make([]float64, inference.NumFeatures)
		for j := range x {
			x[j] = rng.Float64()
		}
		_ = srv.AddTrainingPair(x, 3, "cafe")
	}
	if _, err := srv.Retrain(); err != nil {
		t.Fatal(err)
	}

	snap := srv.Snapshot()

	// A fresh server restores to identical state.
	catalog := srv.Catalog()
	srv2, err := New(Config{Catalog: catalog, KeyBits: 1024, Clock: simclock.NewSim(simclock.Epoch)})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	rev2, ops2, hists2 := srv2.Stores()
	if rev2.TotalReviews() != 1 || ops2.Total() != 1 {
		t.Fatalf("restored reviews=%d opinions=%d", rev2.TotalReviews(), ops2.Total())
	}
	hs := hists2.Stats()
	if hs.Histories != 1 || hs.Records != 1 {
		t.Fatalf("restored histories = %+v", hs)
	}
	if srv2.Model() == nil || srv2.Model().N != 40 {
		t.Fatal("model not restored")
	}
	if srv2.Models() == nil {
		t.Fatal("model set not restored")
	}
	if srv2.TrainingPairs() != 40 {
		t.Fatalf("training pairs = %d", srv2.TrainingPairs())
	}
	// Restored reviews keep IDs unique for future posts.
	r, err := rev2.Post(reviewsPost("yelp/a"))
	if err != nil {
		t.Fatal(err)
	}
	if r.ID == snap.Reviews[0].ID {
		t.Fatal("restored seq collides with old IDs")
	}
}

func TestRestoreRejectsBadSnapshot(t *testing.T) {
	srv, _ := testServer(t)
	if err := srv.RestoreSnapshot(nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
}

func TestWireRecordRoundTrip(t *testing.T) {
	rec := WireRecord{Kind: "payment", Start: simclock.Epoch, DurationS: 0, Amount: 42.5}
	r, err := rec.ToRecord("yelp/a")
	if err != nil {
		t.Fatal(err)
	}
	back := FromRecord(r)
	if back.Kind != "payment" || back.Amount != 42.5 {
		t.Fatalf("round trip = %+v", back)
	}
	if _, err := (WireRecord{Kind: "visit", DurationS: -1}).ToRecord("e"); err == nil {
		t.Fatal("negative duration accepted")
	}
}

// reviewsPost builds a minimal valid review for store-level posting.
func reviewsPost(entity string) reviews.Review {
	return reviews.Review{Entity: entity, Author: "x", Rating: 3, Time: simclock.Epoch}
}
