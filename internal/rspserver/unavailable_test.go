package rspserver

import (
	"errors"
	"io"
	"log/slog"
	"net/http/httptest"
	"os"
	"testing"

	"opinions/internal/faultinject"
	"opinions/internal/inference"
	"opinions/internal/simclock"
	"opinions/internal/store"
	"opinions/internal/world"
)

// latchedStore opens a durable store whose very first WAL frame tears
// (write 1 is the segment header, write 2 the frame), commits once to
// trip the latch, and returns the now-permanently-unavailable store.
func latchedStore(t *testing.T) *store.Store {
	t.Helper()
	openCrash := func(path string) (store.File, error) {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, err
		}
		return faultinject.NewCrashFile(f, 2), nil
	}
	st, err := store.Open(store.Options{
		Dir:          t.TempDir(),
		Clock:        simclock.NewSim(simclock.Epoch),
		CompactEvery: -1,
		OpenFile:     openCrash,
		Logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	rating := 3.0
	err = st.Commit(&store.Record{Kind: store.KindUpload, AnonID: "x", Entity: "yelp/a", Rating: &rating})
	if !errors.Is(err, store.ErrUnavailable) {
		t.Fatalf("latching commit returned %v, want ErrUnavailable", err)
	}
	if !st.Failed() {
		t.Fatal("store did not latch")
	}
	return st
}

// latchedServer mounts a latched store behind the standard test catalog.
func latchedServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	catalog := []*world.Entity{
		{ID: "a", Service: world.Yelp, Zip: "48104", Category: "chinese", Name: "Golden Wok", Quality: 4},
	}
	srv, err := New(Config{Catalog: catalog, Clock: simclock.NewSim(simclock.Epoch), KeyBits: 1024, Store: latchedStore(t)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestEveryMutatingRouteRefusesWhenLatched: once the store has latched
// ErrUnavailable, EVERY route that commits — upload, review, train,
// retrain, fraud sweep — must answer 503, including the ones whose
// happy path might not reach Commit at all (an empty fraud sweep).
func TestEveryMutatingRouteRefusesWhenLatched(t *testing.T) {
	_, ts := latchedServer(t)
	rating := 4.0
	routes := []struct {
		name string
		path string
		body any
	}{
		{"upload", "/api/upload", UploadRequest{
			AnonID: "anon-1",
			Entity: "yelp/a",
			Rating: &rating,
			Token:  fetchToken(t, ts.URL, "dev-latched"),
			Key:    "latched-key-1",
		}},
		{"review", "/api/reviews", PostReviewRequest{Entity: "yelp/a", Author: "u", Rating: 4, Text: "ok"}},
		{"train", "/api/train", TrainRequest{Features: make([]float64, inference.NumFeatures), Rating: 3}},
		{"retrain", "/api/model/retrain", struct{}{}},
		{"fraud-sweep", "/api/fraud/sweep", struct{}{}},
	}
	for _, rt := range routes {
		t.Run(rt.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+rt.path, rt.body, nil)
			if resp.StatusCode != 503 {
				t.Fatalf("POST %s on latched store = %d, want 503", rt.path, resp.StatusCode)
			}
		})
	}
}

// TestLatchedStoreStillServesReads: the latch refuses mutations only —
// reads and token issuance keep working, so clients can keep browsing
// and spool their uploads for after the recovery restart.
func TestLatchedStoreStillServesReads(t *testing.T) {
	_, ts := latchedServer(t)
	if resp := getJSON(t, ts.URL+"/api/meta", nil); resp.StatusCode != 200 {
		t.Fatalf("GET /api/meta on latched store = %d, want 200", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/api/search?zip=48104&category=chinese", nil); resp.StatusCode != 200 {
		t.Fatalf("GET /api/search on latched store = %d, want 200", resp.StatusCode)
	}
	fetchToken(t, ts.URL, "dev-reads-ok") // fatals internally on failure
}
