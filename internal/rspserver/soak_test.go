package rspserver

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"opinions/internal/simclock"
	"opinions/internal/world"
)

// TestConcurrentMixedLoad hammers the full API from many goroutines at
// once: searches, reviews, token issuance, anonymous uploads, training,
// sweeps. It is the data-race and consistency soak for the whole server
// (run with -race in CI).
func TestConcurrentMixedLoad(t *testing.T) {
	catalog := make([]*world.Entity, 0, 40)
	for i := 0; i < 40; i++ {
		catalog = append(catalog, &world.Entity{
			ID: world.EntityID(fmt.Sprintf("e%02d", i)), Service: world.Yelp,
			Zip: "z", Category: "cafe", Name: fmt.Sprintf("Cafe %d", i), Quality: 3,
		})
	}
	srv, err := New(Config{
		Catalog: catalog, KeyBits: 512, Clock: simclock.NewSim(simclock.Epoch),
		TokenRate: 1 << 20, TokenPeriod: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const workers = 16
	const opsPerWorker = 30
	var uploads, reviewsPosted int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			device := fmt.Sprintf("dev-%d", w)
			for op := 0; op < opsPerWorker; op++ {
				entity := fmt.Sprintf("yelp/e%02d", (w*opsPerWorker+op)%40)
				switch op % 4 {
				case 0: // search
					var results []WireResult
					resp := getJSON(t, ts.URL+"/api/search?service=yelp&zip=z&category=cafe&limit=5", &results)
					if resp.StatusCode != 200 {
						t.Errorf("search status %d", resp.StatusCode)
						return
					}
				case 1: // review
					resp := postJSON(t, ts.URL+"/api/reviews", PostReviewRequest{
						Entity: entity, Author: device, Rating: 3.5,
					}, nil)
					if resp.StatusCode != 201 {
						t.Errorf("review status %d", resp.StatusCode)
						return
					}
					atomic.AddInt64(&reviewsPosted, 1)
				case 2: // token + upload
					tok := fetchToken(t, ts.URL, device)
					resp := postJSON(t, ts.URL+"/api/upload", UploadRequest{
						AnonID: fmt.Sprintf("anon-%s-%s", device, entity),
						Entity: entity,
						Record: &WireRecord{Kind: "visit", Start: simclock.Epoch, DurationS: 1800, DistanceM: 500},
						Token:  tok,
					}, nil)
					if resp.StatusCode != 202 {
						t.Errorf("upload status %d", resp.StatusCode)
						return
					}
					atomic.AddInt64(&uploads, 1)
				case 3: // stats + sweep
					if resp := getJSON(t, ts.URL+"/api/stats", nil); resp.StatusCode != 200 {
						t.Errorf("stats status %d", resp.StatusCode)
						return
					}
					if resp := postJSON(t, ts.URL+"/api/fraud/sweep", nil, nil); resp.StatusCode != 200 {
						t.Errorf("sweep status %d", resp.StatusCode)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	rev, _, hists := srv.Stores()
	if int64(rev.TotalReviews()) != reviewsPosted {
		t.Fatalf("reviews: stored %d, posted %d", rev.TotalReviews(), reviewsPosted)
	}
	// Fraud sweeps run concurrently with uploads and may legitimately
	// drop short bursty histories; stored records never exceed uploads.
	if int64(hists.Stats().Records) > uploads {
		t.Fatalf("records %d exceed uploads %d", hists.Stats().Records, uploads)
	}
}
