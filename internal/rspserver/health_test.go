package rspserver

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"opinions/internal/simclock"
	"opinions/internal/store"
)

func healthMux(h *Health) *httptest.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", h.Healthz())
	mux.HandleFunc("/readyz", h.Readyz())
	return httptest.NewServer(mux)
}

// getReadyz fetches /readyz and decodes the body regardless of status.
func getReadyz(t *testing.T, base string) (int, HealthzResponse) {
	t.Helper()
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body HealthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestHealthzAlwaysOK(t *testing.T) {
	ts := healthMux(&Health{Store: latchedStore(t)})
	defer ts.Close()
	var body HealthzResponse
	if resp := getJSON(t, ts.URL+"/healthz", &body); resp.StatusCode != 200 {
		t.Fatalf("/healthz = %d, want 200 even with a latched store", resp.StatusCode)
	}
	if body.Status != "ok" {
		t.Fatalf("/healthz status = %q, want ok", body.Status)
	}
}

func TestReadyzReflectsStoreLatch(t *testing.T) {
	healthy, err := store.Open(store.Options{Clock: simclock.NewSim(simclock.Epoch)})
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	ts := healthMux(&Health{Store: healthy})
	defer ts.Close()
	if code, _ := getReadyz(t, ts.URL); code != 200 {
		t.Fatalf("/readyz on healthy store = %d, want 200", code)
	}

	ts2 := healthMux(&Health{Store: latchedStore(t)})
	defer ts2.Close()
	code, body := getReadyz(t, ts2.URL)
	if code != 503 {
		t.Fatalf("/readyz on latched store = %d, want 503", code)
	}
	if body.Status != "unavailable" || body.Reason == "" {
		t.Fatalf("latched /readyz body = %+v, want unavailable with a reason", body)
	}
}

func TestReadyzRunsRegisteredChecks(t *testing.T) {
	h := &Health{}
	ready := false
	h.AddReadyCheck("replication", func() (bool, string) {
		if ready {
			return true, ""
		}
		return false, "follower 42 records behind leader"
	})
	ts := healthMux(h)
	defer ts.Close()

	code, body := getReadyz(t, ts.URL)
	if code != 503 {
		t.Fatalf("/readyz with failing check = %d, want 503", code)
	}
	if want := "replication: follower 42 records behind leader"; body.Reason != want {
		t.Fatalf("reason = %q, want %q", body.Reason, want)
	}

	ready = true
	if code, _ := getReadyz(t, ts.URL); code != 200 {
		t.Fatalf("/readyz after check passes = %d, want 200", code)
	}
}

func TestHealthBodyCarriesPlacementFields(t *testing.T) {
	st, err := store.Open(store.Options{Clock: simclock.NewSim(simclock.Epoch)})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Commit(&store.Record{Kind: store.KindRetrain}); err == nil {
		// A retrain on an empty store may fail; any committed record
		// bumps the sequence — ignore the outcome, read the seq below.
		_ = err
	}
	caught := false
	h := &Health{
		Store:      st,
		Role:       func() string { return "follower" },
		CaughtUp:   func() bool { return caught },
		Partition:  1,
		Partitions: 3,
	}
	ts := healthMux(h)
	defer ts.Close()

	var body HealthzResponse
	if resp := getJSON(t, ts.URL+"/healthz", &body); resp.StatusCode != 200 {
		t.Fatalf("/healthz = %d", resp.StatusCode)
	}
	if body.Role != "follower" {
		t.Fatalf("role = %q, want follower", body.Role)
	}
	if body.Partition == nil || *body.Partition != 1 || body.Partitions != 3 {
		t.Fatalf("partition fields = %+v, want partition 1 of 3", body)
	}
	if body.CaughtUp {
		t.Fatal("caught_up = true, want false from the hook")
	}
	if body.AppliedSeq != st.Seq() {
		t.Fatalf("applied_seq = %d, want store seq %d", body.AppliedSeq, st.Seq())
	}
	caught = true
	if _, rb := getReadyz(t, ts.URL); !rb.CaughtUp {
		t.Fatal("caught_up = false after the hook flipped")
	}

	// An unclustered, hookless Health keeps the old shape: standalone,
	// trivially caught up, no partition fields on the wire.
	ts2 := healthMux(&Health{})
	defer ts2.Close()
	var raw map[string]any
	if resp := getJSON(t, ts2.URL+"/healthz", &raw); resp.StatusCode != 200 {
		t.Fatalf("/healthz = %d", resp.StatusCode)
	}
	if raw["role"] != "standalone" || raw["caught_up"] != true {
		t.Fatalf("standalone body = %v", raw)
	}
	if _, ok := raw["partition"]; ok {
		t.Fatal("unclustered body leaks a partition field")
	}
}
