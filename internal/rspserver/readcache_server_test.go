package rspserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"opinions/internal/attest"
	"opinions/internal/simclock"
	"opinions/internal/world"
)

// End to end: a second GET /api/entity is a cache hit serving the same
// bytes, and a committed review on that entity invalidates it so the
// next read sees the new review count.
func TestEntityCacheHitAndInvalidateOnReview(t *testing.T) {
	srv, ts := testServer(t)
	cache := srv.ReadCache()
	if cache == nil {
		t.Fatal("read cache disabled by default")
	}

	var first WireResult
	if resp := getJSON(t, ts.URL+"/api/entity?key=yelp/a", &first); resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	h0, _, _ := cache.Stats()
	var second WireResult
	getJSON(t, ts.URL+"/api/entity?key=yelp/a", &second)
	h1, _, _ := cache.Stats()
	if h1 != h0+1 {
		t.Fatalf("second read not a hit: hits %d -> %d", h0, h1)
	}
	if second.ReviewCount != first.ReviewCount {
		t.Fatalf("cached read disagrees: %d vs %d", second.ReviewCount, first.ReviewCount)
	}

	// Commit a review; the commit hook must evict the entity entry.
	resp := postJSON(t, ts.URL+"/api/reviews", PostReviewRequest{Entity: "yelp/a", Author: "bob", Rating: 4, Text: "good"}, nil)
	if resp.StatusCode != 201 {
		t.Fatalf("post review status %d", resp.StatusCode)
	}
	var after WireResult
	getJSON(t, ts.URL+"/api/entity?key=yelp/a", &after)
	if after.ReviewCount != first.ReviewCount+1 {
		t.Fatalf("read after commit served stale count %d (want %d)", after.ReviewCount, first.ReviewCount+1)
	}
	_, _, invals := cache.Stats()
	if invals == 0 {
		t.Fatal("no invalidation counted after commit")
	}
}

// Unknown entities are never cached: the key space is attacker-chosen.
func TestEntity404NotCached(t *testing.T) {
	srv, ts := testServer(t)
	for i := 0; i < 3; i++ {
		if resp := getJSON(t, ts.URL+"/api/entity?key=yelp/nope", nil); resp.StatusCode != 404 {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	if n := srv.ReadCache().Len(); n != 0 {
		t.Fatalf("404s minted %d cache entries", n)
	}
}

// The directory response is cached per known service kind; arbitrary
// ?service= strings must not mint cache keys.
func TestDirectoryCacheKnownKindsOnly(t *testing.T) {
	srv, ts := testServer(t)
	cache := srv.ReadCache()
	getJSON(t, ts.URL+"/api/directory?service=yelp", nil)
	h0, _, _ := cache.Stats()
	getJSON(t, ts.URL+"/api/directory?service=yelp", nil)
	h1, _, _ := cache.Stats()
	if h1 != h0+1 {
		t.Fatalf("repeat directory read not a hit: %d -> %d", h0, h1)
	}
	before := cache.Len()
	for i := 0; i < 5; i++ {
		getJSON(t, ts.URL+fmt.Sprintf("/api/directory?service=bogus-%d", i), nil)
	}
	if cache.Len() != before {
		t.Fatalf("unknown service kinds grew the cache: %d -> %d", before, cache.Len())
	}
}

// With DisableReadCache nothing is cached and reads still work.
func TestDisableReadCache(t *testing.T) {
	catalog := []*world.Entity{{ID: "a", Service: world.Yelp, Zip: "48104", Category: "chinese", Name: "Golden Wok", Quality: 4}}
	srv, err := New(Config{Catalog: catalog, Clock: simclock.NewSim(simclock.Epoch), KeyBits: 1024, DisableReadCache: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if srv.ReadCache() != nil {
		t.Fatal("cache present despite DisableReadCache")
	}
	var one WireResult
	if resp := getJSON(t, ts.URL+"/api/entity?key=yelp/a", &one); resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

// Differential privacy draws fresh noise per release; caching an
// entity response would freeze one noise sample. The entity namespace
// must bypass the cache under -privacy-epsilon.
func TestDPBypassesEntityCache(t *testing.T) {
	catalog := []*world.Entity{{ID: "a", Service: world.Yelp, Zip: "48104", Category: "chinese", Name: "Golden Wok", Quality: 4}}
	srv, err := New(Config{Catalog: catalog, Clock: simclock.NewSim(simclock.Epoch), KeyBits: 1024, PrivacyEpsilon: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cache := srv.ReadCache()
	getJSON(t, ts.URL+"/api/entity?key=yelp/a", nil)
	getJSON(t, ts.URL+"/api/entity?key=yelp/a", nil)
	hits, _, _ := cache.Stats()
	if hits != 0 {
		t.Fatalf("entity reads hit the cache under DP: %d hits", hits)
	}
	// The directory carries no inference aggregates; it may still cache.
	getJSON(t, ts.URL+"/api/directory", nil)
	getJSON(t, ts.URL+"/api/directory", nil)
	hits, _, _ = cache.Stats()
	if hits == 0 {
		t.Fatal("directory reads bypass the cache under DP")
	}
}

// Concurrent readers and review writers on one entity must never be
// served a response older than a completed commit (run under -race).
func TestCacheConcurrentReadWrite(t *testing.T) {
	_, ts := testServer(t)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				getJSON(t, ts.URL+"/api/entity?key=yelp/a", nil)
			}
		}()
	}
	for i := 0; i < 20; i++ {
		resp := postJSON(t, ts.URL+"/api/reviews", PostReviewRequest{Entity: "yelp/a", Author: "w", Rating: 3, Text: "x"}, nil)
		if resp.StatusCode != 201 {
			t.Fatalf("post %d status %d", i, resp.StatusCode)
		}
	}
	close(stop)
	wg.Wait()
	// After writers quiesce, the served count must reflect every commit.
	var final WireResult
	getJSON(t, ts.URL+"/api/entity?key=yelp/a", &final)
	if final.ReviewCount != 20 {
		t.Fatalf("final count %d, want 20", final.ReviewCount)
	}
}

// Every mutating route must cap its request body: an over-limit body
// answers 413, not an OOM or a silent hang.
func TestRequestBodyLimit413(t *testing.T) {
	// Attestation enabled so /api/attest/verify reaches its body read.
	catalog := []*world.Entity{{ID: "a", Service: world.Yelp, Zip: "48104", Category: "chinese", Name: "Golden Wok", Quality: 4}}
	clock := simclock.NewSim(simclock.Epoch)
	srv, err := New(Config{Catalog: catalog, Clock: clock, KeyBits: 1024, Attestation: attest.NewVerifier(clock)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// Valid JSON past the 1 MiB bound, so the decoder must actually
	// consume through the limit rather than bail on a syntax error.
	big := append(append([]byte(`{"text":"`), bytes.Repeat([]byte("a"), 2<<20)...), `"}`...)
	for _, path := range []string{"/api/reviews", "/api/token", "/api/attest/verify", "/api/upload", "/api/train"} {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(big))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: status %d, want 413", path, resp.StatusCode)
		}
	}
	// A reasonable body still parses (400 for bad content, not 413).
	resp, _ := http.Post(ts.URL+"/api/reviews", "application/json", strings.NewReader(`{"entity":""}`))
	resp.Body.Close()
	if resp.StatusCode == http.StatusRequestEntityTooLarge {
		t.Error("small body refused as too large")
	}
}

// Malformed paging on GET /api/reviews is a 400, matching /api/search;
// a past-end page is a stable empty JSON array, never null.
func TestReviewsPagingContract(t *testing.T) {
	_, ts := testServer(t)
	postJSON(t, ts.URL+"/api/reviews", PostReviewRequest{Entity: "yelp/a", Author: "a", Rating: 4, Text: "x"}, nil)

	for _, q := range []string{"offset=abc", "offset=-1", "limit=abc", "limit=-5"} {
		resp := getJSON(t, ts.URL+"/api/reviews?entity=yelp/a&"+q, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("?%s: status %d, want 400", q, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/api/reviews?entity=yelp/a&offset=50&limit=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if s := strings.TrimSpace(string(raw)); s != "[]" {
		t.Fatalf("past-end page body = %s, want []", s)
	}
}

// A snapshot restore replaces all state at once; every cached response
// must be flushed with it.
func TestRestoreSnapshotFlushesCache(t *testing.T) {
	srv, ts := testServer(t)
	getJSON(t, ts.URL+"/api/entity?key=yelp/a", nil)
	getJSON(t, ts.URL+"/api/directory?service=yelp", nil)
	if srv.ReadCache().Len() == 0 {
		t.Fatal("nothing cached before restore")
	}
	if err := srv.RestoreSnapshot(srv.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if n := srv.ReadCache().Len(); n != 0 {
		t.Fatalf("%d cache entries survived restore", n)
	}
}

// The flush must live at the store layer, not in RestoreSnapshot: a
// replication follower seeds state via store.Restore directly, and a
// cached response surviving that jump would be served stale forever.
func TestStoreRestoreFlushesCache(t *testing.T) {
	srv, ts := testServer(t)
	getJSON(t, ts.URL+"/api/entity?key=yelp/a", nil)
	getJSON(t, ts.URL+"/api/directory?service=yelp", nil)
	if srv.ReadCache().Len() == 0 {
		t.Fatal("nothing cached before restore")
	}
	if err := srv.Store().Restore(srv.Store().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if n := srv.ReadCache().Len(); n != 0 {
		t.Fatalf("%d cache entries survived store-level restore (follower snapshot path)", n)
	}
}
