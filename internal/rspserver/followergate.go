package rspserver

import (
	"fmt"
	"net/http"

	"opinions/internal/obs"
)

var metricFollowerGateRefusals = obs.Default.Counter("rsp_follower_gate_refusals_total",
	"Mutating requests refused because this node is a read-only replication follower.")

// mutatingRoutes are the endpoints that commit through the store. The
// follower gate blocks exactly these: reads stay served from the
// replicated state, and token/attestation issuance keeps working so a
// client can finish its handshake with whichever node it reaches.
var mutatingRoutes = map[string]bool{
	"/api/upload":        true,
	"/api/reviews":       true,
	"/api/train":         true,
	"/api/model/retrain": true,
	"/api/fraud/sweep":   true,
}

// WithFollowerGate refuses mutating requests while readOnly() is true —
// the node is a replication follower that has not been promoted — with
// 503, a Retry-After hint, and the leader's address in X-Leader so
// clients and operators know where writes currently land. A promoted
// follower flips readOnly to false and the gate opens without a
// restart. GETs pass through: a follower is exactly a read replica.
func WithFollowerGate(readOnly func() bool, leaderHint string) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && mutatingRoutes[r.URL.Path] && readOnly() {
				metricFollowerGateRefusals.Inc()
				w.Header().Set("Retry-After", "1")
				if leaderHint != "" {
					w.Header().Set("X-Leader", leaderHint)
				}
				writeErr(w, http.StatusServiceUnavailable,
					fmt.Errorf("rspserver: read-only replication follower; send writes to the leader (%s)", leaderHint))
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}
