package rspserver

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"opinions/internal/interaction"
	"opinions/internal/simclock"
	"opinions/internal/world"
)

// dpServer builds a server with DP releases enabled and a populated
// inference layer.
func dpServer(t *testing.T, epsilon float64) (*Server, *httptest.Server) {
	t.Helper()
	catalog := []*world.Entity{
		{ID: "a", Service: world.Yelp, Zip: "z", Category: "cafe", Name: "A"},
		{ID: "b", Service: world.Yelp, Zip: "z", Category: "cafe", Name: "B"},
	}
	srv, err := New(Config{
		Catalog: catalog, KeyBits: 512, Clock: simclock.NewSim(simclock.Epoch),
		PrivacyEpsilon: epsilon, PrivacySeed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, ops, hists := srv.Stores()
	// Entity a: 200 inferred opinions and 50 visiting users.
	for i := 0; i < 200; i++ {
		ops.Add("yelp/a", 4.0)
	}
	for u := 0; u < 50; u++ {
		id := fmt.Sprintf("anon-%d", u)
		for v := 0; v < 1+u%3; v++ {
			_ = hists.Append(id, "yelp/a", interaction.Record{
				Entity: "yelp/a", Kind: interaction.VisitKind,
				Start:    simclock.Epoch.Add(time.Duration(u*100+v*1000) * time.Hour),
				Duration: time.Hour, DistanceFrom: 2000,
			})
		}
	}
	// Entity b: a privacy-critical small population (2 users, 2 opinions).
	ops.Add("yelp/b", 5)
	ops.Add("yelp/b", 5)
	_ = hists.Append("anon-x", "yelp/b", interaction.Record{
		Entity: "yelp/b", Kind: interaction.VisitKind, Start: simclock.Epoch, Duration: time.Hour,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestDPPreservesUtilityAtScale(t *testing.T) {
	_, ts := dpServer(t, 1.0)
	var res WireResult
	getJSON(t, ts.URL+"/api/entity?key=yelp/a", &res)
	// 200 opinions ± Laplace(1) noise.
	if res.InferredCount < 190 || res.InferredCount > 210 {
		t.Fatalf("released count = %d, want ≈200", res.InferredCount)
	}
	if res.InferredMean < 3.5 || res.InferredMean > 4.5 {
		t.Fatalf("released mean = %v, want ≈4.0", res.InferredMean)
	}
	if len(res.VisitsPerUser) == 0 {
		t.Fatal("visits histogram suppressed at scale")
	}
}

func TestDPSuppressesSmallPopulations(t *testing.T) {
	_, ts := dpServer(t, 1.0)
	// Query repeatedly; the small entity's mean must be frequently
	// suppressed or noised — never released exactly.
	exact := 0
	for i := 0; i < 30; i++ {
		var res WireResult
		getJSON(t, ts.URL+"/api/entity?key=yelp/b", &res)
		if res.InferredMean == 5.0 && res.InferredCount == 2 {
			exact++
		}
	}
	if exact > 5 {
		t.Fatalf("small population released exactly %d/30 times", exact)
	}
}

func TestDPNoisesAcrossQueries(t *testing.T) {
	_, ts := dpServer(t, 1.0)
	distinct := map[int]bool{}
	for i := 0; i < 20; i++ {
		var res WireResult
		getJSON(t, ts.URL+"/api/entity?key=yelp/a", &res)
		distinct[res.InferredCount] = true
	}
	if len(distinct) < 5 {
		t.Fatalf("released counts took only %d values across 20 queries", len(distinct))
	}
}

func TestDPDisabledIsExact(t *testing.T) {
	catalog := []*world.Entity{{ID: "a", Service: world.Yelp, Zip: "z", Category: "c"}}
	srv, err := New(Config{Catalog: catalog, KeyBits: 512})
	if err != nil {
		t.Fatal(err)
	}
	_, ops, _ := srv.Stores()
	for i := 0; i < 7; i++ {
		ops.Add("yelp/a", 3)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var res WireResult
	getJSON(t, ts.URL+"/api/entity?key=yelp/a", &res)
	if res.InferredCount != 7 || res.InferredMean != 3 {
		t.Fatalf("exact release broken: %d, %v", res.InferredCount, res.InferredMean)
	}
}
