package rspserver

import (
	"fmt"
	"math/big"
	"time"

	"opinions/internal/attest"
	"opinions/internal/blindsig"
	"opinions/internal/interaction"
	"opinions/internal/search"
	"opinions/internal/world"
)

// WireRecord is the JSON form of an interaction record.
type WireRecord struct {
	Kind      string    `json:"kind"` // "visit" | "call" | "payment"
	Start     time.Time `json:"start"`
	DurationS float64   `json:"duration_s"`
	DistanceM float64   `json:"distance_m,omitempty"`
	Amount    float64   `json:"amount,omitempty"`
}

// ToRecord converts the wire form, validating the kind.
func (w WireRecord) ToRecord(entityKey string) (interaction.Record, error) {
	var kind interaction.Kind
	switch w.Kind {
	case "visit":
		kind = interaction.VisitKind
	case "call":
		kind = interaction.CallKind
	case "payment":
		kind = interaction.PaymentKind
	default:
		return interaction.Record{}, fmt.Errorf("rspserver: unknown record kind %q", w.Kind)
	}
	if w.DurationS < 0 || w.DistanceM < 0 {
		return interaction.Record{}, fmt.Errorf("rspserver: negative duration or distance")
	}
	return interaction.Record{
		Entity:       entityKey,
		Kind:         kind,
		Start:        w.Start,
		Duration:     time.Duration(w.DurationS * float64(time.Second)),
		DistanceFrom: w.DistanceM,
		Amount:       w.Amount,
	}, nil
}

// FromRecord converts a record to wire form.
func FromRecord(r interaction.Record) WireRecord {
	return WireRecord{
		Kind:      r.Kind.String(),
		Start:     r.Start,
		DurationS: r.Duration.Seconds(),
		DistanceM: r.DistanceFrom,
		Amount:    r.Amount,
	}
}

// WireToken is the JSON form of a blind-signature token.
type WireToken struct {
	Msg string `json:"msg"` // hex serial
	Sig string `json:"sig"` // decimal big.Int
}

// ToToken parses the wire form.
func (w WireToken) ToToken() (blindsig.Token, error) {
	msg, err := hexDecode(w.Msg)
	if err != nil {
		return blindsig.Token{}, fmt.Errorf("rspserver: token msg: %w", err)
	}
	sig, ok := new(big.Int).SetString(w.Sig, 10)
	if !ok {
		return blindsig.Token{}, fmt.Errorf("rspserver: token sig not a number")
	}
	return blindsig.Token{Msg: msg, Sig: sig}, nil
}

// FromToken converts a token to wire form.
func FromToken(t blindsig.Token) WireToken {
	return WireToken{Msg: hexEncode(t.Msg), Sig: t.Sig.String()}
}

func hexEncode(b []byte) string { return fmt.Sprintf("%x", b) }

func hexDecode(s string) ([]byte, error) {
	if len(s)%2 != 0 {
		return nil, fmt.Errorf("odd-length hex")
	}
	out := make([]byte, len(s)/2)
	if _, err := fmt.Sscanf(s, "%x", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// UploadRequest is the anonymous upload body (POST /api/upload). It
// carries either a record, an inferred rating, or both.
type UploadRequest struct {
	AnonID string      `json:"anon_id"`
	Entity string      `json:"entity"`
	Record *WireRecord `json:"record,omitempty"`
	Rating *float64    `json:"rating,omitempty"`
	Token  WireToken   `json:"token"`
	// Key is the client-stamped idempotency key: stable across retries,
	// spooling, and redelivery under a fresh token, so the server can
	// recognize and absorb duplicate deliveries (exactly-once uploads).
	// Empty (legacy clients) disables deduplication for this upload.
	Key string `json:"key,omitempty"`
}

// TokenKeyResponse exposes the issuer's public key (GET /api/token/key).
type TokenKeyResponse struct {
	N string `json:"n"` // decimal modulus
	E int    `json:"e"`
}

// TokenSignRequest asks the issuer to blind-sign (POST /api/token).
type TokenSignRequest struct {
	Device  string `json:"device"`
	Blinded string `json:"blinded"` // decimal big.Int
}

// TokenSignResponse returns the blind signature.
type TokenSignResponse struct {
	BlindSig string `json:"blind_sig"` // decimal big.Int
}

// PostReviewRequest posts an explicit review (POST /api/reviews).
type PostReviewRequest struct {
	Entity string  `json:"entity"`
	Author string  `json:"author"`
	Rating float64 `json:"rating"`
	Text   string  `json:"text"`
}

// TrainRequest submits one volunteered (features, rating) training pair
// (POST /api/train). Only users who already post public reviews submit
// these; the pair contains no identity.
type TrainRequest struct {
	Features []float64 `json:"features"`
	Rating   float64   `json:"rating"`
	// Category refines the per-category model; optional.
	Category string `json:"category,omitempty"`
}

// WireEntity is the public directory form of an entity.
type WireEntity struct {
	Key        string  `json:"key"`
	Service    string  `json:"service"`
	Category   string  `json:"category"`
	Zip        string  `json:"zip,omitempty"`
	Name       string  `json:"name"`
	Lat        float64 `json:"lat,omitempty"`
	Lon        float64 `json:"lon,omitempty"`
	Phone      string  `json:"phone,omitempty"`
	PriceLevel int     `json:"price_level,omitempty"`
	// Interactions/Feedback are exposed for Play/YouTube-style services
	// (Figure 1c); zero elsewhere.
	Interactions int64 `json:"interactions,omitempty"`
	Feedback     int64 `json:"feedback,omitempty"`
}

// FromEntity converts an entity to its public wire form. Latent quality
// is never exposed.
func FromEntity(e *world.Entity) WireEntity {
	return WireEntity{
		Key:          e.Key(),
		Service:      string(e.Service),
		Category:     e.Category,
		Zip:          e.Zip,
		Name:         e.Name,
		Lat:          e.Loc.Lat,
		Lon:          e.Loc.Lon,
		Phone:        e.Phone,
		PriceLevel:   e.PriceLevel,
		Interactions: e.Interactions,
		Feedback:     e.Feedback,
	}
}

// WireResult is one search result (GET /api/search).
type WireResult struct {
	Entity            WireEntity `json:"entity"`
	ReviewCount       int        `json:"review_count"`
	ReviewMean        float64    `json:"review_mean"`
	InferredCount     int        `json:"inferred_count"`
	InferredMean      float64    `json:"inferred_mean"`
	InferredHistogram [11]int    `json:"inferred_histogram"`
	Score             float64    `json:"score"`
	// Comparative visualization payload (Figure 3), when available.
	VisitsPerUser          map[int]int     `json:"visits_per_user,omitempty"`
	MeanDistanceKmByVisits map[int]float64 `json:"mean_distance_km_by_visits,omitempty"`
	RepeatFraction         float64         `json:"repeat_fraction,omitempty"`
	EffectiveInteractions  float64         `json:"effective_interactions,omitempty"`
	RawInteractions        int             `json:"raw_interactions,omitempty"`
}

// FromResult converts a search result to wire form.
func FromResult(r search.Result) WireResult {
	w := WireResult{
		Entity:            FromEntity(r.Entity),
		ReviewCount:       r.ReviewCount,
		ReviewMean:        r.ReviewMean,
		InferredCount:     r.InferredCount,
		InferredMean:      r.InferredMean,
		InferredHistogram: r.InferredHistogram,
		Score:             r.Score,
	}
	if r.Aggregate != nil {
		w.VisitsPerUser = r.Aggregate.VisitsPerUser
		w.MeanDistanceKmByVisits = r.Aggregate.MeanDistanceKmByVisits
		w.RepeatFraction = r.Aggregate.RepeatFraction
		w.EffectiveInteractions = r.Aggregate.EffectiveInteractions
		w.RawInteractions = r.Aggregate.RawInteractions
	}
	return w
}

// MetaResponse describes the service universe (GET /api/meta); the
// measurement crawler derives its query list from it.
type MetaResponse struct {
	Services []MetaService `json:"services"`
}

// MetaService is one service's query surface.
type MetaService struct {
	Kind       string   `json:"kind"`
	Name       string   `json:"name"`
	Categories []string `json:"categories"`
	Zips       []string `json:"zips"`
}

// StatsResponse summarizes server state (GET /api/stats).
type StatsResponse struct {
	Entities         int `json:"entities"`
	Reviews          int `json:"reviews"`
	Histories        int `json:"histories"`
	HistoryRecords   int `json:"history_records"`
	InferredOpinions int `json:"inferred_opinions"`
	TrainingPairs    int `json:"training_pairs"`
}

// SweepResponse reports a fraud sweep (POST /api/fraud/sweep).
type SweepResponse struct {
	Scanned   int `json:"scanned"`
	Discarded int `json:"discarded"`
}

// AttestChallengeResponse returns a fresh attestation nonce
// (POST /api/attest/challenge).
type AttestChallengeResponse struct {
	Nonce string `json:"nonce"` // hex
}

// AttestVerifyRequest submits a device's quote (POST /api/attest/verify).
type AttestVerifyRequest struct {
	Device      string `json:"device"`
	Nonce       string `json:"nonce"`       // hex
	Measurement string `json:"measurement"` // hex, 32 bytes
	MAC         string `json:"mac"`         // hex
}

// ToQuote parses the wire form.
func (r AttestVerifyRequest) ToQuote() (attest.Quote, error) {
	nonce, err := hexDecode(r.Nonce)
	if err != nil {
		return attest.Quote{}, fmt.Errorf("rspserver: attest nonce: %w", err)
	}
	mb, err := hexDecode(r.Measurement)
	if err != nil || len(mb) != 32 {
		return attest.Quote{}, fmt.Errorf("rspserver: attest measurement malformed")
	}
	mac, err := hexDecode(r.MAC)
	if err != nil {
		return attest.Quote{}, fmt.Errorf("rspserver: attest mac: %w", err)
	}
	var m attest.Measurement
	copy(m[:], mb)
	return attest.Quote{DeviceID: r.Device, Nonce: nonce, Measurement: m, MAC: mac}, nil
}

// FromQuote converts a quote to wire form.
func FromQuote(q attest.Quote) AttestVerifyRequest {
	return AttestVerifyRequest{
		Device:      q.DeviceID,
		Nonce:       hexEncode(q.Nonce),
		Measurement: q.Measurement.String(),
		MAC:         hexEncode(q.MAC),
	}
}

// ErrorResponse is the JSON error body.
type ErrorResponse struct {
	Error string `json:"error"`
}
