package rspserver

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"opinions/internal/cluster"
	"opinions/internal/simclock"
	"opinions/internal/world"
)

// testCluster is a 3-partition in-process cluster: each partition runs
// one server holding its slice of a shared catalog, wrapped in the
// ownership gate and scatter-gather middlewares.
type testCluster struct {
	ring    *cluster.Ring
	servers []*Server
	ts      []*httptest.Server
	catalog []*world.Entity
}

func newTestCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	catalog := make([]*world.Entity, 0, 30)
	for i := 0; i < 30; i++ {
		catalog = append(catalog, &world.Entity{
			ID: world.EntityID(fmt.Sprintf("e%02d", i)), Service: world.Yelp,
			Zip: "48104", Category: "chinese", Name: fmt.Sprintf("Place %02d", i),
			Quality: 1 + float64(i%5),
		})
	}

	// The ring needs node URLs before the handlers exist, so each test
	// server delegates through a late-bound slot.
	handlers := make([]atomic.Pointer[http.Handler], n)
	tc := &testCluster{catalog: catalog}
	nodes := make([]cluster.Partition, n)
	for p := 0; p < n; p++ {
		p := p
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			(*handlers[p].Load()).ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		tc.ts = append(tc.ts, ts)
		nodes[p] = cluster.Partition{Nodes: []string{ts.URL}}
	}
	ring, err := cluster.New(cluster.Config{Partitions: nodes})
	if err != nil {
		t.Fatal(err)
	}
	tc.ring = ring

	for p := 0; p < n; p++ {
		srv, err := New(Config{
			Catalog: FilterCatalog(ring, p, catalog),
			Clock:   simclock.NewSim(simclock.Epoch),
			KeyBits: 1024,
		})
		if err != nil {
			t.Fatal(err)
		}
		tc.servers = append(tc.servers, srv)
		h := Chain(srv.Handler(),
			WithScatterGather(ring, p, GatherOptions{
				Timeout:  500 * time.Millisecond,
				CacheTTL: 200 * time.Millisecond,
			}),
			WithOwnershipGate(ring, p),
		)
		handlers[p].Store(&h)
	}
	return tc
}

// keyOwnedBy returns a catalog key owned by partition p.
func (tc *testCluster) keyOwnedBy(t *testing.T, p int) string {
	t.Helper()
	for _, e := range tc.catalog {
		if tc.ring.Owns(p, e.Key()) {
			return e.Key()
		}
	}
	t.Fatalf("no catalog key maps to partition %d", p)
	return ""
}

func TestOwnershipGate(t *testing.T) {
	tc := newTestCluster(t, 3)
	foreign := tc.keyOwnedBy(t, 1)
	owner := tc.ring.Preferred(1)

	// A read for a foreign key is refused with the owner's address.
	resp := getJSON(t, tc.ts[0].URL+"/api/entity?key="+foreign, nil)
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("foreign GET /api/entity = %d, want 421", resp.StatusCode)
	}
	if got := resp.Header.Get(PartitionNodeHeader); got != owner {
		t.Fatalf("%s = %q, want %q", PartitionNodeHeader, got, owner)
	}

	// The same read on the owner succeeds.
	if resp := getJSON(t, tc.ts[1].URL+"/api/entity?key="+foreign, nil); resp.StatusCode != 200 {
		t.Fatalf("GET /api/entity on owner = %d, want 200", resp.StatusCode)
	}

	// A keyed write is gated by its JSON body.
	resp = postJSON(t, tc.ts[0].URL+"/api/reviews", map[string]any{"entity": foreign}, nil)
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("foreign POST /api/reviews = %d, want 421", resp.StatusCode)
	}

	// GET /api/reviews routes by the entity query parameter.
	resp = getJSON(t, tc.ts[0].URL+"/api/reviews?entity="+foreign, nil)
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("foreign GET /api/reviews = %d, want 421", resp.StatusCode)
	}

	// Unkeyed routes pass regardless.
	if resp := getJSON(t, tc.ts[0].URL+"/api/meta", nil); resp.StatusCode != 200 {
		t.Fatalf("GET /api/meta = %d, want 200", resp.StatusCode)
	}
}

func TestPeekEntityRestoresBody(t *testing.T) {
	body := `{"entity":"yelp/e01","rating":5}`
	r := httptest.NewRequest(http.MethodPost, "/api/reviews", strings.NewReader(body))
	if got := peekEntity(r); got != "yelp/e01" {
		t.Fatalf("peekEntity = %q, want %q", got, "yelp/e01")
	}
	rest, err := io.ReadAll(r.Body)
	if err != nil || string(rest) != body {
		t.Fatalf("body after peek = %q, %v; want original", rest, err)
	}

	// Malformed bodies yield no key and are still restored verbatim.
	r = httptest.NewRequest(http.MethodPost, "/api/reviews", strings.NewReader("{broken"))
	if got := peekEntity(r); got != "" {
		t.Fatalf("peekEntity(malformed) = %q, want empty", got)
	}
	rest, _ = io.ReadAll(r.Body)
	if string(rest) != "{broken" {
		t.Fatalf("malformed body after peek = %q", rest)
	}
}

func TestScatterGatherDirectory(t *testing.T) {
	tc := newTestCluster(t, 3)
	for p := range tc.ts {
		var dir []WireEntity
		resp := getJSON(t, tc.ts[p].URL+"/api/directory", &dir)
		if resp.StatusCode != 200 {
			t.Fatalf("coordinator %d: GET /api/directory = %d", p, resp.StatusCode)
		}
		if len(dir) != len(tc.catalog) {
			t.Fatalf("coordinator %d: directory has %d entities, want %d", p, len(dir), len(tc.catalog))
		}
		for i := 1; i < len(dir); i++ {
			if dir[i-1].Key >= dir[i].Key {
				t.Fatalf("coordinator %d: directory not sorted at %d: %q >= %q", p, i, dir[i-1].Key, dir[i].Key)
			}
		}
		if got := resp.Header.Get(FanoutHeader); got != "3" {
			t.Fatalf("coordinator %d: %s = %q, want 3", p, FanoutHeader, got)
		}
		if got := resp.Header.Get(PartialHeader); got != "" {
			t.Fatalf("coordinator %d: unexpected partial %q", p, got)
		}
	}
}

func TestScatterGatherSearch(t *testing.T) {
	tc := newTestCluster(t, 3)
	var results []WireResult
	resp := getJSON(t, tc.ts[0].URL+"/api/search?service=yelp&zip=48104&category=chinese", &results)
	if resp.StatusCode != 200 {
		t.Fatalf("GET /api/search = %d", resp.StatusCode)
	}
	if len(results) != len(tc.catalog) {
		t.Fatalf("gathered search has %d results, want %d", len(results), len(tc.catalog))
	}
	for i := 1; i < len(results); i++ {
		a, b := results[i-1], results[i]
		if a.Score < b.Score || (a.Score == b.Score && a.Entity.Key >= b.Entity.Key) {
			t.Fatalf("merge order broken at %d: (%v,%q) before (%v,%q)",
				i, a.Score, a.Entity.Key, b.Score, b.Entity.Key)
		}
	}

	// The limit applies to the merged ranking, not per partition.
	results = nil
	if resp := getJSON(t, tc.ts[2].URL+"/api/search?service=yelp&zip=48104&category=chinese&limit=5", &results); resp.StatusCode != 200 {
		t.Fatalf("limited search = %d", resp.StatusCode)
	}
	if len(results) != 5 {
		t.Fatalf("limited search has %d results, want 5", len(results))
	}
}

func TestScatterGatherLocalLegStaysLocal(t *testing.T) {
	tc := newTestCluster(t, 3)
	req, _ := http.NewRequest(http.MethodGet, tc.ts[0].URL+"/api/directory", nil)
	req.Header.Set(ClusterLocalHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dir []WireEntity
	if err := json.NewDecoder(resp.Body).Decode(&dir); err != nil {
		t.Fatal(err)
	}
	want := len(FilterCatalog(tc.ring, 0, tc.catalog))
	if len(dir) != want {
		t.Fatalf("local leg returned %d entities, want the local slice of %d", len(dir), want)
	}
	if got := resp.Header.Get(FanoutHeader); got != "" {
		t.Fatalf("local leg carries fanout header %q", got)
	}
}

func TestScatterGatherCache(t *testing.T) {
	tc := newTestCluster(t, 3)

	// First gather fans out and fills the cache; a repeat within the TTL
	// is served from it.
	var dir []WireEntity
	resp := getJSON(t, tc.ts[0].URL+"/api/directory", &dir)
	if resp.StatusCode != 200 || resp.Header.Get(GatherCacheHeader) != "" {
		t.Fatalf("first gather: status %d, cache header %q", resp.StatusCode, resp.Header.Get(GatherCacheHeader))
	}
	var cached []WireEntity
	resp = getJSON(t, tc.ts[0].URL+"/api/directory", &cached)
	if got := resp.Header.Get(GatherCacheHeader); got != "hit" {
		t.Fatalf("repeat gather: %s = %q, want hit", GatherCacheHeader, got)
	}
	if resp.Header.Get(FanoutHeader) != "3" {
		t.Fatalf("cached response lost fanout header: %q", resp.Header.Get(FanoutHeader))
	}
	if len(cached) != len(dir) {
		t.Fatalf("cached body has %d entities, fresh had %d", len(cached), len(dir))
	}

	// Past the TTL with a partition down, the re-gather goes partial —
	// and partial results are never cached, so the next request fans out
	// again rather than pinning the outage.
	time.Sleep(300 * time.Millisecond)
	tc.ts[2].Close()
	for i := 0; i < 2; i++ {
		resp = getJSON(t, tc.ts[0].URL+"/api/directory", nil)
		if got := resp.Header.Get(PartialHeader); got != "2" {
			t.Fatalf("request %d after kill: %s = %q, want 2", i, PartialHeader, got)
		}
		if got := resp.Header.Get(GatherCacheHeader); got != "" {
			t.Fatalf("request %d after kill served from cache (%q) — partials must not be cached", i, got)
		}
	}
}

func TestScatterGatherPartial(t *testing.T) {
	tc := newTestCluster(t, 3)
	tc.ts[2].Close() // unclean: partition 2 is now unreachable

	var dir []WireEntity
	resp := getJSON(t, tc.ts[0].URL+"/api/directory", &dir)
	if resp.StatusCode != 200 {
		t.Fatalf("partial GET /api/directory = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get(PartialHeader); got != "2" {
		t.Fatalf("%s = %q, want %q", PartialHeader, got, "2")
	}
	want := len(FilterCatalog(tc.ring, 0, tc.catalog)) + len(FilterCatalog(tc.ring, 1, tc.catalog))
	if len(dir) != want {
		t.Fatalf("partial directory has %d entities, want %d", len(dir), want)
	}

	// With every partition down the coordinator still answers from its
	// own slice — the worst case is partial, not unavailable.
	tc.ts[1].Close()
	dir = nil
	resp = getJSON(t, tc.ts[0].URL+"/api/directory", &dir)
	if resp.StatusCode != 200 {
		t.Fatalf("GET /api/directory with two partitions down = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get(PartialHeader); got != "1,2" && got != "2,1" {
		t.Fatalf("%s = %q, want partitions 1 and 2", PartialHeader, got)
	}
	if want := len(FilterCatalog(tc.ring, 0, tc.catalog)); len(dir) != want {
		t.Fatalf("local-only directory has %d entities, want %d", len(dir), want)
	}
}
