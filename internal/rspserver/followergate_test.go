package rspserver

import (
	"net/http/httptest"
	"testing"

	"opinions/internal/inference"
	"opinions/internal/simclock"
	"opinions/internal/world"
)

// gatedServer mounts the full API behind a follower gate whose
// read-only state the test flips through the returned pointer.
func gatedServer(t *testing.T) (*bool, *httptest.Server) {
	t.Helper()
	catalog := []*world.Entity{
		{ID: "a", Service: world.Yelp, Zip: "48104", Category: "chinese", Name: "Golden Wok", Quality: 4},
	}
	srv, err := New(Config{Catalog: catalog, Clock: simclock.NewSim(simclock.Epoch), KeyBits: 1024})
	if err != nil {
		t.Fatal(err)
	}
	readOnly := true
	h := Chain(srv.Handler(), WithFollowerGate(func() bool { return readOnly }, "http://leader.example:8080"))
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return &readOnly, ts
}

// TestFollowerGateRefusesMutations: while the node is an unpromoted
// follower every mutating POST answers 503 with the leader's address in
// X-Leader, reads and the token handshake pass through, and promotion
// (readOnly -> false) opens the gate without a restart.
func TestFollowerGateRefusesMutations(t *testing.T) {
	readOnly, ts := gatedServer(t)

	rating := 4.0
	mutating := []struct {
		name string
		path string
		body any
	}{
		{"upload", "/api/upload", UploadRequest{AnonID: "anon-1", Entity: "yelp/a", Rating: &rating}},
		{"review", "/api/reviews", PostReviewRequest{Entity: "yelp/a", Author: "u", Rating: 4, Text: "ok"}},
		{"train", "/api/train", TrainRequest{Features: make([]float64, inference.NumFeatures), Rating: 3}},
		{"retrain", "/api/model/retrain", struct{}{}},
		{"fraud-sweep", "/api/fraud/sweep", struct{}{}},
	}
	for _, rt := range mutating {
		t.Run(rt.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+rt.path, rt.body, nil)
			if resp.StatusCode != 503 {
				t.Fatalf("POST %s through follower gate = %d, want 503", rt.path, resp.StatusCode)
			}
			if got := resp.Header.Get("X-Leader"); got != "http://leader.example:8080" {
				t.Fatalf("X-Leader = %q, want the leader hint", got)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Fatalf("POST %s refused without Retry-After", rt.path)
			}
		})
	}

	// Reads and the blind-token handshake are exactly what a follower is
	// for — they must pass the gate.
	if resp := getJSON(t, ts.URL+"/api/search?zip=48104&category=chinese", nil); resp.StatusCode != 200 {
		t.Fatalf("GET /api/search through gate = %d, want 200", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/api/reviews?entity=yelp/a", nil); resp.StatusCode != 200 {
		t.Fatalf("GET /api/reviews through gate = %d, want 200", resp.StatusCode)
	}
	tok := fetchToken(t, ts.URL, "dev-gated")

	// Promote: the gate opens and the same upload now lands.
	*readOnly = false
	req := UploadRequest{AnonID: "anon-1", Entity: "yelp/a", Rating: &rating, Token: tok, Key: "gated-key-1"}
	if resp := postJSON(t, ts.URL+"/api/upload", req, nil); resp.StatusCode != 202 {
		t.Fatalf("POST /api/upload after promotion = %d, want 202", resp.StatusCode)
	}
}
