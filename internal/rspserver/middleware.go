package rspserver

import (
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"opinions/internal/simclock"
)

// Middleware wraps an http.Handler.
type Middleware func(http.Handler) http.Handler

// Chain applies middlewares left to right (the first listed is the
// outermost).
func Chain(h http.Handler, mws ...Middleware) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// statusRecorder captures the response status for logging.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// WithLogging logs one line per request: method, path, status, latency,
// remote host. Logger defaults to the standard logger.
func WithLogging(logger *log.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
			start := time.Now()
			next.ServeHTTP(rec, r)
			host, _, err := net.SplitHostPort(r.RemoteAddr)
			if err != nil {
				host = r.RemoteAddr
			}
			l := logger
			if l == nil {
				l = log.Default()
			}
			l.Printf("%s %s %d %s %s", r.Method, r.URL.Path, rec.status,
				time.Since(start).Round(time.Microsecond), host)
		})
	}
}

// WithRateLimit bounds each remote host to ratePerWindow requests per
// window, answering 429 beyond it. This protects the public endpoints
// (search, reviews) from scraping and the crypto endpoints from
// grinding; the anonymous upload path is *already* limited by blind
// tokens, which rate-limit without identifying, so operators typically
// set this well above the token rate.
func WithRateLimit(ratePerWindow int, window time.Duration, clock simclock.Clock) Middleware {
	if ratePerWindow <= 0 {
		ratePerWindow = 300
	}
	if window <= 0 {
		window = time.Minute
	}
	if clock == nil {
		clock = simclock.Real{}
	}
	type bucket struct {
		windowStart time.Time
		n           int
	}
	var mu sync.Mutex
	buckets := map[string]*bucket{}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			host, _, err := net.SplitHostPort(r.RemoteAddr)
			if err != nil {
				host = r.RemoteAddr
			}
			now := clock.Now()
			mu.Lock()
			b := buckets[host]
			if b == nil || now.Sub(b.windowStart) >= window {
				b = &bucket{windowStart: now}
				buckets[host] = b
			}
			b.n++
			over := b.n > ratePerWindow
			mu.Unlock()
			if over {
				w.Header().Set("Retry-After", window.String())
				http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}
