package rspserver

import (
	"errors"
	"log/slog"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"opinions/internal/simclock"
)

// Middleware wraps an http.Handler.
type Middleware func(http.Handler) http.Handler

// Chain applies middlewares left to right (the first listed is the
// outermost).
func Chain(h http.Handler, mws ...Middleware) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// statusRecorder captures the response status and body size for
// logging and the RED metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.wrote = true
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	r.wrote = true
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so streaming handlers keep
// working through the logging wrapper. Embedding the ResponseWriter
// interface alone would hide optional interfaces like http.Flusher
// from type assertions.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the wrapped writer per the Go 1.20
// http.ResponseController convention, so controllers reach the real
// connection for deadlines, hijacking, and flushing.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// WithLogging logs one line per request: method, path, status, bytes,
// latency, remote host. Logger defaults to slog's default logger; the
// record is emitted with the request context, so a logger built on
// obs.NewTraceLogHandler stamps trace_id automatically.
func WithLogging(logger *slog.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
			start := time.Now()
			next.ServeHTTP(rec, r)
			host, _, err := net.SplitHostPort(r.RemoteAddr)
			if err != nil {
				host = r.RemoteAddr
			}
			l := logger
			if l == nil {
				l = slog.Default()
			}
			l.InfoContext(r.Context(), "request",
				"method", r.Method,
				"path", r.URL.Path,
				"status", rec.status,
				"bytes", rec.bytes,
				"dur", time.Since(start).Round(time.Microsecond),
				"remote", host)
		})
	}
}

// WithRecovery converts handler panics into a logged 500 instead of
// killing the connection (and, for an unrecovered panic in the only
// serving goroutine, the process). http.ErrAbortHandler is re-panicked
// — it is the sanctioned way to abort a response mid-flight, and both
// net/http and the fault injector rely on it propagating.
func WithRecovery(logger *slog.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
			defer func() {
				p := recover()
				if p == nil {
					return
				}
				if p == http.ErrAbortHandler {
					panic(p)
				}
				metricPanics.Inc()
				l := logger
				if l == nil {
					l = slog.Default()
				}
				l.ErrorContext(r.Context(), "panic serving request",
					"method", r.Method,
					"path", r.URL.Path,
					"panic", p,
					"stack", string(debug.Stack()))
				if !rec.wrote {
					writeErr(rec, http.StatusInternalServerError, errors.New("internal server error"))
				}
			}()
			next.ServeHTTP(rec, r)
		})
	}
}

// WithTimeout bounds each request's total handler time, answering 503
// with a JSON error when it elapses. It shields the server from slow
// handlers and slow-reading clients alike; handlers that stream should
// be mounted outside this middleware (the buffering wrapper does not
// support Flush).
func WithTimeout(d time.Duration) Middleware {
	return func(next http.Handler) http.Handler {
		if d <= 0 {
			return next
		}
		return http.TimeoutHandler(next, d, `{"error":"request timed out"}`)
	}
}

// WithMaxInFlight sheds load beyond n concurrently served requests,
// answering 503 with a Retry-After hint instead of queueing without
// bound — under overload a fast, honest "come back later" keeps tail
// latency bounded and lets well-behaved clients (whose resilience
// policies honour Retry-After-ish backoff) spread themselves out.
func WithMaxInFlight(n int, retryAfter time.Duration) Middleware {
	return func(next http.Handler) http.Handler {
		if n <= 0 {
			return next
		}
		sem := make(chan struct{}, n)
		secs := int(retryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
				next.ServeHTTP(w, r)
			default:
				metricSheds.Inc()
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				writeErr(w, http.StatusServiceUnavailable, errors.New("server overloaded, retry later"))
			}
		})
	}
}

// WithRateLimit bounds each remote host to ratePerWindow requests per
// window, answering 429 beyond it. This protects the public endpoints
// (search, reviews) from scraping and the crypto endpoints from
// grinding; the anonymous upload path is *already* limited by blind
// tokens, which rate-limit without identifying, so operators typically
// set this well above the token rate.
func WithRateLimit(ratePerWindow int, window time.Duration, clock simclock.Clock) Middleware {
	if ratePerWindow <= 0 {
		ratePerWindow = 300
	}
	if window <= 0 {
		window = time.Minute
	}
	if clock == nil {
		clock = simclock.Real{}
	}
	type bucket struct {
		windowStart time.Time
		n           int
	}
	var mu sync.Mutex
	buckets := map[string]*bucket{}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			host, _, err := net.SplitHostPort(r.RemoteAddr)
			if err != nil {
				host = r.RemoteAddr
			}
			now := clock.Now()
			mu.Lock()
			b := buckets[host]
			if b == nil || now.Sub(b.windowStart) >= window {
				b = &bucket{windowStart: now}
				buckets[host] = b
			}
			b.n++
			over := b.n > ratePerWindow
			mu.Unlock()
			if over {
				metricRateLimited.Inc()
				w.Header().Set("Retry-After", window.String())
				http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}
