package rspserver

import (
	"encoding/json"
	"testing"
)

// FuzzWireRecordToRecord: arbitrary wire records must never panic and
// never produce negative durations or distances.
func FuzzWireRecordToRecord(f *testing.F) {
	f.Add("visit", 3600.0, 2000.0, 0.0)
	f.Add("call", 30.0, 0.0, 0.0)
	f.Add("payment", 0.0, 0.0, 42.5)
	f.Add("teleport", -1.0, -1.0, -1.0)
	f.Fuzz(func(t *testing.T, kind string, durS, distM, amount float64) {
		w := WireRecord{Kind: kind, DurationS: durS, DistanceM: distM, Amount: amount}
		rec, err := w.ToRecord("yelp/x")
		if err != nil {
			return
		}
		if rec.Duration < 0 || rec.DistanceFrom < 0 {
			t.Fatalf("negative values accepted: %+v", rec)
		}
		// Round trip must preserve the kind.
		if FromRecord(rec).Kind != kind {
			t.Fatalf("kind round trip: %q", kind)
		}
	})
}

// FuzzWireTokenToToken: arbitrary token strings must never panic.
func FuzzWireTokenToToken(f *testing.F) {
	f.Add("abcd", "12345")
	f.Add("", "")
	f.Add("zz", "-9")
	f.Add("00ff", "999999999999999999999999999")
	f.Fuzz(func(t *testing.T, msg, sig string) {
		tok, err := (WireToken{Msg: msg, Sig: sig}).ToToken()
		if err != nil {
			return
		}
		if tok.Sig == nil {
			t.Fatal("nil sig without error")
		}
	})
}

// FuzzUploadRequestJSON: arbitrary JSON bodies must never panic the
// upload acceptor.
func FuzzUploadRequestJSON(f *testing.F) {
	f.Add(`{"anon_id":"a","entity":"yelp/a","rating":4.5,"token":{"msg":"ab","sig":"1"}}`)
	f.Add(`{}`)
	f.Add(`{"record":{"kind":"visit"}}`)
	f.Add(`not json at all`)
	srv, err := New(Config{Catalog: nil, KeyBits: 512})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, body string) {
		var req UploadRequest
		if json.Unmarshal([]byte(body), &req) != nil {
			return
		}
		_ = srv.AcceptUpload(req) // must not panic
	})
}

// FuzzAttestVerifyRequest: arbitrary quote fields must never panic.
func FuzzAttestVerifyRequest(f *testing.F) {
	f.Add("dev", "abcd", "0011223344556677889900112233445566778899001122334455667788990011", "ff")
	f.Add("", "", "", "")
	f.Add("d", "zz", "aa", "bb")
	f.Fuzz(func(t *testing.T, device, nonce, measurement, mac string) {
		_, _ = (AttestVerifyRequest{
			Device: device, Nonce: nonce, Measurement: measurement, MAC: mac,
		}).ToQuote()
	})
}
