package rspserver

import "sync"

// dedupLedger is the server half of exactly-once uploads: a bounded,
// FIFO-evicting set of the idempotency keys of already-applied uploads.
// A client that retries after a truncated 2xx, or redelivers a spooled
// upload under a fresh token after a restart, presents the same key; the
// ledger lets AcceptUpload answer success without re-applying, so a
// flaky network cannot double-count an inferred opinion.
//
// The bound keeps memory constant under the north-star load (millions of
// flaky clients): a key only matters while its upload might still be
// retried, which the client's spool cycle bounds to far less than the
// ledger's horizon at any plausible capacity. Eviction of an ancient key
// degrades that one upload to at-least-once, never to loss.
//
// Keys carry no identity — they are client-drawn randomness, unlinkable
// across uploads — so persisting them in snapshots leaks nothing the
// anonymous histories do not already contain.
type dedupLedger struct {
	mu       sync.Mutex
	capacity int
	seen     map[string]struct{}
	order    []string // FIFO, oldest first; len(order) == len(seen)
	inflight map[string]struct{}
}

// defaultDedupCapacity bounds the ledger when Config leaves it zero.
const defaultDedupCapacity = 1 << 16

func newDedupLedger(capacity int) *dedupLedger {
	if capacity <= 0 {
		capacity = defaultDedupCapacity
	}
	return &dedupLedger{
		capacity: capacity,
		seen:     make(map[string]struct{}),
		inflight: make(map[string]struct{}),
	}
}

// begin claims key for an apply in progress. It reports done=true when
// the key was already committed (the caller must answer success without
// re-applying) and dup=true when another request is mid-apply with the
// same key (the caller treats the upload as delivered — the racing
// twin owns the apply).
func (l *dedupLedger) begin(key string) (done, dup bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.seen[key]; ok {
		return true, false
	}
	if _, ok := l.inflight[key]; ok {
		return false, true
	}
	l.inflight[key] = struct{}{}
	return false, false
}

// commit records key as applied and releases the in-flight claim,
// evicting the oldest key when over capacity.
func (l *dedupLedger) commit(key string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.inflight, key)
	if _, ok := l.seen[key]; ok {
		return
	}
	l.seen[key] = struct{}{}
	l.order = append(l.order, key)
	for len(l.order) > l.capacity {
		delete(l.seen, l.order[0])
		l.order = l.order[1:]
	}
}

// abort releases the in-flight claim without recording the key: the
// apply failed, so a retry must be allowed to run it again.
func (l *dedupLedger) abort(key string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.inflight, key)
}

// contains reports whether key has been committed.
func (l *dedupLedger) contains(key string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.seen[key]
	return ok
}

// len reports the number of committed keys held.
func (l *dedupLedger) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.order)
}

// dump returns the committed keys, oldest first, for snapshotting.
func (l *dedupLedger) dump() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.order...)
}

// restore replaces the ledger contents with keys (oldest first),
// truncating from the old end when over capacity.
func (l *dedupLedger) restore(keys []string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if excess := len(keys) - l.capacity; excess > 0 {
		keys = keys[excess:]
	}
	l.seen = make(map[string]struct{}, len(keys))
	l.order = make([]string, 0, len(keys))
	for _, k := range keys {
		if _, ok := l.seen[k]; ok {
			continue
		}
		l.seen[k] = struct{}{}
		l.order = append(l.order, k)
	}
	l.inflight = make(map[string]struct{})
}
