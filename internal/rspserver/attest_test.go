package rspserver

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"opinions/internal/attest"
	"opinions/internal/simclock"
	"opinions/internal/world"
)

// attestedServer builds a server requiring attestation, one provisioned
// honest device, and one tampered device.
func attestedServer(t *testing.T) (*httptest.Server, *attest.Device, *attest.Device) {
	t.Helper()
	clock := simclock.NewSim(simclock.Epoch)
	goodBuild := []byte("official client build v1")
	verifier := attest.NewVerifier(clock, attest.MeasureBuild(goodBuild))

	honest := attest.NewDevice("honest", []byte("ak-honest"), goodBuild)
	verifier.Provision("honest", []byte("ak-honest"))
	tampered := attest.NewDevice("tampered", []byte("ak-tampered"), goodBuild)
	verifier.Provision("tampered", []byte("ak-tampered"))
	tampered.Tamper([]byte("patched build that fakes activity"))

	catalog := []*world.Entity{{ID: "a", Service: world.Yelp, Zip: "z", Category: "c"}}
	srv, err := New(Config{Catalog: catalog, Clock: clock, KeyBits: 1024, Attestation: verifier})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, honest, tampered
}

// attestOverHTTP runs the challenge/verify round trip.
func attestOverHTTP(t *testing.T, base string, d *attest.Device) *http.Response {
	t.Helper()
	var ch AttestChallengeResponse
	resp := postJSON(t, base+"/api/attest/challenge", struct{}{}, &ch)
	if resp.StatusCode != 200 {
		t.Fatalf("challenge status %d", resp.StatusCode)
	}
	nonce, err := hexDecode(ch.Nonce)
	if err != nil {
		t.Fatal(err)
	}
	return postJSON(t, base+"/api/attest/verify", FromQuote(d.Attest(nonce)), nil)
}

func TestTokenGatedOnAttestation(t *testing.T) {
	ts, honest, _ := attestedServer(t)
	// Before attesting, token requests are refused.
	resp := postJSON(t, ts.URL+"/api/token", TokenSignRequest{Device: "honest", Blinded: "12345"}, nil)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unattested token status %d", resp.StatusCode)
	}
	// Attest, then tokens flow.
	if resp := attestOverHTTP(t, ts.URL, honest); resp.StatusCode != 200 {
		t.Fatalf("honest attest status %d", resp.StatusCode)
	}
	tok := fetchToken(t, ts.URL, "honest")
	if tok.Msg == "" {
		t.Fatal("no token issued after attestation")
	}
}

func TestTamperedClientNeverGetsTokens(t *testing.T) {
	ts, _, tampered := attestedServer(t)
	if resp := attestOverHTTP(t, ts.URL, tampered); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("tampered attest status %d, want 403", resp.StatusCode)
	}
	resp := postJSON(t, ts.URL+"/api/token", TokenSignRequest{Device: "tampered", Blinded: "12345"}, nil)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("tampered token status %d, want 403", resp.StatusCode)
	}
}

func TestAttestEndpointsDisabledWithoutVerifier(t *testing.T) {
	_, ts := testServer(t) // no Attestation configured
	resp := postJSON(t, ts.URL+"/api/attest/challenge", struct{}{}, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("challenge without verifier status %d", resp.StatusCode)
	}
	// And tokens flow without attestation (backward compatible).
	tok := fetchToken(t, ts.URL, "any")
	if tok.Msg == "" {
		t.Fatal("token issuance broke without attestation")
	}
}

func TestAttestVerifyMalformed(t *testing.T) {
	ts, _, _ := attestedServer(t)
	resp := postJSON(t, ts.URL+"/api/attest/verify", AttestVerifyRequest{
		Device: "honest", Nonce: "zz", Measurement: "aa", MAC: "bb",
	}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed quote status %d", resp.StatusCode)
	}
}
