package rspserver

import (
	"net"
	"net/http"
	"strconv"
	"time"

	"opinions/internal/obs"
)

// The server's instruments, registered once on the process-wide
// registry. Handles are package-level so the hot path is a single
// atomic add; the Vec lookups resolve per request (one read-locked map
// hit), never per increment.
var (
	metricRequests = obs.Default.CounterVec("rsp_http_requests_total",
		"HTTP requests served, by route, method, and status code.",
		"route", "method", "code")
	metricDuration = obs.Default.HistogramVec("rsp_http_request_seconds",
		"HTTP request latency in seconds, by route.",
		nil, "route")
	metricRespBytes = obs.Default.CounterVec("rsp_http_response_bytes_total",
		"HTTP response body bytes written, by route.",
		"route")
	metricInFlight = obs.Default.Gauge("rsp_http_inflight_requests",
		"Requests currently being served.")
	metricSheds = obs.Default.Counter("rsp_http_sheds_total",
		"Requests shed with 503 by the max-in-flight limiter.")
	metricRateLimited = obs.Default.Counter("rsp_http_rate_limited_total",
		"Requests refused with 429 by the per-host rate limiter.")
	metricPanics = obs.Default.Counter("rsp_http_panics_total",
		"Handler panics converted to 500s by the recovery middleware.")
	metricRetried = obs.Default.Counter("rsp_http_retried_requests_total",
		"Requests that declared themselves retries via "+obs.RetryHeader+".")
	metricDedupReplays = obs.Default.Counter("rsp_upload_dedup_replays_total",
		"Upload deliveries absorbed by the exactly-once ledger (already-applied keys answered success without re-applying).")
	metricTokenRefusals = obs.Default.Counter("rsp_token_rate_limited_total",
		"Token-signing requests refused because the device exceeded its issuance rate.")
)

// apiRoutes is the closed route vocabulary for metric labels. Raw
// request paths must never become label values — an attacker probing
// /api/%x paths would otherwise mint unbounded series.
var apiRoutes = map[string]struct{}{
	"/api/meta":             {},
	"/api/search":           {},
	"/api/entity":           {},
	"/api/reviews":          {},
	"/api/directory":        {},
	"/api/token/key":        {},
	"/api/token":            {},
	"/api/attest/challenge": {},
	"/api/attest/verify":    {},
	"/api/upload":           {},
	"/api/model":            {},
	"/api/train":            {},
	"/api/model/retrain":    {},
	"/api/fraud/sweep":      {},
	"/api/stats":            {},
}

func routeLabel(path string) string {
	if _, ok := apiRoutes[path]; ok {
		return path
	}
	return "other"
}

// WithMetrics is the RED middleware: per-route request counts by
// method and status, a per-route latency histogram, response bytes,
// and the in-flight gauge. Mount it inside tracing/logging and outside
// the shedding middlewares, so shed and rate-limited refusals are
// counted as the 503s/429s they are.
func WithMetrics() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			route := routeLabel(r.URL.Path)
			if ra := r.Header.Get(obs.RetryHeader); ra != "" && ra != "0" {
				metricRetried.Inc()
			}
			metricInFlight.Add(1)
			rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
			start := time.Now()
			defer func() {
				// The deferred body runs even when the handler panics
				// (recovery sits outside), so in-flight cannot leak.
				metricInFlight.Add(-1)
				metricDuration.With(route).Observe(time.Since(start).Seconds())
				metricRequests.With(route, r.Method, strconv.Itoa(rec.status)).Inc()
				metricRespBytes.With(route).Add(uint64(rec.bytes))
			}()
			next.ServeHTTP(rec, r)
		})
	}
}

// WithTracing adopts the client's X-Trace-Id (or mints one), carries
// it in the request context, echoes it on the response, and records a
// completed span into the ring. Mount it outermost-but-one (inside
// recovery only), so every log line and metric below it is taken in
// trace context.
func WithTracing(ring *obs.SpanRing) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			id, ok := obs.ParseTraceID(r.Header.Get(obs.TraceHeader))
			if !ok {
				id = obs.NewTraceID()
			}
			r = r.WithContext(obs.WithTrace(r.Context(), id))
			w.Header().Set(obs.TraceHeader, string(id))
			rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
			start := time.Now()
			defer func() {
				if ring != nil {
					host, _, err := net.SplitHostPort(r.RemoteAddr)
					if err != nil {
						host = r.RemoteAddr
					}
					ring.Record(obs.Span{
						Trace:    id,
						Method:   r.Method,
						Path:     r.URL.Path,
						Status:   rec.status,
						Bytes:    rec.bytes,
						Remote:   host,
						Start:    start,
						Duration: time.Since(start),
					})
				}
			}()
			next.ServeHTTP(rec, r)
		})
	}
}
