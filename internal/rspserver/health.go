package rspserver

import (
	"net/http"
	"sync"

	"opinions/internal/store"
)

// Health serves the two operational signals a load balancer or failover
// controller needs: /healthz ("the process is up and serving HTTP") and
// /readyz ("this node can safely take traffic right now"). Readiness is
// the store's durability latch plus any registered checks — a
// replication follower registers one that is false until it is either
// caught up with its leader or promoted, so traffic never lands on a
// node that would serve stale reads or refuse writes.
//
// Both endpoints answer with a JSON body describing the node — role,
// partition, applied sequence, caught-up — so a router or operator can
// make placement decisions from one probe instead of correlating
// status codes across endpoints.
type Health struct {
	// Store, when non-nil, gates readiness on the durability latch: a
	// store that has latched ErrUnavailable refuses mutations, so the
	// node is up but not ready. It also supplies the applied sequence
	// in the body.
	Store *store.Store
	// Role, when non-nil, names the node's replication role for the
	// body: "leader", "follower", or "promoted". Nil reports
	// "standalone".
	Role func() string
	// CaughtUp, when non-nil, reports whether the node is current with
	// its write stream — a follower that has applied everything its
	// leader acknowledged, or any node that takes writes directly. Nil
	// reports true: a standalone node is trivially caught up.
	CaughtUp func() bool
	// Partition is this node's partition id in a clustered deployment;
	// Partitions is the ring width. Both zero means unclustered and the
	// fields are omitted from the body.
	Partition  int
	Partitions int

	mu     sync.Mutex
	checks []readyCheck
}

type readyCheck struct {
	name  string
	check func() (ok bool, detail string)
}

// AddReadyCheck registers a named readiness condition; all must pass
// for /readyz to answer 200.
func (h *Health) AddReadyCheck(name string, check func() (ok bool, detail string)) {
	h.mu.Lock()
	h.checks = append(h.checks, readyCheck{name: name, check: check})
	h.mu.Unlock()
}

// HealthzResponse is the /healthz and /readyz body.
type HealthzResponse struct {
	Status string `json:"status"`
	Reason string `json:"reason,omitempty"`
	// Role is the node's replication role: standalone, leader,
	// follower, or promoted.
	Role string `json:"role"`
	// Partition and Partitions locate the node in a cluster ring;
	// omitted when the node is unclustered.
	Partition  *int `json:"partition,omitempty"`
	Partitions int  `json:"partitions,omitempty"`
	// AppliedSeq is the store's last applied record sequence.
	AppliedSeq uint64 `json:"applied_seq"`
	// CaughtUp reports whether the node is current with its write
	// stream (always true for a node taking writes directly).
	CaughtUp bool `json:"caught_up"`
}

// body builds the common response fields.
func (h *Health) body(status, reason string) HealthzResponse {
	resp := HealthzResponse{Status: status, Reason: reason, Role: "standalone", CaughtUp: true}
	if h.Role != nil {
		resp.Role = h.Role()
	}
	if h.CaughtUp != nil {
		resp.CaughtUp = h.CaughtUp()
	}
	if h.Store != nil {
		resp.AppliedSeq = h.Store.Seq()
	}
	if h.Partitions > 0 {
		p := h.Partition
		resp.Partition = &p
		resp.Partitions = h.Partitions
	}
	return resp
}

// Healthz reports liveness: answering at all is the signal; the body
// carries the node's identity for operators probing by hand.
func (h *Health) Healthz() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, h.body("ok", ""))
	}
}

// Readyz reports readiness: 200 when the store is durable and every
// registered check passes, 503 naming the first failure otherwise.
func (h *Health) Readyz() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if h.Store != nil && h.Store.Failed() {
			writeJSON(w, http.StatusServiceUnavailable,
				h.body("unavailable", "store durability latched unavailable"))
			return
		}
		h.mu.Lock()
		checks := append([]readyCheck(nil), h.checks...)
		h.mu.Unlock()
		for _, c := range checks {
			if ok, detail := c.check(); !ok {
				writeJSON(w, http.StatusServiceUnavailable,
					h.body("unavailable", c.name+": "+detail))
				return
			}
		}
		writeJSON(w, http.StatusOK, h.body("ok", ""))
	}
}
