package rspserver

import (
	"net/http"
	"sync"

	"opinions/internal/store"
)

// Health serves the two operational signals a load balancer or failover
// controller needs: /healthz ("the process is up and serving HTTP") and
// /readyz ("this node can safely take traffic right now"). Readiness is
// the store's durability latch plus any registered checks — a
// replication follower registers one that is false until it is either
// caught up with its leader or promoted, so traffic never lands on a
// node that would serve stale reads or refuse writes.
type Health struct {
	// Store, when non-nil, gates readiness on the durability latch: a
	// store that has latched ErrUnavailable refuses mutations, so the
	// node is up but not ready.
	Store *store.Store

	mu     sync.Mutex
	checks []readyCheck
}

type readyCheck struct {
	name  string
	check func() (ok bool, detail string)
}

// AddReadyCheck registers a named readiness condition; all must pass
// for /readyz to answer 200.
func (h *Health) AddReadyCheck(name string, check func() (ok bool, detail string)) {
	h.mu.Lock()
	h.checks = append(h.checks, readyCheck{name: name, check: check})
	h.mu.Unlock()
}

// HealthzResponse is the /healthz and /readyz body.
type HealthzResponse struct {
	Status string `json:"status"`
	Reason string `json:"reason,omitempty"`
}

// Healthz reports liveness: answering at all is the signal.
func (h *Health) Healthz() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, HealthzResponse{Status: "ok"})
	}
}

// Readyz reports readiness: 200 when the store is durable and every
// registered check passes, 503 naming the first failure otherwise.
func (h *Health) Readyz() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if h.Store != nil && h.Store.Failed() {
			writeJSON(w, http.StatusServiceUnavailable,
				HealthzResponse{Status: "unavailable", Reason: "store durability latched unavailable"})
			return
		}
		h.mu.Lock()
		checks := append([]readyCheck(nil), h.checks...)
		h.mu.Unlock()
		for _, c := range checks {
			if ok, detail := c.check(); !ok {
				writeJSON(w, http.StatusServiceUnavailable,
					HealthzResponse{Status: "unavailable", Reason: c.name + ": " + detail})
				return
			}
		}
		writeJSON(w, http.StatusOK, HealthzResponse{Status: "ok"})
	}
}
