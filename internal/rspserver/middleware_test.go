package rspserver

import (
	"bytes"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"opinions/internal/simclock"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
}

func TestWithLoggingWritesOneLine(t *testing.T) {
	var buf bytes.Buffer
	logger := log.New(&buf, "", 0)
	h := Chain(okHandler(), WithLogging(logger))
	ts := httptest.NewServer(h)
	defer ts.Close()
	if _, err := http.Get(ts.URL + "/api/search"); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	if !strings.Contains(line, "GET /api/search 200") {
		t.Fatalf("log line = %q", line)
	}
	if strings.Count(line, "\n") != 1 {
		t.Fatalf("expected exactly one line, got %q", line)
	}
}

func TestWithRateLimit(t *testing.T) {
	clock := simclock.NewSim(simclock.Epoch)
	h := Chain(okHandler(), WithRateLimit(3, time.Minute, clock))
	ts := httptest.NewServer(h)
	defer ts.Close()
	status := func() int {
		resp, err := http.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for i := 0; i < 3; i++ {
		if s := status(); s != 200 {
			t.Fatalf("request %d status %d", i, s)
		}
	}
	if s := status(); s != http.StatusTooManyRequests {
		t.Fatalf("4th request status %d, want 429", s)
	}
	// Window rollover refills.
	clock.Advance(61 * time.Second)
	if s := status(); s != 200 {
		t.Fatalf("after window status %d", s)
	}
}

func TestChainOrder(t *testing.T) {
	var order []string
	mk := func(name string) Middleware {
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				order = append(order, name)
				next.ServeHTTP(w, r)
			})
		}
	}
	h := Chain(okHandler(), mk("outer"), mk("inner"))
	req := httptest.NewRequest(http.MethodGet, "/", nil)
	h.ServeHTTP(httptest.NewRecorder(), req)
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("order = %v", order)
	}
}

func TestRateLimitedFullServer(t *testing.T) {
	srv, _ := testServer(t)
	clock := simclock.NewSim(simclock.Epoch)
	h := Chain(srv.Handler(), WithRateLimit(2, time.Minute, clock))
	ts := httptest.NewServer(h)
	defer ts.Close()
	for i := 0; i < 2; i++ {
		if resp := getJSON(t, ts.URL+"/api/meta", nil); resp.StatusCode != 200 {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	if resp := getJSON(t, ts.URL+"/api/meta", nil); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
}
