package rspserver

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"opinions/internal/simclock"
)

// testLogger returns a text slog.Logger writing to w, without
// timestamps, for stable assertions.
func testLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey && len(groups) == 0 {
				return slog.Attr{}
			}
			return a
		},
	}))
}

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
}

func TestWithLoggingWritesOneLine(t *testing.T) {
	var buf bytes.Buffer
	h := Chain(okHandler(), WithLogging(testLogger(&buf)))
	ts := httptest.NewServer(h)
	defer ts.Close()
	if _, err := http.Get(ts.URL + "/api/search"); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	for _, want := range []string{"method=GET", "path=/api/search", "status=200"} {
		if !strings.Contains(line, want) {
			t.Fatalf("log line %q missing %q", line, want)
		}
	}
	if strings.Count(line, "\n") != 1 {
		t.Fatalf("expected exactly one line, got %q", line)
	}
}

func TestWithRateLimit(t *testing.T) {
	clock := simclock.NewSim(simclock.Epoch)
	h := Chain(okHandler(), WithRateLimit(3, time.Minute, clock))
	ts := httptest.NewServer(h)
	defer ts.Close()
	status := func() int {
		resp, err := http.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for i := 0; i < 3; i++ {
		if s := status(); s != 200 {
			t.Fatalf("request %d status %d", i, s)
		}
	}
	if s := status(); s != http.StatusTooManyRequests {
		t.Fatalf("4th request status %d, want 429", s)
	}
	// Window rollover refills.
	clock.Advance(61 * time.Second)
	if s := status(); s != 200 {
		t.Fatalf("after window status %d", s)
	}
}

func TestChainOrder(t *testing.T) {
	var order []string
	mk := func(name string) Middleware {
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				order = append(order, name)
				next.ServeHTTP(w, r)
			})
		}
	}
	h := Chain(okHandler(), mk("outer"), mk("inner"))
	req := httptest.NewRequest(http.MethodGet, "/", nil)
	h.ServeHTTP(httptest.NewRecorder(), req)
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("order = %v", order)
	}
}

func TestRateLimitedFullServer(t *testing.T) {
	srv, _ := testServer(t)
	clock := simclock.NewSim(simclock.Epoch)
	h := Chain(srv.Handler(), WithRateLimit(2, time.Minute, clock))
	ts := httptest.NewServer(h)
	defer ts.Close()
	for i := 0; i < 2; i++ {
		if resp := getJSON(t, ts.URL+"/api/meta", nil); resp.StatusCode != 200 {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	if resp := getJSON(t, ts.URL+"/api/meta", nil); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
}

// flushRecorder is a ResponseWriter that records Flush calls — the
// underlying writer a streaming handler needs to reach through the
// logging wrapper.
type flushRecorder struct {
	http.ResponseWriter
	flushes int
}

func (f *flushRecorder) Flush() { f.flushes++ }

// TestStatusRecorderForwardsFlusher is the regression test for the
// wrapped-handler interface loss: a handler behind WithLogging must
// still see http.Flusher and reach the real writer.
func TestStatusRecorderForwardsFlusher(t *testing.T) {
	under := &flushRecorder{ResponseWriter: httptest.NewRecorder()}
	var sawFlusher bool
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		sawFlusher = ok
		if ok {
			f.Flush()
		}
	}), WithLogging(testLogger(io.Discard)))
	h.ServeHTTP(under, httptest.NewRequest(http.MethodGet, "/", nil))
	if !sawFlusher {
		t.Fatal("handler behind WithLogging lost http.Flusher")
	}
	if under.flushes != 1 {
		t.Fatalf("underlying writer flushed %d times, want 1", under.flushes)
	}
}

// TestStatusRecorderUnwrap checks the Go 1.20 ResponseController path:
// Unwrap must expose the real writer so controllers can flush through
// any depth of wrapping.
func TestStatusRecorderUnwrap(t *testing.T) {
	under := &flushRecorder{ResponseWriter: httptest.NewRecorder()}
	rec := &statusRecorder{ResponseWriter: under}
	if got := rec.Unwrap(); got != http.ResponseWriter(under) {
		t.Fatalf("Unwrap = %T, want the wrapped writer", got)
	}
	if err := http.NewResponseController(rec).Flush(); err != nil {
		t.Fatalf("ResponseController.Flush through statusRecorder: %v", err)
	}
	if under.flushes != 1 {
		t.Fatalf("flushes = %d, want 1", under.flushes)
	}
}

func TestStatusRecorderFlushToleratesNonFlusher(t *testing.T) {
	rec := &statusRecorder{ResponseWriter: nonFlusher{}}
	rec.Flush() // must not panic
}

type nonFlusher struct{}

func (nonFlusher) Header() http.Header         { return http.Header{} }
func (nonFlusher) Write(p []byte) (int, error) { return len(p), nil }
func (nonFlusher) WriteHeader(int)             {}

func TestWithRecoveryTurnsPanicInto500(t *testing.T) {
	var buf bytes.Buffer
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}), WithRecovery(testLogger(&buf)))
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatalf("panic killed the connection: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(buf.String(), "kaboom") {
		t.Fatal("panic value not logged")
	}
	// The server survives to serve the next request.
	resp2, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
}

func TestWithRecoveryRepanicsAbortHandler(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	})
	h := Chain(inner, WithRecovery(testLogger(io.Discard)))
	defer func() {
		if p := recover(); p != http.ErrAbortHandler {
			t.Fatalf("recovered %v, want re-panicked ErrAbortHandler", p)
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
	t.Fatal("ErrAbortHandler was swallowed")
}

func TestWithTimeoutSheds(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}), WithTimeout(20*time.Millisecond))
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 on timeout", resp.StatusCode)
	}
}

func TestWithMaxInFlightSheds(t *testing.T) {
	enter := make(chan struct{})
	release := make(chan struct{})
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		enter <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	}), WithMaxInFlight(1, 7*time.Second))
	ts := httptest.NewServer(h)
	defer ts.Close()

	errc := make(chan error, 1)
	go func() {
		resp, err := http.Get(ts.URL)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-enter // the slot is taken

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 shed", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After = %q, want \"7\"", ra)
	}
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("shed response not a JSON error (err=%v, body=%+v)", err, e)
	}

	close(release)
	if err := <-errc; err != nil {
		t.Fatalf("in-flight request failed: %v", err)
	}
}
