package trace

import (
	"encoding/json"
	"testing"
	"time"

	"opinions/internal/world"
)

func logsJSON(t *testing.T, logs []DayLog) string {
	t.Helper()
	b, err := json.Marshal(logs)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

// TestTraceDeterminismAcrossPaths is the satellite-2 property test: a
// user's full trace is byte-identical whether regenerated in isolation
// (UserTrace), inside a cohort of one, inside a large cohort visited in
// any order, or as part of the eager whole-city simulation.
func TestTraceDeterminismAcrossPaths(t *testing.T) {
	cityCfg := world.CityConfig{Seed: 11, NumUsers: 120}
	cfg := Config{Seed: 11, Days: 21}

	// Eager whole-city reference.
	eager := New(world.BuildCity(cityCfg), cfg)
	whole := make(map[world.UserID][]DayLog, 120)
	for d := 0; d < cfg.Days; d++ {
		for _, lg := range eager.SimulateDate(d) {
			whole[lg.User] = append(whole[lg.User], lg)
		}
	}

	// Streaming simulator over the same seeds.
	stream := New(world.OpenCity(cityCfg), cfg)

	probe := []int{0, 1, 2, 3, 7, 40, 41, 118, 119} // full block, partial overlaps, tail
	for _, i := range probe {
		id := world.UserIDOf(i)
		want := logsJSON(t, whole[id])

		if got := logsJSON(t, stream.UserTrace(i)); got != want {
			t.Fatalf("user %d: UserTrace differs from whole-city log", i)
		}

		solo := stream.Cohort([]int{i})
		var soloLogs []DayLog
		solo.Run(func(d int, _ time.Time, logs []DayLog) bool {
			_ = d
			soloLogs = append(soloLogs, logs...)
			return true
		})
		if got := logsJSON(t, soloLogs); got != want {
			t.Fatalf("user %d: cohort-of-1 differs from whole-city log", i)
		}
	}

	// A shuffled, non-contiguous cohort — including users whose block-mates
	// are absent — still reproduces every member's exact logs.
	mixed := stream.Cohort([]int{41, 3, 119, 0, 40, 7, 2, 1, 118})
	got := make(map[world.UserID][]DayLog)
	for d := 0; d < cfg.Days; d++ {
		for _, lg := range mixed.Day(d) {
			got[lg.User] = append(got[lg.User], lg)
		}
	}
	for _, i := range probe {
		id := world.UserIDOf(i)
		if logsJSON(t, got[id]) != logsJSON(t, whole[id]) {
			t.Fatalf("user %d: shuffled-cohort trace differs from whole-city log", i)
		}
	}
}

// TestUserDayMatchesSimulateDate checks the single-day regeneration
// path against the whole-city day on both eager and streaming cities.
func TestUserDayMatchesSimulateDate(t *testing.T) {
	cityCfg := world.CityConfig{Seed: 5, NumUsers: 60}
	cfg := Config{Seed: 5, Days: 10}
	eager := New(world.BuildCity(cityCfg), cfg)
	stream := New(world.OpenCity(cityCfg), cfg)
	for _, d := range []int{0, 3, 9} {
		day := eager.SimulateDate(d)
		for _, i := range []int{0, 1, 17, 58, 59} {
			want := logsJSON(t, []DayLog{day[i]})
			if got := logsJSON(t, []DayLog{eager.UserDay(i, d)}); got != want {
				t.Fatalf("eager UserDay(%d,%d) differs from SimulateDate", i, d)
			}
			if got := logsJSON(t, []DayLog{stream.UserDay(i, d)}); got != want {
				t.Fatalf("streaming UserDay(%d,%d) differs from eager SimulateDate", i, d)
			}
		}
	}
}

// TestCohortMemoryBounded pins the O(K) cohort contract: stepping a
// small cohort through days over a large streaming city must not
// materialize population-sized state on the simulator.
func TestCohortMemoryBounded(t *testing.T) {
	city := world.OpenCity(world.CityConfig{Seed: 9, NumUsers: 500000})
	sim := New(city, Config{Seed: 9, Days: 3})
	co := sim.CohortRange(123400, 64)
	if co.Size() != 64 {
		t.Fatalf("cohort size = %d", co.Size())
	}
	total := 0
	co.Run(func(d int, _ time.Time, logs []DayLog) bool {
		total += len(logs)
		return true
	})
	if total != 64*3 {
		t.Fatalf("cohort produced %d logs, want %d", total, 64*3)
	}
	if city.Users != nil {
		t.Fatal("streaming city materialized users")
	}
	if sim.eagerStates != nil && len(sim.eagerStates) > 0 {
		// statesForDate must not have populated O(N) state for a cohort run.
		for _, st := range sim.eagerStates {
			if st != nil {
				t.Fatal("cohort run materialized eager per-user state")
			}
		}
	}
}

// TestStreamingVocalMinority is the satellite-6 calibration guard on the
// trace layer: run a streaming cohort sweep over the whole population
// and check the §2 participation-gap shape — the ~10% contributor
// minority authors the overwhelming share of reviews while everyone
// generates behavioural signal.
func TestStreamingVocalMinority(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cityCfg := world.CityConfig{Seed: 2, NumUsers: 2000}
	city := world.OpenCity(cityCfg)
	sim := New(city, Config{Seed: 2, Days: 60})

	reviewsByClass := map[world.ParticipationClass]int{}
	usersWithVisits, usersWithReviews := 0, 0
	const k = 200
	for start := 0; start < city.NumUsers(); start += k {
		co := sim.CohortRange(start, k)
		visits := make(map[world.UserID]int)
		reviews := make(map[world.UserID]int)
		co.Run(func(d int, _ time.Time, logs []DayLog) bool {
			for _, lg := range logs {
				visits[lg.User] += len(lg.Visits)
				reviews[lg.User] += len(lg.Reviews)
				if len(lg.Reviews) > 0 {
					u := city.UserByID(lg.User)
					reviewsByClass[u.Class] += len(lg.Reviews)
				}
			}
			return true
		})
		for _, u := range co.Users() {
			if visits[u.ID] > 0 {
				usersWithVisits++
			}
			if reviews[u.ID] > 0 {
				usersWithReviews++
			}
		}
	}
	if city.Users != nil {
		t.Fatal("sweep materialized the population")
	}
	if frac := float64(usersWithVisits) / 2000; frac < 0.95 {
		t.Fatalf("only %.2f of users produced visits", frac)
	}
	// Reviews must come from a small minority of the population...
	if frac := float64(usersWithReviews) / 2000; frac > 0.30 {
		t.Fatalf("%.2f of users posted reviews; expected a vocal minority", frac)
	}
	// ...and contributors (1%+9% of users) must author the vast majority.
	totalReviews := 0
	for _, n := range reviewsByClass {
		totalReviews += n
	}
	if totalReviews == 0 {
		t.Fatal("no reviews at all")
	}
	contrib := reviewsByClass[world.HeavyContributor] + reviewsByClass[world.OccasionalContributor]
	if frac := float64(contrib) / float64(totalReviews); frac < 0.85 {
		t.Fatalf("contributor classes authored only %.2f of reviews", frac)
	}
}
