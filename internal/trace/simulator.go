package trace

import (
	"fmt"
	"math"
	"strconv"
	"sync"
	"time"

	"opinions/internal/geo"
	"opinions/internal/stats"
	"opinions/internal/world"
)

// travelSpeed is the assumed door-to-door speed in meters per second
// (city driving including parking).
const travelSpeed = 9.0

// Config controls a simulation run.
type Config struct {
	Seed  int64
	Start time.Time // first simulated midnight (UTC)
	Days  int
	// ReviewBoost multiplies every user's review propensity (default 1).
	// Values > 1 model the §3 alternative of reminding/incentivizing
	// users to post: "if an RSP attempts to increase the chances of its
	// users posting reviews by reminding them to do so".
	ReviewBoost float64
	// MoveFraction is the fraction of users who relocate once during
	// the horizon (default 0.06). Relocation is the confound §4.1 names
	// explicitly: "the user may have interacted with a different
	// electrician only because she moved to a different city" — a
	// provider switch that means nothing about the old provider's
	// quality. Set to -1 to disable moves entirely.
	MoveFraction float64
}

// DefaultConfig simulates 120 days starting at the paper-era epoch.
func DefaultConfig() Config {
	return Config{Seed: 1, Start: time.Date(2016, 1, 4, 0, 0, 0, 0, time.UTC), Days: 120}
}

// Simulator generates deterministic daily activity for the users of a
// city. Construct with New; the zero value is not usable.
//
// The simulator is streaming: it holds no per-user state. Every stream
// of randomness is derived purely from (Config.Seed, label path) via
// stats.Derive, so any user's full multi-day trace is regenerable from
// the seed alone — byte-identical whether the user is simulated alone
// (UserDay), inside a cohort of any size (Cohort), or as part of a
// whole-city day (SimulateDate). Group events are derived from
// seed-stable social blocks (world.City.Circle) rather than shared
// mutable maps, which is what makes per-user regeneration possible:
// everything a user's day depends on lives within their own block.
type Simulator struct {
	City *world.City
	cfg  Config

	// eagerOnce/eagerStates memoize per-user derived state for the
	// whole-city SimulateDate path over an eager (materialized) city,
	// where O(N) state is already the baseline. Streaming cities never
	// populate this — cohorts hold their own bounded state instead.
	eagerOnce   sync.Once
	eagerStates []*userState
}

// relocation is one user's mid-horizon move.
type relocation struct {
	day  int
	home geo.Point
}

// providerEvent is one scheduled home-service engagement.
type providerEvent struct {
	entity   *world.Entity
	kind     CallPurpose
	duration time.Duration
}

// calendar holds the rare pre-scheduled events of one user, derived
// on demand from the user's seed so day generation is independent per
// user as well as per day.
type calendar struct {
	dentist       map[int]*world.Entity // day index -> appointment
	dentistCall   map[int]*world.Entity // booking calls
	providerCall  map[int][]providerEvent
	providerVisit map[int][]providerEvent // provider comes to user's home
	hairdresser   map[int]*world.Entity
}

// userState bundles everything derivable about one user that day
// generation consumes: the user, their relocation (if any), and their
// pre-scheduled calendar. Deriving it costs O(horizon) time and O(own
// events) memory — never anything proportional to the population.
type userState struct {
	idx  int
	user *world.User
	move *relocation
	cal  *calendar
}

// New builds a simulator over city. All randomness derives from
// cfg.Seed, so two simulators with the same city and config produce
// identical logs. New does no per-user precomputation; a simulator over
// a million-user streaming city costs nothing to construct.
func New(city *world.City, cfg Config) *Simulator {
	if cfg.Days <= 0 {
		cfg.Days = 120
	}
	if cfg.Start.IsZero() {
		cfg.Start = DefaultConfig().Start
	}
	return &Simulator{City: city, cfg: cfg}
}

// moveFraction resolves the config's tri-state move knob.
func (s *Simulator) moveFraction() float64 {
	frac := s.cfg.MoveFraction
	if frac < 0 {
		return 0
	}
	if frac == 0 {
		return 0.06
	}
	return frac
}

// moveOf derives whether, when, and where user u relocates. Pure in
// (seed, u.ID): no other user's draw affects it.
func (s *Simulator) moveOf(u *world.User) *relocation {
	frac := s.moveFraction()
	if frac == 0 {
		return nil
	}
	rng := stats.Derive(s.cfg.Seed, "move", string(u.ID))
	if !rng.Bool(frac) {
		return nil
	}
	// New home across town: far enough that old favourites stop being
	// convenient.
	return &relocation{
		day: 1 + rng.Intn(s.cfg.Days),
		home: geo.Offset(u.Home,
			rng.Normal(0, 4000)+6000*sign(rng),
			rng.Normal(0, 4000)+6000*sign(rng)),
	}
}

func sign(rng *stats.RNG) float64 {
	if rng.Bool(0.5) {
		return 1
	}
	return -1
}

// homeOn returns the user's home on day index d given their relocation.
func homeOn(u *world.User, m *relocation, d int) geo.Point {
	if m != nil && d >= m.day {
		return m.home
	}
	return u.Home
}

// Moves exposes the relocation schedule to experiments (ground truth
// for the §4.1 confound analysis): user → move day index, for users who
// move. It streams the population, so it is O(N) time but O(movers)
// memory.
func (s *Simulator) Moves() map[world.UserID]int {
	out := make(map[world.UserID]int)
	s.City.EachUser(func(i int, u *world.User) bool {
		if m := s.moveOf(u); m != nil {
			out[u.ID] = m.day
		}
		return true
	})
	return out
}

// Days returns the number of simulated days.
func (s *Simulator) Days() int { return s.cfg.Days }

// Start returns the first simulated midnight.
func (s *Simulator) Start() time.Time { return s.cfg.Start }

// calendarOf derives user u's pre-scheduled dentist appointments,
// home-service engagements, and haircuts across the horizon. Pure in
// (seed, u.ID, u's move).
func (s *Simulator) calendarOf(u *world.User, move *relocation) *calendar {
	rng := stats.Derive(s.cfg.Seed, "cal", string(u.ID))
	c := &calendar{
		dentist:       make(map[int]*world.Entity),
		dentistCall:   make(map[int]*world.Entity),
		providerCall:  make(map[int][]providerEvent),
		providerVisit: make(map[int][]providerEvent),
		hairdresser:   make(map[int]*world.Entity),
	}

	// Dentist: loyal to one practice, occasionally switching when
	// exploring (the §4.1 "tried out many options" signal). A
	// relocation forces a re-choice from the new home — the §4.1
	// confound.
	dentist := s.City.Choose(rng, u, "dentist", u.Home)
	pDental := u.DentalPerYear / 365
	moved := false
	for d := 0; d < s.cfg.Days; d++ {
		if move != nil && d >= move.day && !moved {
			moved = true
			dentist = s.City.Choose(rng, u, "dentist", move.home)
		}
		if !rng.Bool(pDental) {
			continue
		}
		if dentist == nil {
			break
		}
		if rng.Bool(u.Explorer * 0.5) {
			dentist = s.City.Choose(rng, u, "dentist", homeOn(u, move, d))
		}
		c.dentist[d] = dentist
		callDay := d - 3
		if callDay >= 0 {
			c.dentistCall[callDay] = dentist
		}
	}

	// Home services: booking call, then the provider visits the home
	// two days later; a bad experience triggers a complaint call —
	// the confound §4.1 warns about ("repeated phone calls to a
	// plumber may be because the plumber did a poor job").
	pService := u.HomeServicePerYear / 365
	for d := 0; d < s.cfg.Days; d++ {
		if !rng.Bool(pService) {
			continue
		}
		cat := "plumber"
		if rng.Bool(0.45) {
			cat = "electrician"
		}
		prov := s.City.Choose(rng, u, cat, homeOn(u, move, d))
		if prov == nil {
			continue
		}
		c.providerCall[d] = append(c.providerCall[d], providerEvent{
			entity: prov, kind: CallBooking,
			duration: time.Duration(60+rng.Intn(180)) * time.Second,
		})
		if d+2 < s.cfg.Days {
			c.providerVisit[d+2] = append(c.providerVisit[d+2], providerEvent{entity: prov})
		}
		if u.TrueOpinion(prov) < 2.5 && rng.Bool(0.6) && d+4 < s.cfg.Days {
			c.providerCall[d+4] = append(c.providerCall[d+4], providerEvent{
				entity: prov, kind: CallComplaint,
				duration: time.Duration(120+rng.Intn(300)) * time.Second,
			})
		}
	}

	// Haircuts roughly every five weeks; relocation re-chooses.
	hairdresser := s.City.Choose(rng, u, "hairdresser", u.Home)
	hairMoved := false
	for d := 0; d < s.cfg.Days; d++ {
		if move != nil && d >= move.day && !hairMoved {
			hairMoved = true
			hairdresser = s.City.Choose(rng, u, "hairdresser", move.home)
		}
		if hairdresser != nil && rng.Bool(1.0/35) {
			c.hairdresser[d] = hairdresser
		}
	}
	return c
}

// statesForDate returns the memoized per-user states for the eager
// whole-city path, or an all-nil slice for streaming cities (callers
// fall back to stateOf). Derivation is pure, so memoizing only changes
// cost, never output.
func (s *Simulator) statesForDate() []*userState {
	s.eagerOnce.Do(func() {
		s.eagerStates = make([]*userState, s.City.NumUsers())
		if s.City.Users == nil {
			return // streaming city: stay O(1); cohorts bound their own state
		}
		for i := range s.eagerStates {
			s.eagerStates[i] = s.stateOf(i)
		}
	})
	return s.eagerStates
}

// stateOf derives the full simulation state of user index i.
func (s *Simulator) stateOf(i int) *userState {
	u := s.City.UserAt(i)
	if u == nil {
		return nil
	}
	move := s.moveOf(u)
	return &userState{idx: i, user: u, move: move, cal: s.calendarOf(u, move)}
}

// Run simulates every user across the whole horizon and returns the day
// logs in (date, user) order. This is the eager path; it materializes
// every log, so it is for calibration-scale cities only.
func (s *Simulator) Run() []DayLog {
	out := make([]DayLog, 0, s.City.NumUsers()*s.cfg.Days)
	for d := 0; d < s.cfg.Days; d++ {
		out = append(out, s.SimulateDate(d)...)
	}
	return out
}

// groupPlan is a planned group dinner for one date, shared by the
// members of one social block.
type groupPlan struct {
	restaurant *world.Entity
	groupID    string
	size       int
	members    map[world.UserID]bool
}

// planBlock derives the group dinner (if any) of the social block
// starting at index blockStart on day d. The derivation replays the
// same seed-stable stream for every member who asks, so each of the ≤
// circleSize members computes an identical plan without any shared
// state: the first member whose initiation draw succeeds hosts, the
// others join with the legacy 0.7 acceptance probability.
func (s *Simulator) planBlock(d int, date time.Time, blockStart, blockEnd int) *groupPlan {
	if blockEnd-blockStart < 1 {
		return nil
	}
	rng := stats.Derive(s.cfg.Seed, "plan", strconv.Itoa(d), strconv.Itoa(blockStart))
	weekend := isWeekend(date)
	var initiator *world.User
	initIdx := -1
	for j := blockStart; j < blockEnd; j++ {
		u := s.City.UserAt(j)
		if rng.Bool(dinnerProb(u, weekend) * u.Sociability) {
			initiator, initIdx = u, j
			break
		}
	}
	if initiator == nil {
		return nil
	}
	rest := s.City.Choose(rng, initiator, "restaurant", homeOn(initiator, s.moveOf(initiator), d))
	if rest == nil {
		return nil
	}
	members := map[world.UserID]bool{initiator.ID: true}
	for j := blockStart; j < blockEnd; j++ {
		if j == initIdx {
			continue
		}
		if rng.Bool(0.7) {
			members[s.City.UserAt(j).ID] = true
		}
	}
	return &groupPlan{
		restaurant: rest,
		groupID:    fmt.Sprintf("g-%d-%s", d, initiator.ID),
		size:       len(members),
		members:    members,
	}
}

// planFor returns user index i's group plan on day d, or nil when the
// user is not dining in a group that day.
func (s *Simulator) planFor(st *userState, d int, date time.Time) *groupPlan {
	blockStart, blockEnd := world.CircleBlock(st.idx, s.City.NumUsers())
	gp := s.planBlock(d, date, blockStart, blockEnd)
	if gp == nil || !gp.members[st.user.ID] {
		return nil
	}
	return gp
}

// SimulateDate generates logs for all users on day index d (0-based
// from Config.Start), in user-index order. Each social block's group
// plan is derived once and shared across its members' logs.
func (s *Simulator) SimulateDate(d int) []DayLog {
	date := s.cfg.Start.AddDate(0, 0, d)
	n := s.City.NumUsers()
	logs := make([]DayLog, 0, n)
	var blockPlan *groupPlan
	blockEnd := 0
	states := s.statesForDate()
	for i := 0; i < n; i++ {
		if i >= blockEnd {
			var blockStart int
			blockStart, blockEnd = world.CircleBlock(i, n)
			blockPlan = s.planBlock(d, date, blockStart, blockEnd)
		}
		st := states[i]
		if st == nil {
			st = s.stateOf(i)
		}
		plan := blockPlan
		if plan != nil && !plan.members[st.user.ID] {
			plan = nil
		}
		logs = append(logs, s.simulateUserDay(st, d, date, plan))
	}
	return logs
}

// UserDay regenerates user index i's day d in isolation: O(1) memory in
// the population size, byte-identical to the same user's log inside
// SimulateDate or any cohort.
func (s *Simulator) UserDay(i, d int) DayLog {
	st := s.stateOf(i)
	if st == nil {
		return DayLog{}
	}
	date := s.cfg.Start.AddDate(0, 0, d)
	return s.simulateUserDay(st, d, date, s.planFor(st, d, date))
}

// UserTrace regenerates user index i's entire horizon, one DayLog per
// day. Memory is O(days of one user's activity).
func (s *Simulator) UserTrace(i int) []DayLog {
	out := make([]DayLog, 0, s.cfg.Days)
	for d := 0; d < s.cfg.Days; d++ {
		out = append(out, s.UserDay(i, d))
	}
	return out
}

func dinnerProb(u *world.User, weekend bool) float64 {
	p := u.EatOutPerWeek / 7
	if weekend {
		p *= 1.5
	} else {
		p *= 0.8
	}
	return math.Min(p, 0.95)
}

func isWeekend(date time.Time) bool {
	wd := date.Weekday()
	return wd == time.Saturday || wd == time.Sunday
}

// simulateUserDay builds one user's full day from derived state.
func (s *Simulator) simulateUserDay(st *userState, d int, date time.Time, plan *groupPlan) DayLog {
	u := st.user
	rng := stats.Derive(s.cfg.Seed, "day", strconv.Itoa(d), string(u.ID))
	cal := st.cal
	home := homeOn(u, st.move, d)
	b := newDayBuilderAt(u, date, home)
	weekend := isWeekend(date)
	workday := !weekend

	// Morning at home.
	if workday {
		b.stayUntil("home", home, b.clock(8, rng.Intn(30)))
		b.travelTo(u.Work)
		// Morning work block.
		b.stayUntil("work", u.Work, b.clock(12, 0))
		// Lunch at a cafe near work.
		if rng.Bool(0.45) {
			cafe := s.City.Choose(rng, u, "cafe", u.Work)
			if cafe != nil {
				s.visit(b, rng, u, cafe, 35+rng.Intn(20), plan == nil, 12+rng.Float64()*8)
				b.travelTo(u.Work)
			}
		}
		// Afternoon: possible dentist appointment at 14:00.
		if dent := cal.dentist[d]; dent != nil {
			b.stayUntil("work", u.Work, b.clock(13, 30))
			s.visit(b, rng, u, dent, 40+rng.Intn(25), rng.Bool(0.7), 80+rng.Float64()*120)
			b.travelTo(u.Work)
		}
		b.stayUntil("work", u.Work, b.clock(17, 15+rng.Intn(30)))
		// Haircut after work.
		if h := cal.hairdresser[d]; h != nil {
			s.visit(b, rng, u, h, 30+rng.Intn(20), rng.Bool(0.8), 25+rng.Float64()*30)
		}
		b.travelTo(home)
	} else {
		b.stayUntil("home", home, b.clock(10, rng.Intn(60)))
		// Weekend brunch.
		if rng.Bool(0.3) {
			cafe := s.City.Choose(rng, u, "cafe", home)
			if cafe != nil {
				s.visit(b, rng, u, cafe, 45+rng.Intn(30), rng.Bool(0.85), 15+rng.Float64()*10)
				b.travelTo(home)
			}
		}
		if h := cal.hairdresser[d]; h != nil {
			b.stayUntil("home", home, b.clock(13, 0))
			s.visit(b, rng, u, h, 30+rng.Intn(20), rng.Bool(0.8), 25+rng.Float64()*30)
			b.travelTo(home)
		}
	}

	// Phone calls from the calendar (made from wherever the user is; the
	// timeline does not move).
	if dent := cal.dentistCall[d]; dent != nil {
		b.call(dent, b.clock(10, rng.Intn(120)), time.Duration(90+rng.Intn(150))*time.Second, CallBooking)
	}
	for _, pe := range cal.providerCall[d] {
		b.call(pe.entity, b.clock(9, rng.Intn(180)), pe.duration, pe.kind)
	}
	// Provider visits the home: the digital footprint is the payment.
	for _, pe := range cal.providerVisit[d] {
		b.pay(pe.entity, b.clock(11, rng.Intn(240)), 150+rng.Float64()*300)
		s.maybeReview(b, rng, u, pe.entity, b.clock(20, 0))
	}

	// Dinner: group plan or solo decision.
	if plan != nil {
		b.stayUntil("home", home, b.clock(18, 20+rng.Intn(20)))
		s.groupVisit(b, rng, u, plan, 75+rng.Intn(40))
		b.travelTo(home)
	} else if rng.Bool(dinnerProb(u, weekend) * (1 - u.Sociability)) {
		rest := s.City.Choose(rng, u, "restaurant", home)
		if rest != nil {
			b.stayUntil("home", home, b.clock(18, 30+rng.Intn(30)))
			if rng.Bool(0.15) {
				// Reservation call earlier in the afternoon.
				b.call(rest, b.clock(15, rng.Intn(90)), time.Duration(45+rng.Intn(60))*time.Second, CallBooking)
			}
			s.visit(b, rng, u, rest, 60+rng.Intn(45), rng.Bool(0.85), 20+rng.Float64()*35)
			b.travelTo(home)
		}
	}

	// Evening gym for some.
	if rng.Bool(0.10) {
		gym := s.City.Choose(rng, u, "gym", home)
		if gym != nil {
			b.stayUntil("home", home, b.clock(20, 30))
			s.visit(b, rng, u, gym, 50+rng.Intn(30), false, 0)
			b.travelTo(home)
		}
	}

	b.stayUntil("home", home, b.clock(23, 59))
	return b.log
}

// visit moves the user to e, records the ground-truth visit, and
// optionally a payment and review.
func (s *Simulator) visit(b *dayBuilder, rng *stats.RNG, u *world.User, e *world.Entity, minutes int, pay bool, amount float64) {
	from := b.loc
	b.travelTo(e.Loc)
	arrive := b.now
	b.stayFor(e.Key(), e.Loc, time.Duration(minutes)*time.Minute)
	b.log.Visits = append(b.log.Visits, Visit{
		User: u.ID, Entity: e.Key(),
		Arrive: arrive, Depart: b.now,
		FromPoint: from, GroupSize: 1,
	})
	if pay && amount > 0 {
		b.pay(e, b.now.Add(-2*time.Minute), amount)
	}
	s.maybeReview(b, rng, u, e, b.now.Add(2*time.Hour))
}

// groupVisit is like visit but annotates the shared group.
func (s *Simulator) groupVisit(b *dayBuilder, rng *stats.RNG, u *world.User, plan *groupPlan, minutes int) {
	from := b.loc
	e := plan.restaurant
	b.travelTo(e.Loc)
	arrive := b.now
	b.stayFor(e.Key(), e.Loc, time.Duration(minutes)*time.Minute)
	b.log.Visits = append(b.log.Visits, Visit{
		User: u.ID, Entity: e.Key(),
		Arrive: arrive, Depart: b.now,
		FromPoint: from,
		GroupID:   plan.groupID, GroupSize: plan.size,
	})
	if rng.Bool(0.85) {
		b.pay(e, b.now.Add(-2*time.Minute), 18+rng.Float64()*30)
	}
	s.maybeReview(b, rng, u, e, b.now.Add(2*time.Hour))
}

// maybeReview posts an explicit review with the user's class propensity —
// the participation gap of §2 emerges from here. Config.ReviewBoost
// models reminder campaigns.
func (s *Simulator) maybeReview(b *dayBuilder, rng *stats.RNG, u *world.User, e *world.Entity, at time.Time) {
	p := u.Class.ReviewProbability()
	if s.cfg.ReviewBoost > 0 {
		p = math.Min(1, p*s.cfg.ReviewBoost)
	}
	if !rng.Bool(p) {
		return
	}
	b.log.Reviews = append(b.log.Reviews, Review{
		User: u.ID, Entity: e.Key(), Time: at, Rating: u.ExplicitRating(e),
	})
}

// dayBuilder accumulates one DayLog, tracking a time/location cursor.
type dayBuilder struct {
	log  DayLog
	now  time.Time
	loc  geo.Point
	date time.Time
}

func newDayBuilderAt(u *world.User, date time.Time, home geo.Point) *dayBuilder {
	return &dayBuilder{
		log:  DayLog{User: u.ID, Date: date},
		now:  date,
		loc:  home,
		date: date,
	}
}

// clock returns the given wall-clock time on the builder's date.
func (b *dayBuilder) clock(hour, minute int) time.Time {
	return b.date.Add(time.Duration(hour)*time.Hour + time.Duration(minute)*time.Minute)
}

// stayUntil appends a stationary segment at p labelled `at` lasting until
// t (no-op if t is not after the cursor).
func (b *dayBuilder) stayUntil(at string, p geo.Point, t time.Time) {
	if !t.After(b.now) {
		return
	}
	b.log.Segments = append(b.log.Segments, Segment{
		Start: b.now, End: t, From: p, To: p, At: at,
	})
	b.now = t
	b.loc = p
}

// stayFor appends a stationary segment of duration d.
func (b *dayBuilder) stayFor(at string, p geo.Point, d time.Duration) {
	b.stayUntil(at, p, b.now.Add(d))
}

// travelTo appends a travel leg from the cursor location to p.
func (b *dayBuilder) travelTo(p geo.Point) {
	dist := geo.Distance(b.loc, p)
	if dist < 1 {
		b.loc = p
		return
	}
	dur := time.Duration(dist/travelSpeed) * time.Second
	if dur < time.Minute {
		dur = time.Minute
	}
	b.log.Segments = append(b.log.Segments, Segment{
		Start: b.now, End: b.now.Add(dur), From: b.loc, To: p,
	})
	b.now = b.now.Add(dur)
	b.loc = p
}

// call records a phone call (the user does not move).
func (b *dayBuilder) call(e *world.Entity, at time.Time, dur time.Duration, purpose CallPurpose) {
	b.log.Calls = append(b.log.Calls, Call{
		User: b.log.User, Phone: e.Phone, Entity: e.Key(),
		Time: at, Duration: dur, Purpose: purpose,
	})
}

// pay records a card payment.
func (b *dayBuilder) pay(e *world.Entity, at time.Time, amount float64) {
	b.log.Payments = append(b.log.Payments, Payment{
		User: b.log.User, Entity: e.Key(), Time: at, Amount: amount,
	})
}
