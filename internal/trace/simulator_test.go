package trace

import (
	"testing"
	"time"

	"opinions/internal/geo"
	"opinions/internal/world"
)

func smallCity() *world.City {
	return world.BuildCity(world.CityConfig{Seed: 11, NumUsers: 60, SpanMeters: 10000})
}

func smallSim(days int) *Simulator {
	return New(smallCity(), Config{Seed: 5, Days: days})
}

func TestSimulatorDeterministic(t *testing.T) {
	a := smallSim(7).Run()
	b := smallSim(7).Run()
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].User != b[i].User || len(a[i].Visits) != len(b[i].Visits) ||
			len(a[i].Calls) != len(b[i].Calls) || len(a[i].Segments) != len(b[i].Segments) {
			t.Fatalf("day %d differs", i)
		}
		for j := range a[i].Visits {
			if a[i].Visits[j] != b[i].Visits[j] {
				t.Fatalf("visit differs: %+v vs %+v", a[i].Visits[j], b[i].Visits[j])
			}
		}
	}
}

func TestSegmentsAreContiguousAndOrdered(t *testing.T) {
	logs := smallSim(5).Run()
	for _, dl := range logs {
		for i, s := range dl.Segments {
			if s.End.Before(s.Start) {
				t.Fatalf("segment ends before it starts: %+v", s)
			}
			if i > 0 && s.Start.Before(dl.Segments[i-1].End) {
				t.Fatalf("user %s: segment %d overlaps previous", dl.User, i)
			}
		}
		if len(dl.Segments) == 0 {
			t.Fatalf("user %s has no segments", dl.User)
		}
		first := dl.Segments[0]
		if first.At != "home" {
			t.Fatalf("day starts at %q, want home", first.At)
		}
	}
}

func TestVisitsMatchSegments(t *testing.T) {
	logs := smallSim(5).Run()
	for _, dl := range logs {
		for _, v := range dl.Visits {
			found := false
			for _, s := range dl.Segments {
				if s.At == v.Entity && s.Start.Equal(v.Arrive) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("visit %+v has no matching stay segment", v)
			}
			if !v.Depart.After(v.Arrive) {
				t.Fatalf("visit departs before arriving: %+v", v)
			}
		}
	}
}

func TestActivityRatesPlausible(t *testing.T) {
	const days = 28
	sim := smallSim(days)
	logs := sim.Run()
	perUserVisits := map[world.UserID]int{}
	totalCalls, totalPayments, totalReviews := 0, 0, 0
	for _, dl := range logs {
		perUserVisits[dl.User] += len(dl.Visits)
		totalCalls += len(dl.Calls)
		totalPayments += len(dl.Payments)
		totalReviews += len(dl.Reviews)
	}
	var sum float64
	for _, n := range perUserVisits {
		sum += float64(n)
	}
	mean := sum / float64(len(perUserVisits)) / days * 7 // visits per week
	// Personas average ~2.5 dinners/week plus lunches, haircuts, gym:
	// expect several visits per week but not dozens per day.
	if mean < 2 || mean > 25 {
		t.Fatalf("mean visits/week = %v, implausible", mean)
	}
	if totalCalls == 0 {
		t.Fatal("no phone calls generated")
	}
	if totalPayments == 0 {
		t.Fatal("no payments generated")
	}
	if totalReviews == 0 {
		t.Fatal("no reviews generated in 28 days; participation model broken")
	}
}

func TestReviewsComeFromVocalMinority(t *testing.T) {
	city := world.BuildCity(world.CityConfig{Seed: 3, NumUsers: 300})
	sim := New(city, Config{Seed: 9, Days: 45})
	logs := sim.Run()
	reviewers := map[world.UserID]bool{}
	interactors := map[world.UserID]bool{}
	for _, dl := range logs {
		if len(dl.Visits) > 0 {
			interactors[dl.User] = true
		}
		for range dl.Reviews {
			reviewers[dl.User] = true
		}
	}
	if len(interactors) < 250 {
		t.Fatalf("only %d users interacted", len(interactors))
	}
	frac := float64(len(reviewers)) / float64(len(interactors))
	// §2: the vast majority consume but do not post.
	if frac > 0.45 {
		t.Fatalf("%.0f%% of interacting users posted reviews; expected a minority", frac*100)
	}
}

func TestGroupVisitsShareGroupID(t *testing.T) {
	city := world.BuildCity(world.CityConfig{Seed: 3, NumUsers: 200})
	sim := New(city, Config{Seed: 2, Days: 21})
	logs := sim.Run()
	groups := map[string][]Visit{}
	for _, dl := range logs {
		for _, v := range dl.Visits {
			if v.GroupID != "" {
				groups[v.GroupID] = append(groups[v.GroupID], v)
			}
		}
	}
	if len(groups) == 0 {
		t.Fatal("no group visits in 21 days")
	}
	multi := 0
	for gid, vs := range groups {
		ent := vs[0].Entity
		size := vs[0].GroupSize
		for _, v := range vs {
			if v.Entity != ent {
				t.Fatalf("group %s spans entities %s and %s", gid, ent, v.Entity)
			}
			if v.GroupSize != size {
				t.Fatalf("group %s reports sizes %d and %d", gid, size, v.GroupSize)
			}
		}
		if len(vs) > size {
			t.Fatalf("group %s has %d visits but declared size %d", gid, len(vs), size)
		}
		if len(vs) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no group had more than one member log a visit")
	}
}

func TestDentistVisitsHaveBookingCalls(t *testing.T) {
	city := world.BuildCity(world.CityConfig{Seed: 4, NumUsers: 150})
	sim := New(city, Config{Seed: 6, Days: 90})
	logs := sim.Run()
	dentistVisits := 0
	bookingCallsByUser := map[world.UserID]map[string]bool{}
	for _, dl := range logs {
		for _, c := range dl.Calls {
			if c.Purpose == CallBooking {
				if bookingCallsByUser[dl.User] == nil {
					bookingCallsByUser[dl.User] = map[string]bool{}
				}
				bookingCallsByUser[dl.User][c.Entity] = true
			}
		}
	}
	withCall := 0
	for _, dl := range logs {
		for _, v := range dl.Visits {
			e := city.EntityByKey(v.Entity)
			if e == nil || e.Category != "dentist" {
				continue
			}
			dentistVisits++
			if bookingCallsByUser[dl.User][v.Entity] {
				withCall++
			}
		}
	}
	if dentistVisits == 0 {
		t.Skip("no dentist visits in horizon (rare but possible at this scale)")
	}
	// Appointments within the first 3 days have their booking call before
	// the horizon; the majority should have one.
	if float64(withCall)/float64(dentistVisits) < 0.5 {
		t.Fatalf("only %d of %d dentist visits had booking calls", withCall, dentistVisits)
	}
}

func TestComplaintCallsTargetBadProviders(t *testing.T) {
	city := world.BuildCity(world.CityConfig{Seed: 8, NumUsers: 400})
	sim := New(city, Config{Seed: 8, Days: 120})
	logs := sim.Run()
	complaints := 0
	for _, dl := range logs {
		u := city.UserByID(dl.User)
		for _, c := range dl.Calls {
			if c.Purpose != CallComplaint {
				continue
			}
			complaints++
			e := city.EntityByKey(c.Entity)
			if op := u.TrueOpinion(e); op >= 2.5 {
				t.Fatalf("complaint call to provider with opinion %v", op)
			}
		}
	}
	if complaints == 0 {
		t.Skip("no complaint calls generated at this scale/seed")
	}
}

func TestPositionAtInterpolates(t *testing.T) {
	start := time.Date(2016, 1, 4, 0, 0, 0, 0, time.UTC)
	home := geo.Point{Lat: 42.0, Lon: -83.0}
	work := geo.Offset(home, 0, 1000)
	segs := []Segment{
		{Start: start, End: start.Add(8 * time.Hour), From: home, To: home, At: "home"},
		{Start: start.Add(8 * time.Hour), End: start.Add(8*time.Hour + 10*time.Minute), From: home, To: work},
		{Start: start.Add(8*time.Hour + 10*time.Minute), End: start.Add(17 * time.Hour), From: work, To: work, At: "work"},
	}
	if got := PositionAt(segs, start.Add(time.Hour)); geo.Distance(got, home) > 1 {
		t.Fatalf("stationary position wrong: %v", got)
	}
	mid := PositionAt(segs, start.Add(8*time.Hour+5*time.Minute))
	dHome := geo.Distance(mid, home)
	if dHome < 400 || dHome > 600 {
		t.Fatalf("midpoint of travel is %v m from home, want ~500", dHome)
	}
	if got := PositionAt(segs, start.Add(20*time.Hour)); geo.Distance(got, work) > 1 {
		t.Fatalf("after last segment: %v", got)
	}
	if got := PositionAt(segs, start.Add(-time.Hour)); geo.Distance(got, home) > 1 {
		t.Fatalf("before first segment: %v", got)
	}
	if got := PositionAt(nil, start); got != (geo.Point{}) {
		t.Fatalf("empty segments: %v", got)
	}
}

func TestVisitFromPointIsPreviousStationarySpot(t *testing.T) {
	logs := smallSim(10).Run()
	city := smallCity()
	checked := 0
	for _, dl := range logs {
		u := city.UserByID(dl.User)
		if u == nil {
			t.Fatalf("unknown user %s", dl.User)
		}
		for _, v := range dl.Visits {
			// FromPoint must be a real place: home, work, or an entity.
			d1 := geo.Distance(v.FromPoint, u.Home)
			d2 := geo.Distance(v.FromPoint, u.Work)
			if d1 > 5 && d2 > 5 {
				// Could be a previous entity; verify some segment is
				// stationary there.
				ok := false
				for _, s := range dl.Segments {
					if s.Stationary() && geo.Distance(s.From, v.FromPoint) < 5 {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("visit FromPoint %v is nowhere the user stayed", v.FromPoint)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no visits checked")
	}
}

func TestCallsReferenceRealPhones(t *testing.T) {
	city := smallCity()
	sim := New(city, Config{Seed: 5, Days: 30})
	for _, dl := range sim.Run() {
		for _, c := range dl.Calls {
			e := city.PhoneBook[c.Phone]
			if e == nil {
				t.Fatalf("call to unknown phone %s", c.Phone)
			}
			if e.Key() != c.Entity {
				t.Fatalf("call entity mismatch: %s vs %s", e.Key(), c.Entity)
			}
			if c.Duration <= 0 {
				t.Fatalf("non-positive call duration %v", c.Duration)
			}
		}
	}
}

func TestRelocationSwitchesProviders(t *testing.T) {
	city := world.BuildCity(world.CityConfig{Seed: 9, NumUsers: 300})
	sim := New(city, Config{Seed: 9, Days: 150, MoveFraction: 0.5})
	moves := sim.Moves()
	if len(moves) < 100 {
		t.Fatalf("only %d movers at MoveFraction 0.5", len(moves))
	}
	logs := sim.Run()
	// For movers: home-anchored stays must relocate after the move day.
	byUser := map[world.UserID][]DayLog{}
	for _, dl := range logs {
		byUser[dl.User] = append(byUser[dl.User], dl)
	}
	checked := 0
	for uid, moveDay := range moves {
		if moveDay < 10 || moveDay > 140 {
			continue
		}
		days := byUser[uid]
		before := days[moveDay-1].Segments[0].From
		after := days[moveDay].Segments[0].From
		if d := geo.Distance(before, after); d < 1000 {
			t.Fatalf("user %s moved only %v m at relocation", uid, d)
		}
		checked++
		if checked >= 10 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no movers checked")
	}
}

func TestMoveFractionDisable(t *testing.T) {
	city := world.BuildCity(world.CityConfig{Seed: 9, NumUsers: 50})
	sim := New(city, Config{Seed: 9, Days: 30, MoveFraction: -1})
	if len(sim.Moves()) != 0 {
		t.Fatal("moves generated despite MoveFraction -1")
	}
}

func TestConfigDefaults(t *testing.T) {
	sim := New(smallCity(), Config{Seed: 1})
	if sim.Days() != 120 {
		t.Fatalf("default days = %d", sim.Days())
	}
	if sim.Start().IsZero() {
		t.Fatal("default start is zero")
	}
}
