// Package trace is the behavioural simulator: it animates the users of a
// world.City through simulated days, producing the raw material the rest
// of the pipeline consumes — movement timelines (for the sensing layer),
// phone calls and card payments (digital footprints, §1), ground-truth
// visits with group annotations (§4.1), and the explicit reviews that the
// minority of vocal users post (§2's participation gap).
//
// The simulator is the repository's stand-in for reality: experiments
// score inference against its ground truth, which no system component is
// allowed to observe.
package trace

import (
	"time"

	"opinions/internal/geo"
	"opinions/internal/world"
)

// Segment is one piece of a user's daily movement timeline: either a
// stationary stay (From == To) or a travel leg (linear motion From → To).
type Segment struct {
	Start, End time.Time
	From, To   geo.Point
	// At labels a stay: "home", "work", or the entity key being visited.
	// Empty for travel legs.
	At string
}

// Stationary reports whether the segment is a stay.
func (s Segment) Stationary() bool { return s.At != "" }

// Visit is a ground-truth physical visit to an entity.
type Visit struct {
	User   world.UserID
	Entity string // entity key
	Arrive time.Time
	Depart time.Time
	// FromPoint is the stationary spot the user travelled from; the
	// distance from it to the entity is the §4.1 "effort" ground truth.
	FromPoint geo.Point
	// GroupID is non-empty when the visit is part of a group outing;
	// all members share the same GroupID (§4.1 group accounting).
	GroupID   string
	GroupSize int
}

// Call is a ground-truth phone call from a user to an entity's number.
type Call struct {
	User     world.UserID
	Phone    string
	Entity   string // entity key owning the phone
	Time     time.Time
	Duration time.Duration
	// Purpose records why the simulator generated the call; experiments
	// use it to reason about confounds (e.g. complaint calls to a bad
	// plumber, §4.1's "laziness or compulsion" discussion).
	Purpose CallPurpose
}

// CallPurpose is the simulator's reason for a call.
type CallPurpose int

// Call purposes.
const (
	CallBooking CallPurpose = iota
	CallFollowUp
	CallComplaint
)

// Payment is a ground-truth card payment at an entity.
type Payment struct {
	User   world.UserID
	Entity string // entity key
	Time   time.Time
	Amount float64
}

// Review is an explicit review a user chose to post — the minority signal
// existing RSPs rely on.
type Review struct {
	User   world.UserID
	Entity string // entity key
	Time   time.Time
	Rating float64
}

// DayLog is everything one user did on one date.
type DayLog struct {
	User     world.UserID
	Date     time.Time // midnight local
	Segments []Segment
	Visits   []Visit
	Calls    []Call
	Payments []Payment
	Reviews  []Review
}

// PositionAt returns the user's position at time t according to the
// day's timeline, interpolating linearly along travel legs. Times before
// the first segment return the first segment's start point; times after
// the last return the last segment's end point.
func PositionAt(segs []Segment, t time.Time) geo.Point {
	if len(segs) == 0 {
		return geo.Point{}
	}
	if t.Before(segs[0].Start) {
		return segs[0].From
	}
	for _, s := range segs {
		if t.After(s.End) {
			continue
		}
		if s.Stationary() || s.End.Equal(s.Start) {
			return s.From
		}
		frac := float64(t.Sub(s.Start)) / float64(s.End.Sub(s.Start))
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return geo.Point{
			Lat: s.From.Lat + (s.To.Lat-s.From.Lat)*frac,
			Lon: s.From.Lon + (s.To.Lon-s.From.Lon)*frac,
		}
	}
	last := segs[len(segs)-1]
	return last.To
}
