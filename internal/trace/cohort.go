package trace

import (
	"time"

	"opinions/internal/world"
)

// Cohort steps K users of the population through simulated days while
// holding only those K users' derived state — the unit of multiplexing
// that lets one host animate a million-user city in bounded memory.
// Construct with Simulator.Cohort or Simulator.CohortRange.
//
// Memory is O(K × horizon-events); it never depends on the city's total
// population. The logs a cohort produces for its members are
// byte-identical to the logs SimulateDate would produce for the same
// users, in any cohort composition or order — the determinism contract
// the property tests pin.
type Cohort struct {
	sim    *Simulator
	states []*userState
}

// Cohort builds a cohort over the given user indexes. Out-of-range
// indexes are skipped. State for each member (persona, relocation,
// calendar) is derived once up front and reused across days.
func (s *Simulator) Cohort(indexes []int) *Cohort {
	c := &Cohort{sim: s, states: make([]*userState, 0, len(indexes))}
	for _, i := range indexes {
		if st := s.stateOf(i); st != nil {
			c.states = append(c.states, st)
		}
	}
	return c
}

// CohortRange builds a cohort over indexes [start, start+k), clamped to
// the population.
func (s *Simulator) CohortRange(start, k int) *Cohort {
	idx := make([]int, 0, k)
	for i := start; i < start+k; i++ {
		idx = append(idx, i)
	}
	return s.Cohort(idx)
}

// Size returns the number of members.
func (c *Cohort) Size() int { return len(c.states) }

// Users returns the members in cohort order.
func (c *Cohort) Users() []*world.User {
	out := make([]*world.User, len(c.states))
	for i, st := range c.states {
		out[i] = st.user
	}
	return out
}

// Day simulates day index d for every member and returns the logs in
// cohort order. Group plans are derived per social block as members hit
// them, so a cohort that happens to contain a whole block derives its
// plan once.
func (c *Cohort) Day(d int) []DayLog {
	date := c.sim.cfg.Start.AddDate(0, 0, d)
	logs := make([]DayLog, 0, len(c.states))
	// Cache the block plans touched this day: cohorts are usually
	// contiguous index ranges, so members share blocks.
	plans := make(map[int]*groupPlan, (len(c.states)+circleUsers-1)/circleUsers)
	for _, st := range c.states {
		blockStart, blockEnd := world.CircleBlock(st.idx, c.sim.City.NumUsers())
		gp, ok := plans[blockStart]
		if !ok {
			gp = c.sim.planBlock(d, date, blockStart, blockEnd)
			plans[blockStart] = gp
		}
		plan := gp
		if plan != nil && !plan.members[st.user.ID] {
			plan = nil
		}
		logs = append(logs, c.sim.simulateUserDay(st, d, date, plan))
	}
	return logs
}

// Run simulates the whole horizon for the cohort, invoking fn after
// each day with that day's logs. It returns early if fn returns false.
func (c *Cohort) Run(fn func(day int, date time.Time, logs []DayLog) bool) {
	for d := 0; d < c.sim.cfg.Days; d++ {
		if !fn(d, c.sim.cfg.Start.AddDate(0, 0, d), c.Day(d)) {
			return
		}
	}
}

// circleUsers mirrors world's social block width for sizing the per-day
// plan cache.
const circleUsers = 4
