package experiments

import (
	"fmt"
	"io"
	"sort"

	"opinions/internal/aggregate"
)

// Fig3Result reproduces Figure 3's comparative visualizations for three
// dentists: (a) histograms of visits per user, (b) average distance
// travelled versus number of visits.
//
// The paper's figure is illustrative — dentist A has few repeat
// patients; for dentist B distance correlates with visits, for C it does
// not. We select the three dentists from the deployment's anonymous
// histories by exactly those criteria, demonstrating that the RSP can
// construct the visualization from the data it actually holds.
type Fig3Result struct {
	Dentists []DentistViz
}

// DentistViz is one dentist's visualization payload.
type DentistViz struct {
	Role   string // "A", "B", or "C"
	Entity string
	Agg    *aggregate.EntityAggregate
	// DistanceVisitCorr is Figure 3(b)'s signal; NaN-free: ok=false is
	// rendered as "n/a".
	DistanceVisitCorr float64
	CorrOK            bool
}

// RunFig3 selects dentists A, B, C from a deployment and builds their
// visualizations.
func RunFig3(d *Deployment) (*Fig3Result, error) {
	_, _, hists := d.Server.Stores()
	type cand struct {
		entity string
		agg    *aggregate.EntityAggregate
		corr   float64
		corrOK bool
		users  int
	}
	var cands []cand
	for _, key := range hists.Entities() {
		ent := d.Server.Engine().Entity(key)
		if ent == nil || ent.Category != "dentist" {
			continue
		}
		hs := hists.ByEntity(key)
		agg := aggregate.Build(key, hs)
		if agg.Users < 3 {
			continue
		}
		corr, ok := aggregate.DistanceVisitCorrelation(hs)
		cands = append(cands, cand{entity: key, agg: agg, corr: corr, corrOK: ok, users: agg.Users})
	}
	if len(cands) < 3 {
		return nil, fmt.Errorf("experiments: only %d dentists with ≥3 patients; run a larger deployment", len(cands))
	}
	// A: fewest repeat patients.
	sort.Slice(cands, func(i, j int) bool { return cands[i].agg.RepeatFraction < cands[j].agg.RepeatFraction })
	a := cands[0]
	rest := cands[1:]
	// B: highest distance-visit correlation among the rest; C: lowest.
	sort.Slice(rest, func(i, j int) bool {
		ci, cj := rest[i].corr, rest[j].corr
		if !rest[i].corrOK {
			ci = -2
		}
		if !rest[j].corrOK {
			cj = -2
		}
		return ci > cj
	})
	b := rest[0]
	c := rest[len(rest)-1]
	res := &Fig3Result{}
	for _, sel := range []struct {
		role string
		c    cand
	}{{"A", a}, {"B", b}, {"C", c}} {
		res.Dentists = append(res.Dentists, DentistViz{
			Role: sel.role, Entity: sel.c.entity, Agg: sel.c.agg,
			DistanceVisitCorr: sel.c.corr, CorrOK: sel.c.corrOK,
		})
	}
	return res, nil
}

// Render prints both panels.
func (r *Fig3Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 3(a): histogram of visits per user (dentists A, B, C)")
	fmt.Fprintf(w, "%-4s %-28s %8s %-s\n", "role", "dentist", "users", "visits→users")
	for _, dv := range r.Dentists {
		var keys []int
		for k := range dv.Agg.VisitsPerUser {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		fmt.Fprintf(w, "%-4s %-28s %8d ", dv.Role, dv.Entity, dv.Agg.Users)
		for _, k := range keys {
			fmt.Fprintf(w, "%d:%d ", k, dv.Agg.VisitsPerUser[k])
		}
		fmt.Fprintf(w, "(repeat frac %.2f)\n", dv.Agg.RepeatFraction)
	}
	fmt.Fprintln(w, "Figure 3(b): avg distance travelled vs number of visits")
	fmt.Fprintf(w, "%-4s %-28s %-s\n", "role", "dentist", "visits→mean km (corr)")
	for _, dv := range r.Dentists {
		var keys []int
		for k := range dv.Agg.MeanDistanceKmByVisits {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		fmt.Fprintf(w, "%-4s %-28s ", dv.Role, dv.Entity)
		for _, k := range keys {
			fmt.Fprintf(w, "%d:%.1f ", k, dv.Agg.MeanDistanceKmByVisits[k])
		}
		if dv.CorrOK {
			fmt.Fprintf(w, "(corr %.2f)\n", dv.DistanceVisitCorr)
		} else {
			fmt.Fprintln(w, "(corr n/a)")
		}
	}
}
