package experiments

import (
	"opinions/internal/search"
	"opinions/internal/world"
)

// searchQueryAllRestaurants is the behavioural city's single-zip
// restaurant query.
func searchQueryAllRestaurants() search.Query {
	return search.Query{Service: world.Yelp, Zip: "48104", Category: "restaurant"}
}
