package experiments

import (
	"fmt"
	"io"
	"time"

	"opinions/internal/stats"
)

// E9Result quantifies the §4.2 retention trade-off. The paper prescribes
// keeping only "a recent snapshot" on the device so theft leaks little —
// but the snapshot is also the evidence the predictor sees, so shorter
// retention starves inference of the slow-cadence categories (a dentist
// seen twice a year never accumulates three records in a 7-day window).
//
// E9 runs the same deployment under several retention windows and
// reports, per window: inferred opinions produced, inference accuracy,
// and the theft exposure (records a stolen device reveals).
type E9Result struct {
	Rows []E9Row
}

// E9Row is one retention setting.
type E9Row struct {
	Retention time.Duration
	// InferredOpinions reaching the server.
	InferredOpinions int
	// MAE vs ground truth over the rated pairs (0 when nothing rated).
	MAE float64
	// TheftExposure is the mean number of records a stolen device
	// exposes at the end of the horizon.
	TheftExposure float64
}

// E9Config scales the retention sweep.
type E9Config struct {
	Seed       int64
	Users      int
	Days       int
	Retentions []time.Duration
}

// DefaultE9Config sweeps one week, one month, one quarter.
func DefaultE9Config() E9Config {
	return E9Config{
		Seed: 31, Users: 80, Days: 60,
		Retentions: []time.Duration{7 * 24 * time.Hour, 30 * 24 * time.Hour, 90 * 24 * time.Hour},
	}
}

// RunE9 runs one deployment per retention window.
func RunE9(cfg E9Config) (*E9Result, error) {
	if cfg.Users <= 0 {
		cfg = DefaultE9Config()
	}
	res := &E9Result{}
	for _, retention := range cfg.Retentions {
		d, err := RunDeployment(DeployConfig{
			Seed: cfg.Seed, Users: cfg.Users, Days: cfg.Days,
			KeyBits: 512, Retention: retention,
		})
		if err != nil {
			return nil, err
		}
		_, ops, _ := d.Server.Stores()
		row := E9Row{Retention: retention, InferredOpinions: ops.Total()}

		// Accuracy over whatever was rated.
		var pred, truth []float64
		var exposure float64
		for uid, agent := range d.Agents {
			user := d.City.UserByID(uid)
			exposure += float64(agent.SnapshotLen())
			for key, rating := range agent.InferredOpinions() {
				if ent := d.City.EntityByKey(key); ent != nil {
					pred = append(pred, rating)
					truth = append(truth, user.TrueOpinion(ent))
				}
			}
		}
		if len(pred) > 0 {
			row.MAE, _ = stats.MAE(pred, truth)
		}
		row.TheftExposure = exposure / float64(len(d.Agents))
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the trade-off table.
func (r *E9Result) Render(w io.Writer) {
	fmt.Fprintln(w, "E9: on-device retention — theft exposure vs inference coverage (§4.2)")
	fmt.Fprintf(w, "%-12s %18s %8s %26s\n", "retention", "inferred opinions", "MAE", "records on stolen device")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s %18d %8.2f %26.1f\n",
			fmt.Sprintf("%dd", int(row.Retention.Hours()/24)), row.InferredOpinions, row.MAE, row.TheftExposure)
	}
	fmt.Fprintln(w, "the §4.2 design point (30d) keeps theft exposure bounded while losing")
	fmt.Fprintln(w, "little coverage; the server-side anonymous histories carry the long term.")
}
