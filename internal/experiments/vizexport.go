package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"opinions/internal/viz"
)

// VizSeries converts Figure 1(a)'s CDFs to plottable series.
func (r *Fig1aResult) VizSeries() []viz.Series { return cdfToViz(r.Series) }

// VizSeries converts Figure 1(b)'s CDFs to plottable series.
func (r *Fig1bResult) VizSeries() []viz.Series { return cdfToViz(r.Series) }

func cdfToViz(in []CDFSeries) []viz.Series {
	out := make([]viz.Series, len(in))
	for i, s := range in {
		vs := viz.Series{Label: s.Label}
		for _, p := range s.Points {
			vs.X = append(vs.X, p.Value)
			vs.Y = append(vs.Y, p.Fraction)
		}
		out[i] = vs
	}
	return out
}

// PlotFig1a renders Figure 1(a) as a terminal plot.
func PlotFig1a(r *Fig1aResult, w io.Writer) {
	p := &viz.Plot{
		Title: "Figure 1(a): CDF of reviews per entity", XLabel: "reviews",
		LogX: true, Series: r.VizSeries(),
	}
	p.Render(w)
}

// PlotFig1b renders Figure 1(b) as a terminal plot.
func PlotFig1b(r *Fig1bResult, w io.Writer) {
	p := &viz.Plot{
		Title: "Figure 1(b): CDF of per-query results with ≥50 reviews", XLabel: "results ≥50 reviews",
		LogX: true, Series: r.VizSeries(),
	}
	p.Render(w)
}

// PlotE5 renders E5's energy comparison as bars.
func PlotE5(r *E5Result, w io.Writer) {
	labels := make([]string, len(r.Rows))
	values := make([]float64, len(r.Rows))
	for i, row := range r.Rows {
		labels[i] = fmt.Sprintf("%s (recall %.2f)", row.Policy, row.Recall)
		values[i] = row.EnergyPerDayMAH
	}
	viz.Bars(w, "E5: battery cost per day by sensing policy", labels, values, "mAh")
}

// ExportCSV writes each figure's raw series to <dir>/<name>.csv for
// external plotting tools.
func ExportCSV(dir string, name string, series []viz.Series) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: creating %s: %w", dir, err)
	}
	path := filepath.Join(dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiments: creating %s: %w", path, err)
	}
	defer f.Close()
	if err := viz.WriteCSV(f, series); err != nil {
		return err
	}
	return f.Close()
}
