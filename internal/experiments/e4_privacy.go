package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"opinions/internal/anonymity"
	"opinions/internal/stats"
)

// E4Result evaluates the §4.2 upload discipline: how well a timing
// adversary can re-link a user's per-entity anonymous channels as the
// mixing window grows. Window 0 models naive real-time upload; the
// paper's prescription is asynchronous upload, which should drive the
// adversary to chance.
type E4Result struct {
	Users           int
	ChannelsPerUser int
	Rows            []E4Row
}

// E4Row is one mixing-window setting.
type E4Row struct {
	Window   time.Duration
	Accuracy float64
}

// E4Config scales the privacy experiment.
type E4Config struct {
	Seed            int64
	Users           int
	ChannelsPerUser int
	Events          int // correlated upload events per user
	Windows         []time.Duration
}

// DefaultE4Config matches the deployment's daily-activity shape.
func DefaultE4Config() E4Config {
	return E4Config{
		Seed: 7, Users: 40, ChannelsPerUser: 3, Events: 12,
		Windows: []time.Duration{0, 30 * time.Minute, 2 * time.Hour, 6 * time.Hour, 24 * time.Hour},
	}
}

// RunE4 simulates correlated per-user upload workloads through mixes of
// varying windows and scores the linkage adversary.
func RunE4(cfg E4Config) *E4Result {
	if cfg.Users <= 0 {
		cfg = DefaultE4Config()
	}
	res := &E4Result{Users: cfg.Users, ChannelsPerUser: cfg.ChannelsPerUser}
	base := time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC)
	for _, window := range cfg.Windows {
		rng := stats.NewRNG(cfg.Seed)
		var traces []anonymity.ChannelTrace
		var owners []string
		for u := 0; u < cfg.Users; u++ {
			owner := fmt.Sprintf("u%d", u)
			// Worst case for the user: the device generates uploads for
			// all its channels at the same instants (e.g. each evening's
			// activity). The mix smears each by an independent uniform
			// delay in [0, window] — exactly anonymity.Mix's semantics.
			for ch := 0; ch < cfg.ChannelsPerUser; ch++ {
				ts := make([]time.Time, 0, cfg.Events)
				for ev := 0; ev < cfg.Events; ev++ {
					at := base.Add(time.Duration(u)*13*time.Minute + time.Duration(ev)*24*time.Hour)
					ts = append(ts, at.Add(windowDelay(window, rng)))
				}
				sort.Slice(ts, func(i, j int) bool { return ts[i].Before(ts[j]) })
				traces = append(traces, anonymity.ChannelTrace{
					AnonID: fmt.Sprintf("u%d-c%d", u, ch), Arrivals: ts,
				})
				owners = append(owners, owner)
			}
		}
		adv := anonymity.Adversary{Epsilon: 2 * time.Minute}
		acc := anonymity.Accuracy(adv.LinkAll(traces), owners)
		res.Rows = append(res.Rows, E4Row{Window: window, Accuracy: acc})
	}
	return res
}

func windowDelay(window time.Duration, rng *stats.RNG) time.Duration {
	if window <= 0 {
		return time.Duration(rng.Intn(20)) * time.Second
	}
	return time.Duration(rng.Float64() * float64(window))
}

// Render prints adversary accuracy per window.
func (r *E4Result) Render(w io.Writer) {
	fmt.Fprintln(w, "E4: channel linkage by a timing adversary vs upload mixing window")
	fmt.Fprintf(w, "users: %d, anonymous channels per user: %d\n", r.Users, r.ChannelsPerUser)
	fmt.Fprintf(w, "%-14s %10s\n", "mix window", "link acc")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14s %10.2f\n", row.Window, row.Accuracy)
	}
	fmt.Fprintln(w, "paper expectation: real-time upload (window 0) is linkable;")
	fmt.Fprintln(w, "asynchronous upload drives the adversary toward chance (§4.2).")
}
