package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"opinions/internal/world"
)

var (
	deployOnce sync.Once
	sharedDep  *Deployment
	deployErr  error

	crawlOnce  sync.Once
	sharedUniv *CrawlUniverse
	crawlErr   error
)

// testDeployment is shared across tests; building it exercises the full
// client-server pipeline once (~5s) instead of per test.
func testDeployment(t *testing.T) *Deployment {
	t.Helper()
	deployOnce.Do(func() {
		sharedDep, deployErr = RunDeployment(DeployConfig{Seed: 5, Users: 100, Days: 60, KeyBits: 512})
	})
	if deployErr != nil {
		t.Fatal(deployErr)
	}
	return sharedDep
}

func testUniverse(t *testing.T) *CrawlUniverse {
	t.Helper()
	crawlOnce.Do(func() {
		sharedUniv, crawlErr = BuildCrawlUniverse(world.TestDirectoryConfig())
	})
	if crawlErr != nil {
		t.Fatal(crawlErr)
	}
	return sharedUniv
}

func TestTable1Structure(t *testing.T) {
	u := testUniverse(t)
	res := RunTable1(u)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Entities == 0 {
			t.Fatalf("service %s crawled 0 entities", row.Service)
		}
	}
	// Category counts are scale-invariant and must match the paper.
	byService := map[string]Table1Row{}
	for _, row := range res.Rows {
		byService[row.Service] = row
	}
	if byService["yelp"].Categories != 9 || byService["angieslist"].Categories != 24 || byService["healthgrades"].Categories != 4 {
		t.Fatalf("category counts wrong: %+v", byService)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Table 1") {
		t.Fatal("render missing title")
	}
}

func TestFig1aMediansOrdering(t *testing.T) {
	u := testUniverse(t)
	res := RunFig1a(u)
	med := map[string]float64{}
	for _, s := range res.Series {
		med[s.Label] = s.Median
		if len(s.Points) == 0 {
			t.Fatalf("series %s empty", s.Label)
		}
		if s.Points[len(s.Points)-1].Fraction != 1 {
			t.Fatalf("series %s CDF does not reach 1", s.Label)
		}
	}
	// Review-count distributions are scale-invariant: medians must
	// match the paper's ordering and approximate values.
	if !(med["yelp"] > med["angieslist"] && med["angieslist"] > med["healthgrades"]) {
		t.Fatalf("median ordering wrong: %v", med)
	}
	if med["yelp"] < 15 || med["yelp"] > 40 {
		t.Fatalf("yelp median = %v, want ≈25", med["yelp"])
	}
	if med["healthgrades"] < 3 || med["healthgrades"] > 8 {
		t.Fatalf("healthgrades median = %v, want ≈5", med["healthgrades"])
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 1(a)") {
		t.Fatal("render missing title")
	}
}

func TestFig1bOrdering(t *testing.T) {
	u := testUniverse(t)
	res := RunFig1b(u)
	med := map[string]float64{}
	for _, s := range res.Series {
		med[s.Label] = s.Median
	}
	// At test scale (0.5×) absolute medians halve, but the ordering
	// yelp > angieslist ≥ healthgrades is scale-invariant.
	if !(med["yelp"] > med["angieslist"]) {
		t.Fatalf("yelp (%v) not above angieslist (%v)", med["yelp"], med["angieslist"])
	}
	if med["healthgrades"] > med["yelp"] {
		t.Fatalf("healthgrades (%v) above yelp (%v)", med["healthgrades"], med["yelp"])
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 1(b)") {
		t.Fatal("render missing title")
	}
}

func TestFig1cGap(t *testing.T) {
	u := testUniverse(t)
	res := RunFig1c(u)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.MedianRatio < 10 {
			t.Fatalf("%s ratio = %v, want ≥10 (order of magnitude)", row.Service, row.MedianRatio)
		}
		if row.MedianInteractions <= row.MedianFeedback {
			t.Fatalf("%s interactions not above feedback", row.Service)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 1(c)") {
		t.Fatal("render missing title")
	}
}

func TestFig3SelectsThreeDentists(t *testing.T) {
	d := testDeployment(t)
	res, err := RunFig3(d)
	if err != nil {
		t.Skipf("fig3 needs more dentist traffic at this scale: %v", err)
	}
	if len(res.Dentists) != 3 {
		t.Fatalf("dentists = %d", len(res.Dentists))
	}
	roles := map[string]DentistViz{}
	for _, dv := range res.Dentists {
		roles[dv.Role] = dv
		if len(dv.Agg.VisitsPerUser) == 0 {
			t.Fatalf("dentist %s has empty histogram", dv.Role)
		}
	}
	// A has the fewest repeat patients by construction.
	if roles["A"].Agg.RepeatFraction > roles["B"].Agg.RepeatFraction+1e-9 &&
		roles["A"].Agg.RepeatFraction > roles["C"].Agg.RepeatFraction+1e-9 {
		t.Fatalf("dentist A repeat fraction %v not minimal", roles["A"].Agg.RepeatFraction)
	}
	// B's distance-visit correlation ≥ C's (Figure 3b's contrast).
	if roles["B"].CorrOK && roles["C"].CorrOK && roles["B"].DistanceVisitCorr < roles["C"].DistanceVisitCorr {
		t.Fatalf("corr B %v < corr C %v", roles["B"].DistanceVisitCorr, roles["C"].DistanceVisitCorr)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 3(a)") || !strings.Contains(buf.String(), "Figure 3(b)") {
		t.Fatal("render missing panels")
	}
}

func TestE1CoverageMultiplier(t *testing.T) {
	d := testDeployment(t)
	res := RunE1(d)
	if res.Entities == 0 {
		t.Fatal("no entities with activity")
	}
	if res.PooledMean <= res.ExplicitMean {
		t.Fatalf("pooled mean %v not above explicit %v", res.PooledMean, res.ExplicitMean)
	}
	if res.Multiplier < 2 {
		t.Fatalf("coverage multiplier = %v, want ≥2 (paper: dramatic increase)", res.Multiplier)
	}
	if res.PooledFracWith5Plus < res.FracWith5Plus {
		t.Fatal("pooling reduced the fraction of well-covered entities")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "E1") {
		t.Fatal("render missing title")
	}
}

func TestE2TrainedBeatsNaive(t *testing.T) {
	d := testDeployment(t)
	res, err := RunE2(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs < 20 {
		t.Fatalf("only %d rated pairs", res.Pairs)
	}
	if res.TrainedMAE >= res.NaiveMAE {
		t.Fatalf("trained MAE %v not below naive %v", res.TrainedMAE, res.NaiveMAE)
	}
	if res.TrainedMAE > 1.2 {
		t.Fatalf("trained MAE = %v stars, too inaccurate", res.TrainedMAE)
	}
	if res.RecommendAccuracy < 0.6 {
		t.Fatalf("recommend accuracy = %v", res.RecommendAccuracy)
	}
	if res.AbstainRate < 0 || res.AbstainRate > 1 {
		t.Fatalf("abstain rate = %v", res.AbstainRate)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "E2") {
		t.Fatal("render missing title")
	}
}

func TestE3DetectionAndCost(t *testing.T) {
	d := testDeployment(t)
	res := RunE3(d, []int{3, 6})
	if res.HonestHistories == 0 {
		t.Fatal("no honest histories")
	}
	if res.FalsePositiveRate > 0.10 {
		t.Fatalf("false positive rate = %v", res.FalsePositiveRate)
	}
	byAttack := map[string][]E3Row{}
	for _, row := range res.Rows {
		byAttack[row.Attack] = append(byAttack[row.Attack], row)
	}
	for _, rows := range byAttack["call-spam"] {
		if rows.Recall < 0.8 {
			t.Fatalf("call-spam recall = %v", rows.Recall)
		}
	}
	for _, rows := range byAttack["employee"] {
		if rows.Recall < 0.8 {
			t.Fatalf("employee recall = %v", rows.Recall)
		}
	}
	// Mimic survivors (if any) must be expensive.
	for _, rows := range byAttack["mimic"] {
		if !rows.AllCaught && rows.CostPerSurvivorHours < 3 {
			t.Fatalf("mimic cost per survivor = %v hours", rows.CostPerSurvivorHours)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "E3") {
		t.Fatal("render missing title")
	}
}

func TestE4MixingDefeatsLinkage(t *testing.T) {
	res := RunE4(DefaultE4Config())
	if len(res.Rows) < 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	first := res.Rows[0]
	last := res.Rows[len(res.Rows)-1]
	if first.Window != 0 {
		t.Fatalf("first window = %v", first.Window)
	}
	if first.Accuracy < 0.8 {
		t.Fatalf("unmixed linkage accuracy = %v, want high", first.Accuracy)
	}
	if last.Accuracy > 0.35 {
		t.Fatalf("24h-mixed linkage accuracy = %v, want near chance", last.Accuracy)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "E4") {
		t.Fatal("render missing title")
	}
}

func TestE5EnergyRecallTradeoff(t *testing.T) {
	res := RunE5(E5Config{Seed: 3, Users: 20, Days: 10})
	byPolicy := map[string]E5Row{}
	for _, row := range res.Rows {
		byPolicy[row.Policy] = row
	}
	always := byPolicy["gps-always"]
	duty := byPolicy["duty-cycled-gps"]
	wifi := byPolicy["wifi-assisted"]
	if !(always.EnergyPerDayMAH > duty.EnergyPerDayMAH && duty.EnergyPerDayMAH > wifi.EnergyPerDayMAH) {
		t.Fatalf("energy ordering wrong: always=%v duty=%v wifi=%v",
			always.EnergyPerDayMAH, duty.EnergyPerDayMAH, wifi.EnergyPerDayMAH)
	}
	for name, row := range byPolicy {
		if row.Recall < 0.5 {
			t.Fatalf("%s recall = %v", name, row.Recall)
		}
	}
	// Duty cycling must retain most of always-on's recall.
	if duty.Recall < always.Recall-0.25 {
		t.Fatalf("duty recall %v far below always-on %v", duty.Recall, always.Recall)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "E5") {
		t.Fatal("render missing title")
	}
}

func TestE6DedupReducesInflation(t *testing.T) {
	d := testDeployment(t)
	res := RunE6(d)
	if res.RestaurantsMeasured == 0 || res.RawInteractions == 0 {
		t.Fatal("no restaurant data")
	}
	if res.EffectiveInteractions >= float64(res.RawInteractions) {
		t.Fatalf("dedup did not reduce: eff=%v raw=%d", res.EffectiveInteractions, res.RawInteractions)
	}
	if res.TrueParties == 0 {
		t.Fatal("no ground-truth parties")
	}
	// Deduped inflation must be closer to 1 than raw.
	if absf(res.InflationDeduped-1) > absf(res.InflationRaw-1) {
		t.Fatalf("dedup made inflation worse: raw=%v deduped=%v", res.InflationRaw, res.InflationDeduped)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "E6") {
		t.Fatal("render missing title")
	}
}

func TestE7CFCollapsesOnSparseCategories(t *testing.T) {
	d := testDeployment(t)
	res := RunE7(d)
	byCat := map[string]E7Row{}
	for _, row := range res.Rows {
		byCat[row.Category] = row
	}
	// Sparse, high-stakes categories: CF must essentially collapse
	// while the search interface still carries evidence.
	for _, cat := range []string{"dentist", "plumber", "electrician"} {
		row, ok := byCat[cat]
		if !ok {
			t.Fatalf("category %s missing", cat)
		}
		if row.CFUserCoverage > 0.25 {
			t.Errorf("%s: CF coverage = %v, expected collapse (§3.1)", cat, row.CFUserCoverage)
		}
		if row.SearchEntityCoverage <= row.CFUserCoverage {
			t.Errorf("%s: search coverage %v not above CF %v", cat, row.SearchEntityCoverage, row.CFUserCoverage)
		}
	}
	// The dense restaurant category should favor search too but CF is
	// at least able to function there.
	if byCat["restaurant"].SearchEntityCoverage < 0.5 {
		t.Errorf("restaurant search coverage = %v", byCat["restaurant"].SearchEntityCoverage)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "E7") {
		t.Fatal("render missing title")
	}
}

func TestE8RemindersCannotMatchImplicit(t *testing.T) {
	res, err := RunE8(DefaultE8Config())
	if err != nil {
		t.Fatal(err)
	}
	if res.Entities == 0 {
		t.Fatal("no active entities")
	}
	// Reminders help over pure explicit...
	if res.RemindersMean < res.ExplicitMean {
		t.Fatalf("reminders mean %v below explicit %v", res.RemindersMean, res.ExplicitMean)
	}
	// ...but implicit inference must beat even a 3× reminder campaign.
	if res.ImplicitMean <= res.RemindersMean {
		t.Fatalf("implicit mean %v not above reminders %v (§3's argument)", res.ImplicitMean, res.RemindersMean)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "E8") {
		t.Fatal("render missing title")
	}
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestDeploymentInvariants(t *testing.T) {
	d := testDeployment(t)
	rev, ops, hists := d.Server.Stores()
	if rev.TotalReviews() == 0 {
		t.Fatal("no explicit reviews")
	}
	if !d.ModelTrained {
		t.Fatal("model never trained")
	}
	if ops.Total() == 0 {
		t.Fatal("no inferred opinions")
	}
	st := hists.Stats()
	if st.Histories == 0 || st.Records == 0 {
		t.Fatalf("history store empty: %+v", st)
	}
	// The anonymity invariant: there must be far more anonymous
	// histories than users, because each (user, entity) pair is its own
	// unlinkable history.
	if st.Histories <= len(d.City.Users) {
		t.Fatalf("only %d histories for %d users; channels not per-entity", st.Histories, len(d.City.Users))
	}
}

func TestDeploymentSearchIntegration(t *testing.T) {
	d := testDeployment(t)
	results := d.Server.Engine().Search(searchQueryAllRestaurants())
	if len(results) == 0 {
		t.Fatal("no restaurants in search")
	}
	withInferred := 0
	for _, r := range results {
		if r.InferredCount > 0 {
			withInferred++
		}
	}
	if withInferred == 0 {
		t.Fatal("no search result carries inferred opinions")
	}
}

func TestDeploymentTimeBudget(t *testing.T) {
	// Guard against the shared deployment becoming pathologically slow.
	start := time.Now()
	_ = testDeployment(t)
	if elapsed := time.Since(start); elapsed > 2*time.Minute {
		t.Fatalf("deployment took %v", elapsed)
	}
}

func TestAnecdotes(t *testing.T) {
	u := testUniverse(t)
	lines := Anecdotes(u)
	if len(lines) != 2 {
		t.Fatalf("anecdotes = %d, want 2", len(lines))
	}
	if !strings.Contains(lines[0], "Chinese restaurants") || !strings.Contains(lines[1], "dentists") {
		t.Fatalf("anecdotes = %v", lines)
	}
	var buf bytes.Buffer
	RenderAnecdotes(u, &buf)
	if !strings.Contains(buf.String(), "zipcode") {
		t.Fatal("render missing content")
	}
}

func TestE9RetentionTradeoff(t *testing.T) {
	res, err := RunE9(E9Config{
		Seed: 31, Users: 60, Days: 45,
		Retentions: []time.Duration{7 * 24 * time.Hour, 30 * 24 * time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	short, long := res.Rows[0], res.Rows[1]
	// Longer retention exposes more on theft...
	if long.TheftExposure <= short.TheftExposure {
		t.Fatalf("exposure: 30d %v not above 7d %v", long.TheftExposure, short.TheftExposure)
	}
	// ...and produces at least as many inferred opinions.
	if long.InferredOpinions < short.InferredOpinions {
		t.Fatalf("coverage: 30d %d below 7d %d", long.InferredOpinions, short.InferredOpinions)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "E9") {
		t.Fatal("render missing title")
	}
}
