package experiments

import (
	"fmt"
	"io"

	"opinions/internal/stats"
)

// E8Result tests §3's rejected alternative: instead of implicit
// inference, remind/incentivize users to post more reviews. The paper
// argues this cannot close the gap — the services already "hav[e] gone
// to great lengths to entice users" — and that reminders for
// physical-world entities themselves require activity tracking.
//
// Three worlds over identical cities and lives:
//
//	explicit-only      — today's RSP;
//	reminders          — review propensity boosted Boost×;
//	implicit inference — the paper's proposal.
type E8Result struct {
	Boost    float64
	Entities int
	// Opinions-per-entity means under each world.
	ExplicitMean  float64
	RemindersMean float64
	ImplicitMean  float64
	// Fraction of active entities with ≥5 opinions under each world.
	ExplicitFrac5  float64
	RemindersFrac5 float64
	ImplicitFrac5  float64
}

// E8Config scales the incentives experiment.
type E8Config struct {
	Seed  int64
	Users int
	Days  int
	// Boost is the reminder campaign's propensity multiplier (default 3:
	// an aggressive campaign tripling review rates).
	Boost float64
}

// DefaultE8Config keeps the three-deployment sweep affordable.
func DefaultE8Config() E8Config { return E8Config{Seed: 21, Users: 80, Days: 45, Boost: 3} }

// RunE8 runs the three worlds and compares coverage.
func RunE8(cfg E8Config) (*E8Result, error) {
	if cfg.Users <= 0 {
		cfg = DefaultE8Config()
	}
	if cfg.Boost <= 1 {
		cfg.Boost = 3
	}
	base := DeployConfig{Seed: cfg.Seed, Users: cfg.Users, Days: cfg.Days, KeyBits: 512}

	explicitCfg := base
	explicitCfg.SkipInference = true
	explicit, err := RunDeployment(explicitCfg)
	if err != nil {
		return nil, err
	}
	remindCfg := base
	remindCfg.SkipInference = true
	remindCfg.ReviewBoost = cfg.Boost
	reminders, err := RunDeployment(remindCfg)
	if err != nil {
		return nil, err
	}
	implicit, err := RunDeployment(base)
	if err != nil {
		return nil, err
	}

	res := &E8Result{Boost: cfg.Boost}
	explicitOps := opinionsPerActiveEntity(explicit, false)
	remindOps := opinionsPerActiveEntity(reminders, false)
	implicitOps := opinionsPerActiveEntity(implicit, true)
	res.Entities = len(explicitOps)
	res.ExplicitMean, _ = stats.Mean(explicitOps)
	res.RemindersMean, _ = stats.Mean(remindOps)
	res.ImplicitMean, _ = stats.Mean(implicitOps)
	res.ExplicitFrac5 = stats.FractionAtLeast(explicitOps, 5)
	res.RemindersFrac5 = stats.FractionAtLeast(remindOps, 5)
	res.ImplicitFrac5 = stats.FractionAtLeast(implicitOps, 5)
	return res, nil
}

// opinionsPerActiveEntity counts opinions per entity with any observed
// activity, optionally including inferred opinions.
func opinionsPerActiveEntity(d *Deployment, includeInferred bool) []float64 {
	rev, ops, hists := d.Server.Stores()
	var out []float64
	for _, e := range d.City.Entities {
		key := e.Key()
		n := rev.Count(key)
		if includeInferred {
			n += ops.Count(key)
		}
		if n == 0 && len(hists.ByEntity(key)) == 0 {
			continue
		}
		out = append(out, float64(n))
	}
	return out
}

// Render prints the three-world comparison.
func (r *E8Result) Render(w io.Writer) {
	fmt.Fprintln(w, "E8: reminder campaigns vs implicit inference (§3)")
	fmt.Fprintf(w, "entities with activity: %d; reminder boost: %.0f×\n", r.Entities, r.Boost)
	fmt.Fprintf(w, "%-24s %14s %16s\n", "world", "mean opinions", "frac ≥5 opinions")
	fmt.Fprintf(w, "%-24s %14.2f %16.2f\n", "explicit only", r.ExplicitMean, r.ExplicitFrac5)
	fmt.Fprintf(w, "%-24s %14.2f %16.2f\n", "reminders", r.RemindersMean, r.RemindersFrac5)
	fmt.Fprintf(w, "%-24s %14.2f %16.2f\n", "implicit inference", r.ImplicitMean, r.ImplicitFrac5)
	fmt.Fprintln(w, "paper expectation: even an aggressive reminder campaign cannot reach")
	fmt.Fprintln(w, "the silent majority; implicit inference can.")
}
