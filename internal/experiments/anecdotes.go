package experiments

import (
	"fmt"
	"io"

	"opinions/internal/crawler"
	"opinions/internal/world"
)

// Anecdotes reproduces the paper's illustrative sentences from the
// crawl: "though Yelp returns 127 Chinese restaurants near zipcode
// 19120 (Philadelphia), only 4 of these results have 50 or more
// reviews. Similarly, Healthgrades lists 248 dentists near zipcode
// 11368 (New York), but only 13 have over 50 reviews." We print the
// same sentences for the densest matching queries in the synthetic
// crawl.
func Anecdotes(u *CrawlUniverse) []string {
	var out []string
	if q, ok := densestQuery(u.Measurements[world.Yelp], "chinese"); ok {
		out = append(out, fmt.Sprintf(
			"Yelp returns %d Chinese restaurants near zipcode %s, but only %d have 50 or more reviews.",
			q.Results, q.Zip, q.AtLeast50))
	}
	if q, ok := densestQuery(u.Measurements[world.Healthgrades], "dentist"); ok {
		out = append(out, fmt.Sprintf(
			"Healthgrades lists %d dentists near zipcode %s, but only %d have over 50 reviews.",
			q.Results, q.Zip, q.AtLeast50))
	}
	return out
}

// densestQuery returns the category's query with the most results.
func densestQuery(m *crawler.ServiceMeasurement, category string) (crawler.QueryResult, bool) {
	if m == nil {
		return crawler.QueryResult{}, false
	}
	best := crawler.QueryResult{}
	found := false
	for _, q := range m.Queries {
		if q.Category != category {
			continue
		}
		if !found || q.Results > best.Results {
			best = q
			found = true
		}
	}
	return best, found
}

// RenderAnecdotes prints the sentences.
func RenderAnecdotes(u *CrawlUniverse, w io.Writer) {
	fmt.Fprintln(w, "Paper-style anecdotes from the densest crawled queries (§2):")
	for _, s := range Anecdotes(u) {
		fmt.Fprintln(w, " ", s)
	}
}
