package experiments

import (
	"fmt"
	"io"
	"time"

	"opinions/internal/interaction"
	"opinions/internal/mapping"
	"opinions/internal/sensing"
	"opinions/internal/stats"
	"opinions/internal/trace"
	"opinions/internal/world"
)

// E5Result evaluates §5's energy guidance: battery cost versus
// visit-detection recall for each sensing policy.
type E5Result struct {
	Users int
	Days  int
	Rows  []E5Row
}

// E5Row is one policy's outcome.
type E5Row struct {
	Policy string
	// EnergyPerDayMAH is the mean daily battery cost.
	EnergyPerDayMAH float64
	// Recall is the fraction of ground-truth visits (≥10 min, at listed
	// entities) the pipeline detected.
	Recall float64
	// Precision is the fraction of detected visits matching a true one.
	Precision float64
}

// E5Config scales the energy experiment.
type E5Config struct {
	Seed  int64
	Users int
	Days  int
}

// DefaultE5Config keeps the sweep fast but statistically meaningful.
func DefaultE5Config() E5Config { return E5Config{Seed: 3, Users: 40, Days: 21} }

// RunE5 runs the sensing → detection pipeline for each policy over the
// same simulated days and scores recall against ground truth.
func RunE5(cfg E5Config) *E5Result {
	if cfg.Users <= 0 {
		cfg = DefaultE5Config()
	}
	city := world.BuildCity(world.CityConfig{Seed: cfg.Seed, NumUsers: cfg.Users})
	sim := trace.New(city, trace.Config{Seed: cfg.Seed + 1, Days: cfg.Days})
	resolver := mapping.NewResolver(city.Entities)
	detector := interaction.NewDetector(resolver, interaction.Config{})
	logs := sim.Run()

	res := &E5Result{Users: cfg.Users, Days: cfg.Days}
	for _, policy := range sensing.AllPolicies() {
		rng := stats.NewRNG(cfg.Seed + 100)
		var energy sensing.Energy
		var truePositives, trueTotal, detectedTotal int
		days := 0
		for _, dl := range logs {
			days++
			samples, e := policy.SampleDay(rng, dl.Segments)
			energy += e
			detected := detector.DetectVisits(samples)
			detectedTotal += len(detected)

			// Ground truth: visits of ≥10 minutes (shorter ones are
			// below the detector's design floor by construction).
			for _, v := range dl.Visits {
				if v.Depart.Sub(v.Arrive) < 10*time.Minute {
					continue
				}
				trueTotal++
				for _, rec := range detected {
					if rec.Entity == v.Entity && overlaps(rec.Start, rec.Start.Add(rec.Duration), v.Arrive, v.Depart) {
						truePositives++
						break
					}
				}
			}
		}
		row := E5Row{Policy: policy.Name()}
		if days > 0 {
			row.EnergyPerDayMAH = float64(energy) / float64(days)
		}
		if trueTotal > 0 {
			row.Recall = float64(truePositives) / float64(trueTotal)
		}
		if detectedTotal > 0 {
			row.Precision = float64(truePositives) / float64(detectedTotal)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

func overlaps(aStart, aEnd, bStart, bEnd time.Time) bool {
	return aStart.Before(bEnd) && bStart.Before(aEnd)
}

// Render prints the energy/recall table.
func (r *E5Result) Render(w io.Writer) {
	fmt.Fprintln(w, "E5: sensing policy — battery cost vs visit-detection recall (§5)")
	fmt.Fprintf(w, "users: %d, days: %d\n", r.Users, r.Days)
	fmt.Fprintf(w, "%-18s %16s %10s %10s\n", "policy", "mAh/day", "recall", "precision")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-18s %16.1f %10.2f %10.2f\n", row.Policy, row.EnergyPerDayMAH, row.Recall, row.Precision)
	}
	fmt.Fprintln(w, "paper expectation: accelerometer-cued duty cycling retains recall at a")
	fmt.Fprintln(w, "fraction of always-on GPS's energy; WiFi assist cuts energy further.")
}
