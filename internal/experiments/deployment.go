package experiments

import (
	"fmt"
	"time"

	"opinions/internal/rspclient"
	"opinions/internal/rspserver"
	"opinions/internal/simclock"
	"opinions/internal/trace"
	"opinions/internal/world"
)

// DeployConfig scales a simulated deployment.
type DeployConfig struct {
	Seed  int64
	Users int
	Days  int
	// TrainAfterDays is when the RSP first trains its model from the
	// volunteered pairs and ships it to clients (default: half the
	// horizon).
	TrainAfterDays int
	// SkipInference disables model training and opinion uploads,
	// producing the "explicit-only" baseline world.
	SkipInference bool
	// KeyBits sizes the token issuer's RSA key (default 1024; the
	// crypto cost is per-upload, so simulations keep it modest).
	KeyBits int
	// ReviewBoost multiplies users' review propensity (§3's reminder
	// campaigns); default 1.
	ReviewBoost float64
	// Retention bounds every device's on-device snapshot (§4.2);
	// default 30 days.
	Retention time.Duration
}

// DefaultDeployConfig is the scale most experiments use.
func DefaultDeployConfig() DeployConfig {
	return DeployConfig{Seed: 1, Users: 150, Days: 90}
}

// Deployment is a fully wired simulated rollout: city, simulator, RSP
// server, and one device agent per user.
type Deployment struct {
	Config DeployConfig
	City   *world.City
	Sim    *trace.Simulator
	Server *rspserver.Server
	Agents map[world.UserID]*rspclient.Agent

	// ModelTrained reports whether the mid-deployment training step
	// produced a model.
	ModelTrained bool
}

// SimSeed returns the seed the deployment's trace simulator ran with,
// so experiments can replay the identical ground truth.
func (d *Deployment) SimSeed() int64 { return d.Config.Seed + 1 }

// RunDeployment simulates the full rollout loop of Figure 2:
//
//  1. Every user's device runs the agent; every simulated day it senses,
//     detects, stores, and queues anonymous uploads; vocal users post
//     reviews and volunteer training pairs.
//  2. Midway, the RSP trains the inference model; agents download it.
//  3. From then on agents infer opinions and upload them.
//  4. Uploads flush continuously as their mixing delays elapse.
func RunDeployment(cfg DeployConfig) (*Deployment, error) {
	if cfg.Users <= 0 {
		cfg.Users = 150
	}
	if cfg.Days <= 0 {
		cfg.Days = 90
	}
	if cfg.TrainAfterDays <= 0 || cfg.TrainAfterDays >= cfg.Days {
		cfg.TrainAfterDays = cfg.Days / 2
	}
	city := world.BuildCity(world.CityConfig{Seed: cfg.Seed, NumUsers: cfg.Users})
	sim := trace.New(city, trace.Config{Seed: cfg.Seed + 1, Days: cfg.Days, ReviewBoost: cfg.ReviewBoost})
	if cfg.KeyBits <= 0 {
		cfg.KeyBits = 1024
	}
	srv, err := rspserver.New(rspserver.Config{
		Catalog: city.Entities,
		Clock:   simclock.NewSim(sim.Start()),
		KeyBits: cfg.KeyBits,
		// Devices upload continuously; give them daily headroom.
		TokenRate: 1 << 20, TokenPeriod: 24 * time.Hour,
	})
	if err != nil {
		return nil, err
	}
	transport := &rspclient.LocalTransport{Server: srv, Clock: simclock.NewSim(sim.Start())}

	d := &Deployment{Config: cfg, City: city, Sim: sim, Server: srv, Agents: make(map[world.UserID]*rspclient.Agent)}
	for i, u := range city.Users {
		a := rspclient.NewAgent(rspclient.Config{
			DeviceID:  "dev-" + string(u.ID),
			Author:    string(u.ID),
			Seed:      cfg.Seed*7919 + int64(i),
			MixMax:    6 * time.Hour,
			Retention: cfg.Retention,
		}, transport)
		if err := a.Bootstrap(); err != nil {
			return nil, fmt.Errorf("experiments: bootstrapping %s: %w", u.ID, err)
		}
		d.Agents[u.ID] = a
	}

	for day := 0; day < cfg.Days; day++ {
		date := sim.Start().AddDate(0, 0, day)
		for _, dl := range sim.SimulateDate(day) {
			if _, err := d.Agents[dl.User].ProcessDay(dl); err != nil {
				return nil, fmt.Errorf("experiments: day %d user %s: %w", day, dl.User, err)
			}
		}
		// Model training milestone; if too few pairs have been
		// volunteered yet, retry weekly.
		if !cfg.SkipInference && !d.ModelTrained &&
			day >= cfg.TrainAfterDays && (day-cfg.TrainAfterDays)%7 == 0 {
			if _, err := srv.Retrain(); err == nil {
				d.ModelTrained = true
				for _, a := range d.Agents {
					_ = a.RefreshModel()
				}
			}
		}
		// Nightly: infer where possible and flush matured uploads.
		nightly := date.Add(26 * time.Hour) // next day, 02:00
		for _, a := range d.Agents {
			if d.ModelTrained && !cfg.SkipInference {
				a.InferOpinions(nightly)
			}
			if _, err := a.FlushUploads(nightly); err != nil {
				return nil, fmt.Errorf("experiments: flushing: %w", err)
			}
		}
	}
	// Final drain.
	drain := sim.Start().AddDate(0, 0, cfg.Days+1)
	for _, a := range d.Agents {
		if d.ModelTrained && !cfg.SkipInference {
			a.InferOpinions(drain)
		}
		if _, err := a.FlushUploads(drain); err != nil {
			return nil, err
		}
	}
	return d, nil
}
