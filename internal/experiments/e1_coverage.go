package experiments

import (
	"fmt"
	"io"

	"opinions/internal/stats"
)

// E1Result quantifies the paper's central claim (§1, §2): implicit
// inference dramatically increases the number of opinions available per
// entity compared to explicit reviews alone.
type E1Result struct {
	Entities int
	// Explicit-only statistics (today's RSP).
	ExplicitMedian float64
	ExplicitMean   float64
	FracWith5Plus  float64
	// Explicit + inferred statistics (the paper's vision).
	PooledMedian        float64
	PooledMean          float64
	PooledFracWith5Plus float64
	// Multiplier is pooled mean over explicit mean.
	Multiplier float64
}

// RunE1 measures opinion coverage over every entity that saw any
// activity in the deployment.
func RunE1(d *Deployment) *E1Result {
	rev, ops, hists := d.Server.Stores()
	var explicit, pooled []float64
	for _, e := range d.City.Entities {
		key := e.Key()
		nRev := rev.Count(key)
		nInf := ops.Count(key)
		// Restrict to entities with any observed relationship, so the
		// denominator matches "entities users actually interact with".
		if nRev == 0 && nInf == 0 && len(hists.ByEntity(key)) == 0 {
			continue
		}
		explicit = append(explicit, float64(nRev))
		pooled = append(pooled, float64(nRev+nInf))
	}
	res := &E1Result{Entities: len(explicit)}
	if len(explicit) == 0 {
		return res
	}
	res.ExplicitMedian, _ = stats.Median(explicit)
	res.ExplicitMean, _ = stats.Mean(explicit)
	res.FracWith5Plus = stats.FractionAtLeast(explicit, 5)
	res.PooledMedian, _ = stats.Median(pooled)
	res.PooledMean, _ = stats.Mean(pooled)
	res.PooledFracWith5Plus = stats.FractionAtLeast(pooled, 5)
	if res.ExplicitMean > 0 {
		res.Multiplier = res.PooledMean / res.ExplicitMean
	}
	return res
}

// Render prints the coverage comparison.
func (r *E1Result) Render(w io.Writer) {
	fmt.Fprintln(w, "E1: opinions per entity — explicit-only vs explicit+inferred")
	fmt.Fprintf(w, "entities with activity: %d\n", r.Entities)
	fmt.Fprintf(w, "%-22s %10s %10s %14s\n", "", "median", "mean", "frac ≥5 ops")
	fmt.Fprintf(w, "%-22s %10.1f %10.2f %14.2f\n", "explicit only", r.ExplicitMedian, r.ExplicitMean, r.FracWith5Plus)
	fmt.Fprintf(w, "%-22s %10.1f %10.2f %14.2f\n", "explicit + inferred", r.PooledMedian, r.PooledMean, r.PooledFracWith5Plus)
	fmt.Fprintf(w, "coverage multiplier: %.1f× (paper claim: dramatic increase; Fig 1c suggests ≥10× headroom)\n", r.Multiplier)
}
