package experiments

import (
	"fmt"
	"io"
	"sort"

	"opinions/internal/cf"
	"opinions/internal/stats"
)

// E7Result tests the §3.1 argument against collaborative filtering:
// "any particular user is likely to have interacted with only one or at
// most a few doctors and plumbers, preempting the inference of the
// user's preferences" — whereas a search interface backed by inferred
// opinions serves every user.
//
// For each category we measure, over the same deployment:
//
//   - CF user coverage: the fraction of users for whom an item-based CF
//     model trained on all explicit reviews can recommend *any* entity
//     of that category;
//   - search entity coverage: the fraction of that category's entities
//     carrying any evidence in the search index — an explicit review,
//     an inferred opinion, or an interaction-history aggregate (the
//     Figure 3 visualizations). All of it is shown to every user.
type E7Result struct {
	Rows []E7Row
}

// E7Row is one category's comparison.
type E7Row struct {
	Category string
	Entities int
	// CFUserCoverage: fraction of users CF can serve for this category.
	CFUserCoverage float64
	// SearchEntityCoverage: fraction of entities with any search-visible
	// evidence (review, inferred opinion, or interaction aggregate).
	SearchEntityCoverage float64
	// MedianOpinions per entity (explicit + inferred).
	MedianOpinions float64
}

// RunE7 trains CF on the deployment's explicit reviews and compares
// coverage per category.
func RunE7(d *Deployment) *E7Result {
	rev, ops, hists := d.Server.Stores()
	var ratings []cf.Rating
	for _, r := range rev.All() {
		ratings = append(ratings, cf.Rating{User: r.Author, Item: r.Entity, Value: r.Rating})
	}
	model := cf.Train(ratings, 20)

	var users []string
	for _, u := range d.City.Users {
		users = append(users, string(u.ID))
	}

	byCategory := map[string][]string{}
	for _, e := range d.City.Entities {
		byCategory[e.Category] = append(byCategory[e.Category], e.Key())
	}
	res := &E7Result{}
	var cats []string
	for c := range byCategory {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	for _, cat := range cats {
		items := byCategory[cat]
		row := E7Row{Category: cat, Entities: len(items)}
		row.CFUserCoverage = model.Coverage(users, items)
		withOpinion := 0
		var pooled []float64
		for _, key := range items {
			n := rev.Count(key) + ops.Count(key)
			if n > 0 || len(hists.ByEntity(key)) > 0 {
				withOpinion++
			}
			pooled = append(pooled, float64(n))
		}
		row.SearchEntityCoverage = float64(withOpinion) / float64(len(items))
		row.MedianOpinions, _ = stats.Median(pooled)
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render prints the per-category comparison.
func (r *E7Result) Render(w io.Writer) {
	fmt.Fprintln(w, "E7: collaborative filtering vs search-based inferred opinions (§3.1)")
	fmt.Fprintf(w, "%-14s %10s %16s %20s %16s\n", "category", "entities", "CF user cover", "search entity cover", "med opinions")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14s %10d %16.2f %20.2f %16.1f\n",
			row.Category, row.Entities, row.CFUserCoverage, row.SearchEntityCoverage, row.MedianOpinions)
	}
	fmt.Fprintln(w, "paper expectation: CF collapses in sparse physical-world categories")
	fmt.Fprintln(w, "(dentist, plumber, electrician); the search interface does not.")
}
