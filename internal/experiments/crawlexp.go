package experiments

import (
	"fmt"
	"io"

	"opinions/internal/stats"
	"opinions/internal/world"
)

// paperTable1 is what the paper reports, for side-by-side rendering.
var paperTable1 = map[world.ServiceKind]struct {
	categories int
	entities   int
}{
	world.Yelp:         {9, 24417},
	world.AngiesList:   {24, 26066},
	world.Healthgrades: {4, 24922},
}

// paperFig1aMedians: median reviews per entity (Fig 1a narrative).
var paperFig1aMedians = map[world.ServiceKind]float64{
	world.Yelp: 25, world.AngiesList: 8, world.Healthgrades: 5,
}

// paperFig1bMedians: median per-query results with ≥50 reviews.
var paperFig1bMedians = map[world.ServiceKind]float64{
	world.Yelp: 12, world.AngiesList: 2, world.Healthgrades: 1,
}

// Table1Result reproduces Table 1: "Summary of measurements."
type Table1Result struct {
	Rows []Table1Row
}

// Table1Row is one service's row.
type Table1Row struct {
	Service         string
	Categories      int
	Entities        int
	PaperCategories int
	PaperEntities   int
}

// RunTable1 crawls the universe and assembles Table 1.
func RunTable1(u *CrawlUniverse) *Table1Result {
	res := &Table1Result{}
	for _, kind := range world.ReviewServices {
		m := u.Measurements[kind]
		p := paperTable1[kind]
		res.Rows = append(res.Rows, Table1Row{
			Service:         string(kind),
			Categories:      m.Categories,
			Entities:        m.TotalEntities(),
			PaperCategories: p.categories,
			PaperEntities:   p.entities,
		})
	}
	return res
}

// Render prints the table with paper-reported values alongside.
func (r *Table1Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 1: Summary of measurements (measured vs paper)")
	fmt.Fprintf(w, "%-14s %12s %12s %14s %14s\n", "Service", "#Categories", "#Entities", "paper #Cat", "paper #Ent")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14s %12d %12d %14d %14d\n",
			row.Service, row.Categories, row.Entities, row.PaperCategories, row.PaperEntities)
	}
}

// CDFSeries is one labelled empirical CDF, the unit of Figure 1's plots.
type CDFSeries struct {
	Label  string
	Points []stats.CDFPoint
	Median float64
	// PaperMedian is the value the paper reports for this series.
	PaperMedian float64
}

// Fig1aResult reproduces Figure 1(a): distribution across entities of
// number of reviews.
type Fig1aResult struct {
	Series []CDFSeries
}

// RunFig1a computes the per-service review-count CDFs.
func RunFig1a(u *CrawlUniverse) *Fig1aResult {
	res := &Fig1aResult{}
	for _, kind := range world.ReviewServices {
		m := u.Measurements[kind]
		med, _ := stats.Median(m.ReviewCounts)
		res.Series = append(res.Series, CDFSeries{
			Label:       string(kind),
			Points:      stats.CDF(m.ReviewCounts),
			Median:      med,
			PaperMedian: paperFig1aMedians[kind],
		})
	}
	return res
}

// Render prints each series' quartiles at the paper's log-scale ticks.
func (r *Fig1aResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 1(a): CDF across entities of number of reviews")
	renderCDFs(w, r.Series, []float64{1, 4, 16, 64, 256, 1024})
}

// Fig1bResult reproduces Figure 1(b): distribution across queries of the
// number of matching entities with ≥50 reviews.
type Fig1bResult struct {
	Series []CDFSeries
}

// RunFig1b computes the per-service per-query CDFs.
func RunFig1b(u *CrawlUniverse) *Fig1bResult {
	res := &Fig1bResult{}
	for _, kind := range world.ReviewServices {
		sample := u.Measurements[kind].PerQueryAtLeast50()
		med, _ := stats.Median(sample)
		res.Series = append(res.Series, CDFSeries{
			Label:       string(kind),
			Points:      stats.CDF(sample),
			Median:      med,
			PaperMedian: paperFig1bMedians[kind],
		})
	}
	return res
}

// Render prints each series at the paper's ticks.
func (r *Fig1bResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 1(b): CDF across queries of results with ≥50 reviews")
	renderCDFs(w, r.Series, []float64{1, 2, 4, 8, 16, 32, 64, 128})
}

func renderCDFs(w io.Writer, series []CDFSeries, ticks []float64) {
	fmt.Fprintf(w, "%-14s", "x ≤")
	for _, t := range ticks {
		fmt.Fprintf(w, "%8.0f", t)
	}
	fmt.Fprintf(w, "%10s %8s\n", "median", "paper")
	for _, s := range series {
		fmt.Fprintf(w, "%-14s", s.Label)
		for _, t := range ticks {
			fmt.Fprintf(w, "%8.2f", cdfAt(s.Points, t))
		}
		fmt.Fprintf(w, "%10.1f %8.1f\n", s.Median, s.PaperMedian)
	}
}

// cdfAt evaluates a CDF point list at v.
func cdfAt(points []stats.CDFPoint, v float64) float64 {
	frac := 0.0
	for _, p := range points {
		if p.Value > v {
			break
		}
		frac = p.Fraction
	}
	return frac
}

// Fig1cResult reproduces Figure 1(c): explicit feedback versus implicit
// interaction counts on Google Play and YouTube.
type Fig1cResult struct {
	Rows []Fig1cRow
}

// Fig1cRow is one service's medians.
type Fig1cRow struct {
	Service            string
	MedianInteractions float64
	MedianFeedback     float64
	MedianRatio        float64
}

// RunFig1c computes the interaction/feedback discrepancy.
func RunFig1c(u *CrawlUniverse) *Fig1cResult {
	res := &Fig1cResult{}
	for _, kind := range world.InteractionServices {
		s := u.Interactions[kind]
		mi, _ := stats.Median(s.Interactions)
		mf, _ := stats.Median(s.Feedback)
		mr, _ := stats.Median(s.Ratios())
		res.Rows = append(res.Rows, Fig1cRow{
			Service:            string(kind),
			MedianInteractions: mi,
			MedianFeedback:     mf,
			MedianRatio:        mr,
		})
	}
	return res
}

// Render prints the medians; the paper's claim is a ≥10× gap.
func (r *Fig1cResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 1(c): explicit feedback vs implicit interactions")
	fmt.Fprintf(w, "%-10s %18s %16s %14s %24s\n", "Service", "med interactions", "med feedback", "med ratio", "paper: >1 order of mag.")
	for _, row := range r.Rows {
		ok := "yes"
		if row.MedianRatio < 10 {
			ok = "NO"
		}
		fmt.Fprintf(w, "%-10s %18.0f %16.0f %14.1f %24s\n",
			row.Service, row.MedianInteractions, row.MedianFeedback, row.MedianRatio, ok)
	}
}
