// Package experiments regenerates every table and figure in the paper
// plus the extension experiments E1–E6 listed in DESIGN.md. Each
// experiment returns a typed result with a Render method that prints the
// same rows/series the paper reports, alongside the paper's own numbers
// for comparison.
//
// Two substrates back the experiments:
//
//   - CrawlUniverse: the five-service directory served over real HTTP
//     and measured by the crawler (§2: Table 1, Figure 1a–c).
//   - Deployment: a behavioural city of users running full device
//     agents against an in-process RSP (Figures 2–3, experiments E1–E6).
package experiments

import (
	"fmt"
	"net/http/httptest"

	"opinions/internal/crawler"
	"opinions/internal/rspserver"
	"opinions/internal/world"
)

// CrawlUniverse is the crawled view of the five synthetic services.
type CrawlUniverse struct {
	Dir *world.Directory
	// Measurements holds one crawl per review service, keyed by kind.
	Measurements map[world.ServiceKind]*crawler.ServiceMeasurement
	// Interactions holds the Figure 1(c) samples for Play and YouTube.
	Interactions map[world.ServiceKind]*crawler.InteractionSample
}

// BuildCrawlUniverse generates the directory, serves it over a real
// HTTP listener, and crawls it exactly as §2 describes: every (zip,
// category) query per review service, plus a sample of
// interaction-bearing entities.
func BuildCrawlUniverse(cfg world.DirectoryConfig) (*CrawlUniverse, error) {
	dir := world.BuildDirectory(cfg)
	var catalog []*world.Entity
	for _, kind := range world.ReviewServices {
		catalog = append(catalog, dir.Entities[kind]...)
	}
	for _, kind := range world.InteractionServices {
		catalog = append(catalog, dir.Entities[kind]...)
	}
	var zips []string
	for _, z := range dir.Zips {
		zips = append(zips, z.Code)
	}
	srv, err := rspserver.New(rspserver.Config{Catalog: catalog, KeyBits: 1024, Zips: zips})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := &crawler.Client{BaseURL: ts.URL, Workers: 8}
	meta, err := c.Meta()
	if err != nil {
		return nil, err
	}
	u := &CrawlUniverse{
		Dir:          dir,
		Measurements: make(map[world.ServiceKind]*crawler.ServiceMeasurement),
		Interactions: make(map[world.ServiceKind]*crawler.InteractionSample),
	}
	for _, ms := range meta.Services {
		kind := world.ServiceKind(ms.Kind)
		switch kind {
		case world.Yelp, world.AngiesList, world.Healthgrades:
			m, err := crawler.CrawlService(c, ms)
			if err != nil {
				return nil, fmt.Errorf("experiments: crawling %s: %w", ms.Kind, err)
			}
			u.Measurements[kind] = m
		case world.GooglePlay, world.YouTube:
			s, err := crawler.CrawlInteractions(c, ms.Kind, cfg.InteractionEntities)
			if err != nil {
				return nil, fmt.Errorf("experiments: sampling %s: %w", ms.Kind, err)
			}
			u.Interactions[kind] = s
		}
	}
	return u, nil
}
