package experiments

import (
	"fmt"
	"io"

	"opinions/internal/inference"
	"opinions/internal/stats"
)

// E2Result scores the §4.1 "effort is endorsement" predictor against
// ground truth, compared with the naive repetition-counting strawman the
// paper warns against. Only the experiment scorer can do this — it asks
// the simulator for each user's true opinion, which no system component
// observes.
type E2Result struct {
	// Pairs is the number of (user, entity) pairs the trained predictor
	// rated.
	Pairs int
	// TrainedMAE and NaiveMAE are mean absolute errors in stars.
	TrainedMAE float64
	NaiveMAE   float64
	// TrainedCorr is the Pearson correlation with ground truth.
	TrainedCorr float64
	NaiveCorr   float64
	// AbstainRate is the fraction of evidence-bearing (user, entity)
	// pairs the predictor declined to rate (§4.1's "declare infeasible").
	AbstainRate float64
	// RecommendAccuracy is accuracy of the binary would-recommend
	// (rating ≥ 3.5) decision.
	RecommendAccuracy float64
	// GlobalMAE ablates the per-category models: the same evidence
	// predicted by the global model alone. PerCategoryModels reports how
	// many category models were trained.
	GlobalMAE         float64
	PerCategoryModels int
}

// RunE2 compares predictors over every agent's evidence.
func RunE2(d *Deployment) (*E2Result, error) {
	if !d.ModelTrained {
		return nil, fmt.Errorf("experiments: deployment has no trained model")
	}
	naive := inference.NaiveCountPredictor{}
	models := d.Server.Models()
	var trained, naivePred, globalPred, truth []float64
	var recommendHits, recommendTotal int
	evidenceBearing, abstained := 0, 0
	for uid, agent := range d.Agents {
		user := d.City.UserByID(uid)
		inferred := agent.InferredOpinions()
		for _, view := range agent.Inferences() {
			ev := agent.Evidence(view.Entity)
			if ev.InteractionCount() < 3 {
				continue
			}
			evidenceBearing++
			rating, ok := inferred[view.Entity]
			if !ok {
				abstained++
				continue
			}
			ent := d.City.EntityByKey(view.Entity)
			if ent == nil {
				continue
			}
			actual := user.TrueOpinion(ent)
			trained = append(trained, rating)
			truth = append(truth, actual)
			if nv, okN := naive.Infer(ev); okN {
				naivePred = append(naivePred, nv)
			} else {
				naivePred = append(naivePred, 2.5)
			}
			// Ablation: the global model over the same evidence.
			globalPred = append(globalPred, models.Global.Predict(inference.ExtractFeatures(ev)))
			recommendTotal++
			if (rating >= 3.5) == (actual >= 3.5) {
				recommendHits++
			}
		}
	}
	if len(trained) == 0 {
		return nil, fmt.Errorf("experiments: predictor rated nothing; deployment too small")
	}
	res := &E2Result{Pairs: len(trained), PerCategoryModels: len(models.PerCategory)}
	res.TrainedMAE, _ = stats.MAE(trained, truth)
	res.NaiveMAE, _ = stats.MAE(naivePred, truth)
	res.GlobalMAE, _ = stats.MAE(globalPred, truth)
	res.TrainedCorr, _ = stats.Pearson(trained, truth)
	res.NaiveCorr, _ = stats.Pearson(naivePred, truth)
	if evidenceBearing > 0 {
		res.AbstainRate = float64(abstained) / float64(evidenceBearing)
	}
	if recommendTotal > 0 {
		res.RecommendAccuracy = float64(recommendHits) / float64(recommendTotal)
	}
	return res, nil
}

// Render prints the accuracy comparison.
func (r *E2Result) Render(w io.Writer) {
	fmt.Fprintln(w, "E2: inferred rating accuracy vs ground truth (held-out silent users)")
	fmt.Fprintf(w, "rated (user, entity) pairs: %d; abstain rate: %.2f\n", r.Pairs, r.AbstainRate)
	fmt.Fprintf(w, "%-26s %10s %10s\n", "predictor", "MAE", "corr")
	fmt.Fprintf(w, "%-26s %10.2f %10.2f\n", "effort-is-endorsement", r.TrainedMAE, r.TrainedCorr)
	fmt.Fprintf(w, "%-26s %10.2f %10.2f\n", "naive repetition count", r.NaiveMAE, r.NaiveCorr)
	fmt.Fprintf(w, "would-recommend accuracy: %.2f\n", r.RecommendAccuracy)
	fmt.Fprintf(w, "ablation: global-model-only MAE %.2f (%d per-category models deployed)\n",
		r.GlobalMAE, r.PerCategoryModels)
}
