package experiments

import (
	"fmt"
	"io"
	"time"

	"opinions/internal/fraud"
	"opinions/internal/history"
	"opinions/internal/stats"
)

// E3Result evaluates §4.3's typical-user-profile defense: detection of
// each attack class at increasing intensity, the false-positive rate on
// honest histories, and the cost an attacker must pay per surviving fake
// history.
type E3Result struct {
	HonestHistories   int
	FalsePositiveRate float64
	Rows              []E3Row
}

// E3Row is one (attack, intensity) cell.
type E3Row struct {
	Attack    string
	Attackers int
	Detected  int
	Recall    float64
	// CostPerSurvivorHours is the attacker hours invested per fake
	// history that survived filtering (infinite when all are caught,
	// rendered as "∞").
	CostPerSurvivorHours float64
	AllCaught            bool
}

// RunE3 injects attacks into a copy of the deployment's history store
// and sweeps with the §4.3 detector.
func RunE3(d *Deployment, intensities []int) *E3Result {
	if len(intensities) == 0 {
		intensities = []int{1, 5, 10}
	}
	_, _, hists := d.Server.Stores()
	// Honest population snapshot.
	var honest []*history.EntityHistory
	for _, key := range hists.Entities() {
		honest = append(honest, hists.ByEntity(key)...)
	}
	res := &E3Result{HonestHistories: len(honest)}
	if len(honest) == 0 {
		return res
	}

	// False-positive rate with no attack present.
	baseDet := fraud.NewDetector(fraud.BuildProfile(honest))
	_, fp := baseDet.Filter(honest)
	res.FalsePositiveRate = float64(len(fp)) / float64(len(honest))

	targets := res.pickTargets(d, 8)
	rng := stats.NewRNG(1234)
	start := d.Sim.Start().Add(24 * time.Hour)

	for _, attack := range fraud.AllAttacks() {
		for _, n := range intensities {
			// Build the combined population: honest + n fake histories.
			var fakes []*history.EntityHistory
			var totalCost float64
			for i := 0; i < n; i++ {
				target := targets[i%len(targets)]
				id := fmt.Sprintf("atk-%s-%d", attack.Name(), i)
				recs := attack.Generate(rng, target, start)
				fakes = append(fakes, &history.EntityHistory{AnonID: id, Entity: target, Records: recs})
				totalCost += attack.CostHours(recs)
			}
			pop := append(append([]*history.EntityHistory{}, honest...), fakes...)
			det := fraud.NewDetector(fraud.BuildProfile(pop))
			detected := 0
			for _, f := range fakes {
				if det.Flag(f) {
					detected++
				}
			}
			row := E3Row{
				Attack:    attack.Name(),
				Attackers: n,
				Detected:  detected,
				Recall:    float64(detected) / float64(n),
			}
			survivors := n - detected
			if survivors == 0 {
				row.AllCaught = true
			} else {
				row.CostPerSurvivorHours = totalCost / float64(survivors)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

// pickTargets selects up to n restaurant entities with existing honest
// activity, the natural fraud targets.
func (r *E3Result) pickTargets(d *Deployment, n int) []string {
	_, _, hists := d.Server.Stores()
	var out []string
	for _, key := range hists.Entities() {
		if e := d.Server.Engine().Entity(key); e != nil && (e.Category == "restaurant" || e.Category == "electrician" || e.Category == "dentist") {
			out = append(out, key)
			if len(out) == n {
				break
			}
		}
	}
	if len(out) == 0 {
		out = []string{d.City.Entities[0].Key()}
	}
	return out
}

// Render prints the detection table.
func (r *E3Result) Render(w io.Writer) {
	fmt.Fprintln(w, "E3: fake-activity detection (§4.3 typical-user profile)")
	fmt.Fprintf(w, "honest histories: %d, false-positive rate: %.3f\n", r.HonestHistories, r.FalsePositiveRate)
	fmt.Fprintf(w, "%-12s %10s %10s %8s %22s\n", "attack", "attackers", "detected", "recall", "cost/survivor (hours)")
	for _, row := range r.Rows {
		cost := "∞ (all caught)"
		if !row.AllCaught {
			cost = fmt.Sprintf("%.1f", row.CostPerSurvivorHours)
		}
		fmt.Fprintf(w, "%-12s %10d %10d %8.2f %22s\n",
			row.Attack, row.Attackers, row.Detected, row.Recall, cost)
	}
	fmt.Fprintln(w, "paper expectation: cheap attacks (call-spam, employee) are caught;")
	fmt.Fprintln(w, "the mimic survives but at hours-per-fake cost — the defense raises effort, not impossibility.")
}
