package experiments

import (
	"fmt"
	"io"

	"opinions/internal/aggregate"
	"opinions/internal/trace"
)

// E6Result evaluates §4.1's group accounting: without deduplication, a
// party of four inflates an entity's apparent support fourfold; with
// co-arrival clustering the effective count approaches the number of
// independent decisions.
type E6Result struct {
	RestaurantsMeasured int
	// RawInteractions counts every visit record; Effective applies
	// GroupWeight to detected co-arrival clusters.
	RawInteractions       int
	EffectiveInteractions float64
	// TrueParties is the simulator's ground-truth number of independent
	// visit decisions (a group outing counts once).
	TrueParties int
	// InflationRaw and InflationDeduped compare each estimate to truth
	// (1.0 is perfect).
	InflationRaw     float64
	InflationDeduped float64
	// DetectedClusters and TrueGroupVisits compare cluster counts.
	DetectedClusters int
}

// RunE6 measures aggregate inflation across the deployment's restaurant
// entities, using the simulator's ground-truth group annotations.
func RunE6(d *Deployment) *E6Result {
	_, _, hists := d.Server.Stores()
	res := &E6Result{}
	restaurantKeys := map[string]bool{}
	for _, key := range hists.Entities() {
		if e := d.Server.Engine().Entity(key); e != nil && e.Category == "restaurant" {
			restaurantKeys[key] = true
		}
	}
	for key := range restaurantKeys {
		clusters, raw, eff := aggregate.DedupGroups(hists.ByEntity(key), aggregate.GroupWindow)
		res.RawInteractions += raw
		res.EffectiveInteractions += eff
		res.DetectedClusters += len(clusters)
		res.RestaurantsMeasured++
	}

	// Ground truth: replay the identical simulation and count parties.
	sim := trace.New(d.City, trace.Config{Seed: d.SimSeed(), Days: d.Sim.Days(), ReviewBoost: d.Config.ReviewBoost})
	seenGroups := map[string]bool{}
	for _, dl := range sim.Run() {
		for _, v := range dl.Visits {
			if !restaurantKeys[v.Entity] {
				continue
			}
			if v.GroupID == "" {
				res.TrueParties++
				continue
			}
			if !seenGroups[v.GroupID] {
				seenGroups[v.GroupID] = true
				res.TrueParties++
			}
		}
	}
	if res.TrueParties > 0 {
		res.InflationRaw = float64(res.RawInteractions) / float64(res.TrueParties)
		res.InflationDeduped = res.EffectiveInteractions / float64(res.TrueParties)
	}
	return res
}

// Render prints the inflation comparison.
func (r *E6Result) Render(w io.Writer) {
	fmt.Fprintln(w, "E6: group-visit accounting (§4.1)")
	fmt.Fprintf(w, "restaurants measured: %d\n", r.RestaurantsMeasured)
	fmt.Fprintf(w, "%-28s %12d\n", "raw visit records", r.RawInteractions)
	fmt.Fprintf(w, "%-28s %12.1f\n", "effective (deduped)", r.EffectiveInteractions)
	fmt.Fprintf(w, "%-28s %12d\n", "true independent parties", r.TrueParties)
	fmt.Fprintf(w, "%-28s %12d\n", "detected co-arrival clusters", r.DetectedClusters)
	fmt.Fprintf(w, "inflation vs truth: raw %.2f×, deduped %.2f× (closer to 1.0 is better)\n",
		r.InflationRaw, r.InflationDeduped)
}
