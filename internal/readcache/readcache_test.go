package readcache

import (
	"fmt"
	"sync"
	"testing"
)

func TestMissThenHit(t *testing.T) {
	c := New()
	if _, _, ok := c.Get("entity", "yelp/a"); ok {
		t.Fatal("hit on empty cache")
	}
	_, gen, _ := c.Get("entity", "yelp/a")
	if !c.Put("entity", "yelp/a", gen, []byte(`{"k":1}`)) {
		t.Fatal("fill rejected with unchanged generation")
	}
	body, _, ok := c.Get("entity", "yelp/a")
	if !ok || string(body) != `{"k":1}` {
		t.Fatalf("hit = %q, %v", body, ok)
	}
	hits, misses, invals := c.Stats()
	if hits != 1 || misses != 2 || invals != 0 {
		t.Fatalf("stats = %d, %d, %d", hits, misses, invals)
	}
}

func TestNamespacesAreDistinct(t *testing.T) {
	c := New()
	_, gen, _ := c.Get("entity", "k")
	c.Put("entity", "k", gen, []byte("ent"))
	if _, _, ok := c.Get("directory", "k"); ok {
		t.Fatal("namespace bleed: entity fill visible under directory")
	}
	_, gen, _ = c.Get("directory", "k")
	c.Put("directory", "k", gen, []byte("dir"))
	if body, _, _ := c.Get("entity", "k"); string(body) != "ent" {
		t.Fatalf("entity body = %q", body)
	}
	if body, _, _ := c.Get("directory", "k"); string(body) != "dir" {
		t.Fatalf("directory body = %q", body)
	}
}

func TestInvalidateEvictsAndBumpsGeneration(t *testing.T) {
	c := New()
	_, gen, _ := c.Get("entity", "k")
	c.Put("entity", "k", gen, []byte("v1"))
	c.Invalidate("k", "entity", "directory")
	if _, _, ok := c.Get("entity", "k"); ok {
		t.Fatal("entry survived invalidation")
	}
	_, _, invals := c.Stats()
	if invals != 1 {
		t.Fatalf("invalidations = %d (only the entity entry existed)", invals)
	}
	// A fill carrying the pre-invalidation generation must be dropped.
	if c.Put("entity", "k", gen, []byte("stale")) {
		t.Fatal("stale fill installed after invalidation")
	}
	if _, _, ok := c.Get("entity", "k"); ok {
		t.Fatal("stale fill visible")
	}
	// A fresh miss/fill cycle works again.
	_, gen2, _ := c.Get("entity", "k")
	if !c.Put("entity", "k", gen2, []byte("v2")) {
		t.Fatal("post-invalidation fill rejected")
	}
	if body, _, _ := c.Get("entity", "k"); string(body) != "v2" {
		t.Fatalf("body = %q", body)
	}
}

func TestInvalidateOtherKeyKeepsEntry(t *testing.T) {
	c := New()
	_, gen, _ := c.Get("entity", "keep")
	c.Put("entity", "keep", gen, []byte("v"))
	c.Invalidate("other", "entity")
	// "keep" may share a stripe with "other" (generation fence), but the
	// entry itself must survive: only "other" was evicted.
	if body, _, ok := c.Get("entity", "keep"); !ok || string(body) != "v" {
		t.Fatalf("unrelated entry evicted: %q, %v", body, ok)
	}
}

func TestReset(t *testing.T) {
	c := New()
	gens := make(map[string]uint64)
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%d", i)
		_, gen, _ := c.Get("entity", k)
		gens[k] = gen
		c.Put("entity", k, gen, []byte(k))
	}
	if c.Len() != 100 {
		t.Fatalf("Len = %d", c.Len())
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Len after Reset = %d", c.Len())
	}
	_, _, invals := c.Stats()
	if invals != 100 {
		t.Fatalf("invalidations = %d", invals)
	}
	// Every pre-reset generation is fenced, whatever stripe it lived on.
	for k, gen := range gens {
		if c.Put("entity", k, gen, []byte("stale")) {
			t.Fatalf("stale fill for %s installed after Reset", k)
		}
	}
}

// Concurrent fills, hits, and invalidations on overlapping keys; run
// under -race. Invariant: after all invalidators finish, a final
// invalidate+miss+fill for a key must make exactly its latest value
// visible.
func TestConcurrent(t *testing.T) {
	c := New()
	const keys = 32
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (i+w)%keys)
				switch i % 3 {
				case 0:
					if body, gen, ok := c.Get("entity", k); !ok {
						c.Put("entity", k, gen, []byte(k))
					} else if string(body) != k {
						t.Errorf("key %s served %q", k, body)
						return
					}
				case 1:
					c.Invalidate(k, "entity")
				case 2:
					c.Get("entity", k)
				}
			}
		}(w)
	}
	wg.Wait()
	c.Invalidate("k0", "entity")
	_, gen, ok := c.Get("entity", "k0")
	if ok {
		t.Fatal("hit immediately after invalidate")
	}
	if !c.Put("entity", "k0", gen, []byte("final")) {
		t.Fatal("quiescent fill rejected")
	}
	if body, _, _ := c.Get("entity", "k0"); string(body) != "final" {
		t.Fatalf("body = %q", body)
	}
}
