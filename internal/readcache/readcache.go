// Package readcache is the serving path's response cache: hot read
// responses — a per-entity describe/aggregate, a per-service directory
// listing — are held as pre-encoded JSON bytes and served without
// recomputing aggregates or re-running the encoder. Entries are
// invalidated precisely by the commit pipeline: the server registers a
// store commit hook that maps each applied record to the entity it
// touched, so a cached response can never outlive the state it was
// computed from by more than the in-flight race window of the commit
// that changed it.
//
// The cache reuses the internal/stripe routing the read stores and the
// commit pipeline shard on: entries shard by stripe.Index of the
// entity key, hits are lock-free (one atomic map load), and an
// invalidation touches only its own stripe.
//
// Fills are generation-guarded against the classic stale-fill race: a
// reader that computed its response from pre-commit state must not
// install it after the commit's invalidation ran. Get captures the
// stripe's generation before the caller reads any store state;
// Invalidate bumps it; Put installs only if the generation is
// unchanged. A lost fill costs one recompute on the next miss — a
// stale install would serve old bytes forever.
package readcache

import (
	"sync"
	"sync/atomic"

	"opinions/internal/obs"
	"opinions/internal/stripe"
)

var (
	metricHits = obs.Default.Counter("readcache_hits_total",
		"Read-cache hits: responses served from pre-encoded bytes.")
	metricMisses = obs.Default.Counter("readcache_misses_total",
		"Read-cache misses: responses computed and encoded on demand.")
	metricInvalidations = obs.Default.Counter("readcache_invalidations_total",
		"Read-cache entries evicted by commit invalidation (including full flushes).")
)

// shard is one stripe of the cache. Hits go straight through the
// sync.Map; mu serializes fills against invalidations so the
// generation check and the install are one atomic step.
type shard struct {
	gen atomic.Uint64
	mu  sync.Mutex
	m   sync.Map // namespace+"\x00"+key -> []byte
}

// Cache is a sharded pre-encoded response cache. The zero value is not
// usable; construct with New. All methods are safe for concurrent use.
type Cache struct {
	shards [stripe.NumShards]shard

	hits   atomic.Uint64
	misses atomic.Uint64
	invals atomic.Uint64
}

// New returns an empty cache.
func New() *Cache { return &Cache{} }

func (c *Cache) shardFor(key string) *shard { return &c.shards[stripe.Index(key)] }

func mapKey(ns, key string) string { return ns + "\x00" + key }

// Get looks up the pre-encoded response for (ns, key). On a hit it
// returns the cached bytes, which the caller must treat as immutable.
// On a miss it returns the stripe's current generation: capture it
// BEFORE reading any store state, and hand it back to Put so a fill
// computed from pre-invalidation state is dropped instead of
// installed.
func (c *Cache) Get(ns, key string) (body []byte, gen uint64, ok bool) {
	sh := c.shardFor(key)
	gen = sh.gen.Load()
	if v, hit := sh.m.Load(mapKey(ns, key)); hit {
		c.hits.Add(1)
		metricHits.Inc()
		return v.([]byte), gen, true
	}
	c.misses.Add(1)
	metricMisses.Inc()
	return nil, gen, false
}

// Put installs body for (ns, key) if the stripe's generation still
// matches gen (as returned by the Get that missed). It reports whether
// the entry was installed; false means an invalidation ran since the
// Get and the bytes may describe stale state. The cache takes
// ownership of body — callers must not mutate it afterwards.
func (c *Cache) Put(ns, key string, gen uint64, body []byte) bool {
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.gen.Load() != gen {
		return false
	}
	sh.m.Store(mapKey(ns, key), body)
	return true
}

// Invalidate evicts every namespace's entry for key and bumps the
// stripe's generation so concurrent fills computed from older state
// are dropped. Namespaces are enumerated by the caller-supplied list;
// the generation bump alone already fences fills for the whole stripe.
func (c *Cache) Invalidate(key string, namespaces ...string) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	sh.gen.Add(1)
	for _, ns := range namespaces {
		if _, ok := sh.m.LoadAndDelete(mapKey(ns, key)); ok {
			c.invals.Add(1)
			metricInvalidations.Inc()
		}
	}
	sh.mu.Unlock()
}

// Reset flushes the whole cache — every entry in every stripe — and
// bumps every stripe's generation. Used for cross-stripe mutations
// (retrain, fraud sweep) and snapshot restores, where per-entity
// invalidation cannot bound what changed.
func (c *Cache) Reset() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.gen.Add(1)
		sh.m.Range(func(k, _ any) bool {
			sh.m.Delete(k)
			c.invals.Add(1)
			metricInvalidations.Inc()
			return true
		})
		sh.mu.Unlock()
	}
}

// Len counts the cached entries across all stripes (tests and
// introspection; O(entries)).
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].m.Range(func(_, _ any) bool { n++; return true })
	}
	return n
}

// Stats returns this cache's cumulative hit, miss, and invalidation
// counts. The process-wide readcache_*_total metrics aggregate across
// caches; these are per-instance.
func (c *Cache) Stats() (hits, misses, invalidations uint64) {
	return c.hits.Load(), c.misses.Load(), c.invals.Load()
}
