package anonymity

import (
	"fmt"
	"testing"
	"time"

	"opinions/internal/interaction"
	"opinions/internal/stats"
)

var t0 = time.Date(2016, 3, 1, 19, 0, 0, 0, time.UTC)

func upload(id string) Upload {
	return Upload{AnonID: id, Entity: "yelp/a", Record: &interaction.Record{Entity: "yelp/a", Start: t0}}
}

func TestMixDelaysWithinWindow(t *testing.T) {
	m := NewMix(time.Hour, 4*time.Hour, stats.NewRNG(1))
	for i := 0; i < 100; i++ {
		m.Submit(upload(fmt.Sprintf("u%d", i)), t0)
	}
	if got := m.Flush(t0.Add(59 * time.Minute)); len(got) != 0 {
		t.Fatalf("released %d uploads before min delay", len(got))
	}
	mid := m.Flush(t0.Add(2 * time.Hour))
	rest := m.Flush(t0.Add(4 * time.Hour))
	if len(mid) == 0 || len(rest) == 0 {
		t.Fatalf("delays not spread: mid=%d rest=%d", len(mid), len(rest))
	}
	if len(mid)+len(rest) != 100 {
		t.Fatalf("lost uploads: %d+%d", len(mid), len(rest))
	}
	if m.Pending() != 0 {
		t.Fatalf("pending = %d after full flush", m.Pending())
	}
}

func TestMixShufflesOrder(t *testing.T) {
	m := NewMix(0, time.Minute, stats.NewRNG(3))
	const n = 50
	for i := 0; i < n; i++ {
		m.Submit(upload(fmt.Sprintf("u%02d", i)), t0)
	}
	out := m.Flush(t0.Add(2 * time.Minute))
	if len(out) != n {
		t.Fatalf("flushed %d", len(out))
	}
	inOrder := true
	for i := 1; i < n; i++ {
		if out[i].AnonID < out[i-1].AnonID {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Fatal("flush preserved submission order; not shuffled")
	}
}

func TestMixDefaults(t *testing.T) {
	m := NewMix(-time.Hour, 0, stats.NewRNG(1))
	m.Submit(upload("a"), t0)
	// Default max delay is 6h; everything must be out by then.
	if got := m.Flush(t0.Add(6*time.Hour + time.Second)); len(got) != 1 {
		t.Fatalf("flushed %d", len(got))
	}
}

func TestMixMinAboveMax(t *testing.T) {
	m := NewMix(10*time.Hour, time.Hour, stats.NewRNG(1))
	m.Submit(upload("a"), t0)
	if got := m.Flush(t0.Add(time.Hour)); len(got) != 1 {
		t.Fatalf("min>max not clamped: flushed %d", len(got))
	}
}

func TestLinkScore(t *testing.T) {
	a := []time.Time{t0, t0.Add(10 * time.Minute), t0.Add(20 * time.Minute)}
	b := []time.Time{t0.Add(30 * time.Second), t0.Add(10*time.Minute + 45*time.Second)}
	s := LinkScore(a, b, time.Minute)
	if s < 0.65 || s > 0.67 {
		t.Fatalf("LinkScore = %v, want 2/3", s)
	}
	if LinkScore(nil, b, time.Minute) != 0 || LinkScore(a, nil, time.Minute) != 0 {
		t.Fatal("empty traces should score 0")
	}
}

func TestAdversaryLinksUnmixedChannels(t *testing.T) {
	// Without mixing, a user's channels emit at nearly the same times:
	// the adversary should link them.
	var traces []ChannelTrace
	var owners []string
	rng := stats.NewRNG(5)
	for u := 0; u < 10; u++ {
		// Each user uploads for 2 entities at correlated times.
		base := t0.Add(time.Duration(u) * 13 * time.Hour)
		var times1, times2 []time.Time
		for k := 0; k < 8; k++ {
			ti := base.Add(time.Duration(k) * 26 * time.Hour)
			times1 = append(times1, ti)
			times2 = append(times2, ti.Add(time.Duration(rng.Intn(30))*time.Second))
		}
		traces = append(traces,
			ChannelTrace{AnonID: fmt.Sprintf("u%d-e1", u), Arrivals: times1},
			ChannelTrace{AnonID: fmt.Sprintf("u%d-e2", u), Arrivals: times2})
		owners = append(owners, fmt.Sprintf("u%d", u), fmt.Sprintf("u%d", u))
	}
	adv := Adversary{Epsilon: 2 * time.Minute}
	acc := Accuracy(adv.LinkAll(traces), owners)
	if acc < 0.9 {
		t.Fatalf("adversary accuracy on unmixed channels = %v, want ≥0.9", acc)
	}
}

func TestAdversaryDefeatedByMixing(t *testing.T) {
	// With randomized multi-hour delays, the same correlated workload
	// should no longer be linkable.
	rng := stats.NewRNG(7)
	var traces []ChannelTrace
	var owners []string
	for u := 0; u < 10; u++ {
		base := t0.Add(time.Duration(u) * 13 * time.Hour)
		var times1, times2 []time.Time
		for k := 0; k < 8; k++ {
			ti := base.Add(time.Duration(k) * 26 * time.Hour)
			d1 := time.Duration(rng.Float64() * float64(6*time.Hour))
			d2 := time.Duration(rng.Float64() * float64(6*time.Hour))
			times1 = append(times1, ti.Add(d1))
			times2 = append(times2, ti.Add(d2))
		}
		traces = append(traces,
			ChannelTrace{AnonID: fmt.Sprintf("u%d-e1", u), Arrivals: times1},
			ChannelTrace{AnonID: fmt.Sprintf("u%d-e2", u), Arrivals: times2})
		owners = append(owners, fmt.Sprintf("u%d", u), fmt.Sprintf("u%d", u))
	}
	adv := Adversary{Epsilon: 2 * time.Minute}
	acc := Accuracy(adv.LinkAll(traces), owners)
	if acc > 0.4 {
		t.Fatalf("adversary accuracy on mixed channels = %v, want low", acc)
	}
}

func TestAccuracyEmpty(t *testing.T) {
	if Accuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy not 0")
	}
}

func TestAdversaryNoMatchIsSafe(t *testing.T) {
	traces := []ChannelTrace{
		{AnonID: "a", Arrivals: []time.Time{t0}},
		{AnonID: "b", Arrivals: []time.Time{t0.Add(100 * time.Hour)}},
	}
	links := Adversary{}.LinkAll(traces)
	if links[0] != -1 || links[1] != -1 {
		t.Fatalf("links = %v, want no matches", links)
	}
}
