// Package anonymity implements the upload discipline of §4.2: every
// inference travels to the RSP on an independent anonymous channel, one
// per (user, entity), and uploads are delayed and batched so arrival
// timing reveals nothing ("since there is no need for real-time
// dissemination ... an RSP's app can upload all of its inferences
// asynchronously, thereby preventing timing attacks").
//
// The paper assumes the underlying anonymity network makes two channels
// unlinkable; this package supplies the discipline *around* that network
// — per-channel isolation, randomized delay, batch shuffling — plus a
// linkage adversary used by experiment E4 to verify that the discipline
// actually defeats timing correlation.
package anonymity

import (
	"crypto/rand"
	"encoding/hex"
	"sort"
	"time"

	"opinions/internal/blindsig"
	"opinions/internal/interaction"
	"opinions/internal/stats"
)

// Upload is one item in flight to the RSP on an anonymous channel: a
// detected interaction record, an inferred opinion, or both. It carries
// the anonymous history ID, the entity, a one-time upload token, an
// idempotency key — and deliberately nothing else.
type Upload struct {
	AnonID string
	Entity string
	// Record is a detected interaction to append to the anonymous
	// history (nil for opinion-only uploads).
	Record *interaction.Record
	// Rating is an inferred opinion in [0, 5] (nil for record uploads).
	Rating *float64
	Token  blindsig.Token
	// Key is the upload's idempotency key, stamped once at creation and
	// kept stable across retries, spooling, and process restarts, so the
	// server can recognize a redelivery of an already-applied upload and
	// not count the opinion twice. It is fresh randomness — unlinkable to
	// the device, the entity, or any other upload — so it leaks nothing
	// beyond the AnonID it travels with.
	Key string
}

// NewUploadKey draws a fresh idempotency key. Keys must be globally
// unique across process restarts, so they come from crypto/rand rather
// than the agent's deterministic stream: a reseeded RNG would reissue
// the first process's keys and the server would silently drop the
// second process's genuinely new uploads as replays.
func NewUploadKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; an empty key
		// degrades to pre-idempotency (at-least-once) behaviour rather
		// than panicking the agent.
		return ""
	}
	return hex.EncodeToString(b[:])
}

// Mix delays and shuffles uploads. Each submitted upload is assigned a
// uniformly random delay in [MinDelay, MaxDelay]; Flush releases the
// uploads whose delay has elapsed, in shuffled order. Mix is not safe
// for concurrent use; the client agent owns it.
type Mix struct {
	minDelay time.Duration
	maxDelay time.Duration
	rng      *stats.RNG

	pending []pendingUpload
}

type pendingUpload struct {
	due time.Time
	u   Upload
}

// NewMix returns a mix with the given delay window. A zero maxDelay
// defaults to 6 hours — long enough to smear a dinner-time inference
// across the evening, short enough that recommendations stay fresh.
func NewMix(minDelay, maxDelay time.Duration, rng *stats.RNG) *Mix {
	if maxDelay <= 0 {
		maxDelay = 6 * time.Hour
	}
	if minDelay < 0 {
		minDelay = 0
	}
	if minDelay > maxDelay {
		minDelay = maxDelay
	}
	return &Mix{minDelay: minDelay, maxDelay: maxDelay, rng: rng}
}

// Submit queues an upload at time now.
func (m *Mix) Submit(u Upload, now time.Time) {
	window := m.maxDelay - m.minDelay
	delay := m.minDelay
	if window > 0 {
		delay += time.Duration(m.rng.Float64() * float64(window))
	}
	m.pending = append(m.pending, pendingUpload{due: now.Add(delay), u: u})
}

// Flush returns every upload whose delay has elapsed as of now, in
// shuffled order, and removes them from the queue.
func (m *Mix) Flush(now time.Time) []Upload {
	var due []Upload
	kept := m.pending[:0]
	for _, p := range m.pending {
		if !p.due.After(now) {
			due = append(due, p.u)
		} else {
			kept = append(kept, p)
		}
	}
	m.pending = kept
	m.rng.Shuffle(len(due), func(i, j int) { due[i], due[j] = due[j], due[i] })
	return due
}

// Pending returns the number of queued uploads.
func (m *Mix) Pending() int { return len(m.pending) }

// Drain returns every queued upload regardless of remaining delay, in
// shuffled order, emptying the queue. Agents about to terminate use it
// to hand the queue to durable storage instead of losing it.
func (m *Mix) Drain() []Upload {
	out := make([]Upload, len(m.pending))
	for i, p := range m.pending {
		out[i] = p.u
	}
	m.pending = nil
	m.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// ---------------------------------------------------------------------
// Linkage adversary (evaluation harness, not a system component).
// ---------------------------------------------------------------------

// ChannelTrace is what a network observer sees of one anonymous channel:
// only arrival times, by construction.
type ChannelTrace struct {
	AnonID   string
	Arrivals []time.Time
}

// LinkScore measures temporal correlation between two channels: the
// fraction of arrivals on a that have an arrival on b within eps. A
// timing attack links channels whose score is high. Arrivals must be
// sorted ascending.
func LinkScore(a, b []time.Time, eps time.Duration) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	matched := 0
	for _, t := range a {
		i := sort.Search(len(b), func(i int) bool { return !b[i].Before(t) })
		ok := false
		if i < len(b) && b[i].Sub(t) <= eps {
			ok = true
		}
		if i > 0 && t.Sub(b[i-1]) <= eps {
			ok = true
		}
		if ok {
			matched++
		}
	}
	return float64(matched) / float64(len(a))
}

// Adversary attempts to pair up channels belonging to the same user by
// timing correlation. For each channel it picks the other channel with
// the highest link score; Accuracy is the fraction of channels whose
// best match truly belongs to the same user.
type Adversary struct {
	// Epsilon is the coincidence window (default 2 minutes, roughly the
	// spacing of a client's un-mixed uploads).
	Epsilon time.Duration
}

// LinkAll returns, for each channel index, the index of its best-scoring
// other channel (or -1 when every score is zero).
func (adv Adversary) LinkAll(traces []ChannelTrace) []int {
	eps := adv.Epsilon
	if eps <= 0 {
		eps = 2 * time.Minute
	}
	out := make([]int, len(traces))
	for i := range traces {
		best, bestScore := -1, 0.0
		for j := range traces {
			if i == j {
				continue
			}
			s := LinkScore(traces[i].Arrivals, traces[j].Arrivals, eps)
			if s > bestScore {
				best, bestScore = j, s
			}
		}
		out[i] = best
	}
	return out
}

// Accuracy scores a linking against ground truth ownership: owners[i] is
// the true user of channel i. A channel counts as compromised when its
// best match belongs to the same user. Channels with no match count as
// safe.
func Accuracy(links []int, owners []string) float64 {
	if len(links) == 0 {
		return 0
	}
	hit := 0
	for i, j := range links {
		if j >= 0 && owners[i] == owners[j] {
			hit++
		}
	}
	return float64(hit) / float64(len(links))
}
