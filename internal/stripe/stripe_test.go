package stripe

import (
	"fmt"
	"testing"
)

func TestIndexInRange(t *testing.T) {
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("yelp/entity-%d", i)
		if idx := Index(k); idx < 0 || idx >= NumShards {
			t.Fatalf("Index(%q) = %d outside [0, %d)", k, idx, NumShards)
		}
	}
}

func TestIndexStable(t *testing.T) {
	if Index("a") != Index("a") {
		t.Fatal("Index not deterministic")
	}
}

func TestIndexSpreads(t *testing.T) {
	// Entity-key-shaped inputs should hit a healthy fraction of the
	// shards; a degenerate hash would funnel everything into a few.
	hit := map[int]bool{}
	for i := 0; i < 1000; i++ {
		hit[Index(fmt.Sprintf("yelp/e%04d", i))] = true
	}
	if len(hit) < NumShards/2 {
		t.Fatalf("1000 keys hit only %d/%d shards", len(hit), NumShards)
	}
}
