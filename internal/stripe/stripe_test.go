package stripe

import (
	"fmt"
	"testing"
)

func TestIndexInRange(t *testing.T) {
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("yelp/entity-%d", i)
		if idx := Index(k); idx < 0 || idx >= NumShards {
			t.Fatalf("Index(%q) = %d outside [0, %d)", k, idx, NumShards)
		}
	}
}

func TestIndexStable(t *testing.T) {
	if Index("a") != Index("a") {
		t.Fatal("Index not deterministic")
	}
}

func TestIndexNMatchesIndexAtDefaultWidth(t *testing.T) {
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("yelp/e%04d", i)
		if IndexN(k, NumShards) != Index(k) {
			t.Fatalf("IndexN(%q, %d) = %d, Index = %d", k, NumShards, IndexN(k, NumShards), Index(k))
		}
	}
}

func TestIndexNInRange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 64, 100, 1024} {
		for i := 0; i < 2000; i++ {
			k := fmt.Sprintf("tripadvisor/e%05d", i)
			if idx := IndexN(k, n); idx < 0 || idx >= n {
				t.Fatalf("IndexN(%q, %d) = %d outside [0, %d)", k, n, idx, n)
			}
		}
	}
}

func TestIndexSpreads(t *testing.T) {
	// Entity-key-shaped inputs should hit a healthy fraction of the
	// shards; a degenerate hash would funnel everything into a few.
	hit := map[int]bool{}
	for i := 0; i < 1000; i++ {
		hit[Index(fmt.Sprintf("yelp/e%04d", i))] = true
	}
	if len(hit) < NumShards/2 {
		t.Fatalf("1000 keys hit only %d/%d shards", len(hit), NumShards)
	}
}

// TestIndexNDistributionUniform is the guard the sharded commit
// pipeline leans on: if the hash ever skewed, one WAL stripe would
// absorb a disproportionate share of commits and silently serialize
// the write path behind a single fsync lane again. A chi-square
// statistic over entity-key-shaped inputs bounds the skew for every
// stripe width the pipeline is likely to run at.
func TestIndexNDistributionUniform(t *testing.T) {
	const keys = 64000
	for _, n := range []int{2, 4, 8, 16, 64, 256} {
		counts := make([]int, n)
		for i := 0; i < keys; i++ {
			counts[IndexN(fmt.Sprintf("yelp/entity-%06d", i), n)]++
		}
		expected := float64(keys) / float64(n)
		var chi2 float64
		for s, c := range counts {
			d := float64(c) - expected
			chi2 += d * d / expected
			// No stripe may carry more than twice or less than half its
			// fair share — a direct bound on worst-case lane imbalance.
			if float64(c) > 2*expected || float64(c) < expected/2 {
				t.Fatalf("n=%d: stripe %d holds %d keys, fair share %.0f", n, s, c, expected)
			}
		}
		// For a uniform hash chi-square concentrates near its mean of
		// n-1 degrees of freedom; 2n is far outside any plausible
		// fluctuation at these sample sizes but catches real skew.
		if chi2 > 2*float64(n) {
			t.Fatalf("n=%d: chi-square %.1f over %d stripes (limit %.1f)", n, chi2, n, 2*float64(n))
		}
	}
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// TestIndexNRemapFraction measures how many keys change shard when the
// width changes and pins the result to the modulo-placement model the
// IndexN docs describe: a key stays put for min(n,m)/lcm(n,m) of the
// key space. This is the number a cluster operator reads before
// resizing a ring — doubling migrates half the corpus, and a width
// bump to a near-coprime count migrates nearly all of it.
func TestIndexNRemapFraction(t *testing.T) {
	const keys = 50000
	cases := []struct{ from, to int }{
		{64, 128}, // doubling: keep 1/2
		{3, 4},    // small ring growth: keep 3/12 = 1/4
		{64, 65},  // near-coprime: keep 64/4160 ≈ 1.5%
		{2, 3},    // smallest rings: keep 2/6 = 1/3
	}
	for _, tc := range cases {
		lcm := tc.from / gcd(tc.from, tc.to) * tc.to
		min := tc.from
		if tc.to < min {
			min = tc.to
		}
		wantKept := float64(min) / float64(lcm)
		kept := 0
		for i := 0; i < keys; i++ {
			k := fmt.Sprintf("yelp/entity-%06d", i)
			if IndexN(k, tc.from) == IndexN(k, tc.to) {
				kept++
			}
		}
		got := float64(kept) / keys
		// ±2 percentage points absorbs sampling noise at 50k keys while
		// still distinguishing 50% from 25% from 1.5%.
		if diff := got - wantKept; diff > 0.02 || diff < -0.02 {
			t.Fatalf("%d→%d: kept %.3f of keys, model predicts %.3f", tc.from, tc.to, got, wantKept)
		}
		// The churn direction every resize shares: a grown ring never
		// keeps more than the model's ceiling, so there is no "cheap"
		// resize hiding in the hash.
		if remapped := 1 - got; remapped < 0.4 && tc.from != tc.to {
			t.Fatalf("%d→%d: only %.3f of keys moved — modulo placement cannot be this gentle", tc.from, tc.to, remapped)
		}
	}
}
