// Package stripe is the shard-selection helper behind the N-way
// striped locks of the read state (reviews, inferred opinions,
// anonymous histories). Striping by entity key lets searches and
// review reads proceed on one shard while an upload mutates another,
// instead of every handler serializing behind a single store-wide
// RWMutex.
//
// The shard count is a fixed power of two so selection is one hash
// and one mask, and so every striped store agrees on the same
// geometry (which keeps lock-ordering reasoning local to each store).
package stripe

// NumShards is the stripe width shared by all striped stores. 64 is
// comfortably above the server's max-in-flight default (256 requests
// over 64 stripes keeps expected queue depth per stripe low) while
// keeping per-store fixed overhead at a few KB.
const NumShards = 64

// fnv1a constants (64-bit).
const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// Index maps a key to its shard in [0, NumShards).
func Index(key string) int {
	var h uint64 = offset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h & (NumShards - 1))
}
