// Package stripe is the shard-selection helper behind the N-way
// striped locks of the read state (reviews, inferred opinions,
// anonymous histories) and behind the sharded commit pipeline's
// per-stripe WAL lanes. Striping by entity key lets searches and
// review reads proceed on one shard while an upload mutates another,
// and lets commits to different entities fsync on different lanes,
// instead of every handler serializing behind a single store-wide
// lock.
//
// The hash is FNV-1a over the key; every consumer selects a shard
// through this package so read stores and the commit pipeline agree on
// one routing function (geometries may differ — the read stores are
// fixed at NumShards, the commit pipeline is configurable — but a key
// always hashes the same way).
package stripe

// NumShards is the stripe width shared by all striped read stores and
// the default commit-stripe count. 64 is comfortably above the
// server's max-in-flight default (256 requests over 64 stripes keeps
// expected queue depth per stripe low) while keeping per-store fixed
// overhead at a few KB.
const NumShards = 64

// fnv1a constants (64-bit).
const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// Hash is the raw 64-bit FNV-1a of key — the one hash every striped
// structure derives its shard index from.
func Hash(key string) uint64 {
	var h uint64 = offset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// Index maps a key to its shard in [0, NumShards).
func Index(key string) int {
	return int(Hash(key) & (NumShards - 1))
}

// IndexN maps a key to a shard in [0, n) for an arbitrary positive
// stripe count. Power-of-two counts use the same mask selection as
// Index (so IndexN(key, NumShards) == Index(key)); other counts fall
// back to a modulo of the full hash.
//
// Remap churn: IndexN is modulo placement, not a consistent hash.
// Changing the width from n to m keeps a key in place only when its
// hash agrees mod both, which happens for min(n,m)/lcm(n,m) of keys —
// doubling (64→128) moves half of them, and near-coprime widths
// (64→65 keeps 64/4160 ≈ 1.5%) move nearly everything. That is why
// the cluster ring treats its partition count as fixed at deployment:
// growing a cluster is a resharding event where almost every entity
// migrates, not an incremental rebalance. The striped read stores and
// commit lanes inside one node never see this — their widths are
// per-process constants and the structures rebuild from the log on
// restart. TestIndexNRemapFraction pins the measured churn to this
// model.
func IndexN(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := Hash(key)
	if n&(n-1) == 0 {
		return int(h & uint64(n-1))
	}
	return int(h % uint64(n))
}
