package mapping

import (
	"testing"

	"opinions/internal/geo"
	"opinions/internal/world"
)

func testEntities() []*world.Entity {
	base := geo.Point{Lat: 42.28, Lon: -83.74}
	return []*world.Entity{
		{ID: "r1", Service: world.Yelp, Category: "restaurant", Loc: base, Phone: "+17345550001", PriceLevel: 2},
		{ID: "r2", Service: world.Yelp, Category: "restaurant", Loc: geo.Offset(base, 150, 0), Phone: "+17345550002", PriceLevel: 2},
		{ID: "r3", Service: world.Yelp, Category: "restaurant", Loc: geo.Offset(base, 400, 0), Phone: "+17345550003", PriceLevel: 4},
		{ID: "d1", Service: world.Yelp, Category: "dentist", Loc: geo.Offset(base, 0, 300), Phone: "+17345550004", PriceLevel: 2},
	}
}

func TestResolvePointNearest(t *testing.T) {
	r := NewResolver(testEntities())
	base := geo.Point{Lat: 42.28, Lon: -83.74}
	key, ok := r.ResolvePoint(geo.Offset(base, 20, 0), 100)
	if !ok || key != "yelp/r1" {
		t.Fatalf("ResolvePoint = %q, %v", key, ok)
	}
	if _, ok := r.ResolvePoint(geo.Offset(base, 5000, 5000), 100); ok {
		t.Fatal("resolved a point far from everything")
	}
}

func TestResolvePhone(t *testing.T) {
	r := NewResolver(testEntities())
	key, ok := r.ResolvePhone("+17345550004")
	if !ok || key != "yelp/d1" {
		t.Fatalf("ResolvePhone = %q, %v", key, ok)
	}
	if _, ok := r.ResolvePhone("+10000000000"); ok {
		t.Fatal("resolved an unknown phone")
	}
}

func TestResolveMerchant(t *testing.T) {
	r := NewResolver(testEntities())
	key, ok := r.ResolveMerchant("yelp/r2")
	if !ok || key != "yelp/r2" {
		t.Fatalf("ResolveMerchant = %q, %v", key, ok)
	}
	if _, ok := r.ResolveMerchant("stripe*unknown"); ok {
		t.Fatal("resolved unknown merchant")
	}
}

func TestSimilarNearby(t *testing.T) {
	r := NewResolver(testEntities())
	// r1 (price 2): r2 within 150m is similar; r3 (price 4) is not
	// similar; d1 is a different category.
	if n := r.SimilarNearby("yelp/r1", 500); n != 1 {
		t.Fatalf("SimilarNearby = %d, want 1", n)
	}
	if n := r.SimilarNearby("yelp/r1", 50); n != 0 {
		t.Fatalf("SimilarNearby small radius = %d, want 0", n)
	}
	if n := r.SimilarNearby("nosuch/e", 500); n != 0 {
		t.Fatalf("SimilarNearby unknown = %d", n)
	}
}

func TestEntityLookup(t *testing.T) {
	r := NewResolver(testEntities())
	if e := r.Entity("yelp/r1"); e == nil || e.ID != "r1" {
		t.Fatalf("Entity = %+v", e)
	}
	if e := r.Entity("nope"); e != nil {
		t.Fatal("Entity invented an entry")
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestResolverWithCityDirectory(t *testing.T) {
	city := world.BuildCity(world.CityConfig{Seed: 1, NumUsers: 10})
	r := NewResolver(city.Entities)
	if r.Len() != len(city.Entities) {
		t.Fatalf("Len = %d, want %d", r.Len(), len(city.Entities))
	}
	for _, e := range city.Entities[:20] {
		key, ok := r.ResolvePoint(e.Loc, 10)
		if !ok {
			t.Fatalf("entity %s not resolvable at its own location", e.ID)
		}
		_ = key // co-located entities may resolve to a tied neighbor
		if got, ok := r.ResolvePhone(e.Phone); !ok || got != e.Key() {
			t.Fatalf("phone resolution failed for %s", e.ID)
		}
	}
}
