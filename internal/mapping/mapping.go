// Package mapping resolves the sensitive raw inputs an RSP client
// observes — location fixes, dialled phone numbers, card-payment
// merchants — to the entities the RSP knows about.
//
// Per §3.1, this mapping happens *locally on the device*: "An app can
// then map these sensitive inputs to the corresponding entities (e.g.,
// map location to restaurant or phone number to dentist)." The Resolver
// is therefore the on-device copy of the RSP's point-of-interest
// directory; raw locations and numbers never leave the device.
package mapping

import (
	"opinions/internal/geo"
	"opinions/internal/world"
)

// Resolver maps raw observations to entity keys.
type Resolver struct {
	index   *geo.Index
	byKey   map[string]*world.Entity
	byPhone map[string]string
}

// NewResolver builds a resolver over the given entity directory.
func NewResolver(entities []*world.Entity) *Resolver {
	r := &Resolver{
		index:   geo.NewIndex(250),
		byKey:   make(map[string]*world.Entity, len(entities)),
		byPhone: make(map[string]string, len(entities)),
	}
	for _, e := range entities {
		key := e.Key()
		r.byKey[key] = e
		r.index.Insert(key, e.Loc)
		if e.Phone != "" {
			r.byPhone[e.Phone] = key
		}
	}
	return r
}

// Len returns the number of entities in the directory.
func (r *Resolver) Len() int { return len(r.byKey) }

// Entity returns the directory entry for key, or nil.
func (r *Resolver) Entity(key string) *world.Entity { return r.byKey[key] }

// ResolvePoint returns the key of the entity nearest to p within
// maxRadius meters, or ("", false) when nothing is close enough.
func (r *Resolver) ResolvePoint(p geo.Point, maxRadius float64) (string, bool) {
	n, ok := r.index.Nearest(p, maxRadius)
	if !ok {
		return "", false
	}
	return n.ID, true
}

// ResolvePhone returns the key of the entity owning the phone number, or
// ("", false).
func (r *Resolver) ResolvePhone(phone string) (string, bool) {
	k, ok := r.byPhone[phone]
	return k, ok
}

// ResolveMerchant returns the key of the entity matching a payment
// merchant descriptor. In this synthetic substrate the descriptor is the
// entity key itself; the indirection exists so a fuzzier matcher can
// replace it without touching callers.
func (r *Resolver) ResolveMerchant(descriptor string) (string, bool) {
	_, ok := r.byKey[descriptor]
	if !ok {
		return "", false
	}
	return descriptor, true
}

// SimilarNearby counts entities similar to the one identified by key
// (same category, comparable price) within radius meters — the §4.1
// choice-set feature: "the number of other similar options from among
// which the user selected the entity".
func (r *Resolver) SimilarNearby(key string, radius float64) int {
	e := r.byKey[key]
	if e == nil {
		return 0
	}
	n := 0
	for _, nb := range r.index.Within(e.Loc, radius) {
		if nb.ID == key {
			continue
		}
		if other := r.byKey[nb.ID]; other != nil && e.SimilarTo(other) {
			n++
		}
	}
	return n
}
