// Package obs is the observability substrate for the reproduction: a
// dependency-free metrics registry (atomic counters, gauges, and
// fixed-bucket latency histograms, all safe under -race), Prometheus
// text-format exposition, lightweight 128-bit request tracing, and an
// in-memory ring of recent request spans.
//
// The registry follows the expvar/prometheus default-registry idiom:
// packages declare their instruments once against Default at init time
// and hold the returned handles, so the hot path is a single atomic
// add — no lock, no map lookup, no allocation. Registration is
// get-or-create: asking twice for the same name returns the same
// instrument, which is what lets independently initialized packages
// (and tests) share one registry safely.
//
// Tracing is deliberately minimal: a trace ID is 16 bytes of
// client-drawn randomness, hex-encoded, carried on the X-Trace-Id
// header and in a context value. It identifies one HTTP exchange and
// nothing else — see DESIGN.md "Observability" for why trace IDs must
// never be attached to uploads before the anonymity mix.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is
// ready to use; all methods are safe for concurrent use and lock-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down (queue depths, in-flight
// requests). Safe for concurrent use and lock-free.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by delta (negative to decrease). Additive
// updates compose across instances: N spools each adding their own
// put/take deltas yield the aggregate depth.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram in the Prometheus style:
// cumulative-on-exposition buckets with inclusive upper bounds, plus a
// running sum and count. Observe is lock-free: one atomic add into the
// bucket, one into the count, and a CAS loop folding the sample into
// the float64 sum.
type Histogram struct {
	bounds []float64 // ascending upper bounds; the +Inf bucket is implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// DefBuckets is the default latency schedule in seconds: 1ms to 10s,
// roughly geometric — wide enough for an injected-chaos tail, fine
// enough to see a cache hit.
var DefBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// First bucket whose bound is >= v; equal goes in (le is inclusive).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Buckets returns the upper bounds and the per-bucket (non-cumulative)
// counts; the final count is the +Inf bucket.
func (h *Histogram) Buckets() ([]float64, []uint64) {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return h.bounds, out
}

// series is one labeled instance inside a family.
type series struct {
	labelValues []string
	metric      any // *Counter, *Gauge, or *Histogram
}

// family is every series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   string // "counter", "gauge", "histogram"
	labels []string
	bounds []float64      // histograms only
	fn     func() float64 // gauge funcs only

	mu     sync.RWMutex
	series map[string]*series
}

func (f *family) get(values []string) (*series, bool) {
	key := labelKey(values)
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	return s, ok
}

func (f *family) getOrCreate(values []string, mk func() any) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	if s, ok := f.get(values); ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	key := labelKey(values)
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labelValues: append([]string(nil), values...), metric: mk()}
	f.series[key] = s
	return s
}

func labelKey(values []string) string { return strings.Join(values, "\xff") }

// Registry holds metric families. NewRegistry for an isolated one;
// most code uses Default.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: map[string]*family{}} }

// Default is the process-wide registry; package-level instruments
// register here and cmd binaries expose it.
var Default = NewRegistry()

// lookup returns the family for name, creating it on first use and
// panicking on a redefinition with a different shape — that is a
// programming error, not a runtime condition.
func (r *Registry) lookup(name, help, kind string, labels []string, bounds []float64, fn func() float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q redefined as %s(%d labels), was %s(%d labels)",
				name, kind, len(labels), f.kind, len(f.labels)))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %q redefined with labels %v, was %v", name, labels, f.labels))
			}
		}
		return f
	}
	f := &family{
		name:   name,
		help:   help,
		kind:   kind,
		labels: append([]string(nil), labels...),
		bounds: bounds,
		fn:     fn,
		series: map[string]*series{},
	}
	r.fams[name] = f
	return f
}

// Counter returns the unlabeled counter with this name, creating it on
// first use.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, "counter", nil, nil, nil)
	return f.getOrCreate(nil, func() any { return &Counter{} }).metric.(*Counter)
}

// CounterVec declares a counter family with labels; With resolves one
// series.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.lookup(name, help, "counter", labels, nil, nil)}
}

// CounterVec is a labeled counter family.
type CounterVec struct{ fam *family }

// With returns the counter for the given label values (one per
// declared label name, in order), creating the series on first use.
// Hold the result on hot paths — the lookup takes a read lock.
func (v *CounterVec) With(values ...string) *Counter {
	return v.fam.getOrCreate(values, func() any { return &Counter{} }).metric.(*Counter)
}

// Gauge returns the unlabeled gauge with this name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, "gauge", nil, nil, nil)
	return f.getOrCreate(nil, func() any { return &Gauge{} }).metric.(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed at exposition
// time — for values that are cheaper to derive than to maintain
// (goroutine counts, heap bytes, oldest-entry age).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.lookup(name, help, "gauge", nil, nil, fn)
}

// GaugeVec declares a gauge family with labels; With resolves one
// series. The sharded commit pipeline uses it for per-stripe values
// (active segment size per WAL lane).
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.lookup(name, help, "gauge", labels, nil, nil)}
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ fam *family }

// With returns the gauge for the given label values, creating the
// series on first use. Hold the result on hot paths.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.fam.getOrCreate(values, func() any { return &Gauge{} }).metric.(*Gauge)
}

// Histogram returns the unlabeled histogram with this name. bounds are
// upper bucket bounds in ascending order (nil = DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	f := r.lookup(name, help, "histogram", nil, bounds, nil)
	return f.getOrCreate(nil, func() any { return newHistogram(f.bounds) }).metric.(*Histogram)
}

// HistogramVec declares a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &HistogramVec{fam: r.lookup(name, help, "histogram", labels, bounds, nil)}
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ fam *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	f := v.fam
	return f.getOrCreate(values, func() any { return newHistogram(f.bounds) }).metric.(*Histogram)
}

// Snapshot returns a flat name→value map of every series, for
// /debug/vars. Counters and gauges map to numbers; histograms to
// {count, sum} objects. Labeled series render as name{k="v",...}.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	for _, f := range r.families() {
		if f.fn != nil {
			out[f.name] = f.fn()
			continue
		}
		f.mu.RLock()
		for _, s := range f.series {
			key := f.name
			if len(f.labels) > 0 {
				key += renderLabels(f.labels, s.labelValues, "", "")
			}
			switch m := s.metric.(type) {
			case *Counter:
				out[key] = m.Value()
			case *Gauge:
				out[key] = m.Value()
			case *Histogram:
				out[key] = map[string]any{"count": m.Count(), "sum": m.Sum()}
			}
		}
		f.mu.RUnlock()
	}
	return out
}

// families returns the families sorted by name.
func (r *Registry) families() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}
