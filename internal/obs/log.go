package obs

import (
	"context"
	"io"
	"log/slog"
)

// traceLogHandler is a slog.Handler that stamps the context's trace ID
// onto every record, so any log line emitted while serving a traced
// request carries trace_id=... without the call site knowing about
// tracing at all.
type traceLogHandler struct{ inner slog.Handler }

// NewTraceLogHandler wraps any slog handler with trace-ID injection.
func NewTraceLogHandler(inner slog.Handler) slog.Handler {
	return &traceLogHandler{inner: inner}
}

func (h *traceLogHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *traceLogHandler) Handle(ctx context.Context, rec slog.Record) error {
	if id, ok := TraceFrom(ctx); ok {
		rec = rec.Clone()
		rec.AddAttrs(slog.String("trace_id", string(id)))
	}
	return h.inner.Handle(ctx, rec)
}

func (h *traceLogHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &traceLogHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h *traceLogHandler) WithGroup(name string) slog.Handler {
	return &traceLogHandler{inner: h.inner.WithGroup(name)}
}

// NewLogger is the shared logger constructor for the cmd binaries: a
// text slog.Logger writing to w, wrapped so trace IDs in the request
// context surface automatically.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(NewTraceLogHandler(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})))
}
