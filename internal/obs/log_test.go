package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTraceLogHandlerInjectsTraceID(t *testing.T) {
	var buf bytes.Buffer
	logger := NewLogger(&buf, slog.LevelInfo)
	id := NewTraceID()
	ctx := WithTrace(context.Background(), id)

	logger.InfoContext(ctx, "hello", "k", "v")
	line := buf.String()
	if !strings.Contains(line, "trace_id="+string(id)) {
		t.Fatalf("log line %q missing trace_id", line)
	}

	buf.Reset()
	logger.Info("no trace here")
	if strings.Contains(buf.String(), "trace_id=") {
		t.Fatalf("untraced log line %q has trace_id", buf.String())
	}
}

func TestTraceLogHandlerSurvivesWithAttrsAndGroups(t *testing.T) {
	var buf bytes.Buffer
	logger := NewLogger(&buf, slog.LevelInfo).With("component", "spool").WithGroup("g")
	id := NewTraceID()
	logger.InfoContext(WithTrace(context.Background(), id), "msg", "k", 1)
	line := buf.String()
	if !strings.Contains(line, "component=spool") {
		t.Fatalf("line %q lost WithAttrs", line)
	}
	if !strings.Contains(line, string(id)) {
		t.Fatalf("line %q lost trace_id through With/WithGroup", line)
	}
}

func TestTraceLogHandlerLevelGate(t *testing.T) {
	var buf bytes.Buffer
	logger := NewLogger(&buf, slog.LevelWarn)
	logger.Info("should be dropped")
	if buf.Len() != 0 {
		t.Fatalf("info leaked through warn gate: %q", buf.String())
	}
	logger.Warn("should pass")
	if buf.Len() == 0 {
		t.Fatal("warn did not pass")
	}
}

func TestSpansHandlerJSON(t *testing.T) {
	ring := NewSpanRing(8)
	id := NewTraceID()
	ring.Record(Span{Trace: id, Method: "POST", Path: "/api/upload", Status: 202, Start: time.Now(), Duration: time.Millisecond})
	ring.Record(Span{Trace: NewTraceID(), Method: "GET", Path: "/api/meta", Status: 200})

	rec := httptest.NewRecorder()
	ring.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/requests", nil))
	var out struct {
		Total uint64 `json:"total"`
		Spans []Span `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("not JSON: %v (%q)", err, rec.Body.String())
	}
	if out.Total != 2 || len(out.Spans) != 2 {
		t.Fatalf("total=%d spans=%d, want 2/2", out.Total, len(out.Spans))
	}

	// Filtered by trace.
	rec = httptest.NewRecorder()
	ring.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/requests?trace="+string(id), nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Spans) != 1 || out.Spans[0].Trace != id {
		t.Fatalf("filter returned %+v", out.Spans)
	}

	// Garbage trace ids are rejected, not reflected.
	rec = httptest.NewRecorder()
	ring.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/requests?trace=zzz", nil))
	if rec.Code != 400 {
		t.Fatalf("bad trace id answered %d, want 400", rec.Code)
	}
}

func TestRegisterProcessMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterProcessMetrics(r)
	snap := r.Snapshot()
	if v, ok := snap["go_goroutines"].(float64); !ok || v < 1 {
		t.Fatalf("go_goroutines = %v", snap["go_goroutines"])
	}
	if v, ok := snap["go_heap_alloc_bytes"].(float64); !ok || v <= 0 {
		t.Fatalf("go_heap_alloc_bytes = %v", snap["go_heap_alloc_bytes"])
	}
}
