package obs

import (
	"encoding/json"
	"net/http"
	"runtime"
	"time"
)

// Handler serves the ring as JSON at /debug/requests: newest
// first, optionally filtered with ?trace=<id>.
func (r *SpanRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		spans := r.Snapshot()
		if q := req.URL.Query().Get("trace"); q != "" {
			id, ok := ParseTraceID(q)
			if !ok {
				http.Error(w, "bad trace id", http.StatusBadRequest)
				return
			}
			filtered := spans[:0]
			for _, s := range spans {
				if s.Trace == id {
					filtered = append(filtered, s)
				}
			}
			spans = filtered
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Total uint64 `json:"total"`
			Spans []Span `json:"spans"`
		}{Total: r.Total(), Spans: spans})
	})
}

// RegisterProcessMetrics adds runtime self-observation gauges
// (goroutines, heap bytes, GC cycles, uptime) to the registry —
// evaluated at scrape time, costing nothing between scrapes.
func RegisterProcessMetrics(r *Registry) {
	start := time.Now()
	r.GaugeFunc("process_uptime_seconds", "Seconds since the process registered its metrics.",
		func() float64 { return time.Since(start).Seconds() })
	r.GaugeFunc("go_goroutines", "Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.HeapAlloc)
		})
	r.GaugeFunc("go_gc_cycles_total", "Completed GC cycles.",
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.NumGC)
		})
}
