package obs

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestNewTraceIDFormat(t *testing.T) {
	seen := map[TraceID]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if len(id) != 32 {
			t.Fatalf("trace id %q has length %d", id, len(id))
		}
		if _, ok := ParseTraceID(string(id)); !ok {
			t.Fatalf("generated id %q does not parse", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
	}
}

func TestParseTraceID(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{strings.Repeat("a", 32), true},
		{strings.Repeat("A", 32), true}, // uppercase accepted, normalized
		{strings.Repeat("a", 31), false},
		{strings.Repeat("a", 33), false},
		{strings.Repeat("g", 32), false},
		{"", false},
		{strings.Repeat("a", 16) + "\"><script>inject", false},
	}
	for _, c := range cases {
		id, ok := ParseTraceID(c.in)
		if ok != c.ok {
			t.Fatalf("ParseTraceID(%q) ok=%v, want %v", c.in, ok, c.ok)
		}
		if ok && string(id) != strings.ToLower(c.in) {
			t.Fatalf("ParseTraceID(%q) = %q, want normalized lowercase", c.in, id)
		}
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	if _, ok := TraceFrom(context.Background()); ok {
		t.Fatal("empty context claims a trace")
	}
	id := NewTraceID()
	ctx := WithTrace(context.Background(), id)
	got, ok := TraceFrom(ctx)
	if !ok || got != id {
		t.Fatalf("TraceFrom = %q, %v; want %q, true", got, ok, id)
	}
}

func TestSpanRingEvictsOldest(t *testing.T) {
	r := NewSpanRing(3)
	for i := 0; i < 5; i++ {
		r.Record(Span{Path: fmt.Sprintf("/p%d", i)})
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d, want 5", r.Total())
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("retained %d spans, want 3", len(snap))
	}
	// Newest first: p4, p3, p2.
	for i, want := range []string{"/p4", "/p3", "/p2"} {
		if snap[i].Path != want {
			t.Fatalf("snapshot[%d] = %q, want %q (snap %v)", i, snap[i].Path, want, snap)
		}
	}
}

func TestSpanRingFind(t *testing.T) {
	r := NewSpanRing(4)
	id := NewTraceID()
	r.Record(Span{Trace: NewTraceID(), Path: "/other"})
	r.Record(Span{Trace: id, Path: "/mine", Status: 202, Duration: time.Millisecond})
	s, ok := r.Find(id)
	if !ok || s.Path != "/mine" || s.Status != 202 {
		t.Fatalf("Find = %+v, %v", s, ok)
	}
	if _, ok := r.Find(NewTraceID()); ok {
		t.Fatal("found a span for an unknown trace")
	}
}

func TestSpanRingConcurrent(t *testing.T) {
	r := NewSpanRing(16)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				r.Record(Span{Trace: "0123456789abcdef0123456789abcdef"})
				r.Snapshot()
			}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if r.Total() != 2000 {
		t.Fatalf("total = %d, want 2000", r.Total())
	}
}
