package obs

import (
	"io"
	"testing"
)

// BenchmarkCounterInc is the acceptance gate for registry overhead:
// one pre-resolved counter increment must stay ≤ 100ns/op (it is a
// single atomic add, ~5ns on current hardware).
func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkCounterIncParallel is the contended case every request
// goroutine hits on a busy server.
func BenchmarkCounterIncParallel(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

// BenchmarkCounterVecWith measures the per-request labeled lookup the
// RED middleware performs (read-locked map hit), not the per-increment
// cost.
func BenchmarkCounterVecWith(b *testing.B) {
	r := NewRegistry()
	v := r.CounterVec("bench_vec_total", "", "route", "method", "code")
	v.With("/api/upload", "POST", "202").Inc()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.With("/api/upload", "POST", "202").Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.017)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "", nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.017)
		}
	})
}

func BenchmarkGaugeAdd(b *testing.B) {
	r := NewRegistry()
	g := r.Gauge("bench_depth", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Add(1)
	}
}

func BenchmarkNewTraceID(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewTraceID()
	}
}

func BenchmarkSpanRingRecord(b *testing.B) {
	ring := NewSpanRing(256)
	s := Span{Trace: "0123456789abcdef0123456789abcdef", Method: "POST", Path: "/api/upload", Status: 202}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ring.Record(s)
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	v := r.CounterVec("bench_requests_total", "", "route", "code")
	for _, route := range []string{"/api/upload", "/api/search", "/api/meta", "/api/token"} {
		for _, code := range []string{"200", "202", "403", "503"} {
			v.With(route, code).Add(7)
		}
	}
	h := r.HistogramVec("bench_seconds", "", nil, "route")
	h.With("/api/upload").Observe(0.01)
	h.With("/api/search").Observe(0.02)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
