package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "help")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Inc()
	a.Add(2)
	if got := b.Value(); got != 3 {
		t.Fatalf("value = %d, want 3", got)
	}
}

func TestRedefinitionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("redefining a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestVecLabelArity(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("v_total", "", "a", "b")
	v.With("1", "2").Inc()
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	v.With("1")
}

func TestVecSeriesIndependent(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("v_total", "", "code")
	v.With("200").Add(5)
	v.With("500").Inc()
	if v.With("200").Value() != 5 || v.With("500").Value() != 1 {
		t.Fatalf("series not independent: 200=%d 500=%d", v.With("200").Value(), v.With("500").Value())
	}
}

func TestGaugeSetAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

// TestHistogramBucketBoundaries pins the le-inclusive bucket
// semantics: a sample exactly on a bound lands in that bound's bucket,
// matching Prometheus.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1.0, 1.5, 2.0, 5.0, 7.0} {
		h.Observe(v)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("bounds=%v counts=%v", bounds, counts)
	}
	// le=1: 0.5, 1.0 | le=2: 1.5, 2.0 | le=5: 5.0 | +Inf: 7.0
	want := []uint64{2, 2, 1, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, counts[i], w, counts)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+1.5+2+5+7; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestHistogramUnsortedBoundsSorted(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{5, 1, 2})
	h.Observe(1.5)
	bounds, counts := h.Buckets()
	if bounds[0] != 1 || bounds[1] != 2 || bounds[2] != 5 {
		t.Fatalf("bounds not sorted: %v", bounds)
	}
	if counts[1] != 1 {
		t.Fatalf("sample in wrong bucket: %v", counts)
	}
}

func TestGaugeFuncSnapshot(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("age_seconds", "", func() float64 { return 42.5 })
	snap := r.Snapshot()
	if got := snap["age_seconds"]; got != 42.5 {
		t.Fatalf("snapshot gauge func = %v, want 42.5", got)
	}
}

// TestRegistryConcurrency is the -race hammer: concurrent
// registration, series resolution, increments, observations, and
// exposition must be clean and lose no updates.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "")
	v := r.CounterVec("hammer_vec_total", "", "worker")
	h := r.Histogram("hammer_seconds", "", nil)
	g := r.Gauge("hammer_depth", "")

	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := string(rune('a' + w%4))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				v.With(label).Inc()
				h.Observe(float64(i%10) / 1000)
				g.Add(1)
				g.Add(-1)
				if i%500 == 0 {
					// Concurrent registration of the same instruments
					// and a full exposition pass mid-hammer.
					r.Counter("hammer_total", "")
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter lost updates: %d, want %d", got, workers*perWorker)
	}
	var vecTotal uint64
	for _, l := range []string{"a", "b", "c", "d"} {
		vecTotal += v.With(l).Value()
	}
	if vecTotal != workers*perWorker {
		t.Fatalf("vec lost updates: %d, want %d", vecTotal, workers*perWorker)
	}
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram lost observations: %d, want %d", h.Count(), workers*perWorker)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge should balance to 0, got %d", g.Value())
	}
}
