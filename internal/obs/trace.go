package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader is the HTTP header that carries a trace ID between
// client and server.
const TraceHeader = "X-Trace-Id"

// RetryHeader carries the client's 0-based attempt number, so the
// server can count how much of its traffic is retry pressure without
// the client identifying itself.
const RetryHeader = "X-Retry-Attempt"

// TraceID is a 128-bit request identifier, lowercase hex encoded (32
// characters). It is drawn fresh for each logical client call and
// shared by all retry attempts of that call, which is exactly what
// makes a retry storm legible in server logs.
type TraceID string

// fallback generates IDs when crypto/rand fails (it effectively never
// does; this keeps tracing non-fatal regardless).
var fallback struct {
	mu      sync.Mutex
	counter uint64
}

// NewTraceID returns a fresh random trace ID.
func NewTraceID() TraceID {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		fallback.mu.Lock()
		fallback.counter++
		n := fallback.counter
		fallback.mu.Unlock()
		return TraceID(fmt.Sprintf("%016x%016x", time.Now().UnixNano(), n))
	}
	return TraceID(hex.EncodeToString(b[:]))
}

// ParseTraceID validates a wire-received trace ID: exactly 32 hex
// characters. Anything else is rejected — a trace ID is reflected into
// logs and debug endpoints, so it must not be a free-text channel.
func ParseTraceID(s string) (TraceID, bool) {
	if len(s) != 32 {
		return "", false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f':
		case c >= 'A' && c <= 'F':
			// Normalize below.
		default:
			return "", false
		}
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return "", false
	}
	return TraceID(hex.EncodeToString(b)), true
}

type traceKey struct{}

// WithTrace returns a context carrying the trace ID.
func WithTrace(ctx context.Context, id TraceID) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceFrom extracts the trace ID from a context, if any.
func TraceFrom(ctx context.Context) (TraceID, bool) {
	id, ok := ctx.Value(traceKey{}).(TraceID)
	return id, ok
}

// Span is one completed server-side request: what arrived, what was
// answered, and how long it took.
type Span struct {
	Trace    TraceID       `json:"trace"`
	Method   string        `json:"method"`
	Path     string        `json:"path"`
	Status   int           `json:"status"`
	Bytes    int64         `json:"bytes"`
	Remote   string        `json:"remote"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
}

// SpanRing is a bounded ring of the most recent spans — enough to
// answer "what just happened" from /debug/requests without a tracing
// backend. Safe for concurrent use.
type SpanRing struct {
	mu    sync.Mutex
	buf   []Span
	next  int
	total atomic.Uint64
}

// NewSpanRing returns a ring holding the last n spans (default 256
// when n <= 0).
func NewSpanRing(n int) *SpanRing {
	if n <= 0 {
		n = 256
	}
	return &SpanRing{buf: make([]Span, 0, n)}
}

// Record appends a span, evicting the oldest when full.
func (r *SpanRing) Record(s Span) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
	} else {
		r.buf[r.next] = s
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.mu.Unlock()
	r.total.Add(1)
}

// Total reports how many spans were ever recorded (including evicted
// ones).
func (r *SpanRing) Total() uint64 { return r.total.Load() }

// Snapshot returns the retained spans, newest first.
func (r *SpanRing) Snapshot() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, len(r.buf))
	// Oldest-first order in the ring is buf[next:], then buf[:next];
	// walk it backwards for newest-first.
	for i := len(r.buf) - 1; i >= 0; i-- {
		out = append(out, r.buf[(r.next+i)%len(r.buf)])
	}
	return out
}

// Find returns the most recent span with the given trace ID.
func (r *SpanRing) Find(id TraceID) (Span, bool) {
	for _, s := range r.Snapshot() {
		if s.Trace == id {
			return s, true
		}
	}
	return Span{}, false
}
