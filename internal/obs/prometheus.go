package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes every registered metric in the Prometheus
// text exposition format (version 0.0.4): a # HELP and # TYPE line per
// family, then one sample line per series, families sorted by name and
// series sorted by label values, so scrapes diff cleanly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.fams4expo() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		if f.fn != nil {
			if _, err := fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.fn())); err != nil {
				return err
			}
			continue
		}
		for _, s := range f.sortedSeries() {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// fams4expo returns families sorted by name; families with no series
// and no value function are skipped (a declared Vec nobody resolved
// yet has nothing to say).
func (r *Registry) fams4expo() []*family {
	var out []*family
	for _, f := range r.families() {
		f.mu.RLock()
		n := len(f.series)
		f.mu.RUnlock()
		if n > 0 || f.fn != nil {
			out = append(out, f)
		}
	}
	return out
}

func (f *family) sortedSeries() []*series {
	f.mu.RLock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*series, len(keys))
	for i, k := range keys {
		out[i] = f.series[k]
	}
	f.mu.RUnlock()
	return out
}

func writeSeries(w io.Writer, f *family, s *series) error {
	labels := renderLabels(f.labels, s.labelValues, "", "")
	switch m := s.metric.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labels, m.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labels, m.Value())
		return err
	case *Histogram:
		bounds, counts := m.Buckets()
		// Cumulate on the way out; use the bucket total (not m.Count)
		// for _count so the exposition is internally consistent even
		// when observations land mid-scrape.
		var cum uint64
		for i, b := range bounds {
			cum += counts[i]
			ls := renderLabels(f.labels, s.labelValues, "le", formatFloat(b))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, ls, cum); err != nil {
				return err
			}
		}
		cum += counts[len(counts)-1]
		ls := renderLabels(f.labels, s.labelValues, "le", "+Inf")
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, ls, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labels, formatFloat(m.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labels, cum)
		return err
	default:
		return fmt.Errorf("obs: unknown metric type %T", s.metric)
	}
}

// renderLabels formats {k="v",...}; extraName/extraValue append a
// synthetic label (the histogram's le). Empty label sets render as "".
func renderLabels(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(v string) string { return helpEscaper.Replace(v) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Handler serves the registry in Prometheus text format — mount at
// /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
