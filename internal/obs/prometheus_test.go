package obs

import (
	"bufio"
	"fmt"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// sampleLine matches one Prometheus text-format sample:
// name{label="value",...} number
var sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+]+|\+Inf|NaN)$`)

// parseExposition is a minimal text-format parser: it validates every
// line is a comment or a well-formed sample, that every sample's family
// carries a TYPE, and returns samples by full series name.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	types := map[string]string{}
	samples := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown type %q in %q", parts[3], line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		name := m[1]
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if _, ok := types[name]; !ok {
			if _, ok := types[base]; !ok {
				t.Fatalf("sample %q has no preceding TYPE", line)
			}
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		samples[m[1]+m[2]] = v
	}
	return samples
}

func TestWritePrometheusParseable(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_requests_total", "Requests served.").Add(7)
	v := r.CounterVec("app_codes_total", "By code.", "code", "method")
	v.With("200", "GET").Add(3)
	v.With("500", `PO"ST\n`).Inc() // escaping must keep this parseable
	r.Gauge("app_depth", "Queue depth.").Set(-2)
	r.GaugeFunc("app_age_seconds", "Age.", func() float64 { return 1.5 })
	h := r.Histogram("app_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, b.String())

	if samples["app_requests_total"] != 7 {
		t.Fatalf("counter = %v", samples["app_requests_total"])
	}
	if samples[`app_codes_total{code="200",method="GET"}`] != 3 {
		t.Fatalf("labeled counter missing: %v", samples)
	}
	if samples["app_depth"] != -2 {
		t.Fatalf("gauge = %v", samples["app_depth"])
	}
	if samples["app_age_seconds"] != 1.5 {
		t.Fatalf("gauge func = %v", samples["app_age_seconds"])
	}
	// Histogram: cumulative buckets, +Inf equals _count.
	if samples[`app_seconds_bucket{le="0.1"}`] != 1 {
		t.Fatalf("le=0.1 bucket = %v", samples[`app_seconds_bucket{le="0.1"}`])
	}
	if samples[`app_seconds_bucket{le="1"}`] != 2 {
		t.Fatalf("le=1 bucket = %v", samples[`app_seconds_bucket{le="1"}`])
	}
	if inf, cnt := samples[`app_seconds_bucket{le="+Inf"}`], samples["app_seconds_count"]; inf != 3 || cnt != 3 {
		t.Fatalf("+Inf=%v count=%v, want 3", inf, cnt)
	}
	if got := samples["app_seconds_sum"]; got != 5.55 {
		t.Fatalf("sum = %v", got)
	}
}

func TestWritePrometheusSortedAndStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total", "").Inc()
	r.Counter("aaa_total", "").Inc()
	v := r.CounterVec("mid_total", "", "k")
	v.With("b").Inc()
	v.With("a").Inc()

	render := func() string {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	out := render()
	var familyOrder []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			familyOrder = append(familyOrder, strings.Fields(line)[2])
		}
	}
	if !sort.StringsAreSorted(familyOrder) {
		t.Fatalf("families not sorted: %v", familyOrder)
	}
	if strings.Index(out, `mid_total{k="a"}`) > strings.Index(out, `mid_total{k="b"}`) {
		t.Fatal("series not sorted within family")
	}
	if render() != out {
		t.Fatal("exposition not stable across renders")
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "help").Add(1)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "h_total 1") {
		t.Fatalf("body %q", rec.Body.String())
	}
}

func TestEmptyVecFamilySkipped(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("never_resolved_total", "", "k")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "never_resolved") {
		t.Fatalf("empty family exposed: %q", b.String())
	}
}

func ExampleRegistry_WritePrometheus() {
	r := NewRegistry()
	r.Counter("example_total", "An example.").Add(2)
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	fmt.Print(b.String())
	// Output:
	// # HELP example_total An example.
	// # TYPE example_total counter
	// example_total 2
}
