// Package aggregate computes the server-side summaries the paper's
// redesigned search interface exposes: histograms of inferred ratings,
// and the comparative visualizations of Figure 3 — visits-per-user
// histograms (3a) and distance-travelled-versus-visits curves (3b) —
// with explicit accounting for group visits so that "the collective
// recommendation power of groups does not artificially inflate the
// aggregate activity associated with an entity" (§4.1).
//
// Everything here consumes only anonymous per-(user, entity) histories
// and anonymous inferred-rating uploads; no user identity exists at this
// layer by construction.
package aggregate

import (
	"math"
	"sort"
	"sync"
	"time"

	"opinions/internal/history"
	"opinions/internal/interaction"
	"opinions/internal/stats"
	"opinions/internal/stripe"
)

// OpinionStore accumulates anonymously uploaded inferred ratings per
// entity. It is the server-side sink for the client pipeline's output.
// OpinionStore is safe for concurrent use.
//
// Ratings are striped by entity key so a search summarizing one
// entity's opinions never waits behind an upload landing on another.
type OpinionStore struct {
	shards [stripe.NumShards]opinionShard
}

type opinionShard struct {
	mu      sync.RWMutex
	ratings map[string][]float64
}

// NewOpinionStore returns an empty store.
func NewOpinionStore() *OpinionStore {
	s := &OpinionStore{}
	for i := range s.shards {
		s.shards[i].ratings = make(map[string][]float64)
	}
	return s
}

func (os *OpinionStore) shard(entityKey string) *opinionShard {
	return &os.shards[stripe.Index(entityKey)]
}

// Add records one inferred rating (clamped to [0, 5]) for an entity.
func (os *OpinionStore) Add(entityKey string, rating float64) {
	if rating < 0 {
		rating = 0
	}
	if rating > 5 {
		rating = 5
	}
	sh := os.shard(entityKey)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.ratings[entityKey] = append(sh.ratings[entityKey], rating)
}

// Total returns the number of inferred ratings across all entities.
func (os *OpinionStore) Total() int {
	n := 0
	for i := range os.shards {
		sh := &os.shards[i]
		sh.mu.RLock()
		for _, rs := range sh.ratings {
			n += len(rs)
		}
		sh.mu.RUnlock()
	}
	return n
}

// Count returns how many inferred ratings an entity has.
func (os *OpinionStore) Count(entityKey string) int {
	sh := os.shard(entityKey)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.ratings[entityKey])
}

// Mean returns the mean inferred rating and whether any exist.
func (os *OpinionStore) Mean(entityKey string) (float64, bool) {
	sh := os.shard(entityKey)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	rs := sh.ratings[entityKey]
	if len(rs) == 0 {
		return 0, false
	}
	var s float64
	for _, r := range rs {
		s += r
	}
	return s / float64(len(rs)), true
}

// Histogram returns counts of inferred ratings in 11 half-star bins
// [0, 0.5), [0.5, 1.0), …, [5.0, 5.0]; the last bin holds exact 5s.
func (os *OpinionStore) Histogram(entityKey string) [11]int {
	sh := os.shard(entityKey)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	var h [11]int
	for _, r := range sh.ratings[entityKey] {
		i := int(r * 2)
		if i > 10 {
			i = 10
		}
		h[i]++
	}
	return h
}

// Dump returns a deep copy of all ratings by entity, for snapshotting.
func (os *OpinionStore) Dump() map[string][]float64 {
	out := make(map[string][]float64)
	for i := range os.shards {
		sh := &os.shards[i]
		sh.mu.RLock()
		for k, v := range sh.ratings {
			out[k] = append([]float64(nil), v...)
		}
		sh.mu.RUnlock()
	}
	return out
}

// Restore replaces the store's contents with the dumped ratings.
func (os *OpinionStore) Restore(ratings map[string][]float64) {
	for i := range os.shards {
		sh := &os.shards[i]
		sh.mu.Lock()
		sh.ratings = make(map[string][]float64)
		sh.mu.Unlock()
	}
	for k, v := range ratings {
		sh := os.shard(k)
		sh.mu.Lock()
		sh.ratings[k] = append([]float64(nil), v...)
		sh.mu.Unlock()
	}
}

// GroupWindow is the co-arrival window within which visits to the same
// entity are treated as one group (§4.1). Anonymous channels hide user
// identity, but co-arrival is observable server-side from record
// timestamps.
const GroupWindow = 12 * time.Minute

// GroupWeight is the effective opinion weight of a detected group of
// size n: a party of four is stronger evidence than one person but far
// less than four independent diners.
func GroupWeight(n int) float64 {
	if n <= 1 {
		return 1
	}
	return 1 + math.Log2(float64(n))/4
}

// VisitCluster is one detected co-arrival group.
type VisitCluster struct {
	Start time.Time
	Size  int
}

// DedupGroups clusters the visit records of an entity's histories by
// co-arrival and returns the clusters plus raw and effective interaction
// counts.
func DedupGroups(hists []*history.EntityHistory, window time.Duration) (clusters []VisitCluster, raw int, effective float64) {
	if window <= 0 {
		window = GroupWindow
	}
	var arrivals []time.Time
	for _, h := range hists {
		for _, r := range h.Records {
			if r.Kind == interaction.VisitKind {
				arrivals = append(arrivals, r.Start)
			}
		}
	}
	raw = len(arrivals)
	if raw == 0 {
		return nil, 0, 0
	}
	sort.Slice(arrivals, func(i, j int) bool { return arrivals[i].Before(arrivals[j]) })
	start := arrivals[0]
	size := 1
	for _, t := range arrivals[1:] {
		if t.Sub(start) <= window {
			size++
			continue
		}
		clusters = append(clusters, VisitCluster{Start: start, Size: size})
		effective += GroupWeight(size)
		start, size = t, 1
	}
	clusters = append(clusters, VisitCluster{Start: start, Size: size})
	effective += GroupWeight(size)
	return clusters, raw, effective
}

// EntityAggregate is the comparative-visualization payload for one
// entity: the data behind Figure 3 plus interaction totals.
type EntityAggregate struct {
	Entity string
	// Users is the number of anonymous histories (≈ distinct users).
	Users int
	// VisitsPerUser is Figure 3(a)'s histogram: how many users visited
	// exactly k times.
	VisitsPerUser map[int]int
	// MeanDistanceKmByVisits is Figure 3(b): for users with exactly k
	// visits, the mean distance travelled per visit, in km.
	MeanDistanceKmByVisits map[int]float64
	// RawInteractions and EffectiveInteractions expose group dedup
	// (§4.1); Effective ≤ Raw when groups are present.
	RawInteractions       int
	EffectiveInteractions float64
	// RepeatFraction is the share of visiting users who came back.
	RepeatFraction float64
}

// Build computes the aggregate for one entity from its anonymous
// histories.
func Build(entityKey string, hists []*history.EntityHistory) *EntityAggregate {
	agg := &EntityAggregate{
		Entity:                 entityKey,
		Users:                  len(hists),
		VisitsPerUser:          make(map[int]int),
		MeanDistanceKmByVisits: make(map[int]float64),
	}
	distSum := make(map[int]float64)
	distN := make(map[int]int)
	visitors, repeaters := 0, 0
	for _, h := range hists {
		visits := 0
		var dist float64
		for _, r := range h.Records {
			if r.Kind != interaction.VisitKind {
				continue
			}
			visits++
			dist += r.DistanceFrom / 1000
		}
		if visits == 0 {
			continue
		}
		visitors++
		if visits > 1 {
			repeaters++
		}
		agg.VisitsPerUser[visits]++
		distSum[visits] += dist / float64(visits)
		distN[visits]++
	}
	for k, s := range distSum {
		agg.MeanDistanceKmByVisits[k] = s / float64(distN[k])
	}
	_, raw, eff := DedupGroups(hists, GroupWindow)
	agg.RawInteractions = raw
	agg.EffectiveInteractions = eff
	if visitors > 0 {
		agg.RepeatFraction = float64(repeaters) / float64(visitors)
	}
	return agg
}

// DistanceVisitCorrelation returns the Pearson correlation between visit
// count and mean travel distance across an entity's users — the signal
// Figure 3(b) visualizes ("the average distance travelled is more
// strongly correlated with the number of visits for dentist B than
// dentist C"). Returns ok=false when fewer than 3 users visited.
func DistanceVisitCorrelation(hists []*history.EntityHistory) (float64, bool) {
	var visits, dists []float64
	for _, h := range hists {
		n := 0
		var d float64
		for _, r := range h.Records {
			if r.Kind == interaction.VisitKind {
				n++
				d += r.DistanceFrom / 1000
			}
		}
		if n > 0 {
			visits = append(visits, float64(n))
			dists = append(dists, d/float64(n))
		}
	}
	if len(visits) < 3 {
		return 0, false
	}
	r, err := stats.Pearson(visits, dists)
	if err != nil {
		return 0, false
	}
	return r, true
}
