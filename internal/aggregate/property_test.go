package aggregate

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"opinions/internal/history"
	"opinions/internal/interaction"
)

// Property: GroupWeight(1) == 1, it grows with size, and stays strictly
// sublinear — a party of n is never worth n independent opinions.
func TestGroupWeightProperties(t *testing.T) {
	f := func(raw uint8) bool {
		n := int(raw%63) + 2 // 2..64
		w := GroupWeight(n)
		return w > GroupWeight(n-1) || n == 2 && w > 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	for n := 2; n <= 64; n++ {
		if w := GroupWeight(n); w >= float64(n) {
			t.Fatalf("GroupWeight(%d) = %v, not sublinear", n, w)
		}
	}
}

// Property: for any arrival pattern, effective ≤ raw, effective ≥
// number of clusters, and cluster sizes sum to raw.
func TestDedupGroupsInvariants(t *testing.T) {
	f := func(offsets []uint16) bool {
		if len(offsets) == 0 {
			return true
		}
		var hists []*history.EntityHistory
		for i, off := range offsets {
			hists = append(hists, &history.EntityHistory{
				AnonID: string(rune('a' + i%26)),
				Entity: "e",
				Records: []interaction.Record{{
					Entity: "e", Kind: interaction.VisitKind,
					Start: t0.Add(time.Duration(off) * time.Minute),
				}},
			})
		}
		clusters, raw, eff := DedupGroups(hists, GroupWindow)
		if raw != len(offsets) {
			return false
		}
		if eff > float64(raw)+1e-9 || eff < float64(len(clusters))-1e-9 {
			return false
		}
		total := 0
		for _, c := range clusters {
			total += c.Size
		}
		return total == raw
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: OpinionStore clamps everything into [0,5] and the histogram
// always sums to Count.
func TestOpinionStoreInvariants(t *testing.T) {
	f := func(ratings []float64) bool {
		os := NewOpinionStore()
		for _, r := range ratings {
			if math.IsNaN(r) {
				continue
			}
			os.Add("e", r)
		}
		h := os.Histogram("e")
		sum := 0
		for _, c := range h {
			sum += c
		}
		if sum != os.Count("e") {
			return false
		}
		if m, ok := os.Mean("e"); ok && (m < 0 || m > 5) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
