package aggregate

import (
	"fmt"
	"math"
	"testing"
	"time"

	"opinions/internal/history"
	"opinions/internal/interaction"
)

var t0 = time.Date(2016, 3, 1, 18, 0, 0, 0, time.UTC)

// hist builds an anonymous history with visits at the given (start,
// distanceKm) pairs.
func hist(id string, entity string, visits ...[2]float64) *history.EntityHistory {
	h := &history.EntityHistory{AnonID: id, Entity: entity}
	for _, v := range visits {
		h.Records = append(h.Records, interaction.Record{
			Entity: entity, Kind: interaction.VisitKind,
			Start:        t0.Add(time.Duration(v[0] * float64(24*time.Hour))),
			Duration:     45 * time.Minute,
			DistanceFrom: v[1] * 1000,
		})
	}
	return h
}

func TestOpinionStoreBasics(t *testing.T) {
	os := NewOpinionStore()
	os.Add("yelp/a", 4.2)
	os.Add("yelp/a", 3.8)
	os.Add("yelp/a", 7)  // clamped to 5
	os.Add("yelp/a", -1) // clamped to 0
	if n := os.Count("yelp/a"); n != 4 {
		t.Fatalf("Count = %d", n)
	}
	m, ok := os.Mean("yelp/a")
	if !ok || math.Abs(m-(4.2+3.8+5+0)/4) > 1e-12 {
		t.Fatalf("Mean = %v, %v", m, ok)
	}
	if _, ok := os.Mean("yelp/none"); ok {
		t.Fatal("mean of empty entity")
	}
	h := os.Histogram("yelp/a")
	if h[8] != 1 || h[7] != 1 || h[10] != 1 || h[0] != 1 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestGroupWeight(t *testing.T) {
	if GroupWeight(1) != 1 || GroupWeight(0) != 1 {
		t.Fatal("singleton weight != 1")
	}
	if w := GroupWeight(4); math.Abs(w-1.5) > 1e-12 {
		t.Fatalf("GroupWeight(4) = %v, want 1.5", w)
	}
	if GroupWeight(8) <= GroupWeight(4) {
		t.Fatal("weight not increasing")
	}
	if GroupWeight(8) >= 8 {
		t.Fatal("weight not sublinear")
	}
}

func TestDedupGroupsClusters(t *testing.T) {
	// Three diners arrive within 5 minutes (one party), plus one solo
	// diner two hours later.
	h1 := &history.EntityHistory{AnonID: "a", Entity: "yelp/r", Records: []interaction.Record{
		{Entity: "yelp/r", Kind: interaction.VisitKind, Start: t0},
	}}
	h2 := &history.EntityHistory{AnonID: "b", Entity: "yelp/r", Records: []interaction.Record{
		{Entity: "yelp/r", Kind: interaction.VisitKind, Start: t0.Add(3 * time.Minute)},
	}}
	h3 := &history.EntityHistory{AnonID: "c", Entity: "yelp/r", Records: []interaction.Record{
		{Entity: "yelp/r", Kind: interaction.VisitKind, Start: t0.Add(5 * time.Minute)},
	}}
	h4 := &history.EntityHistory{AnonID: "d", Entity: "yelp/r", Records: []interaction.Record{
		{Entity: "yelp/r", Kind: interaction.VisitKind, Start: t0.Add(2 * time.Hour)},
	}}
	clusters, raw, eff := DedupGroups([]*history.EntityHistory{h1, h2, h3, h4}, GroupWindow)
	if raw != 4 {
		t.Fatalf("raw = %d", raw)
	}
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(clusters))
	}
	if clusters[0].Size != 3 || clusters[1].Size != 1 {
		t.Fatalf("cluster sizes = %d, %d", clusters[0].Size, clusters[1].Size)
	}
	want := GroupWeight(3) + 1
	if math.Abs(eff-want) > 1e-12 {
		t.Fatalf("effective = %v, want %v", eff, want)
	}
	if eff >= float64(raw) {
		t.Fatal("dedup did not reduce effective count")
	}
}

func TestDedupGroupsEmpty(t *testing.T) {
	clusters, raw, eff := DedupGroups(nil, 0)
	if clusters != nil || raw != 0 || eff != 0 {
		t.Fatalf("empty dedup = %v, %d, %v", clusters, raw, eff)
	}
}

func TestDedupIgnoresCalls(t *testing.T) {
	h := &history.EntityHistory{AnonID: "a", Entity: "yelp/r", Records: []interaction.Record{
		{Entity: "yelp/r", Kind: interaction.CallKind, Start: t0},
		{Entity: "yelp/r", Kind: interaction.VisitKind, Start: t0},
	}}
	_, raw, _ := DedupGroups([]*history.EntityHistory{h}, GroupWindow)
	if raw != 1 {
		t.Fatalf("raw = %d, calls must not count as visits", raw)
	}
}

func TestBuildVisitsPerUser(t *testing.T) {
	// Fig 3(a) shape: dentist B has many repeat patients.
	hists := []*history.EntityHistory{
		hist("u1", "yelp/dB", [2]float64{0, 2}, [2]float64{30, 2}, [2]float64{60, 2}),
		hist("u2", "yelp/dB", [2]float64{5, 3}, [2]float64{40, 3}),
		hist("u3", "yelp/dB", [2]float64{10, 1}),
	}
	agg := Build("yelp/dB", hists)
	if agg.Users != 3 {
		t.Fatalf("Users = %d", agg.Users)
	}
	if agg.VisitsPerUser[3] != 1 || agg.VisitsPerUser[2] != 1 || agg.VisitsPerUser[1] != 1 {
		t.Fatalf("VisitsPerUser = %v", agg.VisitsPerUser)
	}
	if math.Abs(agg.RepeatFraction-2.0/3) > 1e-12 {
		t.Fatalf("RepeatFraction = %v", agg.RepeatFraction)
	}
	if math.Abs(agg.MeanDistanceKmByVisits[3]-2) > 1e-9 {
		t.Fatalf("MeanDistanceKmByVisits[3] = %v", agg.MeanDistanceKmByVisits[3])
	}
}

func TestBuildSkipsCallOnlyHistories(t *testing.T) {
	callOnly := &history.EntityHistory{AnonID: "x", Entity: "yelp/p", Records: []interaction.Record{
		{Entity: "yelp/p", Kind: interaction.CallKind, Start: t0},
	}}
	agg := Build("yelp/p", []*history.EntityHistory{callOnly})
	if len(agg.VisitsPerUser) != 0 {
		t.Fatalf("call-only history counted as visitor: %v", agg.VisitsPerUser)
	}
	if agg.RepeatFraction != 0 {
		t.Fatalf("RepeatFraction = %v", agg.RepeatFraction)
	}
}

func TestDistanceVisitCorrelation(t *testing.T) {
	// Dentist B: distance grows with visits (loyal patients travel).
	var histsB []*history.EntityHistory
	for i := 1; i <= 10; i++ {
		visits := make([][2]float64, i)
		for k := range visits {
			visits[k] = [2]float64{float64(k * 10), float64(i)} // dist ∝ visits
		}
		histsB = append(histsB, hist(fmt.Sprintf("b%d", i), "yelp/dB", visits...))
	}
	rB, ok := DistanceVisitCorrelation(histsB)
	if !ok || rB < 0.9 {
		t.Fatalf("dentist B correlation = %v, %v", rB, ok)
	}
	// Dentist C: distance unrelated to visits.
	var histsC []*history.EntityHistory
	dists := []float64{5, 1, 4, 2, 5, 1, 3, 2, 4, 1}
	for i := 1; i <= 10; i++ {
		visits := make([][2]float64, i)
		for k := range visits {
			visits[k] = [2]float64{float64(k * 10), dists[i-1]}
		}
		histsC = append(histsC, hist(fmt.Sprintf("c%d", i), "yelp/dC", visits...))
	}
	rC, ok := DistanceVisitCorrelation(histsC)
	if !ok {
		t.Fatal("no correlation computed for C")
	}
	if rB <= rC {
		t.Fatalf("B correlation %v not above C %v (Fig 3b shape)", rB, rC)
	}
}

func TestDistanceVisitCorrelationTooFew(t *testing.T) {
	if _, ok := DistanceVisitCorrelation(nil); ok {
		t.Fatal("correlation from no data")
	}
	hists := []*history.EntityHistory{hist("a", "e", [2]float64{0, 1})}
	if _, ok := DistanceVisitCorrelation(hists); ok {
		t.Fatal("correlation from one user")
	}
}
