// Package reviews is the classic explicit-review subsystem — what RSPs
// already have today (§2). It stores the reviews the vocal minority
// posts and computes the per-entity statistics the measurement study
// crawls. The implicit-inference pipeline augments, not replaces, this
// store (§3.1: RSPs "not only accept reviews from users like they do
// today").
package reviews

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"opinions/internal/stripe"
)

// Review is one explicit review.
type Review struct {
	ID     string    `json:"id"`
	Entity string    `json:"entity"`
	Author string    `json:"author"` // public pseudonym, not a device identity
	Rating float64   `json:"rating"`
	Text   string    `json:"text"`
	Time   time.Time `json:"time"`
}

// ErrBadRating is returned for ratings outside [0, 5].
var ErrBadRating = errors.New("reviews: rating outside [0, 5]")

// Store holds reviews per entity. Store is safe for concurrent use.
//
// State is striped by entity key: a read of one entity's reviews never
// waits on a write to another's, so search-time review stats stop
// serializing behind concurrent posts. The ID sequence is a single
// atomic counter shared across stripes.
//
// Each entity's slice is kept sorted by time (oldest first) at insert,
// so a paginated read is a copy of just the requested window — the
// serving path's hottest review read no longer copies and re-sorts the
// whole slice per request. Live posts arrive in time order and append
// in O(1); an out-of-order time (replays, imports) pays one in-place
// shift.
type Store struct {
	seq    atomic.Int64
	shards [stripe.NumShards]reviewShard
}

type reviewShard struct {
	mu       sync.RWMutex
	byEntity map[string][]Review
}

// insertByTime places r into rs keeping ascending time order. Equal
// times keep arrival order (the new review goes after existing equals),
// so newest-first enumeration lists later arrivals first among ties.
func insertByTime(rs []Review, r Review) []Review {
	i := sort.Search(len(rs), func(j int) bool { return rs[j].Time.After(r.Time) })
	rs = append(rs, Review{})
	copy(rs[i+1:], rs[i:])
	rs[i] = r
	return rs
}

// NewStore returns an empty store.
func NewStore() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].byEntity = make(map[string][]Review)
	}
	return s
}

func (s *Store) shard(entityKey string) *reviewShard {
	return &s.shards[stripe.Index(entityKey)]
}

// NextID draws the next review ID from the shared sequence. The
// sharded commit pipeline assigns IDs at commit time — before the
// record is marshaled into the WAL — so a replayed record carries the
// same ID it was acknowledged with regardless of which stripe it
// replays on.
func (s *Store) NextID() string {
	return fmt.Sprintf("rev-%d", s.seq.Add(1))
}

// Post validates and stores a review. A review arriving without an ID
// is assigned the next one; a review that already carries an ID (a WAL
// replay or a replicated commit) keeps it, and the sequence advances
// past it so later assignments stay unique. The entity key must be
// non-empty; ratings must be in [0, 5].
func (s *Store) Post(r Review) (Review, error) {
	if r.Entity == "" {
		return Review{}, errors.New("reviews: empty entity")
	}
	if r.Rating < 0 || r.Rating > 5 {
		return Review{}, ErrBadRating
	}
	if r.ID == "" {
		r.ID = s.NextID()
	} else {
		var n int64
		if _, err := fmt.Sscanf(r.ID, "rev-%d", &n); err == nil {
			for {
				cur := s.seq.Load()
				if cur >= n || s.seq.CompareAndSwap(cur, n) {
					break
				}
			}
		}
	}
	sh := s.shard(r.Entity)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.byEntity[r.Entity] = insertByTime(sh.byEntity[r.Entity], r)
	return r, nil
}

// Count returns the number of reviews for an entity.
func (s *Store) Count(entityKey string) int {
	sh := s.shard(entityKey)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.byEntity[entityKey])
}

// Mean returns the mean rating and whether any reviews exist.
func (s *Store) Mean(entityKey string) (float64, bool) {
	sh := s.shard(entityKey)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	rs := sh.byEntity[entityKey]
	if len(rs) == 0 {
		return 0, false
	}
	var sum float64
	for _, r := range rs {
		sum += r.Rating
	}
	return sum / float64(len(rs)), true
}

// ForEntity returns a page of reviews, newest first. The slice is
// always non-nil — an out-of-range page is an empty page, and clients
// see a stable JSON array type, never null. Only the requested window
// is copied (the per-entity slice stays sorted at insert), so page
// cost is O(limit) regardless of how many reviews the entity has.
func (s *Store) ForEntity(entityKey string, offset, limit int) []Review {
	if offset < 0 {
		offset = 0
	}
	sh := s.shard(entityKey)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	rs := sh.byEntity[entityKey]
	if offset >= len(rs) {
		return []Review{}
	}
	n := len(rs) - offset
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]Review, n)
	for k := 0; k < n; k++ {
		out[k] = rs[len(rs)-1-offset-k]
	}
	return out
}

// All returns every stored review, flattened shard by shard; callers
// needing order should sort.
func (s *Store) All() []Review {
	var out []Review
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, rs := range sh.byEntity {
			out = append(out, rs...)
		}
		sh.mu.RUnlock()
	}
	return out
}

// Restore replaces the store's contents with the given reviews,
// advancing the ID sequence past any restored "rev-<n>" IDs so future
// posts stay unique.
func (s *Store) Restore(revs []Review) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.byEntity = make(map[string][]Review)
		sh.mu.Unlock()
	}
	var max int64
	for _, r := range revs {
		sh := s.shard(r.Entity)
		sh.mu.Lock()
		sh.byEntity[r.Entity] = insertByTime(sh.byEntity[r.Entity], r)
		sh.mu.Unlock()
		var n int64
		if _, err := fmt.Sscanf(r.ID, "rev-%d", &n); err == nil && n > max {
			max = n
		}
	}
	s.seq.Store(max)
}

// TotalReviews returns the number of reviews across all entities.
func (s *Store) TotalReviews() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, rs := range sh.byEntity {
			n += len(rs)
		}
		sh.mu.RUnlock()
	}
	return n
}

// Seed bulk-loads synthetic reviews for an entity (used by the crawl
// universe, where only counts and a plausible rating distribution
// matter). Ratings cycle deterministically around the base quality.
func (s *Store) Seed(entityKey string, count int, quality float64, at time.Time) {
	sh := s.shard(entityKey)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	// Oldest first, so every insert appends to the sorted slice in O(1).
	for i := count - 1; i >= 0; i-- {
		// Deterministic spread of ±1 star around quality, half-star grid.
		delta := float64(i%5)/2 - 1
		rating := quality + delta
		if rating < 0 {
			rating = 0
		}
		if rating > 5 {
			rating = 5
		}
		sh.byEntity[entityKey] = insertByTime(sh.byEntity[entityKey], Review{
			ID:     fmt.Sprintf("rev-%d", s.seq.Add(1)),
			Entity: entityKey,
			Author: fmt.Sprintf("seeded-%d", i),
			Rating: rating,
			Text:   "seeded review",
			Time:   at.Add(-time.Duration(i) * 24 * time.Hour),
		})
	}
}
