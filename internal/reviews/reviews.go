// Package reviews is the classic explicit-review subsystem — what RSPs
// already have today (§2). It stores the reviews the vocal minority
// posts and computes the per-entity statistics the measurement study
// crawls. The implicit-inference pipeline augments, not replaces, this
// store (§3.1: RSPs "not only accept reviews from users like they do
// today").
package reviews

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Review is one explicit review.
type Review struct {
	ID     string    `json:"id"`
	Entity string    `json:"entity"`
	Author string    `json:"author"` // public pseudonym, not a device identity
	Rating float64   `json:"rating"`
	Text   string    `json:"text"`
	Time   time.Time `json:"time"`
}

// ErrBadRating is returned for ratings outside [0, 5].
var ErrBadRating = errors.New("reviews: rating outside [0, 5]")

// Store holds reviews per entity. Store is safe for concurrent use.
type Store struct {
	mu       sync.RWMutex
	byEntity map[string][]Review
	seq      int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{byEntity: make(map[string][]Review)}
}

// Post validates and stores a review, assigning it an ID. The entity key
// must be non-empty; ratings must be in [0, 5].
func (s *Store) Post(r Review) (Review, error) {
	if r.Entity == "" {
		return Review{}, errors.New("reviews: empty entity")
	}
	if r.Rating < 0 || r.Rating > 5 {
		return Review{}, ErrBadRating
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	r.ID = fmt.Sprintf("rev-%d", s.seq)
	s.byEntity[r.Entity] = append(s.byEntity[r.Entity], r)
	return r, nil
}

// Count returns the number of reviews for an entity.
func (s *Store) Count(entityKey string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byEntity[entityKey])
}

// Mean returns the mean rating and whether any reviews exist.
func (s *Store) Mean(entityKey string) (float64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rs := s.byEntity[entityKey]
	if len(rs) == 0 {
		return 0, false
	}
	var sum float64
	for _, r := range rs {
		sum += r.Rating
	}
	return sum / float64(len(rs)), true
}

// ForEntity returns a page of reviews, newest first.
func (s *Store) ForEntity(entityKey string, offset, limit int) []Review {
	s.mu.RLock()
	rs := append([]Review(nil), s.byEntity[entityKey]...)
	s.mu.RUnlock()
	sort.Slice(rs, func(i, j int) bool { return rs[i].Time.After(rs[j].Time) })
	if offset < 0 {
		offset = 0
	}
	if offset >= len(rs) {
		return nil
	}
	rs = rs[offset:]
	if limit > 0 && limit < len(rs) {
		rs = rs[:limit]
	}
	return rs
}

// All returns every stored review, grouped by entity in map iteration
// order flattened to a slice; callers needing order should sort.
func (s *Store) All() []Review {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Review
	for _, rs := range s.byEntity {
		out = append(out, rs...)
	}
	return out
}

// Restore replaces the store's contents with the given reviews,
// advancing the ID sequence past any restored "rev-<n>" IDs so future
// posts stay unique.
func (s *Store) Restore(revs []Review) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byEntity = make(map[string][]Review)
	s.seq = 0
	for _, r := range revs {
		s.byEntity[r.Entity] = append(s.byEntity[r.Entity], r)
		var n int
		if _, err := fmt.Sscanf(r.ID, "rev-%d", &n); err == nil && n > s.seq {
			s.seq = n
		}
	}
}

// TotalReviews returns the number of reviews across all entities.
func (s *Store) TotalReviews() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, rs := range s.byEntity {
		n += len(rs)
	}
	return n
}

// Seed bulk-loads synthetic reviews for an entity (used by the crawl
// universe, where only counts and a plausible rating distribution
// matter). Ratings cycle deterministically around the base quality.
func (s *Store) Seed(entityKey string, count int, quality float64, at time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < count; i++ {
		s.seq++
		// Deterministic spread of ±1 star around quality, half-star grid.
		delta := float64(i%5)/2 - 1
		rating := quality + delta
		if rating < 0 {
			rating = 0
		}
		if rating > 5 {
			rating = 5
		}
		s.byEntity[entityKey] = append(s.byEntity[entityKey], Review{
			ID:     fmt.Sprintf("rev-%d", s.seq),
			Entity: entityKey,
			Author: fmt.Sprintf("seeded-%d", i),
			Rating: rating,
			Text:   "seeded review",
			Time:   at.Add(-time.Duration(i) * 24 * time.Hour),
		})
	}
}
