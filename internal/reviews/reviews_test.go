package reviews

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2016, 4, 1, 0, 0, 0, 0, time.UTC)

func TestPostAndFetch(t *testing.T) {
	s := NewStore()
	r, err := s.Post(Review{Entity: "yelp/a", Author: "alice", Rating: 4.5, Text: "great", Time: t0})
	if err != nil {
		t.Fatal(err)
	}
	if r.ID == "" {
		t.Fatal("no ID assigned")
	}
	if s.Count("yelp/a") != 1 {
		t.Fatalf("Count = %d", s.Count("yelp/a"))
	}
	got := s.ForEntity("yelp/a", 0, 10)
	if len(got) != 1 || got[0].Author != "alice" {
		t.Fatalf("ForEntity = %+v", got)
	}
}

func TestPostValidation(t *testing.T) {
	s := NewStore()
	if _, err := s.Post(Review{Entity: "", Rating: 3}); err == nil {
		t.Error("empty entity accepted")
	}
	if _, err := s.Post(Review{Entity: "e", Rating: 5.5}); !errors.Is(err, ErrBadRating) {
		t.Errorf("rating 5.5 err = %v", err)
	}
	if _, err := s.Post(Review{Entity: "e", Rating: -0.1}); !errors.Is(err, ErrBadRating) {
		t.Errorf("rating -0.1 err = %v", err)
	}
}

func TestMean(t *testing.T) {
	s := NewStore()
	if _, ok := s.Mean("none"); ok {
		t.Fatal("mean of empty entity")
	}
	_, _ = s.Post(Review{Entity: "e", Rating: 4})
	_, _ = s.Post(Review{Entity: "e", Rating: 2})
	m, ok := s.Mean("e")
	if !ok || m != 3 {
		t.Fatalf("Mean = %v, %v", m, ok)
	}
}

func TestForEntityPagingAndOrder(t *testing.T) {
	s := NewStore()
	for i := 0; i < 5; i++ {
		_, _ = s.Post(Review{Entity: "e", Rating: float64(i), Time: t0.Add(time.Duration(i) * time.Hour)})
	}
	page := s.ForEntity("e", 0, 2)
	if len(page) != 2 {
		t.Fatalf("page size = %d", len(page))
	}
	// Newest first.
	if page[0].Rating != 4 || page[1].Rating != 3 {
		t.Fatalf("order wrong: %v, %v", page[0].Rating, page[1].Rating)
	}
	page2 := s.ForEntity("e", 2, 2)
	if len(page2) != 2 || page2[0].Rating != 2 {
		t.Fatalf("second page: %+v", page2)
	}
	// An out-of-range page is an empty page, never nil — the HTTP layer
	// serializes it as a stable [] instead of JSON null.
	if got := s.ForEntity("e", 10, 2); got == nil || len(got) != 0 {
		t.Fatalf("past-end page = %v, want empty non-nil", got)
	}
	if got := s.ForEntity("missing", 0, 10); got == nil || len(got) != 0 {
		t.Fatalf("unknown entity page = %v, want empty non-nil", got)
	}
	if got := s.ForEntity("e", -1, 0); len(got) != 5 {
		t.Fatalf("negative offset, no limit = %d", len(got))
	}
}

// Posts arriving out of time order must still page newest first: the
// slice is kept sorted at insert, not re-sorted per read.
func TestForEntityOutOfOrderInserts(t *testing.T) {
	s := NewStore()
	hours := []int{3, 0, 4, 1, 2}
	for _, h := range hours {
		_, _ = s.Post(Review{Entity: "e", Rating: float64(h), Time: t0.Add(time.Duration(h) * time.Hour)})
	}
	all := s.ForEntity("e", 0, 0)
	if len(all) != 5 {
		t.Fatalf("len = %d", len(all))
	}
	for i, want := range []float64{4, 3, 2, 1, 0} {
		if all[i].Rating != want {
			t.Fatalf("pos %d rating = %v, want %v (order %v)", i, all[i].Rating, want, all)
		}
	}
	// Paging windows agree with the full enumeration.
	if page := s.ForEntity("e", 1, 2); page[0].Rating != 3 || page[1].Rating != 2 {
		t.Fatalf("window page = %+v", page)
	}
}

// Ties on time keep arrival order, newest arrival first.
func TestForEntityEqualTimes(t *testing.T) {
	s := NewStore()
	for i := 0; i < 3; i++ {
		_, _ = s.Post(Review{Entity: "e", Author: fmt.Sprintf("a%d", i), Rating: 3, Time: t0})
	}
	got := s.ForEntity("e", 0, 0)
	if got[0].Author != "a2" || got[2].Author != "a0" {
		t.Fatalf("tie order = %v, %v, %v", got[0].Author, got[1].Author, got[2].Author)
	}
}

// Readers paging while writers post out-of-order times must be
// race-free and always see a time-sorted window (run under -race).
func TestConcurrentPostAndRead(t *testing.T) {
	s := NewStore()
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				h := (i*7 + w*3) % 97 // deliberately non-monotonic times
				_, _ = s.Post(Review{Entity: "e", Rating: 3, Time: t0.Add(time.Duration(h) * time.Minute)})
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				page := s.ForEntity("e", 0, 50)
				for i := 1; i < len(page); i++ {
					if page[i].Time.After(page[i-1].Time) {
						t.Error("page not newest-first")
						return
					}
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if s.Count("e") != 800 {
		t.Fatalf("count = %d", s.Count("e"))
	}
}

func TestSeed(t *testing.T) {
	s := NewStore()
	s.Seed("yelp/big", 120, 4.0, t0)
	if s.Count("yelp/big") != 120 {
		t.Fatalf("seeded count = %d", s.Count("yelp/big"))
	}
	m, ok := s.Mean("yelp/big")
	if !ok || m < 3.3 || m > 4.7 {
		t.Fatalf("seeded mean = %v", m)
	}
	if s.TotalReviews() != 120 {
		t.Fatalf("total = %d", s.TotalReviews())
	}
}

func TestConcurrentPost(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := s.Post(Review{Entity: fmt.Sprintf("e%d", i%4), Rating: 3})
			if err != nil {
				t.Error(err)
			}
			s.Count("e0")
			s.Mean("e1")
		}(i)
	}
	wg.Wait()
	if s.TotalReviews() != 40 {
		t.Fatalf("total = %d", s.TotalReviews())
	}
	// IDs must be unique.
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		for _, r := range s.ForEntity(fmt.Sprintf("e%d", i), 0, 0) {
			if seen[r.ID] {
				t.Fatalf("duplicate ID %s", r.ID)
			}
			seen[r.ID] = true
		}
	}
}

func TestAllAndRestore(t *testing.T) {
	s := NewStore()
	_, _ = s.Post(Review{Entity: "a", Rating: 4, Time: t0})
	_, _ = s.Post(Review{Entity: "b", Rating: 2, Time: t0})
	all := s.All()
	if len(all) != 2 {
		t.Fatalf("All = %d", len(all))
	}
	// Restore into a fresh store; sequence must advance past restored IDs.
	s2 := NewStore()
	s2.Restore(all)
	if s2.TotalReviews() != 2 {
		t.Fatalf("restored = %d", s2.TotalReviews())
	}
	r, err := s2.Post(Review{Entity: "a", Rating: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, old := range all {
		if r.ID == old.ID {
			t.Fatalf("new ID %s collides with restored", r.ID)
		}
	}
	// Restore with non-numeric IDs must not break the sequence.
	s3 := NewStore()
	s3.Restore([]Review{{ID: "imported-xyz", Entity: "a", Rating: 1}})
	if _, err := s3.Post(Review{Entity: "a", Rating: 2}); err != nil {
		t.Fatal(err)
	}
}
