// Package cluster describes a static multi-node RSP deployment: N
// partitions, each owning a disjoint slice of the entity-key space and
// served by one or more nodes (a leader plus its replication
// followers). The descriptor is the one routing truth every layer
// shares — the server's ownership gate, the scatter-gather read path,
// the cluster-aware client transport, the crawler, and the load
// generator all map a key to its partition through the same function,
// stripe.IndexN over the ring width, so a key has exactly one home.
//
// The ring is deliberately static: partitions are fixed at deployment
// and changing the width is a resharding event (see internal/stripe for
// the measured churn), not a runtime operation. What IS dynamic is node
// health within a partition — the first node listed is the preferred
// target (the replication leader at deployment time), the rest are
// followers that serve reads immediately and writes after promotion.
//
// The JSON config format:
//
//	{
//	  "partitions": [
//	    {"nodes": ["http://10.0.0.1:8080", "http://10.0.0.2:8080"]},
//	    {"nodes": ["http://10.0.1.1:8080"]},
//	    {"nodes": ["http://10.0.2.1:8080"]}
//	  ]
//	}
package cluster

import (
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"strings"

	"opinions/internal/stripe"
)

// Partition is one shard of the entity-key space.
type Partition struct {
	// Nodes lists the partition's server base URLs. The first entry is
	// the preferred target (the leader); later entries are replication
	// followers, tried in order when the preferred target is down.
	Nodes []string `json:"nodes"`
}

// Config is the JSON cluster descriptor.
type Config struct {
	Partitions []Partition `json:"partitions"`
}

// Ring is a validated cluster descriptor ready for routing.
type Ring struct {
	parts []Partition
}

// Parse validates a JSON descriptor and builds the ring.
func Parse(data []byte) (*Ring, error) {
	var cfg Config
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("cluster: parsing config: %w", err)
	}
	return New(cfg)
}

// Load reads and parses a descriptor file.
func Load(path string) (*Ring, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: reading config: %w", err)
	}
	r, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", path, err)
	}
	return r, nil
}

// New validates a descriptor and builds the ring. Every partition needs
// at least one node; node URLs must be absolute http(s) roots; and a
// node may appear in only one partition — a store shared across
// partitions would apply every key range and double-count.
func New(cfg Config) (*Ring, error) {
	if len(cfg.Partitions) == 0 {
		return nil, fmt.Errorf("cluster: config has no partitions")
	}
	seen := make(map[string]int)
	parts := make([]Partition, len(cfg.Partitions))
	for p, part := range cfg.Partitions {
		if len(part.Nodes) == 0 {
			return nil, fmt.Errorf("cluster: partition %d has no nodes", p)
		}
		nodes := make([]string, len(part.Nodes))
		for i, raw := range part.Nodes {
			n := strings.TrimRight(raw, "/")
			u, err := url.Parse(n)
			if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
				return nil, fmt.Errorf("cluster: partition %d node %q is not an absolute http(s) URL", p, raw)
			}
			if prev, dup := seen[n]; dup {
				return nil, fmt.Errorf("cluster: node %q appears in partitions %d and %d", n, prev, p)
			}
			seen[n] = p
			nodes[i] = n
		}
		parts[p] = Partition{Nodes: nodes}
	}
	return &Ring{parts: parts}, nil
}

// NumPartitions returns the ring width.
func (r *Ring) NumPartitions() int { return len(r.parts) }

// Partition maps an entity key to the partition that owns it — the
// same stripe hash the read stores and commit lanes route by, over the
// ring width.
func (r *Ring) Partition(key string) int {
	return stripe.IndexN(key, len(r.parts))
}

// Owns reports whether partition p is key's home.
func (r *Ring) Owns(p int, key string) bool { return r.Partition(key) == p }

// Nodes returns partition p's server roots, preferred target first.
// The returned slice is shared; callers must not mutate it.
func (r *Ring) Nodes(p int) []string { return r.parts[p].Nodes }

// Preferred returns partition p's preferred (leader) base URL.
func (r *Ring) Preferred(p int) string { return r.parts[p].Nodes[0] }

// NodeFor returns the preferred node of the partition owning key.
func (r *Ring) NodeFor(key string) string {
	return r.Preferred(r.Partition(key))
}
