package cluster_test

// The cluster kill-one-leader soak: three partitions, one of them a
// replicated leader/follower pair, a cluster-aware Router delivering
// exactly-once uploads by entity key. Mid-soak the pair's leader dies
// in two phases — first it hangs (the wire-visible outage: gathered
// search/directory go partial for exactly that partition), then it is
// killed uncleanly (connections severed, replication stream cut, store
// abandoned) and the follower auto-promotes. The bar generalizes
// rspclient's pair soak to a ring: zero lost AND zero duplicated
// uploads summed across every partition's surviving store, with the
// scatter-gather read path answering throughout and the partial-results
// header observed during the outage.

import (
	"crypto/rand"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"opinions/internal/blindsig"
	"opinions/internal/cluster"
	"opinions/internal/faultinject"
	"opinions/internal/replication"
	"opinions/internal/resilience"
	"opinions/internal/rspclient"
	"opinions/internal/rspserver"
	"opinions/internal/simclock"
	"opinions/internal/store"
	"opinions/internal/world"
)

func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestClusterKillOneLeaderSoak(t *testing.T) {
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	clock := simclock.NewSim(simclock.Epoch)

	catalog := make([]*world.Entity, 0, 60)
	for i := 0; i < 60; i++ {
		catalog = append(catalog, &world.Entity{
			ID: world.EntityID(fmt.Sprintf("s%02d", i)), Service: world.Yelp,
			Zip: "48104", Category: "chinese", Name: fmt.Sprintf("Soak %02d", i),
			Quality: 1 + float64(i%5),
		})
	}

	// One issuer for the whole ring: a token signed anywhere is
	// redeemable anywhere, including on a freshly promoted follower.
	issuer, err := blindsig.NewIssuer(1024, 1<<20, 24*time.Hour, clock)
	if err != nil {
		t.Fatal(err)
	}

	// Partition 1 is the replicated pair that loses its leader. Its two
	// nodes share state through semi-sync replication over real stores;
	// partitions 0 and 2 are plain single-node members.
	const victim = 1
	leaderSt, err := store.Open(store.Options{Dir: t.TempDir(), CompactEvery: -1, NoSync: true, Logger: quiet})
	if err != nil {
		t.Fatal(err)
	}
	followerSt, err := store.Open(store.Options{Dir: t.TempDir(), CompactEvery: -1, NoSync: true, Logger: quiet})
	if err != nil {
		t.Fatal(err)
	}
	defer followerSt.Close()

	leader := replication.NewLeader(leaderSt, replication.LeaderOptions{
		SyncCommit: true, AckTimeout: 2 * time.Second, HeartbeatEvery: 20 * time.Millisecond, Logger: quiet,
	})
	repLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go leader.Serve(repLn)

	// Listeners before handlers: the ring needs every node's URL first,
	// so each test server delegates through a late-bound slot. Slots:
	// 0 = partition 0, 1 = leader, 2 = follower, 3 = partition 2.
	handlers := make([]atomic.Pointer[http.Handler], 4)
	ts := make([]*httptest.Server, 4)
	for i := range ts {
		i := i
		ts[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			(*handlers[i].Load()).ServeHTTP(w, r)
		}))
	}
	defer func() {
		for _, s := range ts {
			s.Close()
		}
	}()
	ring, err := cluster.New(cluster.Config{Partitions: []cluster.Partition{
		{Nodes: []string{ts[0].URL}},
		{Nodes: []string{ts[1].URL, ts[2].URL}},
		{Nodes: []string{ts[3].URL}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < ring.NumPartitions(); p++ {
		if len(rspserver.FilterCatalog(ring, p, catalog)) == 0 {
			t.Fatalf("partition %d owns no catalog entities; soak proves nothing", p)
		}
	}

	promoted := make(chan string, 1)
	fol := replication.StartFollower(followerSt, repLn.Addr().String(), replication.FollowerOptions{
		Retry:         resilience.Policy{BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
		Breaker:       &resilience.Breaker{FailureThreshold: 1000, Cooldown: 10 * time.Millisecond},
		FailoverAfter: 400 * time.Millisecond,
		ReadTimeout:   100 * time.Millisecond,
		OnPromote:     func(reason string) { promoted <- reason },
		Logger:        quiet,
	})
	defer fol.Close()

	gatherOpts := rspserver.GatherOptions{Timeout: 250 * time.Millisecond, CacheTTL: -1}
	newNode := func(p int, st *store.Store) *rspserver.Server {
		cfg := rspserver.Config{
			Catalog: rspserver.FilterCatalog(ring, p, catalog),
			Clock:   clock, Issuer: issuer, Store: st,
		}
		srv, err := rspserver.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	srv0 := newNode(0, nil)
	srvL := newNode(victim, leaderSt)
	srvF := newNode(victim, followerSt)
	srv2 := newNode(2, nil)

	install := func(slot, p int, srv *rspserver.Server, mws ...rspserver.Middleware) {
		chain := append([]rspserver.Middleware{rspserver.WithRecovery(quiet)}, mws...)
		chain = append(chain,
			rspserver.WithScatterGather(ring, p, gatherOpts),
			rspserver.WithOwnershipGate(ring, p),
		)
		h := rspserver.Chain(srv.Handler(), chain...)
		handlers[slot].Store(&h)
	}
	// The leader runs the applied-then-truncated injector: some uploads
	// commit but the 2xx never reaches the client, so the retries (fresh
	// token, same idempotency key) are exactly the duplicates the
	// cluster-wide ledger must absorb.
	inj := faultinject.New(faultinject.Config{Seed: 5, TruncateAppliedRate: 0.15})
	install(0, 0, srv0)
	install(1, victim, srvL, inj.Middleware)
	install(2, victim, srvF,
		rspserver.WithFollowerGate(func() bool { return !fol.Promoted() }, ts[1].URL))
	install(3, 2, srv2)

	retry := &resilience.Policy{MaxAttempts: 4, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
	router := rspclient.NewRouter(ring, rspclient.RouterOptions{Retry: retry, ReprobeAfter: -1})

	// One upload, exactly once: a fresh one-time token per attempt but a
	// stable idempotency key, so redelivery after a truncated ack or a
	// failover is absorbed by the ledger instead of applying twice.
	uploadOnce := func(i int) error {
		key := catalog[i%len(catalog)].Key()
		serial := make([]byte, 32)
		if _, err := rand.Read(serial); err != nil {
			return err
		}
		pub, err := router.FetchTokenKey()
		if err != nil {
			return err
		}
		blinded, unblind, err := blindsig.Blind(pub, serial, rand.Reader)
		if err != nil {
			return err
		}
		sig, err := router.SignToken(fmt.Sprintf("soak-dev-%d", i), blinded)
		if err != nil {
			return err
		}
		rec := rspserver.WireRecord{Kind: "visit", Start: clock.Now(), DurationS: 120}
		return router.Upload(rspserver.UploadRequest{
			AnonID: fmt.Sprintf("anon-%d", i),
			Entity: key,
			Record: &rec,
			Token:  rspserver.FromToken(blindsig.Token{Msg: serial, Sig: unblind(sig)}),
			Key:    fmt.Sprintf("soak-%d", i),
		})
	}
	deliver := func(i int) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for {
			err := uploadOnce(i)
			if err == nil {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("upload %d never delivered: %v", i, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	const total = 120
	for i := 0; i < total/2; i++ {
		deliver(i)
	}

	// Quiesce: everything the leader acknowledged must be on the
	// follower before the kill, or the loss would be replication's
	// fault, not the cluster layer's.
	waitUntil(t, 10*time.Second, "follower catch-up", func() bool {
		return leader.Attached() > 0 && fol.Connected() && leader.FollowerAck() >= leaderSt.Seq()
	})
	preKillSeq := leaderSt.Seq()
	if preKillSeq == 0 {
		t.Fatal("no uploads reached the victim partition before the kill")
	}

	// Phase 1 — the leader hangs: requests park until their context
	// dies. A hung preferred node burns its partition's whole gather
	// budget, so every gathered read answers partial for exactly the
	// victim partition while the rest of the ring keeps serving.
	hang := http.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	handlers[1].Store(&hang)

	checkPartial := func(uri string) {
		t.Helper()
		resp, err := http.Get(ts[0].URL + uri)
		if err != nil {
			t.Fatalf("%s during outage: %v", uri, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s during outage = %d, want 200", uri, resp.StatusCode)
		}
		if got := resp.Header.Get(rspserver.PartialHeader); got != "1" {
			t.Fatalf("%s during outage: %s = %q, want %q", uri, rspserver.PartialHeader, got, "1")
		}
	}
	checkPartial("/api/directory")
	checkPartial("/api/search?service=yelp&zip=48104&category=chinese&limit=5")

	// Phase 2 — the unclean kill: sever every client connection
	// (including the parked ones), stop the listener, cut the
	// replication stream. The store is abandoned mid-flight.
	ts[1].CloseClientConnections()
	ts[1].Close()
	leader.Close()
	repLn.Close()

	select {
	case reason := <-promoted:
		t.Logf("follower promoted (%s) at leader seq %d", reason, preKillSeq)
	case <-time.After(10 * time.Second):
		t.Fatal("follower never auto-promoted after leader loss")
	}
	t.Logf("leader chaos before the kill: %+v", inj.Stats())
	if followerSt.Seq() < preKillSeq {
		t.Fatalf("follower promoted at seq %d, behind the leader's acknowledged %d", followerSt.Seq(), preKillSeq)
	}

	// With the follower promoted the ring is whole again: gathered reads
	// return every partition's slice, no partial header.
	resp, err := http.Get(ts[0].URL + "/api/directory")
	if err != nil {
		t.Fatal(err)
	}
	var dir []rspserver.WireEntity
	if err := json.NewDecoder(resp.Body).Decode(&dir); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(rspserver.PartialHeader); got != "" {
		t.Fatalf("post-promotion directory still partial: %q", got)
	}
	if len(dir) != len(catalog) {
		t.Fatalf("post-promotion directory has %d entities, want %d", len(dir), len(catalog))
	}

	// Life goes on: the Router's victim-partition transport fails over
	// to the promoted follower and the second half delivers.
	for i := total / 2; i < total; i++ {
		deliver(i)
	}

	// Zero lost, zero duplicated — summed across every partition's
	// surviving store. Each upload carries exactly one visit record, so
	// the cluster-wide record count IS the delivery count.
	count := func(srv *rspserver.Server) int {
		_, _, hist := srv.Stores()
		return hist.Stats().Records
	}
	got := count(srv0) + count(srv2) + followerSt.Histories().Stats().Records
	if got != total {
		verb, n := "lost", total-got
		if got > total {
			verb, n = "duplicated", got-total
		}
		t.Fatalf("cluster holds %d records, %d uploads sent — %d %s across the failover", got, total, n, verb)
	}

	// Cross-partition fan-out still barriers on every partition, the
	// dead leader's seat now filled by its follower.
	if scanned, _, err := router.FraudSweep(); err != nil {
		t.Fatalf("post-failover fraud sweep: %v", err)
	} else if scanned == 0 {
		t.Fatal("post-failover fraud sweep scanned nothing")
	}
}
