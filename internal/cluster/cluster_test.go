package cluster

import (
	"fmt"
	"strings"
	"testing"

	"opinions/internal/stripe"
)

func threeWay() Config {
	return Config{Partitions: []Partition{
		{Nodes: []string{"http://10.0.0.1:8080", "http://10.0.0.2:8080"}},
		{Nodes: []string{"http://10.0.1.1:8080"}},
		{Nodes: []string{"http://10.0.2.1:8080"}},
	}}
}

func TestParseRoundTrip(t *testing.T) {
	r, err := Parse([]byte(`{"partitions":[
		{"nodes":["http://a:1/","http://b:1"]},
		{"nodes":["http://c:1"]}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	if r.NumPartitions() != 2 {
		t.Fatalf("NumPartitions = %d, want 2", r.NumPartitions())
	}
	// Trailing slashes are trimmed so base+path concatenation works.
	if got := r.Preferred(0); got != "http://a:1" {
		t.Fatalf("Preferred(0) = %q", got)
	}
	if got := r.Nodes(0); len(got) != 2 || got[1] != "http://b:1" {
		t.Fatalf("Nodes(0) = %v", got)
	}
}

func TestValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"empty", `{"partitions":[]}`, "no partitions"},
		{"no nodes", `{"partitions":[{"nodes":[]}]}`, "has no nodes"},
		{"bad scheme", `{"partitions":[{"nodes":["ftp://a:1"]}]}`, "http(s)"},
		{"relative", `{"partitions":[{"nodes":["localhost:8080"]}]}`, "http(s)"},
		{"duplicate node", `{"partitions":[{"nodes":["http://a:1"]},{"nodes":["http://a:1/"]}]}`, "appears in partitions"},
		{"unknown field", `{"partition":[{"nodes":["http://a:1"]}]}`, "parsing config"},
		{"garbage", `{`, "parsing config"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse([]byte(tc.json)); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Parse(%s) err = %v, want substring %q", tc.json, err, tc.want)
			}
		})
	}
}

func TestPartitionMatchesStripeIndexN(t *testing.T) {
	r, err := New(threeWay())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("yelp/entity-%05d", i)
		p := r.Partition(k)
		if p != stripe.IndexN(k, 3) {
			t.Fatalf("Partition(%q) = %d, stripe.IndexN = %d", k, p, stripe.IndexN(k, 3))
		}
		if !r.Owns(p, k) {
			t.Fatalf("Owns(%d, %q) = false for the owning partition", p, k)
		}
		for q := 0; q < 3; q++ {
			if q != p && r.Owns(q, k) {
				t.Fatalf("key %q owned by two partitions (%d and %d)", k, p, q)
			}
		}
		if r.NodeFor(k) != r.Preferred(p) {
			t.Fatalf("NodeFor(%q) = %q, want %q", k, r.NodeFor(k), r.Preferred(p))
		}
	}
}

func TestEveryPartitionGetsKeys(t *testing.T) {
	r, err := New(threeWay())
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, r.NumPartitions())
	for i := 0; i < 3000; i++ {
		counts[r.Partition(fmt.Sprintf("yelp/e%04d", i))]++
	}
	for p, c := range counts {
		if c == 0 {
			t.Fatalf("partition %d owns no keys out of 3000", p)
		}
	}
}
