package inference

import (
	"math"
	"testing"
	"time"

	"opinions/internal/interaction"
	"opinions/internal/stats"
)

var t0 = time.Date(2016, 2, 1, 12, 0, 0, 0, time.UTC)

func visit(at time.Time, dur time.Duration, effortKm float64) interaction.Record {
	return interaction.Record{
		Entity: "yelp/e", Kind: interaction.VisitKind,
		Start: at, Duration: dur, DistanceFrom: effortKm * 1000,
	}
}

func call(at time.Time, dur time.Duration) interaction.Record {
	return interaction.Record{Entity: "yelp/e", Kind: interaction.CallKind, Start: at, Duration: dur}
}

func TestExtractFeaturesShape(t *testing.T) {
	x := ExtractFeatures(EntityEvidence{})
	if len(x) != NumFeatures {
		t.Fatalf("len = %d, want %d", len(x), NumFeatures)
	}
	if len(FeatureNames) != NumFeatures {
		t.Fatal("FeatureNames out of sync")
	}
	for _, v := range x {
		if v != 0 {
			t.Fatalf("empty evidence produced non-zero features: %v", x)
		}
	}
}

func TestExtractFeaturesValues(t *testing.T) {
	ev := EntityEvidence{
		Records: []interaction.Record{
			visit(t0, time.Hour, 2),
			visit(t0.Add(7*24*time.Hour), time.Hour, 4),
			call(t0.Add(3*24*time.Hour), 10*time.Second),
			call(t0.Add(5*24*time.Hour), 3*time.Minute),
		},
		AlternativesTried: 2,
		ChoiceSetSize:     7,
	}
	x := ExtractFeatures(ev)
	byName := map[string]float64{}
	for i, n := range FeatureNames {
		byName[n] = x[i]
	}
	if got := byName["log_visits"]; math.Abs(got-math.Log1p(2)) > 1e-12 {
		t.Errorf("log_visits = %v", got)
	}
	if got := byName["mean_visit_hours"]; math.Abs(got-1) > 1e-12 {
		t.Errorf("mean_visit_hours = %v", got)
	}
	if got := byName["mean_effort_km"]; math.Abs(got-3) > 1e-12 {
		t.Errorf("mean_effort_km = %v", got)
	}
	if got := byName["max_effort_km"]; math.Abs(got-4) > 1e-12 {
		t.Errorf("max_effort_km = %v", got)
	}
	if got := byName["alternatives_tried"]; got != 2 {
		t.Errorf("alternatives_tried = %v", got)
	}
	if got := byName["short_call_frac"]; math.Abs(got-0.5) > 1e-12 {
		t.Errorf("short_call_frac = %v", got)
	}
	if got := byName["complaintish_call_frac"]; math.Abs(got-0.5) > 1e-12 {
		t.Errorf("complaintish_call_frac = %v", got)
	}
	if got := byName["span_days"]; math.Abs(got-7) > 1e-9 {
		t.Errorf("span_days = %v", got)
	}
}

func TestRegularityDistinguishesRoutineFromBursty(t *testing.T) {
	routine := EntityEvidence{Records: []interaction.Record{
		visit(t0, time.Hour, 1),
		visit(t0.Add(7*24*time.Hour), time.Hour, 1),
		visit(t0.Add(14*24*time.Hour), time.Hour, 1),
		visit(t0.Add(21*24*time.Hour), time.Hour, 1),
	}}
	bursty := EntityEvidence{Records: []interaction.Record{
		visit(t0, time.Hour, 1),
		visit(t0.Add(10*time.Minute), time.Hour, 1),
		visit(t0.Add(20*time.Minute), time.Hour, 1),
		visit(t0.Add(30*24*time.Hour), time.Hour, 1),
	}}
	idx := -1
	for i, n := range FeatureNames {
		if n == "gap_regularity" {
			idx = i
		}
	}
	r1 := ExtractFeatures(routine)[idx]
	r2 := ExtractFeatures(bursty)[idx]
	if r1 <= r2 {
		t.Fatalf("routine regularity %v not above bursty %v", r1, r2)
	}
}

// synthExample builds a (features, rating) pair where the rating truly
// depends on effort and exploration, not just counts.
func synthExample(rng *stats.RNG) ([]float64, float64) {
	opinion := rng.Float64() * 5
	// Opinion drives behaviour: better opinion → more visits, more
	// effort, more alternatives tried before settling.
	nVisits := 1 + int(opinion*1.2) + rng.Intn(2)
	var recs []interaction.Record
	cur := t0
	for i := 0; i < nVisits; i++ {
		effort := 0.3 + opinion*0.5 + rng.Normal(0, 0.2)
		if effort < 0.1 {
			effort = 0.1
		}
		recs = append(recs, visit(cur, time.Duration(40+rng.Intn(40))*time.Minute, effort))
		cur = cur.Add(time.Duration(3+rng.Intn(10)) * 24 * time.Hour)
	}
	ev := EntityEvidence{
		Records:           recs,
		AlternativesTried: int(opinion) + rng.Intn(2),
		ChoiceSetSize:     3 + rng.Intn(8),
	}
	// Observed rating: opinion + noise, clamped.
	y := opinion + rng.Normal(0, 0.3)
	if y < 0 {
		y = 0
	}
	if y > 5 {
		y = 5
	}
	return ExtractFeatures(ev), y
}

func trainedModel(t *testing.T, n int) *Model {
	t.Helper()
	rng := stats.NewRNG(42)
	var xs [][]float64
	var ys []float64
	for i := 0; i < n; i++ {
		x, y := synthExample(rng)
		xs = append(xs, x)
		ys = append(ys, y)
	}
	m, err := Train(xs, ys, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTrainRecoversSignal(t *testing.T) {
	m := trainedModel(t, 800)
	// Held-out examples.
	rng := stats.NewRNG(7)
	var pred, truth []float64
	for i := 0; i < 300; i++ {
		x, y := synthExample(rng)
		pred = append(pred, m.Predict(x))
		truth = append(truth, y)
	}
	mae, err := stats.MAE(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if mae > 0.8 {
		t.Fatalf("held-out MAE = %v, want < 0.8 stars", mae)
	}
	r, err := stats.Pearson(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.8 {
		t.Fatalf("prediction correlation = %v, want ≥ 0.8", r)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, nil, 1); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := Train([][]float64{{1}}, []float64{1, 2}, 1); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Train([][]float64{{1}, {2}}, []float64{1, 2}, -1); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := Train([][]float64{{1}, {1, 2}}, []float64{1, 2}, 1); err == nil {
		t.Error("ragged rows accepted")
	}
	// Too few examples for the dimensionality.
	if _, err := Train([][]float64{{1, 2, 3}}, []float64{1}, 1); err == nil {
		t.Error("underdetermined system accepted")
	}
}

func TestTrainConstantFeatureDoesNotBlowUp(t *testing.T) {
	xs := [][]float64{{1, 5}, {2, 5}, {3, 5}, {4, 5}}
	ys := []float64{1, 2, 3, 4}
	m, err := Train(xs, ys, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	got := m.Predict([]float64{2.5, 5})
	if math.Abs(got-2.5) > 0.3 {
		t.Fatalf("predict = %v, want ~2.5", got)
	}
}

func TestPredictClamped(t *testing.T) {
	m := trainedModel(t, 400)
	huge := make([]float64, NumFeatures)
	for i := range huge {
		huge[i] = 1e6
	}
	v := m.Predict(huge)
	if v < 0 || v > 5 {
		t.Fatalf("prediction %v outside [0,5]", v)
	}
}

func TestPredictorAbstainsOnThinEvidence(t *testing.T) {
	m := trainedModel(t, 400)
	p := NewPredictor(m)
	ev := EntityEvidence{Records: []interaction.Record{visit(t0, time.Hour, 1)}}
	if _, ok := p.Infer(ev); ok {
		t.Fatal("predicted from a single interaction")
	}
}

func TestPredictorAbstainsOnOutliers(t *testing.T) {
	m := trainedModel(t, 400)
	p := NewPredictor(m)
	// Plenty of interactions but absurd feature values (e.g. a 1000 km
	// commute to dinner every night) — outside anything seen in
	// training, so the model must not extrapolate.
	var recs []interaction.Record
	for i := 0; i < 10; i++ {
		recs = append(recs, visit(t0.Add(time.Duration(i)*24*time.Hour), 300*time.Hour, 5000))
	}
	if _, ok := p.Infer(EntityEvidence{Records: recs}); ok {
		t.Fatal("predicted on wild out-of-distribution evidence")
	}
}

func TestPredictorInfersOnGoodEvidence(t *testing.T) {
	m := trainedModel(t, 400)
	p := NewPredictor(m)
	var recs []interaction.Record
	for i := 0; i < 5; i++ {
		recs = append(recs, visit(t0.Add(time.Duration(i*6)*24*time.Hour), time.Hour, 2.5))
	}
	ev := EntityEvidence{Records: recs, AlternativesTried: 3, ChoiceSetSize: 6}
	r, ok := p.Infer(ev)
	if !ok {
		t.Fatal("abstained on solid evidence")
	}
	if r < 0 || r > 5 {
		t.Fatalf("rating %v out of range", r)
	}
	// Heavy, effortful, explored interaction should read as positive.
	if r < 2.5 {
		t.Fatalf("rating %v for strong positive evidence", r)
	}
}

func TestTrainedBeatsNaiveOnEffortCases(t *testing.T) {
	m := trainedModel(t, 800)
	p := NewPredictor(m)
	naive := NaiveCountPredictor{}
	rng := stats.NewRNG(13)
	var pTrained, pNaive, truth []float64
	for i := 0; i < 400; i++ {
		x, y := synthExample(rng)
		_ = x
		// Rebuild the evidence to feed both predictors identically.
		// synthExample already extracted features; regenerate evidence
		// with the same distributional mix.
		ev := evidenceFromOpinion(rng, y)
		if r1, ok1 := p.Infer(ev); ok1 {
			if r2, ok2 := naive.Infer(ev); ok2 {
				pTrained = append(pTrained, r1)
				pNaive = append(pNaive, r2)
				truth = append(truth, y)
			}
		}
	}
	if len(truth) < 50 {
		t.Fatalf("only %d comparable cases", len(truth))
	}
	maeT, _ := stats.MAE(pTrained, truth)
	maeN, _ := stats.MAE(pNaive, truth)
	if maeT >= maeN {
		t.Fatalf("trained MAE %v not better than naive %v", maeT, maeN)
	}
}

// evidenceFromOpinion mirrors synthExample's behaviour model.
func evidenceFromOpinion(rng *stats.RNG, opinion float64) EntityEvidence {
	nVisits := 1 + int(opinion*1.2) + rng.Intn(2)
	var recs []interaction.Record
	cur := t0
	for i := 0; i < nVisits; i++ {
		effort := 0.3 + opinion*0.5 + rng.Normal(0, 0.2)
		if effort < 0.1 {
			effort = 0.1
		}
		recs = append(recs, visit(cur, time.Duration(40+rng.Intn(40))*time.Minute, effort))
		cur = cur.Add(time.Duration(3+rng.Intn(10)) * 24 * time.Hour)
	}
	return EntityEvidence{
		Records:           recs,
		AlternativesTried: int(opinion) + rng.Intn(2),
		ChoiceSetSize:     3 + rng.Intn(8),
	}
}

func TestNaivePredictorMonotoneInCount(t *testing.T) {
	naive := NaiveCountPredictor{}
	mk := func(n int) EntityEvidence {
		var recs []interaction.Record
		for i := 0; i < n; i++ {
			recs = append(recs, visit(t0.Add(time.Duration(i)*24*time.Hour), time.Hour, 1))
		}
		return EntityEvidence{Records: recs}
	}
	r3, ok3 := naive.Infer(mk(3))
	r10, ok10 := naive.Infer(mk(10))
	if !ok3 || !ok10 {
		t.Fatal("naive abstained unexpectedly")
	}
	if r10 <= r3 {
		t.Fatalf("naive not monotone: %v vs %v", r3, r10)
	}
	if _, ok := naive.Infer(mk(1)); ok {
		t.Fatal("naive predicted below evidence floor")
	}
}

func TestTrainSetPerCategory(t *testing.T) {
	rng := stats.NewRNG(55)
	var xs [][]float64
	var ys []float64
	var cats []string
	// Two categories with different rating offsets plus uncategorized
	// pairs.
	for i := 0; i < 120; i++ {
		x, y := synthExample(rng)
		xs = append(xs, x)
		switch i % 3 {
		case 0:
			ys = append(ys, clampTo5(y+0.5))
			cats = append(cats, "restaurant")
		case 1:
			ys = append(ys, clampTo5(y-0.5))
			cats = append(cats, "dentist")
		default:
			ys = append(ys, y)
			cats = append(cats, "")
		}
	}
	set, err := TrainSet(xs, ys, cats, 1.0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if set.Global == nil {
		t.Fatal("no global model")
	}
	if len(set.PerCategory) != 2 {
		t.Fatalf("per-category models = %d, want 2", len(set.PerCategory))
	}
	// For falls back to global for unknown categories.
	if set.For("plumber") != set.Global {
		t.Fatal("unknown category did not fall back to global")
	}
	if set.For("restaurant") == set.Global {
		t.Fatal("trained category fell back to global")
	}
	// Below the per-category minimum nothing is trained.
	set2, err := TrainSet(xs[:40], ys[:40], cats[:40], 1.0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(set2.PerCategory) != 0 {
		t.Fatalf("under-threshold categories trained: %d", len(set2.PerCategory))
	}
}

func TestTrainSetValidation(t *testing.T) {
	if _, err := TrainSet([][]float64{{1}}, []float64{1}, nil, 1, 0); err == nil {
		t.Fatal("category length mismatch accepted")
	}
	var nilSet *ModelSet
	if nilSet.For("x") != nil {
		t.Fatal("nil set returned a model")
	}
}

func clampTo5(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 5 {
		return 5
	}
	return v
}

func TestSolveSingular(t *testing.T) {
	// Two identical rows with zero penalty → singular.
	a := [][]float64{
		{1, 1, 2},
		{1, 1, 2},
	}
	if _, err := solve(a); err == nil {
		t.Fatal("singular system solved")
	}
}
