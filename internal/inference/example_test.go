package inference_test

import (
	"fmt"
	"time"

	"opinions/internal/inference"
	"opinions/internal/interaction"
)

// Abstention in action: the predictor refuses to rate on one
// interaction, exactly as §4.1's footnote requires.
func ExamplePredictor_Infer() {
	// A minimal trained model (identity-ish weights standing in for a
	// real training run; see Train for the real thing).
	model := &inference.Model{
		Weights: make([]float64, inference.NumFeatures+1),
		Mean:    make([]float64, inference.NumFeatures),
		Std:     ones(inference.NumFeatures),
	}
	model.Weights[inference.NumFeatures] = 3.5 // intercept
	predictor := inference.NewPredictor(model)

	thin := inference.EntityEvidence{Records: []interaction.Record{{
		Entity: "yelp/x", Kind: interaction.VisitKind,
		Start: time.Date(2016, 3, 1, 19, 0, 0, 0, time.UTC), Duration: time.Hour,
	}}}
	_, ok := predictor.Infer(thin)
	fmt.Println("one visit rated:", ok)
	// Output:
	// one visit rated: false
}

func ones(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}
