// Package inference implements §4.1's "effort is endorsement" approach:
// "a predictive classifier that takes as input observations of a user's
// interactions with an entity and either outputs a numerical rating
// between 0 and 5 or declares it infeasible to accurately gauge the
// user's opinion."
//
// The paper prescribes three kinds of input features, all implemented
// here: (1) effort the user puts in (distance travelled, time spent),
// (2) whether the user tried alternatives before settling versus
// sticking out of laziness, and (3) the size of the choice set the
// entity was selected from. The model is a ridge regression trained on
// the minority of users who post explicit ratings, with a
// confidence-gated abstention rule standing in for "declares it
// infeasible".
//
// Feature extraction runs on the *client*: the exploration feature needs
// cross-entity knowledge that the server's unlinkable per-(user, entity)
// histories deliberately cannot provide (§4.2).
package inference

import (
	"math"
	"sort"
	"time"

	"opinions/internal/interaction"
)

// EntityEvidence is everything one device knows about its user's
// relationship with one entity, plus the local context features.
type EntityEvidence struct {
	// Records are this user's interactions with the entity, any order.
	Records []interaction.Record
	// AlternativesTried is the number of *other* same-category entities
	// the user has interacted with — §4.1's "tried out many options
	// before settling" signal.
	AlternativesTried int
	// ChoiceSetSize is the number of similar nearby options the entity
	// was chosen from (mapping.Resolver.SimilarNearby).
	ChoiceSetSize int
}

// FeatureNames labels the entries of the vector ExtractFeatures returns,
// in order. Keep in sync with ExtractFeatures.
var FeatureNames = []string{
	"log_visits",
	"log_calls",
	"log_payments",
	"mean_visit_hours",
	"mean_effort_km",
	"max_effort_km",
	"gap_regularity",
	"span_days",
	"alternatives_tried",
	"log_choice_set",
	"short_call_frac",
	"complaintish_call_frac",
}

// NumFeatures is the dimensionality of the feature vector.
var NumFeatures = len(FeatureNames)

// ExtractFeatures computes the §4.1 feature vector from evidence.
func ExtractFeatures(ev EntityEvidence) []float64 {
	var visits, calls, payments int
	var durSum time.Duration
	var effortSum, effortMax float64
	var shortCalls, longCalls int
	var starts []time.Time
	for _, r := range ev.Records {
		starts = append(starts, r.Start)
		switch r.Kind {
		case interaction.VisitKind:
			visits++
			durSum += r.Duration
			km := r.DistanceFrom / 1000
			effortSum += km
			if km > effortMax {
				effortMax = km
			}
		case interaction.CallKind:
			calls++
			if r.Duration < 30*time.Second {
				shortCalls++
			}
			if r.Duration > 2*time.Minute {
				longCalls++
			}
		case interaction.PaymentKind:
			payments++
		}
	}

	meanVisitHours := 0.0
	meanEffort := 0.0
	if visits > 0 {
		meanVisitHours = durSum.Hours() / float64(visits)
		meanEffort = effortSum / float64(visits)
	}

	// Gap regularity: 1/(1+CV) of inter-interaction gaps. Routine,
	// evenly spaced interactions score near 1; bursty ones near 0.
	regularity := 0.0
	if len(starts) >= 3 {
		sort.Slice(starts, func(i, j int) bool { return starts[i].Before(starts[j]) })
		var gaps []float64
		for i := 1; i < len(starts); i++ {
			gaps = append(gaps, starts[i].Sub(starts[i-1]).Hours())
		}
		mean := 0.0
		for _, g := range gaps {
			mean += g
		}
		mean /= float64(len(gaps))
		if mean > 0 {
			varSum := 0.0
			for _, g := range gaps {
				d := g - mean
				varSum += d * d
			}
			cv := math.Sqrt(varSum/float64(len(gaps))) / mean
			regularity = 1 / (1 + cv)
		}
	}

	spanDays := 0.0
	if len(starts) >= 2 {
		sort.Slice(starts, func(i, j int) bool { return starts[i].Before(starts[j]) })
		spanDays = starts[len(starts)-1].Sub(starts[0]).Hours() / 24
	}

	shortFrac, complaintFrac := 0.0, 0.0
	if calls > 0 {
		shortFrac = float64(shortCalls) / float64(calls)
		complaintFrac = float64(longCalls) / float64(calls)
	}

	return []float64{
		math.Log1p(float64(visits)),
		math.Log1p(float64(calls)),
		math.Log1p(float64(payments)),
		meanVisitHours,
		meanEffort,
		effortMax,
		regularity,
		spanDays,
		float64(ev.AlternativesTried),
		math.Log1p(float64(ev.ChoiceSetSize)),
		shortFrac,
		complaintFrac,
	}
}

// InteractionCount returns the total number of records in the evidence.
func (ev EntityEvidence) InteractionCount() int { return len(ev.Records) }
