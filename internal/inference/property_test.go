package inference

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"opinions/internal/interaction"
	"opinions/internal/stats"
)

// Property: ExtractFeatures always returns exactly NumFeatures finite
// values, for arbitrary record mixes.
func TestExtractFeaturesTotal(t *testing.T) {
	f := func(kinds []uint8, durS []uint16, distM []uint16, alt, choice uint8) bool {
		var recs []interaction.Record
		for i, k := range kinds {
			var dur time.Duration
			var dist float64
			if i < len(durS) {
				dur = time.Duration(durS[i]) * time.Second
			}
			if i < len(distM) {
				dist = float64(distM[i])
			}
			recs = append(recs, interaction.Record{
				Entity:   "e",
				Kind:     interaction.Kind(int(k) % 3),
				Start:    t0.Add(time.Duration(i) * time.Hour),
				Duration: dur, DistanceFrom: dist,
			})
		}
		x := ExtractFeatures(EntityEvidence{
			Records:           recs,
			AlternativesTried: int(alt),
			ChoiceSetSize:     int(choice),
		})
		if len(x) != NumFeatures {
			return false
		}
		for _, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a trained model's prediction is always within [0, 5], no
// matter how wild the input features are.
func TestPredictAlwaysClamped(t *testing.T) {
	m := trainedModel(t, 300)
	f := func(raw []float64) bool {
		x := make([]float64, NumFeatures)
		for i := range x {
			if i < len(raw) && !math.IsNaN(raw[i]) && !math.IsInf(raw[i], 0) {
				x[i] = raw[i]
			}
		}
		v := m.Predict(x)
		return v >= 0 && v <= 5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: training on any consistent linear signal recovers it well
// enough to beat a constant predictor.
func TestTrainBeatsConstantBaseline(t *testing.T) {
	rng := stats.NewRNG(77)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 300; i++ {
		x, y := synthExample(rng)
		xs = append(xs, x)
		ys = append(ys, y)
	}
	m, err := Train(xs, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	meanY, _ := stats.Mean(ys)
	var ssModel, ssConst float64
	for i, x := range xs {
		d1 := m.Predict(x) - ys[i]
		d2 := meanY - ys[i]
		ssModel += d1 * d1
		ssConst += d2 * d2
	}
	if ssModel >= ssConst {
		t.Fatalf("model SSE %v not below constant baseline %v", ssModel, ssConst)
	}
}
