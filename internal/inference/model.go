package inference

import (
	"errors"
	"fmt"
	"math"
)

// Model is a ridge regression over standardized features. Exported
// fields make the model serializable, so the RSP can train centrally on
// volunteered (features, rating) pairs and ship the model to clients.
type Model struct {
	// Weights has NumFeatures entries plus a trailing intercept.
	Weights []float64 `json:"weights"`
	// Mean and Std standardize inputs before applying Weights.
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`
	// Lambda is the ridge penalty the model was trained with.
	Lambda float64 `json:"lambda"`
	// ResidualStd is the training-set residual standard deviation, used
	// by the abstention rule.
	ResidualStd float64 `json:"residual_std"`
	// N is the number of training examples.
	N int `json:"n"`
}

// Train fits a ridge regression of ys on xs with penalty lambda. Each
// row of xs must have the same length; lambda must be non-negative. At
// least dim+1 examples are required.
func Train(xs [][]float64, ys []float64, lambda float64) (*Model, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("inference: %d feature rows vs %d labels", len(xs), len(ys))
	}
	if lambda < 0 {
		return nil, errors.New("inference: negative ridge penalty")
	}
	dim := len(xs[0])
	if dim == 0 {
		return nil, errors.New("inference: empty feature vectors")
	}
	for i, x := range xs {
		if len(x) != dim {
			return nil, fmt.Errorf("inference: row %d has %d features, want %d", i, len(x), dim)
		}
	}
	if len(xs) < dim+1 {
		return nil, fmt.Errorf("inference: %d examples insufficient for %d features", len(xs), dim)
	}

	// Standardize features.
	mean := make([]float64, dim)
	std := make([]float64, dim)
	for j := 0; j < dim; j++ {
		for _, x := range xs {
			mean[j] += x[j]
		}
		mean[j] /= float64(len(xs))
		for _, x := range xs {
			d := x[j] - mean[j]
			std[j] += d * d
		}
		std[j] = math.Sqrt(std[j] / float64(len(xs)))
		if std[j] < 1e-9 {
			std[j] = 1 // constant feature: neutralize rather than blow up
		}
	}
	z := make([][]float64, len(xs))
	for i, x := range xs {
		row := make([]float64, dim+1)
		for j := 0; j < dim; j++ {
			row[j] = (x[j] - mean[j]) / std[j]
		}
		row[dim] = 1 // intercept
		z[i] = row
	}

	// Normal equations: (Z'Z + λI)w = Z'y, intercept unpenalized.
	d1 := dim + 1
	a := make([][]float64, d1)
	for i := range a {
		a[i] = make([]float64, d1+1)
	}
	for _, row := range z {
		for i := 0; i < d1; i++ {
			for j := 0; j < d1; j++ {
				a[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < dim; i++ {
		a[i][i] += lambda
	}
	for k, row := range z {
		for i := 0; i < d1; i++ {
			a[i][d1] += row[i] * ys[k]
		}
	}
	w, err := solve(a)
	if err != nil {
		return nil, err
	}

	m := &Model{Weights: w, Mean: mean, Std: std, Lambda: lambda, N: len(xs)}
	// Residual spread on the training set.
	var ss float64
	for i, x := range xs {
		r := m.Predict(x) - ys[i]
		ss += r * r
	}
	m.ResidualStd = math.Sqrt(ss / float64(len(xs)))
	return m, nil
}

// solve performs Gaussian elimination with partial pivoting on an
// augmented matrix a (n rows, n+1 columns), returning the solution.
func solve(a [][]float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, errors.New("inference: singular design matrix")
		}
		a[col], a[pivot] = a[pivot], a[col]
		// Eliminate.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c <= n; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		w[i] = a[i][n] / a[i][i]
	}
	return w, nil
}

// Predict returns the model's raw rating estimate for a feature vector,
// clamped to [0, 5].
func (m *Model) Predict(x []float64) float64 {
	dim := len(m.Mean)
	v := m.Weights[dim] // intercept
	for j := 0; j < dim && j < len(x); j++ {
		v += m.Weights[j] * (x[j] - m.Mean[j]) / m.Std[j]
	}
	return clamp(v, 0, 5)
}

// zMax returns the largest absolute standardized coordinate of x — how
// far outside the training distribution this example sits.
func (m *Model) zMax(x []float64) float64 {
	var z float64
	for j := 0; j < len(m.Mean) && j < len(x); j++ {
		v := math.Abs((x[j] - m.Mean[j]) / m.Std[j])
		if v > z {
			z = v
		}
	}
	return z
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ModelSet bundles the global model with per-category refinements.
// Effort scales differ wildly across domains — a 2 km trip to dinner is
// routine, a 2 km trip to the third dentist visit is devotion — so the
// RSP trains one model per category wherever the vocal minority
// volunteered enough pairs, falling back to the global model elsewhere.
type ModelSet struct {
	Global      *Model            `json:"global"`
	PerCategory map[string]*Model `json:"per_category,omitempty"`
}

// For returns the best model for a category: the category's own when
// trained, otherwise the global one.
func (s *ModelSet) For(category string) *Model {
	if s == nil {
		return nil
	}
	if m, ok := s.PerCategory[category]; ok && m != nil {
		return m
	}
	return s.Global
}

// TrainSet fits the global model plus per-category models for every
// category with at least minPerCategory examples (default 2×features).
// Categories may be empty strings (uncategorized pairs train only the
// global model).
func TrainSet(xs [][]float64, ys []float64, categories []string, lambda float64, minPerCategory int) (*ModelSet, error) {
	if len(categories) != len(xs) {
		return nil, fmt.Errorf("inference: %d categories for %d rows", len(categories), len(xs))
	}
	global, err := Train(xs, ys, lambda)
	if err != nil {
		return nil, err
	}
	if minPerCategory <= 0 {
		minPerCategory = 2 * len(xs[0])
	}
	set := &ModelSet{Global: global}
	byCat := map[string][]int{}
	for i, c := range categories {
		if c != "" {
			byCat[c] = append(byCat[c], i)
		}
	}
	for cat, idx := range byCat {
		if len(idx) < minPerCategory {
			continue
		}
		cx := make([][]float64, len(idx))
		cy := make([]float64, len(idx))
		for k, i := range idx {
			cx[k] = xs[i]
			cy[k] = ys[i]
		}
		m, err := Train(cx, cy, lambda)
		if err != nil {
			continue // singular category design: global covers it
		}
		if set.PerCategory == nil {
			set.PerCategory = make(map[string]*Model)
		}
		set.PerCategory[cat] = m
	}
	return set, nil
}

// Predictor wraps a trained Model with the abstention rule: "an RSP must
// strive to identify instances when accurate inference is infeasible and
// choose to avoid making a judgement" (§4.1 footnote).
type Predictor struct {
	Model *Model
	// MinInteractions is the evidence floor; below it the predictor
	// always abstains (default 3).
	MinInteractions int
	// MaxZ abstains when any feature lies further than this many
	// training standard deviations from the training mean (default 4) —
	// the model would be extrapolating.
	MaxZ float64
}

// NewPredictor returns a predictor with default abstention thresholds.
func NewPredictor(m *Model) *Predictor {
	return &Predictor{Model: m, MinInteractions: 3, MaxZ: 4}
}

// Infer returns the inferred rating for the evidence, or ok=false when
// inference is infeasible.
func (p *Predictor) Infer(ev EntityEvidence) (rating float64, ok bool) {
	min := p.MinInteractions
	if min <= 0 {
		min = 3
	}
	if ev.InteractionCount() < min {
		return 0, false
	}
	x := ExtractFeatures(ev)
	maxZ := p.MaxZ
	if maxZ <= 0 {
		maxZ = 4
	}
	if p.Model.zMax(x) > maxZ {
		return 0, false
	}
	return p.Model.Predict(x), true
}

// NaiveCountPredictor is the strawman §4.1 warns against: repetition as
// endorsement, ignoring effort, exploration, and choice set. Experiment
// E2 compares the trained predictor against it.
type NaiveCountPredictor struct {
	// MinInteractions mirrors the trained predictor's evidence floor so
	// the comparison is fair (default 3).
	MinInteractions int
}

// Infer maps interaction count to a rating: more repetition, higher
// rating.
func (n NaiveCountPredictor) Infer(ev EntityEvidence) (float64, bool) {
	min := n.MinInteractions
	if min <= 0 {
		min = 3
	}
	c := ev.InteractionCount()
	if c < min {
		return 0, false
	}
	return clamp(2.0+math.Log2(float64(c))*0.6, 0, 5), true
}
