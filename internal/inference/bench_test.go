package inference

import (
	"testing"

	"opinions/internal/stats"
)

func benchEvidence() EntityEvidence {
	rng := stats.NewRNG(1)
	return evidenceFromOpinion(rng, 3.8)
}

func BenchmarkExtractFeatures(b *testing.B) {
	ev := benchEvidence()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExtractFeatures(ev)
	}
}

func BenchmarkTrain(b *testing.B) {
	rng := stats.NewRNG(2)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 500; i++ {
		x, y := synthExample(rng)
		xs = append(xs, x)
		ys = append(ys, y)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(xs, ys, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	rng := stats.NewRNG(3)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 300; i++ {
		x, y := synthExample(rng)
		xs = append(xs, x)
		ys = append(ys, y)
	}
	m, err := Train(xs, ys, 1)
	if err != nil {
		b.Fatal(err)
	}
	x := xs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(x)
	}
}

func BenchmarkInferWithAbstention(b *testing.B) {
	rng := stats.NewRNG(4)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 300; i++ {
		x, y := synthExample(rng)
		xs = append(xs, x)
		ys = append(ys, y)
	}
	m, err := Train(xs, ys, 1)
	if err != nil {
		b.Fatal(err)
	}
	p := NewPredictor(m)
	ev := benchEvidence()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Infer(ev)
	}
}
