package search

import (
	"fmt"
	"testing"

	"opinions/internal/aggregate"
	"opinions/internal/history"
	"opinions/internal/interaction"
	"opinions/internal/reviews"
	"opinions/internal/world"
)

// benchEngine builds an engine over 2,000 entities with evidence spread
// across the stores.
func benchEngine(b *testing.B) *Engine {
	b.Helper()
	var catalog []*world.Entity
	rev := reviews.NewStore()
	ops := aggregate.NewOpinionStore()
	hists := history.NewServerStore()
	for i := 0; i < 2000; i++ {
		e := &world.Entity{
			ID: world.EntityID(fmt.Sprintf("e%04d", i)), Service: world.Yelp,
			Zip: fmt.Sprintf("z%d", i%10), Category: "cafe", Quality: 3,
		}
		catalog = append(catalog, e)
		if i%3 == 0 {
			rev.Seed(e.Key(), 5+i%40, 3.5, t0)
		}
		if i%2 == 0 {
			for k := 0; k < 1+i%8; k++ {
				ops.Add(e.Key(), 3.5)
			}
		}
		if i%5 == 0 {
			id := fmt.Sprintf("anon-%d", i)
			_ = hists.Append(id, e.Key(), interaction.Record{
				Entity: e.Key(), Kind: interaction.VisitKind, Start: t0,
			})
		}
	}
	return NewEngine(catalog, rev, ops, hists)
}

func BenchmarkSearch200Results(b *testing.B) {
	e := benchEngine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Search(Query{Service: world.Yelp, Zip: "z3", Category: "cafe"})
	}
}

func BenchmarkDescribe(b *testing.B) {
	e := benchEngine(b)
	ent := e.Entity("yelp/e0000")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Describe(ent)
	}
}
