package search

import (
	"testing"
	"time"

	"opinions/internal/aggregate"
	"opinions/internal/history"
	"opinions/internal/interaction"
	"opinions/internal/reviews"
	"opinions/internal/world"
)

var t0 = time.Date(2016, 4, 1, 19, 0, 0, 0, time.UTC)

func catalog() []*world.Entity {
	return []*world.Entity{
		{ID: "a", Service: world.Yelp, Zip: "48104", Category: "chinese", Quality: 4},
		{ID: "b", Service: world.Yelp, Zip: "48104", Category: "chinese", Quality: 3},
		{ID: "c", Service: world.Yelp, Zip: "48104", Category: "thai", Quality: 5},
		{ID: "d", Service: world.Yelp, Zip: "99999", Category: "chinese", Quality: 5},
	}
}

func TestSearchFiltersByQuery(t *testing.T) {
	e := NewEngine(catalog(), nil, nil, nil)
	got := e.Search(Query{Service: world.Yelp, Zip: "48104", Category: "chinese"})
	if len(got) != 2 {
		t.Fatalf("results = %d, want 2", len(got))
	}
	for _, r := range got {
		if r.Entity.Category != "chinese" || r.Entity.Zip != "48104" {
			t.Fatalf("wrong result %+v", r.Entity)
		}
	}
	if got := e.Search(Query{Service: world.Yelp, Zip: "48104", Category: "sushi"}); len(got) != 0 {
		t.Fatalf("empty category returned %d", len(got))
	}
}

func TestSearchCaseInsensitiveCategory(t *testing.T) {
	e := NewEngine(catalog(), nil, nil, nil)
	got := e.Search(Query{Service: world.Yelp, Zip: "48104", Category: "Chinese"})
	if len(got) != 2 {
		t.Fatalf("case-insensitive search returned %d", len(got))
	}
}

func TestRankingPrefersEvidence(t *testing.T) {
	rev := reviews.NewStore()
	// Entity b: many solid reviews. Entity a: one perfect review.
	for i := 0; i < 40; i++ {
		_, _ = rev.Post(reviews.Review{Entity: "yelp/b", Rating: 4.5, Time: t0})
	}
	_, _ = rev.Post(reviews.Review{Entity: "yelp/a", Rating: 5, Time: t0})
	e := NewEngine(catalog(), rev, nil, nil)
	got := e.Search(Query{Service: world.Yelp, Zip: "48104", Category: "chinese"})
	if got[0].Entity.ID != "b" {
		t.Fatalf("top result = %s; shrinkage should prefer 40×4.5 over 1×5.0", got[0].Entity.ID)
	}
}

func TestInferredOpinionsBoostRanking(t *testing.T) {
	rev := reviews.NewStore()
	ops := aggregate.NewOpinionStore()
	// Both entities have one mediocre review; entity a additionally has
	// many strong inferred opinions.
	_, _ = rev.Post(reviews.Review{Entity: "yelp/a", Rating: 3, Time: t0})
	_, _ = rev.Post(reviews.Review{Entity: "yelp/b", Rating: 3, Time: t0})
	for i := 0; i < 30; i++ {
		ops.Add("yelp/a", 4.6)
	}
	e := NewEngine(catalog(), rev, ops, nil)
	got := e.Search(Query{Service: world.Yelp, Zip: "48104", Category: "chinese"})
	if got[0].Entity.ID != "a" {
		t.Fatal("inferred opinions did not influence ranking")
	}
	if got[0].InferredCount != 30 {
		t.Fatalf("InferredCount = %d", got[0].InferredCount)
	}
	if got[0].OpinionsPooled() != 31 {
		t.Fatalf("OpinionsPooled = %d", got[0].OpinionsPooled())
	}
}

func TestDescribeIncludesAggregate(t *testing.T) {
	hists := history.NewServerStore()
	id := history.AnonID([]byte("ru"), "yelp/a")
	for i := 0; i < 3; i++ {
		_ = hists.Append(id, "yelp/a", interaction.Record{
			Entity: "yelp/a", Kind: interaction.VisitKind,
			Start: t0.Add(time.Duration(i*7*24) * time.Hour), Duration: time.Hour, DistanceFrom: 2000,
		})
	}
	e := NewEngine(catalog(), nil, nil, hists)
	r := e.Describe(e.Entity("yelp/a"))
	if r.Aggregate == nil {
		t.Fatal("no aggregate for entity with histories")
	}
	if r.Aggregate.VisitsPerUser[3] != 1 {
		t.Fatalf("aggregate histogram = %v", r.Aggregate.VisitsPerUser)
	}
	rb := e.Describe(e.Entity("yelp/b"))
	if rb.Aggregate != nil {
		t.Fatal("aggregate invented for entity without histories")
	}
}

func TestCalibratedReviewCountFallback(t *testing.T) {
	// Crawl-universe entities carry pre-calibrated counts.
	ents := []*world.Entity{
		{ID: "x", Service: world.Yelp, Zip: "1", Category: "c", Quality: 4.2, ReviewCount: 77},
	}
	e := NewEngine(ents, reviews.NewStore(), nil, nil)
	r := e.Describe(ents[0])
	if r.ReviewCount != 77 {
		t.Fatalf("ReviewCount = %d, want calibrated 77", r.ReviewCount)
	}
	if r.ReviewMean != 4.2 {
		t.Fatalf("ReviewMean = %v", r.ReviewMean)
	}
}

func TestSearchLimit(t *testing.T) {
	e := NewEngine(catalog(), nil, nil, nil)
	got := e.Search(Query{Service: world.Yelp, Zip: "48104", Category: "chinese", Limit: 1})
	if len(got) != 1 {
		t.Fatalf("limited results = %d", len(got))
	}
}

func TestSearchDeterministicTieBreak(t *testing.T) {
	e := NewEngine(catalog(), reviews.NewStore(), nil, nil)
	a := e.Search(Query{Service: world.Yelp, Zip: "48104", Category: "chinese"})
	b := e.Search(Query{Service: world.Yelp, Zip: "48104", Category: "chinese"})
	for i := range a {
		if a[i].Entity.ID != b[i].Entity.ID {
			t.Fatal("search order not deterministic")
		}
	}
}

func TestEntityLookup(t *testing.T) {
	e := NewEngine(catalog(), nil, nil, nil)
	if e.Entity("yelp/a") == nil {
		t.Fatal("known entity not found")
	}
	if e.Entity("yelp/zzz") != nil {
		t.Fatal("unknown entity found")
	}
}
