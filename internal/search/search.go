// Package search is the RSP's query engine, extended the way §3.1
// envisions: "For every search result, the RSP can show not only
// reviews explicitly contributed by users but also a summary of
// inferred opinions."
//
// A query is (zip code, category), mirroring the paper's measurement
// methodology. Each result carries three layers of evidence: explicit
// review statistics, the inferred-opinion summary, and the comparative
// visualization data of Figure 3.
package search

import (
	"sort"
	"strings"

	"opinions/internal/aggregate"
	"opinions/internal/history"
	"opinions/internal/reviews"
	"opinions/internal/world"
)

// Query selects entities by location and category.
type Query struct {
	Service  world.ServiceKind
	Zip      string
	Category string
	// Limit bounds the number of results (0 = all).
	Limit int
}

// Result is one ranked search result.
type Result struct {
	Entity *world.Entity

	// Explicit review evidence.
	ReviewCount int
	ReviewMean  float64

	// Inferred opinion evidence (§3.1's "summary of inferences").
	InferredCount     int
	InferredMean      float64
	InferredHistogram [11]int

	// Comparative visualization payload (Figure 3); nil when the entity
	// has no interaction histories.
	Aggregate *aggregate.EntityAggregate

	// Score is the ranking score combining all evidence.
	Score float64
}

// OpinionsPooled is the total evidence behind the result: explicit plus
// inferred opinions. Experiment E1's coverage metric.
func (r *Result) OpinionsPooled() int { return r.ReviewCount + r.InferredCount }

// Engine answers queries over a catalog, joining the three evidence
// stores. All stores may be shared with concurrent writers; Engine only
// reads.
type Engine struct {
	reviews   *reviews.Store
	opinions  *aggregate.OpinionStore
	histories *history.ServerStore

	byQuery map[string][]*world.Entity
	byKey   map[string]*world.Entity
}

// inferredDiscount down-weights an inferred opinion relative to an
// explicit review when ranking: inference is useful but uncertain
// (§4.1).
const inferredDiscount = 0.7

// ratingPrior and priorWeight implement a Bayesian shrinkage toward an
// uninformative 3.0 so entities with one 5-star review do not outrank
// entities with fifty 4.5s.
const (
	ratingPrior = 3.0
	priorWeight = 5.0
)

// NewEngine indexes the catalog. Stores may be nil, in which case that
// evidence layer is absent (a reviews-only engine reproduces today's
// RSPs).
func NewEngine(catalog []*world.Entity, rev *reviews.Store, ops *aggregate.OpinionStore, hists *history.ServerStore) *Engine {
	e := &Engine{
		reviews:   rev,
		opinions:  ops,
		histories: hists,
		byQuery:   make(map[string][]*world.Entity),
		byKey:     make(map[string]*world.Entity, len(catalog)),
	}
	for _, ent := range catalog {
		e.byKey[ent.Key()] = ent
		e.byQuery[queryKey(ent.Service, ent.Zip, ent.Category)] = append(
			e.byQuery[queryKey(ent.Service, ent.Zip, ent.Category)], ent)
	}
	return e
}

func queryKey(svc world.ServiceKind, zip, cat string) string {
	return string(svc) + "|" + zip + "|" + strings.ToLower(cat)
}

// Entity returns the catalog entry for a key, or nil.
func (e *Engine) Entity(key string) *world.Entity { return e.byKey[key] }

// Search returns ranked results for the query.
func (e *Engine) Search(q Query) []Result {
	ents := e.byQuery[queryKey(q.Service, q.Zip, q.Category)]
	results := make([]Result, 0, len(ents))
	for _, ent := range ents {
		results = append(results, e.Describe(ent))
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		return results[i].Entity.ID < results[j].Entity.ID
	})
	if q.Limit > 0 && q.Limit < len(results) {
		results = results[:q.Limit]
	}
	return results
}

// Describe assembles the full evidence view of one entity.
func (e *Engine) Describe(ent *world.Entity) Result {
	r := Result{Entity: ent}
	if e.reviews != nil {
		r.ReviewCount = e.reviews.Count(ent.Key())
		r.ReviewMean, _ = e.reviews.Mean(ent.Key())
	}
	// The crawl universe carries pre-calibrated review counts; live
	// stores override them when present.
	if r.ReviewCount == 0 && ent.ReviewCount > 0 {
		r.ReviewCount = ent.ReviewCount
		r.ReviewMean = ent.Quality
	}
	if e.opinions != nil {
		r.InferredCount = e.opinions.Count(ent.Key())
		r.InferredMean, _ = e.opinions.Mean(ent.Key())
		r.InferredHistogram = e.opinions.Histogram(ent.Key())
	}
	if e.histories != nil {
		if hists := e.histories.ByEntity(ent.Key()); len(hists) > 0 {
			r.Aggregate = aggregate.Build(ent.Key(), hists)
		}
	}
	r.Score = score(r)
	return r
}

// score ranks by shrunk weighted mean rating, then evidence volume.
func score(r Result) float64 {
	wReview := float64(r.ReviewCount)
	wInferred := float64(r.InferredCount) * inferredDiscount
	num := ratingPrior*priorWeight + r.ReviewMean*wReview + r.InferredMean*wInferred
	den := priorWeight + wReview + wInferred
	return num / den
}
