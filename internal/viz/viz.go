// Package viz renders the experiment harness's data as terminal plots
// and CSV files. The paper's artifacts are figures; cmd/experiments can
// therefore show an actual curve (-plot) or emit plotting-ready CSV
// (-csv) instead of only printing summary rows.
//
// The ASCII renderer is deliberately simple: fixed-size grid, one
// character per series, log-x support for the heavy-tailed Figure 1
// axes.
package viz

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one labelled line of (x, y) points, y typically in [0, 1]
// for CDFs.
type Series struct {
	Label  string
	X, Y   []float64
	Marker byte
}

// Plot is a terminal chart.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	// LogX plots x on a log2 axis (Figure 1's style).
	LogX   bool
	Width  int // plot area columns (default 64)
	Height int // plot area rows (default 16)
	Series []Series
}

// defaultMarkers assigns distinct markers when series don't set one.
var defaultMarkers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render draws the plot to w.
func (p *Plot) Render(w io.Writer) {
	width := p.Width
	if width <= 0 {
		width = 64
	}
	height := p.Height
	if height <= 0 {
		height = 16
	}
	// Data bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range p.Series {
		for i := range s.X {
			x, y := p.tx(s.X[i]), s.Y[i]
			if x < minX {
				minX = x
			}
			if x > maxX {
				maxX = x
			}
			if y < minY {
				minY = y
			}
			if y > maxY {
				maxY = y
			}
		}
	}
	if math.IsInf(minX, 1) || maxX == minX {
		fmt.Fprintln(w, p.Title, "(no data)")
		return
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range p.Series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		for i := range s.X {
			cx := int(math.Round((p.tx(s.X[i]) - minX) / (maxX - minX) * float64(width-1)))
			cy := int(math.Round((s.Y[i] - minY) / (maxY - minY) * float64(height-1)))
			row := height - 1 - cy
			if row >= 0 && row < height && cx >= 0 && cx < width {
				grid[row][cx] = marker
			}
		}
	}

	if p.Title != "" {
		fmt.Fprintln(w, p.Title)
	}
	for r, line := range grid {
		yVal := maxY - (maxY-minY)*float64(r)/float64(height-1)
		fmt.Fprintf(w, "%7.2f |%s|\n", yVal, string(line))
	}
	fmt.Fprintf(w, "%7s +%s+\n", "", strings.Repeat("-", width))
	lo, hi := p.untx(minX), p.untx(maxX)
	axis := fmt.Sprintf("%g", lo)
	axisRight := fmt.Sprintf("%g", hi)
	pad := width - len(axis) - len(axisRight)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(w, "%8s%s%s%s", "", axis, strings.Repeat(" ", pad), axisRight)
	if p.XLabel != "" {
		fmt.Fprintf(w, "  (%s", p.XLabel)
		if p.LogX {
			fmt.Fprint(w, ", log scale")
		}
		fmt.Fprint(w, ")")
	}
	fmt.Fprintln(w)
	// Legend.
	for si, s := range p.Series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		fmt.Fprintf(w, "%9c %s\n", marker, s.Label)
	}
}

func (p *Plot) tx(x float64) float64 {
	if p.LogX {
		if x < 1 {
			x = 1
		}
		return math.Log2(x)
	}
	return x
}

func (p *Plot) untx(x float64) float64 {
	if p.LogX {
		return math.Round(math.Exp2(x))
	}
	return x
}

// WriteCSV emits the plot's series as tidy CSV: label,x,y — the format
// every plotting tool ingests directly.
func WriteCSV(w io.Writer, series []Series) error {
	if _, err := fmt.Fprintln(w, "series,x,y"); err != nil {
		return err
	}
	for _, s := range series {
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", csvEscape(s.Label), s.X[i], s.Y[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Bars renders a simple horizontal bar chart for labelled values.
func Bars(w io.Writer, title string, labels []string, values []float64, unit string) {
	fmt.Fprintln(w, title)
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	sortIdx := make([]int, len(values))
	for i := range sortIdx {
		sortIdx[i] = i
	}
	sort.SliceStable(sortIdx, func(a, b int) bool { return values[sortIdx[a]] > values[sortIdx[b]] })
	for _, i := range sortIdx {
		n := int(values[i] / maxV * 40)
		fmt.Fprintf(w, "  %-*s %8.1f %s %s\n", maxL, labels[i], values[i], unit, strings.Repeat("█", n))
	}
}
