package viz

import (
	"bytes"
	"strings"
	"testing"
)

func cdfSeries() []Series {
	return []Series{
		{Label: "yelp", X: []float64{1, 4, 16, 64, 256, 1024}, Y: []float64{0.02, 0.12, 0.39, 0.75, 0.95, 1.0}},
		{Label: "healthgrades", X: []float64{1, 4, 16, 64}, Y: []float64{0.11, 0.46, 0.88, 1.0}},
	}
}

func TestPlotRenderBasics(t *testing.T) {
	p := &Plot{Title: "Figure 1(a)", XLabel: "reviews", LogX: true, Series: cdfSeries()}
	var buf bytes.Buffer
	p.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "Figure 1(a)") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "yelp") || !strings.Contains(out, "healthgrades") {
		t.Fatal("missing legend entries")
	}
	if !strings.Contains(out, "log scale") {
		t.Fatal("missing log-scale note")
	}
	// Both default markers must appear in the grid.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("markers missing from plot area")
	}
	// Y axis covers [~0, 1].
	if !strings.Contains(out, "1.00") {
		t.Fatal("y-axis max missing")
	}
}

func TestPlotEmptyData(t *testing.T) {
	p := &Plot{Title: "empty"}
	var buf bytes.Buffer
	p.Render(&buf)
	if !strings.Contains(buf.String(), "no data") {
		t.Fatal("empty plot did not say so")
	}
}

func TestPlotSinglePointDoesNotPanic(t *testing.T) {
	p := &Plot{Series: []Series{{Label: "one", X: []float64{5, 6}, Y: []float64{1, 1}}}}
	var buf bytes.Buffer
	p.Render(&buf) // flat y: must not divide by zero
	if buf.Len() == 0 {
		t.Fatal("nothing rendered")
	}
}

func TestMarkersPlacedMonotonically(t *testing.T) {
	// For an increasing CDF, markers in later columns must never sit
	// below earlier ones (row index decreases or stays equal).
	p := &Plot{Width: 40, Height: 10, Series: []Series{{
		Label: "cdf",
		X:     []float64{1, 2, 3, 4, 5, 6, 7, 8},
		Y:     []float64{0.1, 0.2, 0.4, 0.5, 0.7, 0.8, 0.9, 1.0},
	}}}
	var buf bytes.Buffer
	p.Render(&buf)
	lines := strings.Split(buf.String(), "\n")
	type pt struct{ row, col int }
	var pts []pt
	for r, line := range lines {
		bar := strings.Index(line, "|")
		if bar < 0 {
			continue
		}
		for c := bar + 1; c < len(line); c++ {
			if line[c] == '*' {
				pts = append(pts, pt{r, c})
			}
		}
	}
	if len(pts) < 4 {
		t.Fatalf("too few markers: %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		for j := 0; j < i; j++ {
			if pts[i].col > pts[j].col && pts[i].row > pts[j].row {
				t.Fatalf("CDF rendered non-monotone: %v after %v", pts[i], pts[j])
			}
		}
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []Series{
		{Label: "a,b", X: []float64{1}, Y: []float64{0.5}},
		{Label: "plain", X: []float64{2, 3}, Y: []float64{0.6, 0.7}},
	}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "series,x,y\n") {
		t.Fatal("missing header")
	}
	if !strings.Contains(out, `"a,b",1,0.5`) {
		t.Fatalf("escaping wrong: %q", out)
	}
	if strings.Count(out, "\n") != 4 {
		t.Fatalf("row count wrong: %q", out)
	}
}

func TestBars(t *testing.T) {
	var buf bytes.Buffer
	Bars(&buf, "energy", []string{"gps", "wifi"}, []float64{504, 31.5}, "mAh")
	out := buf.String()
	if !strings.Contains(out, "gps") || !strings.Contains(out, "mAh") {
		t.Fatalf("bars output: %q", out)
	}
	// gps bar longer than wifi bar.
	gpsLine, wifiLine := "", ""
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "gps") {
			gpsLine = l
		}
		if strings.Contains(l, "wifi") {
			wifiLine = l
		}
	}
	if strings.Count(gpsLine, "█") <= strings.Count(wifiLine, "█") {
		t.Fatal("bar lengths not proportional")
	}
	// Sorted descending: gps printed before wifi.
	if strings.Index(out, "gps") > strings.Index(out, "wifi") {
		t.Fatal("bars not sorted by value")
	}
}

func TestBarsZeroValues(t *testing.T) {
	var buf bytes.Buffer
	Bars(&buf, "t", []string{"a"}, []float64{0}, "")
	if buf.Len() == 0 {
		t.Fatal("nothing rendered")
	}
}
