package dp

import (
	"math"
	"testing"

	"opinions/internal/stats"
)

func TestNewValidation(t *testing.T) {
	for _, eps := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("epsilon %v accepted", eps)
				}
			}()
			New(eps, stats.NewRNG(1))
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil rng accepted")
			}
		}()
		New(1, nil)
	}()
}

func TestLaplaceNoiseScale(t *testing.T) {
	m := New(1, stats.NewRNG(2))
	// Laplace(0, 1/ε) with ε=1 has stddev √2·b = √2.
	const n = 50000
	var sum, ss float64
	for i := 0; i < n; i++ {
		v := m.laplace(1)
		sum += v
		ss += v * v
	}
	mean := sum / n
	sd := math.Sqrt(ss/n - mean*mean)
	if math.Abs(mean) > 0.03 {
		t.Fatalf("noise mean = %v, want ~0", mean)
	}
	if math.Abs(sd-math.Sqrt2) > 0.05 {
		t.Fatalf("noise sd = %v, want √2", sd)
	}
}

func TestCountNonNegativeAndUnbiasedish(t *testing.T) {
	m := New(1, stats.NewRNG(3))
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := m.Count(50)
		if v < 0 {
			t.Fatal("negative released count")
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-50) > 0.5 {
		t.Fatalf("released mean = %v, want ~50", mean)
	}
}

func TestHistogramPreservesShapeAtScale(t *testing.T) {
	m := New(1, stats.NewRNG(4))
	truth := map[int]int{1: 400, 2: 200, 3: 50, 4: 10}
	rel := m.Histogram(truth)
	if len(rel) != len(truth) {
		t.Fatalf("bins = %d", len(rel))
	}
	// With counts ≫ 1/ε the ordering survives noising.
	if !(rel[1] > rel[2] && rel[2] > rel[3] && rel[3] > rel[4]) {
		t.Fatalf("shape destroyed: %v", rel)
	}
	for _, v := range rel {
		if v < 0 {
			t.Fatal("negative bin")
		}
	}
}

func TestSmallCountsGetRealNoise(t *testing.T) {
	// The privacy case that motivates the package: a dentist with 3
	// patients. Released values must actually vary.
	m := New(1, stats.NewRNG(5))
	distinct := map[float64]bool{}
	for i := 0; i < 100; i++ {
		distinct[m.Count(3)] = true
	}
	if len(distinct) < 50 {
		t.Fatalf("only %d distinct releases of a small count", len(distinct))
	}
}

func TestFixedHistogram(t *testing.T) {
	m := New(2, stats.NewRNG(6))
	var truth [11]int
	truth[8] = 100
	rel := m.FixedHistogram(truth)
	if rel[8] < 80 || rel[8] > 120 {
		t.Fatalf("dominant bin = %v", rel[8])
	}
	for _, v := range rel {
		if v < 0 {
			t.Fatal("negative bin")
		}
	}
}

func TestMeanBoundedAndSuppressed(t *testing.T) {
	m := New(1, stats.NewRNG(7))
	// Large population: close to truth.
	var hits int
	for i := 0; i < 200; i++ {
		v, ok := m.Mean(4.0*1000, 1000, 0, 5)
		if !ok {
			continue
		}
		hits++
		if v < 0 || v > 5 {
			t.Fatalf("released mean %v out of bounds", v)
		}
		if math.Abs(v-4.0) > 0.5 {
			t.Fatalf("released mean %v far from 4.0 at n=1000", v)
		}
	}
	if hits < 190 {
		t.Fatalf("large population suppressed %d/200 times", 200-hits)
	}
	// Tiny population: frequently suppressed.
	suppressed := 0
	for i := 0; i < 200; i++ {
		if _, ok := m.Mean(4.0*1, 1, 0, 5); !ok {
			suppressed++
		}
	}
	if suppressed < 100 {
		t.Fatalf("n=1 suppressed only %d/200 times", suppressed)
	}
	if _, ok := m.Mean(1, 10, 5, 5); ok {
		t.Fatal("degenerate bounds accepted")
	}
}

func TestSmallerEpsilonMoreNoise(t *testing.T) {
	noisy := New(0.1, stats.NewRNG(8))
	tight := New(5, stats.NewRNG(8))
	var devNoisy, devTight float64
	for i := 0; i < 5000; i++ {
		devNoisy += math.Abs(noisy.Count(100) - 100)
		devTight += math.Abs(tight.Count(100) - 100)
	}
	if devNoisy <= devTight*5 {
		t.Fatalf("ε=0.1 deviation %v not ≫ ε=5 deviation %v", devNoisy, devTight)
	}
}
