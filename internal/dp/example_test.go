package dp_test

import (
	"fmt"

	"opinions/internal/dp"
	"opinions/internal/stats"
)

// Release a visits-per-user histogram with ε-differential privacy. At
// scale the shape survives; tiny populations get real noise.
func Example() {
	mech := dp.New(1.0, stats.NewRNG(1))
	histogram := map[int]int{1: 300, 2: 120, 3: 40}
	released := mech.Histogram(histogram)
	fmt.Println(released[1] > released[2] && released[2] > released[3])

	// Means over tiny populations are suppressed rather than leaked.
	_, ok := mech.Mean(5.0, 1, 0, 5)
	fmt.Println("n=1 released:", ok)
	// Output:
	// true
	// n=1 released: false
}
