// Package dp adds differential privacy to the aggregates the RSP
// publishes.
//
// Section 4.2 claims that "if an RSP uses histograms of inferred ratings
// or visualizations of aggregate user interactions to export its
// inferences to users, no information about any individual user is
// revealed" — but the paper itself cites Narayanan–Shmatikov [24, 25]
// for how aggregate releases de-anonymize. Exact small-count histograms
// (a dentist with three patients!) do leak. This package closes that
// gap: published histograms and counters pass through a Laplace
// mechanism calibrated to sensitivity 1 per user per bin, giving
// ε-differential privacy per released aggregate.
//
// Noise is deterministic given an RNG so experiments stay reproducible;
// production would use crypto randomness.
package dp

import (
	"math"

	"opinions/internal/stats"
)

// Mechanism is a Laplace noiser with a fixed privacy budget per release.
type Mechanism struct {
	// Epsilon is the privacy parameter; smaller is more private.
	// Typical published-aggregate budgets are 0.5–2.
	Epsilon float64
	rng     *stats.RNG
}

// New returns a mechanism with the given budget. Epsilon must be
// positive; rng must be non-nil.
func New(epsilon float64, rng *stats.RNG) *Mechanism {
	if epsilon <= 0 {
		panic("dp: epsilon must be positive")
	}
	if rng == nil {
		panic("dp: nil rng")
	}
	return &Mechanism{Epsilon: epsilon, rng: rng}
}

// laplace draws Laplace(0, b) noise.
func (m *Mechanism) laplace(b float64) float64 {
	u := m.rng.Float64() - 0.5
	return -b * sign(u) * math.Log(1-2*math.Abs(u))
}

func sign(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}

// Count releases a single counter with sensitivity 1. Results are
// clamped at zero (a negative count is meaningless to readers and
// clamping does not weaken the guarantee).
func (m *Mechanism) Count(true_ int) float64 {
	v := float64(true_) + m.laplace(1/m.Epsilon)
	if v < 0 {
		return 0
	}
	return v
}

// Histogram releases a histogram where each user contributes to at most
// one bin (sensitivity 1 for the whole histogram under add/remove-one),
// e.g. the visits-per-user histogram of Figure 3(a) or the inferred-
// rating histogram. Bins are noised independently and clamped at zero.
func (m *Mechanism) Histogram(counts map[int]int) map[int]float64 {
	out := make(map[int]float64, len(counts))
	for k, c := range counts {
		v := float64(c) + m.laplace(1/m.Epsilon)
		if v < 0 {
			v = 0
		}
		out[k] = v
	}
	return out
}

// FixedHistogram is Histogram for array-shaped histograms (the 11-bin
// rating histogram).
func (m *Mechanism) FixedHistogram(counts [11]int) [11]float64 {
	var out [11]float64
	for i, c := range counts {
		v := float64(c) + m.laplace(1/m.Epsilon)
		if v < 0 {
			v = 0
		}
		out[i] = v
	}
	return out
}

// Mean releases a mean of values bounded in [lo, hi] from n
// contributors, using the standard bounded-mean decomposition: noised
// sum (sensitivity hi−lo) over noised count (sensitivity 1), each with
// ε/2. Returns ok=false when the (noised) count is too small to release
// anything meaningful (< 3), which also avoids tiny-population leakage.
func (m *Mechanism) Mean(sum float64, n int, lo, hi float64) (float64, bool) {
	if hi <= lo {
		return 0, false
	}
	half := m.Epsilon / 2
	noisedN := float64(n) + m.laplace(1/half)
	if noisedN < 3 {
		return 0, false
	}
	noisedSum := sum + m.laplace((hi-lo)/half)
	v := noisedSum / noisedN
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v, true
}
