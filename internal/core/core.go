// Package core is the public face of the library: one handle — the
// Repository — that wires together everything the paper's vision needs.
//
// A Repository is a comprehensive repository of opinions: the classic
// explicit-review service, plus the implicit-inference machinery
// (anonymous per-(user, entity) histories, inferred-opinion summaries,
// blind-signed upload tokens, fraud sweeping) and the device-agent
// factory that feeds it. Downstream users embed it in three ways:
//
//   - serve it: Handler() exposes the full HTTP API (cmd/rspd);
//   - embed it: Search/Describe/PostReview/Train operate in-process;
//   - extend it: NewDeviceAgent returns a fully wired client agent
//     bound to this repository, for simulations and tests.
package core

import (
	"net/http"
	"time"

	"opinions/internal/rspclient"
	"opinions/internal/rspserver"
	"opinions/internal/search"
	"opinions/internal/simclock"
	"opinions/internal/store"
	"opinions/internal/world"
)

// Config configures a Repository.
type Config struct {
	// Catalog is the entity directory the repository serves. Required.
	Catalog []*world.Entity
	// Clock defaults to the real clock; simulations pass a simclock.Sim.
	Clock simclock.Clock
	// TokenRate/TokenPeriod bound per-device upload tokens (defaults
	// 50 per 24h).
	TokenRate   int
	TokenPeriod time.Duration
	// KeyBits sizes the blind-signature key (default 2048).
	KeyBits int
	// Zips optionally fixes the /api/meta query locations.
	Zips []string
	// PrivacyEpsilon, when positive, publishes inference aggregates with
	// ε-differential privacy (see internal/dp).
	PrivacyEpsilon float64
	// Store, when non-nil, is the durable state layer (WAL + snapshot
	// compaction) the repository commits through; open it with
	// store.Open before calling Open. Nil runs memory-only.
	Store *store.Store
}

// Repository is the assembled system.
type Repository struct {
	srv   *rspserver.Server
	clock simclock.Clock
}

// Open builds a Repository.
func Open(cfg Config) (*Repository, error) {
	clock := cfg.Clock
	if clock == nil {
		clock = simclock.Real{}
	}
	srv, err := rspserver.New(rspserver.Config{
		Catalog:        cfg.Catalog,
		Clock:          clock,
		TokenRate:      cfg.TokenRate,
		TokenPeriod:    cfg.TokenPeriod,
		KeyBits:        cfg.KeyBits,
		Zips:           cfg.Zips,
		PrivacyEpsilon: cfg.PrivacyEpsilon,
		Store:          cfg.Store,
	})
	if err != nil {
		return nil, err
	}
	return &Repository{srv: srv, clock: clock}, nil
}

// Handler returns the repository's HTTP API.
func (r *Repository) Handler() http.Handler { return r.srv.Handler() }

// Server exposes the underlying RSP server for advanced composition.
func (r *Repository) Server() *rspserver.Server { return r.srv }

// Search answers a (service, zip, category) query with ranked results
// combining explicit reviews, inferred opinions, and comparative
// visualization data.
func (r *Repository) Search(q search.Query) []search.Result {
	return r.srv.Engine().Search(q)
}

// Describe returns the full evidence view of one entity by key.
func (r *Repository) Describe(entityKey string) (search.Result, bool) {
	ent := r.srv.Engine().Entity(entityKey)
	if ent == nil {
		return search.Result{}, false
	}
	return r.srv.Engine().Describe(ent), true
}

// PostReview records an explicit review, exactly as today's RSPs do.
func (r *Repository) PostReview(entityKey, author string, rating float64, text string) error {
	t := &rspclient.LocalTransport{Server: r.srv, Clock: r.clock}
	return t.PostReview(entityKey, author, rating, text)
}

// NewDeviceAgent returns a device agent bound to this repository
// in-process. The caller feeds it trace.DayLog observations and flushes
// its uploads; see rspclient.Agent.
func (r *Repository) NewDeviceAgent(cfg rspclient.Config) (*rspclient.Agent, error) {
	a := rspclient.NewAgent(cfg, &rspclient.LocalTransport{Server: r.srv, Clock: r.clock})
	if err := a.Bootstrap(); err != nil {
		return nil, err
	}
	return a, nil
}

// TrainModel fits the inference model from the training pairs volunteered
// so far and makes it available to agents.
func (r *Repository) TrainModel() error {
	_, err := r.srv.Retrain()
	return err
}

// SweepFraud runs the §4.3 typical-user sweep, discarding anomalous
// histories. Returns (scanned, discarded); the error surfaces a
// durability failure committing the drops.
func (r *Repository) SweepFraud() (int, int, error) { return r.srv.FraudSweep() }

// Stats summarizes repository contents.
type Stats struct {
	Entities         int
	Reviews          int
	Histories        int
	HistoryRecords   int
	InferredOpinions int
}

// Stats returns current totals.
func (r *Repository) Stats() Stats {
	rev, ops, hists := r.srv.Stores()
	hs := hists.Stats()
	return Stats{
		Entities:         len(r.srv.Catalog()),
		Reviews:          rev.TotalReviews(),
		Histories:        hs.Histories,
		HistoryRecords:   hs.Records,
		InferredOpinions: ops.Total(),
	}
}
