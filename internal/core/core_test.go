package core

import (
	"net/http/httptest"
	"testing"
	"time"

	"opinions/internal/rspclient"
	"opinions/internal/search"
	"opinions/internal/simclock"
	"opinions/internal/trace"
	"opinions/internal/world"
)

func testRepo(t *testing.T) (*Repository, *world.City) {
	t.Helper()
	city := world.BuildCity(world.CityConfig{Seed: 31, NumUsers: 20})
	repo, err := Open(Config{
		Catalog:   city.Entities,
		Clock:     simclock.NewSim(simclock.Epoch),
		KeyBits:   512,
		TokenRate: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	return repo, city
}

func TestOpenAndSearch(t *testing.T) {
	repo, _ := testRepo(t)
	results := repo.Search(search.Query{Service: world.Yelp, Zip: "48104", Category: "restaurant"})
	if len(results) == 0 {
		t.Fatal("no restaurants")
	}
}

func TestPostReviewAndDescribe(t *testing.T) {
	repo, city := testRepo(t)
	key := city.Entities[0].Key()
	if err := repo.PostReview(key, "alice", 4.5, "great"); err != nil {
		t.Fatal(err)
	}
	res, ok := repo.Describe(key)
	if !ok || res.ReviewCount != 1 {
		t.Fatalf("Describe = %+v, %v", res.ReviewCount, ok)
	}
	if _, ok := repo.Describe("nope/x"); ok {
		t.Fatal("described a ghost")
	}
	if repo.Stats().Reviews != 1 {
		t.Fatalf("stats = %+v", repo.Stats())
	}
}

func TestDeviceAgentRoundTrip(t *testing.T) {
	repo, city := testRepo(t)
	sim := trace.New(city, trace.Config{Seed: 31, Days: 10})
	agent, err := repo.NewDeviceAgent(rspclient.Config{DeviceID: "d", Author: "a", Seed: 1, MixMax: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	u := city.Users[0]
	for d := 0; d < sim.Days(); d++ {
		for _, dl := range sim.SimulateDate(d) {
			if dl.User == u.ID {
				if _, err := agent.ProcessDay(dl); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if _, err := agent.FlushUploads(sim.Start().AddDate(0, 0, 11)); err != nil {
		t.Fatal(err)
	}
	if repo.Stats().HistoryRecords == 0 {
		t.Fatal("no records reached the repository")
	}
}

func TestHandlerServesHTTP(t *testing.T) {
	repo, _ := testRepo(t)
	ts := httptest.NewServer(repo.Handler())
	defer ts.Close()
	transport := &rspclient.HTTPTransport{BaseURL: ts.URL}
	dir, err := transport.FetchDirectory()
	if err != nil {
		t.Fatal(err)
	}
	if len(dir) == 0 {
		t.Fatal("empty directory over HTTP")
	}
}

func TestTrainModelWithoutData(t *testing.T) {
	repo, _ := testRepo(t)
	if err := repo.TrainModel(); err == nil {
		t.Fatal("trained a model from nothing")
	}
}

func TestSweepFraudEmpty(t *testing.T) {
	repo, _ := testRepo(t)
	scanned, discarded, err := repo.SweepFraud()
	if err != nil {
		t.Fatal(err)
	}
	if scanned != 0 || discarded != 0 {
		t.Fatalf("sweep on empty store = %d, %d", scanned, discarded)
	}
}
