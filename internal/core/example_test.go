package core_test

import (
	"fmt"

	"opinions/internal/core"
	"opinions/internal/search"
	"opinions/internal/simclock"
	"opinions/internal/world"
)

// Open a repository over a synthetic city, post a review, and search.
func Example() {
	city := world.BuildCity(world.CityConfig{Seed: 1, NumUsers: 10})
	repo, err := core.Open(core.Config{
		Catalog: city.Entities,
		Clock:   simclock.NewSim(simclock.Epoch),
		KeyBits: 512,
	})
	if err != nil {
		panic(err)
	}
	target := city.EntitiesByCategory("restaurant")[0]
	if err := repo.PostReview(target.Key(), "alice", 4.5, "lovely"); err != nil {
		panic(err)
	}
	results := repo.Search(search.Query{
		Service: world.Yelp, Zip: "48104", Category: "restaurant", Limit: 1,
	})
	fmt.Println(results[0].Entity.Key() == target.Key(), results[0].ReviewCount)
	// Output:
	// true 1
}
