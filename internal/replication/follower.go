package replication

import (
	"bufio"
	"bytes"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"opinions/internal/resilience"
	"opinions/internal/storage"
	"opinions/internal/store"
)

// FollowerOptions configures the applying side.
type FollowerOptions struct {
	// Dial opens the connection to the leader; the default is a 5s TCP
	// dial. Tests substitute fault-injecting connections here.
	Dial func(addr string) (net.Conn, error)
	// Retry is the reconnect backoff schedule; only its Delay shape is
	// used (attempts reset whenever a session makes progress).
	Retry resilience.Policy
	// Breaker gates dial attempts so a dead leader is probed at the
	// breaker's cooldown pace instead of hammered; nil gets a default
	// sized for reconnects.
	Breaker *resilience.Breaker
	// FailoverAfter promotes this follower automatically once the leader
	// has been out of contact this long; 0 disables auto-promotion and
	// leaves only the explicit Promote path.
	FailoverAfter time.Duration
	// ReadTimeout bounds each message read and must exceed the leader's
	// heartbeat interval (default 5s).
	ReadTimeout time.Duration
	// OnPromote, when set, runs once at promotion — rspd uses it to
	// start serving replication itself.
	OnPromote func(reason string)
	// Logger defaults to slog.Default().
	Logger *slog.Logger
}

// Follower tails a leader and applies its commit stream through the
// local store, acking each durable sequence back. It keeps redialing
// until promoted or closed.
type Follower struct {
	st   *store.Store
	addr string
	opts FollowerOptions

	promoted    atomic.Bool
	connected   atomic.Bool
	leaderSeq   atomic.Uint64
	lastContact atomic.Int64 // unix nanos of the last leader message

	mu   sync.Mutex
	conn net.Conn

	quit     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// StartFollower begins tailing addr on a background goroutine. The
// store should be quiescent for local mutations (the HTTP layer's
// follower gate enforces that) so the sequence space stays a mirror of
// the leader's.
func StartFollower(st *store.Store, addr string, opts FollowerOptions) *Follower {
	if opts.Dial == nil {
		opts.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
	if opts.ReadTimeout <= 0 {
		opts.ReadTimeout = 5 * time.Second
	}
	if opts.Breaker == nil {
		opts.Breaker = &resilience.Breaker{FailureThreshold: 3, Cooldown: opts.Retry.Delay(2)}
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	f := &Follower{st: st, addr: addr, opts: opts, quit: make(chan struct{})}
	f.lastContact.Store(time.Now().UnixNano())
	f.wg.Add(1)
	go f.run()
	return f
}

// Promoted reports whether this node has taken over as leader.
func (f *Follower) Promoted() bool { return f.promoted.Load() }

// Connected reports whether a session to the leader is live.
func (f *Follower) Connected() bool { return f.connected.Load() }

// LeaderSeq is the highest sequence the leader has advertised.
func (f *Follower) LeaderSeq() uint64 { return f.leaderSeq.Load() }

// Lag is how many leader commits this follower has not yet applied.
func (f *Follower) Lag() uint64 {
	if ls, mine := f.leaderSeq.Load(), f.st.Seq(); ls > mine {
		return ls - mine
	}
	return 0
}

// CaughtUp reports whether this node can serve reads no staler than the
// leader's advertised state: promoted counts, so does a live session
// with zero lag. A follower that has never reached its leader is not
// caught up.
func (f *Follower) CaughtUp() bool {
	return f.promoted.Load() || (f.connected.Load() && f.Lag() == 0)
}

// Promote makes this node the leader: the tail loop stops, the
// follower gate (wired by rspd) opens for mutations, and OnPromote
// runs. Idempotent; reports whether this call performed the promotion.
func (f *Follower) Promote(reason string) bool {
	if !f.promoted.CompareAndSwap(false, true) {
		return false
	}
	metricPromotions.Inc()
	f.opts.Logger.Warn("replication: follower promoted to leader", "reason", reason, "seq", f.st.Seq())
	f.interrupt()
	if f.opts.OnPromote != nil {
		f.opts.OnPromote(reason)
	}
	return true
}

// Close stops tailing without promoting. Safe to call more than once.
func (f *Follower) Close() error {
	f.stopOnce.Do(func() { close(f.quit) })
	f.interrupt()
	f.wg.Wait()
	return nil
}

func (f *Follower) interrupt() {
	f.mu.Lock()
	if f.conn != nil {
		f.conn.Close()
	}
	f.mu.Unlock()
}

func (f *Follower) setConn(c net.Conn) {
	f.mu.Lock()
	f.conn = c
	f.mu.Unlock()
}

func (f *Follower) stopping() bool {
	select {
	case <-f.quit:
		return true
	default:
		return f.promoted.Load()
	}
}

// run is the reconnect loop: dial through the breaker, tail until the
// session errors, check the auto-promotion deadline, back off, repeat.
func (f *Follower) run() {
	defer f.wg.Done()
	attempt := 0
	for !f.stopping() {
		if err := f.opts.Breaker.Allow(); err != nil {
			f.checkFailover()
			if !f.sleep(f.opts.Retry.Delay(attempt)) {
				return
			}
			continue
		}
		progressed, err := f.session()
		f.opts.Breaker.Observe(err)
		if f.stopping() {
			return
		}
		if progressed {
			attempt = 0
		}
		if err != nil {
			metricReconnects.Inc()
			f.opts.Logger.Info("replication: session ended; will redial",
				"leader", f.addr, "err", err, "seq", f.st.Seq())
		}
		f.checkFailover()
		if !f.sleep(f.opts.Retry.Delay(attempt)) {
			return
		}
		attempt++
	}
}

func (f *Follower) checkFailover() {
	if f.opts.FailoverAfter <= 0 || f.promoted.Load() {
		return
	}
	silent := time.Since(time.Unix(0, f.lastContact.Load()))
	if silent >= f.opts.FailoverAfter {
		f.Promote("leader unreachable past failover deadline")
	}
}

// sleep waits d unless the follower is stopped first; reports whether
// the loop should continue.
func (f *Follower) sleep(d time.Duration) bool {
	if d <= 0 {
		return !f.stopping()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-f.quit:
		return false
	case <-t.C:
		return !f.stopping()
	}
}

func (f *Follower) touch() {
	f.lastContact.Store(time.Now().UnixNano())
}

// session runs one connection's lifetime: handshake with the local
// durable sequence, then apply every message and ack the new durable
// sequence. Returns whether any message was processed (resets backoff)
// and the error that ended the session.
func (f *Follower) session() (bool, error) {
	conn, err := f.opts.Dial(f.addr)
	if err != nil {
		return false, err
	}
	f.setConn(conn)
	defer f.setConn(nil)
	defer conn.Close()
	conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
	if err := writeHandshake(conn, f.st.SeqVector()); err != nil {
		return false, err
	}
	conn.SetWriteDeadline(time.Time{})
	f.connected.Store(true)
	defer f.connected.Store(false)

	br := bufio.NewReaderSize(conn, 1<<16)
	progressed := false
	for !f.stopping() {
		conn.SetReadDeadline(time.Now().Add(f.opts.ReadTimeout))
		msg, err := readMessage(br)
		if err != nil {
			return progressed, err
		}
		f.touch()
		progressed = true
		// fullAck: acknowledge every stripe (after a barrier, snapshot,
		// or heartbeat); otherwise only the frame's stripe moved.
		fullAck := true
		switch msg.kind {
		case msgFrame:
			stripe := int(msg.stripe)
			if msg.stripe == wireBarrierStripe {
				stripe = store.BarrierStripe
			} else {
				fullAck = false
			}
			if err := f.st.CommitReplicated(stripe, msg.seq, msg.payload); err != nil {
				return progressed, err
			}
			metricApplied.Inc()
		case msgSnapshot:
			snap, err := storage.Read(bytes.NewReader(msg.payload))
			if err != nil {
				return progressed, err
			}
			if err := f.st.Restore(snap); err != nil {
				return progressed, err
			}
			metricSnapshotsLoaded.Inc()
			f.opts.Logger.Info("replication: seeded from leader snapshot", "seq", msg.seq)
		case msgHeartbeat:
			// Nothing to apply; the acks below double as our keepalive.
		}
		// Frames carry per-stripe sequences, not totals; only snapshots
		// and heartbeats advertise how far the leader is overall. Our own
		// total is a lower bound on the leader's in between.
		if msg.kind != msgFrame && msg.seq > f.leaderSeq.Load() {
			f.leaderSeq.Store(msg.seq)
		}
		if mine := f.st.Seq(); mine > f.leaderSeq.Load() {
			f.leaderSeq.Store(mine)
		}
		metricApplyLag.Set(int64(f.Lag()))
		vec := f.st.SeqVector()
		if fullAck {
			for i, seq := range vec {
				if err := writeAck(conn, uint32(i), seq); err != nil {
					return progressed, err
				}
			}
		} else if err := writeAck(conn, msg.stripe, vec[msg.stripe]); err != nil {
			return progressed, err
		}
	}
	return progressed, nil
}
