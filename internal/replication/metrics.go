package replication

import "opinions/internal/obs"

var (
	metricFrames = obs.Default.Counter("replication_frames_total",
		"WAL frames streamed to followers (catch-up and live).")
	metricBytes = obs.Default.Counter("replication_bytes_total",
		"Payload bytes streamed to followers, frames and snapshots.")
	metricSnapshots = obs.Default.Counter("replication_snapshots_total",
		"Snapshot seeds sent to followers too far behind for frames.")
	metricFollowerLag = obs.Default.Gauge("replication_follower_lag_records",
		"Leader commits not yet acknowledged by the most caught-up follower.")
	metricFollowersConnected = obs.Default.Gauge("replication_followers_connected",
		"Follower sessions currently attached to this leader.")
	metricBarrierTimeouts = obs.Default.Counter("replication_barrier_timeouts_total",
		"Semi-sync commits refused because no follower acked in time.")
	metricDegradedCommits = obs.Default.Counter("replication_degraded_commits_total",
		"Semi-sync commits acknowledged with no follower attached.")
	metricApplied = obs.Default.Counter("replication_applied_total",
		"Frames applied by this node in the follower role.")
	metricSnapshotsLoaded = obs.Default.Counter("replication_snapshots_loaded_total",
		"Snapshot seeds applied by this node in the follower role.")
	metricApplyLag = obs.Default.Gauge("replication_apply_lag_records",
		"Leader commits this follower has not yet applied.")
	metricReconnects = obs.Default.Counter("replication_reconnects_total",
		"Follower sessions that ended in an error and were redialed.")
	metricPromotions = obs.Default.Counter("replication_promotions_total",
		"Followers promoted to leader, explicit and automatic.")
)
