package replication

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"opinions/internal/storage"
	"opinions/internal/store"
)

// LeaderOptions configures the shipping side.
type LeaderOptions struct {
	// SyncCommit installs a commit barrier on the store: while at least
	// one follower is attached, a commit is acknowledged only after a
	// follower acks its stripe's sequence (or AckTimeout passes,
	// surfacing ErrReplicationLag to the committer). With no follower
	// attached the barrier waves commits through — a lone leader must
	// not stall — and counts them as degraded. Off, replication is
	// purely asynchronous and a leader crash can lose
	// acked-but-unshipped records.
	SyncCommit bool
	// AckTimeout bounds the barrier wait (default 2s).
	AckTimeout time.Duration
	// HeartbeatEvery paces idle-stream heartbeats (default 1s).
	HeartbeatEvery time.Duration
	// SubBuffer is the per-session live-frame buffer (default 4096); a
	// follower that falls further behind than this is dropped back to
	// catch-up.
	SubBuffer int
	// Logger defaults to slog.Default().
	Logger *slog.Logger
}

// Leader serves the store's commit stream to followers. One Leader can
// carry several sessions; the commit barrier waits, per stripe, on the
// most caught-up one.
type Leader struct {
	st   *store.Store
	opts LeaderOptions
	acks ackTracker

	mu     sync.Mutex
	lns    []net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

var errLeaderClosed = errors.New("replication: leader closed")

// NewLeader wires a leader to its store; with SyncCommit it installs
// the store's commit barrier on the spot. Call Serve to accept
// followers.
func NewLeader(st *store.Store, opts LeaderOptions) *Leader {
	if opts.AckTimeout <= 0 {
		opts.AckTimeout = 2 * time.Second
	}
	if opts.HeartbeatEvery <= 0 {
		opts.HeartbeatEvery = time.Second
	}
	if opts.SubBuffer <= 0 {
		opts.SubBuffer = 4096
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	l := &Leader{st: st, opts: opts, conns: make(map[net.Conn]struct{})}
	l.acks.init(st.NumStripes())
	if opts.SyncCommit {
		st.SetCommitBarrier(l.barrier)
	}
	return l
}

func (l *Leader) barrier(stripe int, seq uint64) error {
	return l.acks.wait(stripe, seq, l.opts.AckTimeout)
}

// FollowerAck returns the total sequence acknowledged across stripes —
// the sum of the best per-stripe acks, comparable with Store.Seq().
func (l *Leader) FollowerAck() uint64 {
	vec, _ := l.acks.snapshot()
	var sum uint64
	for _, v := range vec {
		sum += v
	}
	return sum
}

// Attached reports how many follower sessions are currently streaming.
func (l *Leader) Attached() int {
	_, n := l.acks.snapshot()
	return n
}

// Serve accepts follower connections on ln until the listener or the
// leader is closed; each connection gets its own streaming session.
// Blocks; run it on its own goroutine.
func (l *Leader) Serve(ln net.Listener) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		ln.Close()
		return errLeaderClosed
	}
	l.lns = append(l.lns, ln)
	l.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			l.mu.Lock()
			closed := l.closed
			l.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			conn.Close()
			return nil
		}
		l.conns[conn] = struct{}{}
		l.wg.Add(1)
		l.mu.Unlock()
		go func() {
			defer l.wg.Done()
			l.serveConn(conn)
			l.mu.Lock()
			delete(l.conns, conn)
			l.mu.Unlock()
		}()
	}
}

// Close stops accepting, tears down sessions, and removes the commit
// barrier. Safe to call more than once.
func (l *Leader) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	lns := l.lns
	conns := make([]net.Conn, 0, len(l.conns))
	for conn := range l.conns {
		conns = append(conns, conn)
	}
	l.mu.Unlock()
	if l.opts.SyncCommit {
		l.st.SetCommitBarrier(nil)
	}
	for _, ln := range lns {
		ln.Close()
	}
	for _, conn := range conns {
		conn.Close()
	}
	l.wg.Wait()
	return nil
}

// serveConn runs one follower session: handshake, catch-up (disk
// frames, or a snapshot when the follower is behind the compaction
// base), then the live stream with heartbeats, while a side goroutine
// consumes acks. Any error ends the session; the follower redials and
// the next handshake resumes from wherever its disk actually is.
func (l *Leader) serveConn(conn net.Conn) {
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	followerVec, err := readHandshake(conn)
	if err != nil {
		l.opts.Logger.Warn("replication: handshake failed", "remote", conn.RemoteAddr(), "err", err)
		return
	}
	conn.SetReadDeadline(time.Time{})
	if len(followerVec) != l.st.NumStripes() {
		// Frames are addressed by stripe; a follower striped differently
		// cannot apply them. Ending the session (rather than snapshot-
		// seeding into a collapsed vector) surfaces the misconfiguration.
		l.opts.Logger.Warn("replication: follower stripe geometry mismatch",
			"remote", conn.RemoteAddr(), "follower_stripes", len(followerVec), "stripes", l.st.NumStripes())
		return
	}
	metricFollowersConnected.Add(1)
	defer metricFollowersConnected.Add(-1)

	// Subscribe before catch-up: everything at or below sub.StartVec()
	// comes from disk (or the snapshot), everything after arrives on the
	// subscription, and the seams overlap rather than gap.
	sub := l.st.SubscribeFrames(l.opts.SubBuffer)
	defer l.st.Unsubscribe(sub)
	l.acks.attach(followerVec)
	defer l.acks.detach()

	bw := bufio.NewWriterSize(conn, 1<<16)
	last, err := l.catchUp(bw, followerVec, sub)
	if err == nil {
		err = writeHeartbeatMsg(bw, l.st.Seq())
	}
	if err == nil {
		err = bw.Flush()
	}
	if err != nil {
		l.opts.Logger.Warn("replication: catch-up failed", "remote", conn.RemoteAddr(), "err", err)
		return
	}
	l.opts.Logger.Info("replication: follower attached",
		"remote", conn.RemoteAddr(), "follower_vec", followerVec, "caught_up_to", last)

	go l.readAcks(conn)

	ticker := time.NewTicker(l.opts.HeartbeatEvery)
	defer ticker.Stop()
	for {
		select {
		case f, ok := <-sub.C():
			if !ok {
				// Lagged past the buffer, or the store closed/restored.
				// Ending the session makes the follower redial into a
				// fresh catch-up.
				l.opts.Logger.Warn("replication: subscription ended",
					"remote", conn.RemoteAddr(), "lagged", sub.Lagged())
				return
			}
			if err := l.streamFrame(bw, last, f); err != nil {
				return
			}
			// Drain whatever else is buffered before paying the flush.
		drain:
			for {
				select {
				case f, ok := <-sub.C():
					if !ok {
						break drain
					}
					if err := l.streamFrame(bw, last, f); err != nil {
						return
					}
				default:
					break drain
				}
			}
			if err := bw.Flush(); err != nil {
				return
			}
		case <-ticker.C:
			if err := writeHeartbeatMsg(bw, l.st.Seq()); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// streamFrame ships one live frame, keeping last — the per-stripe
// vector already delivered — contiguous. A barrier frame advances
// every stripe at once; it travels when every lane sits exactly one
// short of the barrier's vector, is skipped when the whole vector was
// already delivered during catch-up, and anything in between is a
// stream gap (the session restarts into a fresh catch-up).
func (l *Leader) streamFrame(bw *bufio.Writer, last []uint64, f store.Frame) error {
	if f.Stripe == store.BarrierStripe {
		delivered := 0
		for i, want := range f.Seqs {
			if last[i] >= want {
				delivered++
			}
		}
		if delivered == len(f.Seqs) {
			return nil // already delivered during catch-up
		}
		if delivered != 0 {
			return fmt.Errorf("replication: stream gap: barrier %v partially delivered at %v", f.Seqs, last)
		}
		for i, want := range f.Seqs {
			if last[i] != want-1 {
				return fmt.Errorf("replication: stream gap: have %d in stripe %d, barrier wants %d", last[i], i, want)
			}
		}
		if err := writeFrameMsg(bw, wireBarrierStripe, f.Seqs[0], f.Payload); err != nil {
			return err
		}
		copy(last, f.Seqs)
		metricFrames.Inc()
		metricBytes.Add(uint64(len(f.Payload)))
		return nil
	}
	if f.Seq <= last[f.Stripe] {
		return nil // already delivered during catch-up
	}
	if f.Seq != last[f.Stripe]+1 {
		return fmt.Errorf("replication: stream gap: have %d in stripe %d, next live frame %d", last[f.Stripe], f.Stripe, f.Seq)
	}
	if err := writeFrameMsg(bw, uint32(f.Stripe), f.Seq, f.Payload); err != nil {
		return err
	}
	last[f.Stripe] = f.Seq
	metricFrames.Inc()
	metricBytes.Add(uint64(len(f.Payload)))
	return nil
}

// catchUp brings a follower from its handshake vector to at least the
// subscription start, returning the vector written. Frames come from
// disk when they are still there; otherwise (behind the compaction
// base in any stripe, or a gap) the follower is re-seeded with a full
// snapshot.
func (l *Leader) catchUp(bw *bufio.Writer, from []uint64, sub *store.FrameSub) ([]uint64, error) {
	if vecGE(from, l.st.BaseVector()) {
		last, err := l.st.ExportFrames(from, func(f store.Frame) error {
			stripe := uint32(f.Stripe)
			seq := f.Seq
			if f.Stripe == store.BarrierStripe {
				stripe = wireBarrierStripe
				seq = f.Seqs[0]
			}
			if err := writeFrameMsg(bw, stripe, seq, f.Payload); err != nil {
				return err
			}
			metricFrames.Inc()
			metricBytes.Add(uint64(len(f.Payload)))
			if bw.Buffered() > 1<<15 {
				return bw.Flush()
			}
			return nil
		})
		if err == nil && vecGE(last, sub.StartVec()) {
			return last, nil
		}
		if err != nil && !errors.Is(err, store.ErrExportGap) {
			return last, err
		}
		// Fall through: compacted away underneath us, or the disk ended
		// short of the subscription start. Snapshot covers both.
	}
	snap := l.st.Snapshot()
	var buf bytes.Buffer
	if err := storage.Write(&buf, snap); err != nil {
		return from, err
	}
	var total uint64
	for _, v := range snap.WALSeqs {
		total += v
	}
	if err := writeSnapshotMsg(bw, total, buf.Bytes()); err != nil {
		return from, err
	}
	metricSnapshots.Inc()
	metricBytes.Add(uint64(buf.Len()))
	return append([]uint64(nil), snap.WALSeqs...), nil
}

// vecGE reports a >= b componentwise.
func vecGE(a, b []uint64) bool {
	for i := range a {
		if a[i] < b[i] {
			return false
		}
	}
	return true
}

// readAcks consumes the follower's ack stream, advancing the shared
// tracker (which is what releases semi-sync commits) and the lag gauge.
// A quiet or broken follower trips the read deadline; closing the
// connection ends the write side too.
func (l *Leader) readAcks(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 1<<10)
	deadline := 10 * l.opts.HeartbeatEvery
	n := l.st.NumStripes()
	for {
		conn.SetReadDeadline(time.Now().Add(deadline))
		stripe, seq, err := readAck(br)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				l.opts.Logger.Warn("replication: ack stream ended", "remote", conn.RemoteAddr(), "err", err)
			}
			return
		}
		if int(stripe) >= n {
			l.opts.Logger.Warn("replication: ack for unknown stripe", "remote", conn.RemoteAddr(), "stripe", stripe)
			return
		}
		l.acks.advance(int(stripe), seq)
		if cur, acked := l.st.Seq(), l.FollowerAck(); cur > acked {
			metricFollowerLag.Set(int64(cur - acked))
		} else {
			metricFollowerLag.Set(0)
		}
	}
}

// ackTracker is the rendezvous between follower ack streams and the
// commit barrier: it tracks, per stripe, the best ack across sessions
// and wakes every waiter on any advance or attach/detach.
type ackTracker struct {
	mu       sync.Mutex
	vec      []uint64
	attached int
	ch       chan struct{} // closed and replaced on every change
}

func (t *ackTracker) init(n int) {
	t.vec = make([]uint64, n)
	t.ch = make(chan struct{})
}

func (t *ackTracker) bumpLocked() {
	close(t.ch)
	t.ch = make(chan struct{})
}

func (t *ackTracker) attach(vec []uint64) {
	t.mu.Lock()
	t.attached++
	for i, seq := range vec {
		if i < len(t.vec) && seq > t.vec[i] {
			t.vec[i] = seq
		}
	}
	t.bumpLocked()
	t.mu.Unlock()
}

func (t *ackTracker) detach() {
	t.mu.Lock()
	t.attached--
	t.bumpLocked()
	t.mu.Unlock()
}

func (t *ackTracker) advance(stripe int, seq uint64) {
	t.mu.Lock()
	if seq > t.vec[stripe] {
		t.vec[stripe] = seq
		t.bumpLocked()
	}
	t.mu.Unlock()
}

func (t *ackTracker) snapshot() ([]uint64, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]uint64(nil), t.vec...), t.attached
}

// wait blocks until a follower acks seq in the given stripe, no
// follower is attached (degraded pass), or the timeout lapses
// (ErrReplicationLag).
func (t *ackTracker) wait(stripe int, seq uint64, timeout time.Duration) error {
	var timer *time.Timer
	for {
		t.mu.Lock()
		if t.attached == 0 {
			t.mu.Unlock()
			metricDegradedCommits.Inc()
			return nil
		}
		if t.vec[stripe] >= seq {
			t.mu.Unlock()
			return nil
		}
		ch := t.ch
		t.mu.Unlock()
		if timer == nil {
			timer = time.NewTimer(timeout)
			defer timer.Stop()
		}
		select {
		case <-ch:
		case <-timer.C:
			metricBarrierTimeouts.Inc()
			return store.ErrReplicationLag
		}
	}
}
