// Package replication ships the store's write-ahead log from a leader
// to followers over a long-lived TCP connection, so the repository of
// opinions survives the loss of one node — the paper's service-market
// framing only works if an RSP is more durable than a single disk.
//
// The wire protocol is deliberately close to the on-disk WAL format,
// which since the sharded commit pipeline is striped: every frame
// belongs to one commit stripe and sequence numbers are per-stripe. A
// follower opens the connection and handshakes:
//
//	"OPINREP2"                                  8-byte magic
//	uint32 BE  stripe count n                   4 bytes
//	n × uint64 BE  follower's durable vector    8n bytes
//
// after which the leader streams messages, each tagged by one byte:
//
//	'F' frame:     uint32 BE stripe (0xFFFFFFFF for a cross-stripe
//	               barrier record), uint32 BE payload length, uint32 BE
//	               CRC-32 (IEEE, over seq+payload — identical to the
//	               WAL frame CRC), uint64 BE sequence (the stripe's, or
//	               the barrier's stripe-0 sequence), payload. A barrier
//	               frame travels once; its per-stripe vector rides in
//	               the payload's stripe_seqs field and the follower
//	               logs a copy to every stripe.
//	'S' snapshot:  uint64 BE total sequence (sum over stripes), uint32
//	               BE blob length, blob (gzip storage.Snapshot, whose
//	               wal_seqs carries the per-stripe vector) — sent when
//	               the follower is behind the leader's compaction base
//	               and frames alone cannot catch it up
//	'H' heartbeat: uint64 BE leader total sequence — keeps the
//	               connection alive and lets an idle follower measure
//	               its lag
//
// The follower's side of the stream is a sequence of acks, each a
// uint32 BE stripe plus uint64 BE sequence: "everything at or below
// this sequence in this stripe is fsynced on my disk" — what the
// leader's semi-synchronous commit barrier waits on. A single-stripe
// frame is acked with one ack for its stripe; barriers, snapshots, and
// heartbeats are acked with one ack per stripe (the follower's full
// vector).
package replication

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	handshakeMagic = "OPINREP2"

	msgFrame     = 'F'
	msgSnapshot  = 'S'
	msgHeartbeat = 'H'

	// wireBarrierStripe tags a barrier frame (and a full-vector ack) on
	// the wire; it maps to store.BarrierStripe at the edges.
	wireBarrierStripe = 0xFFFFFFFF

	// maxStripesWire bounds the handshake's stripe count; mirrors the
	// store's maxStripes.
	maxStripesWire = 1024

	// maxFrameBytes mirrors the store's maxRecordBytes: a larger length
	// prefix is corruption, not data.
	maxFrameBytes    = 1 << 26
	maxSnapshotBytes = 1 << 30
)

func frameCRC(seq uint64, payload []byte) uint32 {
	var sb [8]byte
	binary.BigEndian.PutUint64(sb[:], seq)
	c := crc32.Update(0, crc32.IEEETable, sb[:])
	return crc32.Update(c, crc32.IEEETable, payload)
}

// writeHandshake sends the follower's identity: its stripe geometry
// and, per stripe, the highest sequence durable on its disk.
func writeHandshake(w io.Writer, vec []uint64) error {
	buf := make([]byte, len(handshakeMagic)+4+8*len(vec))
	copy(buf, handshakeMagic)
	binary.BigEndian.PutUint32(buf[len(handshakeMagic):], uint32(len(vec)))
	off := len(handshakeMagic) + 4
	for _, seq := range vec {
		binary.BigEndian.PutUint64(buf[off:], seq)
		off += 8
	}
	_, err := w.Write(buf)
	return err
}

func readHandshake(r io.Reader) ([]uint64, error) {
	var hdr [len(handshakeMagic) + 4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("replication: reading handshake: %w", err)
	}
	if string(hdr[:len(handshakeMagic)]) != handshakeMagic {
		return nil, errors.New("replication: bad handshake magic")
	}
	n := binary.BigEndian.Uint32(hdr[len(handshakeMagic):])
	if n == 0 || n > maxStripesWire {
		return nil, fmt.Errorf("replication: handshake stripe count %d out of range", n)
	}
	buf := make([]byte, 8*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("replication: reading handshake vector: %w", err)
	}
	vec := make([]uint64, n)
	for i := range vec {
		vec[i] = binary.BigEndian.Uint64(buf[8*i:])
	}
	return vec, nil
}

// writeFrameMsg ships one committed record. stripe is the record's
// commit stripe, or wireBarrierStripe for a barrier record (which the
// follower fans out to every stripe itself).
func writeFrameMsg(w io.Writer, stripe uint32, seq uint64, payload []byte) error {
	var hdr [1 + 4 + 4 + 4 + 8]byte
	hdr[0] = msgFrame
	binary.BigEndian.PutUint32(hdr[1:5], stripe)
	binary.BigEndian.PutUint32(hdr[5:9], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[9:13], frameCRC(seq, payload))
	binary.BigEndian.PutUint64(hdr[13:21], seq)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func writeSnapshotMsg(w io.Writer, seq uint64, blob []byte) error {
	var hdr [1 + 8 + 4]byte
	hdr[0] = msgSnapshot
	binary.BigEndian.PutUint64(hdr[1:9], seq)
	binary.BigEndian.PutUint32(hdr[9:13], uint32(len(blob)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(blob)
	return err
}

func writeHeartbeatMsg(w io.Writer, seq uint64) error {
	var buf [1 + 8]byte
	buf[0] = msgHeartbeat
	binary.BigEndian.PutUint64(buf[1:9], seq)
	_, err := w.Write(buf[:])
	return err
}

// writeAck reports one stripe's durable sequence upstream.
func writeAck(w io.Writer, stripe uint32, seq uint64) error {
	var buf [4 + 8]byte
	binary.BigEndian.PutUint32(buf[0:4], stripe)
	binary.BigEndian.PutUint64(buf[4:12], seq)
	_, err := w.Write(buf[:])
	return err
}

func readAck(r io.Reader) (uint32, uint64, error) {
	var buf [4 + 8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, 0, err
	}
	return binary.BigEndian.Uint32(buf[0:4]), binary.BigEndian.Uint64(buf[4:12]), nil
}

// message is one decoded leader→follower message. For frames, stripe
// identifies the commit stripe (wireBarrierStripe for barriers) and
// seq the position within it; for snapshots and heartbeats seq is the
// leader's total sequence. payload is the frame payload or snapshot
// blob, nil for heartbeats.
type message struct {
	kind    byte
	stripe  uint32
	seq     uint64
	payload []byte
}

// readMessage decodes the next leader→follower message, verifying the
// frame CRC — a mismatch is an error, and the session restarts rather
// than apply a corrupt record.
func readMessage(r *bufio.Reader) (message, error) {
	kind, err := r.ReadByte()
	if err != nil {
		return message{}, err
	}
	switch kind {
	case msgFrame:
		var hdr [4 + 4 + 4 + 8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return message{}, fmt.Errorf("replication: reading frame header: %w", err)
		}
		stripe := binary.BigEndian.Uint32(hdr[0:4])
		n := binary.BigEndian.Uint32(hdr[4:8])
		sum := binary.BigEndian.Uint32(hdr[8:12])
		seq := binary.BigEndian.Uint64(hdr[12:20])
		if n == 0 || n > maxFrameBytes {
			return message{}, fmt.Errorf("replication: frame length %d out of range", n)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return message{}, fmt.Errorf("replication: reading frame payload: %w", err)
		}
		if frameCRC(seq, payload) != sum {
			return message{}, fmt.Errorf("replication: frame %d checksum mismatch", seq)
		}
		return message{kind: kind, stripe: stripe, seq: seq, payload: payload}, nil
	case msgSnapshot:
		var hdr [8 + 4]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return message{}, fmt.Errorf("replication: reading snapshot header: %w", err)
		}
		seq := binary.BigEndian.Uint64(hdr[0:8])
		n := binary.BigEndian.Uint32(hdr[8:12])
		if n == 0 || n > maxSnapshotBytes {
			return message{}, fmt.Errorf("replication: snapshot length %d out of range", n)
		}
		blob := make([]byte, n)
		if _, err := io.ReadFull(r, blob); err != nil {
			return message{}, fmt.Errorf("replication: reading snapshot blob: %w", err)
		}
		return message{kind: kind, seq: seq, payload: blob}, nil
	case msgHeartbeat:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return message{}, fmt.Errorf("replication: reading heartbeat: %w", err)
		}
		return message{kind: kind, seq: binary.BigEndian.Uint64(buf[:])}, nil
	default:
		return message{}, fmt.Errorf("replication: unknown message type %q", kind)
	}
}
