// Package replication ships the store's write-ahead log from a leader
// to followers over a long-lived TCP connection, so the repository of
// opinions survives the loss of one node — the paper's service-market
// framing only works if an RSP is more durable than a single disk.
//
// The wire protocol is deliberately close to the on-disk WAL format.
// A follower opens the connection and handshakes:
//
//	"OPINREP1"                                  8-byte magic
//	uint64 BE  follower's last durable sequence 8 bytes
//
// after which the leader streams messages, each tagged by one byte:
//
//	'F' frame:     uint32 BE payload length, uint32 BE CRC-32 (IEEE,
//	               over seq+payload — identical to the WAL frame CRC),
//	               uint64 BE sequence, payload
//	'S' snapshot:  uint64 BE sequence, uint32 BE blob length, blob
//	               (gzip storage.Snapshot) — sent when the follower is
//	               behind the leader's compaction base and frames alone
//	               cannot catch it up
//	'H' heartbeat: uint64 BE leader sequence — keeps the connection
//	               alive and lets an idle follower measure its lag
//
// The follower's side of the stream is a sequence of uint64 BE acks,
// each the follower's highest durable sequence: sent after every
// applied message, an ack means "everything at or below this is
// fsynced on my disk" and is what the leader's semi-synchronous commit
// barrier waits on.
package replication

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	handshakeMagic = "OPINREP1"

	msgFrame     = 'F'
	msgSnapshot  = 'S'
	msgHeartbeat = 'H'

	// maxFrameBytes mirrors the store's maxRecordBytes: a larger length
	// prefix is corruption, not data.
	maxFrameBytes    = 1 << 26
	maxSnapshotBytes = 1 << 30
)

func frameCRC(seq uint64, payload []byte) uint32 {
	var sb [8]byte
	binary.BigEndian.PutUint64(sb[:], seq)
	c := crc32.Update(0, crc32.IEEETable, sb[:])
	return crc32.Update(c, crc32.IEEETable, payload)
}

func writeHandshake(w io.Writer, seq uint64) error {
	var buf [len(handshakeMagic) + 8]byte
	copy(buf[:], handshakeMagic)
	binary.BigEndian.PutUint64(buf[len(handshakeMagic):], seq)
	_, err := w.Write(buf[:])
	return err
}

func readHandshake(r io.Reader) (uint64, error) {
	var buf [len(handshakeMagic) + 8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("replication: reading handshake: %w", err)
	}
	if string(buf[:len(handshakeMagic)]) != handshakeMagic {
		return 0, errors.New("replication: bad handshake magic")
	}
	return binary.BigEndian.Uint64(buf[len(handshakeMagic):]), nil
}

func writeFrameMsg(w io.Writer, seq uint64, payload []byte) error {
	var hdr [1 + 4 + 4 + 8]byte
	hdr[0] = msgFrame
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[5:9], frameCRC(seq, payload))
	binary.BigEndian.PutUint64(hdr[9:17], seq)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func writeSnapshotMsg(w io.Writer, seq uint64, blob []byte) error {
	var hdr [1 + 8 + 4]byte
	hdr[0] = msgSnapshot
	binary.BigEndian.PutUint64(hdr[1:9], seq)
	binary.BigEndian.PutUint32(hdr[9:13], uint32(len(blob)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(blob)
	return err
}

func writeHeartbeatMsg(w io.Writer, seq uint64) error {
	var buf [1 + 8]byte
	buf[0] = msgHeartbeat
	binary.BigEndian.PutUint64(buf[1:9], seq)
	_, err := w.Write(buf[:])
	return err
}

func writeAck(w io.Writer, seq uint64) error {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], seq)
	_, err := w.Write(buf[:])
	return err
}

func readAck(r io.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(buf[:]), nil
}

// message is one decoded leader→follower message. seq is the frame or
// snapshot sequence, or the leader's current sequence for a heartbeat;
// payload is the frame payload or snapshot blob, nil for heartbeats.
type message struct {
	kind    byte
	seq     uint64
	payload []byte
}

// readMessage decodes the next leader→follower message, verifying the
// frame CRC — a mismatch is an error, and the session restarts rather
// than apply a corrupt record.
func readMessage(r *bufio.Reader) (message, error) {
	kind, err := r.ReadByte()
	if err != nil {
		return message{}, err
	}
	switch kind {
	case msgFrame:
		var hdr [4 + 4 + 8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return message{}, fmt.Errorf("replication: reading frame header: %w", err)
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		sum := binary.BigEndian.Uint32(hdr[4:8])
		seq := binary.BigEndian.Uint64(hdr[8:16])
		if n == 0 || n > maxFrameBytes {
			return message{}, fmt.Errorf("replication: frame length %d out of range", n)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return message{}, fmt.Errorf("replication: reading frame payload: %w", err)
		}
		if frameCRC(seq, payload) != sum {
			return message{}, fmt.Errorf("replication: frame %d checksum mismatch", seq)
		}
		return message{kind: kind, seq: seq, payload: payload}, nil
	case msgSnapshot:
		var hdr [8 + 4]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return message{}, fmt.Errorf("replication: reading snapshot header: %w", err)
		}
		seq := binary.BigEndian.Uint64(hdr[0:8])
		n := binary.BigEndian.Uint32(hdr[8:12])
		if n == 0 || n > maxSnapshotBytes {
			return message{}, fmt.Errorf("replication: snapshot length %d out of range", n)
		}
		blob := make([]byte, n)
		if _, err := io.ReadFull(r, blob); err != nil {
			return message{}, fmt.Errorf("replication: reading snapshot blob: %w", err)
		}
		return message{kind: kind, seq: seq, payload: blob}, nil
	case msgHeartbeat:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return message{}, fmt.Errorf("replication: reading heartbeat: %w", err)
		}
		return message{kind: kind, seq: binary.BigEndian.Uint64(buf[:])}, nil
	default:
		return message{}, fmt.Errorf("replication: unknown message type %q", kind)
	}
}
