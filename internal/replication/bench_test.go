package replication

import (
	"fmt"
	"net"
	"testing"
	"time"

	"opinions/internal/interaction"
	"opinions/internal/resilience"
	"opinions/internal/simclock"
	"opinions/internal/store"
)

func benchStore(b *testing.B) *store.Store {
	b.Helper()
	s, err := store.Open(store.Options{
		Dir: b.TempDir(), NoSync: true, CompactEvery: -1,
		Clock: simclock.NewSim(simclock.Epoch), Logger: quietLogger(),
	})
	if err != nil {
		b.Fatalf("Open: %v", err)
	}
	b.Cleanup(func() { s.Close() })
	return s
}

func benchPair(b *testing.B, sync bool) (*store.Store, *store.Store, *Leader, *Follower) {
	b.Helper()
	leaderStore, followerStore := benchStore(b), benchStore(b)
	l := NewLeader(leaderStore, LeaderOptions{
		SyncCommit: sync, AckTimeout: 10 * time.Second,
		HeartbeatEvery: 20 * time.Millisecond, Logger: quietLogger(),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatalf("listen: %v", err)
	}
	go l.Serve(ln)
	b.Cleanup(func() { l.Close() })
	f := StartFollower(followerStore, ln.Addr().String(), FollowerOptions{
		Retry:       resilience.Policy{BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
		Breaker:     &resilience.Breaker{FailureThreshold: 1000, Cooldown: 10 * time.Millisecond},
		ReadTimeout: 5 * time.Second,
		Logger:      quietLogger(),
	})
	b.Cleanup(func() { f.Close() })
	deadline := time.Now().Add(5 * time.Second)
	for !f.Connected() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !f.Connected() {
		b.Fatal("follower never connected")
	}
	return leaderStore, followerStore, l, f
}

func benchRec(i int) *store.Record {
	rating := 4.0
	return &store.Record{
		Kind:   store.KindUpload,
		AnonID: fmt.Sprintf("anon-%d", i),
		Entity: fmt.Sprintf("ent/%d", i%16),
		Visit: &interaction.Record{
			Entity: fmt.Sprintf("ent/%d", i%16), Kind: interaction.VisitKind,
			Start: simclock.Epoch, Duration: 30 * time.Minute,
		},
		Rating: &rating,
		Key:    fmt.Sprintf("bench-key-%d", i),
	}
}

// BenchmarkReplicatedCommitSync measures commit throughput with the
// semi-synchronous barrier on: each op is apply + local WAL append +
// ship + follower apply/fsync + ack. The reported lag-records is the
// steady-state follower lag when the run ends (0 is the semi-sync
// promise).
func BenchmarkReplicatedCommitSync(b *testing.B) {
	leaderStore, _, l, _ := benchPair(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := leaderStore.Commit(benchRec(i)); err != nil {
			b.Fatalf("commit: %v", err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(leaderStore.Seq()-l.FollowerAck()), "lag-records")
}

// BenchmarkReplicatedCommitAsync measures pure leader-side throughput
// with the barrier off — the shipper runs behind the commit path — and
// reports the follower lag observed the moment the commit loop stops:
// the steady-state backlog the stream carries at this commit rate.
func BenchmarkReplicatedCommitAsync(b *testing.B) {
	leaderStore, followerStore, l, _ := benchPair(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := leaderStore.Commit(benchRec(i)); err != nil {
			b.Fatalf("commit: %v", err)
		}
	}
	lag := leaderStore.Seq() - l.FollowerAck()
	b.StopTimer()
	b.ReportMetric(float64(lag), "lag-records")
	// Let the follower drain so Cleanup doesn't race a mid-apply close.
	deadline := time.Now().Add(10 * time.Second)
	for followerStore.Seq() < leaderStore.Seq() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
}
