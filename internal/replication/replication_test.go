package replication

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"testing"
	"time"

	"opinions/internal/interaction"
	"opinions/internal/resilience"
	"opinions/internal/simclock"
	"opinions/internal/store"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 4}))
}

func openStore(t *testing.T) *store.Store {
	t.Helper()
	s, err := store.Open(store.Options{
		Dir: t.TempDir(), NoSync: true, CompactEvery: -1,
		Clock: simclock.NewSim(simclock.Epoch), Logger: quietLogger(),
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func commitUpload(t *testing.T, s *store.Store, i int) {
	t.Helper()
	rating := 4.0
	rec := &store.Record{
		Kind:   store.KindUpload,
		AnonID: fmt.Sprintf("anon-%d", i),
		Entity: fmt.Sprintf("ent/%d", i%3),
		Visit: &interaction.Record{
			Entity: fmt.Sprintf("ent/%d", i%3), Kind: interaction.VisitKind,
			Start: simclock.Epoch, Duration: 30 * time.Minute,
		},
		Rating: &rating,
		Key:    fmt.Sprintf("key-%d", i),
	}
	if err := s.Commit(rec); err != nil {
		t.Fatalf("commit %d: %v", i, err)
	}
}

func startLeader(t *testing.T, st *store.Store, opts LeaderOptions) (*Leader, string) {
	t.Helper()
	if opts.Logger == nil {
		opts.Logger = quietLogger()
	}
	if opts.HeartbeatEvery == 0 {
		opts.HeartbeatEvery = 20 * time.Millisecond
	}
	l := NewLeader(st, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go l.Serve(ln)
	t.Cleanup(func() { l.Close() })
	return l, ln.Addr().String()
}

func fastFollowerOpts() FollowerOptions {
	return FollowerOptions{
		Retry:         resilience.Policy{BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
		Breaker:       &resilience.Breaker{FailureThreshold: 1000, Cooldown: 10 * time.Millisecond},
		ReadTimeout:   500 * time.Millisecond,
		Logger:        quietLogger(),
		FailoverAfter: 0,
	}
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestLiveStreamReplicates(t *testing.T) {
	leaderStore, followerStore := openStore(t), openStore(t)
	leader, addr := startLeader(t, leaderStore, LeaderOptions{})
	f := StartFollower(followerStore, addr, fastFollowerOpts())
	defer f.Close()
	waitFor(t, 5*time.Second, "follower connected", f.Connected)
	for i := 0; i < 10; i++ {
		commitUpload(t, leaderStore, i)
	}
	waitFor(t, 5*time.Second, "follower caught up", func() bool { return followerStore.Seq() == 10 })
	waitFor(t, 5*time.Second, "leader saw acks", func() bool { return leader.FollowerAck() == 10 })
	if got, want := followerStore.Histories().Stats().Records, leaderStore.Histories().Stats().Records; got != want {
		t.Fatalf("follower records %d, leader %d", got, want)
	}
	if !followerStore.Ledger().Contains("key-3") {
		t.Fatal("dedup ledger did not ride the stream")
	}
	if f.Lag() != 0 || !f.CaughtUp() {
		t.Fatalf("lag %d, caught-up %v; want 0,true", f.Lag(), f.CaughtUp())
	}
}

func TestCatchUpFromDiskThenLive(t *testing.T) {
	leaderStore, followerStore := openStore(t), openStore(t)
	for i := 0; i < 5; i++ {
		commitUpload(t, leaderStore, i)
	}
	_, addr := startLeader(t, leaderStore, LeaderOptions{})
	f := StartFollower(followerStore, addr, fastFollowerOpts())
	defer f.Close()
	waitFor(t, 5*time.Second, "disk catch-up", func() bool { return followerStore.Seq() == 5 })
	for i := 5; i < 9; i++ {
		commitUpload(t, leaderStore, i)
	}
	waitFor(t, 5*time.Second, "live tail after catch-up", func() bool { return followerStore.Seq() == 9 })
	if got := followerStore.Histories().Stats().Records; got != 9 {
		t.Fatalf("follower records = %d, want 9", got)
	}
}

func TestSnapshotSeedWhenBehindCompactionBase(t *testing.T) {
	leaderStore, followerStore := openStore(t), openStore(t)
	for i := 0; i < 5; i++ {
		commitUpload(t, leaderStore, i)
	}
	if err := leaderStore.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	for i := 5; i < 7; i++ {
		commitUpload(t, leaderStore, i)
	}
	before := metricSnapshotsLoaded.Value()
	_, addr := startLeader(t, leaderStore, LeaderOptions{})
	f := StartFollower(followerStore, addr, fastFollowerOpts())
	defer f.Close()
	// Wait on the metric, not just the sequence: Restore makes the new
	// sequences visible before it finishes its disk work, so the counter
	// (bumped after Restore returns) is the real "seeded" signal.
	waitFor(t, 5*time.Second, "snapshot seed + frames", func() bool {
		return followerStore.Seq() == 7 && metricSnapshotsLoaded.Value() > before
	})
	if got := followerStore.Histories().Stats().Records; got != 7 {
		t.Fatalf("follower records = %d, want 7", got)
	}
}

func TestSyncBarrierRefusesWithoutAck(t *testing.T) {
	leaderStore := openStore(t)
	leader, addr := startLeader(t, leaderStore, LeaderOptions{
		SyncCommit: true, AckTimeout: 100 * time.Millisecond,
	})

	// No follower attached: semi-sync degrades to async and commits pass.
	commitUpload(t, leaderStore, 0)

	// A follower that handshakes but never acks: commits must be refused
	// with ErrReplicationLag after the timeout, without latching.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if err := writeHandshake(conn, leaderStore.SeqVector()); err != nil {
		t.Fatalf("handshake: %v", err)
	}
	waitFor(t, 5*time.Second, "silent follower attached", func() bool { return leader.Attached() == 1 })
	rating := 4.0
	rec := &store.Record{Kind: store.KindUpload, AnonID: "anon-x", Entity: "ent/x",
		Visit:  &interaction.Record{Entity: "ent/x", Kind: interaction.VisitKind, Start: simclock.Epoch, Duration: time.Minute},
		Rating: &rating, Key: "lagged-key"}
	err = leaderStore.Commit(rec)
	if !errors.Is(err, store.ErrReplicationLag) {
		t.Fatalf("commit with silent follower = %v, want ErrReplicationLag", err)
	}
	if leaderStore.Failed() {
		t.Fatal("barrier timeout latched the store")
	}

	// Drop the silent follower: degraded commits flow again.
	conn.Close()
	waitFor(t, 5*time.Second, "silent follower detached", func() bool { return leader.Attached() == 0 })
	commitUpload(t, leaderStore, 99)
}

func TestAutoPromotionOnLeaderLoss(t *testing.T) {
	leaderStore, followerStore := openStore(t), openStore(t)
	leader, addr := startLeader(t, leaderStore, LeaderOptions{})
	commitUpload(t, leaderStore, 0)

	promoted := make(chan string, 1)
	opts := fastFollowerOpts()
	opts.FailoverAfter = 150 * time.Millisecond
	opts.ReadTimeout = 100 * time.Millisecond
	opts.OnPromote = func(reason string) { promoted <- reason }
	f := StartFollower(followerStore, addr, opts)
	defer f.Close()
	waitFor(t, 5*time.Second, "replicated before kill", func() bool { return followerStore.Seq() == 1 })

	if err := leader.Close(); err != nil {
		t.Fatalf("leader close: %v", err)
	}
	select {
	case <-promoted:
	case <-time.After(10 * time.Second):
		t.Fatal("follower did not auto-promote after sustained leader loss")
	}
	if !f.Promoted() || !f.CaughtUp() {
		t.Fatalf("promoted=%v caughtUp=%v, want true,true", f.Promoted(), f.CaughtUp())
	}
	// Promotion is sticky and single-shot.
	if f.Promote("again") {
		t.Fatal("second Promote reported as performing the promotion")
	}
	// The promoted node accepts local mutations on the inherited sequence space.
	commitUpload(t, followerStore, 1)
	if followerStore.Seq() != 2 {
		t.Fatalf("post-promotion seq = %d, want 2", followerStore.Seq())
	}
}

func TestProtocolRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte(`{"kind":"upload"}`)
	blob := []byte("not-really-gzip-but-opaque-here")
	if err := writeFrameMsg(&buf, 3, 7, payload); err != nil {
		t.Fatalf("writeFrameMsg: %v", err)
	}
	if err := writeSnapshotMsg(&buf, 9, blob); err != nil {
		t.Fatalf("writeSnapshotMsg: %v", err)
	}
	if err := writeHeartbeatMsg(&buf, 11); err != nil {
		t.Fatalf("writeHeartbeatMsg: %v", err)
	}
	br := bufio.NewReader(bytes.NewReader(buf.Bytes()))
	m1, err := readMessage(br)
	if err != nil || m1.kind != msgFrame || m1.stripe != 3 || m1.seq != 7 || !bytes.Equal(m1.payload, payload) {
		t.Fatalf("frame round trip: %+v, %v", m1, err)
	}
	m2, err := readMessage(br)
	if err != nil || m2.kind != msgSnapshot || m2.seq != 9 || !bytes.Equal(m2.payload, blob) {
		t.Fatalf("snapshot round trip: %+v, %v", m2, err)
	}
	m3, err := readMessage(br)
	if err != nil || m3.kind != msgHeartbeat || m3.seq != 11 {
		t.Fatalf("heartbeat round trip: %+v, %v", m3, err)
	}
	if _, err := readMessage(br); err == nil {
		t.Fatal("read past end succeeded")
	}

	// A flipped payload bit must fail the CRC, not decode quietly.
	var corrupt bytes.Buffer
	if err := writeFrameMsg(&corrupt, 3, 7, payload); err != nil {
		t.Fatalf("writeFrameMsg: %v", err)
	}
	raw := corrupt.Bytes()
	raw[len(raw)-1] ^= 0x01
	if _, err := readMessage(bufio.NewReader(bytes.NewReader(raw))); err == nil {
		t.Fatal("corrupt frame decoded without error")
	}
}

func TestHandshakeRejectsBadMagic(t *testing.T) {
	if _, err := readHandshake(bytes.NewReader([]byte("NOTMAGIC\x00\x00\x00\x00\x00\x00\x00\x01"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// TestBarrierRecordsReplicate: cross-stripe barrier records (retrain,
// fraud sweep) travel the wire once, fan out to every stripe on the
// follower, and the follower's full-vector ack satisfies the leader's
// semi-sync barrier. Runs at the default stripe width.
func TestBarrierRecordsReplicate(t *testing.T) {
	leaderStore, followerStore := openStore(t), openStore(t)
	leader, addr := startLeader(t, leaderStore, LeaderOptions{
		SyncCommit: true, AckTimeout: 5 * time.Second,
	})
	f := StartFollower(followerStore, addr, fastFollowerOpts())
	defer f.Close()
	waitFor(t, 5*time.Second, "follower connected", f.Connected)

	for i := 0; i < 8; i++ {
		commitUpload(t, leaderStore, i)
	}
	for i := 0; i < 4; i++ {
		pair := &store.Record{Kind: store.KindTrainPair,
			Features: []float64{float64(i), float64(i % 2)}, TrainRating: 3.5, Category: "restaurant"}
		if err := leaderStore.Commit(pair); err != nil {
			t.Fatalf("train pair %d: %v", i, err)
		}
	}
	// Both barrier kinds, with single-stripe traffic in between.
	if err := leaderStore.Commit(&store.Record{Kind: store.KindRetrain}); err != nil {
		t.Fatalf("retrain: %v", err)
	}
	commitUpload(t, leaderStore, 8)
	if err := leaderStore.Commit(&store.Record{Kind: store.KindSweep, Dropped: []string{"anon-2"}}); err != nil {
		t.Fatalf("sweep: %v", err)
	}

	want := leaderStore.Seq()
	waitFor(t, 5*time.Second, "follower converged", func() bool { return followerStore.Seq() == want })
	waitFor(t, 5*time.Second, "leader saw full acks", func() bool { return leader.FollowerAck() == want })
	if followerStore.Models() == nil {
		t.Fatal("retrain barrier did not rebuild the model on the follower")
	}
	if got, wantRecs := followerStore.Histories().Stats().Records, leaderStore.Histories().Stats().Records; got != wantRecs {
		t.Fatalf("follower records %d, leader %d (sweep barrier diverged)", got, wantRecs)
	}
	if got := followerStore.TrainingPairs(); got != 4 {
		t.Fatalf("follower training pairs = %d, want 4", got)
	}
}
