package blindsig

import (
	"crypto/rand"
	"errors"
	"math/big"
	"testing"
	"time"

	"opinions/internal/simclock"
)

// testIssuer uses a small key for test speed; production uses ≥2048.
func testIssuer(t *testing.T, rate int, period time.Duration, clock simclock.Clock) *Issuer {
	t.Helper()
	is, err := NewIssuer(1024, rate, period, clock)
	if err != nil {
		t.Fatal(err)
	}
	return is
}

func TestBlindSignRoundTrip(t *testing.T) {
	is := testIssuer(t, 10, time.Hour, nil)
	msg := []byte("token-serial-1")
	blinded, unblind, err := Blind(is.PublicKey(), msg, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	blindSig, err := is.Sign("device-a", blinded)
	if err != nil {
		t.Fatal(err)
	}
	sig := unblind(blindSig)
	if !Verify(is.PublicKey(), msg, sig) {
		t.Fatal("unblinded signature does not verify")
	}
	if Verify(is.PublicKey(), []byte("other"), sig) {
		t.Fatal("signature verifies for a different message")
	}
}

func TestIssuerNeverSeesMessage(t *testing.T) {
	// The blinded value must not equal H(msg); blinding must actually
	// transform it.
	is := testIssuer(t, 10, time.Hour, nil)
	msg := []byte("secret")
	b1, _, err := Blind(is.PublicKey(), msg, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	b2, _, err := Blind(is.PublicKey(), msg, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if b1.Cmp(b2) == 0 {
		t.Fatal("two blindings of the same message are identical; blinding factor ignored")
	}
	if b1.Cmp(hashToInt(msg)) == 0 {
		t.Fatal("blinded value equals message hash")
	}
}

func TestRateLimit(t *testing.T) {
	clock := simclock.NewSim(simclock.Epoch)
	is := testIssuer(t, 2, 24*time.Hour, clock)
	for i := 0; i < 2; i++ {
		if _, err := RequestToken(is, "dev", rand.Reader); err != nil {
			t.Fatalf("token %d: %v", i, err)
		}
	}
	if _, err := RequestToken(is, "dev", rand.Reader); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("third token err = %v, want ErrRateLimited", err)
	}
	// Another device is unaffected.
	if _, err := RequestToken(is, "dev2", rand.Reader); err != nil {
		t.Fatalf("other device: %v", err)
	}
	// After the period passes the budget refills.
	clock.Advance(25 * time.Hour)
	if _, err := RequestToken(is, "dev", rand.Reader); err != nil {
		t.Fatalf("after refill: %v", err)
	}
}

func TestRedeemOnce(t *testing.T) {
	is := testIssuer(t, 10, time.Hour, nil)
	tok, err := RequestToken(is, "dev", rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	rd := NewRedeemer(is.PublicKey())
	if err := rd.Redeem(tok); err != nil {
		t.Fatalf("first redeem: %v", err)
	}
	if err := rd.Redeem(tok); !errors.Is(err, ErrTokenSpent) {
		t.Fatalf("second redeem err = %v, want ErrTokenSpent", err)
	}
}

func TestRedeemForged(t *testing.T) {
	is := testIssuer(t, 10, time.Hour, nil)
	rd := NewRedeemer(is.PublicKey())
	forged := Token{Msg: []byte("forged"), Sig: big.NewInt(12345)}
	if err := rd.Redeem(forged); !errors.Is(err, ErrTokenInvalid) {
		t.Fatalf("forged redeem err = %v, want ErrTokenInvalid", err)
	}
}

func TestSignRejectsOutOfRange(t *testing.T) {
	is := testIssuer(t, 10, time.Hour, nil)
	if _, err := is.Sign("dev", nil); err == nil {
		t.Error("nil blinded accepted")
	}
	if _, err := is.Sign("dev", big.NewInt(0)); err == nil {
		t.Error("zero blinded accepted")
	}
	tooBig := new(big.Int).Add(is.PublicKey().N, big.NewInt(1))
	if _, err := is.Sign("dev", tooBig); err == nil {
		t.Error("oversized blinded accepted")
	}
}

func TestNewIssuerValidation(t *testing.T) {
	if _, err := NewIssuer(1024, 0, time.Hour, nil); err == nil {
		t.Error("rate 0 accepted")
	}
	if _, err := NewIssuer(1024, 1, 0, nil); err == nil {
		t.Error("period 0 accepted")
	}
}

func TestVerifyNilInputs(t *testing.T) {
	is := testIssuer(t, 1, time.Hour, nil)
	if Verify(nil, []byte("m"), big.NewInt(1)) {
		t.Error("nil key verified")
	}
	if Verify(is.PublicKey(), []byte("m"), nil) {
		t.Error("nil sig verified")
	}
}

func TestBlindNilKey(t *testing.T) {
	if _, _, err := Blind(nil, []byte("m"), rand.Reader); err == nil {
		t.Error("nil key accepted")
	}
}

func TestTokensAreUnlinkable(t *testing.T) {
	// Two tokens issued to the same device must share no bytes of
	// serial: the issuer cannot recognize them at redemption.
	is := testIssuer(t, 10, time.Hour, nil)
	t1, err := RequestToken(is, "dev", rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := RequestToken(is, "dev", rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if string(t1.Msg) == string(t2.Msg) {
		t.Fatal("two tokens share a serial")
	}
	rd := NewRedeemer(is.PublicKey())
	if err := rd.Redeem(t1); err != nil {
		t.Fatal(err)
	}
	if err := rd.Redeem(t2); err != nil {
		t.Fatal(err)
	}
}
