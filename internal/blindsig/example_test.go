package blindsig_test

import (
	"crypto/rand"
	"fmt"
	"time"

	"opinions/internal/blindsig"
)

// The full §4.2 token flow: the issuer signs blindly, the device
// unblinds, the redeemer accepts each token exactly once.
func Example() {
	issuer, err := blindsig.NewIssuer(1024, 10, time.Hour, nil)
	if err != nil {
		panic(err)
	}
	token, err := blindsig.RequestToken(issuer, "device-1", rand.Reader)
	if err != nil {
		panic(err)
	}
	redeemer := blindsig.NewRedeemer(issuer.PublicKey())
	fmt.Println("first redeem:", redeemer.Redeem(token))
	fmt.Println("replay:", redeemer.Redeem(token) == blindsig.ErrTokenSpent)
	// Output:
	// first redeem: <nil>
	// replay: true
}
