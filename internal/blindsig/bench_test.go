package blindsig

import (
	"crypto/rand"
	"testing"
	"time"
)

func benchIssuer(b *testing.B) *Issuer {
	b.Helper()
	is, err := NewIssuer(1024, 1<<30, time.Hour, nil)
	if err != nil {
		b.Fatal(err)
	}
	return is
}

func BenchmarkBlind(b *testing.B) {
	is := benchIssuer(b)
	msg := []byte("serial")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Blind(is.PublicKey(), msg, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSign(b *testing.B) {
	is := benchIssuer(b)
	blinded, _, err := Blind(is.PublicKey(), []byte("serial"), rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := is.Sign("dev", blinded); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	is := benchIssuer(b)
	tok, err := RequestToken(is, "dev", rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Verify(is.PublicKey(), tok.Msg, tok.Sig) {
			b.Fatal("verify failed")
		}
	}
}

func BenchmarkFullTokenProtocol(b *testing.B) {
	is := benchIssuer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RequestToken(is, "dev", rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}
