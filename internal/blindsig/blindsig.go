// Package blindsig implements Chaum's RSA blind signatures [16] and the
// rate-limited token issuance the paper proposes in §4.2: "An RSP can
// however limit the impact of such attacks by handing out blindly signed
// tokens at a limited rate to every device and require that every device
// present a valid token when anonymously uploading information."
//
// The issuer signs a blinded message without learning it, so a token
// presented later on an anonymous channel cannot be linked back to the
// device it was issued to — yet each device only obtains tokens at a
// bounded rate, capping how much history any one attacker can write.
//
// This is the textbook scheme over math/big: sig = H(m)^d mod N, blinded
// by a random r^e factor. It is deliberately free of external
// dependencies; the repository is stdlib-only.
package blindsig

import (
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"
	"time"

	"opinions/internal/simclock"
)

// Token is an unblinded, verifiable upload token.
type Token struct {
	// Msg is the token's serial message, chosen by the client.
	Msg []byte
	// Sig is the issuer's RSA signature over H(Msg).
	Sig *big.Int
}

// hashToInt maps a message into Z_N via SHA-256 (full-domain hashing is
// overkill for a 2048-bit modulus and a 256-bit digest; the digest is
// always < N).
func hashToInt(msg []byte) *big.Int {
	h := sha256.Sum256(msg)
	return new(big.Int).SetBytes(h[:])
}

// Blind blinds msg under pub. It returns the blinded value to send to
// the issuer and an unblind function to apply to the issuer's response.
// The random blinding factor comes from rng (use crypto/rand.Reader in
// production; tests may substitute a deterministic reader).
func Blind(pub *rsa.PublicKey, msg []byte, rng io.Reader) (*big.Int, func(*big.Int) *big.Int, error) {
	if pub == nil || pub.N == nil {
		return nil, nil, errors.New("blindsig: nil public key")
	}
	m := hashToInt(msg)
	var r *big.Int
	for {
		var err error
		r, err = rand.Int(rng, pub.N)
		if err != nil {
			return nil, nil, fmt.Errorf("blindsig: drawing blinding factor: %w", err)
		}
		if r.Sign() > 0 && new(big.Int).GCD(nil, nil, r, pub.N).Cmp(big.NewInt(1)) == 0 {
			break
		}
	}
	e := big.NewInt(int64(pub.E))
	re := new(big.Int).Exp(r, e, pub.N)           // r^e mod N
	blinded := re.Mul(re, m).Mod(re, pub.N)       // H(m)·r^e mod N
	rInv := new(big.Int).ModInverse(r, pub.N)     // r^-1 mod N
	unblind := func(blindSig *big.Int) *big.Int { // s' · r^-1 = H(m)^d
		s := new(big.Int).Mul(blindSig, rInv)
		return s.Mod(s, pub.N)
	}
	return blinded, unblind, nil
}

// Verify reports whether sig is a valid signature over msg under pub.
func Verify(pub *rsa.PublicKey, msg []byte, sig *big.Int) bool {
	if pub == nil || sig == nil {
		return false
	}
	e := big.NewInt(int64(pub.E))
	m := new(big.Int).Exp(sig, e, pub.N)
	return m.Cmp(hashToInt(msg)) == 0
}

// Issuer holds the RSP's signing key and enforces the per-device token
// rate limit. Issuer is safe for concurrent use.
type Issuer struct {
	key    *rsa.PrivateKey
	clock  simclock.Clock
	rate   int
	period time.Duration

	mu     sync.Mutex
	grants map[string][]time.Time
}

// ErrRateLimited is returned when a device has exhausted its token
// budget for the current period.
var ErrRateLimited = errors.New("blindsig: device token rate exceeded")

// NewIssuer generates a fresh bits-bit RSA key and returns an issuer
// granting each device at most ratePerPeriod tokens per period.
func NewIssuer(bits, ratePerPeriod int, period time.Duration, clock simclock.Clock) (*Issuer, error) {
	if ratePerPeriod < 1 {
		return nil, errors.New("blindsig: rate must be ≥ 1")
	}
	if period <= 0 {
		return nil, errors.New("blindsig: period must be positive")
	}
	if clock == nil {
		clock = simclock.Real{}
	}
	key, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, fmt.Errorf("blindsig: generating issuer key: %w", err)
	}
	return &Issuer{
		key:    key,
		clock:  clock,
		rate:   ratePerPeriod,
		period: period,
		grants: make(map[string][]time.Time),
	}, nil
}

// PublicKey returns the issuer's verification key.
func (is *Issuer) PublicKey() *rsa.PublicKey { return &is.key.PublicKey }

// Sign signs a blinded value for deviceID, enforcing the rate limit.
// The issuer authenticates the *device* here (this is the one
// non-anonymous interaction), but learns nothing about the token it is
// signing.
func (is *Issuer) Sign(deviceID string, blinded *big.Int) (*big.Int, error) {
	if blinded == nil || blinded.Sign() <= 0 || blinded.Cmp(is.key.N) >= 0 {
		return nil, errors.New("blindsig: blinded value out of range")
	}
	now := is.clock.Now()
	is.mu.Lock()
	defer is.mu.Unlock()
	recent := is.grants[deviceID][:0]
	for _, t := range is.grants[deviceID] {
		if now.Sub(t) < is.period {
			recent = append(recent, t)
		}
	}
	if len(recent) >= is.rate {
		is.grants[deviceID] = recent
		return nil, ErrRateLimited
	}
	is.grants[deviceID] = append(recent, now)
	return new(big.Int).Exp(blinded, is.key.D, is.key.N), nil
}

// RequestToken runs the full client-side protocol against the issuer:
// blind a fresh random serial, obtain a blind signature, unblind it, and
// return the verifiable token. Serial randomness comes from rng.
func RequestToken(is *Issuer, deviceID string, rng io.Reader) (Token, error) {
	serial := make([]byte, 32)
	if _, err := io.ReadFull(rng, serial); err != nil {
		return Token{}, fmt.Errorf("blindsig: drawing serial: %w", err)
	}
	blinded, unblind, err := Blind(is.PublicKey(), serial, rng)
	if err != nil {
		return Token{}, err
	}
	blindSig, err := is.Sign(deviceID, blinded)
	if err != nil {
		return Token{}, err
	}
	return Token{Msg: serial, Sig: unblind(blindSig)}, nil
}

// Redeemer tracks spent tokens so each can be used exactly once.
// Redeemer is safe for concurrent use.
type Redeemer struct {
	pub   *rsa.PublicKey
	mu    sync.Mutex
	spent map[string]bool
}

// NewRedeemer returns a redeemer verifying against pub.
func NewRedeemer(pub *rsa.PublicKey) *Redeemer {
	return &Redeemer{pub: pub, spent: make(map[string]bool)}
}

// ErrTokenInvalid is returned for forged or malformed tokens.
var ErrTokenInvalid = errors.New("blindsig: invalid token")

// ErrTokenSpent is returned when a token is presented twice.
var ErrTokenSpent = errors.New("blindsig: token already spent")

// Redeem verifies the token and marks it spent.
func (rd *Redeemer) Redeem(t Token) error {
	if !Verify(rd.pub, t.Msg, t.Sig) {
		return ErrTokenInvalid
	}
	key := string(t.Msg)
	rd.mu.Lock()
	defer rd.mu.Unlock()
	if rd.spent[key] {
		return ErrTokenSpent
	}
	rd.spent[key] = true
	return nil
}
