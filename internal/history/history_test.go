package history

import (
	"crypto/rand"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"opinions/internal/interaction"
)

var t0 = time.Date(2016, 3, 1, 12, 0, 0, 0, time.UTC)

func rec(entity string, at time.Time) interaction.Record {
	return interaction.Record{Entity: entity, Kind: interaction.VisitKind, Start: at, Duration: 30 * time.Minute}
}

func TestAnonIDDeterministicAndDistinct(t *testing.T) {
	ru := []byte("device-secret-ru")
	a := AnonID(ru, "yelp/r1")
	b := AnonID(ru, "yelp/r1")
	c := AnonID(ru, "yelp/r2")
	if a != b {
		t.Fatal("AnonID not deterministic")
	}
	if a == c {
		t.Fatal("different entities share an AnonID")
	}
	other := AnonID([]byte("other-secret"), "yelp/r1")
	if a == other {
		t.Fatal("different devices share an AnonID")
	}
	if len(a) != 64 {
		t.Fatalf("AnonID length = %d, want 64 hex chars", len(a))
	}
}

func TestAnonIDUnlinkableAcrossEntities(t *testing.T) {
	// No common prefix/suffix structure across a user's IDs: check that
	// IDs for many entities from one Ru look pairwise unrelated (no
	// shared 8-char substring at the same position beyond chance).
	ru := make([]byte, 32)
	if _, err := rand.Read(ru); err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 50)
	for i := range ids {
		ids[i] = AnonID(ru, fmt.Sprintf("yelp/e%d", i))
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			match := 0
			for k := 0; k < 64; k++ {
				if ids[i][k] == ids[j][k] {
					match++
				}
			}
			// Expected matches ≈ 64/16 = 4; flag anything over 20.
			if match > 20 {
				t.Fatalf("ids %d and %d agree on %d/64 positions", i, j, match)
			}
		}
	}
}

func TestClientStoreAddPurge(t *testing.T) {
	cs := NewClientStore(7 * 24 * time.Hour)
	cs.Add(rec("yelp/a", t0))
	cs.Add(rec("yelp/a", t0.Add(24*time.Hour)))
	cs.Add(rec("yelp/b", t0.Add(2*24*time.Hour)))
	if cs.Len() != 3 {
		t.Fatalf("Len = %d", cs.Len())
	}
	dropped := cs.Purge(t0.Add(8 * 24 * time.Hour))
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1 (only the first record is older than 7d)", dropped)
	}
	if got := cs.ForEntity("yelp/a"); len(got) != 1 {
		t.Fatalf("remaining for a = %d", len(got))
	}
	// Purging everything removes the entity from the listing.
	cs.Purge(t0.Add(100 * 24 * time.Hour))
	if got := cs.Entities(); len(got) != 0 {
		t.Fatalf("entities after full purge = %v", got)
	}
}

func TestClientStoreForget(t *testing.T) {
	cs := NewClientStore(0) // default retention
	cs.Add(rec("yelp/a", t0))
	cs.Add(rec("yelp/a", t0))
	cs.Add(rec("yelp/b", t0))
	if n := cs.Forget("yelp/a"); n != 2 {
		t.Fatalf("Forget = %d, want 2", n)
	}
	if got := cs.Entities(); len(got) != 1 || got[0] != "yelp/b" {
		t.Fatalf("entities = %v", got)
	}
	if n := cs.Forget("yelp/zzz"); n != 0 {
		t.Fatalf("Forget missing = %d", n)
	}
}

func TestClientStoreEntitiesSorted(t *testing.T) {
	cs := NewClientStore(0)
	for _, k := range []string{"z/1", "a/1", "m/1"} {
		cs.Add(rec(k, t0))
	}
	got := cs.Entities()
	if got[0] != "a/1" || got[1] != "m/1" || got[2] != "z/1" {
		t.Fatalf("entities = %v", got)
	}
}

func TestServerStoreAppendAndByEntity(t *testing.T) {
	ss := NewServerStore()
	ru1, ru2 := []byte("ru-1"), []byte("ru-2")
	id1 := AnonID(ru1, "yelp/a")
	id2 := AnonID(ru2, "yelp/a")
	if err := ss.Append(id1, "yelp/a", rec("yelp/a", t0)); err != nil {
		t.Fatal(err)
	}
	if err := ss.Append(id1, "yelp/a", rec("yelp/a", t0.Add(time.Hour))); err != nil {
		t.Fatal(err)
	}
	if err := ss.Append(id2, "yelp/a", rec("yelp/a", t0)); err != nil {
		t.Fatal(err)
	}
	hists := ss.ByEntity("yelp/a")
	if len(hists) != 2 {
		t.Fatalf("histories = %d, want 2", len(hists))
	}
	total := 0
	for _, h := range hists {
		total += len(h.Records)
	}
	if total != 3 {
		t.Fatalf("records = %d, want 3", total)
	}
}

func TestServerStoreEntityMismatch(t *testing.T) {
	ss := NewServerStore()
	id := AnonID([]byte("ru"), "yelp/a")
	if err := ss.Append(id, "yelp/a", rec("yelp/a", t0)); err != nil {
		t.Fatal(err)
	}
	err := ss.Append(id, "yelp/b", rec("yelp/b", t0))
	if !errors.Is(err, ErrEntityMismatch) {
		t.Fatalf("err = %v, want ErrEntityMismatch", err)
	}
}

func TestServerStoreRejectsEmptyIDs(t *testing.T) {
	ss := NewServerStore()
	if err := ss.Append("", "yelp/a", rec("yelp/a", t0)); err == nil {
		t.Error("empty anonID accepted")
	}
	if err := ss.Append("id", "", rec("", t0)); err == nil {
		t.Error("empty entity accepted")
	}
}

func TestServerStoreDrop(t *testing.T) {
	ss := NewServerStore()
	id1 := AnonID([]byte("ru1"), "yelp/a")
	id2 := AnonID([]byte("ru2"), "yelp/a")
	_ = ss.Append(id1, "yelp/a", rec("yelp/a", t0))
	_ = ss.Append(id2, "yelp/a", rec("yelp/a", t0))
	ss.Drop(id1)
	if got := ss.ByEntity("yelp/a"); len(got) != 1 || got[0].AnonID != id2 {
		t.Fatalf("after drop: %d histories", len(got))
	}
	ss.Drop(id2)
	if got := ss.Entities(); len(got) != 0 {
		t.Fatalf("entities after dropping all = %v", got)
	}
	ss.Drop("nonexistent") // must not panic
}

func TestServerStoreStats(t *testing.T) {
	ss := NewServerStore()
	_ = ss.Append(AnonID([]byte("r1"), "yelp/a"), "yelp/a", rec("yelp/a", t0))
	_ = ss.Append(AnonID([]byte("r1"), "yelp/b"), "yelp/b", rec("yelp/b", t0))
	_ = ss.Append(AnonID([]byte("r2"), "yelp/a"), "yelp/a", rec("yelp/a", t0))
	s := ss.Stats()
	if s.Histories != 3 || s.Records != 3 || s.Entities != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestServerStoreConcurrentAppend(t *testing.T) {
	ss := NewServerStore()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := AnonID([]byte(fmt.Sprintf("ru-%d", i)), "yelp/a")
			for j := 0; j < 20; j++ {
				if err := ss.Append(id, "yelp/a", rec("yelp/a", t0)); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	s := ss.Stats()
	if s.Histories != 50 || s.Records != 1000 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestClientStoreConcurrent(t *testing.T) {
	cs := NewClientStore(time.Hour)
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cs.Add(rec(fmt.Sprintf("yelp/e%d", i%5), t0))
			cs.ForEntity("yelp/e0")
			cs.Purge(t0)
		}(i)
	}
	wg.Wait()
	if cs.Len() != 20 {
		t.Fatalf("Len = %d", cs.Len())
	}
}
