package history

import (
	"testing"
	"testing/quick"
)

// Property: AnonID is a stable function of (Ru, entity), distinct Ru or
// entity (almost surely) changes it, and the output is always 64 hex
// characters.
func TestAnonIDProperties(t *testing.T) {
	format := func(ru []byte, entity string) bool {
		id := AnonID(ru, entity)
		if len(id) != 64 {
			return false
		}
		for _, c := range id {
			if !((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) {
				return false
			}
		}
		return id == AnonID(ru, entity)
	}
	if err := quick.Check(format, nil); err != nil {
		t.Fatal(err)
	}

	distinct := func(ru []byte, a, b string) bool {
		if a == b {
			return true
		}
		return AnonID(ru, a) != AnonID(ru, b)
	}
	if err := quick.Check(distinct, nil); err != nil {
		t.Fatal(err)
	}

	perDevice := func(ru1, ru2 []byte, entity string) bool {
		if string(ru1) == string(ru2) {
			return true
		}
		return AnonID(ru1, entity) != AnonID(ru2, entity)
	}
	if err := quick.Check(perDevice, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a ServerStore dump/restore round trip preserves stats
// exactly, for arbitrary insertion patterns.
func TestServerStoreDumpRestoreProperty(t *testing.T) {
	f := func(ids []uint8, entities []uint8) bool {
		if len(ids) == 0 || len(entities) == 0 {
			return true
		}
		ss := NewServerStore()
		for i, idByte := range ids {
			entity := "e" + string(rune('a'+int(entities[i%len(entities)])%26))
			id := AnonID([]byte{idByte}, entity)
			if err := ss.Append(id, entity, rec(entity, t0)); err != nil {
				return false
			}
		}
		before := ss.Stats()
		dump := ss.Dump()
		other := NewServerStore()
		if err := other.Restore(dump); err != nil {
			return false
		}
		return other.Stats() == before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
