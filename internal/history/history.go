// Package history implements the paper's two-tier, privacy-preserving
// storage of interaction histories (§4.2).
//
// Client side, the device keeps only a *recent snapshot*: "an RSP [should]
// store only a recent snapshot of any user's inferred interactions on her
// device and store the rest of the user's long-term history at the RSP's
// servers" — so a stolen phone leaks only recent interactions.
//
// Server side, each (user, entity) pair's history lives under the
// anonymous identifier hash(Ru, e), where Ru is a random number that
// never leaves the device. Two properties follow, both tested here:
//
//  1. Unlinkability: histories of the same user for two entities share
//     nothing the server can correlate.
//  2. Update-only access: the server supports appends but no retrieval
//     by identifier, so even a leaked Ru cannot be used to read a user's
//     history back out.
package history

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"opinions/internal/interaction"
	"opinions/internal/stripe"
)

// AnonID derives the anonymous history identifier for (Ru, entity):
// HMAC-SHA256(Ru, entityKey), hex encoded. The HMAC keys the hash with
// the device secret so the server — which knows every entity key —
// cannot enumerate candidate IDs.
func AnonID(ru []byte, entityKey string) string {
	mac := hmac.New(sha256.New, ru)
	mac.Write([]byte(entityKey))
	return hex.EncodeToString(mac.Sum(nil))
}

// ClientStore is the on-device snapshot: interaction records retained
// only for a bounded window ("the RSP's app purges an entry from the
// user's history once the entry is older than a configurable threshold").
// ClientStore is safe for concurrent use.
type ClientStore struct {
	retention time.Duration

	mu   sync.Mutex
	recs map[string][]interaction.Record // entity key → records, time-ordered
}

// NewClientStore returns a store that retains records for the given
// duration (default 30 days when non-positive).
func NewClientStore(retention time.Duration) *ClientStore {
	if retention <= 0 {
		retention = 30 * 24 * time.Hour
	}
	return &ClientStore{
		retention: retention,
		recs:      make(map[string][]interaction.Record),
	}
}

// Add records an interaction.
func (cs *ClientStore) Add(rec interaction.Record) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.recs[rec.Entity] = append(cs.recs[rec.Entity], rec)
}

// Purge drops every record older than the retention window as of now and
// returns the number dropped.
func (cs *ClientStore) Purge(now time.Time) int {
	cutoff := now.Add(-cs.retention)
	cs.mu.Lock()
	defer cs.mu.Unlock()
	dropped := 0
	for key, recs := range cs.recs {
		kept := recs[:0]
		for _, r := range recs {
			if r.Start.Before(cutoff) {
				dropped++
			} else {
				kept = append(kept, r)
			}
		}
		if len(kept) == 0 {
			delete(cs.recs, key)
		} else {
			cs.recs[key] = kept
		}
	}
	return dropped
}

// ForEntity returns a copy of the retained records for an entity.
func (cs *ClientStore) ForEntity(entityKey string) []interaction.Record {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return append([]interaction.Record(nil), cs.recs[entityKey]...)
}

// Entities returns the entity keys with retained records, sorted. This
// is the transparency surface (§5): the user can see exactly which
// entities the app currently holds inferences about.
func (cs *ClientStore) Entities() []string {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	out := make([]string, 0, len(cs.recs))
	for k := range cs.recs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Forget removes every record for an entity — the §5 correction
// affordance ("enable users to correct inaccurate inferences"). It
// returns the number of records removed.
func (cs *ClientStore) Forget(entityKey string) int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	n := len(cs.recs[entityKey])
	delete(cs.recs, entityKey)
	return n
}

// Dump returns every retained record, for device-state persistence.
func (cs *ClientStore) Dump() []interaction.Record {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	var out []interaction.Record
	keys := make([]string, 0, len(cs.recs))
	for k := range cs.recs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, cs.recs[k]...)
	}
	return out
}

// Restore replaces the store's contents with the given records.
func (cs *ClientStore) Restore(recs []interaction.Record) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.recs = make(map[string][]interaction.Record)
	for _, r := range recs {
		cs.recs[r.Entity] = append(cs.recs[r.Entity], r)
	}
}

// Len returns the total number of retained records.
func (cs *ClientStore) Len() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	n := 0
	for _, recs := range cs.recs {
		n += len(recs)
	}
	return n
}

// EntityHistory is one anonymous per-(user, entity) record sequence as
// stored by the server. It carries no user identity; the server knows
// only that all its records came from the same (unknown) user.
type EntityHistory struct {
	AnonID  string
	Entity  string
	Records []interaction.Record
}

// ErrEntityMismatch is returned when an append names a different entity
// than the one an existing history was initialized with; a correct
// client never does this, so it indicates tampering.
var ErrEntityMismatch = errors.New("history: anonymous ID already bound to a different entity")

// ServerStore is the RSP-side anonymous history store. The public
// surface is deliberately asymmetric: Append is the only per-ID
// operation, and iteration is only by entity, because "the RSP's service
// only need support requests to update histories but not to retrieve
// them" (§4.2). ServerStore is safe for concurrent use.
//
// Internally the store is striped two ways so reads stop serializing
// behind uploads: an anonID-striped binding index (anonID → entity,
// backing the §4.2 entity-mismatch check and Drop routing) and an
// entity-striped history map (the aggregation read surface). Writers
// take an ID stripe then an entity stripe, always in that order;
// readers take only an entity stripe.
type ServerStore struct {
	ids      [stripe.NumShards]idShard
	entities [stripe.NumShards]entityShard
}

// idShard guards the anonID → entity binding for its stripe of IDs.
type idShard struct {
	mu      sync.Mutex
	binding map[string]string
}

// entityShard guards the histories of its stripe of entities:
// entity key → anonID → history. All mutation of a history's Records
// happens under this shard's write lock, so readers holding the read
// lock may hand out slice-header copies safely (records are
// append-only; existing elements are never rewritten in place).
type entityShard struct {
	mu       sync.RWMutex
	byEntity map[string]map[string]*EntityHistory
}

// NewServerStore returns an empty store.
func NewServerStore() *ServerStore {
	ss := &ServerStore{}
	for i := range ss.ids {
		ss.ids[i].binding = make(map[string]string)
	}
	for i := range ss.entities {
		ss.entities[i].byEntity = make(map[string]map[string]*EntityHistory)
	}
	return ss
}

func (ss *ServerStore) idShard(anonID string) *idShard {
	return &ss.ids[stripe.Index(anonID)]
}

func (ss *ServerStore) entityShard(entityKey string) *entityShard {
	return &ss.entities[stripe.Index(entityKey)]
}

// Append adds a record to the history identified by anonID, creating the
// history bound to entityKey on first use.
func (ss *ServerStore) Append(anonID, entityKey string, rec interaction.Record) error {
	if anonID == "" || entityKey == "" {
		return fmt.Errorf("history: empty identifier (anonID=%q entity=%q)", anonID, entityKey)
	}
	ids := ss.idShard(anonID)
	ids.mu.Lock()
	defer ids.mu.Unlock()
	if bound, ok := ids.binding[anonID]; ok && bound != entityKey {
		return ErrEntityMismatch
	}
	ids.binding[anonID] = entityKey

	es := ss.entityShard(entityKey)
	es.mu.Lock()
	defer es.mu.Unlock()
	hists := es.byEntity[entityKey]
	if hists == nil {
		hists = make(map[string]*EntityHistory)
		es.byEntity[entityKey] = hists
	}
	h := hists[anonID]
	if h == nil {
		h = &EntityHistory{AnonID: anonID, Entity: entityKey}
		hists[anonID] = h
	}
	h.Records = append(h.Records, rec)
	return nil
}

// ByEntity returns the histories stored for an entity, ordered by
// anonymous ID. Each returned history is a fresh header whose Records
// slice snapshots the store at call time; concurrent appends create
// new history state without invalidating it. This is the RSP-internal
// aggregation surface (Figure 3, §4.3's typical-user profile); it is
// never exposed over the network API.
func (ss *ServerStore) ByEntity(entityKey string) []*EntityHistory {
	es := ss.entityShard(entityKey)
	es.mu.RLock()
	hists := es.byEntity[entityKey]
	out := make([]*EntityHistory, 0, len(hists))
	for _, h := range hists {
		out = append(out, &EntityHistory{AnonID: h.AnonID, Entity: h.Entity, Records: h.Records})
	}
	es.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].AnonID < out[j].AnonID })
	return out
}

// Entities returns all entity keys with at least one history, sorted.
func (ss *ServerStore) Entities() []string {
	var out []string
	for i := range ss.entities {
		es := &ss.entities[i]
		es.mu.RLock()
		for k, hists := range es.byEntity {
			if len(hists) > 0 {
				out = append(out, k)
			}
		}
		es.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Drop removes a history entirely — used by fraud filtering (§4.3:
// "Discarding interaction histories that significantly deviate from the
// activity patterns of the typical user").
func (ss *ServerStore) Drop(anonID string) {
	ids := ss.idShard(anonID)
	ids.mu.Lock()
	defer ids.mu.Unlock()
	entityKey, ok := ids.binding[anonID]
	if !ok {
		return
	}
	delete(ids.binding, anonID)

	es := ss.entityShard(entityKey)
	es.mu.Lock()
	defer es.mu.Unlock()
	hists := es.byEntity[entityKey]
	delete(hists, anonID)
	if len(hists) == 0 {
		delete(es.byEntity, entityKey)
	}
}

// Dump returns a deep copy of every history, for snapshotting. Order is
// deterministic (by anonymous ID).
func (ss *ServerStore) Dump() []EntityHistory {
	var out []EntityHistory
	for i := range ss.entities {
		es := &ss.entities[i]
		es.mu.RLock()
		for _, hists := range es.byEntity {
			for _, h := range hists {
				out = append(out, EntityHistory{
					AnonID:  h.AnonID,
					Entity:  h.Entity,
					Records: append([]interaction.Record(nil), h.Records...),
				})
			}
		}
		es.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AnonID < out[j].AnonID })
	return out
}

// Restore replaces the store's contents with the dumped histories.
func (ss *ServerStore) Restore(hists []EntityHistory) error {
	for _, h := range hists {
		if h.AnonID == "" || h.Entity == "" {
			return fmt.Errorf("history: restoring malformed history (anonID=%q entity=%q)", h.AnonID, h.Entity)
		}
	}
	seen := make(map[string]bool, len(hists))
	for _, h := range hists {
		if seen[h.AnonID] {
			return fmt.Errorf("history: duplicate anonymous ID %q in snapshot", h.AnonID)
		}
		seen[h.AnonID] = true
	}
	for i := range ss.ids {
		ss.ids[i].mu.Lock()
		ss.ids[i].binding = make(map[string]string)
		ss.ids[i].mu.Unlock()
	}
	for i := range ss.entities {
		ss.entities[i].mu.Lock()
		ss.entities[i].byEntity = make(map[string]map[string]*EntityHistory)
		ss.entities[i].mu.Unlock()
	}
	for _, h := range hists {
		ids := ss.idShard(h.AnonID)
		ids.mu.Lock()
		ids.binding[h.AnonID] = h.Entity
		es := ss.entityShard(h.Entity)
		es.mu.Lock()
		m := es.byEntity[h.Entity]
		if m == nil {
			m = make(map[string]*EntityHistory)
			es.byEntity[h.Entity] = m
		}
		m[h.AnonID] = &EntityHistory{
			AnonID:  h.AnonID,
			Entity:  h.Entity,
			Records: append([]interaction.Record(nil), h.Records...),
		}
		es.mu.Unlock()
		ids.mu.Unlock()
	}
	return nil
}

// Stats summarizes store contents.
type Stats struct {
	Histories int
	Records   int
	Entities  int
}

// Stats returns current totals.
func (ss *ServerStore) Stats() Stats {
	var s Stats
	for i := range ss.entities {
		es := &ss.entities[i]
		es.mu.RLock()
		s.Entities += len(es.byEntity)
		for _, hists := range es.byEntity {
			s.Histories += len(hists)
			for _, h := range hists {
				s.Records += len(h.Records)
			}
		}
		es.mu.RUnlock()
	}
	return s
}
