package history_test

import (
	"fmt"

	"opinions/internal/history"
)

// Derive the unlinkable anonymous identifiers of §4.2: one per
// (device secret, entity) pair.
func ExampleAnonID() {
	ru := []byte("device-secret-never-leaves-the-phone")
	a := history.AnonID(ru, "yelp/golden-wok")
	b := history.AnonID(ru, "healthgrades/dr-chen")
	fmt.Println(len(a), len(b), a == b)
	// Output:
	// 64 64 false
}
