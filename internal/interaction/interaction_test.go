package interaction

import (
	"testing"
	"time"

	"opinions/internal/geo"
	"opinions/internal/mapping"
	"opinions/internal/sensing"
	"opinions/internal/stats"
	"opinions/internal/trace"
	"opinions/internal/world"
)

var base = geo.Point{Lat: 42.28, Lon: -83.74}

func testResolver() *mapping.Resolver {
	return mapping.NewResolver([]*world.Entity{
		{ID: "cafe", Service: world.Yelp, Category: "cafe", Loc: geo.Offset(base, 2000, 0), Phone: "+17345550001"},
		{ID: "dentist", Service: world.Yelp, Category: "dentist", Loc: geo.Offset(base, 0, 3000), Phone: "+17345550002"},
	})
}

// samplesAt emits n samples at p, one per minute starting at t.
func samplesAt(p geo.Point, t time.Time, n int) []sensing.Sample {
	out := make([]sensing.Sample, n)
	for i := range out {
		out[i] = sensing.Sample{Time: t.Add(time.Duration(i) * time.Minute), Point: p, Source: sensing.GPS}
	}
	return out
}

func TestDetectVisitBasic(t *testing.T) {
	d := NewDetector(testResolver(), Config{})
	t0 := time.Date(2016, 1, 4, 9, 0, 0, 0, time.UTC)
	cafe := geo.Offset(base, 2000, 0)
	var samples []sensing.Sample
	samples = append(samples, samplesAt(base, t0, 30)...)                     // home (unlisted)
	samples = append(samples, samplesAt(cafe, t0.Add(40*time.Minute), 20)...) // cafe visit
	samples = append(samples, samplesAt(base, t0.Add(70*time.Minute), 30)...) // home again

	recs := d.DetectVisits(samples)
	if len(recs) != 1 {
		t.Fatalf("detected %d visits, want 1 (home must not produce records)", len(recs))
	}
	r := recs[0]
	if r.Entity != "yelp/cafe" || r.Kind != VisitKind {
		t.Fatalf("record = %+v", r)
	}
	if r.Duration < 15*time.Minute || r.Duration > 25*time.Minute {
		t.Fatalf("duration = %v", r.Duration)
	}
	// Effort feature: distance from home (~2000 m).
	if r.DistanceFrom < 1800 || r.DistanceFrom > 2200 {
		t.Fatalf("DistanceFrom = %v, want ~2000", r.DistanceFrom)
	}
}

func TestShortStopIgnored(t *testing.T) {
	d := NewDetector(testResolver(), Config{})
	t0 := time.Date(2016, 1, 4, 9, 0, 0, 0, time.UTC)
	cafe := geo.Offset(base, 2000, 0)
	var samples []sensing.Sample
	samples = append(samples, samplesAt(base, t0, 30)...)
	samples = append(samples, samplesAt(cafe, t0.Add(31*time.Minute), 3)...) // 2 minutes only
	samples = append(samples, samplesAt(base, t0.Add(40*time.Minute), 30)...)
	if recs := d.DetectVisits(samples); len(recs) != 0 {
		t.Fatalf("short stop produced %d records", len(recs))
	}
}

func TestNoisySamplesStillCluster(t *testing.T) {
	d := NewDetector(testResolver(), Config{})
	t0 := time.Date(2016, 1, 4, 9, 0, 0, 0, time.UTC)
	cafe := geo.Offset(base, 2000, 0)
	var samples []sensing.Sample
	// Jittered fixes within 40 m of the cafe.
	offsets := []float64{-40, -20, 0, 20, 40, -30, 30, -10, 10, 0, 15, -15}
	for i, off := range offsets {
		samples = append(samples, sensing.Sample{
			Time:  t0.Add(time.Duration(i) * time.Minute),
			Point: geo.Offset(cafe, off, -off),
		})
	}
	recs := d.DetectVisits(samples)
	if len(recs) != 1 {
		t.Fatalf("noisy visit produced %d records, want 1", len(recs))
	}
}

func TestVisitAtUnlistedPlaceProducesNothing(t *testing.T) {
	d := NewDetector(testResolver(), Config{})
	t0 := time.Date(2016, 1, 4, 9, 0, 0, 0, time.UTC)
	nowhere := geo.Offset(base, 9000, 9000)
	if recs := d.DetectVisits(samplesAt(nowhere, t0, 60)); len(recs) != 0 {
		t.Fatalf("unlisted place produced %d records", len(recs))
	}
}

func TestTwoVisitsInOneDay(t *testing.T) {
	d := NewDetector(testResolver(), Config{})
	t0 := time.Date(2016, 1, 4, 9, 0, 0, 0, time.UTC)
	cafe := geo.Offset(base, 2000, 0)
	dentist := geo.Offset(base, 0, 3000)
	var samples []sensing.Sample
	samples = append(samples, samplesAt(base, t0, 20)...)
	samples = append(samples, samplesAt(cafe, t0.Add(30*time.Minute), 15)...)
	samples = append(samples, samplesAt(base, t0.Add(50*time.Minute), 20)...)
	samples = append(samples, samplesAt(dentist, t0.Add(80*time.Minute), 45)...)
	recs := d.DetectVisits(samples)
	if len(recs) != 2 {
		t.Fatalf("detected %d visits, want 2", len(recs))
	}
	if recs[0].Entity != "yelp/cafe" || recs[1].Entity != "yelp/dentist" {
		t.Fatalf("entities = %s, %s", recs[0].Entity, recs[1].Entity)
	}
	// Dentist's DistanceFrom is measured from home (the previous
	// stationary cluster), not from the cafe.
	if recs[1].DistanceFrom < 2800 || recs[1].DistanceFrom > 3200 {
		t.Fatalf("dentist DistanceFrom = %v, want ~3000", recs[1].DistanceFrom)
	}
}

func TestLongStayTreatedAsHomeNotVisit(t *testing.T) {
	// A user living (or working a shift) right next to a listed entity
	// must not generate visit records from an 8-hour stay.
	d := NewDetector(testResolver(), Config{})
	t0 := time.Date(2016, 1, 4, 0, 0, 0, 0, time.UTC)
	cafe := geo.Offset(base, 2000, 0)
	if recs := d.DetectVisits(samplesAt(cafe, t0, 8*60)); len(recs) != 0 {
		t.Fatalf("8h stay produced %d visit records", len(recs))
	}
	// But the long stay still anchors the next visit's effort distance.
	dentist := geo.Offset(base, 0, 3000)
	var samples []sensing.Sample
	samples = append(samples, samplesAt(cafe, t0, 8*60)...)
	samples = append(samples, samplesAt(dentist, t0.Add(9*time.Hour), 45)...)
	recs := d.DetectVisits(samples)
	if len(recs) != 1 || recs[0].Entity != "yelp/dentist" {
		t.Fatalf("recs = %+v", recs)
	}
	if recs[0].DistanceFrom < 3000 || recs[0].DistanceFrom > 4200 {
		t.Fatalf("DistanceFrom = %v, want distance from the long stay (~3600)", recs[0].DistanceFrom)
	}
}

func TestFromCalls(t *testing.T) {
	d := NewDetector(testResolver(), Config{})
	t0 := time.Date(2016, 1, 4, 9, 0, 0, 0, time.UTC)
	recs := d.FromCalls([]CallObservation{
		{Phone: "+17345550002", Time: t0, Duration: 2 * time.Minute},
		{Phone: "+19999999999", Time: t0, Duration: time.Minute}, // a friend
	})
	if len(recs) != 1 {
		t.Fatalf("resolved %d calls, want 1", len(recs))
	}
	if recs[0].Entity != "yelp/dentist" || recs[0].Kind != CallKind || recs[0].Duration != 2*time.Minute {
		t.Fatalf("record = %+v", recs[0])
	}
}

func TestFromPayments(t *testing.T) {
	d := NewDetector(testResolver(), Config{})
	t0 := time.Date(2016, 1, 4, 12, 0, 0, 0, time.UTC)
	recs := d.FromPayments([]PaymentObservation{
		{Merchant: "yelp/cafe", Time: t0, Amount: 12.50},
		{Merchant: "acme-unknown", Time: t0, Amount: 99},
	})
	if len(recs) != 1 {
		t.Fatalf("resolved %d payments, want 1", len(recs))
	}
	if recs[0].Kind != PaymentKind || recs[0].Amount != 12.50 {
		t.Fatalf("record = %+v", recs[0])
	}
}

func TestDetectVisitsEmpty(t *testing.T) {
	d := NewDetector(testResolver(), Config{})
	if recs := d.DetectVisits(nil); recs != nil {
		t.Fatalf("empty samples produced %v", recs)
	}
}

func TestEndToEndWithSensingPolicy(t *testing.T) {
	// Full loop: true timeline → duty-cycled sampling → visit detection
	// recovers the visit.
	d := NewDetector(testResolver(), Config{})
	day := time.Date(2016, 1, 4, 0, 0, 0, 0, time.UTC)
	cafe := geo.Offset(base, 2000, 0)
	segs := []trace.Segment{
		{Start: day, End: day.Add(9 * time.Hour), From: base, To: base, At: "home"},
		{Start: day.Add(9 * time.Hour), End: day.Add(9*time.Hour + 12*time.Minute), From: base, To: cafe},
		{Start: day.Add(9*time.Hour + 12*time.Minute), End: day.Add(10*time.Hour + 12*time.Minute), From: cafe, To: cafe, At: "yelp/cafe"},
		{Start: day.Add(10*time.Hour + 12*time.Minute), End: day.Add(10*time.Hour + 24*time.Minute), From: cafe, To: base},
		{Start: day.Add(10*time.Hour + 24*time.Minute), End: day.Add(24 * time.Hour), From: base, To: base, At: "home"},
	}
	samples, _ := sensing.DutyCycled{}.SampleDay(stats.NewRNG(1), segs)
	recs := d.DetectVisits(samples)
	found := false
	for _, r := range recs {
		if r.Entity == "yelp/cafe" {
			found = true
			if r.Duration < 30*time.Minute {
				t.Fatalf("recovered duration %v too short", r.Duration)
			}
			if r.DistanceFrom < 1700 || r.DistanceFrom > 2300 {
				t.Fatalf("recovered effort distance %v, want ~2000", r.DistanceFrom)
			}
		}
	}
	if !found {
		t.Fatal("duty-cycled sampling + detection failed to recover the visit")
	}
}

func TestKindStrings(t *testing.T) {
	if VisitKind.String() != "visit" || CallKind.String() != "call" || PaymentKind.String() != "payment" {
		t.Fatal("bad kind strings")
	}
	if Kind(9).String() != "unknown" {
		t.Fatal("unknown kind string")
	}
}
