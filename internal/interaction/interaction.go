// Package interaction turns raw device observations into interaction
// records: the visits, calls, and payments linking a user to an entity,
// together with the per-interaction features the paper's server-side
// history stores ("duration of interaction, time since last interaction,
// distance travelled since previous stationary spot", §4.2).
//
// The central algorithm is visit segmentation: clustering consecutive
// location samples into stationary episodes and resolving each episode
// to an entity. Nothing in this package sees ground truth; it operates
// only on what the sensing layer observed.
package interaction

import (
	"time"

	"opinions/internal/geo"
	"opinions/internal/mapping"
	"opinions/internal/sensing"
)

// Kind distinguishes how the user interacted with the entity.
type Kind int

// Interaction kinds.
const (
	VisitKind Kind = iota
	CallKind
	PaymentKind
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case VisitKind:
		return "visit"
	case CallKind:
		return "call"
	case PaymentKind:
		return "payment"
	}
	return "unknown"
}

// Record is one detected interaction between the device's user and an
// entity. These are exactly the fields the anonymous server-side history
// stores; none identifies the user.
type Record struct {
	Entity   string // entity key
	Kind     Kind
	Start    time.Time
	Duration time.Duration
	// DistanceFrom is the distance in meters from the previous
	// stationary spot to this one (visits only) — the §4.1 effort
	// feature ("the distance traveled by a user to visit a dentist").
	DistanceFrom float64
	// Amount is the payment amount (payments only).
	Amount float64
}

// CallObservation is what the device sees in its call log: a number, not
// an entity.
type CallObservation struct {
	Phone    string
	Time     time.Time
	Duration time.Duration
}

// PaymentObservation is what the device sees from a payment notification.
type PaymentObservation struct {
	Merchant string
	Time     time.Time
	Amount   float64
}

// Config tunes visit segmentation.
type Config struct {
	// ClusterRadius is the maximum distance from a stationary cluster's
	// centroid for a sample to join it (default 80 m, comfortably above
	// WiFi positioning noise).
	ClusterRadius float64
	// MinVisit is the minimum stationary duration that counts as a visit
	// (default 8 minutes; shorter stops are passings-by).
	MinVisit time.Duration
	// MaxVisit is the maximum stationary duration that counts as a
	// visit (default 3 hours). Longer stays are almost certainly the
	// user's home, workplace, or job site — §4.1's warning made
	// concrete: an apartment above a shop, or an employee's shift, must
	// not read as patronage.
	MaxVisit time.Duration
	// MatchRadius is how close a cluster centroid must be to an entity
	// to attribute the visit (default 100 m).
	MatchRadius float64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.ClusterRadius <= 0 {
		c.ClusterRadius = 80
	}
	if c.MinVisit <= 0 {
		c.MinVisit = 8 * time.Minute
	}
	if c.MaxVisit <= 0 {
		c.MaxVisit = 3 * time.Hour
	}
	if c.MatchRadius <= 0 {
		c.MatchRadius = 100
	}
	return c
}

// Detector segments sample streams into interaction records.
type Detector struct {
	cfg Config
	res *mapping.Resolver
}

// NewDetector returns a detector resolving against res.
func NewDetector(res *mapping.Resolver, cfg Config) *Detector {
	return &Detector{cfg: cfg.withDefaults(), res: res}
}

// cluster is a run of samples that stayed in one place.
type cluster struct {
	centroid geo.Point
	n        int
	start    time.Time
	end      time.Time
}

func (c *cluster) add(p geo.Point, t time.Time) {
	// Incremental centroid.
	c.centroid.Lat += (p.Lat - c.centroid.Lat) / float64(c.n+1)
	c.centroid.Lon += (p.Lon - c.centroid.Lon) / float64(c.n+1)
	c.n++
	c.end = t
}

// DetectVisits segments one day's location samples (which must be in
// time order) into visits. Clusters that resolve to no entity — the
// user's home, workplace, or anywhere the RSP has no listing — produce
// no record but still serve as the "previous stationary spot" for the
// effort feature of the next visit.
func (d *Detector) DetectVisits(samples []sensing.Sample) []Record {
	if len(samples) == 0 {
		return nil
	}
	var clusters []*cluster
	cur := &cluster{centroid: samples[0].Point, n: 1, start: samples[0].Time, end: samples[0].Time}
	for _, s := range samples[1:] {
		if geo.Distance(s.Point, cur.centroid) <= d.cfg.ClusterRadius {
			cur.add(s.Point, s.Time)
			continue
		}
		clusters = append(clusters, cur)
		cur = &cluster{centroid: s.Point, n: 1, start: s.Time, end: s.Time}
	}
	clusters = append(clusters, cur)

	var out []Record
	var prev *cluster
	for _, c := range clusters {
		dur := c.end.Sub(c.start)
		if dur < d.cfg.MinVisit {
			continue // brief stop or a single fix mid-travel
		}
		var distFrom float64
		if prev != nil {
			distFrom = geo.Distance(prev.centroid, c.centroid)
		}
		prev = c
		if dur > d.cfg.MaxVisit {
			continue // home, workplace, or a shift — not patronage
		}
		key, ok := d.res.ResolvePoint(c.centroid, d.cfg.MatchRadius)
		if ok {
			out = append(out, Record{
				Entity:       key,
				Kind:         VisitKind,
				Start:        c.start,
				Duration:     dur,
				DistanceFrom: distFrom,
			})
		}
	}
	return out
}

// FromCalls resolves call-log entries to records; unresolvable numbers
// (friends, businesses the RSP does not list) are dropped.
func (d *Detector) FromCalls(calls []CallObservation) []Record {
	var out []Record
	for _, c := range calls {
		key, ok := d.res.ResolvePhone(c.Phone)
		if !ok {
			continue
		}
		out = append(out, Record{
			Entity:   key,
			Kind:     CallKind,
			Start:    c.Time,
			Duration: c.Duration,
		})
	}
	return out
}

// FromPayments resolves payment notifications to records.
func (d *Detector) FromPayments(payments []PaymentObservation) []Record {
	var out []Record
	for _, p := range payments {
		key, ok := d.res.ResolveMerchant(p.Merchant)
		if !ok {
			continue
		}
		out = append(out, Record{
			Entity: key,
			Kind:   PaymentKind,
			Start:  p.Time,
			Amount: p.Amount,
		})
	}
	return out
}
