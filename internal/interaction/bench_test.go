package interaction

import (
	"testing"
	"time"

	"opinions/internal/geo"
	"opinions/internal/sensing"
)

// benchSamples builds a realistic day: home, commute, work, lunch,
// work, dinner, home — one fix per minute.
func benchSamples() []sensing.Sample {
	day := time.Date(2016, 1, 4, 0, 0, 0, 0, time.UTC)
	home := base
	work := geo.Offset(base, 4000, 0)
	cafe := geo.Offset(base, 2000, 0)
	rest := geo.Offset(base, -1500, 800)
	var out []sensing.Sample
	add := func(p geo.Point, fromMin, toMin int) {
		for m := fromMin; m < toMin; m++ {
			out = append(out, sensing.Sample{Time: day.Add(time.Duration(m) * time.Minute), Point: p})
		}
	}
	add(home, 0, 8*60)
	add(work, 8*60+20, 12*60)
	add(cafe, 12*60+10, 12*60+50)
	add(work, 13*60, 17*60+30)
	add(rest, 18*60+10, 19*60+30)
	add(home, 19*60+50, 24*60)
	return out
}

func BenchmarkDetectVisitsFullDay(b *testing.B) {
	d := NewDetector(testResolver(), Config{})
	samples := benchSamples()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.DetectVisits(samples)
	}
}

func BenchmarkFromCalls(b *testing.B) {
	d := NewDetector(testResolver(), Config{})
	t0 := time.Date(2016, 1, 4, 9, 0, 0, 0, time.UTC)
	calls := make([]CallObservation, 20)
	for i := range calls {
		phone := "+17345550001"
		if i%2 == 0 {
			phone = "+19999999999"
		}
		calls[i] = CallObservation{Phone: phone, Time: t0, Duration: time.Minute}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.FromCalls(calls)
	}
}
