// Package sensing models the device side of the paper's client: turning
// a user's true movement timeline into the location samples an RSP app
// would actually observe, under different sampling policies with
// different energy costs.
//
// Section 5 ("Location tracking") prescribes exploiting accelerometer
// cues — sample location only once the user has been stationary for a
// few minutes, resample when they move — and using WiFi/cell positioning
// rather than GPS alone. This package implements that policy alongside
// two baselines so experiment E5 can quantify the energy/recall
// trade-off.
package sensing

import (
	"time"

	"opinions/internal/geo"
	"opinions/internal/stats"
	"opinions/internal/trace"
)

// Source identifies the positioning technology behind a sample.
type Source int

// Positioning sources, in decreasing accuracy and energy cost.
const (
	GPS Source = iota
	WiFi
	Cell
)

// String implements fmt.Stringer.
func (s Source) String() string {
	switch s {
	case GPS:
		return "gps"
	case WiFi:
		return "wifi"
	case Cell:
		return "cell"
	}
	return "unknown"
}

// accuracyMeters is the 1-sigma position error per source.
func (s Source) accuracyMeters() float64 {
	switch s {
	case GPS:
		return 8
	case WiFi:
		return 35
	default:
		return 350
	}
}

// energyPerFixMAH is the battery cost of one position fix.
func (s Source) energyPerFixMAH() float64 {
	switch s {
	case GPS:
		return 0.35
	case WiFi:
		return 0.06
	default:
		return 0.01
	}
}

// Sample is one observed location fix.
type Sample struct {
	Time     time.Time
	Point    geo.Point
	Source   Source
	Accuracy float64 // 1-sigma error estimate in meters
}

// Energy is battery consumption in milliamp-hours.
type Energy float64

// accelerometerMAHPerHour is the cost of keeping the accelerometer on
// continuously; it is cheap enough to run all day.
const accelerometerMAHPerHour = 0.9

// Policy converts one day's true movement timeline into observed samples
// plus the energy spent observing them.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// SampleDay observes one day's segments. Implementations must be
	// deterministic given the rng.
	SampleDay(rng *stats.RNG, segs []trace.Segment) ([]Sample, Energy)
}

// fix produces a noisy sample of the true position at t.
func fix(rng *stats.RNG, segs []trace.Segment, t time.Time, src Source) Sample {
	p := trace.PositionAt(segs, t)
	acc := src.accuracyMeters()
	noisy := geo.Offset(p, rng.Normal(0, acc), rng.Normal(0, acc))
	return Sample{Time: t, Point: noisy, Source: src, Accuracy: acc}
}

// AlwaysOnGPS samples GPS at a fixed interval all day — the naive
// baseline whose energy draw the paper says users will not accept.
type AlwaysOnGPS struct {
	// Interval between fixes; default 1 minute.
	Interval time.Duration
}

// Name implements Policy.
func (AlwaysOnGPS) Name() string { return "gps-always" }

// SampleDay implements Policy.
func (p AlwaysOnGPS) SampleDay(rng *stats.RNG, segs []trace.Segment) ([]Sample, Energy) {
	interval := p.Interval
	if interval <= 0 {
		interval = time.Minute
	}
	if len(segs) == 0 {
		return nil, 0
	}
	start := segs[0].Start
	end := segs[len(segs)-1].End
	var out []Sample
	var e Energy
	for t := start; !t.After(end); t = t.Add(interval) {
		out = append(out, fix(rng, segs, t, GPS))
		e += Energy(GPS.energyPerFixMAH())
	}
	return out, e
}

// DutyCycled is the §5 policy: the accelerometer (cheap, always on)
// reveals motion state; GPS fires only after the user has been
// stationary for StationaryDelay, then re-fires every ResampleEvery
// while they remain stationary.
//
// The simulator's segment boundaries stand in for accelerometer motion
// transitions, which is exactly the information a real accelerometer
// provides (moving vs not), not the user's position.
type DutyCycled struct {
	// StationaryDelay before the first fix of a stay; default 3 minutes.
	StationaryDelay time.Duration
	// ResampleEvery while stationary; default 10 minutes.
	ResampleEvery time.Duration
	// Source for fixes; default GPS.
	Source Source
}

// Name implements Policy.
func (p DutyCycled) Name() string {
	if p.Source == WiFi {
		return "duty-cycled-wifi"
	}
	return "duty-cycled-gps"
}

// SampleDay implements Policy.
func (p DutyCycled) SampleDay(rng *stats.RNG, segs []trace.Segment) ([]Sample, Energy) {
	delay := p.StationaryDelay
	if delay <= 0 {
		delay = 3 * time.Minute
	}
	every := p.ResampleEvery
	if every <= 0 {
		every = 10 * time.Minute
	}
	var out []Sample
	var e Energy
	var hours float64
	for _, s := range segs {
		hours += s.End.Sub(s.Start).Hours()
		if !s.Stationary() {
			continue
		}
		for t := s.Start.Add(delay); t.Before(s.End); t = t.Add(every) {
			out = append(out, fix(rng, segs, t, p.Source))
			e += Energy(p.Source.energyPerFixMAH())
		}
	}
	e += Energy(hours * accelerometerMAHPerHour)
	return out, e
}

// WiFiAssisted duty-cycles like DutyCycled but takes most fixes with
// WiFi positioning and confirms long stays with one GPS fix, trading a
// little accuracy for most of the energy savings (§5's "leveraging WiFi
// and cellular information, not only the GPS").
type WiFiAssisted struct {
	StationaryDelay time.Duration
	ResampleEvery   time.Duration
	// GPSConfirmAfter is the stay duration after which a single GPS fix
	// confirms the WiFi position; default 20 minutes.
	GPSConfirmAfter time.Duration
}

// Name implements Policy.
func (WiFiAssisted) Name() string { return "wifi-assisted" }

// SampleDay implements Policy.
func (p WiFiAssisted) SampleDay(rng *stats.RNG, segs []trace.Segment) ([]Sample, Energy) {
	delay := p.StationaryDelay
	if delay <= 0 {
		delay = 3 * time.Minute
	}
	every := p.ResampleEvery
	if every <= 0 {
		every = 10 * time.Minute
	}
	confirm := p.GPSConfirmAfter
	if confirm <= 0 {
		confirm = 20 * time.Minute
	}
	var out []Sample
	var e Energy
	var hours float64
	for _, s := range segs {
		hours += s.End.Sub(s.Start).Hours()
		if !s.Stationary() {
			continue
		}
		confirmed := false
		for t := s.Start.Add(delay); t.Before(s.End); t = t.Add(every) {
			src := WiFi
			if !confirmed && t.Sub(s.Start) >= confirm {
				src = GPS
				confirmed = true
			}
			out = append(out, fix(rng, segs, t, src))
			e += Energy(src.energyPerFixMAH())
		}
	}
	e += Energy(hours * accelerometerMAHPerHour)
	return out, e
}

// Adaptive duty-cycles like DutyCycled but downgrades to cheaper
// positioning once the day's battery spend crosses a budget: GPS while
// affordable, WiFi past the budget, cell past twice the budget. This is
// how a deployed client honours §5's energy concern on a bad day (long
// trips, many stops) without giving up coverage entirely.
type Adaptive struct {
	// BudgetMAH is the soft daily budget (default 40 mAh — well under
	// 1% of a phone battery).
	BudgetMAH float64
	// StationaryDelay/ResampleEvery as in DutyCycled.
	StationaryDelay time.Duration
	ResampleEvery   time.Duration
}

// Name implements Policy.
func (Adaptive) Name() string { return "adaptive-budget" }

// SampleDay implements Policy.
func (p Adaptive) SampleDay(rng *stats.RNG, segs []trace.Segment) ([]Sample, Energy) {
	budget := p.BudgetMAH
	if budget <= 0 {
		budget = 40
	}
	delay := p.StationaryDelay
	if delay <= 0 {
		delay = 3 * time.Minute
	}
	every := p.ResampleEvery
	if every <= 0 {
		every = 10 * time.Minute
	}
	var out []Sample
	var e Energy
	var hours float64
	for _, s := range segs {
		hours += s.End.Sub(s.Start).Hours()
		if !s.Stationary() {
			continue
		}
		for t := s.Start.Add(delay); t.Before(s.End); t = t.Add(every) {
			src := GPS
			switch {
			case float64(e) > 2*budget:
				src = Cell
			case float64(e) > budget:
				src = WiFi
			}
			out = append(out, fix(rng, segs, t, src))
			e += Energy(src.energyPerFixMAH())
		}
	}
	e += Energy(hours * accelerometerMAHPerHour)
	return out, e
}

// AllPolicies returns the policies compared in experiment E5.
func AllPolicies() []Policy {
	return []Policy{AlwaysOnGPS{}, DutyCycled{}, WiFiAssisted{}, Adaptive{}}
}
