package sensing

import (
	"testing"
	"time"

	"opinions/internal/geo"
	"opinions/internal/stats"
	"opinions/internal/trace"
)

// testDay builds a simple day: home 0-8h, travel 10min, visit 1h,
// travel, home rest of day.
func testDay() []trace.Segment {
	day := time.Date(2016, 1, 4, 0, 0, 0, 0, time.UTC)
	home := geo.Point{Lat: 42.28, Lon: -83.74}
	shop := geo.Offset(home, 2000, 1000)
	return []trace.Segment{
		{Start: day, End: day.Add(8 * time.Hour), From: home, To: home, At: "home"},
		{Start: day.Add(8 * time.Hour), End: day.Add(8*time.Hour + 10*time.Minute), From: home, To: shop},
		{Start: day.Add(8*time.Hour + 10*time.Minute), End: day.Add(9*time.Hour + 10*time.Minute), From: shop, To: shop, At: "yelp/shop"},
		{Start: day.Add(9*time.Hour + 10*time.Minute), End: day.Add(9*time.Hour + 20*time.Minute), From: shop, To: home},
		{Start: day.Add(9*time.Hour + 20*time.Minute), End: day.Add(24 * time.Hour), From: home, To: home, At: "home"},
	}
}

func TestAlwaysOnGPSSamplesWholeDay(t *testing.T) {
	segs := testDay()
	samples, e := AlwaysOnGPS{}.SampleDay(stats.NewRNG(1), segs)
	if len(samples) < 24*60 {
		t.Fatalf("got %d samples, want ≥ 1440", len(samples))
	}
	if e <= 0 {
		t.Fatal("no energy charged")
	}
	for i := 1; i < len(samples); i++ {
		if !samples[i].Time.After(samples[i-1].Time) {
			t.Fatal("samples not strictly ordered")
		}
	}
}

func TestDutyCycledSamplesOnlyStays(t *testing.T) {
	segs := testDay()
	samples, _ := DutyCycled{}.SampleDay(stats.NewRNG(1), segs)
	for _, s := range samples {
		// Every sample must fall inside some stationary segment.
		inside := false
		for _, seg := range segs {
			if seg.Stationary() && !s.Time.Before(seg.Start) && s.Time.Before(seg.End) {
				inside = true
				break
			}
		}
		if !inside {
			t.Fatalf("sample at %v during travel", s.Time)
		}
	}
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
}

func TestDutyCycledCheaperThanAlwaysOn(t *testing.T) {
	segs := testDay()
	_, eAlways := AlwaysOnGPS{}.SampleDay(stats.NewRNG(1), segs)
	_, eDuty := DutyCycled{}.SampleDay(stats.NewRNG(1), segs)
	_, eWiFi := WiFiAssisted{}.SampleDay(stats.NewRNG(1), segs)
	if eDuty >= eAlways {
		t.Fatalf("duty-cycled (%v) not cheaper than always-on (%v)", eDuty, eAlways)
	}
	if eWiFi >= eDuty {
		t.Fatalf("wifi-assisted (%v) not cheaper than duty-cycled GPS (%v)", eWiFi, eDuty)
	}
}

func TestDutyCycledStillCoversVisit(t *testing.T) {
	segs := testDay()
	samples, _ := DutyCycled{}.SampleDay(stats.NewRNG(1), segs)
	visitStart := segs[2].Start
	visitEnd := segs[2].End
	n := 0
	for _, s := range samples {
		if !s.Time.Before(visitStart) && s.Time.Before(visitEnd) {
			n++
		}
	}
	// 1h stay, 3min delay, 10min resample → ~6 fixes.
	if n < 3 {
		t.Fatalf("only %d fixes during the 1h visit", n)
	}
}

func TestSampleNoiseMatchesSourceAccuracy(t *testing.T) {
	segs := testDay()
	rng := stats.NewRNG(2)
	home := geo.Point{Lat: 42.28, Lon: -83.74}
	var gpsErr, wifiErr []float64
	for i := 0; i < 300; i++ {
		s := fix(rng, segs, segs[0].Start.Add(time.Hour), GPS)
		gpsErr = append(gpsErr, geo.Distance(s.Point, home))
		w := fix(rng, segs, segs[0].Start.Add(time.Hour), WiFi)
		wifiErr = append(wifiErr, geo.Distance(w.Point, home))
	}
	mg, _ := stats.Mean(gpsErr)
	mw, _ := stats.Mean(wifiErr)
	if mg >= mw {
		t.Fatalf("GPS mean error %v not better than WiFi %v", mg, mw)
	}
	if mg > 30 {
		t.Fatalf("GPS mean error %v m too large", mg)
	}
}

func TestWiFiAssistedIncludesGPSConfirm(t *testing.T) {
	segs := testDay()
	samples, _ := WiFiAssisted{}.SampleDay(stats.NewRNG(3), segs)
	hasGPS, hasWiFi := false, false
	for _, s := range samples {
		switch s.Source {
		case GPS:
			hasGPS = true
		case WiFi:
			hasWiFi = true
		}
	}
	if !hasGPS || !hasWiFi {
		t.Fatalf("wifi-assisted sources: gps=%v wifi=%v, want both", hasGPS, hasWiFi)
	}
}

func TestPoliciesDeterministic(t *testing.T) {
	segs := testDay()
	for _, p := range AllPolicies() {
		a, ea := p.SampleDay(stats.NewRNG(7), segs)
		b, eb := p.SampleDay(stats.NewRNG(7), segs)
		if len(a) != len(b) || ea != eb {
			t.Fatalf("%s not deterministic", p.Name())
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s sample %d differs", p.Name(), i)
			}
		}
	}
}

func TestEmptyDay(t *testing.T) {
	for _, p := range AllPolicies() {
		samples, e := p.SampleDay(stats.NewRNG(1), nil)
		if len(samples) != 0 || e != 0 {
			t.Fatalf("%s on empty day: %d samples, %v energy", p.Name(), len(samples), e)
		}
	}
}

func TestPolicyNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range AllPolicies() {
		if seen[p.Name()] {
			t.Fatalf("duplicate policy name %s", p.Name())
		}
		seen[p.Name()] = true
	}
	if (DutyCycled{Source: WiFi}).Name() == (DutyCycled{}).Name() {
		t.Fatal("wifi variant shares name with gps variant")
	}
}

func TestAdaptiveRespectsBudget(t *testing.T) {
	// A pathological day with very long stationary time would blow a
	// GPS budget; adaptive must degrade to cheaper sources.
	day := time.Date(2016, 1, 4, 0, 0, 0, 0, time.UTC)
	home := geo.Point{Lat: 42.28, Lon: -83.74}
	segs := []trace.Segment{
		{Start: day, End: day.Add(24 * time.Hour), From: home, To: home, At: "home"},
	}
	tight := Adaptive{BudgetMAH: 2, ResampleEvery: 2 * time.Minute}
	samples, e := tight.SampleDay(stats.NewRNG(1), segs)
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	counts := map[Source]int{}
	for _, s := range samples {
		counts[s.Source]++
	}
	if counts[GPS] == 0 || counts[WiFi] == 0 || counts[Cell] == 0 {
		t.Fatalf("adaptive did not degrade through sources: %v", counts)
	}
	// Position-fix spend beyond the accelerometer baseline must be a
	// small fraction of what GPS-only duty cycling would have paid
	// (720 fixes × 0.35 mAh ≈ 252 mAh); the ladder degrades to cell
	// fixes that accrue at 1/35th the GPS rate.
	fixSpend := float64(e) - 24*accelerometerMAHPerHour
	if fixSpend > 15 {
		t.Fatalf("fix spend %v mAh; ladder failed to degrade", fixSpend)
	}
	// A generous budget behaves like plain duty cycling.
	loose := Adaptive{BudgetMAH: 10000}
	samples2, _ := loose.SampleDay(stats.NewRNG(1), segs)
	for _, s := range samples2 {
		if s.Source != GPS {
			t.Fatal("generous budget degraded unnecessarily")
		}
	}
}

func TestSourceStrings(t *testing.T) {
	if GPS.String() != "gps" || WiFi.String() != "wifi" || Cell.String() != "cell" {
		t.Fatal("bad source strings")
	}
	if Source(9).String() != "unknown" {
		t.Fatal("unknown source string")
	}
}
