package world

import (
	"math"
	"testing"

	"opinions/internal/stats"
)

func TestZipsCountAndUniqueness(t *testing.T) {
	zips := Zips(50)
	if len(zips) != 50 {
		t.Fatalf("len = %d", len(zips))
	}
	seen := make(map[string]bool)
	for _, z := range zips {
		if seen[z.Code] {
			t.Fatalf("duplicate zip %s", z.Code)
		}
		seen[z.Code] = true
	}
}

func TestProfileUnknownService(t *testing.T) {
	if _, err := Profile("myspace"); err == nil {
		t.Fatal("unknown service accepted")
	}
	p, err := Profile(Yelp)
	if err != nil || p.Kind != Yelp {
		t.Fatalf("Profile(Yelp) = %+v, %v", p, err)
	}
}

func TestProfileCategoryCountsMatchPaper(t *testing.T) {
	// Table 1: 9 cuisines on Yelp, 24 provider types on Angie's List,
	// 4 doctor types on Healthgrades.
	p := Profiles()
	if n := len(p[Yelp].Categories); n != 9 {
		t.Errorf("Yelp categories = %d, want 9", n)
	}
	if n := len(p[AngiesList].Categories); n != 24 {
		t.Errorf("Angie's List categories = %d, want 24", n)
	}
	if n := len(p[Healthgrades].Categories); n != 4 {
		t.Errorf("Healthgrades categories = %d, want 4", n)
	}
}

func TestDirectoryDeterministic(t *testing.T) {
	cfg := TestDirectoryConfig()
	a := BuildDirectory(cfg)
	b := BuildDirectory(cfg)
	if len(a.Entities[Yelp]) != len(b.Entities[Yelp]) {
		t.Fatal("entity counts differ across identical builds")
	}
	for i := range a.Entities[Yelp] {
		ea, eb := a.Entities[Yelp][i], b.Entities[Yelp][i]
		if ea.ID != eb.ID || ea.ReviewCount != eb.ReviewCount {
			t.Fatalf("entity %d differs: %+v vs %+v", i, ea, eb)
		}
	}
}

func TestDirectoryTable1Totals(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale directory build")
	}
	d := BuildDirectory(DefaultDirectoryConfig())
	// Paper Table 1: 24,417 restaurants; 26,066 providers; 24,922 doctors.
	// Require the synthetic totals within 20% — the claim is "≈25k each".
	for _, tc := range []struct {
		kind ServiceKind
		want float64
	}{
		{Yelp, 24417}, {AngiesList, 26066}, {Healthgrades, 24922},
	} {
		got := float64(len(d.Entities[tc.kind]))
		if math.Abs(got-tc.want)/tc.want > 0.20 {
			t.Errorf("%s entities = %v, want within 20%% of %v", tc.kind, got, tc.want)
		}
	}
}

func TestDirectoryReviewMediansMatchPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale directory build")
	}
	d := BuildDirectory(DefaultDirectoryConfig())
	// Paper Fig 1(a): medians 25 (Yelp), 8 (Angie's List), 5 (Healthgrades).
	for _, tc := range []struct {
		kind     ServiceKind
		want     float64
		tolerate float64
	}{
		{Yelp, 25, 6}, {AngiesList, 8, 3}, {Healthgrades, 5, 2},
	} {
		med, err := stats.Median(d.ReviewCounts(tc.kind))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(med-tc.want) > tc.tolerate {
			t.Errorf("%s review median = %v, want %v±%v", tc.kind, med, tc.want, tc.tolerate)
		}
	}
}

func TestDirectoryFig1bMedians(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale directory build")
	}
	d := BuildDirectory(DefaultDirectoryConfig())
	// Paper Fig 1(b): for the median query, results with ≥50 reviews are
	// 12 (Yelp), 2 (Angie's List), 1 (Healthgrades).
	for _, tc := range []struct {
		kind     ServiceKind
		want     float64
		tolerate float64
	}{
		{Yelp, 12, 5}, {AngiesList, 2, 1.5}, {Healthgrades, 1, 1},
	} {
		var perQuery []float64
		p := d.Profiles[tc.kind]
		for _, z := range d.Zips {
			for _, cat := range p.Categories {
				n := 0
				for _, e := range d.Lookup(tc.kind, z.Code, cat) {
					if e.ReviewCount >= 50 {
						n++
					}
				}
				perQuery = append(perQuery, float64(n))
			}
		}
		med, err := stats.Median(perQuery)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(med-tc.want) > tc.tolerate {
			t.Errorf("%s median results ≥50 reviews = %v, want %v±%v", tc.kind, med, tc.want, tc.tolerate)
		}
	}
}

func TestDirectoryFig1cDiscrepancy(t *testing.T) {
	d := BuildDirectory(TestDirectoryConfig())
	// Paper Fig 1(c): implicit interactions exceed explicit feedback by
	// more than an order of magnitude at the median.
	for _, kind := range InteractionServices {
		var ratios []float64
		for _, e := range d.Entities[kind] {
			if e.Feedback > 0 {
				ratios = append(ratios, float64(e.Interactions)/float64(e.Feedback))
			}
		}
		med, err := stats.Median(ratios)
		if err != nil {
			t.Fatal(err)
		}
		if med < 10 {
			t.Errorf("%s median interaction/feedback ratio = %v, want ≥10", kind, med)
		}
	}
}

func TestDirectoryLookupMissing(t *testing.T) {
	d := BuildDirectory(TestDirectoryConfig())
	if got := d.Lookup(Yelp, "00000", "chinese"); got != nil {
		t.Fatalf("missing zip returned %d entities", len(got))
	}
	if got := d.Lookup("nosuch", "00000", "chinese"); got != nil {
		t.Fatal("missing service returned entities")
	}
}

func TestDirectoryQueryCount(t *testing.T) {
	d := BuildDirectory(TestDirectoryConfig())
	if got := d.QueryCount(Yelp); got != 10*9 {
		t.Fatalf("QueryCount(Yelp) = %d, want 90", got)
	}
	if got := d.QueryCount("nosuch"); got != 0 {
		t.Fatalf("QueryCount(unknown) = %d", got)
	}
}

func TestDirectoryFind(t *testing.T) {
	d := BuildDirectory(TestDirectoryConfig())
	first := d.Entities[Yelp][0]
	if got := d.Find(Yelp, first.ID); got != first {
		t.Fatal("Find did not return the entity")
	}
	if got := d.Find(Yelp, "nope"); got != nil {
		t.Fatal("Find invented an entity")
	}
}

func TestEntityReviewCountsPositive(t *testing.T) {
	d := BuildDirectory(TestDirectoryConfig())
	for _, kind := range ReviewServices {
		for _, e := range d.Entities[kind] {
			if e.ReviewCount < 1 {
				t.Fatalf("%s has review count %d", e.ID, e.ReviewCount)
			}
			if e.Quality < 0 || e.Quality > 5 {
				t.Fatalf("%s has quality %v", e.ID, e.Quality)
			}
		}
	}
}

func TestSimilarTo(t *testing.T) {
	a := &Entity{Service: Yelp, Category: "chinese", PriceLevel: 2}
	b := &Entity{Service: Yelp, Category: "chinese", PriceLevel: 3}
	cEnt := &Entity{Service: Yelp, Category: "thai", PriceLevel: 2}
	dEnt := &Entity{Service: Yelp, Category: "chinese", PriceLevel: 4}
	if !a.SimilarTo(b) {
		t.Error("price within 1 should be similar")
	}
	if a.SimilarTo(cEnt) {
		t.Error("different category should not be similar")
	}
	if a.SimilarTo(dEnt) {
		t.Error("price gap 2 should not be similar")
	}
}
