package world

import (
	"fmt"
	"runtime"
	"testing"
)

// The streaming-vs-materialize pair quantifies the tentpole claim: a
// full pass over the population costs the same generation work either
// way (allocs/op measures churn, which is similar), but the streaming
// path holds one user at a time while the eager path keeps all N
// resident. The live-heap-MB metric — heap still reachable at the end
// of a pass, after GC — is the one that separates them: flat for
// streaming, linear in N for materialize.

// liveHeapMB forces a GC and returns the reachable heap in megabytes.
func liveHeapMB() float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc) / (1 << 20)
}

func benchScales(b *testing.B) []int {
	if testing.Short() {
		return []int{10_000}
	}
	return []int{10_000, 100_000, 1_000_000}
}

func BenchmarkWorldStream(b *testing.B) {
	for _, n := range benchScales(b) {
		b.Run(fmt.Sprintf("users=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var c *City
			for i := 0; i < b.N; i++ {
				c = OpenCity(CityConfig{Seed: 1, NumUsers: n})
				var classes [3]int
				c.EachUser(func(_ int, u *User) bool {
					classes[u.Class]++
					return true
				})
				if classes[Lurker] == 0 {
					b.Fatal("no lurkers")
				}
			}
			b.ReportMetric(liveHeapMB(), "live-heap-MB")
			runtime.KeepAlive(c)
		})
	}
}

func BenchmarkWorldMaterialize(b *testing.B) {
	for _, n := range benchScales(b) {
		b.Run(fmt.Sprintf("users=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var c *City
			for i := 0; i < b.N; i++ {
				c = BuildCity(CityConfig{Seed: 1, NumUsers: n})
				var classes [3]int
				for _, u := range c.Users {
					classes[u.Class]++
				}
				if classes[Lurker] == 0 {
					b.Fatal("no lurkers")
				}
			}
			// c stays reachable here, so the metric reflects the resident
			// population the eager path forces callers to hold.
			b.ReportMetric(liveHeapMB(), "live-heap-MB")
			runtime.KeepAlive(c)
		})
	}
}

// BenchmarkUserAt measures the cost of regenerating one user on demand —
// the unit the serving and agent paths pay per lookup.
func BenchmarkUserAt(b *testing.B) {
	c := OpenCity(CityConfig{Seed: 1, NumUsers: 1_000_000})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.UserAt(i%1_000_000) == nil {
			b.Fatal("nil user")
		}
	}
}
