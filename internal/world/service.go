// Package world builds the synthetic universes every experiment runs on.
//
// Two universes correspond to the paper's two kinds of evidence:
//
//   - Directory: the five online services measured in §2 (Yelp,
//     Angie's List, Healthgrades, Google Play, YouTube), with entities,
//     review counts, and interaction counts drawn from heavy-tailed
//     distributions calibrated so the statistics the paper reports
//     (medians of Figure 1a–c, totals of Table 1) are reproduced.
//   - City: a behavioural city of users and physical entities with
//     latent quality and ground-truth opinions, which the trace
//     simulator animates to exercise the full implicit-inference
//     pipeline (Figures 2 and 3, design sections 4.1–4.3).
//
// Everything is deterministic given a seed.
package world

import "fmt"

// ServiceKind identifies one of the measured services.
type ServiceKind string

// The five services the paper measures in §2.
const (
	Yelp         ServiceKind = "yelp"
	AngiesList   ServiceKind = "angieslist"
	Healthgrades ServiceKind = "healthgrades"
	GooglePlay   ServiceKind = "play"
	YouTube      ServiceKind = "youtube"
)

// ReviewServices are the three review-centric services of Table 1 and
// Figure 1(a)/(b), in the order the paper lists them.
var ReviewServices = []ServiceKind{Yelp, AngiesList, Healthgrades}

// InteractionServices are the two services of Figure 1(c) where both
// explicit feedback and implicit interactions are observable.
var InteractionServices = []ServiceKind{GooglePlay, YouTube}

// ServiceProfile captures the calibration of one service's synthetic
// population. The log-normal parameters are chosen so that the crawl
// experiments reproduce the paper's reported statistics; see the fields'
// comments and DESIGN.md for the derivations.
type ServiceProfile struct {
	Kind ServiceKind
	Name string

	// Categories queried per zip code in the §2 methodology: 9 cuisines
	// on Yelp, 24 provider types on Angie's List, 4 doctor types on
	// Healthgrades.
	Categories []string

	// ReviewMedian and ReviewSigma parameterize the log-normal from
	// which an entity's review count is drawn (paper medians: 25 / 8 / 5).
	ReviewMedian float64
	ReviewSigma  float64

	// QueryMedian and QuerySigma parameterize the log-normal number of
	// entities matching one (zip, category) query. Together with the
	// review-count distribution these reproduce Figure 1(b)'s medians of
	// results with ≥50 reviews (12 / 2 / 1) and Table 1's totals.
	QueryMedian float64
	QuerySigma  float64

	// InteractionMedian/Sigma and FeedbackRate model Figure 1(c):
	// implicit interactions (installs, views) per entity, and the
	// fraction of interacting users who leave explicit feedback.
	InteractionMedian float64
	InteractionSigma  float64
	FeedbackRateLo    float64
	FeedbackRateHi    float64
}

// Profiles returns the calibrated profile for each service.
func Profiles() map[ServiceKind]ServiceProfile {
	return map[ServiceKind]ServiceProfile{
		Yelp: {
			Kind: Yelp,
			Name: "Yelp",
			Categories: []string{
				"chinese", "mexican", "italian", "japanese", "indian",
				"thai", "american", "mediterranean", "korean",
			},
			ReviewMedian: 25, ReviewSigma: 1.40,
			// 450 queries x mean 54.3 entities ≈ 24,417 (Table 1);
			// P(reviews ≥ 50) ≈ 0.31, so the median query yields ≈ 12
			// results with ≥50 reviews (Fig 1b).
			QueryMedian: 40, QuerySigma: 0.78,
		},
		AngiesList: {
			Kind: AngiesList,
			Name: "Angie's List",
			Categories: []string{
				"electrician", "plumber", "gardener", "roofer", "painter",
				"handyman", "hvac", "carpenter", "locksmith", "mover",
				"cleaner", "pestcontrol", "landscaper", "flooring",
				"remodeler", "mason", "paver", "fencing", "gutter",
				"chimney", "appliance", "septic", "treeservice", "drywall",
			},
			ReviewMedian: 8, ReviewSigma: 1.43,
			// 1200 queries x mean 21.7 ≈ 26,066; P(≥50) ≈ 0.10 → median
			// query yields ≈ 2 results with ≥50 reviews.
			QueryMedian: 18, QuerySigma: 0.62,
		},
		Healthgrades: {
			Kind: Healthgrades,
			Name: "Healthgrades",
			Categories: []string{
				"dentist", "familymedicine", "pediatrics", "plasticsurgery",
			},
			ReviewMedian: 5, ReviewSigma: 1.00,
			// 200 queries x mean 124.6 ≈ 24,922; P(≥50) ≈ 0.011 → median
			// query yields ≈ 1 result with ≥50 reviews.
			QueryMedian: 90, QuerySigma: 0.80,
		},
		GooglePlay: {
			Kind:       GooglePlay,
			Name:       "Google Play",
			Categories: []string{"app"},
			// Reviews on Play exist but Fig 1(c) is about the gap between
			// installs and any explicit feedback.
			ReviewMedian: 30, ReviewSigma: 1.6,
			QueryMedian: 1000, QuerySigma: 0,
			InteractionMedian: 50000, InteractionSigma: 2.2,
			FeedbackRateLo: 0.002, FeedbackRateHi: 0.03,
		},
		YouTube: {
			Kind:         YouTube,
			Name:         "YouTube",
			Categories:   []string{"video"},
			ReviewMedian: 20, ReviewSigma: 1.6,
			QueryMedian: 1000, QuerySigma: 0,
			InteractionMedian: 20000, InteractionSigma: 2.4,
			FeedbackRateLo: 0.002, FeedbackRateHi: 0.04,
		},
	}
}

// Profile returns the profile for kind, or an error for an unknown kind.
func Profile(kind ServiceKind) (ServiceProfile, error) {
	p, ok := Profiles()[kind]
	if !ok {
		return ServiceProfile{}, fmt.Errorf("world: unknown service %q", kind)
	}
	return p, nil
}
